#!/bin/sh
# Tier-1 verification: vet, build, and the full test suite under the race
# detector (the netsim receiver pool and obs instruments are concurrent).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Robustness tier: a short seeded chaos soak under the race detector, then
# a fuzz smoke pass over the two attacker-facing decoders.
go run -race ./cmd/mcsim -chaos -n 24 -receivers 6 -chaosseeds 2 >/dev/null
go test -fuzz=FuzzDecode -fuzztime=10s -run='^$' ./internal/packet
go test -fuzz=FuzzFrameReader -fuzztime=10s -run='^$' ./internal/transport

# Perf tier: compile and run every benchmark once so the bench harness
# cannot bit-rot; real measurements come from scripts/bench.sh.
go test -run='^$' -bench=. -benchtime=1x . >/dev/null
