#!/bin/sh
# Tier-1 verification: vet, build, and the full test suite under the race
# detector (the netsim receiver pool and obs instruments are concurrent).
set -eux

fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt_diff" >&2
	exit 1
fi
go vet ./...
go build ./...
# -shuffle=on randomizes test and subtest order so inter-test state
# dependencies cannot hide; failures print the seed to reproduce.
go test -race -shuffle=on ./...

# Robustness tier: a short seeded chaos soak under the race detector, then
# a fuzz smoke pass over the two attacker-facing decoders.
go run -race ./cmd/mcsim -chaos -n 24 -receivers 6 -chaosseeds 2 >/dev/null
go test -fuzz=FuzzDecode -fuzztime=10s -run='^$' ./internal/packet
go test -fuzz=FuzzFrameReader -fuzztime=10s -run='^$' ./internal/transport
go test -fuzz=FuzzMuxFrameReader -fuzztime=10s -run='^$' ./internal/transport

# Serving-chaos tier: kill/restart the serving daemon across three cycles
# with connection faults injected, under the race detector. The harness
# asserts its own invariants (no forged authentications, session resume
# replayed catch-up, faults actually fired) and exits non-zero otherwise.
go run -race ./cmd/mcserved -chaos -cycles 3 -streams 4 -n 8 -blocks 4 \
	-rate 300us -kill-after 250ms -batch 16 -flush 30ms \
	-conn-reset 0.02 -conn-stall 0.01 -chaos-seed 7 -key ci-chaos >/dev/null

# Diagnostics tier: a small lossy run must produce a root-cause report that
# mcreport can re-read, and two identical-seed traces must diff empty.
diagdir=$(mktemp -d)
trap 'rm -rf "$diagdir"' EXIT
go run ./cmd/mcsim -scheme emss -n 20 -p 0.25 -receivers 8 -seed 5 \
	-trace "$diagdir/a.jsonl" -report "$diagdir/rep.json" >/dev/null
go run ./cmd/mcsim -scheme emss -n 20 -p 0.25 -receivers 8 -seed 5 \
	-trace "$diagdir/b.jsonl" >/dev/null
go run ./cmd/mcreport -scheme emss -n 20 "$diagdir/a.jsonl" >/dev/null
go run ./cmd/mcreport -scheme emss -n 20 -diff "$diagdir/a.jsonl" "$diagdir/b.jsonl"
test -s "$diagdir/rep.json"
test -s "$diagdir/rep.json.md"

# Perf tier: compile and run every benchmark once so the bench harness
# cannot bit-rot; real measurements come from scripts/bench.sh.
go test -run='^$' -bench=. -benchtime=1x . >/dev/null

# Verify fast-path tier: the zero-alloc guards (AllocsPerRun on the
# ...Into/scratch/cached paths — they skip under -race, so this is their
# only enforced run), then the verify benchmarks at a fixed iteration
# count with allocs/op ceilings. The ceilings mirror
# lab/baselines.json bench_alloc_ceilings but fire pre-commit, without
# needing a committed snapshot.
go test -count=1 -run='AllocFree|SteadyState' ./internal/crypto
go test -run='^$' -bench='BenchmarkVerify($|/)' -benchtime=100x -benchmem . \
	| awk '
		/^BenchmarkVerify/ {
			for (i = 3; i < NF; i++) if ($(i + 1) == "allocs/op") allocs = $i
			ceil = 320
			if ($1 ~ /tesla/) ceil = 80
			if (allocs + 0 > ceil) {
				printf "verify-bench gate: %s at %s allocs/op exceeds ceiling %d\n", $1, allocs, ceil
				bad = 1
			}
		}
		END { exit bad }
	'

# Telemetry tier: the span JSONL schema golden (wire compatibility with
# the PR 1 tracer), a flight-recorder smoke under serving chaos — the dump
# must render as a post-mortem containing at least one complete
# sender->authenticate block lifecycle — and the tracing-overhead gate:
# with a span ring attached but disabled, BenchmarkVerify may not slow
# down by more than 2% vs no ring at all. -count interleaves off/disabled
# pairs; the gate takes the best paired delta, so a systematic tracing tax
# fails every pair while one-off scheduler noise fails none.
go test -count=1 -run 'TestSpanGoldenSchema' ./internal/obs
go test -count=1 -run 'TestGoldenFlightReport|TestFlightReportContent' ./cmd/mcreport
go run ./cmd/mcserved -chaos -cycles 2 -streams 2 -n 8 -blocks 6 \
	-rate 300us -kill-after 250ms -batch 8 -flush 30ms \
	-conn-reset 0.01 -chaos-seed 11 -key ci-flight -min-auth 0.2 \
	-slo-p99 5s -slo-min-auth 0.2 -flight "$diagdir/flight.jsonl" >/dev/null
test -s "$diagdir/flight.jsonl"
go run ./cmd/mcreport -flight "$diagdir/flight.jsonl" > "$diagdir/flight.txt"
grep 'complete sender->authenticate:' "$diagdir/flight.txt" \
	| awk -F'authenticate: ' '{ n = $2 + 0 } END { if (n < 1) { print "flight smoke: no complete block lifecycle in the dump"; exit 1 } }'
go test -run='^$' -bench='BenchmarkVerifySpanOverhead/' -benchtime=500x -count=5 . \
	| awk '
		/^BenchmarkVerifySpanOverhead\/off/      { off[++no] = $3 + 0 }
		/^BenchmarkVerifySpanOverhead\/disabled/ { dis[++nd] = $3 + 0 }
		END {
			if (no == 0 || nd != no) { print "span-overhead gate: missing benchmark output"; exit 1 }
			best = 1e9
			for (i = 1; i <= no; i++) { d = dis[i] / off[i] - 1; if (d < best) best = d }
			printf "span-overhead gate: best paired delta %+.2f%% over %d pairs\n", 100 * best, no
			if (best > 0.02) { print "span-overhead gate: disabled tracing exceeds 2% overhead in every pair"; exit 1 }
		}
	'

# Lab tier: the bundled example sweep must run at two worker counts with
# byte-identical artifacts, render a dashboard joining the committed
# BENCH_*.json history, and pass the committed regression gates.
labdir=$(mktemp -d)
trap 'rm -rf "$diagdir" "$labdir"' EXIT
go build -o "$labdir/mclab" ./cmd/mclab
"$labdir/mclab" run examples/lab/basic.json -out "$labdir/w1" -workers 1 -stamp ci >/dev/null
"$labdir/mclab" run examples/lab/basic.json -out "$labdir/w4" -workers 4 -stamp ci >/dev/null
diff -r "$labdir/w1" "$labdir/w4"
"$labdir/mclab" render -out "$labdir/w1" -md "$labdir/dashboard.md" -html "$labdir/dashboard.html"
test -s "$labdir/dashboard.md"
test -s "$labdir/dashboard.html"
"$labdir/mclab" check -out "$labdir/w1"

# Churn sweep: the serving tier's session-resume flow (subscriber leaves
# mid-run, a late joiner is caught up via ResumeFrom) must verify every
# message and pass the require_server_resume gate. Its own -out dir, since
# check gates only the latest run under a root.
"$labdir/mclab" run examples/lab/churn.json -out "$labdir/churn" -workers 4 -stamp ci >/dev/null
"$labdir/mclab" check -out "$labdir/churn"

# Overlay tier: the relay fan-out path. The relay control-frame decoder
# (resume hellos + MCRQ repair requests share one wire) gets a fuzz smoke;
# a 10^5-receiver run through a 3-level tree with a correlated lossy edge
# must produce byte-identical summaries at -workers 1, 2 and 8; and the
# overlay lab sweep must pass the require_overlay_gain gate — relays
# serving signature repairs must measurably raise the downstream
# authenticated fraction over passive forwarding.
go test -fuzz=FuzzRelayFrame -fuzztime=10s -run='^$' ./internal/transport
go build -o "$labdir/mcsim" ./cmd/mcsim
for w in 1 2 8; do
	"$labdir/mcsim" -overlay -scheme emss -n 8 -p 0.1 -receivers 100000 \
		-depth 2 -fanout 4 -edgep 0.5 -relays -workers "$w" \
		-summary "$labdir/overlay-w$w.json" >/dev/null
done
diff "$labdir/overlay-w1.json" "$labdir/overlay-w2.json"
diff "$labdir/overlay-w1.json" "$labdir/overlay-w8.json"
"$labdir/mclab" run examples/lab/overlay.json -out "$labdir/overlay" -workers 4 -stamp ci >/dev/null
"$labdir/mclab" check -out "$labdir/overlay"

# Coverage tier: per-package statement coverage from a quick -short pass
# and the aggregate figure. Informational only — no threshold is enforced.
go test -short -count=1 -coverprofile="$diagdir/cover.out" ./...
go tool cover -func="$diagdir/cover.out" | tail -n 1
