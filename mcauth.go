// Package mcauth is a library for analyzing and running multicast / stream
// authentication schemes through the dependence-graph framework of
// "A graph-theoretical analysis of multicast authentication"
// (Aldar C-F. Chan, ICDCS 2003).
//
// It bundles three layers:
//
//   - Runnable schemes (Gennaro-Rohatgi hash chain, Wong-Lam authentication
//     tree, EMSS E_{m,d}, Golle-Modadugu augmented chain C_{a,b}, TESLA,
//     and a sign-every-packet baseline) that really sign, serialize and
//     verify packet streams.
//   - The dependence-graph core: every scheme exposes its graph, from which
//     authentication probabilities (exact, Monte-Carlo, bounds),
//     communication overhead, receiver delay and buffer sizes are derived.
//   - Analytic evaluators for all the paper's closed forms and recurrences,
//     plus an exact Markov-window evaluator, a lossy-multicast network
//     simulator, and the Section 5 construction toolkit.
//
// The facade re-exports the most common entry points; the sub-packages
// under internal/ carry the full API surface used by the cmd/ tools,
// examples/ and the benchmark harness.
package mcauth

import (
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/netsim"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stream"
)

// Core re-exported types.
type (
	// Scheme is a runnable multicast authentication scheme.
	Scheme = scheme.Scheme
	// Verifier is a receiver-side verification state machine.
	Verifier = scheme.Verifier
	// Graph is a dependence-graph (Definition 1 of the paper).
	Graph = depgraph.Graph
	// Signer signs block signatures (Ed25519).
	Signer = crypto.Signer
	// SimConfig parameterizes the lossy-multicast simulator.
	SimConfig = netsim.Config
	// SimResult is a simulation outcome.
	SimResult = netsim.Result
	// TESLAConfig parameterizes the TESLA scheme.
	TESLAConfig = tesla.Config
	// EMSSConfig parameterizes E_{m,d}.
	EMSSConfig = emss.Config
	// AugChainConfig parameterizes C_{a,b}.
	AugChainConfig = augchain.Config
)

// NewSigner derives a deterministic Ed25519 signer from an identity
// string. Production users should derive the seed from crypto/rand and use
// crypto.NewSigner directly.
func NewSigner(identity string) Signer {
	return crypto.NewSignerFromString(identity)
}

// NewRohatgi builds the Gennaro-Rohatgi hash chain over blocks of n
// packets: zero receiver delay, one hash per packet, no loss tolerance.
func NewRohatgi(n int, signer Signer) (Scheme, error) {
	return rohatgi.New(n, signer)
}

// NewEMSS builds EMSS E_{m,d}: each packet's hash is stored in m later
// packets at spacing d; the signature packet is last.
func NewEMSS(cfg EMSSConfig, signer Signer) (Scheme, error) {
	return emss.New(cfg, signer)
}

// NewAugChain builds the Golle-Modadugu augmented chain C_{a,b}.
func NewAugChain(cfg AugChainConfig, signer Signer) (Scheme, error) {
	return augchain.New(cfg, signer)
}

// NewAuthTree builds the Wong-Lam authentication tree: every packet is
// individually verifiable at log2(n) hashes plus a signature of overhead.
func NewAuthTree(n int, signer Signer) (Scheme, error) {
	return authtree.New(n, signer)
}

// NewAuthTreeArity builds a Wong-Lam tree of the given degree: higher
// arity trades wider per-packet sibling paths for a shallower tree.
func NewAuthTreeArity(n, arity int, signer Signer) (Scheme, error) {
	return authtree.NewArity(n, arity, signer)
}

// NewTESLA builds the TESLA scheme: per-interval MAC keys from a one-way
// chain, disclosed after cfg.Lag intervals, bootstrapped by one signed
// packet.
func NewTESLA(cfg TESLAConfig, signer Signer) (Scheme, error) {
	return tesla.New(cfg, signer)
}

// NewSignEach builds the sign-every-packet baseline.
func NewSignEach(n int, signer Signer) (Scheme, error) {
	return signeach.New(n, signer)
}

// Simulate multicasts one authenticated block to cfg.Receivers lossy
// receivers and reports per-receiver verification outcomes.
func Simulate(s Scheme, cfg SimConfig, blockID uint64, payloads [][]byte) (*SimResult, error) {
	return netsim.Run(s, cfg, blockID, payloads)
}

// Session-layer types for long-lived streams (see internal/stream and
// internal/transport for datagram/byte-stream carriage).
type (
	// StreamSender chops an unbounded message sequence into
	// authenticated blocks.
	StreamSender = stream.Sender
	// StreamReceiver demultiplexes interleaved blocks with bounded
	// state.
	StreamReceiver = stream.Receiver
	// Authenticated is one verified message from a StreamReceiver.
	Authenticated = stream.Authenticated
)

// NewStreamSender starts a block-chopping sender at the given block ID.
func NewStreamSender(s Scheme, startBlock uint64) (*StreamSender, error) {
	return stream.NewSender(s, startBlock)
}

// NewStreamReceiver creates a receiver keeping at most maxBlocks blocks of
// verification state (bounding the DoS surface the paper warns about).
func NewStreamReceiver(s Scheme, maxBlocks int) (*StreamReceiver, error) {
	return stream.NewReceiver(s, maxBlocks)
}

// Analytic evaluators (paper Equations 6-10 and the exact Markov window).
type (
	// AnalyticEMSS evaluates the E_{m,d} recurrence (Equations 8-9).
	AnalyticEMSS = analysis.EMSS
	// AnalyticAugChain evaluates the C_{a,b} recurrence (Equation 10).
	AnalyticAugChain = analysis.AugChain
	// AnalyticTESLA evaluates TESLA under Gaussian delay (Equations 6-7).
	AnalyticTESLA = analysis.TESLA
	// AnalyticPeriodic evaluates any periodic topology (Equation 9).
	AnalyticPeriodic = analysis.Periodic
	// AnalyticMarkovExact computes exact q_i for positive-offset
	// periodic topologies.
	AnalyticMarkovExact = analysis.MarkovExact
)

// AnalyticRohatgi returns the closed-form q_i of the simple hash chain.
func AnalyticRohatgi(n int, p float64) (analysis.Result, error) {
	return analysis.Rohatgi(n, p)
}

// TESLAAt builds a TESLA configuration with one packet per interval
// starting at start.
func TESLAAt(n, lag int, interval time.Duration, start time.Time, seed []byte) TESLAConfig {
	return TESLAConfig{N: n, Lag: lag, Interval: interval, Start: start, Seed: seed}
}
