package mcauth

// The benchmark harness regenerates every figure of the paper's evaluation
// section (Figures 3-10, one benchmark each), runs the ablation studies
// DESIGN.md calls out, and measures the raw cryptographic throughput that
// motivates signature amortization in the first place. Run with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/construct"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/depgraph"
	"mcauth/internal/experiments"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stats"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

// --- Figures -------------------------------------------------------------

func BenchmarkFig3TESLADelaySurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TESLADisclosureSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5AugmentedChainAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6AugmentedChainFixedLevel1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7EMSSMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SchemeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8aSeries(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig8bSeries(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9CloseUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Series(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10OverheadDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10Series(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationEdgeBudget sweeps the overhead<->robustness tradeoff of
// Section 3.1: q_min as the per-packet hash budget m grows.
func BenchmarkAblationEdgeBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 6; m++ {
			if _, err := (analysis.EMSS{N: 1000, M: m, D: 1, P: 0.3}).QMin(); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Report the tradeoff once.
	b.StopTimer()
	if b.N > 0 {
		for m := 1; m <= 6; m++ {
			qmin, err := analysis.EMSS{N: 1000, M: m, D: 1, P: 0.3}.QMin()
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("m=%d (edges/pkt≈%d): q_min=%.4f", m, m, qmin)
		}
	}
}

// BenchmarkAblationDelayConstraint compares EMSS with the receiver-delay
// knob d capped small vs spread wide, at equal edge budget.
func BenchmarkAblationDelayConstraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 10, 100, 400} {
			if _, err := (analysis.EMSS{N: 1000, M: 2, D: d, P: 0.3}).QMin(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationPathDiversity measures the Equation (1) bound spread
// (best-case disjoint vs worst-case overlapping paths) against the exact
// value on a mid-size EMSS graph.
func BenchmarkAblationPathDiversity(b *testing.B) {
	s, err := emss.New(emss.Config{N: 18, M: 2, D: 1}, crypto.NewSignerFromString("bench"))
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 2; v <= g.N(); v++ {
			if _, err := g.AuthProbBounds(v, 0.3, 10000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationRecurrenceVsExact compares the cost (and, via -v, the
// values) of the paper's recurrence against the exact Markov evaluator.
func BenchmarkAblationRecurrenceVsExact(b *testing.B) {
	b.Run("recurrence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (analysis.EMSS{N: 1000, M: 2, D: 1, P: 0.3}).QMin(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markov-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (analysis.MarkovExact{N: 1000, Offsets: []int{1, 2}, P: 0.3}).QMin(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationConstructors compares the Section 5 builders' costs.
func BenchmarkAblationConstructors(b *testing.B) {
	c := construct.Constraint{N: 100, P: 0.2, TargetQMin: 0.9, MaxOutDegree: 6}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := construct.Greedy(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("policy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := construct.PolicySearch(c, 8, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probabilistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := construct.Probabilistic(c, stats.NewRNG(uint64(i)+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Scheme throughput ----------------------------------------------------

func benchPayloads(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		out[i][0] = byte(i)
	}
	return out
}

func benchScheme(b *testing.B, name string) scheme.Scheme {
	b.Helper()
	signer := crypto.NewSignerFromString("bench")
	var (
		s   scheme.Scheme
		err error
	)
	const n = 128
	switch name {
	case "rohatgi":
		s, err = rohatgi.New(n, signer)
	case "emss":
		s, err = emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	case "augchain":
		s, err = augchain.New(augchain.Config{N: n, A: 3, B: 3}, signer)
	case "authtree":
		s, err = authtree.New(n, signer)
	case "signeach":
		s, err = signeach.New(n, signer)
	case "tesla":
		s, err = tesla.New(tesla.Config{
			N: n, Lag: 4, Interval: time.Millisecond,
			Start: time.Unix(0, 0), Seed: []byte("bench"),
		}, signer)
	default:
		b.Fatalf("unknown scheme %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAuthenticate measures sender-side cost per 128-packet block —
// the amortization argument in CPU terms: sign-each pays 128 signatures
// where the chained schemes pay one.
func BenchmarkAuthenticate(b *testing.B) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach", "tesla"} {
		b.Run(name, func(b *testing.B) {
			s := benchScheme(b, name)
			payloads := benchPayloads(s.BlockSize(), 512)
			b.SetBytes(int64(s.BlockSize() * 512))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Authenticate(uint64(i), payloads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify measures receiver-side cost per block with in-order
// delivery and no loss.
func BenchmarkVerify(b *testing.B) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach", "tesla"} {
		b.Run(name, func(b *testing.B) {
			s := benchScheme(b, name)
			payloads := benchPayloads(s.BlockSize(), 512)
			pkts, err := s.Authenticate(1, payloads)
			if err != nil {
				b.Fatal(err)
			}
			at := make([]time.Time, len(pkts))
			for w := range pkts {
				at[w] = time.Unix(0, 0).Add(time.Duration(w)*time.Millisecond + time.Microsecond)
			}
			b.SetBytes(int64(s.BlockSize() * 512))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Verifier construction is setup, not the measured
				// receiver-side verification cost.
				b.StopTimer()
				v, err := s.NewVerifier()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for w, p := range pkts {
					if _, err := v.Ingest(p, at[w]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkVerifySpanOverhead measures the tracing tax on the receiver
// verify path in its two production states: "off" (no span ring attached,
// the library default) and "disabled" (a ring attached but not enabled —
// the mcserved default, where every span site costs one atomic load).
// The ci gate holds disabled within 2% of off, which is what "near-zero
// overhead when disabled" means as an enforced number.
func BenchmarkVerifySpanOverhead(b *testing.B) {
	for _, mode := range []string{"off", "disabled"} {
		b.Run(mode, func(b *testing.B) {
			s := benchScheme(b, "emss")
			payloads := benchPayloads(s.BlockSize(), 512)
			pkts, err := s.Authenticate(1, payloads)
			if err != nil {
				b.Fatal(err)
			}
			at := make([]time.Time, len(pkts))
			for w := range pkts {
				at[w] = time.Unix(0, 0).Add(time.Duration(w)*time.Millisecond + time.Microsecond)
			}
			ring := obs.NewSpanRing(obs.DefaultSpanCapacity)
			b.SetBytes(int64(s.BlockSize() * 512))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v, err := s.NewVerifier()
				if err != nil {
					b.Fatal(err)
				}
				if mode == "disabled" {
					sa, ok := v.(scheme.SpanAware)
					if !ok {
						b.Fatal("emss verifier lost its SpanAware implementation")
					}
					sa.SetSpans(ring, 1)
				}
				b.StartTimer()
				for w, p := range pkts {
					if _, err := v.Ingest(p, at[w]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkVerifyServing measures receiver-side cost in the serving
// configuration: one signature amortized over K block roots (authtree via
// deferred batch signing, signeach via MABS runs of K), verified through
// the receiver fast path — shared signature cache plus deferred
// batch-verify queue — so the K packets (or blocks) sharing an underlying
// signature cost one Ed25519 check.
func BenchmarkVerifyServing(b *testing.B) {
	const n = 128
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("signeach/K=%d", k), func(b *testing.B) {
			s, err := signeach.NewBatched(n, k, crypto.NewSignerFromString("bench"))
			if err != nil {
				b.Fatal(err)
			}
			pkts, err := s.Authenticate(1, benchPayloads(n, 512))
			if err != nil {
				b.Fatal(err)
			}
			at := time.Unix(0, 0)
			b.SetBytes(int64(n * 512))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v, err := s.NewVerifier()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				authed := 0
				for _, p := range pkts {
					events, err := v.Ingest(p, at)
					if err != nil {
						b.Fatal(err)
					}
					authed += len(events)
				}
				if authed != n {
					b.Fatalf("authenticated %d of %d", authed, n)
				}
			}
		})
		b.Run(fmt.Sprintf("authtree/K=%d", k), func(b *testing.B) {
			signer := crypto.NewSignerFromString("bench")
			s, err := authtree.New(n, signer)
			if err != nil {
				b.Fatal(err)
			}
			payloads := benchPayloads(n, 512)
			// K blocks whose roots share one batch signature — the send
			// side of the serving daemon.
			var (
				blocks   [][]*packet.Packet
				prs      []*scheme.PendingRoot
				contents [][]byte
			)
			for blk := 1; blk <= k; blk++ {
				pkts, pr, err := s.AuthenticateDeferred(uint64(blk), payloads)
				if err != nil {
					b.Fatal(err)
				}
				blocks = append(blocks, pkts)
				prs = append(prs, pr)
				contents = append(contents, pr.Content)
			}
			blobs, err := crypto.BatchSign(signer, contents)
			if err != nil {
				b.Fatal(err)
			}
			for i, pr := range prs {
				pr.Attach(blobs[i])
			}
			at := time.Unix(0, 0)
			b.SetBytes(int64(k * n * 512))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rcv, err := stream.NewReceiver(s, k+1)
				if err != nil {
					b.Fatal(err)
				}
				sig, err := crypto.NewSigCache(crypto.MaxBatch)
				if err != nil {
					b.Fatal(err)
				}
				q, err := crypto.NewBatchVerifyQueue(k, sig)
				if err != nil {
					b.Fatal(err)
				}
				rcv.SetBatchVerify(q)
				b.StartTimer()
				authed := 0
				for _, pkts := range blocks {
					for _, p := range pkts {
						auths, err := rcv.Ingest(p, at)
						if err != nil {
							b.Fatal(err)
						}
						authed += len(auths)
					}
				}
				q.Resolve()
				authed += len(rcv.DrainDeferred())
				if authed != k*n {
					b.Fatalf("authenticated %d of %d", authed, k*n)
				}
			}
		})
	}
}

// BenchmarkWireEncode measures packet serialization.
func BenchmarkWireEncode(b *testing.B) {
	s := benchScheme(b, "emss")
	pkts, err := s.Authenticate(1, benchPayloads(s.BlockSize(), 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pkts {
			if _, err := p.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEncodeAppend measures the append-style serialization used on
// the wire hot path: one reused buffer across the whole block.
func BenchmarkEncodeAppend(b *testing.B) {
	s := benchScheme(b, "emss")
	pkts, err := s.Authenticate(1, benchPayloads(s.BlockSize(), 512))
	if err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, p := range pkts {
			if buf, err = p.AppendEncode(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Analysis machinery ----------------------------------------------------

// BenchmarkMonteCarloAuthProb measures graph Monte-Carlo estimation
// (n=100, 1000 trials).
func BenchmarkMonteCarloAuthProb(b *testing.B) {
	s, err := emss.New(emss.Config{N: 100, M: 2, D: 1}, crypto.NewSignerFromString("bench"))
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	pattern := depgraph.BernoulliPatternInto(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MonteCarloAuthProbInto(pattern, 1000, rng, depgraph.MCOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloAuthProbParallel measures the sharded Monte-Carlo
// engine across worker counts (n=100, 20000 trials); results are
// bit-identical for every setting, only wall-clock changes.
func BenchmarkMonteCarloAuthProbParallel(b *testing.B) {
	s, err := emss.New(emss.Config{N: 100, M: 2, D: 1}, crypto.NewSignerFromString("bench"))
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	pattern := depgraph.BernoulliPatternInto(0.2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if workers > 1 && runtime.NumCPU() == 1 {
				// On a single-CPU host the extra workers only add
				// scheduling noise; the rows would poison baseline
				// comparisons made on wider machines.
				b.Skip("single CPU: multi-worker rows are noise")
			}
			rng := stats.NewRNG(1)
			opts := depgraph.MCOptions{Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.MonteCarloAuthProbInto(pattern, 20000, rng, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactAuthProb measures exhaustive enumeration at n=18.
func BenchmarkExactAuthProb(b *testing.B) {
	s, err := emss.New(emss.Config{N: 18, M: 2, D: 1}, crypto.NewSignerFromString("bench"))
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ExactAuthProb(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimBlock measures a full multicast simulation (50 receivers,
// 100-packet EMSS block).
func BenchmarkNetsimBlock(b *testing.B) {
	s, err := emss.New(emss.Config{N: 100, M: 2, D: 1}, crypto.NewSignerFromString("bench"))
	if err != nil {
		b.Fatal(err)
	}
	model, err := loss.NewBernoulli(0.1)
	if err != nil {
		b.Fatal(err)
	}
	payloads := benchPayloads(100, 256)
	cfg := netsim.Config{
		Receivers:    50,
		Loss:         model,
		Delay:        delay.Constant{D: time.Millisecond},
		SendInterval: time.Millisecond,
		Start:        time.Unix(0, 0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := netsim.Run(s, cfg, uint64(i), payloads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPipeline measures the full session layer: chop messages
// into blocks, authenticate, serialize, deserialize, demultiplex, verify.
func BenchmarkStreamPipeline(b *testing.B) {
	s := benchScheme(b, "emss")
	const messages = 512 // 4 blocks of 128
	payload := make([]byte, 256)
	b.SetBytes(int64(messages * len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Session setup is not the measured pipeline cost.
		b.StopTimer()
		snd, err := stream.NewSender(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		rcv, err := stream.NewReceiver(s, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		authenticated := 0
		for m := 0; m < messages; m++ {
			pkts, err := snd.Push(payload)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pkts {
				wire, err := p.Encode()
				if err != nil {
					b.Fatal(err)
				}
				events, err := rcv.IngestWire(wire, time.Unix(0, 0))
				if err != nil {
					b.Fatal(err)
				}
				authenticated += len(events)
			}
		}
		if authenticated != messages {
			b.Fatalf("authenticated %d, want %d", authenticated, messages)
		}
	}
}

// BenchmarkFrameRoundTrip measures the byte-stream transport framing.
func BenchmarkFrameRoundTrip(b *testing.B) {
	s := benchScheme(b, "emss")
	pkts, err := s.Authenticate(1, benchPayloads(s.BlockSize(), 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fw := transport.NewFrameWriter(&buf)
		for _, p := range pkts {
			if err := fw.WritePacket(p); err != nil {
				b.Fatal(err)
			}
		}
		fr := transport.NewFrameReader(&buf)
		for range pkts {
			if _, err := fr.ReadPacket(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExperimentEndToEnd renders every registered experiment once per
// iteration (the full `mcfig -all` workload).
func BenchmarkExperimentEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if e.ID == "validate" || e.ID == "burst" {
				continue // dominated by their own benchmarks above
			}
			if err := e.Run(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
