// Stockticker: the paper's motivating scenario — stock quotes multicast to
// many untrusted subscribers, where no subscriber may be able to forge
// quotes to another. This example streams quotes under TESLA: per-interval
// MAC keys from a one-way chain, disclosed two intervals later, and a
// safety condition that drops any quote arriving after its key became
// public.
//
// Run with: go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"time"

	"mcauth"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		quotes   = 24
		lag      = 2
		interval = 50 * time.Millisecond
	)
	start := time.Unix(1_700_000_000, 0)
	signer := mcauth.NewSigner("exchange-feed")
	s, err := mcauth.NewTESLA(mcauth.TESLAAt(quotes, lag, interval, start, []byte("ticker-chain")), signer)
	if err != nil {
		return err
	}

	tickers := []string{"ACME", "GLOBEX", "INITECH", "HOOLI"}
	payloads := make([][]byte, quotes)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "%s %0.2f", tickers[i%len(tickers)], 100+float64(i)*0.25)
	}

	// Multicast to 50 subscribers over a jittery, lossy network.
	lossModel, err := loss.NewBernoulli(0.15)
	if err != nil {
		return err
	}
	delayModel, err := delay.NewGaussian(20*time.Millisecond, 8*time.Millisecond)
	if err != nil {
		return err
	}
	res, err := mcauth.Simulate(s, mcauth.SimConfig{
		Receivers:       50,
		Loss:            lossModel,
		Delay:           delayModel,
		SendInterval:    interval,
		Start:           start,
		Seed:            2024,
		ReliableIndices: []uint32{1}, // the signed bootstrap packet
	}, 1, payloads)
	if err != nil {
		return err
	}

	var delivered, authentic, unsafeDrops int
	for _, rep := range res.PerReceiver {
		delivered += rep.Delivered
		authentic += rep.Stats.Authenticated
		unsafeDrops += rep.Stats.Unsafe
	}
	fmt.Printf("subscribers: %d\n", len(res.PerReceiver))
	fmt.Printf("quotes delivered: %d, authenticated: %d, dropped unsafe: %d\n",
		delivered, authentic, unsafeDrops)

	// A subscriber cannot forge quotes for its peers: replay receiver 0's
	// packets with a doctored price and watch the MAC fail.
	pkts, err := s.Authenticate(2, payloads)
	if err != nil {
		return err
	}
	v, err := s.NewVerifier()
	if err != nil {
		return err
	}
	forgedAccepted := false
	for w, p := range pkts {
		deliver := p
		if p.KeyIndex == 5 {
			evil := *p
			evil.Payload = []byte("ACME 9999.99")
			deliver = &evil
		}
		at := start.Add(time.Duration(w)*interval + 5*time.Millisecond)
		events, err := v.Ingest(deliver, at)
		if err != nil {
			return err
		}
		for _, e := range events {
			if string(e.Payload) == "ACME 9999.99" {
				forgedAccepted = true
			}
		}
	}
	if forgedAccepted {
		return fmt.Errorf("forged quote accepted — broken MAC verification")
	}
	fmt.Printf("forged quote rejected: %d MAC rejections recorded\n", v.Stats().Rejected)
	return nil
}
