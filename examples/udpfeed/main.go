// UDP feed: an authenticated stream over a real UDP socket on loopback —
// the session layer (multi-block sender/receiver) and the datagram
// transport working together. The sender streams messages chopped into
// EMSS blocks; the listener verifies them as datagrams arrive and delivers
// authenticated messages on a channel.
//
// Run with: go run ./examples/udpfeed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		blockSize = 8
		messages  = 32
	)
	s, err := emss.New(emss.Config{N: blockSize, M: 2, D: 1}, crypto.NewSignerFromString("udp-feed"))
	if err != nil {
		return err
	}

	// Receiver side: bind a UDP socket and start the listener.
	recvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("this environment has no UDP loopback: %w", err)
	}
	rcv, err := stream.NewReceiver(s, 4)
	if err != nil {
		return err
	}
	listener, err := transport.Listen(recvConn, rcv, time.Now)
	if err != nil {
		return err
	}

	// Sender side: its own socket, aimed at the receiver.
	sendConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sendConn.Close()
	sender, err := transport.NewDatagramSender(sendConn, recvConn.LocalAddr())
	if err != nil {
		return err
	}

	snd, err := stream.NewSender(s, 1)
	if err != nil {
		return err
	}
	go func() {
		for i := 0; i < messages; i++ {
			pkts, err := snd.Push(fmt.Appendf(nil, "update #%02d", i))
			if err != nil {
				log.Printf("push: %v", err)
				return
			}
			for _, p := range pkts {
				// A saturated loopback socket (ENOBUFS, EAGAIN) is not a
				// reason to kill the feed: retry with capped backoff and
				// give up only on permanent errors.
				if err := sender.SendWithRetry(p, 5, time.Millisecond); err != nil {
					if transport.IsTransientSendErr(err) {
						log.Printf("send %d/%d: still transient after retries, dropping: %v", p.BlockID, p.Index, err)
						continue
					}
					log.Printf("send %d/%d: permanent error, stopping feed: %v", p.BlockID, p.Index, err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	received := 0
	timeout := time.After(10 * time.Second)
	for received < messages {
		select {
		case a, ok := <-listener.Events():
			if !ok {
				return fmt.Errorf("listener closed with %d/%d messages", received, messages)
			}
			received++
			fmt.Printf("block %d / packet %2d: %s\n", a.BlockID, a.Index, a.Payload)
		case <-timeout:
			return fmt.Errorf("timed out with %d/%d messages", received, messages)
		}
	}
	if err := listener.Close(); err != nil {
		return err
	}
	totals := listener.Totals()
	fmt.Printf("\nauthenticated %d messages across %d wire packets (%d bytes)\n",
		totals.Authenticated, totals.Packets, totals.WireBytes)
	// The per-verifier histograms roll up into the session totals, so a
	// transport-driven run gets real receiver-delay numbers (the paper's
	// Section 3 delay metric, measured rather than counted in slots).
	if tta := totals.TimeToAuth; tta.Count > 0 {
		fmt.Printf("receiver delay (arrival to auth): mean %v  p50 %v  p99 %v  max %v\n",
			time.Duration(tta.Mean()),
			time.Duration(tta.Quantile(0.50)),
			time.Duration(tta.Quantile(0.99)),
			time.Duration(tta.MaxSeen))
	}
	return nil
}
