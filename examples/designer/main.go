// Designer: use the Section 5 construction toolkit to design a
// hash-chaining topology for a given network. Given a loss rate and a
// target minimum authentication probability, compare the greedy builder,
// the uniform-policy search, and probabilistic edge placement — then run
// the winning design as an actual scheme.
//
// Run with: go run ./examples/designer
package main

import (
	"fmt"
	"log"
	"time"

	"mcauth/internal/construct"
	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/scheme"
	"mcauth/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c := construct.Constraint{N: 80, P: 0.25, TargetQMin: 0.9, MaxOutDegree: 4}
	fmt.Printf("design goal: n=%d packets, loss p=%.2f, q_min >= %.2f, <=%d hashes/pkt\n\n",
		c.N, c.P, c.TargetQMin, c.MaxOutDegree)

	greedy, err := construct.Greedy(c)
	if err != nil {
		return err
	}
	fmt.Printf("greedy:        %.2f edges/pkt, achieves q_min=%.3f (met=%v)\n",
		greedy.EdgesPerPacket, greedy.QMin, greedy.Met)

	policy, m, d, err := construct.PolicySearch(c, 8, 4)
	if err != nil {
		return err
	}
	fmt.Printf("policy m=%d d=%d: %.2f edges/pkt, achieves q_min=%.3f (met=%v)\n",
		m, d, policy.EdgesPerPacket, policy.QMin, policy.Met)

	prob, rho, err := construct.Probabilistic(c, stats.NewRNG(7))
	if err != nil {
		return err
	}
	fmt.Printf("random rho=%.3f: %.2f edges/pkt, achieves q_min=%.3f (met=%v)\n\n",
		rho, prob.EdgesPerPacket, prob.QMin, prob.Met)

	// Turn the cheapest winning design into a runnable scheme and verify
	// a real block through it. The designed graphs are signature-first,
	// so the wire topology is the graph itself.
	best := greedy
	if policy.Met && policy.EdgesPerPacket < best.EdgesPerPacket {
		best = policy
	}
	topo := scheme.Topology{
		Name:  "designed",
		N:     best.Graph.N(),
		Root:  best.Graph.Root(),
		Edges: best.Graph.Edges(),
	}
	s, err := scheme.NewChained(topo, crypto.NewSignerFromString("designer"))
	if err != nil {
		return err
	}
	payloads := make([][]byte, c.N)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "designed-payload-%d", i)
	}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		return err
	}
	v, err := s.NewVerifier()
	if err != nil {
		return err
	}
	verified := 0
	for _, p := range pkts {
		events, err := v.Ingest(p, time.Now())
		if err != nil {
			return err
		}
		verified += len(events)
	}
	fmt.Printf("designed scheme verified %d/%d packets on a loss-free run\n", verified, c.N)

	// Cross-check the design against ground truth, not just the
	// approximation it was optimized for.
	mc, err := best.Graph.MonteCarloAuthProb(depgraph.BernoulliPattern(c.P), 20000, stats.NewRNG(99))
	if err != nil {
		return err
	}
	fmt.Printf("Monte-Carlo q_min of the design at p=%.2f: %.3f (approx model said %.3f)\n",
		c.P, mc.QMin, best.QMin)
	return nil
}
