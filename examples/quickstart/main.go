// Quickstart: authenticate a block of stream packets with EMSS, lose some
// packets in transit, tamper with one, and watch the receiver verify what
// the dependence-graph says it should.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mcauth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const blockSize = 16
	signer := mcauth.NewSigner("quickstart-sender")

	// EMSS E_{2,1}: every packet's hash is stored in the next two
	// packets; the last packet carries the block signature.
	s, err := mcauth.NewEMSS(mcauth.EMSSConfig{N: blockSize, M: 2, D: 1}, signer)
	if err != nil {
		return err
	}

	payloads := make([][]byte, blockSize)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "message %02d", i+1)
	}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		return err
	}

	// The receiver: drop packets 4 and 5 (a small burst), tamper with
	// packet 7, deliver the rest in order.
	v, err := s.NewVerifier()
	if err != nil {
		return err
	}
	lost := map[uint32]bool{4: true, 5: true}
	now := time.Now()
	verified := 0
	for _, p := range pkts {
		if lost[p.Index] {
			fmt.Printf("packet %2d: lost in transit\n", p.Index)
			continue
		}
		deliver := p
		if p.Index == 7 {
			evil := *p
			evil.Payload = []byte("forged msg!")
			deliver = &evil
		}
		events, err := v.Ingest(deliver, now)
		if err != nil {
			return err
		}
		for _, e := range events {
			verified++
			fmt.Printf("packet %2d: AUTHENTIC %q\n", e.Index, e.Payload)
		}
	}
	st := v.Stats()
	fmt.Printf("\nreceived %d, authentic %d, rejected (tampered) %d\n",
		st.Received, st.Authenticated, st.Rejected)

	// The dependence-graph predicts this: consult it for the block's
	// static metrics.
	g, err := s.Graph()
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d edges, %.2f hashes/packet, signature packet P%d\n",
		g.NumEdges(), g.AvgHashesPerPacket(), g.Root())
	if verified == 0 {
		return fmt.Errorf("nothing verified; something is wrong")
	}
	return nil
}
