// Videostream: a long-lived broadcast (the paper's video-over-Internet
// scenario) streamed block by block under the augmented chain C_{3,3},
// which was designed to survive bursty loss. Each block of frames is
// authenticated independently so late joiners synchronize at the next
// block boundary; the network drops a contiguous burst per block
// (Gilbert-Elliott), exactly the adversary AC targets.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"time"

	"mcauth"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		framesPerBlock = 41 // 10 chain segments of b+1=4, plus the signed packet
		blocks         = 5
		receivers      = 30
	)
	signer := mcauth.NewSigner("broadcast-station")
	s, err := mcauth.NewAugChain(mcauth.AugChainConfig{N: framesPerBlock, A: 3, B: 3}, signer)
	if err != nil {
		return err
	}

	// Bursty loss: mean burst of 3 packets, stationary loss rate 10%.
	lossModel, err := loss.NewGilbertElliott(0.1/3/0.9, 1.0/3, 0, 1)
	if err != nil {
		return err
	}
	delayModel, err := delay.NewGaussian(30*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		return err
	}

	var totalFrames, totalVerified, totalDelivered int
	for block := uint64(1); block <= blocks; block++ {
		frames := make([][]byte, framesPerBlock)
		for i := range frames {
			frames[i] = fmt.Appendf(nil, "frame<%d/%d>", block, i+1)
		}
		res, err := mcauth.Simulate(s, mcauth.SimConfig{
			Receivers:       receivers,
			Loss:            lossModel,
			Delay:           delayModel,
			SendInterval:    33 * time.Millisecond, // ~30 fps
			Start:           time.Unix(0, 0).Add(time.Duration(block) * time.Second),
			Seed:            block,
			ReliableIndices: []uint32{framesPerBlock}, // signature frame
		}, block, frames)
		if err != nil {
			return err
		}
		var verified, delivered int
		for _, rep := range res.PerReceiver {
			verified += rep.Stats.Authenticated
			delivered += rep.Delivered
		}
		totalFrames += framesPerBlock * receivers
		totalVerified += verified
		totalDelivered += delivered
		fmt.Printf("block %d: delivered %4d/%4d frames, authenticated %4d (%.1f%% of delivered)\n",
			block, delivered, framesPerBlock*receivers, verified,
			100*float64(verified)/float64(delivered))
	}
	fmt.Printf("\nstream total: %.1f%% of all frames delivered, %.1f%% of delivered frames authenticated\n",
		100*float64(totalDelivered)/float64(totalFrames),
		100*float64(totalVerified)/float64(totalDelivered))

	// Compare with what the analysis predicts for this block size.
	qmin, err := mcauth.AnalyticAugChain{N: framesPerBlock, A: 3, B: 3, P: 0.1}.QMin()
	if err != nil {
		return err
	}
	fmt.Printf("analytic q_min under i.i.d. loss at the same rate: %.3f\n", qmin)
	fmt.Println("(bursty loss hits harder than i.i.d. at the same rate — see `mcfig -fig burst`)")
	return nil
}
