package mcauth_test

import (
	"fmt"
	"time"

	"mcauth"
)

// ExampleNewEMSS authenticates a small block and verifies it in order.
func ExampleNewEMSS() {
	signer := mcauth.NewSigner("example-sender")
	s, err := mcauth.NewEMSS(mcauth.EMSSConfig{N: 4, M: 2, D: 1}, signer)
	if err != nil {
		fmt.Println(err)
		return
	}
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		fmt.Println(err)
		return
	}
	v, err := s.NewVerifier()
	if err != nil {
		fmt.Println(err)
		return
	}
	authentic := 0
	for _, p := range pkts {
		events, err := v.Ingest(p, time.Unix(0, 0))
		if err != nil {
			fmt.Println(err)
			return
		}
		authentic += len(events)
	}
	fmt.Printf("authenticated %d of %d\n", authentic, len(payloads))
	// Output: authenticated 4 of 4
}

// ExampleScheme_graph reads the paper's metrics off a scheme's
// dependence-graph.
func ExampleNewRohatgi() {
	signer := mcauth.NewSigner("example-sender")
	s, err := mcauth.NewRohatgi(10, signer)
	if err != nil {
		fmt.Println(err)
		return
	}
	g, err := s.Graph()
	if err != nil {
		fmt.Println(err)
		return
	}
	delay, err := g.MaxDeterministicDelay()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("edges=%d hashes/pkt=%.1f delay=%d\n",
		g.NumEdges(), g.AvgHashesPerPacket(), delay)
	// Output: edges=9 hashes/pkt=0.9 delay=0
}

// ExampleAnalyticEMSS evaluates the paper's Equation (8) recurrence and
// the exact Markov evaluation side by side.
func ExampleAnalyticEMSS() {
	recurrence, err := mcauth.AnalyticEMSS{N: 100, M: 2, D: 1, P: 0.1}.QMin()
	if err != nil {
		fmt.Println(err)
		return
	}
	exact, err := mcauth.AnalyticMarkovExact{N: 100, Offsets: []int{1, 2}, P: 0.1}.QMin()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("recurrence=%.4f exact=%.4f\n", recurrence, exact)
	// Output: recurrence=0.9877 exact=0.4090
}

// ExampleNewStreamSender streams two blocks through the session layer.
func ExampleNewStreamSender() {
	signer := mcauth.NewSigner("example-sender")
	s, err := mcauth.NewEMSS(mcauth.EMSSConfig{N: 4, M: 2, D: 1}, signer)
	if err != nil {
		fmt.Println(err)
		return
	}
	snd, err := mcauth.NewStreamSender(s, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	rcv, err := mcauth.NewStreamReceiver(s, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	verified := 0
	for i := 0; i < 8; i++ {
		pkts, err := snd.Push([]byte{byte(i)})
		if err != nil {
			fmt.Println(err)
			return
		}
		for _, p := range pkts {
			events, err := rcv.Ingest(p, time.Unix(0, 0))
			if err != nil {
				fmt.Println(err)
				return
			}
			verified += len(events)
		}
	}
	fmt.Printf("verified %d messages across %d blocks\n", verified, snd.NextBlockID()-1)
	// Output: verified 8 messages across 2 blocks
}
