module mcauth

go 1.22
