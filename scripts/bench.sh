#!/bin/sh
# Runs the root-package benchmark suite and records the results as
# BENCH_<shortsha>.json in the repo root, so perf changes can be compared
# commit to commit.
#
# Usage:
#   scripts/bench.sh                 # full suite
#   scripts/bench.sh 'MonteCarlo'    # benchmarks matching a regex
#   scripts/bench.sh -dirty          # allow an unclean tree (results are
#                                    # tagged <sha>-dirty and not comparable)
#   scripts/bench.sh -out-dir lab/bench   # write into a history directory
#                                    # (mclab render/check scan these)
#   BENCHTIME=2s scripts/bench.sh    # override -benchtime
set -eu

cd "$(dirname "$0")/.."
allow_dirty=0
out_dir=.
while [ $# -gt 0 ]; do
	case "$1" in
	-dirty)
		allow_dirty=1
		shift
		;;
	-out-dir)
		[ $# -ge 2 ] || { echo "bench.sh: -out-dir needs a directory" >&2; exit 2; }
		out_dir=$2
		shift 2
		;;
	*)
		break
		;;
	esac
done
sha=$(git rev-parse --short HEAD)
commit=$(git rev-parse HEAD)
if ! git diff --quiet HEAD 2>/dev/null; then
	if [ "$allow_dirty" -ne 1 ]; then
		echo "bench.sh: working tree is dirty; results would not be attributable to a commit." >&2
		echo "bench.sh: commit or stash first, or rerun as: scripts/bench.sh -dirty" >&2
		exit 1
	fi
	echo "bench.sh: WARNING: dirty tree, tagging results ${sha}-dirty (excluded from mclab bench gating)" >&2
	sha="${sha}-dirty"
	commit="${commit}-dirty"
fi
pattern="${1:-.}"
benchtime="${BENCHTIME:-1s}"
mkdir -p "$out_dir"
out="${out_dir}/BENCH_${sha}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Parallel-scaling rows are meaningless unless you know the machine shape;
# put it in front of the numbers, not just buried in the JSON.
echo "bench.sh: commit=${sha} cpus=$(nproc) GOMAXPROCS=${GOMAXPROCS:-$(nproc)} $(go env GOVERSION)" >&2

go test -run='^$' -bench="$pattern" -benchmem -benchtime="$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "commit": "%s",\n' "$commit"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc)"
	printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc)}"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "generated_at_unix": %s,\n' "$(date +%s)"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			name = $1; iters = $2
			ns = "null"; bytes = "null"; allocs = "null"; mbs = "null"
			for (i = 3; i < NF; i++) {
				if ($(i + 1) == "ns/op") ns = $i
				if ($(i + 1) == "B/op") bytes = $i
				if ($(i + 1) == "allocs/op") allocs = $i
				if ($(i + 1) == "MB/s") mbs = $i
			}
			if (n++) printf ",\n"
			printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"mb_per_s\": %s}", \
				name, iters, ns, bytes, allocs, mbs
		}
		END { printf "\n" }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out" >&2
