package mcauth

import (
	"testing"
	"time"

	"mcauth/internal/delay"
	"mcauth/internal/loss"
)

func TestFacadeEndToEnd(t *testing.T) {
	signer := NewSigner("facade-sender")
	schemes := map[string]func() (Scheme, error){
		"rohatgi":   func() (Scheme, error) { return NewRohatgi(10, signer) },
		"emss":      func() (Scheme, error) { return NewEMSS(EMSSConfig{N: 10, M: 2, D: 1}, signer) },
		"augchain":  func() (Scheme, error) { return NewAugChain(AugChainConfig{N: 13, A: 2, B: 3}, signer) },
		"authtree":  func() (Scheme, error) { return NewAuthTree(10, signer) },
		"authtree4": func() (Scheme, error) { return NewAuthTreeArity(10, 4, signer) },
		"signeach":  func() (Scheme, error) { return NewSignEach(10, signer) },
		"tesla": func() (Scheme, error) {
			return NewTESLA(TESLAAt(10, 2, 50*time.Millisecond, time.Unix(0, 0), []byte("k")), signer)
		},
	}
	model, err := loss.NewBernoulli(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range schemes {
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			payloads := make([][]byte, s.BlockSize())
			for i := range payloads {
				payloads[i] = []byte{byte(i)}
			}
			res, err := Simulate(s, SimConfig{
				Receivers:    20,
				Loss:         model,
				Delay:        delay.Constant{D: time.Millisecond},
				SendInterval: 50 * time.Millisecond,
				Start:        time.Unix(0, 0),
				Seed:         1,
			}, 1, payloads)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalAuthenticated() == 0 {
				t.Error("nothing authenticated")
			}
			g, err := s.Graph()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestFacadeAnalytics(t *testing.T) {
	res, err := AnalyticRohatgi(100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin <= 0 || res.QMin >= 1 {
		t.Errorf("QMin = %v out of (0,1)", res.QMin)
	}
	qmin, err := AnalyticEMSS{N: 1000, M: 2, D: 1, P: 0.1}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := AnalyticMarkovExact{N: 1000, Offsets: []int{1, 2}, P: 0.1}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if exact > qmin {
		t.Errorf("exact %v exceeds recurrence %v", exact, qmin)
	}
}
