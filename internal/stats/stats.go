// Package stats provides the small statistical toolkit used throughout the
// dependence-graph analyses: the standard normal distribution (the paper's
// Gaussian end-to-end delay model, Section 4.1), summary statistics for
// Monte-Carlo runs, and binomial confidence intervals used when comparing
// measured verification ratios against analytic authentication
// probabilities.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NormalCDF returns Phi((x-mu)/sigma), the probability that a Gaussian
// random variable with mean mu and standard deviation sigma is <= x.
//
// This is the Pr{D_e2e <= d} of Equation (5) in the paper. sigma must be
// positive; a zero sigma degenerates to a step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x >= mu {
			return 1
		}
		return 0
	}
	return StdNormalCDF((x - mu) / sigma)
}

// StdNormalCDF returns Phi(z) for the standard normal distribution.
func StdNormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// StdNormalPDF returns the standard normal density phi(z).
func StdNormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// StdNormalQuantile returns z such that Phi(z) = p, for p in (0, 1).
// It uses bisection on the CDF, which is plenty accurate for the
// confidence-interval use in this repository.
func StdNormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile probability %v out of (0,1)", p)
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StdNormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	StdDev float64
	Min    float64
	Max    float64
}

// ErrEmptySample is returned when a summary or quantile of an empty sample
// is requested.
var ErrEmptySample = errors.New("stats: empty sample")

// Summarize computes descriptive statistics over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptySample
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Var)
	}
	return s, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lo && x <= iv.Hi
}

// WilsonInterval returns the Wilson score confidence interval for a binomial
// proportion with successes out of trials at the given confidence level
// (e.g. 0.95). It is well behaved for proportions near 0 or 1, which is the
// common case for authentication probabilities.
func WilsonInterval(successes, trials int, confidence float64) (Interval, error) {
	if trials <= 0 {
		return Interval{}, fmt.Errorf("stats: wilson interval needs trials > 0, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return Interval{}, fmt.Errorf("stats: successes %d out of [0,%d]", successes, trials)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v out of (0,1)", confidence)
	}
	z, err := StdNormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return Interval{}, err
	}
	n := float64(trials)
	phat := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n)) / denom
	iv := Interval{Lo: math.Max(0, center-half), Hi: math.Min(1, center+half)}
	// Guard against floating-point residue excluding the degenerate
	// proportions 0 and 1, for which the Wilson bound is exact.
	if successes == 0 {
		iv.Lo = 0
	}
	if successes == trials {
		iv.Hi = 1
	}
	return iv, nil
}
