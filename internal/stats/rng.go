package stats

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Simulations in this repository take
// an explicit *RNG rather than relying on a global source so that every
// experiment is reproducible from its seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Normal(mu, sigma float64) float64 {
	// Avoid log(0) by mapping u1 into (0, 1].
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := sqrtNeg2Log(u1) * cosTwoPi(u2)
	return mu + sigma*z
}

// Split derives an independent generator; useful for fanning a seed out to
// parallel receivers without correlating their streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
