package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		z    float64
		want float64
	}{
		{0, 0.5},
		{1, 0.8413447},
		{-1, 0.1586553},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.9986501},
	}
	for _, tt := range tests {
		got := StdNormalCDF(tt.z)
		if math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("StdNormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestNormalCDFShiftScale(t *testing.T) {
	// Phi((x-mu)/sigma) must equal the standardized evaluation.
	got := NormalCDF(2.5, 1.0, 0.5)
	want := StdNormalCDF(3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NormalCDF(2.5,1,0.5) = %v, want %v", got, want)
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("NormalCDF below mean with sigma=0 = %v, want 0", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("NormalCDF above mean with sigma=0 = %v, want 1", got)
	}
}

func TestStdNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999} {
		z, err := StdNormalQuantile(p)
		if err != nil {
			t.Fatalf("StdNormalQuantile(%v): %v", p, err)
		}
		if back := StdNormalCDF(z); math.Abs(back-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestStdNormalQuantileRejectsOutOfRange(t *testing.T) {
	for _, p := range []float64{-0.1, 0, 1, 1.5} {
		if _, err := StdNormalQuantile(p); err == nil {
			t.Errorf("StdNormalQuantile(%v) should fail", p)
		}
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("unexpected summary %+v", s)
	}
	wantVar := (2.25 + 0.25 + 0.25 + 2.25) / 3
	if math.Abs(s.Var-wantVar) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var, wantVar)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmptySample {
		t.Errorf("err = %v, want ErrEmptySample", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("out-of-range q should fail")
	}
}

func TestWilsonIntervalCoversPointEstimate(t *testing.T) {
	iv, err := WilsonInterval(80, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.8) {
		t.Errorf("interval %+v does not contain 0.8", iv)
	}
	if iv.Lo < 0.70 || iv.Hi > 0.90 {
		t.Errorf("interval %+v implausibly wide for n=100", iv)
	}
}

func TestWilsonIntervalExtremes(t *testing.T) {
	iv, err := WilsonInterval(0, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 {
		t.Errorf("zero successes should give Lo=0, got %v", iv.Lo)
	}
	iv, err = WilsonInterval(50, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi != 1 {
		t.Errorf("all successes should give Hi=1, got %v", iv.Hi)
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	cases := []struct{ s, n int }{{-1, 10}, {11, 10}, {5, 0}}
	for _, c := range cases {
		if _, err := WilsonInterval(c.s, c.n, 0.95); err == nil {
			t.Errorf("WilsonInterval(%d,%d) should fail", c.s, c.n)
		}
	}
	if _, err := WilsonInterval(5, 10, 1.0); err == nil {
		t.Error("confidence=1 should fail")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGBernoulliFrequency(t *testing.T) {
	r := NewRNG(11)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / trials
	if math.Abs(freq-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %v", freq)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Normal(5, 2)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-5) > 0.05 {
		t.Errorf("mean %v, want ~5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 0.05 {
		t.Errorf("stddev %v, want ~2", s.StdDev)
	}
}

func TestRNGIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Error("split stream should differ from parent")
	}
}

// Property: CDF is monotone non-decreasing.
func TestStdNormalCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return StdNormalCDF(a) <= StdNormalCDF(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Wilson interval always contains the raw proportion.
func TestWilsonContainsProportionProperty(t *testing.T) {
	f := func(s, n uint8) bool {
		trials := int(n%100) + 1
		successes := int(s) % (trials + 1)
		iv, err := WilsonInterval(successes, trials, 0.95)
		if err != nil {
			return false
		}
		return iv.Contains(float64(successes) / float64(trials))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
