package stats

import "math"

func sqrtNeg2Log(u float64) float64 {
	return math.Sqrt(-2 * math.Log(u))
}

func cosTwoPi(u float64) float64 {
	return math.Cos(2 * math.Pi * u)
}
