package transport

import (
	"bytes"
	"strings"
	"testing"

	"mcauth/internal/packet"
)

func TestHelloRoundTrip(t *testing.T) {
	for _, points := range [][]ResumePoint{
		nil,
		{},
		{{StreamID: 1, From: 0}},
		{{StreamID: 7, From: 42}, {StreamID: 1 << 60, From: 1 << 40}, {StreamID: 0, From: 0}},
	} {
		var buf bytes.Buffer
		if err := WriteHello(&buf, points); err != nil {
			t.Fatal(err)
		}
		got, err := ReadHello(&buf)
		if err != nil {
			t.Fatalf("points %v: %v", points, err)
		}
		if len(got) != len(points) {
			t.Fatalf("round-trip %v -> %v", points, got)
		}
		for i := range points {
			if got[i] != points[i] {
				t.Fatalf("point %d: %v != %v", i, got[i], points[i])
			}
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes left after ReadHello — it must consume exactly the hello", buf.Len())
		}
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	for name, wire := range map[string][]byte{
		"empty":       {},
		"short":       []byte("MC"),
		"wrong magic": []byte("MCNKxxxxxxx"),
		"bad version": {'M', 'C', 'H', 'I', 99, 0, 0},
		// Count claims one point but no body follows.
		"truncated points": {'M', 'C', 'H', 'I', 1, 0, 1},
	} {
		if _, err := ReadHello(bytes.NewReader(wire)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A mux frame is not a hello: the first 4 bytes are a length prefix.
	var frame bytes.Buffer
	mw := NewMuxFrameWriter(&frame)
	if err := mw.WritePacket(3, &packet.Packet{BlockID: 1, Index: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHello(&frame); err == nil {
		t.Error("mux frame accepted as hello")
	}
}

func TestHelloPointCap(t *testing.T) {
	too := make([]ResumePoint, maxHelloPoints+1)
	if err := WriteHello(&bytes.Buffer{}, too); err == nil {
		t.Fatal("oversized hello accepted on write")
	}
	// Forge an oversized count on the wire; the reader must refuse before
	// allocating the claimed body.
	wire := []byte{'M', 'C', 'H', 'I', 1, 0xFF, 0xFF}
	if _, err := ReadHello(bytes.NewReader(wire)); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized count: %v", err)
	}
}

func TestRepairStoreAddAndSince(t *testing.T) {
	rs, err := NewRepairStore(3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(blockID uint64, idx uint32, sig bool) *packet.Packet {
		p := &packet.Packet{BlockID: blockID, Index: idx, Payload: []byte{byte(idx)}}
		if sig {
			p.Signature = []byte("s")
		}
		return p
	}
	// Two-phase fill, as the serving tier does: data at emit, the
	// signature packet later, once the batch root is signed.
	for id := uint64(0); id < 4; id++ {
		rs.Add(id, []*packet.Packet{mk(id, 1, false), mk(id, 2, false)})
		rs.Add(id, []*packet.Packet{mk(id, 3, true)})
	}
	// Capacity 3: block 0 must be evicted, 1-3 retained whole.
	if got := rs.Blocks(); got != 3 {
		t.Fatalf("retained %d blocks, want 3", got)
	}
	if got := rs.Since(0); len(got) != 9 {
		t.Fatalf("Since(0) returned %d packets, want 9 (3 blocks x 3)", len(got))
	}
	got := rs.Since(3)
	if len(got) != 3 {
		t.Fatalf("Since(3) returned %d packets, want 3", len(got))
	}
	for _, p := range got {
		if p.BlockID != 3 {
			t.Fatalf("Since(3) leaked block %d", p.BlockID)
		}
	}
	if got := rs.Since(4); len(got) != 0 {
		t.Fatalf("Since(4) returned %d packets, want 0", len(got))
	}
	// Add must compose with Put-style signature lookup.
	if sig := rs.Packets(2, NACKSigRequest); len(sig) != 1 || len(sig[0].Signature) == 0 {
		t.Fatalf("signature lookup after Add: %v", sig)
	}
}
