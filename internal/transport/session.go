// Session resume: a reconnecting subscriber should not restart from
// nothing. On connect it sends one hello frame naming, per stream, the
// first block it still wants; the server replays catch-up packets from its
// RepairStore before switching to live delivery. The hello is optional —
// a server that reads anything else (or nothing, within a short deadline)
// treats the connection as a legacy full-stream subscription.

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Hello wire format:
//
//	[4B magic "MCHI"][1B version][2B count] then count x [8B stream ID][8B from]
//
// where from is the first block ID the subscriber wants replayed (0 means
// everything the server still retains).
const (
	helloMagic   = "MCHI"
	helloVersion = 1
	helloHdrSize = 4 + 1 + 2
	helloPtSize  = 16
	// maxHelloPoints bounds what a server will parse from one hello, so a
	// hostile client cannot demand unbounded allocation.
	maxHelloPoints = 4096
)

// ResumePoint names where one stream's replay should start.
type ResumePoint struct {
	StreamID uint64
	// From is the first block ID wanted; 0 requests everything retained.
	From uint64
}

// WriteHello sends a resume hello for the given points. An empty points
// slice is valid: it announces a resume-capable subscriber that wants only
// live traffic.
func WriteHello(w io.Writer, points []ResumePoint) error {
	if len(points) > maxHelloPoints {
		return fmt.Errorf("transport: hello with %d resume points exceeds %d", len(points), maxHelloPoints)
	}
	buf := make([]byte, helloHdrSize+len(points)*helloPtSize)
	copy(buf, helloMagic)
	buf[4] = helloVersion
	binary.BigEndian.PutUint16(buf[5:], uint16(len(points)))
	off := helloHdrSize
	for _, pt := range points {
		binary.BigEndian.PutUint64(buf[off:], pt.StreamID)
		binary.BigEndian.PutUint64(buf[off+8:], pt.From)
		off += helloPtSize
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}
	return nil
}

// ReadHello parses a resume hello from r. It reads exactly the hello's
// bytes on success; on any mismatch (wrong magic, bad version, oversized
// count, short read) it returns an error — the caller decides whether to
// treat that as a legacy client or drop the connection. Callers should set
// a read deadline: a silent legacy client otherwise blocks here forever.
func ReadHello(r io.Reader) ([]ResumePoint, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("transport: read hello: %w", err)
	}
	if string(magic[:]) != helloMagic {
		return nil, fmt.Errorf("transport: hello magic %q, want %q", magic[:], helloMagic)
	}
	return readHelloTail(r)
}

// readHelloTail parses everything after the hello magic: version, count,
// and the resume points. Shared by ReadHello and the relay control-frame
// dispatcher, which has already consumed the magic.
func readHelloTail(r io.Reader) ([]ResumePoint, error) {
	var hdr [helloHdrSize - 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read hello: %w", err)
	}
	if hdr[0] != helloVersion {
		return nil, fmt.Errorf("transport: hello version %d, want %d", hdr[0], helloVersion)
	}
	count := int(binary.BigEndian.Uint16(hdr[1:]))
	if count > maxHelloPoints {
		return nil, fmt.Errorf("transport: hello with %d resume points exceeds %d", count, maxHelloPoints)
	}
	points := make([]ResumePoint, count)
	body := make([]byte, count*helloPtSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("transport: read hello points: %w", err)
	}
	for i := range points {
		off := i * helloPtSize
		points[i].StreamID = binary.BigEndian.Uint64(body[off:])
		points[i].From = binary.BigEndian.Uint64(body[off+8:])
	}
	return points, nil
}
