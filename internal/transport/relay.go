// Relay control plane: a relay re-serves an upstream subscription to its
// own downstream subscribers and absorbs signature repairs near the edge
// (MABS-style batch amortization: the signer signs once, the relays fan
// out and answer recovery traffic). Downstream clients speak the same mux
// framing for data; on the control side they send one resume hello at
// connect and, while live, repair requests for blocks whose signature
// class went missing. Both control frames share a 4-byte magic so one
// reader can dispatch them from the same connection.

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Repair-request wire format:
//
//	[4B magic "MCRQ"][1B version][8B stream ID][8B block ID][4B index]
//
// Index follows the NACK convention: NACKSigRequest (0) asks for the
// block's signature class, a nonzero index for that specific packet.
const (
	repairMagic    = "MCRQ"
	repairVersion  = 1
	repairTailSize = 1 + 8 + 8 + 4
)

// RepairRequest asks a relay to re-serve authentication material for one
// block of one stream.
type RepairRequest struct {
	StreamID uint64
	BlockID  uint64
	// Index is NACKSigRequest for the signature class, or a specific
	// packet index.
	Index uint32
}

// WriteRepairRequest sends one repair request. Callers multiplexing it
// onto a live session connection must serialize it against their other
// writes.
func WriteRepairRequest(w io.Writer, req RepairRequest) error {
	var buf [4 + repairTailSize]byte
	copy(buf[:], repairMagic)
	buf[4] = repairVersion
	binary.BigEndian.PutUint64(buf[5:], req.StreamID)
	binary.BigEndian.PutUint64(buf[13:], req.BlockID)
	binary.BigEndian.PutUint32(buf[21:], req.Index)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("transport: write repair request: %w", err)
	}
	return nil
}

// readRepairTail parses everything after the repair magic.
func readRepairTail(r io.Reader) (RepairRequest, error) {
	var tail [repairTailSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return RepairRequest{}, fmt.Errorf("transport: read repair request: %w", err)
	}
	if tail[0] != repairVersion {
		return RepairRequest{}, fmt.Errorf("transport: repair request version %d, want %d", tail[0], repairVersion)
	}
	return RepairRequest{
		StreamID: binary.BigEndian.Uint64(tail[1:]),
		BlockID:  binary.BigEndian.Uint64(tail[9:]),
		Index:    binary.BigEndian.Uint32(tail[17:]),
	}, nil
}

// ControlFrame is one parsed control-plane frame: exactly one of Hello
// and Repair is set.
type ControlFrame struct {
	// Hello is the resume hello, when the frame is one. Non-nil even for
	// an empty hello (a live-only subscriber), so callers can distinguish
	// "hello with no points" from "not a hello".
	Hello []ResumePoint
	// IsHello marks the frame as a hello; an empty points slice is valid.
	IsHello bool
	// Repair is the repair request, when IsHello is false.
	Repair RepairRequest
}

// ReadControlFrame reads one control frame — a resume hello or a repair
// request — from r. Anything else (wrong magic, bad version, truncation)
// is an error; like ReadHello, callers should bound the read with a
// deadline. The attacker-facing bound is the hello's maxHelloPoints: no
// control frame can demand more than ~64 KiB of allocation.
func ReadControlFrame(r io.Reader) (*ControlFrame, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("transport: read control frame: %w", err)
	}
	switch string(magic[:]) {
	case helloMagic:
		points, err := readHelloTail(r)
		if err != nil {
			return nil, err
		}
		return &ControlFrame{Hello: points, IsHello: true}, nil
	case repairMagic:
		req, err := readRepairTail(r)
		if err != nil {
			return nil, err
		}
		return &ControlFrame{Repair: req}, nil
	default:
		return nil, fmt.Errorf("transport: control frame magic %q, want %q or %q", magic[:], helloMagic, repairMagic)
	}
}
