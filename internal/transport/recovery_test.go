package transport

import (
	"bytes"
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

func TestNACKCodec(t *testing.T) {
	b := EncodeNACK(77, 3)
	blockID, index, ok := DecodeNACK(b)
	if !ok || blockID != 77 || index != 3 {
		t.Fatalf("roundtrip got (%d,%d,%v)", blockID, index, ok)
	}
	for _, bad := range [][]byte{
		nil,
		{},
		[]byte("MCNK"),
		bytes.Repeat([]byte{0}, nackSize),
		append([]byte("XXXX"), b[4:]...),
		append(b, 0),
	} {
		if _, _, ok := DecodeNACK(bad); ok {
			t.Errorf("decoded %q as a NACK", bad)
		}
	}
}

func TestRepairStoreBoundedAndServes(t *testing.T) {
	pkts, _ := testBlockPackets(t, 6, 1)
	rs, err := NewRepairStore(3)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 5; id++ {
		rs.Put(id, pkts)
	}
	if got := rs.Blocks(); got != 3 {
		t.Fatalf("store holds %d blocks, want 3", got)
	}
	if rs.Packets(1, NACKSigRequest) != nil {
		t.Fatal("evicted block still answers")
	}
	sigs := rs.Packets(5, NACKSigRequest)
	if len(sigs) == 0 {
		t.Fatal("no signature packets served")
	}
	for _, p := range sigs {
		if len(p.Signature) == 0 {
			t.Fatalf("index %d served for a signature request but carries none", p.Index)
		}
	}
	one := rs.Packets(5, 2)
	if len(one) != 1 || one[0].Index != 2 {
		t.Fatalf("specific-index request got %v", one)
	}
	if got := rs.Packets(5, 9999); got != nil {
		t.Fatalf("unknown index served %v", got)
	}
}

// TestNACKRecoversDroppedSignature is the end-to-end repair path: the
// signature packet is dropped on the way out, every receiver-side packet
// starves in the buffer, the listener NACKs the block, and the sender's
// responder re-sends the signature — after which the whole block
// authenticates.
func TestNACKRecoversDroppedSignature(t *testing.T) {
	const n = 6
	pkts, rcv := testBlockPackets(t, n, 1)
	sendConn, recvConn := udpPair(t)
	defer sendConn.Close()

	store, err := NewRepairStore(8)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(1, pkts)
	responder, err := ServeRepairs(sendConn, store)
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Close()

	l, err := Listen(recvConn, rcv, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	go func() {
		count := 0
		for range l.Events() {
			count++
			if count == n {
				break
			}
		}
		got <- count
	}()
	if err := l.EnableNACK(NACKConfig{
		Sender:   sendConn.LocalAddr(),
		Interval: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDatagramSender(sendConn, recvConn.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, p := range pkts {
		if len(p.Signature) > 0 {
			dropped++
			continue // the "lost" signature
		}
		if err := ds.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if dropped == 0 {
		t.Fatal("test block has no signature packet to drop")
	}
	select {
	case count := <-got:
		if count != n {
			t.Fatalf("authenticated %d of %d messages", count, n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("block never authenticated: NACK recovery did not happen")
	}
	if l.NACKsSent() == 0 {
		t.Error("listener reports no NACKs sent")
	}
	if responder.Served() == 0 {
		t.Error("responder reports no repairs served")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNACKGivesUpAfterMaxAttempts: with nobody answering, the re-request
// schedule must stop at the cap rather than NACK forever.
func TestNACKGivesUpAfterMaxAttempts(t *testing.T) {
	const maxAttempts = 3
	pkts, rcv := testBlockPackets(t, 6, 1)
	deadConn, recvConn := udpPair(t)
	defer deadConn.Close() // nobody reads it: NACKs land in the void

	l, err := Listen(recvConn, rcv, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range l.Events() {
		}
	}()
	if err := l.EnableNACK(NACKConfig{
		Sender:      deadConn.LocalAddr(),
		Interval:    2 * time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		MaxAttempts: maxAttempts,
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.EnableNACK(NACKConfig{Sender: deadConn.LocalAddr()}); err == nil {
		t.Fatal("second EnableNACK should fail")
	}
	ds, err := NewDatagramSender(deadConn, recvConn.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if len(p.Signature) > 0 {
			continue
		}
		if err := ds.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if l.NACKsSent() >= maxAttempts {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let several more polling intervals elapse; the count must not grow.
	time.Sleep(50 * time.Millisecond)
	if got := l.NACKsSent(); got != maxAttempts {
		t.Fatalf("sent %d NACKs, want exactly %d", got, maxAttempts)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestListenerSurvivesAdversarialIngest floods the listener with garbage,
// truncations and wrong-key forgeries; the read loop must keep running and
// the genuine block must still authenticate afterwards.
func TestListenerSurvivesAdversarialIngest(t *testing.T) {
	const n = 6
	pkts, rcv := testBlockPackets(t, n, 1)
	sendConn, recvConn := udpPair(t)
	defer sendConn.Close()

	l, err := Listen(recvConn, rcv, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	go func() {
		count := 0
		for range l.Events() {
			count++
			if count == n {
				break
			}
		}
		got <- count
	}()
	target := recvConn.LocalAddr()
	// Garbage that does not decode, truncated genuine packets, and
	// well-formed forgeries signed with the wrong key.
	hostile := [][]byte{
		[]byte("not a packet at all"),
		{0xff, 0xff, 0xff, 0xff},
		EncodeNACK(1, 0), // NACKs are sender-side traffic; noise here
	}
	wire, err := pkts[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	hostile = append(hostile, wire[:len(wire)/2])
	forged := fault.ForgedPayload(42)
	fp := &packet.Packet{BlockID: 1, Index: 2, Payload: forged, Signature: []byte("bogus")}
	fw, err := fp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	hostile = append(hostile, fw)
	for i := 0; i < 10; i++ {
		for _, h := range hostile {
			if _, err := sendConn.WriteTo(h, target); err != nil {
				t.Fatal(err)
			}
		}
	}
	ds, err := NewDatagramSender(sendConn, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SendBlock(pkts, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case count := <-got:
		if count != n {
			t.Fatalf("authenticated %d of %d messages", count, n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("genuine block never authenticated under hostile traffic")
	}
	totals := l.Totals()
	if totals.DecodeErrors == 0 {
		t.Error("no decode errors counted for garbage datagrams")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("listener loop died on hostile traffic: %v", err)
	}
}

// flakyConn fails WriteTo with a scripted error sequence, then succeeds.
type flakyConn struct {
	net.PacketConn
	errs  []error
	calls int
}

func (f *flakyConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	f.calls++
	if len(f.errs) > 0 {
		err := f.errs[0]
		f.errs = f.errs[1:]
		if err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

func TestSendWithRetry(t *testing.T) {
	conn, other := udpPair(t)
	defer conn.Close()
	defer other.Close()
	p := &packet.Packet{BlockID: 1, Index: 1, Payload: []byte("x")}

	flaky := &flakyConn{PacketConn: conn, errs: []error{syscall.ENOBUFS, syscall.EAGAIN}}
	ds, err := NewDatagramSender(flaky, other.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SendWithRetry(p, 5, time.Millisecond); err != nil {
		t.Fatalf("transient errors should be retried away: %v", err)
	}
	if flaky.calls != 3 {
		t.Fatalf("took %d sends, want 3 (two transient failures then success)", flaky.calls)
	}

	perm := &flakyConn{PacketConn: conn, errs: []error{errors.New("wire cut"), nil, nil}}
	ds2, err := NewDatagramSender(perm, other.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.SendWithRetry(p, 5, time.Millisecond); err == nil {
		t.Fatal("permanent error should fail immediately")
	}
	if perm.calls != 1 {
		t.Fatalf("permanent error retried %d times", perm.calls)
	}

	exhaust := &flakyConn{PacketConn: conn, errs: []error{
		syscall.ENOBUFS, syscall.ENOBUFS, syscall.ENOBUFS, syscall.ENOBUFS,
	}}
	ds3, err := NewDatagramSender(exhaust, other.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds3.SendWithRetry(p, 3, time.Millisecond); err == nil {
		t.Fatal("exhausted attempts should report failure")
	}
	if exhaust.calls != 3 {
		t.Fatalf("attempt cap not honored: %d sends", exhaust.calls)
	}
}

func TestIsTransientSendErr(t *testing.T) {
	transient := []error{syscall.ENOBUFS, syscall.EAGAIN, syscall.EINTR, syscall.ECONNREFUSED}
	for _, err := range transient {
		if !IsTransientSendErr(err) {
			t.Errorf("%v should be transient", err)
		}
	}
	for _, err := range []error{nil, errors.New("boom"), syscall.EPERM} {
		if IsTransientSendErr(err) {
			t.Errorf("%v should not be transient", err)
		}
	}
}

// captureConn records every datagram written.
type captureConn struct {
	net.PacketConn
	wires [][]byte
}

func (c *captureConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.wires = append(c.wires, append([]byte(nil), b...))
	return len(b), nil
}

// TestDatagramSenderFaultHook: the chaos hook mutates/duplicates outgoing
// datagrams deterministically and can be switched off again.
func TestDatagramSenderFaultHook(t *testing.T) {
	conn, other := udpPair(t)
	defer conn.Close()
	defer other.Close()
	cc := &captureConn{PacketConn: conn}
	ds, err := NewDatagramSender(cc, other.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{BlockID: 3, Index: 1, Payload: []byte("payload")}
	want, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}

	if err := ds.SetFaults(&fault.Config{DuplicateRate: 1}, 7); err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(p); err != nil {
		t.Fatal(err)
	}
	if len(cc.wires) != 2 {
		t.Fatalf("duplication hook wrote %d datagrams, want 2", len(cc.wires))
	}
	if !bytes.Equal(cc.wires[0], want) || !bytes.Equal(cc.wires[1], want) {
		t.Fatal("duplicates should be byte-identical to the original")
	}

	cc.wires = nil
	if err := ds.SetFaults(&fault.Config{CorruptRate: 1}, 7); err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(p); err != nil {
		t.Fatal(err)
	}
	if len(cc.wires) != 1 || bytes.Equal(cc.wires[0], want) {
		t.Fatal("corruption hook should mutate the datagram")
	}

	cc.wires = nil
	if err := ds.SetFaults(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(p); err != nil {
		t.Fatal(err)
	}
	if len(cc.wires) != 1 || !bytes.Equal(cc.wires[0], want) {
		t.Fatal("disabled hook should restore plain sends")
	}
}

// TestRecoveryMetricsCounters: the recovery machinery reports its work to
// the registry — send retries, NACKs sent, repairs served — and the
// counters appear only once the path is actually exercised.
func TestRecoveryMetricsCounters(t *testing.T) {
	conn, other := udpPair(t)
	defer conn.Close()
	defer other.Close()
	reg := obs.NewRegistry()

	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer sink.Close()
	flaky := &flakyConn{PacketConn: conn, errs: []error{syscall.ENOBUFS, syscall.ENOBUFS}}
	ds, err := NewDatagramSender(flaky, sink.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	ds.SetMetrics(reg)
	if _, ok := reg.Snapshot().Counters["transport.send_retries"]; ok {
		t.Error("send_retries registered before any retry happened")
	}
	p := &packet.Packet{BlockID: 1, Index: 1, Payload: []byte("x")}
	if err := ds.SendWithRetry(p, 5, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["transport.send_retries"]; got != 2 {
		t.Errorf("transport.send_retries = %d, want 2", got)
	}

	// Repairs served: responder answers one NACK from the store.
	const n = 6
	pkts, rcv := testBlockPackets(t, n, 1)
	store, err := NewRepairStore(4)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(1, pkts)
	responder, err := ServeRepairs(conn, store)
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Close()
	responder.SetMetrics(reg)

	l, err := Listen(other, rcv, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetMetrics(reg)
	go func() {
		for range l.Events() {
		}
	}()
	if err := l.EnableNACK(NACKConfig{
		Sender:   conn.LocalAddr(),
		Interval: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := NewDatagramSender(conn, other.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	for _, pk := range pkts {
		if len(pk.Signature) > 0 {
			continue // drop the signature so the block starves
		}
		if err := data.Send(pk); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for responder.Served() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if snap.Counters["transport.nacks_sent"] == 0 {
		t.Error("transport.nacks_sent not counted")
	}
	if snap.Counters["transport.repairs_served"] == 0 {
		t.Error("transport.repairs_served not counted")
	}
}
