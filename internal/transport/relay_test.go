package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

// TestControlFrameRoundTrip: hellos and repair requests written by this
// package parse back identically through the control dispatcher.
func TestControlFrameRoundTrip(t *testing.T) {
	points := []ResumePoint{{StreamID: 7, From: 3}, {StreamID: 9, From: 0}}
	req := RepairRequest{StreamID: 5, BlockID: 42, Index: NACKSigRequest}
	var buf bytes.Buffer
	if err := WriteHello(&buf, points); err != nil {
		t.Fatal(err)
	}
	if err := WriteRepairRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	if err := WriteHello(&buf, nil); err != nil {
		t.Fatal(err)
	}
	cf, err := ReadControlFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.IsHello || !reflect.DeepEqual(cf.Hello, points) {
		t.Fatalf("first frame = %+v, want hello %v", cf, points)
	}
	cf, err = ReadControlFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cf.IsHello || cf.Repair != req {
		t.Fatalf("second frame = %+v, want repair %v", cf, req)
	}
	cf, err = ReadControlFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.IsHello || len(cf.Hello) != 0 {
		t.Fatalf("third frame = %+v, want empty hello", cf)
	}
	if _, err := ReadControlFrame(&buf); err == nil {
		t.Fatal("want error at stream end")
	}
}

// TestControlFrameHelloCompatible: a hello written by WriteHello must
// parse identically through ReadHello and ReadControlFrame — the relay
// dispatcher cannot fork the session-resume wire format.
func TestControlFrameHelloCompatible(t *testing.T) {
	points := []ResumePoint{{StreamID: 1, From: 11}}
	var a, b bytes.Buffer
	if err := WriteHello(&a, points); err != nil {
		t.Fatal(err)
	}
	b.Write(a.Bytes())
	direct, err := ReadHello(&a)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ReadControlFrame(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.IsHello || !reflect.DeepEqual(cf.Hello, direct) {
		t.Fatalf("dispatcher parse %+v != direct parse %v", cf, direct)
	}
}

// TestControlFrameRejects pins the error cases: foreign magic, bad
// versions, truncation, oversized hello counts.
func TestControlFrameRejects(t *testing.T) {
	var helloBuf bytes.Buffer
	if err := WriteHello(&helloBuf, []ResumePoint{{StreamID: 1, From: 2}}); err != nil {
		t.Fatal(err)
	}
	hello := helloBuf.Bytes()
	var repairBuf bytes.Buffer
	if err := WriteRepairRequest(&repairBuf, RepairRequest{StreamID: 1, BlockID: 2, Index: 3}); err != nil {
		t.Fatal(err)
	}
	repair := repairBuf.Bytes()

	badVersionHello := append([]byte(nil), hello...)
	badVersionHello[4] = 99
	badVersionRepair := append([]byte(nil), repair...)
	badVersionRepair[4] = 99
	hugeCount := append([]byte(nil), hello[:helloHdrSize]...)
	binary.BigEndian.PutUint16(hugeCount[5:], maxHelloPoints+1)

	cases := [][]byte{
		[]byte("MCXX"),         // unknown magic
		hello[:3],              // truncated magic
		hello[:helloHdrSize+3], // truncated points
		repair[:10],            // truncated repair tail
		badVersionHello,
		badVersionRepair,
		hugeCount,
	}
	for i, c := range cases {
		if _, err := ReadControlFrame(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// FuzzRelayFrame feeds arbitrary byte streams to the relay control-frame
// dispatcher: it must never panic, any malformed frame must error, and an
// attacker-controlled hello count must not force a large allocation. It
// seeds the corpus with valid hello/repair sequences and the corruption
// shapes that bit the other decoders (truncations, torn seams, huge
// counts).
func FuzzRelayFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteHello(&valid, []ResumePoint{{StreamID: 1, From: 0}, {StreamID: 2, From: 9}}); err != nil {
		f.Fatal(err)
	}
	if err := WriteRepairRequest(&valid, RepairRequest{StreamID: 1, BlockID: 7, Index: NACKSigRequest}); err != nil {
		f.Fatal(err)
	}
	if err := WriteRepairRequest(&valid, RepairRequest{StreamID: 2, BlockID: 8, Index: 5}); err != nil {
		f.Fatal(err)
	}
	if err := WriteHello(&valid, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MCHI"))
	f.Add([]byte("MCRQ"))
	f.Add([]byte("MCXXjunk"))
	// A hello header claiming the maximum point count with nothing behind
	// it, and one point over the cap.
	maxed := make([]byte, helloHdrSize)
	copy(maxed, helloMagic)
	maxed[4] = helloVersion
	binary.BigEndian.PutUint16(maxed[5:], maxHelloPoints)
	f.Add(maxed)
	over := append([]byte(nil), maxed...)
	binary.BigEndian.PutUint16(over[5:], maxHelloPoints+1)
	f.Add(over)
	// Truncated mid-frame, and a torn seam: a valid stream cut and
	// restarted mid-frame, as an injected partial write produces.
	f.Add(valid.Bytes()[:valid.Len()/2])
	torn := append([]byte{}, valid.Bytes()[:valid.Len()/3]...)
	torn = append(torn, valid.Bytes()...)
	f.Add(torn)

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for i := 0; i < 64; i++ {
			cf, err := ReadControlFrame(r)
			if err != nil {
				return // any error ends the stream; it must just not panic
			}
			if cf == nil {
				t.Fatal("nil frame with nil error")
			}
			if cf.IsHello {
				if len(cf.Hello) > maxHelloPoints {
					t.Fatalf("hello with %d points exceeds the parse bound", len(cf.Hello))
				}
				// A parsed hello must re-encode: dispatcher output is
				// always a well-formed structure.
				if err := WriteHello(io.Discard, cf.Hello); err != nil {
					t.Fatalf("parsed hello does not re-encode: %v", err)
				}
			} else if err := WriteRepairRequest(io.Discard, cf.Repair); err != nil {
				t.Fatalf("parsed repair request does not re-encode: %v", err)
			}
		}
	})
}
