package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

// Multiplexed framing: one byte stream carrying packets from many
// authenticated streams, as the serving daemon (internal/server) emits
// them. Each frame is
//
//	[4B length][8B stream ID][packet encoding]
//
// where length counts the stream ID plus the packet encoding, so a plain
// FrameReader pointed at a mux stream fails fast instead of mis-decoding.

// muxIDSize is the stream-ID prefix inside each mux frame.
const muxIDSize = 8

// MuxFrameWriter writes stream-tagged, length-prefixed packets to a byte
// stream. Like FrameWriter it reuses one internal buffer and is not safe
// for concurrent use.
type MuxFrameWriter struct {
	w     io.Writer
	m     *wireMetrics
	spans *obs.SpanRing
	buf   []byte
}

// NewMuxFrameWriter wraps w.
func NewMuxFrameWriter(w io.Writer) *MuxFrameWriter { return &MuxFrameWriter{w: w} }

// SetMetrics enables transport.* accounting in reg (nil disables).
func (mw *MuxFrameWriter) SetMetrics(reg *obs.Registry) { mw.m = newWireMetrics(reg) }

// SetSpans records a mux_write span per framed packet into r (nil
// disables), marking the moment a packet leaves the serving process.
func (mw *MuxFrameWriter) SetSpans(r *obs.SpanRing) { mw.spans = r }

// WritePacket frames one packet under its stream ID with a single Write.
func (mw *MuxFrameWriter) WritePacket(streamID uint64, p *packet.Packet) error {
	// Reserve length prefix + stream ID, encode in place, patch the prefix.
	mw.buf = append(mw.buf[:0], make([]byte, 4+muxIDSize)...)
	binary.BigEndian.PutUint64(mw.buf[4:], streamID)
	buf, err := p.AppendEncode(mw.buf)
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	mw.buf = buf
	frameLen := len(buf) - 4
	if frameLen-muxIDSize > MaxFrameSize {
		if mw.m != nil {
			mw.m.oversizeFrames.Inc()
		}
		return fmt.Errorf("transport: frame %d exceeds %d bytes", frameLen-muxIDSize, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(frameLen))
	if _, err := mw.w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if mw.m != nil {
		mw.m.framesWritten.Inc()
		mw.m.bytesWritten.Add(int64(len(buf)))
	}
	if mw.spans.Enabled() {
		mw.spans.Record(obs.Span{
			Kind:   obs.SpanMuxWrite,
			Stream: streamID,
			Block:  p.BlockID,
			Index:  p.Index,
			TimeNS: time.Now().UnixNano(),
		})
	}
	return nil
}

// MuxFrameReader reads stream-tagged, length-prefixed packets.
type MuxFrameReader struct {
	fr *FrameReader
}

// NewMuxFrameReader wraps r.
func NewMuxFrameReader(r io.Reader) *MuxFrameReader {
	return &MuxFrameReader{fr: NewFrameReader(r)}
}

// SetMetrics enables transport.* accounting in reg (nil disables).
func (mr *MuxFrameReader) SetMetrics(reg *obs.Registry) { mr.fr.SetMetrics(reg) }

// ReadPacket reads one frame and returns the stream ID and decoded
// packet; io.EOF at a clean end of stream.
func (mr *MuxFrameReader) ReadPacket() (uint64, *packet.Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(mr.fr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) && mr.fr.m != nil {
			mr.fr.m.shortReads.Inc()
		}
		return 0, nil, fmt.Errorf("transport: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size < muxIDSize {
		return 0, nil, fmt.Errorf("transport: mux frame %d bytes, need at least %d", size, muxIDSize)
	}
	if size-muxIDSize > MaxFrameSize {
		if mr.fr.m != nil {
			mr.fr.m.oversizeFrames.Inc()
		}
		return 0, nil, fmt.Errorf("transport: frame %d exceeds %d bytes", size-muxIDSize, MaxFrameSize)
	}
	var idBuf [muxIDSize]byte
	if _, err := io.ReadFull(mr.fr.r, idBuf[:]); err != nil {
		if mr.fr.m != nil {
			mr.fr.m.shortReads.Inc()
		}
		return 0, nil, fmt.Errorf("transport: read stream id: %w", err)
	}
	streamID := binary.BigEndian.Uint64(idBuf[:])
	wireSize := int(size) - muxIDSize
	wire := make([]byte, 0, min(wireSize, frameAllocChunk))
	for len(wire) < wireSize {
		chunk := min(wireSize-len(wire), frameAllocChunk)
		start := len(wire)
		wire = append(wire, make([]byte, chunk)...)
		if _, err := io.ReadFull(mr.fr.r, wire[start:]); err != nil {
			if mr.fr.m != nil {
				mr.fr.m.shortReads.Inc()
			}
			return 0, nil, fmt.Errorf("transport: read frame: %w", err)
		}
	}
	p, err := packet.Decode(wire)
	if err != nil {
		if mr.fr.m != nil {
			mr.fr.m.decodeErrors.Inc()
		}
		return 0, nil, fmt.Errorf("transport: %w", err)
	}
	if mr.fr.m != nil {
		mr.fr.m.framesRead.Inc()
		mr.fr.m.bytesRead.Add(int64(len(hdr) + muxIDSize + len(wire)))
	}
	return streamID, p, nil
}
