// Package transport carries authenticated stream packets over real
// connections: one datagram per packet for packet-oriented transports
// (UDP — the natural carrier for the paper's best-effort multicast), and a
// length-prefixed framing for byte-stream transports (TCP, pipes). The
// wire format is internal/packet's encoding in both cases.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mcauth/internal/packet"
	"mcauth/internal/stream"
)

// MaxFrameSize bounds a single packet's encoding on the wire.
const MaxFrameSize = 1 << 21 // 2 MiB: payload cap plus headers

// FrameWriter writes length-prefixed packets to a byte stream.
type FrameWriter struct {
	w io.Writer
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WritePacket encodes and frames one packet.
func (fw *FrameWriter) WritePacket(p *packet.Packet) error {
	wire, err := p.Encode()
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if len(wire) > MaxFrameSize {
		return fmt.Errorf("transport: frame %d exceeds %d bytes", len(wire), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(wire)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := fw.w.Write(wire); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// FrameReader reads length-prefixed packets from a byte stream.
type FrameReader struct {
	r *bufio.Reader
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// ReadPacket reads and decodes one packet; it returns io.EOF at a clean
// end of stream.
func (fr *FrameReader) ReadPacket() (*packet.Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("transport: frame %d exceeds %d bytes", size, MaxFrameSize)
	}
	wire := make([]byte, size)
	if _, err := io.ReadFull(fr.r, wire); err != nil {
		return nil, fmt.Errorf("transport: read frame: %w", err)
	}
	p, err := packet.Decode(wire)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return p, nil
}

// DatagramSender sends one packet per datagram to a fixed address.
type DatagramSender struct {
	conn net.PacketConn
	addr net.Addr
}

// NewDatagramSender binds a sender to conn and the destination addr.
func NewDatagramSender(conn net.PacketConn, addr net.Addr) (*DatagramSender, error) {
	if conn == nil || addr == nil {
		return nil, errors.New("transport: nil conn or addr")
	}
	return &DatagramSender{conn: conn, addr: addr}, nil
}

// Send transmits one packet as a single datagram.
func (ds *DatagramSender) Send(p *packet.Packet) error {
	wire, err := p.Encode()
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if _, err := ds.conn.WriteTo(wire, ds.addr); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// SendBlock transmits a block's packets with the given inter-packet gap.
func (ds *DatagramSender) SendBlock(pkts []*packet.Packet, gap time.Duration) error {
	for _, p := range pkts {
		if err := ds.Send(p); err != nil {
			return err
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	return nil
}

// Listener reads datagrams from a PacketConn, feeds them to a
// stream.Receiver, and delivers authenticated messages on Events(). It
// owns one background goroutine whose lifetime is bounded by Close.
type Listener struct {
	conn   net.PacketConn
	rcv    *stream.Receiver
	now    func() time.Time
	events chan stream.Authenticated

	stop    chan struct{}
	done    chan struct{}
	mu      sync.Mutex
	readErr error
	closed  bool
}

// Listen starts the read loop. The clock is used to timestamp arrivals
// (TESLA's safety condition); pass time.Now for wall-clock operation.
func Listen(conn net.PacketConn, rcv *stream.Receiver, clock func() time.Time) (*Listener, error) {
	if conn == nil {
		return nil, errors.New("transport: nil conn")
	}
	if rcv == nil {
		return nil, errors.New("transport: nil receiver")
	}
	if clock == nil {
		clock = time.Now
	}
	l := &Listener{
		conn:   conn,
		rcv:    rcv,
		now:    clock,
		events: make(chan stream.Authenticated, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go l.loop()
	return l, nil
}

// Events delivers authenticated messages; the channel closes when the
// listener stops.
func (l *Listener) Events() <-chan stream.Authenticated { return l.events }

func (l *Listener) loop() {
	defer close(l.done)
	defer close(l.events)
	buf := make([]byte, MaxFrameSize)
	for {
		n, _, err := l.conn.ReadFrom(buf)
		if err != nil {
			l.mu.Lock()
			if !l.closed {
				l.readErr = err
			}
			l.mu.Unlock()
			return
		}
		wire := make([]byte, n)
		copy(wire, buf[:n])
		l.mu.Lock()
		auths, err := l.rcv.IngestWire(wire, l.now())
		l.mu.Unlock()
		if err != nil {
			l.mu.Lock()
			l.readErr = err
			l.mu.Unlock()
			return
		}
		for _, a := range auths {
			select {
			case l.events <- a:
			case <-l.stop:
				return
			}
		}
	}
}

// Totals snapshots the underlying receiver's counters.
func (l *Listener) Totals() stream.Totals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rcv.Totals()
}

// Close stops the read loop and waits for it to exit. It returns any read
// or ingest error the loop hit before closing.
func (l *Listener) Close() error {
	l.mu.Lock()
	alreadyClosed := l.closed
	l.closed = true
	l.mu.Unlock()
	if !alreadyClosed {
		close(l.stop)
		// Closing the conn unblocks ReadFrom.
		if err := l.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			<-l.done
			return err
		}
	}
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readErr
}
