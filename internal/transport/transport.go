// Package transport carries authenticated stream packets over real
// connections: one datagram per packet for packet-oriented transports
// (UDP — the natural carrier for the paper's best-effort multicast), and a
// length-prefixed framing for byte-stream transports (TCP, pipes). The
// wire format is internal/packet's encoding in both cases.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/stream"
)

// MaxFrameSize bounds a single packet's encoding on the wire.
const MaxFrameSize = 1 << 21 // 2 MiB: payload cap plus headers

// frameAllocChunk caps how much ReadPacket allocates before frame bytes
// actually arrive: the 4-byte length prefix is attacker-controlled on a raw
// stream, so the buffer grows chunk by chunk as data is read instead of
// trusting the prefix — a lying 2 MiB header backed by a truncated stream
// costs one chunk, not 2 MiB.
const frameAllocChunk = 64 * 1024

// wireMetrics caches the transport.* instruments; a nil *wireMetrics (the
// default) disables all accounting.
type wireMetrics struct {
	reg            *obs.Registry
	framesWritten  *obs.Counter
	bytesWritten   *obs.Counter
	framesRead     *obs.Counter
	bytesRead      *obs.Counter
	shortReads     *obs.Counter
	oversizeFrames *obs.Counter
	decodeErrors   *obs.Counter
	datagramsSent  *obs.Counter
	datagramsRead  *obs.Counter
	// Recovery counters (send retries, NACKs, repairs served) are
	// registered lazily on first use, so dumps of runs that never
	// exercise the recovery path stay unchanged. Each is touched by a
	// single goroutine (retrying sender, NACK loop, repair responder).
	sendRetries   *obs.Counter
	nacksSent     *obs.Counter
	repairsServed *obs.Counter
}

func newWireMetrics(reg *obs.Registry) *wireMetrics {
	if reg == nil {
		return nil
	}
	return &wireMetrics{
		reg:            reg,
		framesWritten:  reg.Counter("transport.frames_written"),
		bytesWritten:   reg.Counter("transport.bytes_written"),
		framesRead:     reg.Counter("transport.frames_read"),
		bytesRead:      reg.Counter("transport.bytes_read"),
		shortReads:     reg.Counter("transport.short_reads"),
		oversizeFrames: reg.Counter("transport.oversize_frames"),
		decodeErrors:   reg.Counter("transport.decode_errors"),
		datagramsSent:  reg.Counter("transport.datagrams_sent"),
		datagramsRead:  reg.Counter("transport.datagrams_read"),
	}
}

func (m *wireMetrics) countSendRetry() {
	if m == nil {
		return
	}
	if m.sendRetries == nil {
		m.sendRetries = m.reg.Counter("transport.send_retries")
	}
	m.sendRetries.Inc()
}

func (m *wireMetrics) countNACKSent() {
	if m == nil {
		return
	}
	if m.nacksSent == nil {
		m.nacksSent = m.reg.Counter("transport.nacks_sent")
	}
	m.nacksSent.Inc()
}

func (m *wireMetrics) countRepairServed() {
	if m == nil {
		return
	}
	if m.repairsServed == nil {
		m.repairsServed = m.reg.Counter("transport.repairs_served")
	}
	m.repairsServed.Inc()
}

// FrameWriter writes length-prefixed packets to a byte stream. It is not
// safe for concurrent use: WritePacket reuses one internal buffer across
// calls so steady-state framing does not allocate.
type FrameWriter struct {
	w   io.Writer
	m   *wireMetrics
	buf []byte // scratch: header + frame, reused across WritePacket calls
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// SetMetrics enables transport.* accounting in reg (nil disables).
func (fw *FrameWriter) SetMetrics(reg *obs.Registry) { fw.m = newWireMetrics(reg) }

// WritePacket encodes and frames one packet, issuing a single Write of
// header plus frame.
func (fw *FrameWriter) WritePacket(p *packet.Packet) error {
	// Reserve the 4-byte length prefix, encode in place, then patch the
	// prefix once the frame length is known.
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0)
	buf, err := p.AppendEncode(fw.buf)
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	fw.buf = buf
	wireLen := len(buf) - 4
	if wireLen > MaxFrameSize {
		if fw.m != nil {
			fw.m.oversizeFrames.Inc()
		}
		return fmt.Errorf("transport: frame %d exceeds %d bytes", wireLen, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(wireLen))
	if _, err := fw.w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if fw.m != nil {
		fw.m.framesWritten.Inc()
		fw.m.bytesWritten.Add(int64(len(buf)))
	}
	return nil
}

// FrameReader reads length-prefixed packets from a byte stream.
type FrameReader struct {
	r *bufio.Reader
	m *wireMetrics
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// SetMetrics enables transport.* accounting in reg (nil disables).
func (fr *FrameReader) SetMetrics(reg *obs.Registry) { fr.m = newWireMetrics(reg) }

// ReadPacket reads and decodes one packet; it returns io.EOF at a clean
// end of stream.
func (fr *FrameReader) ReadPacket() (*packet.Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) && fr.m != nil {
			fr.m.shortReads.Inc()
		}
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		if fr.m != nil {
			fr.m.oversizeFrames.Inc()
		}
		return nil, fmt.Errorf("transport: frame %d exceeds %d bytes", size, MaxFrameSize)
	}
	wire := make([]byte, 0, min(int(size), frameAllocChunk))
	for len(wire) < int(size) {
		chunk := min(int(size)-len(wire), frameAllocChunk)
		start := len(wire)
		wire = append(wire, make([]byte, chunk)...)
		if _, err := io.ReadFull(fr.r, wire[start:]); err != nil {
			if fr.m != nil {
				fr.m.shortReads.Inc()
			}
			return nil, fmt.Errorf("transport: read frame: %w", err)
		}
	}
	p, err := packet.Decode(wire)
	if err != nil {
		if fr.m != nil {
			fr.m.decodeErrors.Inc()
		}
		return nil, fmt.Errorf("transport: %w", err)
	}
	if fr.m != nil {
		fr.m.framesRead.Inc()
		fr.m.bytesRead.Add(int64(len(hdr) + len(wire)))
	}
	return p, nil
}

// DatagramSender sends one packet per datagram to a fixed address.
type DatagramSender struct {
	conn net.PacketConn
	addr net.Addr
	m    *wireMetrics
	// inj, when non-nil, is the chaos hook: Send routes every datagram
	// through the adversarial channel (see SetFaults).
	inj *fault.Injector
}

// SetMetrics enables transport.* accounting in reg (nil disables).
func (ds *DatagramSender) SetMetrics(reg *obs.Registry) { ds.m = newWireMetrics(reg) }

// NewDatagramSender binds a sender to conn and the destination addr.
func NewDatagramSender(conn net.PacketConn, addr net.Addr) (*DatagramSender, error) {
	if conn == nil || addr == nil {
		return nil, errors.New("transport: nil conn or addr")
	}
	return &DatagramSender{conn: conn, addr: addr}, nil
}

// Send transmits one packet as a single datagram.
func (ds *DatagramSender) Send(p *packet.Packet) error {
	wire, err := p.Encode()
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if ds.inj != nil {
		return ds.sendFaulted(wire, p)
	}
	if _, err := ds.conn.WriteTo(wire, ds.addr); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	if ds.m != nil {
		ds.m.datagramsSent.Inc()
		ds.m.bytesWritten.Add(int64(len(wire)))
	}
	return nil
}

// SendBlock transmits a block's packets with the given inter-packet gap.
func (ds *DatagramSender) SendBlock(pkts []*packet.Packet, gap time.Duration) error {
	for _, p := range pkts {
		if err := ds.Send(p); err != nil {
			return err
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	return nil
}

// Listener reads datagrams from a PacketConn, feeds them to a
// stream.Receiver, and delivers authenticated messages on Events(). It
// owns one background goroutine whose lifetime is bounded by Close.
type Listener struct {
	conn   net.PacketConn
	rcv    *stream.Receiver
	now    func() time.Time
	events chan stream.Authenticated

	stop    chan struct{}
	done    chan struct{}
	mu      sync.Mutex
	m       *wireMetrics
	readErr error
	closed  bool

	// NACK re-request loop state (see EnableNACK in recovery.go).
	nackStop  chan struct{}
	nackDone  chan struct{}
	nacksSent atomic.Int64
}

// SetMetrics enables transport.* accounting in reg (nil disables). Safe
// to call while the read loop runs.
func (l *Listener) SetMetrics(reg *obs.Registry) {
	m := newWireMetrics(reg)
	l.mu.Lock()
	l.m = m
	l.mu.Unlock()
}

// Listen starts the read loop. The clock is used to timestamp arrivals
// (TESLA's safety condition); pass time.Now for wall-clock operation.
func Listen(conn net.PacketConn, rcv *stream.Receiver, clock func() time.Time) (*Listener, error) {
	if conn == nil {
		return nil, errors.New("transport: nil conn")
	}
	if rcv == nil {
		return nil, errors.New("transport: nil receiver")
	}
	if clock == nil {
		clock = time.Now
	}
	l := &Listener{
		conn:   conn,
		rcv:    rcv,
		now:    clock,
		events: make(chan stream.Authenticated, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go l.loop()
	return l, nil
}

// Events delivers authenticated messages; the channel closes when the
// listener stops.
func (l *Listener) Events() <-chan stream.Authenticated { return l.events }

func (l *Listener) loop() {
	defer close(l.done)
	defer close(l.events)
	buf := make([]byte, MaxFrameSize)
	for {
		n, _, err := l.conn.ReadFrom(buf)
		if err != nil {
			l.mu.Lock()
			if !l.closed {
				l.readErr = err
			}
			l.mu.Unlock()
			return
		}
		wire := make([]byte, n)
		copy(wire, buf[:n])
		l.mu.Lock()
		if l.m != nil {
			l.m.datagramsRead.Inc()
			l.m.bytesRead.Add(int64(n))
		}
		auths, err := l.rcv.IngestWire(wire, l.now())
		l.mu.Unlock()
		if err != nil {
			l.mu.Lock()
			l.readErr = err
			l.mu.Unlock()
			return
		}
		for _, a := range auths {
			select {
			case l.events <- a:
			case <-l.stop:
				return
			}
		}
	}
}

// Totals snapshots the underlying receiver's counters.
func (l *Listener) Totals() stream.Totals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rcv.Totals()
}

// Close stops the read loop and waits for it to exit. It returns any read
// or ingest error the loop hit before closing.
func (l *Listener) Close() error {
	l.mu.Lock()
	alreadyClosed := l.closed
	l.closed = true
	nackStop, nackDone := l.nackStop, l.nackDone
	l.mu.Unlock()
	if !alreadyClosed {
		if nackStop != nil {
			close(nackStop)
			<-nackDone
		}
		close(l.stop)
		// Closing the conn unblocks ReadFrom.
		if err := l.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			<-l.done
			return err
		}
	}
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readErr
}
