package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

func muxPacket(id uint32, payload string) *packet.Packet {
	return &packet.Packet{BlockID: 7, Index: id, Payload: []byte(payload)}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	mw := NewMuxFrameWriter(&buf)
	mw.SetMetrics(reg)
	type sent struct {
		stream uint64
		p      *packet.Packet
	}
	frames := []sent{
		{1, muxPacket(1, "alpha")},
		{1 << 62, muxPacket(2, "beta")},
		{0, muxPacket(3, "")},
	}
	for _, f := range frames {
		if err := mw.WritePacket(f.stream, f.p); err != nil {
			t.Fatal(err)
		}
	}
	mr := NewMuxFrameReader(&buf)
	mr.SetMetrics(reg)
	for i, f := range frames {
		id, p, err := mr.ReadPacket()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != f.stream {
			t.Errorf("frame %d: stream %d, want %d", i, id, f.stream)
		}
		if p.Index != f.p.Index || !bytes.Equal(p.Payload, f.p.Payload) {
			t.Errorf("frame %d: packet mismatch", i)
		}
	}
	if _, _, err := mr.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Fatalf("tail read = %v, want io.EOF", err)
	}
	if reg.Counter("transport.frames_written").Value() != 3 ||
		reg.Counter("transport.frames_read").Value() != 3 {
		t.Error("frame counters wrong")
	}
	if reg.Counter("transport.bytes_written").Value() != reg.Counter("transport.bytes_read").Value() {
		t.Error("byte accounting asymmetric")
	}
}

func TestMuxFrameReaderRejectsMalformed(t *testing.T) {
	// Frame shorter than a stream ID.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(4))
	buf.WriteString("xxxx")
	if _, _, err := NewMuxFrameReader(&buf).ReadPacket(); err == nil {
		t.Error("undersized frame accepted")
	}
	// Oversized frame claim.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(MaxFrameSize+muxIDSize+1))
	if _, _, err := NewMuxFrameReader(&buf).ReadPacket(); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated body.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(100))
	binary.Write(&buf, binary.BigEndian, uint64(9))
	buf.WriteString("short")
	if _, _, err := NewMuxFrameReader(&buf).ReadPacket(); err == nil {
		t.Error("truncated frame accepted")
	}
	// Valid framing around a garbage packet encoding.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(muxIDSize+3))
	binary.Write(&buf, binary.BigEndian, uint64(9))
	buf.WriteString("zzz")
	if _, _, err := NewMuxFrameReader(&buf).ReadPacket(); err == nil {
		t.Error("undecodable packet accepted")
	}
}

func TestMuxWriterRefusesOversizedPacket(t *testing.T) {
	mw := NewMuxFrameWriter(io.Discard)
	big := &packet.Packet{BlockID: 1, Index: 1, Payload: bytes.Repeat([]byte("x"), MaxFrameSize)}
	if err := mw.WritePacket(1, big); err == nil {
		t.Error("oversized packet accepted")
	}
}

// A plain FrameReader pointed at mux output must fail loudly (the mux
// length prefix includes the stream ID, so the packet decode fails)
// rather than silently yielding packets.
func TestPlainReaderRejectsMuxStream(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMuxFrameWriter(&buf)
	if err := mw.WritePacket(3, muxPacket(1, "payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrameReader(&buf).ReadPacket(); err == nil {
		t.Error("plain reader decoded a mux frame")
	}
}
