// Recovery: the paper assumes the signature packet "always arrives" —
// achieved in practice by sending it multiple times. On the real UDP path
// that assumption has to be earned. This file implements the machinery:
// senders retry transient socket errors with capped backoff and answer
// NACK-style repair requests from a bounded store of recent blocks;
// listeners detect starved blocks (packets buffered, nothing verifiable)
// and re-request authentication material with capped exponential backoff
// until they give up. An optional fault hook mutates outgoing datagrams for
// chaos testing of the whole path.

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/stats"
)

// IsTransientSendErr reports whether a datagram send failure is worth
// retrying: timeouts, full socket buffers (ENOBUFS/EAGAIN), interrupted
// calls, and ECONNREFUSED (on a connected UDP socket it only means the
// receiver is not up yet — normal during feed startup).
func IsTransientSendErr(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.ECONNREFUSED)
}

// maxSendBackoff caps the retry backoff: past a second the stream has
// moved on and a stale datagram helps nobody.
const maxSendBackoff = time.Second

// SendWithRetry transmits one packet, retrying transient socket errors up
// to attempts times with exponential backoff starting at backoff and
// capped at one second. Permanent errors return immediately.
func (ds *DatagramSender) SendWithRetry(p *packet.Packet, attempts int, backoff time.Duration) error {
	if attempts < 1 {
		return fmt.Errorf("transport: attempts %d must be >= 1", attempts)
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			ds.m.countSendRetry()
			time.Sleep(backoff)
			backoff = min(2*backoff, maxSendBackoff)
		}
		last = ds.Send(p)
		if last == nil {
			return nil
		}
		if !IsTransientSendErr(last) {
			return last
		}
	}
	return fmt.Errorf("transport: send failed after %d attempts: %w", attempts, last)
}

// SetFaults routes subsequent Sends through a seeded adversarial channel:
// every datagram passes the injector, which may corrupt or truncate it,
// emit duplicates, or append forgeries. Timing faults (reorder spikes,
// stalls) are netsim's domain and are ignored here — the UDP hook mutates
// bytes, not the clock. Pass nil to disable. Not safe to call concurrently
// with Send.
func (ds *DatagramSender) SetFaults(cfg *fault.Config, seed uint64) error {
	if cfg == nil || !cfg.Enabled() {
		ds.inj = nil
		return nil
	}
	inj, err := fault.NewInjector(*cfg, stats.NewRNG(seed))
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	ds.inj = inj
	return nil
}

// sendFaulted is Send's adversarial path: one WriteTo per injector
// delivery.
func (ds *DatagramSender) sendFaulted(wire []byte, p *packet.Packet) error {
	for _, d := range ds.inj.Apply(wire, p) {
		if _, err := ds.conn.WriteTo(d.Wire, ds.addr); err != nil {
			return fmt.Errorf("transport: send: %w", err)
		}
		if ds.m != nil {
			ds.m.datagramsSent.Inc()
			ds.m.bytesWritten.Add(int64(len(d.Wire)))
		}
	}
	return nil
}

// NACK wire format: a fixed 16-byte datagram, distinguishable from any
// packet encoding by its magic. Index 0 requests the block's
// authentication material (every signature-bearing packet); a nonzero
// index requests that specific packet.
const (
	nackMagic = "MCNK"
	nackSize  = 16
)

// NACKSigRequest is the index meaning "resend the block's signature /
// bootstrap packets".
const NACKSigRequest uint32 = 0

// EncodeNACK builds the repair-request datagram.
func EncodeNACK(blockID uint64, index uint32) []byte {
	b := make([]byte, nackSize)
	copy(b, nackMagic)
	binary.BigEndian.PutUint64(b[4:], blockID)
	binary.BigEndian.PutUint32(b[12:], index)
	return b
}

// DecodeNACK parses a repair request; ok is false for anything that is not
// exactly a NACK datagram.
func DecodeNACK(b []byte) (blockID uint64, index uint32, ok bool) {
	if len(b) != nackSize || string(b[:4]) != nackMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(b[4:]), binary.BigEndian.Uint32(b[12:]), true
}

// RepairStore retains recent blocks' packets so a sender can answer repair
// requests. It is bounded: beyond maxBlocks, the oldest block is evicted —
// a NACK for an evicted block simply goes unanswered, like any other lost
// repair. Safe for concurrent use.
type RepairStore struct {
	mu        sync.Mutex
	maxBlocks int
	blocks    map[uint64][]*packet.Packet
	order     []uint64
}

// NewRepairStore creates a store retaining at most maxBlocks blocks.
func NewRepairStore(maxBlocks int) (*RepairStore, error) {
	if maxBlocks < 1 {
		return nil, fmt.Errorf("transport: repair store size %d must be >= 1", maxBlocks)
	}
	return &RepairStore{
		maxBlocks: maxBlocks,
		blocks:    make(map[uint64][]*packet.Packet),
	}, nil
}

// Put records a block's packets (typically right after Authenticate).
func (rs *RepairStore) Put(blockID uint64, pkts []*packet.Packet) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, exists := rs.blocks[blockID]; !exists {
		rs.order = append(rs.order, blockID)
	}
	rs.blocks[blockID] = append([]*packet.Packet(nil), pkts...)
	for len(rs.blocks) > rs.maxBlocks {
		oldest := rs.order[0]
		rs.order = rs.order[1:]
		delete(rs.blocks, oldest)
	}
}

// Add appends packets to a block without replacing what is already stored
// — the serving tier stores a block in two phases (data packets at emit,
// withheld signature packets once the batch root is signed). Eviction
// bounds apply as in Put.
func (rs *RepairStore) Add(blockID uint64, pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, exists := rs.blocks[blockID]; !exists {
		rs.order = append(rs.order, blockID)
	}
	rs.blocks[blockID] = append(rs.blocks[blockID], pkts...)
	for len(rs.blocks) > rs.maxBlocks {
		oldest := rs.order[0]
		rs.order = rs.order[1:]
		delete(rs.blocks, oldest)
	}
}

// Since returns every retained packet of every block with ID >= from, in
// insertion order of blocks — the session-resume catch-up replay. The
// packets themselves are shared, not copied; callers must not mutate them.
func (rs *RepairStore) Since(from uint64) []*packet.Packet {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*packet.Packet
	for _, id := range rs.order {
		if id < from {
			continue
		}
		out = append(out, rs.blocks[id]...)
	}
	return out
}

// Packets answers one repair request: for NACKSigRequest, every
// signature-bearing packet of the block; otherwise the packet with the
// given index. Nil when the block is unknown (evicted or never stored).
func (rs *RepairStore) Packets(blockID uint64, index uint32) []*packet.Packet {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	pkts, ok := rs.blocks[blockID]
	if !ok {
		return nil
	}
	var out []*packet.Packet
	for _, p := range pkts {
		if index == NACKSigRequest {
			if len(p.Signature) > 0 {
				out = append(out, p)
			}
		} else if p.Index == index {
			out = append(out, p)
			break
		}
	}
	return out
}

// Blocks returns how many blocks are currently retained.
func (rs *RepairStore) Blocks() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.blocks)
}

// RepairResponder reads NACK datagrams from a sender-side socket and
// answers them from a RepairStore. Datagrams that are not NACKs are
// ignored — stray or adversarial traffic must never stop the responder.
type RepairResponder struct {
	conn   net.PacketConn
	store  *RepairStore
	done   chan struct{}
	served atomic.Int64
	closed atomic.Bool

	mu sync.Mutex
	m  *wireMetrics
}

// SetMetrics enables transport.* accounting for served repairs (nil
// disables). Safe to call while the responder runs.
func (rr *RepairResponder) SetMetrics(reg *obs.Registry) {
	m := newWireMetrics(reg)
	rr.mu.Lock()
	rr.m = m
	rr.mu.Unlock()
}

// ServeRepairs starts answering repair requests arriving on conn. The
// responder shares the sender's socket: replies go to whatever address the
// request came from.
func ServeRepairs(conn net.PacketConn, store *RepairStore) (*RepairResponder, error) {
	if conn == nil || store == nil {
		return nil, errors.New("transport: nil conn or store")
	}
	rr := &RepairResponder{
		conn:  conn,
		store: store,
		done:  make(chan struct{}),
	}
	go rr.loop()
	return rr, nil
}

func (rr *RepairResponder) loop() {
	defer close(rr.done)
	buf := make([]byte, MaxFrameSize)
	for {
		n, from, err := rr.conn.ReadFrom(buf)
		if err != nil {
			if rr.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		blockID, index, ok := DecodeNACK(buf[:n])
		if !ok {
			continue
		}
		for _, p := range rr.store.Packets(blockID, index) {
			wire, err := p.Encode()
			if err != nil {
				continue
			}
			if _, err := rr.conn.WriteTo(wire, from); err == nil {
				rr.served.Add(1)
				rr.mu.Lock()
				rr.m.countRepairServed()
				rr.mu.Unlock()
			}
		}
	}
}

// Served returns how many repair packets have been sent.
func (rr *RepairResponder) Served() int64 { return rr.served.Load() }

// Close stops the responder. It does not close the shared socket; it
// unblocks the read loop with a deadline and waits for it to exit.
func (rr *RepairResponder) Close() error {
	if rr.closed.Swap(true) {
		<-rr.done
		return nil
	}
	_ = rr.conn.SetReadDeadline(time.Now())
	<-rr.done
	_ = rr.conn.SetReadDeadline(time.Time{})
	return nil
}

// NACKConfig tunes a listener's repair-request loop.
type NACKConfig struct {
	// Sender is where repair requests are sent.
	Sender net.Addr
	// Interval is how often starved blocks are scanned for. Default 50ms.
	Interval time.Duration
	// MaxBackoff caps the per-block exponential backoff between repeated
	// requests for the same block. Default 2s.
	MaxBackoff time.Duration
	// MaxAttempts is how many requests are sent for one block before
	// giving up on it. Default 8.
	MaxAttempts int
}

func (c *NACKConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
}

// nackState tracks the capped-exponential schedule for one starved block.
type nackState struct {
	attempts int
	backoff  time.Duration
	nextAt   time.Time
}

// EnableNACK starts a background loop that polls the receiver for starved
// blocks (packets buffered, nothing authenticated — the signature is
// missing) and re-requests their authentication material from the sender,
// backing off exponentially per block and giving up after MaxAttempts.
// Call before meaningful traffic arrives; calling twice is an error.
func (l *Listener) EnableNACK(cfg NACKConfig) error {
	if cfg.Sender == nil {
		return errors.New("transport: NACK config needs a sender address")
	}
	cfg.applyDefaults()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("transport: listener closed")
	}
	if l.nackStop != nil {
		return errors.New("transport: NACK already enabled")
	}
	l.nackStop = make(chan struct{})
	l.nackDone = make(chan struct{})
	go l.nackLoop(cfg)
	return nil
}

// NACKsSent returns how many repair requests the listener has sent.
func (l *Listener) NACKsSent() int64 { return l.nacksSent.Load() }

func (l *Listener) nackLoop(cfg NACKConfig) {
	defer close(l.nackDone)
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	state := make(map[uint64]*nackState)
	for {
		select {
		case <-l.nackStop:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		starved := l.rcv.Starved()
		m := l.m
		l.mu.Unlock()
		now := time.Now()
		live := make(map[uint64]bool, len(starved))
		for _, id := range starved {
			live[id] = true
			st, ok := state[id]
			if !ok {
				st = &nackState{backoff: cfg.Interval}
				state[id] = st
			}
			if st.attempts >= cfg.MaxAttempts || now.Before(st.nextAt) {
				continue
			}
			if _, err := l.conn.WriteTo(EncodeNACK(id, NACKSigRequest), cfg.Sender); err == nil {
				l.nacksSent.Add(1)
				m.countNACKSent()
			}
			st.attempts++
			st.nextAt = now.Add(st.backoff)
			st.backoff = min(2*st.backoff, cfg.MaxBackoff)
		}
		// Blocks that recovered (or were evicted) reset their schedule, so
		// a block ID starving again later starts fresh.
		for id := range state {
			if !live[id] {
				delete(state, id)
			}
		}
	}
}
