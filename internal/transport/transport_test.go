package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/stream"
)

func testBlockPackets(t *testing.T, n int, blockID uint64) ([]*packet.Packet, *stream.Receiver) {
	t.Helper()
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("transport"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "m%02d", i)
	}
	pkts, err := s.Authenticate(blockID, payloads)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := stream.NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	return pkts, rcv
}

func TestFrameRoundTrip(t *testing.T) {
	pkts, _ := testBlockPackets(t, 6, 1)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for _, p := range pkts {
		if err := fw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for _, want := range pkts {
		got, err := fr.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest() != want.Digest() || got.Index != want.Index {
			t.Fatalf("frame round trip mismatch at index %d", want.Index)
		}
	}
	if _, err := fr.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream err = %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncation(t *testing.T) {
	pkts, _ := testBlockPackets(t, 4, 1)
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).WritePacket(pkts[0]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, len(full) - 1} {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		if _, err := fr.ReadPacket(); err == nil {
			t.Errorf("truncated frame at %d bytes should fail", cut)
		}
	}
}

func TestFrameReaderOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	buf.Write(hdr)
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadPacket(); err == nil {
		t.Error("oversize frame length should fail before allocation")
	}
}

func TestFrameWriterPropagatesErrors(t *testing.T) {
	pkts, _ := testBlockPackets(t, 4, 1)
	fw := NewFrameWriter(failingWriter{})
	if err := fw.WritePacket(pkts[0]); err == nil {
		t.Error("write error should propagate")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

func TestFrameStreamThroughReceiver(t *testing.T) {
	// A byte-stream (TCP-like) session end to end, via net.Pipe.
	pkts, rcv := testBlockPackets(t, 8, 3)
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		fw := NewFrameWriter(client)
		for _, p := range pkts {
			if err := fw.WritePacket(p); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- client.Close()
	}()
	fr := NewFrameReader(server)
	authenticated := 0
	for {
		p, err := fr.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events, err := rcv.Ingest(p, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		authenticated += len(events)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if authenticated != 8 {
		t.Errorf("authenticated %d, want 8", authenticated)
	}
}

func udpPair(t *testing.T) (net.PacketConn, net.PacketConn) {
	t.Helper()
	recvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	sendConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		recvConn.Close()
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	return sendConn, recvConn
}

func TestDatagramUDPEndToEnd(t *testing.T) {
	sendConn, recvConn := udpPair(t)
	defer sendConn.Close()

	pkts, rcv := testBlockPackets(t, 8, 5)
	listener, err := Listen(recvConn, rcv, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewDatagramSender(sendConn, recvConn.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.SendBlock(pkts, 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	got := make(map[uint32]bool)
	timeout := time.After(5 * time.Second)
	for len(got) < 8 {
		select {
		case a, ok := <-listener.Events():
			if !ok {
				t.Fatal("listener closed early")
			}
			got[a.Index] = true
		case <-timeout:
			t.Fatalf("timed out with %d/8 authenticated (UDP loss on loopback is unexpected)", len(got))
		}
	}
	if err := listener.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	totals := listener.Totals()
	if totals.Authenticated != 8 {
		t.Errorf("Authenticated = %d, want 8", totals.Authenticated)
	}
}

func TestListenerCloseIdempotent(t *testing.T) {
	_, recvConn := udpPair(t)
	_, rcv := testBlockPackets(t, 4, 1)
	listener, err := Listen(recvConn, rcv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := listener.Close(); err != nil {
		t.Fatal(err)
	}
	if err := listener.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-listener.Events(); ok {
		t.Error("events channel should be closed")
	}
}

func TestListenerValidation(t *testing.T) {
	_, recvConn := udpPair(t)
	defer recvConn.Close()
	_, rcv := testBlockPackets(t, 4, 1)
	if _, err := Listen(nil, rcv, nil); err == nil {
		t.Error("nil conn should fail")
	}
	if _, err := Listen(recvConn, nil, nil); err == nil {
		t.Error("nil receiver should fail")
	}
	if _, err := NewDatagramSender(nil, nil); err == nil {
		t.Error("nil conn should fail")
	}
}

func TestDatagramGarbageCounted(t *testing.T) {
	sendConn, recvConn := udpPair(t)
	defer sendConn.Close()
	_, rcv := testBlockPackets(t, 4, 1)
	listener, err := Listen(recvConn, rcv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sendConn.WriteTo([]byte{1, 2, 3}, recvConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for listener.Totals().DecodeErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage datagram never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := listener.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameMetrics(t *testing.T) {
	pkts, _ := testBlockPackets(t, 4, 1)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.SetMetrics(reg)
	for _, p := range pkts {
		if err := fw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	written := buf.Len()
	fr := NewFrameReader(&buf)
	fr.SetMetrics(reg)
	for range pkts {
		if _, err := fr.ReadPacket(); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport.frames_written"]; got != int64(len(pkts)) {
		t.Errorf("frames_written = %d, want %d", got, len(pkts))
	}
	if got := snap.Counters["transport.frames_read"]; got != int64(len(pkts)) {
		t.Errorf("frames_read = %d, want %d", got, len(pkts))
	}
	if got := snap.Counters["transport.bytes_written"]; got != int64(written) {
		t.Errorf("bytes_written = %d, want %d", got, written)
	}
	if got := snap.Counters["transport.bytes_read"]; got != int64(written) {
		t.Errorf("bytes_read = %d, want %d", got, written)
	}
}

func TestShortReadCounted(t *testing.T) {
	pkts, _ := testBlockPackets(t, 4, 1)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WritePacket(pkts[0]); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-frame: the reader sees a short body read.
	truncated := buf.Bytes()[:buf.Len()-3]
	fr := NewFrameReader(bytes.NewReader(truncated))
	fr.SetMetrics(reg)
	if _, err := fr.ReadPacket(); err == nil {
		t.Fatal("truncated frame should fail")
	}
	if got := reg.Snapshot().Counters["transport.short_reads"]; got != 1 {
		t.Errorf("short_reads = %d, want 1", got)
	}
}

func TestOversizeFrameCounted(t *testing.T) {
	reg := obs.NewRegistry()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	fr.SetMetrics(reg)
	if _, err := fr.ReadPacket(); err == nil {
		t.Fatal("oversize frame should fail")
	}
	if got := reg.Snapshot().Counters["transport.oversize_frames"]; got != 1 {
		t.Errorf("oversize_frames = %d, want 1", got)
	}
}
