package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
)

// FuzzFrameReader feeds arbitrary byte streams to the framed reader: it
// must never panic, must return an error (or io.EOF) for malformed input,
// and — because the length prefix is attacker-controlled — must not
// allocate the full claimed frame size before the bytes actually arrive.
func FuzzFrameReader(f *testing.F) {
	// Seed with a valid framed stream and interesting corruptions of it.
	var valid bytes.Buffer
	fw := NewFrameWriter(&valid)
	seedPkts := []*packet.Packet{
		{BlockID: 1, Index: 1, Payload: []byte("hello")},
		{
			BlockID: 1, Index: 2, Payload: []byte("world"),
			Hashes:    []packet.HashRef{{TargetIndex: 3, Digest: crypto.HashBytes([]byte("x"))}},
			Signature: []byte("sig"),
		},
	}
	for _, p := range seedPkts {
		if err := fw.WritePacket(p); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A header claiming 2 MiB with no bytes behind it.
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrameSize)
	f.Add(huge)
	// A header claiming more than the cap.
	over := make([]byte, 4)
	binary.BigEndian.PutUint32(over, MaxFrameSize+1)
	f.Add(over)
	// Truncated mid-frame.
	f.Add(valid.Bytes()[:valid.Len()/2])

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream))
		for i := 0; i < 64; i++ {
			p, err := fr.ReadPacket()
			if err != nil {
				return // any error ends the stream; it must just not panic
			}
			if p == nil {
				t.Fatal("nil packet with nil error")
			}
			// A decoded packet must re-encode: decoder output is always a
			// well-formed structure.
			if _, err := p.Encode(); err != nil {
				t.Fatalf("decoded packet does not re-encode: %v", err)
			}
		}
	})
}

// TestFrameReaderLyingPrefixStopsEarly pins the allocation cap: a header
// claiming a huge frame backed by a short stream must error out after at
// most one chunk, not try to fill 2 MiB.
func TestFrameReaderLyingPrefixStopsEarly(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, MaxFrameSize)
	buf.Write(hdr)
	buf.Write([]byte("only a few bytes"))
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadPacket(); err == nil {
		t.Fatal("truncated frame should error")
	}
}

// TestFrameReaderLargeFrameStillWorks: the chunked read path must remain
// correct for frames bigger than one chunk.
func TestFrameReaderLargeFrameStillWorks(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), (frameAllocChunk/8)+100)
	p := &packet.Packet{BlockID: 9, Index: 1, Payload: payload}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	got, err := fr.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("multi-chunk frame corrupted")
	}
	if _, err := fr.ReadPacket(); err != io.EOF {
		t.Fatalf("want EOF after the only frame, got %v", err)
	}
}

// FuzzMuxFrameReader is FuzzFrameReader for the stream-tagged framing the
// serving tier emits: arbitrary byte streams must never panic the reader,
// malformed frames must error, and an attacker-controlled length prefix
// must not force a large allocation up front.
func FuzzMuxFrameReader(f *testing.F) {
	var valid bytes.Buffer
	mw := NewMuxFrameWriter(&valid)
	seedPkts := []*packet.Packet{
		{BlockID: 1, Index: 1, Payload: []byte("hello")},
		{
			BlockID: 1, Index: 2, Payload: []byte("world"),
			Hashes:    []packet.HashRef{{TargetIndex: 3, Digest: crypto.HashBytes([]byte("x"))}},
			Signature: []byte("sig"),
		},
	}
	for i, p := range seedPkts {
		if err := mw.WritePacket(uint64(i+1)<<32, p); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A frame shorter than the stream-ID prefix.
	short := make([]byte, 4)
	binary.BigEndian.PutUint32(short, muxIDSize-1)
	f.Add(short)
	// A header claiming the cap with no bytes behind it, and one over it.
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrameSize+muxIDSize)
	f.Add(huge)
	over := make([]byte, 4)
	binary.BigEndian.PutUint32(over, MaxFrameSize+muxIDSize+1)
	f.Add(over)
	// Truncated mid-frame, and a torn-write seam: a valid stream cut and
	// restarted mid-frame, as an injected partial write produces.
	f.Add(valid.Bytes()[:valid.Len()/2])
	torn := append([]byte{}, valid.Bytes()[:valid.Len()/3]...)
	torn = append(torn, valid.Bytes()...)
	f.Add(torn)

	f.Fuzz(func(t *testing.T, stream []byte) {
		mr := NewMuxFrameReader(bytes.NewReader(stream))
		for i := 0; i < 64; i++ {
			id, p, err := mr.ReadPacket()
			if err != nil {
				return // any error ends the stream; it must just not panic
			}
			if p == nil {
				t.Fatalf("nil packet with nil error (stream %d)", id)
			}
			if _, err := p.Encode(); err != nil {
				t.Fatalf("decoded packet does not re-encode: %v", err)
			}
		}
	})
}
