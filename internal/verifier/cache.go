// SharedCache: the cross-subscriber hash-verification cache of the
// receiver fast path. One Demux-fed process fanning a stream out to many
// subscribers ingests the same wire packet into every subscriber's
// verifier; without sharing, each of them hashes the packet content and
// re-proves the same digest. The cache shares both steps: a pointer-keyed
// content-digest memo (hash each packet once per process) and an
// authenticated-digest set keyed by (stream, block, digest) (prove each
// digest once per stream).
//
// Caching on the content digest is forgery-safe: the digest is SHA-256
// over the packet's full authenticated content (block, index, payload,
// carried hashes), so a hit asserts exactly "a packet with this content
// was already proven authentic in this stream and block". A forged packet
// differs in content, hashes to a different digest, and misses; only
// packets that completed real verification are marked. The cache can
// therefore only skip work, never widen what is accepted — up to SHA-256
// collisions, which the schemes already rely on. Streams must map 1:1 to
// trust domains (one signing key per stream ID), which is how the Demux
// receiver factories are built.
package verifier

import (
	"fmt"
	"sync"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

// authKey identifies one authenticated content digest within a stream.
type authKey struct {
	stream uint64
	block  uint64
	digest crypto.Digest
}

// CacheStats snapshots a SharedCache's lifetime counters.
type CacheStats struct {
	// Hits and Misses count IsAuthentic lookups (also exported as the
	// verify.cache_hits / verify.cache_misses registry counters).
	Hits   int64
	Misses int64
	// DigestHits and DigestMisses count DigestOf memo lookups.
	DigestHits   int64
	DigestMisses int64
	// Evicted counts entries dropped by generation rotation.
	Evicted int64
}

// SharedCache is bounded LRU-style with two-generation rotation (like the
// Demux stream bound and crypto.SigCache): at most 2*max entries per
// table, O(1) per insert. Safe for concurrent use by many subscribers.
type SharedCache struct {
	mu       sync.Mutex
	max      int
	curAuth  map[authKey]struct{}
	prevAuth map[authKey]struct{}
	curDig   map[*packet.Packet]crypto.Digest
	prevDig  map[*packet.Packet]crypto.Digest
	stats    CacheStats

	hits   *obs.Counter
	misses *obs.Counter
}

// NewSharedCache creates a cache bounded at 2*max authenticated digests
// and 2*max memoized packet digests.
func NewSharedCache(max int) (*SharedCache, error) {
	if max < 1 {
		return nil, fmt.Errorf("verifier: shared cache size %d must be >= 1", max)
	}
	return &SharedCache{
		max:     max,
		curAuth: make(map[authKey]struct{}),
		curDig:  make(map[*packet.Packet]crypto.Digest),
	}, nil
}

// SetMetrics exports hit/miss counts as verify.cache_hits and
// verify.cache_misses in reg (nil disables).
func (c *SharedCache) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg == nil {
		c.hits, c.misses = nil, nil
		return
	}
	c.hits = reg.Counter("verify.cache_hits")
	c.misses = reg.Counter("verify.cache_misses")
}

// DigestOf returns the packet's authenticated-content digest, hashing at
// most once per packet pointer process-wide. Correct because packets are
// immutable once constructed (senders fill content before the packet is
// shared; deferred signing attaches only the signature, which is outside
// the content).
func (c *SharedCache) DigestOf(p *packet.Packet) crypto.Digest {
	c.mu.Lock()
	if d, ok := c.curDig[p]; ok {
		c.stats.DigestHits++
		c.mu.Unlock()
		return d
	}
	if d, ok := c.prevDig[p]; ok {
		c.stats.DigestHits++
		c.storeDigestLocked(p, d)
		c.mu.Unlock()
		return d
	}
	c.stats.DigestMisses++
	c.mu.Unlock()
	// Hash outside the lock: digesting a large payload must not serialize
	// every subscriber. Concurrent first-lookups may hash twice; both
	// compute the same value.
	d := p.Digest()
	c.mu.Lock()
	c.storeDigestLocked(p, d)
	c.mu.Unlock()
	return d
}

func (c *SharedCache) storeDigestLocked(p *packet.Packet, d crypto.Digest) {
	if len(c.curDig) >= c.max {
		c.stats.Evicted += int64(len(c.prevDig))
		c.prevDig = c.curDig
		c.curDig = make(map[*packet.Packet]crypto.Digest, c.max)
	}
	c.curDig[p] = d
}

// IsAuthentic reports whether a packet with this content digest has
// already been proven authentic in (stream, block).
func (c *SharedCache) IsAuthentic(stream, block uint64, digest crypto.Digest) bool {
	k := authKey{stream: stream, block: block, digest: digest}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.curAuth[k]; ok {
		c.hit()
		return true
	}
	if _, ok := c.prevAuth[k]; ok {
		c.hit()
		c.storeAuthLocked(k)
		return true
	}
	c.stats.Misses++
	if c.misses != nil {
		c.misses.Inc()
	}
	return false
}

func (c *SharedCache) hit() {
	c.stats.Hits++
	if c.hits != nil {
		c.hits.Inc()
	}
}

// MarkAuthentic records that a packet with this content digest completed
// verification in (stream, block). Callers must only mark digests of
// packets that a real signature / digest-chain / MAC check accepted.
func (c *SharedCache) MarkAuthentic(stream, block uint64, digest crypto.Digest) {
	k := authKey{stream: stream, block: block, digest: digest}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeAuthLocked(k)
}

func (c *SharedCache) storeAuthLocked(k authKey) {
	if len(c.curAuth) >= c.max {
		c.stats.Evicted += int64(len(c.prevAuth))
		c.prevAuth = c.curAuth
		c.curAuth = make(map[authKey]struct{}, c.max)
	}
	c.curAuth[k] = struct{}{}
}

// Len returns the number of cached authenticated digests.
func (c *SharedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.curAuth) + len(c.prevAuth)
}

// Stats snapshots the lifetime counters.
func (c *SharedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
