// Package verifier implements the receiver-side verification engine for
// hash-chained (signature-amortizing) schemes. It is scheme-agnostic: any
// chained topology — Rohatgi's chain, EMSS, augmented chains, or graphs
// produced by the Section 5 construction toolkit — verifies with the same
// engine, because the wire packets themselves carry the dependence edges.
//
// The engine maintains exactly the two buffers the paper attributes to a
// receiver: a hash buffer (trusted digests received ahead of their packets)
// and a message buffer (packets received ahead of their authentication
// information). Packets become authentic when their digest matches a
// trusted digest; trusted digests originate from the block signature and
// propagate along dependence edges.
//
// The engine is observable: it always measures arrival-to-authentication
// latency (the paper's receiver delay) into Stats.TimeToAuth, and can
// additionally emit per-packet lifecycle events and registry metrics when
// wired up via SetTracer / SetMetrics (see internal/obs).
package verifier

import (
	"errors"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

// Event reports a packet newly authenticated by an Ingest call.
type Event struct {
	Index   uint32
	Payload []byte
}

// Stats summarizes a verifier's lifetime.
type Stats struct {
	Received      int // packets ingested
	Authenticated int // packets proven authentic
	Rejected      int // packets whose digest or signature failed (tampering)
	Unsafe        int // TESLA only: packets dropped by the safety condition
	Duplicates    int // packets ingested more than once

	// MsgBufferHighWater is the peak number of packets buffered while
	// awaiting authentication information (the paper's message buffer).
	MsgBufferHighWater int
	// HashBufferHighWater is the peak number of trusted digests held for
	// packets not yet arrived (the paper's hash buffer).
	HashBufferHighWater int
	// DroppedOverflow counts packets discarded because the message
	// buffer hit its configured cap (the denial-of-service guard; the
	// paper notes receiver buffering "is subject to Denial of Service
	// attacks").
	DroppedOverflow int

	// TimeToAuth is the histogram of arrival-to-authentication latency
	// over this verifier's authenticated packets, in nanoseconds — the
	// measured receiver delay of the paper, recorded inside the engine
	// so transport-driven runs get receiver-delay numbers too.
	TimeToAuth obs.HistogramData

	// CacheHits counts packets accepted straight from a SharedCache
	// (content digest already proven authentic by another subscriber).
	CacheHits int
	// PendingSignature counts signature packets currently awaiting a
	// deferred batch-verify verdict.
	PendingSignature int
}

// Option configures a Chained verifier.
type Option interface {
	apply(*Chained)
}

type maxBufferedOption int

func (o maxBufferedOption) apply(v *Chained) { v.maxBuffered = int(o) }

// WithMaxBuffered caps the number of packets held while awaiting
// authentication information; packets arriving with the buffer full are
// dropped and counted in Stats.DroppedOverflow. Zero (the default) means
// unbounded.
func WithMaxBuffered(n int) Option { return maxBufferedOption(n) }

// SetMaxBuffered applies the WithMaxBuffered cap after construction — the
// hook layers that obtain verifiers from scheme factories (netsim, stream)
// use to bound buffering under adversarial floods. Negative values are
// ignored.
func (v *Chained) SetMaxBuffered(n int) {
	if n >= 0 {
		v.maxBuffered = n
	}
}

// metrics caches the registry instruments the engine updates, looked up
// once at SetMetrics time so Ingest never touches the registry's lock.
type metrics struct {
	reg           *obs.Registry
	authenticated *obs.Counter
	rejected      *obs.Counter
	duplicates    *obs.Counter
	// overflow is registered lazily on the first eviction so unbounded
	// (and never-overflowing) runs keep their metrics dump unchanged.
	overflow      *obs.Counter
	msgHighWater  *obs.Histogram
	hashHighWater *obs.Histogram
	timeToAuth    *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		reg:           reg,
		authenticated: reg.Counter("verifier.authenticated"),
		rejected:      reg.Counter("verifier.rejected"),
		duplicates:    reg.Counter("verifier.duplicates"),
		msgHighWater:  reg.Histogram("verifier.msg_buffer_high_water"),
		hashHighWater: reg.Histogram("verifier.hash_buffer_high_water"),
		timeToAuth:    reg.Histogram("verifier.time_to_auth_ns"),
	}
}

// buffered is one message-buffer entry: the packet plus its arrival time,
// kept so the cascade can measure arrival-to-authentication latency.
type bufferedPacket struct {
	p       *packet.Packet
	arrived time.Time
}

// Chained verifies one block of a hash-chained scheme.
type Chained struct {
	blockID uint64
	n       uint32
	pub     crypto.Verifier

	trusted     map[uint32]crypto.Digest // digests proven authentic, by index
	buffered    map[uint32]bufferedPacket
	authentic   map[uint32]bool
	maxBuffered int // 0 = unbounded
	stats       Stats

	// Receiver fast path (see SetSharedCache / SetBatchVerify).
	cache    *SharedCache
	streamID uint64
	batchQ   *crypto.BatchVerifyQueue
	sink     func([]Event)
	// pendingSig holds signature packets awaiting a deferred verdict. A
	// slice per index, so an attacker racing a forged signature packet
	// ahead of the genuine one cannot occupy the index and starve it.
	pendingSig map[uint32][]bufferedPacket

	tracer obs.Tracer
	m      *metrics

	// Causal span tracing (see SetSpans). spans is nil-safe and checks an
	// atomic enable flag before any work, so the disabled cost is one
	// predictable branch per lifecycle transition.
	spans      *obs.SpanRing
	spanStream uint64
}

var _ obs.Instrumented = (*Chained)(nil)

// NewChained creates a verifier for one block of n packets signed by the
// holder of pub.
func NewChained(blockID uint64, n int, pub crypto.Verifier, opts ...Option) (*Chained, error) {
	if n < 1 {
		return nil, fmt.Errorf("verifier: block size %d must be >= 1", n)
	}
	if pub == nil {
		return nil, errors.New("verifier: nil public key")
	}
	v := &Chained{
		blockID:   blockID,
		n:         uint32(n),
		pub:       pub,
		trusted:   make(map[uint32]crypto.Digest),
		buffered:  make(map[uint32]bufferedPacket),
		authentic: make(map[uint32]bool),
	}
	for _, o := range opts {
		o.apply(v)
	}
	if v.maxBuffered < 0 {
		return nil, fmt.Errorf("verifier: negative buffer cap %d", v.maxBuffered)
	}
	return v, nil
}

// SetTracer implements obs.Instrumented: subsequent ingests emit lifecycle
// events to t (nil disables tracing).
func (v *Chained) SetTracer(t obs.Tracer) { v.tracer = t }

// SetMetrics implements obs.Instrumented: subsequent ingests update
// verifier.* instruments in reg (nil disables).
func (v *Chained) SetMetrics(reg *obs.Registry) { v.m = newMetrics(reg) }

// SetSharedCache attaches the cross-subscriber verification cache: packet
// digests are memoized through it, a packet whose digest the cache has
// proven authentic for (streamID, block) is accepted without re-verifying
// its signature or digest chain, and every authentication this verifier
// performs is published back. streamID must identify the stream (and so
// the signing key) this verifier serves. nil detaches.
func (v *Chained) SetSharedCache(c *SharedCache, streamID uint64) {
	v.cache = c
	v.streamID = streamID
}

// SetBatchVerify defers signature-packet verification to q: Ingest parks
// such packets as pending-signature and enqueues the check; when the
// queue resolves (threshold or explicit Resolve), an accepting verdict
// authenticates the packet and delivers its cascade of events to sink,
// while a rejecting verdict counts a rejection. Verdicts must resolve on
// the goroutine that ingests (the engine itself is not thread-safe). nil
// q restores synchronous verification; sink is required otherwise.
func (v *Chained) SetBatchVerify(q *crypto.BatchVerifyQueue, sink func([]Event)) {
	v.batchQ = q
	v.sink = sink
	if q != nil && v.pendingSig == nil {
		v.pendingSig = make(map[uint32][]bufferedPacket)
	}
}

// SetSpans attaches a causal span ring: deferred parks, signature
// resolutions, authentications and rejections are recorded as spans keyed
// by (streamID, block), joining the sender-side spans of the serving tier
// into one end-to-end trace. nil detaches.
func (v *Chained) SetSpans(r *obs.SpanRing, streamID uint64) {
	v.spans = r
	v.spanStream = streamID
}

// span records one lifecycle span when the ring is attached and enabled.
func (v *Chained) span(kind obs.SpanKind, index uint32, at time.Time, dur time.Duration, reason string) {
	if !v.spans.Enabled() {
		return
	}
	v.spans.Record(obs.Span{
		Kind:   kind,
		Stream: v.spanStream,
		Block:  v.blockID,
		Index:  index,
		TimeNS: obs.TimeNS(at),
		DurNS:  dur.Nanoseconds(),
		Reason: reason,
	})
}

// digestOf computes p's content digest through the shared memo when one
// is attached.
func (v *Chained) digestOf(p *packet.Packet) crypto.Digest {
	if v.cache != nil {
		return v.cache.DigestOf(p)
	}
	return p.Digest()
}

// Ingest processes one arriving packet at the given receiver-local time.
// The timestamp orders buffering against authentication for the receiver-
// delay measurement; hash-chained schemes have no timing condition of
// their own.
func (v *Chained) Ingest(p *packet.Packet, at time.Time) ([]Event, error) {
	if p == nil {
		return nil, errors.New("verifier: nil packet")
	}
	if p.BlockID != v.blockID {
		return nil, fmt.Errorf("verifier: packet block %d, verifier block %d", p.BlockID, v.blockID)
	}
	if p.Index < 1 || p.Index > v.n {
		return nil, fmt.Errorf("verifier: index %d out of [1,%d]", p.Index, v.n)
	}
	v.stats.Received++
	if _, dup := v.buffered[p.Index]; v.authentic[p.Index] || dup {
		v.stats.Duplicates++
		v.m.countDuplicate()
		return nil, nil
	}

	// Shared-cache fast path: a packet whose exact content was already
	// proven authentic in this stream and block (by this or any other
	// subscriber) is accepted without re-running its signature or digest
	// check — see the forgery-safety argument in cache.go.
	if v.cache != nil {
		if d := v.cache.DigestOf(p); v.cache.IsAuthentic(v.streamID, p.BlockID, d) {
			v.stats.CacheHits++
			return v.accept(p, at), nil
		}
	}

	var events []Event
	switch {
	case len(p.Signature) > 0:
		if v.batchQ != nil {
			v.deferSignature(p, at)
			return nil, nil
		}
		if !v.pub.Verify(p.ContentBytes(), p.Signature) {
			v.reject(p, at, "bad_signature")
			return nil, nil
		}
		events = v.accept(p, at)
	default:
		want, ok := v.trusted[p.Index]
		if !ok {
			if v.maxBuffered > 0 && len(v.buffered)+v.stats.PendingSignature >= v.maxBuffered {
				v.stats.DroppedOverflow++
				v.m.countOverflow()
				v.emit(obs.Event{
					Type: obs.EventOverflowDropped, Index: p.Index,
					Block: p.BlockID, TimeNS: obs.TimeNS(at), Depth: len(v.buffered),
				})
				return nil, nil
			}
			v.buffered[p.Index] = bufferedPacket{p: p, arrived: at}
			if len(v.buffered) > v.stats.MsgBufferHighWater {
				v.stats.MsgBufferHighWater = len(v.buffered)
				if v.m != nil {
					v.m.msgHighWater.Observe(int64(len(v.buffered)))
				}
			}
			v.emit(obs.Event{
				Type: obs.EventMsgBuffered, Index: p.Index,
				Block: p.BlockID, TimeNS: obs.TimeNS(at), Depth: len(v.buffered),
			})
			return nil, nil
		}
		if v.digestOf(p) != want {
			v.reject(p, at, "digest_mismatch")
			return nil, nil
		}
		events = v.accept(p, at)
	}
	return events, nil
}

// deferSignature parks a signature packet pending its batch verdict and
// enqueues the underlying check. The packet counts against the buffer cap
// like any buffered packet (pending-signature floods are attacker
// reachable).
func (v *Chained) deferSignature(p *packet.Packet, at time.Time) {
	if v.maxBuffered > 0 && len(v.buffered)+v.stats.PendingSignature >= v.maxBuffered {
		v.stats.DroppedOverflow++
		v.m.countOverflow()
		v.emit(obs.Event{
			Type: obs.EventOverflowDropped, Index: p.Index,
			Block: p.BlockID, TimeNS: obs.TimeNS(at), Depth: len(v.buffered),
		})
		return
	}
	v.pendingSig[p.Index] = append(v.pendingSig[p.Index], bufferedPacket{p: p, arrived: at})
	v.stats.PendingSignature++
	v.span(obs.SpanDeferredPark, p.Index, at, 0, "")
	v.emit(obs.Event{
		Type: obs.EventMsgBuffered, Index: p.Index,
		Block: p.BlockID, TimeNS: obs.TimeNS(at), Depth: len(v.buffered) + v.stats.PendingSignature,
	})
	// The verdict callback may run synchronously (threshold reached) or
	// from a later Resolve on the ingest goroutine.
	v.batchQ.Enqueue(v.pub, p.ContentBytes(), p.Signature, func(ok bool) {
		v.resolveSignature(p, at, ok)
	})
}

// resolveSignature applies one deferred verdict. Authentication events
// cascade exactly as in the synchronous path but are delivered through
// the sink, since the originating Ingest has long returned. The packet's
// arrival time stands in for the verdict time, so TimeToAuth keeps using
// the caller's clock (batch-resolution latency is observable on the queue
// instead).
func (v *Chained) resolveSignature(p *packet.Packet, arrived time.Time, ok bool) {
	v.unparkPending(p)
	v.span(obs.SpanSigResolve, p.Index, arrived, 0, "")
	if v.authentic[p.Index] {
		// Another copy of the signature packet (or a cascade) got there
		// first.
		v.stats.Duplicates++
		v.m.countDuplicate()
		return
	}
	if !ok {
		v.reject(p, arrived, "bad_signature")
		return
	}
	events := v.accept(p, arrived)
	if v.sink != nil && len(events) > 0 {
		v.sink(events)
	}
}

// unparkPending removes one pending-signature entry for p.
func (v *Chained) unparkPending(p *packet.Packet) {
	list := v.pendingSig[p.Index]
	for i := range list {
		if list[i].p == p {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			v.stats.PendingSignature--
			break
		}
	}
	if len(list) == 0 {
		delete(v.pendingSig, p.Index)
	} else {
		v.pendingSig[p.Index] = list
	}
}

func (v *Chained) reject(p *packet.Packet, at time.Time, reason string) {
	v.stats.Rejected++
	v.m.countRejected()
	v.span(obs.SpanReject, p.Index, at, 0, reason)
	v.emit(obs.Event{
		Type: obs.EventRejected, Index: p.Index,
		Block: p.BlockID, TimeNS: obs.TimeNS(at), Reason: reason,
	})
}

// authenticate records one successful authentication at time `at` of a
// packet that arrived at `arrived`.
func (v *Chained) authenticate(p *packet.Packet, arrived, at time.Time) {
	v.authentic[p.Index] = true
	v.stats.Authenticated++
	if v.cache != nil {
		v.cache.MarkAuthentic(v.streamID, p.BlockID, v.cache.DigestOf(p))
	}
	latency := at.Sub(arrived)
	if latency < 0 {
		latency = 0
	}
	v.stats.TimeToAuth.Observe(latency.Nanoseconds())
	if v.m != nil {
		v.m.authenticated.Inc()
		v.m.timeToAuth.Observe(latency.Nanoseconds())
	}
	v.span(obs.SpanAuthenticate, p.Index, at, latency, "")
	v.emit(obs.Event{
		Type: obs.EventAuthenticated, Index: p.Index, Block: p.BlockID,
		TimeNS: obs.TimeNS(at), LatencyNS: latency.Nanoseconds(),
	})
}

// accept marks p authentic, trusts its carried hashes, and cascades into
// the message buffer. It returns the authentication events in cascade
// order.
func (v *Chained) accept(p *packet.Packet, at time.Time) []Event {
	events := []Event{{Index: p.Index, Payload: p.Payload}}
	v.authenticate(p, at, at)
	delete(v.buffered, p.Index)

	queue := []*packet.Packet{p}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range cur.Hashes {
			if _, known := v.trusted[h.TargetIndex]; known {
				continue
			}
			v.trusted[h.TargetIndex] = h.Digest
			waiting, ok := v.buffered[h.TargetIndex]
			if !ok {
				if !v.authentic[h.TargetIndex] {
					v.emit(obs.Event{
						Type: obs.EventHashBuffered, Index: h.TargetIndex,
						Block: p.BlockID, TimeNS: obs.TimeNS(at),
					})
				}
				continue
			}
			if v.digestOf(waiting.p) != h.Digest {
				v.reject(waiting.p, at, "digest_mismatch")
				delete(v.buffered, h.TargetIndex)
				continue
			}
			v.authenticate(waiting.p, waiting.arrived, at)
			delete(v.buffered, waiting.p.Index)
			events = append(events, Event{Index: waiting.p.Index, Payload: waiting.p.Payload})
			queue = append(queue, waiting.p)
		}
	}
	v.updateHashHighWater()
	return events
}

func (v *Chained) updateHashHighWater() {
	pendingHashes := 0
	for idx := range v.trusted {
		if !v.authentic[idx] {
			pendingHashes++
		}
	}
	if pendingHashes > v.stats.HashBufferHighWater {
		v.stats.HashBufferHighWater = pendingHashes
		if v.m != nil {
			v.m.hashHighWater.Observe(int64(pendingHashes))
		}
	}
}

func (v *Chained) emit(e obs.Event) {
	if v.tracer == nil {
		return
	}
	v.tracer.Emit(e)
}

func (m *metrics) countDuplicate() {
	if m != nil {
		m.duplicates.Inc()
	}
}

func (m *metrics) countRejected() {
	if m != nil {
		m.rejected.Inc()
	}
}

func (m *metrics) countOverflow() {
	if m == nil {
		return
	}
	if m.overflow == nil {
		m.overflow = m.reg.Counter("verifier.overflow_dropped")
	}
	m.overflow.Inc()
}

// IsAuthentic reports whether the packet at index has been authenticated.
func (v *Chained) IsAuthentic(index uint32) bool { return v.authentic[index] }

// PendingCount returns the number of packets still buffered unverified.
func (v *Chained) PendingCount() int { return len(v.buffered) }

// Stats returns a snapshot of the verifier's counters.
func (v *Chained) Stats() Stats { return v.stats }
