// Package verifier implements the receiver-side verification engine for
// hash-chained (signature-amortizing) schemes. It is scheme-agnostic: any
// chained topology — Rohatgi's chain, EMSS, augmented chains, or graphs
// produced by the Section 5 construction toolkit — verifies with the same
// engine, because the wire packets themselves carry the dependence edges.
//
// The engine maintains exactly the two buffers the paper attributes to a
// receiver: a hash buffer (trusted digests received ahead of their packets)
// and a message buffer (packets received ahead of their authentication
// information). Packets become authentic when their digest matches a
// trusted digest; trusted digests originate from the block signature and
// propagate along dependence edges.
package verifier

import (
	"errors"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
)

// Event reports a packet newly authenticated by an Ingest call.
type Event struct {
	Index   uint32
	Payload []byte
}

// Stats summarizes a verifier's lifetime.
type Stats struct {
	Received      int // packets ingested
	Authenticated int // packets proven authentic
	Rejected      int // packets whose digest or signature failed (tampering)
	Unsafe        int // TESLA only: packets dropped by the safety condition
	Duplicates    int // packets ingested more than once

	// MsgBufferHighWater is the peak number of packets buffered while
	// awaiting authentication information (the paper's message buffer).
	MsgBufferHighWater int
	// HashBufferHighWater is the peak number of trusted digests held for
	// packets not yet arrived (the paper's hash buffer).
	HashBufferHighWater int
	// DroppedOverflow counts packets discarded because the message
	// buffer hit its configured cap (the denial-of-service guard; the
	// paper notes receiver buffering "is subject to Denial of Service
	// attacks").
	DroppedOverflow int
}

// Option configures a Chained verifier.
type Option interface {
	apply(*Chained)
}

type maxBufferedOption int

func (o maxBufferedOption) apply(v *Chained) { v.maxBuffered = int(o) }

// WithMaxBuffered caps the number of packets held while awaiting
// authentication information; packets arriving with the buffer full are
// dropped and counted in Stats.DroppedOverflow. Zero (the default) means
// unbounded.
func WithMaxBuffered(n int) Option { return maxBufferedOption(n) }

// Chained verifies one block of a hash-chained scheme.
type Chained struct {
	blockID uint64
	n       uint32
	pub     crypto.Verifier

	trusted     map[uint32]crypto.Digest // digests proven authentic, by index
	buffered    map[uint32]*packet.Packet
	authentic   map[uint32]bool
	maxBuffered int // 0 = unbounded
	stats       Stats
}

// NewChained creates a verifier for one block of n packets signed by the
// holder of pub.
func NewChained(blockID uint64, n int, pub crypto.Verifier, opts ...Option) (*Chained, error) {
	if n < 1 {
		return nil, fmt.Errorf("verifier: block size %d must be >= 1", n)
	}
	if pub == nil {
		return nil, errors.New("verifier: nil public key")
	}
	v := &Chained{
		blockID:   blockID,
		n:         uint32(n),
		pub:       pub,
		trusted:   make(map[uint32]crypto.Digest),
		buffered:  make(map[uint32]*packet.Packet),
		authentic: make(map[uint32]bool),
	}
	for _, o := range opts {
		o.apply(v)
	}
	if v.maxBuffered < 0 {
		return nil, fmt.Errorf("verifier: negative buffer cap %d", v.maxBuffered)
	}
	return v, nil
}

// Ingest processes one arriving packet. The timestamp is unused by
// hash-chained schemes (they have no timing condition) but kept for
// interface symmetry with TESLA.
func (v *Chained) Ingest(p *packet.Packet, _ time.Time) ([]Event, error) {
	if p == nil {
		return nil, errors.New("verifier: nil packet")
	}
	if p.BlockID != v.blockID {
		return nil, fmt.Errorf("verifier: packet block %d, verifier block %d", p.BlockID, v.blockID)
	}
	if p.Index < 1 || p.Index > v.n {
		return nil, fmt.Errorf("verifier: index %d out of [1,%d]", p.Index, v.n)
	}
	v.stats.Received++
	if v.authentic[p.Index] || v.buffered[p.Index] != nil {
		v.stats.Duplicates++
		return nil, nil
	}

	var events []Event
	switch {
	case len(p.Signature) > 0:
		if !v.pub.Verify(p.ContentBytes(), p.Signature) {
			v.stats.Rejected++
			return nil, nil
		}
		events = v.accept(p)
	default:
		want, ok := v.trusted[p.Index]
		if !ok {
			if v.maxBuffered > 0 && len(v.buffered) >= v.maxBuffered {
				v.stats.DroppedOverflow++
				return nil, nil
			}
			v.buffered[p.Index] = p
			if len(v.buffered) > v.stats.MsgBufferHighWater {
				v.stats.MsgBufferHighWater = len(v.buffered)
			}
			return nil, nil
		}
		if p.Digest() != want {
			v.stats.Rejected++
			return nil, nil
		}
		events = v.accept(p)
	}
	return events, nil
}

// accept marks p authentic, trusts its carried hashes, and cascades into
// the message buffer. It returns the authentication events in cascade
// order.
func (v *Chained) accept(p *packet.Packet) []Event {
	events := []Event{{Index: p.Index, Payload: p.Payload}}
	v.authentic[p.Index] = true
	v.stats.Authenticated++
	delete(v.buffered, p.Index)

	queue := []*packet.Packet{p}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range cur.Hashes {
			if _, known := v.trusted[h.TargetIndex]; known {
				continue
			}
			v.trusted[h.TargetIndex] = h.Digest
			waiting, ok := v.buffered[h.TargetIndex]
			if !ok {
				continue
			}
			if waiting.Digest() != h.Digest {
				v.stats.Rejected++
				delete(v.buffered, h.TargetIndex)
				continue
			}
			v.authentic[waiting.Index] = true
			v.stats.Authenticated++
			delete(v.buffered, waiting.Index)
			events = append(events, Event{Index: waiting.Index, Payload: waiting.Payload})
			queue = append(queue, waiting)
		}
	}
	v.updateHashHighWater()
	return events
}

func (v *Chained) updateHashHighWater() {
	pendingHashes := 0
	for idx := range v.trusted {
		if !v.authentic[idx] {
			pendingHashes++
		}
	}
	if pendingHashes > v.stats.HashBufferHighWater {
		v.stats.HashBufferHighWater = pendingHashes
	}
}

// IsAuthentic reports whether the packet at index has been authenticated.
func (v *Chained) IsAuthentic(index uint32) bool { return v.authentic[index] }

// PendingCount returns the number of packets still buffered unverified.
func (v *Chained) PendingCount() int { return len(v.buffered) }

// Stats returns a snapshot of the verifier's counters.
func (v *Chained) Stats() Stats { return v.stats }
