package verifier

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
)

// buildChain constructs a 4-packet Rohatgi-style block by hand: P1 signed,
// P1 carries H(P2), P2 carries H(P3), P3 carries H(P4).
func buildChain(t *testing.T, signer crypto.Signer, blockID uint64) []*packet.Packet {
	t.Helper()
	pkts := make([]*packet.Packet, 5)
	for i := 1; i <= 4; i++ {
		pkts[i] = &packet.Packet{
			BlockID: blockID,
			Index:   uint32(i),
			Payload: []byte{byte(i)},
		}
	}
	for i := 3; i >= 1; i-- {
		pkts[i].Hashes = []packet.HashRef{{TargetIndex: uint32(i + 1), Digest: pkts[i+1].Digest()}}
	}
	pkts[1].Signature = signer.Sign(pkts[1].ContentBytes())
	return pkts[1:]
}

func newVerifier(t *testing.T, signer crypto.Signer, blockID uint64, n int) *Chained {
	t.Helper()
	v, err := NewChained(blockID, n, signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func ingest(t *testing.T, v *Chained, p *packet.Packet) []Event {
	t.Helper()
	events, err := v.Ingest(p, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestInOrderDelivery(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	total := 0
	for _, p := range pkts {
		events := ingest(t, v, p)
		total += len(events)
		// In order, each packet verifies immediately.
		if len(events) != 1 || events[0].Index != p.Index {
			t.Fatalf("packet %d: events %v", p.Index, events)
		}
	}
	if total != 4 {
		t.Errorf("authenticated %d, want 4", total)
	}
	st := v.Stats()
	if st.Authenticated != 4 || st.Rejected != 0 || st.MsgBufferHighWater != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestOutOfOrderCascade(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	// Deliver 4, 3, 2 first: all buffer.
	for _, idx := range []int{3, 2, 1} {
		if events := ingest(t, v, pkts[idx]); len(events) != 0 {
			t.Fatalf("packet %d verified without signature", idx+1)
		}
	}
	if v.PendingCount() != 3 {
		t.Fatalf("PendingCount = %d, want 3", v.PendingCount())
	}
	// The signature packet arrives last and cascades through everything.
	events := ingest(t, v, pkts[0])
	if len(events) != 4 {
		t.Fatalf("cascade produced %d events, want 4", len(events))
	}
	if v.Stats().MsgBufferHighWater != 3 {
		t.Errorf("MsgBufferHighWater = %d, want 3", v.Stats().MsgBufferHighWater)
	}
	for i := uint32(1); i <= 4; i++ {
		if !v.IsAuthentic(i) {
			t.Errorf("packet %d not authentic after cascade", i)
		}
	}
}

func TestLossBreaksChainDownstreamOnly(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	// Lose P2: P1 verifies; P3, P4 stay pending forever (Rohatgi
	// fragility).
	ingest(t, v, pkts[0])
	ingest(t, v, pkts[2])
	ingest(t, v, pkts[3])
	if !v.IsAuthentic(1) {
		t.Error("P1 should verify")
	}
	if v.IsAuthentic(3) || v.IsAuthentic(4) {
		t.Error("P3/P4 must not verify with P2 lost")
	}
	if v.PendingCount() != 2 {
		t.Errorf("PendingCount = %d, want 2", v.PendingCount())
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	ingest(t, v, pkts[0])
	evil := *pkts[1]
	evil.Payload = []byte("evil")
	if events := ingest(t, v, &evil); len(events) != 0 {
		t.Fatal("tampered packet authenticated")
	}
	if v.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", v.Stats().Rejected)
	}
	if v.IsAuthentic(2) {
		t.Error("tampered packet marked authentic")
	}
}

func TestTamperedBufferedPacketRejectedOnCascade(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	evil := *pkts[1]
	evil.Payload = []byte("evil")
	ingest(t, v, &evil) // buffered, unverifiable yet
	events := ingest(t, v, pkts[0])
	// Only P1 authenticates; the buffered forgery is rejected.
	if len(events) != 1 || events[0].Index != 1 {
		t.Fatalf("events %v", events)
	}
	if v.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", v.Stats().Rejected)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	attacker := crypto.NewSignerFromString("attacker")
	pkts := buildChain(t, attacker, 1) // signed by the wrong key
	v := newVerifier(t, signer, 1, 4)
	if events := ingest(t, v, pkts[0]); len(events) != 0 {
		t.Fatal("forged signature accepted")
	}
	if v.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", v.Stats().Rejected)
	}
}

func TestTamperedSignaturePacketContentRejected(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	evil := *pkts[0]
	evil.Payload = []byte("evil")
	if events := ingest(t, v, &evil); len(events) != 0 {
		t.Fatal("tampered signature packet accepted")
	}
}

func TestDuplicateCounted(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	ingest(t, v, pkts[0])
	ingest(t, v, pkts[0])
	if v.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", v.Stats().Duplicates)
	}
	ingest(t, v, pkts[3]) // buffered
	ingest(t, v, pkts[3]) // duplicate of buffered
	if v.Stats().Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", v.Stats().Duplicates)
	}
}

func TestWrongBlockRejected(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 2)
	v := newVerifier(t, signer, 1, 4)
	if _, err := v.Ingest(pkts[0], time.Time{}); err == nil {
		t.Error("wrong block ID should error")
	}
}

func TestIndexOutOfRange(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	v := newVerifier(t, signer, 1, 4)
	bad := &packet.Packet{BlockID: 1, Index: 5}
	if _, err := v.Ingest(bad, time.Time{}); err == nil {
		t.Error("out-of-range index should error")
	}
	if _, err := v.Ingest(nil, time.Time{}); err == nil {
		t.Error("nil packet should error")
	}
}

func TestConstructorValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	if _, err := NewChained(1, 0, signer.Public()); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewChained(1, 4, nil); err == nil {
		t.Error("nil key should fail")
	}
}

func TestHashBufferHighWater(t *testing.T) {
	// Signature packet first delivers 1 trusted hash for a packet not
	// yet arrived.
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v := newVerifier(t, signer, 1, 4)
	ingest(t, v, pkts[0])
	if hw := v.Stats().HashBufferHighWater; hw != 1 {
		t.Errorf("HashBufferHighWater = %d, want 1", hw)
	}
}

func TestBufferCapDropsOverflow(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	pkts := buildChain(t, signer, 1)
	v, err := NewChained(1, 4, signer.Public(), WithMaxBuffered(1))
	if err != nil {
		t.Fatal(err)
	}
	// Without the signature packet, non-root packets buffer; only one
	// slot exists.
	ingest(t, v, pkts[2]) // buffered
	ingest(t, v, pkts[3]) // dropped: buffer full
	st := v.Stats()
	if st.DroppedOverflow != 1 {
		t.Errorf("DroppedOverflow = %d, want 1", st.DroppedOverflow)
	}
	if st.MsgBufferHighWater != 1 {
		t.Errorf("MsgBufferHighWater = %d, want 1", st.MsgBufferHighWater)
	}
	// The signature still cascades the buffered packet (and P2, which
	// arrives verifiable directly).
	ingest(t, v, pkts[0])
	ingest(t, v, pkts[1])
	if !v.IsAuthentic(3) {
		t.Error("buffered packet lost despite fitting in the cap")
	}
	if v.IsAuthentic(4) {
		t.Error("dropped packet cannot become authentic")
	}
}

func TestBufferCapValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	if _, err := NewChained(1, 4, signer.Public(), WithMaxBuffered(-1)); err == nil {
		t.Error("negative cap should fail")
	}
}
