package verifier

import (
	"fmt"
	"sync"
	"testing"

	"mcauth/internal/obs"
	"mcauth/internal/packet"
)

func cachePacket(block uint64, index uint32, payload string) *packet.Packet {
	return &packet.Packet{BlockID: block, Index: index, Payload: []byte(payload)}
}

// TestSharedCacheForgedPacketMisses is the core forgery-safety property:
// marking a genuine packet authentic must not create a hit for any
// packet whose authenticated content differs — tampered payload, shifted
// index, replayed into another block, or replayed into another stream.
func TestSharedCacheForgedPacketMisses(t *testing.T) {
	c, err := NewSharedCache(16)
	if err != nil {
		t.Fatal(err)
	}
	genuine := cachePacket(3, 7, "legitimate payload")
	c.MarkAuthentic(1, 3, c.DigestOf(genuine))
	if !c.IsAuthentic(1, 3, c.DigestOf(genuine)) {
		t.Fatal("genuine packet should hit after marking")
	}
	forgeries := map[string]*packet.Packet{
		"tampered payload": cachePacket(3, 7, "malicious payload"),
		"shifted index":    cachePacket(3, 8, "legitimate payload"),
	}
	for name, forged := range forgeries {
		if c.IsAuthentic(1, 3, c.DigestOf(forged)) {
			t.Errorf("%s: forged packet hit the cache", name)
		}
	}
	// The same digest is scoped to its (stream, block): replays across
	// either boundary are misses even with byte-identical content.
	d := c.DigestOf(genuine)
	if c.IsAuthentic(1, 4, d) {
		t.Error("cross-block replay hit the cache")
	}
	if c.IsAuthentic(2, 3, d) {
		t.Error("cross-stream replay hit the cache")
	}
	// Zero digest (the value of an uninitialized lookup bug) never hits.
	var zero [32]byte
	if c.IsAuthentic(1, 3, zero) {
		t.Error("zero digest hit the cache")
	}
}

// TestSharedCacheEvictionUnderChurn: the two-generation rotation keeps
// both tables bounded at 2*max entries under unbounded distinct inserts,
// counts evictions, and evicted digests simply miss (forcing a re-proof,
// never a false accept).
func TestSharedCacheEvictionUnderChurn(t *testing.T) {
	const max = 8
	c, err := NewSharedCache(max)
	if err != nil {
		t.Fatal(err)
	}
	first := cachePacket(0, 0, "payload-0")
	c.MarkAuthentic(1, 0, c.DigestOf(first))
	for i := 1; i < 20*max; i++ {
		p := cachePacket(0, uint32(i), fmt.Sprintf("payload-%d", i))
		c.MarkAuthentic(1, 0, c.DigestOf(p))
		if got := c.Len(); got > 2*max {
			t.Fatalf("after %d inserts: %d cached digests, bound is %d", i+1, got, 2*max)
		}
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Error("churn past capacity evicted nothing")
	}
	if c.IsAuthentic(1, 0, c.DigestOf(first)) {
		t.Error("long-evicted digest still hits")
	}
	// Re-proving after eviction works.
	c.MarkAuthentic(1, 0, c.DigestOf(first))
	if !c.IsAuthentic(1, 0, c.DigestOf(first)) {
		t.Error("re-marked digest misses")
	}
}

// TestSharedCacheConcurrentSubscribers hammers one cache from many
// goroutines mixing DigestOf, MarkAuthentic, and IsAuthentic — the
// Demux fan-out shape. Run under -race this is the concurrency guard;
// the only semantic assertion is that hits are never produced for
// digests nobody marked.
func TestSharedCacheConcurrentSubscribers(t *testing.T) {
	c, err := NewSharedCache(32)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	shared := make([]*packet.Packet, 16)
	for i := range shared {
		shared[i] = cachePacket(0, uint32(i), fmt.Sprintf("shared-%d", i))
	}
	var wg sync.WaitGroup
	for sub := 0; sub < 8; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i, p := range shared {
					d := c.DigestOf(p)
					if i%2 == 0 {
						c.MarkAuthentic(1, 0, d)
					}
					c.IsAuthentic(1, 0, d)
					// Never-marked stream: must always miss.
					if c.IsAuthentic(99, 0, d) {
						t.Errorf("sub %d: unmarked stream hit", sub)
						return
					}
				}
			}
		}(sub)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.DigestHits == 0 {
		t.Errorf("concurrent churn produced degenerate stats %+v", st)
	}
}

func TestSharedCacheValidationAndMetrics(t *testing.T) {
	if _, err := NewSharedCache(0); err == nil {
		t.Error("size 0 should fail")
	}
	c, err := NewSharedCache(4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	p := cachePacket(1, 1, "metrics")
	d := c.DigestOf(p)
	c.IsAuthentic(5, 1, d) // miss
	c.MarkAuthentic(5, 1, d)
	c.IsAuthentic(5, 1, d) // hit
	snap := reg.Snapshot()
	if snap.Counters["verify.cache_hits"] != 1 || snap.Counters["verify.cache_misses"] != 1 {
		t.Errorf("registry counters = %+v, want 1 hit / 1 miss", snap.Counters)
	}
}
