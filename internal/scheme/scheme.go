// Package scheme defines the common interface of runnable multicast
// authentication schemes and a generic implementation for any hash-chained
// (signature-amortizing) topology. Concrete constructions live in
// sub-packages: rohatgi, emss, augchain (hash-chained topologies), authtree
// (Wong-Lam), tesla (MAC + delayed key disclosure) and signeach (the
// sign-every-packet baseline).
package scheme

import (
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/verifier"
)

// Scheme authenticates blocks of a packet stream and exposes its
// dependence-graph for analysis.
type Scheme interface {
	// Name identifies the scheme in reports, e.g. "emss(E_{2,1})".
	Name() string
	// BlockSize returns the number of payloads per block.
	BlockSize() int
	// WireCount returns the number of wire packets emitted per block
	// (BlockSize, plus one bootstrap packet for TESLA).
	WireCount() int
	// Authenticate builds the wire packets for one block, in send order.
	// len(payloads) must equal BlockSize.
	Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error)
	// Graph returns the scheme's dependence-graph (Definition 1) with
	// vertices numbered in send order. For TESLA the graph uses the
	// split message/key vertex encoding of Section 3.2.
	Graph() (*depgraph.Graph, error)
	// NewVerifier creates a fresh receiver-side verifier for one block.
	NewVerifier() (Verifier, error)
}

// Verifier is the receiver-side state machine of a scheme.
type Verifier interface {
	// Ingest consumes one arriving wire packet (at the given receiver-
	// local time) and returns the packets newly authenticated by it.
	Ingest(p *packet.Packet, at time.Time) ([]verifier.Event, error)
	// Stats returns the verifier's counters.
	Stats() verifier.Stats
}

// VertexMapper is implemented by schemes whose wire authentication indices
// map one-to-one onto dependence-graph vertices, enabling trace→graph joins
// (root-cause diagnosis attributes an unauthenticated packet to the losses
// that cut its hash path, which requires locating each wire packet in the
// graph). Hash-chained schemes and the per-packet-signature baselines use
// the identity mapping; TESLA does not implement the interface because its
// graph uses the split message/key vertex encoding, where one wire packet
// corresponds to two vertices.
type VertexMapper interface {
	// VertexOf returns the dependence-graph vertex for a wire
	// authentication index, and false for indices with no vertex (e.g.
	// bootstrap packets outside the block).
	VertexOf(index uint32) (int, bool)
}

// PendingRoot is a block root awaiting its signature: Content is the exact
// byte string the signature must cover (the root packet's authenticated
// content), and Attach installs the produced signature into the withheld
// wire packets. A batching layer (internal/server) collects pending roots
// from many blocks and streams, amortizes one signature over all of them
// via crypto.BatchSigner, and attaches the resulting blobs.
type PendingRoot struct {
	// Content is signed as-is; it must not be mutated before Attach.
	Content []byte
	// HeldWire lists the 0-based positions (in the packet slice returned
	// alongside this PendingRoot) of packets that carry the signature and
	// therefore must be withheld from the wire until Attach runs. All
	// other packets are safe to send immediately.
	HeldWire []int
	attach   func(sig []byte)
}

// NewPendingRoot builds a PendingRoot; schemes call this from their
// AuthenticateDeferred implementations.
func NewPendingRoot(content []byte, heldWire []int, attach func(sig []byte)) *PendingRoot {
	return &PendingRoot{Content: content, HeldWire: heldWire, attach: attach}
}

// Attach installs the signature produced for Content. It must be called
// exactly once, before the held packets are sent.
func (pr *PendingRoot) Attach(sig []byte) { pr.attach(sig) }

// DeferredAuthenticator is implemented by schemes whose block signature
// can be supplied after packet construction — the hook batched signing
// builds on. AuthenticateDeferred is Authenticate with the root signature
// left pending: it returns the block's wire packets (the root unsigned)
// plus the PendingRoot that later receives the signature. Verifiers see no
// difference as long as held packets are only sent after Attach.
type DeferredAuthenticator interface {
	AuthenticateDeferred(blockID uint64, payloads [][]byte) ([]*packet.Packet, *PendingRoot, error)
}

// CacheAware is implemented by verifiers that can share a cross-subscriber
// verification cache (the receiver fast path): packet digests are hashed
// once per process and each proven-authentic digest is proven once per
// stream, instead of once per subscriber. Layers that fan one stream out
// to many subscribers (the stream demultiplexer, the serving daemon)
// attach the cache via this interface, mirroring BufferBounded. streamID
// must identify the stream — and therefore the signing key — the verifier
// serves.
type CacheAware interface {
	SetSharedCache(c *verifier.SharedCache, streamID uint64)
}

// DeferredVerifier is implemented by verifiers that can defer signature
// checks to a crypto.BatchVerifyQueue — the receive-side mirror of
// DeferredAuthenticator. Ingest parks signature-carrying packets as
// pending-signature; when the queue resolves, accepted packets
// authenticate and their events are delivered through sink (the
// originating Ingest has already returned). Callers own the resolve
// policy and must resolve on the ingest goroutine.
type DeferredVerifier interface {
	SetBatchVerify(q *crypto.BatchVerifyQueue, sink func([]verifier.Event))
}

// SpanAware is implemented by verifiers that record causal lifecycle spans
// (deferred_park, sig_resolve, authenticate, reject) into a shared
// obs.SpanRing — the receive half of the end-to-end block trace whose
// send half the serving tier records. streamID keys the spans (and their
// derived trace IDs) to the mux stream the verifier serves, so sender-
// and receiver-side spans of one block join on TraceID(stream, block)
// with no wire changes. Layers that own the ring (the stream
// demultiplexer, the serving daemon) attach it via this interface,
// mirroring CacheAware.
type SpanAware interface {
	SetSpans(r *obs.SpanRing, streamID uint64)
}

// BufferBounded is implemented by verifiers whose pending-packet buffers
// can be capped after construction. Scheme factories (NewVerifier) cannot
// thread options through, so layers that must bound receiver memory under
// adversarial floods — netsim, the stream demultiplexer — apply the cap via
// this interface, mirroring verifier.WithMaxBuffered. Overflowing packets
// are dropped and counted in Stats.DroppedOverflow.
type BufferBounded interface {
	SetMaxBuffered(n int)
}
