package scheme_test

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme"
	"mcauth/internal/schemetest"
)

// diamond is a custom topology exercising the generic chained machinery
// directly: root P1 covers P2 and P3, both of which cover P4.
func diamond(t *testing.T) *scheme.Chained {
	t.Helper()
	s, err := scheme.NewChained(scheme.Topology{
		Name:  "diamond",
		N:     4,
		Root:  1,
		Edges: [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}},
	}, crypto.NewSignerFromString("chained"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChainedConformance(t *testing.T) {
	schemetest.Conformance(t, diamond(t), schemetest.FixedClock)
}

func TestChainedAccessors(t *testing.T) {
	s := diamond(t)
	if s.Name() != "diamond" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.BlockSize() != 4 || s.WireCount() != 4 {
		t.Errorf("sizes: %d / %d", s.BlockSize(), s.WireCount())
	}
}

func TestChainedRedundantPathSurvivesLoss(t *testing.T) {
	// P4 is covered by both P2 and P3: losing either still verifies P4.
	s := diamond(t)
	payloads := schemetest.Payloads(4)
	for _, lost := range []uint32{2, 3} {
		pkts, err := s.Authenticate(1, payloads)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.NewVerifier()
		if err != nil {
			t.Fatal(err)
		}
		verified := 0
		for _, p := range pkts {
			if p.Index == lost {
				continue
			}
			events, err := v.Ingest(p, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			verified += len(events)
		}
		if verified != 3 {
			t.Errorf("lost %d: verified %d of 3 received", lost, verified)
		}
	}
}

func TestChainedConstructionErrors(t *testing.T) {
	signer := crypto.NewSignerFromString("chained")
	cases := []scheme.Topology{
		{Name: "bad-n", N: 0, Root: 1},
		{Name: "bad-root", N: 3, Root: 4},
		{Name: "unrooted", N: 3, Root: 1, Edges: [][2]int{{1, 2}}},
		{Name: "cyclic-ish", N: 3, Root: 1, Edges: [][2]int{{1, 2}, {2, 3}, {3, 2}, {1, 3}}},
		{Name: "dup", N: 3, Root: 1, Edges: [][2]int{{1, 2}, {1, 2}, {1, 3}}},
	}
	for _, topo := range cases {
		if _, err := scheme.NewChained(topo, signer); err == nil {
			t.Errorf("topology %q should fail", topo.Name)
		}
	}
	good := scheme.Topology{Name: "ok", N: 2, Root: 1, Edges: [][2]int{{1, 2}}}
	if _, err := scheme.NewChained(good, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestChainedRuntimeErrors(t *testing.T) {
	s := diamond(t)
	if _, err := s.Authenticate(1, schemetest.Payloads(3)); err == nil {
		t.Error("wrong payload count should fail")
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Ingest(nil, time.Time{}); err == nil {
		t.Error("nil first packet should fail")
	}
	if st := v.Stats(); st.Received != 0 {
		t.Errorf("stats before first packet: %+v", st)
	}
}

func TestChainedCorruptionSweep(t *testing.T) {
	schemetest.CorruptionSweep(t, diamond(t), schemetest.SweepParams{Reliable: []uint32{1}})
}
