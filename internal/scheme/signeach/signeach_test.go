package signeach

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/schemetest"
)

func TestConformance(t *testing.T) {
	s, err := New(6, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestValidation(t *testing.T) {
	if _, err := New(0, crypto.NewSignerFromString("s")); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestEveryPacketSigned(t *testing.T) {
	s, err := New(5, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if len(p.Signature) != crypto.SignatureSize {
			t.Errorf("packet %d signature size %d", p.Index, len(p.Signature))
		}
		if len(p.Hashes) != 0 {
			t.Errorf("packet %d carries hashes", p.Index)
		}
	}
}

func TestIndependentVerification(t *testing.T) {
	s, err := New(5, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(5))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver only the last packet: it must verify alone.
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := v.Ingest(pkts[4], time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Errorf("events = %v, want exactly the ingested packet", evs)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	s, err := New(3, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := New(3, crypto.NewSignerFromString("attacker"))
	if err != nil {
		t.Fatal(err)
	}
	evil, err := attacker.Authenticate(1, schemetest.Payloads(3))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := v.Ingest(evil[0], time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 || v.Stats().Rejected != 1 {
		t.Error("packet signed by the wrong key accepted")
	}
}

func TestErrorsAndDuplicates(t *testing.T) {
	s, err := New(3, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(3))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Ingest(nil, time.Time{}); err == nil {
		t.Error("nil packet should error")
	}
	bad := *pkts[0]
	bad.Index = 9
	if _, err := v.Ingest(&bad, time.Time{}); err == nil {
		t.Error("out-of-range index should error")
	}
	for i := 0; i < 2; i++ {
		if _, err := v.Ingest(pkts[1], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", v.Stats().Duplicates)
	}
	if _, err := s.Authenticate(1, schemetest.Payloads(2)); err == nil {
		t.Error("wrong payload count should fail")
	}
}

func TestCorruptionSweep(t *testing.T) {
	s, err := New(6, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{})
}
