// Package signeach implements the naive sign-every-packet baseline the
// paper's introduction dismisses as an "overkill solution": every packet
// carries a full digital signature over its content. It is maximally
// robust (every received packet verifies immediately) but pays a signature
// of overhead — and a signing operation — per packet.
package signeach

import (
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

// SignEach is the baseline scheme over blocks of n packets.
type SignEach struct {
	n      int
	k      int // > 0: sign in Merkle batches of k (MABS); 0: one signature per packet
	signer crypto.Signer
}

var _ scheme.Scheme = (*SignEach)(nil)

// New builds the baseline.
func New(n int, signer crypto.Signer) (*SignEach, error) {
	if n < 1 {
		return nil, fmt.Errorf("signeach: block size %d must be >= 1", n)
	}
	if signer == nil {
		return nil, fmt.Errorf("signeach: nil signer")
	}
	return &SignEach{n: n, signer: signer}, nil
}

// NewBatched builds the baseline with Merkle batch signing (the MABS
// construction): packets are signed in runs of k, so each packet carries
// a self-contained batch signature blob instead of a plain signature and
// one signing operation amortizes over k packets. Receivers verify each
// blob independently (robustness is unchanged); with a signature cache
// the underlying public-key check also amortizes k-fold on the receive
// side, which is the realistic serving configuration the K=16/64 verify
// benchmarks measure.
func NewBatched(n, k int, signer crypto.Signer) (*SignEach, error) {
	s, err := New(n, signer)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > crypto.MaxBatch {
		return nil, fmt.Errorf("signeach: batch size %d out of [1,%d]", k, crypto.MaxBatch)
	}
	s.k = k
	return s, nil
}

// Name implements Scheme.
func (s *SignEach) Name() string {
	if s.k > 0 {
		return fmt.Sprintf("signeach(n=%d, K=%d)", s.n, s.k)
	}
	return fmt.Sprintf("signeach(n=%d)", s.n)
}

// BlockSize implements Scheme.
func (s *SignEach) BlockSize() int { return s.n }

// WireCount implements Scheme.
func (s *SignEach) WireCount() int { return s.n }

// Graph implements Scheme. As with the authentication tree, every packet is
// its own P_sign; the star rendering gives the correct q_i = 1 semantics,
// while overhead must be read from the wire.
func (s *SignEach) Graph() (*depgraph.Graph, error) {
	g, err := depgraph.New(s.n, 1)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= s.n; i++ {
		if err := g.AddEdge(1, i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VertexOf implements scheme.VertexMapper: wire index i is graph vertex i.
func (s *SignEach) VertexOf(index uint32) (int, bool) {
	if index < 1 || int(index) > s.n {
		return 0, false
	}
	return int(index), true
}

// Authenticate implements Scheme.
func (s *SignEach) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	if len(payloads) != s.n {
		return nil, fmt.Errorf("signeach: got %d payloads, want %d", len(payloads), s.n)
	}
	pkts := make([]*packet.Packet, s.n)
	for i, payload := range payloads {
		pkts[i] = &packet.Packet{
			BlockID: blockID,
			Index:   uint32(i + 1),
			Payload: payload,
		}
	}
	if s.k > 0 {
		for start := 0; start < s.n; start += s.k {
			end := start + s.k
			if end > s.n {
				end = s.n
			}
			contents := make([][]byte, end-start)
			for i := range contents {
				contents[i] = pkts[start+i].ContentBytes()
			}
			blobs, err := crypto.BatchSign(s.signer, contents)
			if err != nil {
				return nil, err
			}
			for i := range blobs {
				pkts[start+i].Signature = blobs[i]
			}
		}
		return pkts, nil
	}
	for _, p := range pkts {
		p.Signature = s.signer.Sign(p.ContentBytes())
	}
	return pkts, nil
}

// NewVerifier implements Scheme.
func (s *SignEach) NewVerifier() (scheme.Verifier, error) {
	// The signature cache only pays off for batch blobs (plain per-packet
	// signatures never repeat an underlying check), but it is cheap and
	// lets one verifier accept either form.
	sig, err := crypto.NewSigCache(crypto.MaxBatch)
	if err != nil {
		return nil, err
	}
	return &signEachVerifier{n: s.n, pub: s.signer.Public(), sig: sig}, nil
}

type signEachVerifier struct {
	n         int
	pub       crypto.Verifier
	authentic map[uint32]bool
	stats     verifier.Stats

	// Receiver fast path: content staging and blob path walks reuse
	// scratch, and the underlying public-key check of each batch blob is
	// cached, so the K packets of one MABS batch cost one Ed25519 verify.
	sig     *crypto.SigCache
	vs      crypto.VerifyScratch
	content []byte

	cache    *verifier.SharedCache
	streamID uint64
	batchQ   *crypto.BatchVerifyQueue
	sink     func([]verifier.Event)
	// maxBuffered caps pending-signature packets in deferred mode.
	maxBuffered int
}

var (
	_ scheme.Verifier         = (*signEachVerifier)(nil)
	_ scheme.CacheAware       = (*signEachVerifier)(nil)
	_ scheme.DeferredVerifier = (*signEachVerifier)(nil)
	_ scheme.BufferBounded    = (*signEachVerifier)(nil)
)

// SetSharedCache implements scheme.CacheAware.
func (sv *signEachVerifier) SetSharedCache(c *verifier.SharedCache, streamID uint64) {
	sv.cache = c
	sv.streamID = streamID
}

// SetBatchVerify implements scheme.DeferredVerifier.
func (sv *signEachVerifier) SetBatchVerify(q *crypto.BatchVerifyQueue, sink func([]verifier.Event)) {
	sv.batchQ = q
	sv.sink = sink
}

// SetMaxBuffered implements scheme.BufferBounded (only deferred mode
// buffers).
func (sv *signEachVerifier) SetMaxBuffered(n int) {
	if n >= 0 {
		sv.maxBuffered = n
	}
}

// accept marks p authentic and publishes it to the shared cache.
func (sv *signEachVerifier) accept(p *packet.Packet) []verifier.Event {
	sv.authentic[p.Index] = true
	sv.stats.Authenticated++
	if sv.cache != nil {
		sv.cache.MarkAuthentic(sv.streamID, p.BlockID, sv.cache.DigestOf(p))
	}
	return []verifier.Event{{Index: p.Index, Payload: p.Payload}}
}

// resolve applies one deferred signature verdict.
func (sv *signEachVerifier) resolve(p *packet.Packet, ok bool) {
	sv.stats.PendingSignature--
	if sv.authentic[p.Index] {
		sv.stats.Duplicates++
		return
	}
	if !ok {
		sv.stats.Rejected++
		return
	}
	events := sv.accept(p)
	if sv.sink != nil {
		sv.sink(events)
	}
}

// Ingest implements scheme.Verifier.
func (sv *signEachVerifier) Ingest(p *packet.Packet, _ time.Time) ([]verifier.Event, error) {
	if p == nil {
		return nil, fmt.Errorf("signeach: nil packet")
	}
	if p.Index < 1 || int(p.Index) > sv.n {
		return nil, fmt.Errorf("signeach: index %d out of [1,%d]", p.Index, sv.n)
	}
	sv.stats.Received++
	if sv.authentic == nil {
		sv.authentic = make(map[uint32]bool)
	}
	if sv.authentic[p.Index] {
		sv.stats.Duplicates++
		return nil, nil
	}
	if sv.cache != nil {
		if d := sv.cache.DigestOf(p); sv.cache.IsAuthentic(sv.streamID, p.BlockID, d) {
			sv.stats.CacheHits++
			return sv.accept(p), nil
		}
	}
	sv.content = p.AppendContent(sv.content[:0])
	if sv.batchQ != nil {
		if sv.maxBuffered > 0 && sv.stats.PendingSignature >= sv.maxBuffered {
			sv.stats.DroppedOverflow++
			return nil, nil
		}
		sv.stats.PendingSignature++
		// The queue retains the content; sv.content is reused scratch.
		held := append([]byte(nil), sv.content...)
		sv.batchQ.Enqueue(sv.pub, held, p.Signature, func(ok bool) {
			sv.resolve(p, ok)
		})
		return nil, nil
	}
	if !crypto.VerifyAnyCached(sv.sig, &sv.vs, sv.pub, sv.content, p.Signature) {
		sv.stats.Rejected++
		return nil, nil
	}
	return sv.accept(p), nil
}

// Stats implements scheme.Verifier.
func (sv *signEachVerifier) Stats() verifier.Stats { return sv.stats }
