// Package signeach implements the naive sign-every-packet baseline the
// paper's introduction dismisses as an "overkill solution": every packet
// carries a full digital signature over its content. It is maximally
// robust (every received packet verifies immediately) but pays a signature
// of overhead — and a signing operation — per packet.
package signeach

import (
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

// SignEach is the baseline scheme over blocks of n packets.
type SignEach struct {
	n      int
	signer crypto.Signer
}

var _ scheme.Scheme = (*SignEach)(nil)

// New builds the baseline.
func New(n int, signer crypto.Signer) (*SignEach, error) {
	if n < 1 {
		return nil, fmt.Errorf("signeach: block size %d must be >= 1", n)
	}
	if signer == nil {
		return nil, fmt.Errorf("signeach: nil signer")
	}
	return &SignEach{n: n, signer: signer}, nil
}

// Name implements Scheme.
func (s *SignEach) Name() string { return fmt.Sprintf("signeach(n=%d)", s.n) }

// BlockSize implements Scheme.
func (s *SignEach) BlockSize() int { return s.n }

// WireCount implements Scheme.
func (s *SignEach) WireCount() int { return s.n }

// Graph implements Scheme. As with the authentication tree, every packet is
// its own P_sign; the star rendering gives the correct q_i = 1 semantics,
// while overhead must be read from the wire.
func (s *SignEach) Graph() (*depgraph.Graph, error) {
	g, err := depgraph.New(s.n, 1)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= s.n; i++ {
		if err := g.AddEdge(1, i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VertexOf implements scheme.VertexMapper: wire index i is graph vertex i.
func (s *SignEach) VertexOf(index uint32) (int, bool) {
	if index < 1 || int(index) > s.n {
		return 0, false
	}
	return int(index), true
}

// Authenticate implements Scheme.
func (s *SignEach) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	if len(payloads) != s.n {
		return nil, fmt.Errorf("signeach: got %d payloads, want %d", len(payloads), s.n)
	}
	pkts := make([]*packet.Packet, s.n)
	for i, payload := range payloads {
		p := &packet.Packet{
			BlockID: blockID,
			Index:   uint32(i + 1),
			Payload: payload,
		}
		p.Signature = s.signer.Sign(p.ContentBytes())
		pkts[i] = p
	}
	return pkts, nil
}

// NewVerifier implements Scheme.
func (s *SignEach) NewVerifier() (scheme.Verifier, error) {
	return &signEachVerifier{n: s.n, pub: s.signer.Public()}, nil
}

type signEachVerifier struct {
	n         int
	pub       crypto.Verifier
	authentic map[uint32]bool
	stats     verifier.Stats
}

var _ scheme.Verifier = (*signEachVerifier)(nil)

// Ingest implements scheme.Verifier.
func (sv *signEachVerifier) Ingest(p *packet.Packet, _ time.Time) ([]verifier.Event, error) {
	if p == nil {
		return nil, fmt.Errorf("signeach: nil packet")
	}
	if p.Index < 1 || int(p.Index) > sv.n {
		return nil, fmt.Errorf("signeach: index %d out of [1,%d]", p.Index, sv.n)
	}
	sv.stats.Received++
	if sv.authentic == nil {
		sv.authentic = make(map[uint32]bool)
	}
	if sv.authentic[p.Index] {
		sv.stats.Duplicates++
		return nil, nil
	}
	if !sv.pub.Verify(p.ContentBytes(), p.Signature) {
		sv.stats.Rejected++
		return nil, nil
	}
	sv.authentic[p.Index] = true
	sv.stats.Authenticated++
	return []verifier.Event{{Index: p.Index, Payload: p.Payload}}, nil
}

// Stats implements scheme.Verifier.
func (sv *signEachVerifier) Stats() verifier.Stats { return sv.stats }
