package authtree

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/schemetest"
)

func TestConformancePowerOfTwo(t *testing.T) {
	s, err := New(8, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestConformanceOddSize(t *testing.T) {
	s, err := New(13, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestConformanceSinglePacket(t *testing.T) {
	s, err := New(1, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestValidation(t *testing.T) {
	if _, err := New(0, crypto.NewSignerFromString("s")); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestEveryPacketIndependentlyVerifiable(t *testing.T) {
	// The defining property: any packet alone verifies, regardless of
	// every other packet being lost.
	s, err := New(10, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := schemetest.Payloads(10)
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		v, err := s.NewVerifier()
		if err != nil {
			t.Fatal(err)
		}
		evs, err := v.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) != 1 || evs[0].Index != p.Index {
			t.Errorf("packet %d alone did not verify: %v", p.Index, evs)
		}
	}
}

func TestOverheadIsLogN(t *testing.T) {
	s, err := New(16, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if len(p.Hashes) != 4 { // log2(16)
			t.Errorf("packet %d carries %d hashes, want 4", p.Index, len(p.Hashes))
		}
		if len(p.Signature) == 0 {
			t.Errorf("packet %d missing signature", p.Index)
		}
	}
}

func TestWrongPathRejected(t *testing.T) {
	s, err := New(8, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(8))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one sibling hash.
	bad := *pkts[2]
	bad.Hashes = append(bad.Hashes[:0:0], bad.Hashes...)
	bad.Hashes[1].Digest[0] ^= 1
	evs, err := v.Ingest(&bad, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Error("corrupted auth path accepted")
	}
	if v.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", v.Stats().Rejected)
	}
}

func TestTruncatedPathRejected(t *testing.T) {
	s, err := New(8, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(8))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	bad := *pkts[0]
	bad.Hashes = bad.Hashes[:1]
	evs, err := v.Ingest(&bad, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 || v.Stats().Rejected != 1 {
		t.Error("truncated path accepted")
	}
}

func TestPaddingCannotBeForged(t *testing.T) {
	// A block of 5 packets pads to 8 leaves; an attacker cannot claim a
	// padding position as a real packet because indices beyond n are
	// rejected outright.
	s, err := New(5, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(5))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	fake := *pkts[4]
	fake.Index = 6
	if _, err := v.Ingest(&fake, time.Time{}); err == nil {
		t.Error("index beyond block size should error")
	}
}

func TestGraphStar(t *testing.T) {
	s, err := New(6, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if exact.QMin != 1 {
		t.Errorf("QMin = %v, want 1 (individual verifiability)", exact.QMin)
	}
	maxDelay, err := g.MaxDeterministicDelay()
	if err != nil {
		t.Fatal(err)
	}
	if maxDelay != 0 {
		t.Errorf("delay = %d, want 0", maxDelay)
	}
}

func TestDuplicateCounted(t *testing.T) {
	s, err := New(4, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := v.Ingest(pkts[0], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", v.Stats().Duplicates)
	}
}

func TestConformanceQuaternary(t *testing.T) {
	s, err := NewArity(20, 4, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestArityOverheadTradeoff(t *testing.T) {
	// For n = 64: binary tree carries 6 hashes/packet (depth 6), an
	// 8-ary tree carries 14 (depth 2 x 7 siblings) — wider but shallower.
	signer := crypto.NewSignerFromString("s")
	bin, err := NewArity(64, 2, signer)
	if err != nil {
		t.Fatal(err)
	}
	oct, err := NewArity(64, 8, signer)
	if err != nil {
		t.Fatal(err)
	}
	if got := bin.HashesPerPacket(); got != 6 {
		t.Errorf("binary hashes/pkt = %d, want 6", got)
	}
	if got := oct.HashesPerPacket(); got != 14 {
		t.Errorf("8-ary hashes/pkt = %d, want 14", got)
	}
	pkts, err := oct.Authenticate(1, schemetest.Payloads(64))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if len(p.Hashes) != 14 {
			t.Fatalf("packet %d carries %d hashes, want 14", p.Index, len(p.Hashes))
		}
	}
}

func TestArityValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	if _, err := NewArity(8, 1, signer); err == nil {
		t.Error("arity 1 should fail")
	}
	if _, err := NewArity(8, 17, signer); err == nil {
		t.Error("arity 17 should fail")
	}
}

func TestArityTamperedSiblingSlotRejected(t *testing.T) {
	// Reordering the sibling slots must be caught by the slot encoding.
	s, err := NewArity(9, 3, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(9))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	bad := *pkts[0]
	bad.Hashes = append(bad.Hashes[:0:0], bad.Hashes...)
	bad.Hashes[0], bad.Hashes[1] = bad.Hashes[1], bad.Hashes[0]
	evs, err := v.Ingest(&bad, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 || v.Stats().Rejected != 1 {
		t.Error("reordered sibling path accepted")
	}
}

func TestCorruptionSweep(t *testing.T) {
	s, err := New(16, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{Reliable: []uint32{1}})
}
