// Package authtree implements the Wong-Lam authentication tree (paper
// Section 2.2): packet hashes form the leaves of a Merkle tree, parents are
// hashes of their children, and the root is signed. Every packet carries
// the root signature plus its sibling path, so each packet is individually
// verifiable: q_i = 1 regardless of loss, zero receiver delay, at the cost
// of (arity-1)·log_arity(n) hashes plus a signature per packet. The tree
// degree is configurable (Wong-Lam studied the degree as an
// overhead/computation knob); New builds the classic binary tree.
package authtree

import (
	"encoding/binary"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

var (
	labelLeaf = []byte("authtree-leaf-v1")
	labelNode = []byte("authtree-node-v1")
	labelRoot = []byte("authtree-root-v1")
)

// maxArity bounds the tree degree; beyond this the per-packet path is
// wider than the tree is deep for any practical n.
const maxArity = 16

// Tree is the Wong-Lam scheme over blocks of n packets.
type Tree struct {
	n      int
	arity  int
	depth  int // levels above the leaves
	leaves int // padded leaf count (power of arity)
	signer crypto.Signer
}

var _ scheme.Scheme = (*Tree)(nil)

// New builds the classic binary authentication tree.
func New(n int, signer crypto.Signer) (*Tree, error) {
	return NewArity(n, 2, signer)
}

// NewArity builds a tree of the given degree: higher arity means fewer
// levels (less hashing) but wider sibling paths (more overhead) per
// packet.
func NewArity(n, arity int, signer crypto.Signer) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("authtree: block size %d must be >= 1", n)
	}
	if arity < 2 || arity > maxArity {
		return nil, fmt.Errorf("authtree: arity %d out of [2,%d]", arity, maxArity)
	}
	if signer == nil {
		return nil, fmt.Errorf("authtree: nil signer")
	}
	leaves := 1
	depth := 0
	for leaves < n {
		leaves *= arity
		depth++
	}
	return &Tree{n: n, arity: arity, depth: depth, leaves: leaves, signer: signer}, nil
}

// Name implements Scheme.
func (t *Tree) Name() string {
	if t.arity == 2 {
		return fmt.Sprintf("authtree(n=%d)", t.n)
	}
	return fmt.Sprintf("authtree(n=%d, arity=%d)", t.n, t.arity)
}

// BlockSize implements Scheme.
func (t *Tree) BlockSize() int { return t.n }

// WireCount implements Scheme.
func (t *Tree) WireCount() int { return t.n }

// HashesPerPacket returns the sibling-path width (arity-1)·depth.
func (t *Tree) HashesPerPacket() int { return (t.arity - 1) * t.depth }

// Graph implements Scheme. Every packet is individually verifiable (in the
// paper's terms, every packet is P_sign); this is rendered as a star from
// the root so that q_i = 1 for every received packet. Note the per-packet
// overhead of the tree must be read from the wire packets, not from this
// graph's edge count.
func (t *Tree) Graph() (*depgraph.Graph, error) {
	g, err := depgraph.New(t.n, 1)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= t.n; i++ {
		if err := g.AddEdge(1, i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VertexOf implements scheme.VertexMapper: wire index i is graph vertex i.
func (t *Tree) VertexOf(index uint32) (int, bool) {
	if index < 1 || int(index) > t.n {
		return 0, false
	}
	return int(index), true
}

func leafDigest(blockID uint64, index uint32, payload []byte) crypto.Digest {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], index)
	return crypto.HashConcat(labelLeaf, hdr[:], payload)
}

func nodeDigest(children []crypto.Digest) crypto.Digest {
	parts := make([][]byte, 0, len(children)+1)
	parts = append(parts, labelNode)
	for i := range children {
		parts = append(parts, children[i][:])
	}
	return crypto.HashConcat(parts...)
}

func rootMessage(blockID uint64, n int, root crypto.Digest) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], uint32(n))
	msg := make([]byte, 0, len(labelRoot)+len(hdr)+len(root))
	msg = append(msg, labelRoot...)
	msg = append(msg, hdr[:]...)
	msg = append(msg, root[:]...)
	return msg
}

// paddingDigest fills leaves beyond n; it is domain-separated so no real
// packet can collide with it.
func paddingDigest(blockID uint64, position int) crypto.Digest {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], uint32(position))
	return crypto.HashConcat([]byte("authtree-pad-v1"), hdr[:])
}

// pathRef encodes a sibling's (level, slot) as the HashRef target index.
func (t *Tree) pathRef(level, slot int) uint32 {
	return uint32(level*t.arity + slot)
}

// Authenticate implements Scheme: it builds the Merkle tree over the
// block, signs the root once, and equips every packet with the signature
// and its sibling path. Each sibling is stored as a HashRef whose
// TargetIndex encodes its (level, child-slot) position.
func (t *Tree) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	if len(payloads) != t.n {
		return nil, fmt.Errorf("authtree: got %d payloads, want %d", len(payloads), t.n)
	}
	// levels[0] = leaves ... levels[depth] = [root].
	levels := make([][]crypto.Digest, t.depth+1)
	levels[0] = make([]crypto.Digest, t.leaves)
	for i := 0; i < t.leaves; i++ {
		if i < t.n {
			levels[0][i] = leafDigest(blockID, uint32(i+1), payloads[i])
		} else {
			levels[0][i] = paddingDigest(blockID, i)
		}
	}
	for lvl := 1; lvl <= t.depth; lvl++ {
		prev := levels[lvl-1]
		cur := make([]crypto.Digest, len(prev)/t.arity)
		for i := range cur {
			cur[i] = nodeDigest(prev[i*t.arity : (i+1)*t.arity])
		}
		levels[lvl] = cur
	}
	root := levels[t.depth][0]
	sig := t.signer.Sign(rootMessage(blockID, t.n, root))

	pkts := make([]*packet.Packet, t.n)
	for i := 0; i < t.n; i++ {
		p := &packet.Packet{
			BlockID:   blockID,
			Index:     uint32(i + 1),
			Payload:   payloads[i],
			Signature: append([]byte(nil), sig...),
		}
		pos := i
		for lvl := 0; lvl < t.depth; lvl++ {
			base := (pos / t.arity) * t.arity
			own := pos % t.arity
			for slot := 0; slot < t.arity; slot++ {
				if slot == own {
					continue
				}
				p.Hashes = append(p.Hashes, packet.HashRef{
					TargetIndex: t.pathRef(lvl, slot),
					Digest:      levels[lvl][base+slot],
				})
			}
			pos /= t.arity
		}
		pkts[i] = p
	}
	return pkts, nil
}

// NewVerifier implements Scheme.
func (t *Tree) NewVerifier() (scheme.Verifier, error) {
	return &treeVerifier{n: t.n, arity: t.arity, depth: t.depth, pub: t.signer.Public()}, nil
}

type treeVerifier struct {
	n     int
	arity int
	depth int
	pub   crypto.Verifier

	authentic map[uint32]bool
	stats     verifier.Stats
}

var _ scheme.Verifier = (*treeVerifier)(nil)

// Ingest implements scheme.Verifier: each packet verifies independently by
// recomputing the root from its leaf and sibling path.
func (tv *treeVerifier) Ingest(p *packet.Packet, _ time.Time) ([]verifier.Event, error) {
	if p == nil {
		return nil, fmt.Errorf("authtree: nil packet")
	}
	if p.Index < 1 || int(p.Index) > tv.n {
		return nil, fmt.Errorf("authtree: index %d out of [1,%d]", p.Index, tv.n)
	}
	tv.stats.Received++
	if tv.authentic == nil {
		tv.authentic = make(map[uint32]bool)
	}
	if tv.authentic[p.Index] {
		tv.stats.Duplicates++
		return nil, nil
	}
	if len(p.Hashes) != tv.depth*(tv.arity-1) {
		tv.stats.Rejected++
		return nil, nil
	}
	digest := leafDigest(p.BlockID, p.Index, p.Payload)
	pos := int(p.Index) - 1
	next := 0
	children := make([]crypto.Digest, tv.arity)
	for lvl := 0; lvl < tv.depth; lvl++ {
		own := pos % tv.arity
		ok := true
		for slot := 0; slot < tv.arity; slot++ {
			if slot == own {
				children[slot] = digest
				continue
			}
			ref := p.Hashes[next]
			next++
			if ref.TargetIndex != uint32(lvl*tv.arity+slot) {
				ok = false
				break
			}
			children[slot] = ref.Digest
		}
		if !ok {
			tv.stats.Rejected++
			return nil, nil
		}
		digest = nodeDigest(children)
		pos /= tv.arity
	}
	if !tv.pub.Verify(rootMessage(p.BlockID, tv.n, digest), p.Signature) {
		tv.stats.Rejected++
		return nil, nil
	}
	tv.authentic[p.Index] = true
	tv.stats.Authenticated++
	return []verifier.Event{{Index: p.Index, Payload: p.Payload}}, nil
}

// Stats implements scheme.Verifier.
func (tv *treeVerifier) Stats() verifier.Stats { return tv.stats }
