// Package authtree implements the Wong-Lam authentication tree (paper
// Section 2.2): packet hashes form the leaves of a Merkle tree, parents are
// hashes of their children, and the root is signed. Every packet carries
// the root signature plus its sibling path, so each packet is individually
// verifiable: q_i = 1 regardless of loss, zero receiver delay, at the cost
// of (arity-1)·log_arity(n) hashes plus a signature per packet. The tree
// degree is configurable (Wong-Lam studied the degree as an
// overhead/computation knob); New builds the classic binary tree.
package authtree

import (
	"encoding/binary"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

var (
	labelLeaf = []byte("authtree-leaf-v1")
	labelNode = []byte("authtree-node-v1")
	labelRoot = []byte("authtree-root-v1")
)

// maxArity bounds the tree degree; beyond this the per-packet path is
// wider than the tree is deep for any practical n.
const maxArity = 16

// Tree is the Wong-Lam scheme over blocks of n packets.
type Tree struct {
	n      int
	arity  int
	depth  int // levels above the leaves
	leaves int // padded leaf count (power of arity)
	signer crypto.Signer
}

var _ scheme.Scheme = (*Tree)(nil)

// New builds the classic binary authentication tree.
func New(n int, signer crypto.Signer) (*Tree, error) {
	return NewArity(n, 2, signer)
}

// NewArity builds a tree of the given degree: higher arity means fewer
// levels (less hashing) but wider sibling paths (more overhead) per
// packet.
func NewArity(n, arity int, signer crypto.Signer) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("authtree: block size %d must be >= 1", n)
	}
	if arity < 2 || arity > maxArity {
		return nil, fmt.Errorf("authtree: arity %d out of [2,%d]", arity, maxArity)
	}
	if signer == nil {
		return nil, fmt.Errorf("authtree: nil signer")
	}
	leaves := 1
	depth := 0
	for leaves < n {
		leaves *= arity
		depth++
	}
	return &Tree{n: n, arity: arity, depth: depth, leaves: leaves, signer: signer}, nil
}

// Name implements Scheme.
func (t *Tree) Name() string {
	if t.arity == 2 {
		return fmt.Sprintf("authtree(n=%d)", t.n)
	}
	return fmt.Sprintf("authtree(n=%d, arity=%d)", t.n, t.arity)
}

// BlockSize implements Scheme.
func (t *Tree) BlockSize() int { return t.n }

// WireCount implements Scheme.
func (t *Tree) WireCount() int { return t.n }

// HashesPerPacket returns the sibling-path width (arity-1)·depth.
func (t *Tree) HashesPerPacket() int { return (t.arity - 1) * t.depth }

// Graph implements Scheme. Every packet is individually verifiable (in the
// paper's terms, every packet is P_sign); this is rendered as a star from
// the root so that q_i = 1 for every received packet. Note the per-packet
// overhead of the tree must be read from the wire packets, not from this
// graph's edge count.
func (t *Tree) Graph() (*depgraph.Graph, error) {
	g, err := depgraph.New(t.n, 1)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= t.n; i++ {
		if err := g.AddEdge(1, i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VertexOf implements scheme.VertexMapper: wire index i is graph vertex i.
func (t *Tree) VertexOf(index uint32) (int, bool) {
	if index < 1 || int(index) > t.n {
		return 0, false
	}
	return int(index), true
}

func leafDigest(blockID uint64, index uint32, payload []byte) crypto.Digest {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], index)
	return crypto.HashConcat(labelLeaf, hdr[:], payload)
}

func nodeDigest(children []crypto.Digest) crypto.Digest {
	parts := make([][]byte, 0, len(children)+1)
	parts = append(parts, labelNode)
	for i := range children {
		parts = append(parts, children[i][:])
	}
	return crypto.HashConcat(parts...)
}

func rootMessage(blockID uint64, n int, root crypto.Digest) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], uint32(n))
	msg := make([]byte, 0, len(labelRoot)+len(hdr)+len(root))
	msg = append(msg, labelRoot...)
	msg = append(msg, hdr[:]...)
	msg = append(msg, root[:]...)
	return msg
}

// paddingDigest fills leaves beyond n; it is domain-separated so no real
// packet can collide with it.
func paddingDigest(blockID uint64, position int) crypto.Digest {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], uint32(position))
	return crypto.HashConcat([]byte("authtree-pad-v1"), hdr[:])
}

// pathRef encodes a sibling's (level, slot) as the HashRef target index.
func (t *Tree) pathRef(level, slot int) uint32 {
	return uint32(level*t.arity + slot)
}

// buildPackets constructs the block's packets with their sibling paths
// filled in, signatures left empty, and returns them with the tree root.
func (t *Tree) buildPackets(blockID uint64, payloads [][]byte) ([]*packet.Packet, crypto.Digest, error) {
	if len(payloads) != t.n {
		return nil, crypto.Digest{}, fmt.Errorf("authtree: got %d payloads, want %d", len(payloads), t.n)
	}
	// levels[0] = leaves ... levels[depth] = [root].
	levels := make([][]crypto.Digest, t.depth+1)
	levels[0] = make([]crypto.Digest, t.leaves)
	for i := 0; i < t.leaves; i++ {
		if i < t.n {
			levels[0][i] = leafDigest(blockID, uint32(i+1), payloads[i])
		} else {
			levels[0][i] = paddingDigest(blockID, i)
		}
	}
	for lvl := 1; lvl <= t.depth; lvl++ {
		prev := levels[lvl-1]
		cur := make([]crypto.Digest, len(prev)/t.arity)
		for i := range cur {
			cur[i] = nodeDigest(prev[i*t.arity : (i+1)*t.arity])
		}
		levels[lvl] = cur
	}
	root := levels[t.depth][0]

	pkts := make([]*packet.Packet, t.n)
	for i := 0; i < t.n; i++ {
		p := &packet.Packet{
			BlockID: blockID,
			Index:   uint32(i + 1),
			Payload: payloads[i],
		}
		pos := i
		for lvl := 0; lvl < t.depth; lvl++ {
			base := (pos / t.arity) * t.arity
			own := pos % t.arity
			for slot := 0; slot < t.arity; slot++ {
				if slot == own {
					continue
				}
				p.Hashes = append(p.Hashes, packet.HashRef{
					TargetIndex: t.pathRef(lvl, slot),
					Digest:      levels[lvl][base+slot],
				})
			}
			pos /= t.arity
		}
		pkts[i] = p
	}
	return pkts, root, nil
}

// Authenticate implements Scheme: it builds the Merkle tree over the
// block, signs the root once, and equips every packet with the signature
// and its sibling path. Each sibling is stored as a HashRef whose
// TargetIndex encodes its (level, child-slot) position.
func (t *Tree) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	pkts, root, err := t.buildPackets(blockID, payloads)
	if err != nil {
		return nil, err
	}
	sig := t.signer.Sign(rootMessage(blockID, t.n, root))
	for _, p := range pkts {
		p.Signature = sig
	}
	return pkts, nil
}

// AuthenticateDeferred implements scheme.DeferredAuthenticator: the root
// signature — which every packet of the block carries — is supplied later
// via PendingRoot.Attach, typically by a crypto.BatchSigner amortizing one
// signature across many blocks. All wire positions are held, since every
// packet carries the signature.
func (t *Tree) AuthenticateDeferred(blockID uint64, payloads [][]byte) ([]*packet.Packet, *scheme.PendingRoot, error) {
	pkts, root, err := t.buildPackets(blockID, payloads)
	if err != nil {
		return nil, nil, err
	}
	held := make([]int, t.n)
	for i := range held {
		held[i] = i
	}
	pr := scheme.NewPendingRoot(rootMessage(blockID, t.n, root), held, func(sig []byte) {
		for _, p := range pkts {
			p.Signature = sig
		}
	})
	return pkts, pr, nil
}

var _ scheme.DeferredAuthenticator = (*Tree)(nil)

// NewVerifier implements Scheme.
func (t *Tree) NewVerifier() (scheme.Verifier, error) {
	return &treeVerifier{n: t.n, arity: t.arity, depth: t.depth, pub: t.signer.Public()}, nil
}

type treeVerifier struct {
	n     int
	arity int
	depth int
	pub   crypto.Verifier

	authentic map[uint32]bool
	stats     verifier.Stats

	// Receiver fast path. Every packet of a block repeats the same root
	// signature, so one successful signature check per recomputed root is
	// enough: verifiedRoots remembers them (successes only — entering the
	// memo required a real signature check over a root that binds the
	// block ID through every leaf). The scratch fields make the per-packet
	// path walk allocation-free.
	verifiedRoots map[crypto.Digest]struct{}
	children      []crypto.Digest
	hs            crypto.HashScratch
	rootMsg       []byte
	vs            crypto.VerifyScratch
	// pendingRoots tracks roots whose signature check is in flight on the
	// batch-verify queue: later packets proving the same root park here and
	// share the verdict instead of enqueueing duplicate checks.
	pendingRoots map[crypto.Digest][]*packet.Packet

	cache    *verifier.SharedCache
	streamID uint64
	batchQ   *crypto.BatchVerifyQueue
	sink     func([]verifier.Event)
	// maxBuffered caps pending-signature packets in deferred mode
	// (0 = unbounded), mirroring verifier.WithMaxBuffered.
	maxBuffered int
}

var (
	_ scheme.Verifier         = (*treeVerifier)(nil)
	_ scheme.CacheAware       = (*treeVerifier)(nil)
	_ scheme.DeferredVerifier = (*treeVerifier)(nil)
	_ scheme.BufferBounded    = (*treeVerifier)(nil)
)

// SetSharedCache implements scheme.CacheAware.
func (tv *treeVerifier) SetSharedCache(c *verifier.SharedCache, streamID uint64) {
	tv.cache = c
	tv.streamID = streamID
}

// SetBatchVerify implements scheme.DeferredVerifier.
func (tv *treeVerifier) SetBatchVerify(q *crypto.BatchVerifyQueue, sink func([]verifier.Event)) {
	tv.batchQ = q
	tv.sink = sink
}

// SetMaxBuffered implements scheme.BufferBounded (only deferred mode
// buffers).
func (tv *treeVerifier) SetMaxBuffered(n int) {
	if n >= 0 {
		tv.maxBuffered = n
	}
}

// leafDigestScratch, nodeDigestScratch and appendRootMessage are the
// zero-allocation counterparts of leafDigest, nodeDigest and rootMessage;
// identical outputs.
func (tv *treeVerifier) leafDigestScratch(blockID uint64, index uint32, payload []byte) crypto.Digest {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], index)
	tv.hs.Reset()
	tv.hs.Write(labelLeaf)
	tv.hs.Write(hdr[:])
	tv.hs.Write(payload)
	return tv.hs.Sum()
}

func (tv *treeVerifier) nodeDigestScratch(children []crypto.Digest) crypto.Digest {
	tv.hs.Reset()
	tv.hs.Write(labelNode)
	for i := range children {
		tv.hs.Write(children[i][:])
	}
	return tv.hs.Sum()
}

func (tv *treeVerifier) appendRootMessage(blockID uint64, root crypto.Digest) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], blockID)
	binary.BigEndian.PutUint32(hdr[8:], uint32(tv.n))
	msg := append(tv.rootMsg[:0], labelRoot...)
	msg = append(msg, hdr[:]...)
	msg = append(msg, root[:]...)
	tv.rootMsg = msg
	return msg
}

// computeRoot walks the packet's sibling path up to the Merkle root,
// reporting false for malformed paths.
func (tv *treeVerifier) computeRoot(p *packet.Packet) (crypto.Digest, bool) {
	digest := tv.leafDigestScratch(p.BlockID, p.Index, p.Payload)
	pos := int(p.Index) - 1
	next := 0
	if cap(tv.children) < tv.arity {
		tv.children = make([]crypto.Digest, tv.arity)
	}
	children := tv.children[:tv.arity]
	for lvl := 0; lvl < tv.depth; lvl++ {
		own := pos % tv.arity
		for slot := 0; slot < tv.arity; slot++ {
			if slot == own {
				children[slot] = digest
				continue
			}
			ref := p.Hashes[next]
			next++
			if ref.TargetIndex != uint32(lvl*tv.arity+slot) {
				return crypto.Digest{}, false
			}
			children[slot] = ref.Digest
		}
		digest = tv.nodeDigestScratch(children)
		pos /= tv.arity
	}
	return digest, true
}

// accept marks p authentic and publishes it to the shared cache.
func (tv *treeVerifier) accept(p *packet.Packet) []verifier.Event {
	tv.authentic[p.Index] = true
	tv.stats.Authenticated++
	if tv.cache != nil {
		tv.cache.MarkAuthentic(tv.streamID, p.BlockID, tv.cache.DigestOf(p))
	}
	return []verifier.Event{{Index: p.Index, Payload: p.Payload}}
}

// resolveRoot applies a deferred signature verdict for the root digest p
// proved its path against, settling every packet parked on the same root.
func (tv *treeVerifier) resolveRoot(p *packet.Packet, root crypto.Digest, ok bool) {
	waiters := tv.pendingRoots[root]
	delete(tv.pendingRoots, root)
	var events []verifier.Event
	settle := func(pkt *packet.Packet, verified bool) {
		tv.stats.PendingSignature--
		if tv.authentic[pkt.Index] {
			tv.stats.Duplicates++
			return
		}
		if !verified {
			tv.stats.Rejected++
			return
		}
		tv.verifiedRoots[root] = struct{}{}
		events = append(events, tv.accept(pkt)...)
	}
	settle(p, ok)
	for _, w := range waiters {
		verified := ok
		if !verified {
			// The enqueued copy's signature bytes failed; the waiter
			// carries its own — give it its own synchronous check.
			msg := tv.appendRootMessage(w.BlockID, root)
			verified = crypto.VerifyAnyCached(nil, &tv.vs, tv.pub, msg, w.Signature)
		}
		settle(w, verified)
	}
	if len(events) > 0 && tv.sink != nil {
		tv.sink(events)
	}
}

// Ingest implements scheme.Verifier: each packet verifies independently by
// recomputing the root from its leaf and sibling path; the signature over
// a given root is checked at most once per verifier, and at most once per
// stream when a shared cache is attached.
func (tv *treeVerifier) Ingest(p *packet.Packet, _ time.Time) ([]verifier.Event, error) {
	if p == nil {
		return nil, fmt.Errorf("authtree: nil packet")
	}
	if p.Index < 1 || int(p.Index) > tv.n {
		return nil, fmt.Errorf("authtree: index %d out of [1,%d]", p.Index, tv.n)
	}
	tv.stats.Received++
	if tv.authentic == nil {
		tv.authentic = make(map[uint32]bool)
		tv.verifiedRoots = make(map[crypto.Digest]struct{})
		tv.pendingRoots = make(map[crypto.Digest][]*packet.Packet)
	}
	if tv.authentic[p.Index] {
		tv.stats.Duplicates++
		return nil, nil
	}
	if tv.cache != nil {
		if d := tv.cache.DigestOf(p); tv.cache.IsAuthentic(tv.streamID, p.BlockID, d) {
			tv.stats.CacheHits++
			return tv.accept(p), nil
		}
	}
	if len(p.Hashes) != tv.depth*(tv.arity-1) {
		tv.stats.Rejected++
		return nil, nil
	}
	root, ok := tv.computeRoot(p)
	if !ok {
		tv.stats.Rejected++
		return nil, nil
	}
	if _, seen := tv.verifiedRoots[root]; seen {
		return tv.accept(p), nil
	}
	msg := tv.appendRootMessage(p.BlockID, root)
	if tv.batchQ != nil {
		if tv.maxBuffered > 0 && tv.stats.PendingSignature >= tv.maxBuffered {
			tv.stats.DroppedOverflow++
			return nil, nil
		}
		if waiters, pending := tv.pendingRoots[root]; pending {
			// This root's signature check is already in flight; share its
			// verdict rather than enqueue a duplicate.
			tv.stats.PendingSignature++
			tv.pendingRoots[root] = append(waiters, p)
			return nil, nil
		}
		tv.stats.PendingSignature++
		tv.pendingRoots[root] = nil
		// The queue retains the signed message; msg is reused scratch.
		held := append([]byte(nil), msg...)
		tv.batchQ.Enqueue(tv.pub, held, p.Signature, func(ok bool) {
			tv.resolveRoot(p, root, ok)
		})
		return nil, nil
	}
	if !crypto.VerifyAnyCached(nil, &tv.vs, tv.pub, msg, p.Signature) {
		tv.stats.Rejected++
		return nil, nil
	}
	tv.verifiedRoots[root] = struct{}{}
	return tv.accept(p), nil
}

// Stats implements scheme.Verifier.
func (tv *treeVerifier) Stats() verifier.Stats { return tv.stats }
