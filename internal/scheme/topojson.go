package scheme

import (
	"encoding/json"
	"fmt"
	"io"

	"mcauth/internal/depgraph"
)

// topologyJSON is the serialized form of a Topology.
type topologyJSON struct {
	Name       string   `json:"name"`
	N          int      `json:"n"`
	Root       int      `json:"root"`
	Edges      [][2]int `json:"edges"`
	RootCopies int      `json:"rootCopies,omitempty"`
}

// SaveTopology writes a topology as JSON, so designs can be exported,
// hand-edited and re-analyzed (`mcgraph -export` / `mcgraph -topo`).
func SaveTopology(w io.Writer, t Topology) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(topologyJSON(t)); err != nil {
		return fmt.Errorf("scheme: encode topology: %w", err)
	}
	return nil
}

// LoadTopology parses a JSON topology and validates it structurally
// (well-formed DAG, rooted).
func LoadTopology(r io.Reader) (Topology, error) {
	var tj topologyJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tj); err != nil {
		return Topology{}, fmt.Errorf("scheme: decode topology: %w", err)
	}
	t := Topology(tj)
	g, err := depgraph.New(t.N, t.Root)
	if err != nil {
		return Topology{}, fmt.Errorf("scheme: topology %q: %w", t.Name, err)
	}
	for _, e := range t.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return Topology{}, fmt.Errorf("scheme: topology %q: %w", t.Name, err)
		}
	}
	if err := g.Validate(); err != nil {
		return Topology{}, fmt.Errorf("scheme: topology %q: %w", t.Name, err)
	}
	if t.Name == "" {
		t.Name = "custom"
	}
	return t, nil
}

// TopologyOf extracts a Topology from any scheme's dependence graph, so
// existing constructions can be exported and modified.
func TopologyOf(s Scheme) (Topology, error) {
	g, err := s.Graph()
	if err != nil {
		return Topology{}, err
	}
	return Topology{
		Name:  s.Name(),
		N:     g.N(),
		Root:  g.Root(),
		Edges: g.Edges(),
	}, nil
}
