package tesla

import (
	"math"
	"testing"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/packet"
	"mcauth/internal/schemetest"
	"mcauth/internal/stats"
)

func testConfig(n, lag int) Config {
	return Config{
		N:        n,
		Lag:      lag,
		Interval: 100 * time.Millisecond,
		Start:    time.Unix(1000, 0),
		Seed:     []byte("chain-seed"),
	}
}

func newScheme(t *testing.T, cfg Config) *Scheme {
	t.Helper()
	s, err := New(cfg, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// promptClock delivers each wire packet shortly after its send time —
// always inside the safety window.
func promptClock(cfg Config) schemetest.Clock {
	return func(wireIndex int) time.Time {
		return cfg.SendTime(wireIndex).Add(time.Millisecond)
	}
}

func TestConformance(t *testing.T) {
	cfg := testConfig(10, 2)
	s := newScheme(t, cfg)
	schemetest.Conformance(t, s, promptClock(cfg))
}

func TestValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	bad := []Config{
		{N: 0, Lag: 1, Interval: time.Second, Seed: []byte("x")},
		{N: 5, Lag: 0, Interval: time.Second, Seed: []byte("x")},
		{N: 5, Lag: 1, Interval: 0, Seed: []byte("x")},
		{N: 5, Lag: 1, Interval: time.Second},
		{N: 5, Lag: 1, Interval: time.Second, Seed: []byte("x"), ClockSkew: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, signer); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := New(testConfig(5, 1), nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestWireLayout(t *testing.T) {
	cfg := testConfig(6, 2)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 6+1+2 {
		t.Fatalf("wire count = %d, want 9", len(pkts))
	}
	if len(pkts[0].Signature) == 0 {
		t.Error("bootstrap must be signed")
	}
	// Data packet i (wire i+1) discloses key i-lag.
	for i := 1; i <= 6; i++ {
		p := pkts[i]
		if p.KeyIndex != uint32(i) {
			t.Errorf("data %d: KeyIndex = %d", i, p.KeyIndex)
		}
		if i > 2 {
			if p.DisclosedKeyIndex != uint32(i-2) || len(p.DisclosedKey) == 0 {
				t.Errorf("data %d: disclosed %d", i, p.DisclosedKeyIndex)
			}
		} else if len(p.DisclosedKey) != 0 {
			t.Errorf("data %d should not disclose a key yet", i)
		}
	}
	// Trailing packets disclose keys 5, 6.
	if pkts[7].DisclosedKeyIndex != 5 || pkts[8].DisclosedKeyIndex != 6 {
		t.Errorf("trailing disclosures: %d, %d", pkts[7].DisclosedKeyIndex, pkts[8].DisclosedKeyIndex)
	}
}

func TestTDisclose(t *testing.T) {
	cfg := testConfig(10, 3)
	if got := cfg.TDisclose(); got != 300*time.Millisecond {
		t.Errorf("TDisclose = %v, want 300ms", got)
	}
}

func TestLateArrivalDroppedAsUnsafe(t *testing.T) {
	// A data packet arriving after its key's disclosure time must be
	// dropped even if genuine: the key is public by then and the MAC
	// proves nothing.
	cfg := testConfig(8, 1)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(8))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	clock := promptClock(cfg)
	for w, p := range pkts {
		at := clock(w + 1)
		if p.Index == DataWireIndex(3) {
			// Key K_3 is disclosed by data packet 4 (wire 5).
			at = cfg.SendTime(5).Add(time.Second)
		}
		if _, err := v.Ingest(p, at); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.Unsafe != 1 {
		t.Errorf("Unsafe = %d, want 1", st.Unsafe)
	}
	// Bootstrap + 7 of 8 data packets.
	if st.Authenticated != 8 {
		t.Errorf("Authenticated = %d, want 8", st.Authenticated)
	}
}

func TestKeyRecoveryAcrossLoss(t *testing.T) {
	// Losing several consecutive key-disclosing packets must not strand
	// earlier data: a later key recovers all earlier ones.
	cfg := testConfig(10, 1)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(10))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	clock := promptClock(cfg)
	lost := map[uint32]bool{
		DataWireIndex(4): true, // would disclose K_3
		DataWireIndex(5): true, // would disclose K_4
		DataWireIndex(6): true, // would disclose K_5
	}
	authenticated := make(map[uint32]bool)
	for w, p := range pkts {
		if lost[p.Index] {
			continue
		}
		evs, err := v.Ingest(p, clock(w+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			authenticated[e.Index] = true
		}
	}
	// Data packets 3, (4,5,6 lost... 3 was received) — all received data
	// packets must authenticate once packet 7 disclosed K_6 (recovering
	// K_3..K_5 via the chain).
	for i := 1; i <= 10; i++ {
		w := DataWireIndex(i)
		if lost[w] {
			continue
		}
		if !authenticated[w] {
			t.Errorf("data packet %d never authenticated", i)
		}
	}
}

func TestForgedDisclosedKeyRejected(t *testing.T) {
	cfg := testConfig(6, 1)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(6))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	clock := promptClock(cfg)
	forged := 0
	for w, p := range pkts {
		deliver := p
		if len(p.DisclosedKey) > 0 && forged == 0 {
			evil := *p
			evil.DisclosedKey = append([]byte(nil), p.DisclosedKey...)
			evil.DisclosedKey[0] ^= 0xff
			deliver = &evil
			forged++
		}
		if _, err := v.Ingest(deliver, clock(w+1)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats().Rejected == 0 {
		t.Error("forged key never rejected")
	}
}

func TestBootstrapLateBuffering(t *testing.T) {
	// Data packets arriving before the bootstrap buffer and then verify
	// once the bootstrap arrives.
	cfg := testConfig(6, 1)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(6))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	clock := promptClock(cfg)
	var total int
	// Deliver everything except the bootstrap first.
	for w := 1; w < len(pkts); w++ {
		evs, err := v.Ingest(pkts[w], clock(w+1))
		if err != nil {
			t.Fatal(err)
		}
		total += len(evs)
	}
	if total != 0 {
		t.Fatalf("authenticated %d packets before bootstrap", total)
	}
	evs, err := v.Ingest(pkts[0], clock(len(pkts)))
	if err != nil {
		t.Fatal(err)
	}
	// All 6 data packets authenticate in one cascade (the bootstrap
	// itself carries no user payload and emits no event).
	if len(evs) != 6 {
		t.Errorf("cascade authenticated %d, want 6", len(evs))
	}
}

func TestForgedBootstrapRejected(t *testing.T) {
	cfg := testConfig(4, 1)
	s := newScheme(t, cfg)
	attacker, err := New(cfg, crypto.NewSignerFromString("attacker"))
	if err != nil {
		t.Fatal(err)
	}
	evilPkts, err := attacker.Authenticate(1, schemetest.Payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Ingest(evilPkts[0], cfg.Start); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", v.Stats().Rejected)
	}
}

func TestGraphShapeAndLambda(t *testing.T) {
	// The split-vertex graph must reproduce λ_i = 1 - p^(n+1-i) under
	// Monte-Carlo (conditioning ξ = 1: no timing loss in the graph).
	cfg := testConfig(8, 1)
	s := newScheme(t, cfg)
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2*8+1 {
		t.Fatalf("graph has %d vertices, want 17", g.N())
	}
	p := 0.3
	mc, err := g.MonteCarloAuthProb(depgraph.BernoulliPattern(p), 60000, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		want := 1 - math.Pow(p, float64(8+1-i))
		got := mc.Q[1+i] // message vertex
		if math.Abs(got-want) > 0.02 {
			t.Errorf("λ_%d = %v, want %v", i, got, want)
		}
	}
	// Analytic cross-check through the analysis package.
	res, err := analysis.TESLA{N: 8, P: p, TDisc: 10, Mu: 0.1, Sigma: 0.01}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if math.Abs(res.Q[i]-mc.Q[1+i]) > 0.02 {
			t.Errorf("analytic Q[%d]=%v vs graph %v", i, res.Q[i], mc.Q[1+i])
		}
	}
}

func TestClockSkewTightensDeadline(t *testing.T) {
	cfg := testConfig(4, 1)
	cfg.ClockSkew = 50 * time.Millisecond
	if _, err := New(cfg, crypto.NewSignerFromString("s")); err != nil {
		t.Fatal(err)
	}
	base := testConfig(4, 1)
	if !cfg.disclosureDeadline(1).Before(base.disclosureDeadline(1)) {
		t.Error("clock skew must tighten the safety deadline")
	}
}

func TestDeterministicAcrossBlocks(t *testing.T) {
	// Different block IDs must yield different chains (no key reuse).
	cfg := testConfig(4, 1)
	s := newScheme(t, cfg)
	a, err := s.Authenticate(1, schemetest.Payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Authenticate(2, schemetest.Payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	if string(a[3].DisclosedKey) == string(b[3].DisclosedKey) {
		t.Error("key chains reused across blocks")
	}
}

func TestNameAndConfigAccessors(t *testing.T) {
	cfg := testConfig(7, 3)
	s := newScheme(t, cfg)
	if s.Name() != "tesla(n=7, lag=3)" {
		t.Errorf("Name = %q", s.Name())
	}
	got := s.Config()
	if got.N != 7 || got.Lag != 3 || got.Interval != cfg.Interval {
		t.Errorf("Config = %+v", got)
	}
}

func TestDuplicateBufferedPacketEmitsOnce(t *testing.T) {
	// A network that duplicates datagrams must not double-deliver: two
	// copies of the same data packet buffered before the key arrives
	// yield exactly one authentication event.
	cfg := testConfig(4, 2)
	s := newScheme(t, cfg)
	pkts, err := s.Authenticate(1, schemetest.Payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	clock := promptClock(cfg)
	if _, err := v.Ingest(pkts[0], clock(1)); err != nil { // bootstrap
		t.Fatal(err)
	}
	data1 := pkts[1] // data packet 1, key not yet disclosed
	if _, err := v.Ingest(data1, clock(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Ingest(data1, clock(2)); err != nil { // duplicate
		t.Fatal(err)
	}
	events := 0
	for w := 2; w < len(pkts); w++ {
		evs, err := v.Ingest(pkts[w], clock(w+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			if e.Index == data1.Index {
				events++
			}
		}
	}
	if events != 1 {
		t.Errorf("duplicated packet produced %d events, want 1", events)
	}
	if v.Stats().Duplicates == 0 {
		t.Error("duplicate never counted")
	}
}

func TestBufferCapBoundsFlood(t *testing.T) {
	// An adversarial pre-bootstrap flood must be bounded: with MaxBuffered
	// set, the verifier drops (and counts) overflowing packets instead of
	// growing its buffers without limit.
	cfg := testConfig(10, 2)
	cfg.MaxBuffered = 4
	s := newScheme(t, cfg)
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	at := cfg.Start.Add(time.Millisecond)
	const flood = 100
	for i := 0; i < flood; i++ {
		p := &packet.Packet{
			BlockID:  1,
			Index:    DataWireIndex(1),
			KeyIndex: 1,
			Payload:  []byte{byte(i)},
			MAC:      []byte("junk-mac-junk-mac-junk-mac-junk-"),
		}
		if _, err := v.Ingest(p, at); err != nil {
			t.Fatalf("flood packet %d: %v", i, err)
		}
	}
	st := v.Stats()
	if st.MsgBufferHighWater > 4 {
		t.Errorf("buffer high water %d exceeds cap 4", st.MsgBufferHighWater)
	}
	if st.DroppedOverflow != flood-4 {
		t.Errorf("DroppedOverflow = %d, want %d", st.DroppedOverflow, flood-4)
	}
}

func TestBufferCapStillAuthenticatesGenuine(t *testing.T) {
	// With a cap no smaller than the block, a benign in-order run is
	// unaffected: everything authenticates.
	cfg := testConfig(8, 2)
	cfg.MaxBuffered = cfg.N + cfg.Lag + 1
	s := newScheme(t, cfg)
	events := schemetest.DeliverAll(t, s, 4, schemetest.Payloads(8), promptClock(cfg))
	data := 0
	for _, e := range events {
		if e.Index >= DataWireIndex(1) && e.Index <= DataWireIndex(cfg.N) {
			data++
		}
	}
	if data != cfg.N {
		t.Errorf("authenticated %d data packets under cap, want %d", data, cfg.N)
	}
}

func TestValidationRejectsNegativeBufferCap(t *testing.T) {
	cfg := testConfig(5, 1)
	cfg.MaxBuffered = -1
	if _, err := New(cfg, crypto.NewSignerFromString("s")); err == nil {
		t.Error("negative MaxBuffered should fail validation")
	}
}

func TestCorruptionSweep(t *testing.T) {
	cfg := testConfig(10, 2)
	s := newScheme(t, cfg)
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{
		Reliable: []uint32{1},
		Interval: cfg.Interval,
		Start:    cfg.Start,
	})
}
