// Package tesla implements TESLA (Perrig et al.), the MAC-based scheme the
// paper analyzes in Section 3.2: each packet is MACed under a per-interval
// key from a one-way chain; keys are disclosed after a delay of Lag
// intervals; a signed bootstrap packet commits to the chain and to the
// timing schedule. A receiver accepts a packet only if it arrived before
// the sender could have disclosed the packet's key (the safety condition —
// the paper's condition (2)), and verifies it once any later chain key
// arrives (condition (1): a lost key is recovered from any subsequent key).
//
// Wire layout per block: packet 1 is the bootstrap; data packet i (1..N)
// rides at wire index i+1 and is MACed under interval key K_i, disclosing
// K_{i-Lag}; Lag trailing key-only packets disclose the final keys so that
// every data packet has exactly N+1-i potential key carriers — matching
// the paper's λ_i = 1 - p^(n+1-i).
package tesla

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

// Config parameterizes a TESLA block.
type Config struct {
	// N is the number of data packets per block (one key interval each).
	N int
	// Lag is the key-disclosure delay in intervals (the paper's
	// T_disclose = Lag * Interval).
	Lag int
	// Interval is the per-packet send interval.
	Interval time.Duration
	// Start is T0, the send time of the bootstrap packet; data packet i
	// is sent at T0 + i*Interval.
	Start time.Time
	// Seed deterministically derives the key chain.
	Seed []byte
	// ClockSkew is the maximum receiver clock error budgeted by the
	// safety condition (subtracted from the disclosure deadline).
	ClockSkew time.Duration
	// MaxBuffered caps the verifier's pending-packet buffers (pre-
	// bootstrap holds plus packets awaiting key disclosure); packets
	// arriving with the buffers full are dropped and counted in
	// Stats.DroppedOverflow, so an adversarial flood cannot grow receiver
	// memory without bound. Zero means unbounded.
	MaxBuffered int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("tesla: block size %d must be >= 1", c.N)
	}
	if c.Lag < 1 {
		return fmt.Errorf("tesla: disclosure lag %d must be >= 1", c.Lag)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("tesla: interval %v must be positive", c.Interval)
	}
	if len(c.Seed) == 0 {
		return fmt.Errorf("tesla: empty chain seed")
	}
	if c.ClockSkew < 0 {
		return fmt.Errorf("tesla: negative clock skew %v", c.ClockSkew)
	}
	if c.MaxBuffered < 0 {
		return fmt.Errorf("tesla: negative buffer cap %d", c.MaxBuffered)
	}
	return nil
}

// TDisclose returns the disclosure delay Lag*Interval, the paper's
// T_disclose.
func (c Config) TDisclose() time.Duration {
	return time.Duration(c.Lag) * c.Interval
}

// SendTime returns the scheduled send time of the given wire index
// (1-based; 1 is the bootstrap).
func (c Config) SendTime(wireIndex int) time.Time {
	return c.Start.Add(time.Duration(wireIndex-1) * c.Interval)
}

// disclosureDeadline is the latest safe arrival time for data packet i
// (interval key K_i): the send time of the wire packet disclosing K_i.
func (c Config) disclosureDeadline(i int) time.Time {
	// K_i is disclosed by data packet i+Lag at wire index i+Lag+1.
	return c.SendTime(i + c.Lag + 1).Add(-c.ClockSkew)
}

// Scheme is the runnable TESLA instance.
type Scheme struct {
	cfg    Config
	signer crypto.Signer
}

var _ scheme.Scheme = (*Scheme)(nil)

// New builds the scheme.
func New(cfg Config, signer crypto.Signer) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if signer == nil {
		return nil, errors.New("tesla: nil signer")
	}
	return &Scheme{cfg: cfg, signer: signer}, nil
}

// Name implements Scheme.
func (s *Scheme) Name() string {
	return fmt.Sprintf("tesla(n=%d, lag=%d)", s.cfg.N, s.cfg.Lag)
}

// BlockSize implements Scheme.
func (s *Scheme) BlockSize() int { return s.cfg.N }

// WireCount implements Scheme: bootstrap + N data + Lag trailing key
// packets.
func (s *Scheme) WireCount() int { return s.cfg.N + 1 + s.cfg.Lag }

// Config returns the scheme's configuration.
func (s *Scheme) Config() Config { return s.cfg }

// DataWireIndex returns the wire index of data packet i.
func DataWireIndex(i int) uint32 { return uint32(i + 1) }

// bootstrapPayload layout: T0 unix-nanos | interval nanos | lag | n |
// commitment.
func (s *Scheme) bootstrapPayload(commitment []byte) []byte {
	buf := make([]byte, 0, 8+8+4+4+len(commitment))
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], uint64(s.cfg.Start.UnixNano()))
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint64(scratch[:], uint64(s.cfg.Interval))
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint32(scratch[:4], uint32(s.cfg.Lag))
	buf = append(buf, scratch[:4]...)
	binary.BigEndian.PutUint32(scratch[:4], uint32(s.cfg.N))
	buf = append(buf, scratch[:4]...)
	return append(buf, commitment...)
}

type bootstrapParams struct {
	start      time.Time
	interval   time.Duration
	lag        int
	n          int
	commitment []byte
}

func parseBootstrap(payload []byte) (bootstrapParams, error) {
	if len(payload) < 8+8+4+4+crypto.KeySize {
		return bootstrapParams{}, errors.New("tesla: bootstrap payload too short")
	}
	var bp bootstrapParams
	bp.start = time.Unix(0, int64(binary.BigEndian.Uint64(payload[0:8])))
	bp.interval = time.Duration(binary.BigEndian.Uint64(payload[8:16]))
	bp.lag = int(binary.BigEndian.Uint32(payload[16:20]))
	bp.n = int(binary.BigEndian.Uint32(payload[20:24]))
	bp.commitment = append([]byte(nil), payload[24:]...)
	if bp.interval <= 0 || bp.lag < 1 || bp.n < 1 {
		return bootstrapParams{}, errors.New("tesla: malformed bootstrap parameters")
	}
	return bp, nil
}

// Authenticate implements Scheme.
func (s *Scheme) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	if len(payloads) != s.cfg.N {
		return nil, fmt.Errorf("tesla: got %d payloads, want %d", len(payloads), s.cfg.N)
	}
	seed := make([]byte, 0, len(s.cfg.Seed)+8)
	seed = append(seed, s.cfg.Seed...)
	seed = binary.BigEndian.AppendUint64(seed, blockID)
	chain, err := crypto.NewKeyChain(seed, s.cfg.N)
	if err != nil {
		return nil, fmt.Errorf("tesla: %w", err)
	}

	pkts := make([]*packet.Packet, 0, s.WireCount())
	bootstrap := &packet.Packet{
		BlockID: blockID,
		Index:   1,
		Payload: s.bootstrapPayload(chain.Commitment()),
	}
	bootstrap.Signature = s.signer.Sign(bootstrap.ContentBytes())
	pkts = append(pkts, bootstrap)

	for i := 1; i <= s.cfg.N; i++ {
		key, err := chain.Key(i)
		if err != nil {
			return nil, fmt.Errorf("tesla: %w", err)
		}
		p := &packet.Packet{
			BlockID:  blockID,
			Index:    DataWireIndex(i),
			KeyIndex: uint32(i),
			Payload:  payloads[i-1],
		}
		if disclosed := i - s.cfg.Lag; disclosed >= 1 {
			dk, err := chain.Key(disclosed)
			if err != nil {
				return nil, fmt.Errorf("tesla: %w", err)
			}
			p.DisclosedKey = dk
			p.DisclosedKeyIndex = uint32(disclosed)
		}
		p.MAC = crypto.MAC(crypto.DeriveMACKey(key), p.ContentBytes())
		pkts = append(pkts, p)
	}

	// Trailing key-only packets disclose the final Lag keys.
	for t := 1; t <= s.cfg.Lag; t++ {
		disclosed := s.cfg.N - s.cfg.Lag + t
		if disclosed < 1 {
			continue
		}
		dk, err := chain.Key(disclosed)
		if err != nil {
			return nil, fmt.Errorf("tesla: %w", err)
		}
		pkts = append(pkts, &packet.Packet{
			BlockID:           blockID,
			Index:             uint32(s.cfg.N + 1 + t),
			DisclosedKey:      dk,
			DisclosedKeyIndex: uint32(disclosed),
		})
	}
	return pkts, nil
}

// Graph implements Scheme using the split message/key encoding of Section
// 3.2: vertex 1 is the bootstrap (P_sign); vertex 1+i is the message part
// of data packet i; vertex 1+N+j is the key K_j as carried on the wire.
// The bootstrap authenticates every key (edges 1 -> key_j), and key K_j
// authenticates every message with interval <= j (a lost key is recovered
// from any later one). The timing factor ξ is outside the graph, as in the
// paper. Note the graph has Θ(N²) edges; build it for analysis-sized N.
func (s *Scheme) Graph() (*depgraph.Graph, error) {
	n := s.cfg.N
	g, err := depgraph.New(2*n+1, 1)
	if err != nil {
		return nil, err
	}
	msg := func(i int) int { return 1 + i }
	key := func(j int) int { return 1 + n + j }
	for j := 1; j <= n; j++ {
		if err := g.AddEdge(1, key(j)); err != nil {
			return nil, err
		}
		for i := 1; i <= j; i++ {
			if err := g.AddEdge(key(j), msg(i)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// NewVerifier implements Scheme.
func (s *Scheme) NewVerifier() (scheme.Verifier, error) {
	return &teslaVerifier{pub: s.signer.Public(), maxBuffered: s.cfg.MaxBuffered}, nil
}

type pendingPacket struct {
	p       *packet.Packet
	arrived time.Time
}

type teslaVerifier struct {
	pub crypto.Verifier

	params      *bootstrapParams
	blockID     uint64
	bestIdx     int    // highest verified chain key index (0 = commitment)
	bestKey     []byte // verified chain key at bestIdx (commitment at 0)
	preBoot     []pendingPacket
	buffered    map[int][]pendingPacket // by key interval, awaiting disclosure
	authentic   map[uint32]bool
	maxBuffered int // cap on preBoot+buffered; 0 = unbounded
	stats       verifier.Stats

	// Receiver fast path. Validating a disclosed key walks the PRF chain
	// down to the last verified key anyway; chainKeys memoizes every
	// element that walk derives, so per-packet verification is a table
	// lookup instead of an O(chain-length) re-walk (the old cost was
	// quadratic over a block). haveKey gates each entry: candidates are
	// written during the walk but only committed once the walk lands on
	// the verified anchor, so a forged disclosure never populates the
	// table. The scratch fields make MAC verification allocation-free.
	chainKeys [][crypto.KeySize]byte // index -> chain key K_i
	haveKey   []bool
	ms        crypto.MACScratch
	content   []byte
	mkBuf     [crypto.KeySize]byte
	keyBuf    [crypto.KeySize]byte
	// events is the per-Ingest result buffer, reused across calls (every
	// caller consumes the returned slice before ingesting again); pendPool
	// recycles the per-interval pending slices absorbKey releases.
	events   []verifier.Event
	pendPool [][]pendingPacket

	cache    *verifier.SharedCache
	streamID uint64

	tracer obs.Tracer
	m      *teslaMetrics
}

var (
	_ scheme.Verifier      = (*teslaVerifier)(nil)
	_ obs.Instrumented     = (*teslaVerifier)(nil)
	_ scheme.BufferBounded = (*teslaVerifier)(nil)
	_ scheme.CacheAware    = (*teslaVerifier)(nil)
)

// SetSharedCache implements scheme.CacheAware. The cache is consulted
// only after a packet passes the safety condition: MAC validity is
// timeless, but acceptance is not — a replay arriving after its key
// became public must still be dropped, so the deadline check can never be
// skipped.
func (tv *teslaVerifier) SetSharedCache(c *verifier.SharedCache, streamID uint64) {
	tv.cache = c
	tv.streamID = streamID
}

// teslaMetrics caches the registry instruments the verifier updates; the
// metric names are shared with the hash-chained engine so runs aggregate
// under one verifier.* namespace.
type teslaMetrics struct {
	reg           *obs.Registry
	authenticated *obs.Counter
	rejected      *obs.Counter
	unsafe        *obs.Counter
	// overflow is registered lazily on the first eviction so unbounded
	// (and never-overflowing) runs keep their metrics dump unchanged.
	overflow     *obs.Counter
	msgHighWater *obs.Histogram
	timeToAuth   *obs.Histogram
}

// SetTracer implements obs.Instrumented.
func (tv *teslaVerifier) SetTracer(t obs.Tracer) { tv.tracer = t }

// SetMetrics implements obs.Instrumented.
func (tv *teslaVerifier) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		tv.m = nil
		return
	}
	tv.m = &teslaMetrics{
		reg:           reg,
		authenticated: reg.Counter("verifier.authenticated"),
		rejected:      reg.Counter("verifier.rejected"),
		unsafe:        reg.Counter("verifier.unsafe"),
		msgHighWater:  reg.Histogram("verifier.msg_buffer_high_water"),
		timeToAuth:    reg.Histogram("verifier.time_to_auth_ns"),
	}
}

// SetMaxBuffered implements scheme.BufferBounded, capping the pending
// buffers after construction. Negative values are ignored.
func (tv *teslaVerifier) SetMaxBuffered(n int) {
	if n >= 0 {
		tv.maxBuffered = n
	}
}

// pendingTotal is the current pending-buffer occupancy.
func (tv *teslaVerifier) pendingTotal() int {
	total := len(tv.preBoot)
	for _, pends := range tv.buffered {
		total += len(pends)
	}
	return total
}

// bufferFull reports whether another pending packet would exceed the cap;
// when full the packet is dropped and counted, never stored.
func (tv *teslaVerifier) bufferFull(p *packet.Packet, at time.Time) bool {
	if tv.maxBuffered <= 0 || tv.pendingTotal() < tv.maxBuffered {
		return false
	}
	tv.stats.DroppedOverflow++
	if tv.m != nil {
		if tv.m.overflow == nil {
			tv.m.overflow = tv.m.reg.Counter("verifier.overflow_dropped")
		}
		tv.m.overflow.Inc()
	}
	tv.emit(obs.Event{
		Type: obs.EventOverflowDropped, Index: p.Index,
		Block: p.BlockID, TimeNS: obs.TimeNS(at), Depth: tv.pendingTotal(),
	})
	return true
}

func (tv *teslaVerifier) emit(e obs.Event) {
	if tv.tracer == nil {
		return
	}
	tv.tracer.Emit(e)
}

// markAuthenticated records one successful authentication at time at of a
// packet that arrived at arrived, feeding the receiver-delay histogram.
func (tv *teslaVerifier) markAuthenticated(p *packet.Packet, arrived, at time.Time) {
	tv.stats.Authenticated++
	latency := at.Sub(arrived)
	if latency < 0 {
		latency = 0
	}
	tv.stats.TimeToAuth.Observe(latency.Nanoseconds())
	if tv.m != nil {
		tv.m.authenticated.Inc()
		tv.m.timeToAuth.Observe(latency.Nanoseconds())
	}
	tv.emit(obs.Event{
		Type: obs.EventAuthenticated, Index: p.Index, Block: p.BlockID,
		TimeNS: obs.TimeNS(at), LatencyNS: latency.Nanoseconds(),
	})
}

func (tv *teslaVerifier) markRejected(p *packet.Packet, at time.Time, reason string) {
	tv.stats.Rejected++
	if tv.m != nil {
		tv.m.rejected.Inc()
	}
	e := obs.Event{Type: obs.EventRejected, TimeNS: obs.TimeNS(at), Reason: reason}
	if p != nil {
		e.Index = p.Index
		e.Block = p.BlockID
	}
	tv.emit(e)
}

// Ingest implements scheme.Verifier. The returned event slice is reused
// by the next Ingest call; callers must consume or copy it before
// ingesting again.
func (tv *teslaVerifier) Ingest(p *packet.Packet, at time.Time) ([]verifier.Event, error) {
	if p == nil {
		return nil, errors.New("tesla: nil packet")
	}
	tv.stats.Received++
	if tv.authentic == nil {
		tv.authentic = make(map[uint32]bool)
		tv.buffered = make(map[int][]pendingPacket)
	}
	tv.events = tv.events[:0]

	if len(p.Signature) > 0 {
		return tv.ingestBootstrap(p, at)
	}
	if tv.params == nil {
		// Cannot evaluate the safety condition before the bootstrap;
		// hold the packet with its arrival time (bounded: a pre-
		// bootstrap flood must not grow memory without limit).
		if tv.bufferFull(p, at) {
			return nil, nil
		}
		tv.preBoot = append(tv.preBoot, pendingPacket{p: p, arrived: at})
		tv.trackBufferHighWater(p, at)
		return nil, nil
	}
	if p.BlockID != tv.blockID {
		return nil, fmt.Errorf("tesla: packet block %d, verifier block %d", p.BlockID, tv.blockID)
	}
	return tv.ingestData(pendingPacket{p: p, arrived: at}, at)
}

func (tv *teslaVerifier) ingestBootstrap(p *packet.Packet, at time.Time) ([]verifier.Event, error) {
	if tv.params != nil {
		tv.stats.Duplicates++
		return nil, nil
	}
	if !tv.pub.Verify(p.ContentBytes(), p.Signature) {
		tv.markRejected(p, at, "bad_signature")
		return nil, nil
	}
	bp, err := parseBootstrap(p.Payload)
	if err != nil {
		tv.markRejected(p, at, "bad_bootstrap")
		return nil, nil
	}
	tv.params = &bp
	tv.blockID = p.BlockID
	tv.bestIdx = 0
	tv.bestKey = bp.commitment
	tv.markAuthenticated(p, at, at)

	held := tv.preBoot
	tv.preBoot = nil
	for _, pend := range held {
		if pend.p.BlockID != tv.blockID {
			continue
		}
		if _, err := tv.ingestData(pend, at); err != nil {
			return tv.events, err
		}
	}
	return tv.events, nil
}

func (tv *teslaVerifier) ingestData(pend pendingPacket, at time.Time) ([]verifier.Event, error) {
	p := pend.p

	// Disclosed keys self-authenticate against the commitment chain and
	// may unlock buffered packets, regardless of this packet's own fate.
	if len(p.DisclosedKey) > 0 {
		tv.absorbKey(int(p.DisclosedKeyIndex), p.DisclosedKey, at)
	}

	if p.KeyIndex == 0 {
		// Key-only trailing packet: nothing further to verify.
		return tv.events, nil
	}
	if tv.authentic[p.Index] {
		tv.stats.Duplicates++
		return tv.events, nil
	}
	interval := int(p.KeyIndex)
	if interval > tv.params.n {
		tv.markRejected(p, at, "bad_interval")
		return tv.events, nil
	}
	// Safety condition: the packet must have arrived before the sender
	// could have disclosed its key (condition (2) of the paper; packets
	// arriving later must be dropped to prevent forgery with the
	// now-public key).
	deadline := tv.params.start.
		Add(time.Duration(interval+tv.params.lag) * tv.params.interval)
	if !pend.arrived.Before(deadline) {
		tv.stats.Unsafe++
		if tv.m != nil {
			tv.m.unsafe.Inc()
		}
		tv.emit(obs.Event{
			Type: obs.EventUnsafe, Index: p.Index, Block: p.BlockID,
			TimeNS: obs.TimeNS(at), Reason: "deadline",
		})
		return tv.events, nil
	}
	// Shared-cache fast path — safe only here, after the deadline check:
	// a packet with this exact content already passed a real MAC check in
	// this stream and block, and this arrival independently satisfied the
	// safety condition.
	if tv.cache != nil {
		if d := tv.cache.DigestOf(p); tv.cache.IsAuthentic(tv.streamID, p.BlockID, d) {
			tv.stats.CacheHits++
			tv.authentic[p.Index] = true
			tv.markAuthenticated(p, pend.arrived, at)
			tv.events = append(tv.events, verifier.Event{Index: p.Index, Payload: p.Payload})
			return tv.events, nil
		}
	}
	if tv.bestIdx >= interval {
		tv.verifyData(pend, at)
		return tv.events, nil
	}
	if tv.bufferFull(p, at) {
		return tv.events, nil
	}
	pends, live := tv.buffered[interval]
	if !live && len(tv.pendPool) > 0 {
		last := len(tv.pendPool) - 1
		pends = tv.pendPool[last]
		tv.pendPool = tv.pendPool[:last]
	}
	tv.buffered[interval] = append(pends, pend)
	tv.trackBufferHighWater(p, at)
	return tv.events, nil
}

// absorbKey validates a disclosed chain key and releases every buffered
// packet whose interval it covers. The validation walk memoizes every
// chain element it derives (committed only after the walk reaches the
// verified anchor), so later per-packet key lookups are O(1). Released
// packets append their events to tv.events.
func (tv *teslaVerifier) absorbKey(idx int, key []byte, at time.Time) {
	if tv.params == nil || idx < 1 || idx > tv.params.n {
		return
	}
	if idx <= tv.bestIdx {
		return // already covered by a later verified key
	}
	// Genuine chain elements are exactly KeySize bytes (the PRF truncates
	// to KeySize); anything else cannot reproduce the commitment.
	if len(key) != crypto.KeySize {
		tv.markRejected(nil, at, "bad_key_chain")
		return
	}
	if tv.chainKeys == nil {
		tv.chainKeys = make([][crypto.KeySize]byte, tv.params.n+1)
		tv.haveKey = make([]bool, tv.params.n+1)
	}
	var cur [crypto.KeySize]byte
	copy(cur[:], key)
	for i := idx; i > tv.bestIdx; i-- {
		tv.chainKeys[i] = cur
		if err := crypto.RecoverEarlierKeyInto(&tv.ms, cur[:], cur[:], i, i-1); err != nil {
			tv.markRejected(nil, at, "bad_key_chain")
			return
		}
	}
	if !bytesEqual(cur[:], tv.bestKey) {
		tv.markRejected(nil, at, "bad_key_chain")
		return
	}
	for i := idx; i > tv.bestIdx; i-- {
		tv.haveKey[i] = true
	}
	tv.bestIdx = idx
	tv.bestKey = append(tv.bestKey[:0], key...)

	for interval, pends := range tv.buffered {
		if interval > idx {
			continue
		}
		for _, pend := range pends {
			tv.verifyData(pend, at)
		}
		delete(tv.buffered, interval)
		tv.pendPool = append(tv.pendPool, pends[:0])
	}
}

// intervalChainKey returns the verified chain key K_interval, preferring
// the memo table and falling back to a PRF walk from the best key.
func (tv *teslaVerifier) intervalChainKey(interval int) ([]byte, bool) {
	if interval < len(tv.haveKey) && tv.haveKey[interval] {
		return tv.chainKeys[interval][:], true
	}
	if interval == tv.bestIdx {
		return tv.bestKey, true
	}
	if interval > tv.bestIdx {
		return nil, false
	}
	if err := crypto.RecoverEarlierKeyInto(&tv.ms, tv.keyBuf[:], tv.bestKey, tv.bestIdx, interval); err != nil {
		return nil, false
	}
	return tv.keyBuf[:], true
}

// verifyData checks a safe packet's MAC under its (now known) interval
// key, appending the resulting event (if any) to tv.events.
func (tv *teslaVerifier) verifyData(pend pendingPacket, at time.Time) {
	p := pend.p
	if tv.authentic[p.Index] {
		// A duplicate of this wire packet was buffered before the key
		// arrived; emit nothing twice.
		tv.stats.Duplicates++
		return
	}
	interval := int(p.KeyIndex)
	chainKey, ok := tv.intervalChainKey(interval)
	if !ok {
		tv.markRejected(p, at, "bad_key_chain")
		return
	}
	crypto.DeriveMACKeyInto(&tv.ms, tv.mkBuf[:], chainKey)
	tv.content = p.AppendContent(tv.content[:0])
	if !tv.ms.Verify(tv.mkBuf[:], tv.content, p.MAC) {
		tv.markRejected(p, at, "bad_mac")
		return
	}
	tv.authentic[p.Index] = true
	if tv.cache != nil {
		tv.cache.MarkAuthentic(tv.streamID, p.BlockID, tv.cache.DigestOf(p))
	}
	tv.markAuthenticated(p, pend.arrived, at)
	tv.events = append(tv.events, verifier.Event{Index: p.Index, Payload: p.Payload})
}

func (tv *teslaVerifier) trackBufferHighWater(p *packet.Packet, at time.Time) {
	total := tv.pendingTotal()
	if total > tv.stats.MsgBufferHighWater {
		tv.stats.MsgBufferHighWater = total
		if tv.m != nil {
			tv.m.msgHighWater.Observe(int64(total))
		}
	}
	tv.emit(obs.Event{
		Type: obs.EventMsgBuffered, Index: p.Index, Block: p.BlockID,
		TimeNS: obs.TimeNS(at), Depth: total,
	})
}

// Stats implements scheme.Verifier.
func (tv *teslaVerifier) Stats() verifier.Stats { return tv.stats }

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
