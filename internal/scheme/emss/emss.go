// Package emss implements EMSS (Perrig et al.), the Efficient Multi-chained
// Stream Signature scheme of the paper's Section 2.2: the signature packet
// is the last packet of a block, and each packet's hash is stored in m
// later packets at spacing d (the paper's E_{m,d} notation). Redundant
// hash placement buys loss tolerance at the cost of delayed verification.
package emss

import (
	"fmt"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme"
)

// Config selects the E_{m,d} parameters for a block of N packets.
type Config struct {
	N int
	M int
	D int
	// SigCopies replicates the signature packet on the wire (0 and 1
	// both mean one copy), realizing the paper's "sent multiple times"
	// remedy for signature-packet loss.
	SigCopies int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("emss: block size %d must be >= 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("emss: m=%d must be >= 1", c.M)
	}
	if c.D < 1 {
		return fmt.Errorf("emss: d=%d must be >= 1", c.D)
	}
	if c.M*c.D >= c.N {
		return fmt.Errorf("emss: m*d=%d must be < n=%d", c.M*c.D, c.N)
	}
	return nil
}

// New builds the E_{m,d} scheme. In send-order indexing the signature
// packet is P_n; packet s stores its hash in packets s+d, s+2d, ..., s+md
// (clamped to the block), which as dependence edges reads: s+kd -> s.
func New(cfg Config, signer crypto.Signer) (*scheme.Chained, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var edges [][2]int
	for s := 1; s < cfg.N; s++ {
		for k := 1; k <= cfg.M; k++ {
			carrier := s + k*cfg.D
			if carrier > cfg.N {
				// The signature packet absorbs dangling hashes:
				// the paper's "hashes of the final few packets"
				// ride in the signature packet. Only one edge
				// from the root per target.
				carrier = cfg.N
			}
			if carrier == s {
				continue
			}
			edges = appendEdge(edges, carrier, s)
		}
	}
	return scheme.NewChained(scheme.Topology{
		Name:       fmt.Sprintf("emss(E_{%d,%d}, n=%d)", cfg.M, cfg.D, cfg.N),
		N:          cfg.N,
		Root:       cfg.N,
		Edges:      edges,
		RootCopies: cfg.SigCopies,
	}, signer)
}

// appendEdge adds an edge once.
func appendEdge(edges [][2]int, from, to int) [][2]int {
	for _, e := range edges {
		if e[0] == from && e[1] == to {
			return edges
		}
	}
	return append(edges, [2]int{from, to})
}

// ReversedIndex maps a send-order index to the paper's reversed indexing
// (signature packet = 1), for comparison with the analytic recurrences.
func ReversedIndex(sendIndex, n int) int { return n + 1 - sendIndex }
