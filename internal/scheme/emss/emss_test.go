package emss

import (
	"math"
	"testing"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/schemetest"
)

func TestConformance(t *testing.T) {
	s, err := New(Config{N: 12, M: 2, D: 1}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestConformanceLargerSpacing(t *testing.T) {
	s, err := New(Config{N: 20, M: 3, D: 2}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	bad := []Config{
		{N: 1, M: 1, D: 1},
		{N: 10, M: 0, D: 1},
		{N: 10, M: 1, D: 0},
		{N: 10, M: 5, D: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, signer); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := New(Config{N: 10, M: 2, D: 1}, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestRootIsLastPacket(t *testing.T) {
	s, err := New(Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root() != 10 {
		t.Errorf("root = %d, want 10 (signature last)", g.Root())
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		hasSig := len(p.Signature) > 0
		if hasSig != (p.Index == 10) {
			t.Errorf("packet %d signature presence = %v", p.Index, hasSig)
		}
	}
}

func TestGraphMatchesMarkovExact(t *testing.T) {
	// The exact enumeration over the runnable construction's dependence
	// graph must agree with the exact Markov-window evaluator: they are
	// two independent computations of the same quantity.
	n, p := 14, 0.3
	s, err := New(Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := analysis.MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for rev := 1; rev <= n; rev++ {
		send := n + 1 - rev
		if diff := math.Abs(exact.Q[send] - markov.Q[rev]); diff > 1e-12 {
			t.Errorf("reversed %d (send %d): graph %v vs markov %v",
				rev, send, exact.Q[send], markov.Q[rev])
		}
	}
}

func TestRecurrenceUpperBoundsGraphExact(t *testing.T) {
	// The paper's Equation (8) recurrence assumes independent paths and
	// therefore upper-bounds the exact per-packet probability of the
	// real construction.
	n, p := 14, 0.3
	s, err := New(Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := analysis.EMSS{N: n, M: 2, D: 1, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for rev := 1; rev <= n; rev++ {
		send := n + 1 - rev
		if exact.Q[send] > rec.Q[rev]+1e-9 {
			t.Errorf("reversed %d: graph exact %v exceeds recurrence %v",
				rev, exact.Q[send], rec.Q[rev])
		}
	}
}

func TestBoundaryPacketsAlwaysVerifiable(t *testing.T) {
	// The signature packet carries the hashes of the last m*d packets
	// before it, so those verify whenever received (the recurrence's
	// initial condition).
	n := 12
	s, err := New(Config{N: n, M: 2, D: 2}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for rev := 2; rev <= 2*2+1; rev++ {
		send := n + 1 - rev
		if exact.Q[send] != 1 {
			t.Errorf("reversed index %d (send %d): q = %v, want 1", rev, send, exact.Q[send])
		}
	}
}

func TestSurvivesSingleLoss(t *testing.T) {
	// Unlike Rohatgi, E_{2,1} tolerates any single interior loss.
	n := 10
	s, err := New(Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := schemetest.Payloads(n)
	for lost := 1; lost < n; lost++ { // never lose the signature packet
		pkts, err := s.Authenticate(1, payloads)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.NewVerifier()
		if err != nil {
			t.Fatal(err)
		}
		authenticated := 0
		for _, p := range pkts {
			if int(p.Index) == lost {
				continue
			}
			evs, err := v.Ingest(p, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			authenticated += len(evs)
		}
		if authenticated != n-1 {
			t.Errorf("lost packet %d: authenticated %d of %d received", lost, authenticated, n-1)
		}
	}
}

func TestReversedIndex(t *testing.T) {
	if got := ReversedIndex(10, 10); got != 1 {
		t.Errorf("ReversedIndex(10,10) = %d, want 1", got)
	}
	if got := ReversedIndex(1, 10); got != 10 {
		t.Errorf("ReversedIndex(1,10) = %d, want 10", got)
	}
}

func TestOverheadMatchesM(t *testing.T) {
	// Each non-signature packet's hash is stored m times (with clamped
	// duplicates collapsing into the signature packet), so the average
	// out-degree is at most m and close to it for n >> m*d.
	s, err := New(Config{N: 100, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	avg := g.AvgHashesPerPacket()
	if avg > 2 || avg < 1.8 {
		t.Errorf("avg hashes per packet = %v, want in (1.8, 2]", avg)
	}
}

func TestSigCopiesOnWire(t *testing.T) {
	s, err := New(Config{N: 8, M: 2, D: 1, SigCopies: 3}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	if s.WireCount() != 10 {
		t.Fatalf("WireCount = %d, want 10", s.WireCount())
	}
	pkts, err := s.Authenticate(1, schemetest.Payloads(8))
	if err != nil {
		t.Fatal(err)
	}
	sigs := 0
	for _, p := range pkts {
		if len(p.Signature) > 0 {
			sigs++
		}
	}
	if sigs != 3 {
		t.Errorf("found %d signature copies, want 3", sigs)
	}
}

func TestCorruptionSweep(t *testing.T) {
	s, err := New(Config{N: 12, M: 2, D: 1}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{Reliable: []uint32{12}})
}
