package scheme_test

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/schemetest"
)

// diamondCopies is the diamond with a replicated root, to check that all
// root copies share one deferred signature.
func diamondCopies(t *testing.T, signer crypto.Signer) *scheme.Chained {
	t.Helper()
	s, err := scheme.NewChained(scheme.Topology{
		Name:       "diamond+copies",
		N:          4,
		Root:       1,
		Edges:      [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}},
		RootCopies: 3,
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// verifyAll ingests every packet into a fresh verifier and returns how
// many distinct packets authenticated.
func verifyAll(t *testing.T, s scheme.Scheme, pkts []*packet.Packet) int {
	t.Helper()
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	verified := map[uint32]bool{}
	for _, p := range pkts {
		events, err := v.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			verified[e.Index] = true
		}
	}
	return len(verified)
}

func TestAuthenticateDeferredMatchesSynchronous(t *testing.T) {
	signer := crypto.NewSignerFromString("deferred")
	s := diamondCopies(t, signer)
	payloads := schemetest.Payloads(4)

	pkts, root, err := s.AuthenticateDeferred(7, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != s.WireCount() {
		t.Fatalf("wire count %d, want %d", len(pkts), s.WireCount())
	}
	// Root position 0 plus the two extra copies at the tail are held.
	if len(root.HeldWire) != 3 {
		t.Fatalf("held wire %v, want root + 2 copies", root.HeldWire)
	}
	for _, i := range root.HeldWire {
		if len(pkts[i].Signature) != 0 {
			t.Fatalf("held packet %d already signed", i)
		}
	}
	// The content handed to the signing layer is the root's own bytes.
	if string(root.Content) != string(pkts[root.HeldWire[0]].ContentBytes()) {
		t.Fatal("pending content is not the root packet's content bytes")
	}
	root.Attach(signer.Sign(root.Content))
	for _, i := range root.HeldWire {
		if len(pkts[i].Signature) == 0 {
			t.Fatalf("held packet %d unsigned after Attach (copies must share the root)", i)
		}
	}
	// Everything verifies exactly as the synchronous path would.
	if n := verifyAll(t, s, pkts); n != 4 {
		t.Fatalf("verified %d of 4 packets", n)
	}
}

func TestAuthenticateDeferredWithBatchSignature(t *testing.T) {
	// The deferred hook's purpose: several blocks' roots signed by one
	// batch signature, each receiving a blob instead of a plain
	// signature, must verify when the scheme was built from a
	// batch-capable signer.
	signer := crypto.BatchCapable(crypto.NewSignerFromString("deferred-batch"))
	s := diamondCopies(t, signer)
	payloads := schemetest.Payloads(4)

	const nBlocks = 3
	var (
		roots    []*scheme.PendingRoot
		contents [][]byte
		blocks   [][]*packet.Packet
	)
	for b := uint64(0); b < nBlocks; b++ {
		pkts, root, err := s.AuthenticateDeferred(b, payloads)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
		contents = append(contents, root.Content)
		blocks = append(blocks, pkts)
	}
	blobs, err := crypto.BatchSign(signer, contents)
	if err != nil {
		t.Fatal(err)
	}
	for i, root := range roots {
		root.Attach(blobs[i])
	}
	for b, pkts := range blocks {
		if n := verifyAll(t, s, pkts); n != 4 {
			t.Fatalf("block %d: batch-signed block verified %d of 4 packets", b, n)
		}
	}
}

func TestPendingRootRejectsTamper(t *testing.T) {
	// A batch blob for the wrong root must not verify the block.
	signer := crypto.BatchCapable(crypto.NewSignerFromString("deferred-wrong"))
	s := diamondCopies(t, signer)
	payloads := schemetest.Payloads(4)
	pktsA, rootA, err := s.AuthenticateDeferred(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	_, rootB, err := s.AuthenticateDeferred(2, payloads)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := crypto.BatchSign(signer, [][]byte{rootB.Content})
	if err != nil {
		t.Fatal(err)
	}
	rootA.Attach(blobs[0]) // wrong block's signature
	if n := verifyAll(t, s, pktsA); n != 0 {
		t.Fatalf("cross-attached signature verified %d packets, want 0", n)
	}
}
