package scheme

import (
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/verifier"
)

// Topology describes a hash-chaining layout in send-order indexing: Root is
// the packet the signature applies to, and each edge {from, to} means the
// packet sent at position `from` carries the hash of the packet sent at
// position `to` (the dependence edge P_from -> P_to of Definition 1).
type Topology struct {
	Name  string
	N     int
	Root  int
	Edges [][2]int
	// RootCopies is how many times the signature packet is sent (the
	// paper's remedy for its "P_sign always arrives" assumption: "this
	// can be easily achieved by sending it multiple times"). 0 and 1
	// both mean a single copy; the SigCopies term of Equation (3)
	// accounts for the overhead.
	RootCopies int
}

// maxRootCopies bounds replication; beyond a handful of copies the
// residual loss probability p^copies is negligible for any practical p.
const maxRootCopies = 8

// Chained turns any Topology into a runnable Scheme: Authenticate embeds
// digests along the edges and signs the root packet; verification uses the
// generic engine in internal/verifier.
type Chained struct {
	topo   Topology
	graph  *depgraph.Graph
	signer crypto.Signer
	// fillOrder lists vertices so that every packet appears after all
	// packets whose hashes it carries (reverse topological order).
	fillOrder []int
}

var _ Scheme = (*Chained)(nil)

// NewChained validates the topology (acyclic, rooted) and prepares the
// scheme.
func NewChained(topo Topology, signer crypto.Signer) (*Chained, error) {
	if signer == nil {
		return nil, fmt.Errorf("scheme: nil signer")
	}
	if topo.RootCopies < 0 || topo.RootCopies > maxRootCopies {
		return nil, fmt.Errorf("scheme %s: root copies %d out of [0,%d]", topo.Name, topo.RootCopies, maxRootCopies)
	}
	g, err := depgraph.New(topo.N, topo.Root)
	if err != nil {
		return nil, fmt.Errorf("scheme %s: %w", topo.Name, err)
	}
	for _, e := range topo.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("scheme %s: %w", topo.Name, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("scheme %s: %w", topo.Name, err)
	}
	order, err := g.TopoFromRoot()
	if err != nil {
		return nil, fmt.Errorf("scheme %s: %w", topo.Name, err)
	}
	// Reverse: dependencies (edge targets) must be finalized before the
	// packets that carry their hashes.
	fill := make([]int, len(order))
	for i, v := range order {
		fill[len(order)-1-i] = v
	}
	return &Chained{topo: topo, graph: g, signer: signer, fillOrder: fill}, nil
}

// Name implements Scheme.
func (c *Chained) Name() string { return c.topo.Name }

// BlockSize implements Scheme.
func (c *Chained) BlockSize() int { return c.topo.N }

// WireCount implements Scheme: block size plus any extra signature-packet
// copies.
func (c *Chained) WireCount() int { return c.topo.N + c.extraRootCopies() }

func (c *Chained) extraRootCopies() int {
	if c.topo.RootCopies > 1 {
		return c.topo.RootCopies - 1
	}
	return 0
}

// Graph implements Scheme.
func (c *Chained) Graph() (*depgraph.Graph, error) { return c.graph.Clone(), nil }

// VertexOf implements VertexMapper: wire index i is graph vertex i (extra
// signature-packet copies reuse the root's index and so map to the root).
func (c *Chained) VertexOf(index uint32) (int, bool) {
	if index < 1 || int(index) > c.topo.N {
		return 0, false
	}
	return int(index), true
}

// buildPackets constructs the block's wire packets with every dependence
// edge embedded as a carried hash, the root unsigned. It returns the wire
// slice (send order) and the root packet.
func (c *Chained) buildPackets(blockID uint64, payloads [][]byte) ([]*packet.Packet, *packet.Packet, error) {
	if len(payloads) != c.topo.N {
		return nil, nil, fmt.Errorf("scheme %s: got %d payloads, want %d", c.topo.Name, len(payloads), c.topo.N)
	}
	pkts := make([]*packet.Packet, c.topo.N+1) // 1-based
	for i := 1; i <= c.topo.N; i++ {
		pkts[i] = &packet.Packet{
			BlockID: blockID,
			Index:   uint32(i),
			Payload: payloads[i-1],
		}
	}
	// Fill hashes children-first so carried digests are final.
	for _, v := range c.fillOrder {
		for _, to := range c.graph.OutNeighbors(v) {
			pkts[v].Hashes = append(pkts[v].Hashes, packet.HashRef{
				TargetIndex: uint32(to),
				Digest:      pkts[to].Digest(),
			})
		}
	}
	root := pkts[c.topo.Root]
	out := pkts[1:]
	// Replicate the signature packet at the end of the block; receivers
	// treat later copies as duplicates.
	for k := 0; k < c.extraRootCopies(); k++ {
		out = append(out, root)
	}
	return out, root, nil
}

// Authenticate implements Scheme: it builds the block's packets, embeds
// each dependence edge as a carried hash, and signs the root packet.
func (c *Chained) Authenticate(blockID uint64, payloads [][]byte) ([]*packet.Packet, error) {
	out, root, err := c.buildPackets(blockID, payloads)
	if err != nil {
		return nil, err
	}
	root.Signature = c.signer.Sign(root.ContentBytes())
	return out, nil
}

// AuthenticateDeferred implements DeferredAuthenticator: the root's
// signature is supplied later via PendingRoot.Attach (typically by a
// crypto.BatchSigner amortizing one signature across many blocks). The
// root packet and its extra copies share one underlying packet, so a
// single Attach signs them all; their wire positions are reported in
// PendingRoot.HeldWire.
func (c *Chained) AuthenticateDeferred(blockID uint64, payloads [][]byte) ([]*packet.Packet, *PendingRoot, error) {
	out, root, err := c.buildPackets(blockID, payloads)
	if err != nil {
		return nil, nil, err
	}
	held := []int{c.topo.Root - 1}
	for k := 0; k < c.extraRootCopies(); k++ {
		held = append(held, c.topo.N+k)
	}
	pr := NewPendingRoot(root.ContentBytes(), held, func(sig []byte) {
		root.Signature = sig
	})
	return out, pr, nil
}

var _ DeferredAuthenticator = (*Chained)(nil)

// NewVerifier implements Scheme.
func (c *Chained) NewVerifier() (Verifier, error) {
	return newChainedVerifier(c.topo.N, c.signer.Public())
}

// chainedVerifier adapts verifier.Chained to the Scheme interface with a
// fixed block binding established by the first ingested packet.
type chainedVerifier struct {
	n     int
	pub   crypto.Verifier
	inner *verifier.Chained

	// Observability and bounding wiring is held until the inner engine
	// exists (it is created lazily by the first packet).
	tracer      obs.Tracer
	metrics     *obs.Registry
	maxBuffered int
	cache       *verifier.SharedCache
	streamID    uint64
	batchQ      *crypto.BatchVerifyQueue
	sink        func([]verifier.Event)
	spans       *obs.SpanRing
	spanStream  uint64
}

var (
	_ obs.Instrumented = (*chainedVerifier)(nil)
	_ BufferBounded    = (*chainedVerifier)(nil)
	_ CacheAware       = (*chainedVerifier)(nil)
	_ DeferredVerifier = (*chainedVerifier)(nil)
	_ SpanAware        = (*chainedVerifier)(nil)
)

func newChainedVerifier(n int, pub crypto.Verifier) (*chainedVerifier, error) {
	if pub == nil {
		return nil, fmt.Errorf("scheme: nil public key")
	}
	return &chainedVerifier{n: n, pub: pub}, nil
}

// SetTracer implements obs.Instrumented.
func (cv *chainedVerifier) SetTracer(t obs.Tracer) {
	cv.tracer = t
	if cv.inner != nil {
		cv.inner.SetTracer(t)
	}
}

// SetMetrics implements obs.Instrumented.
func (cv *chainedVerifier) SetMetrics(m *obs.Registry) {
	cv.metrics = m
	if cv.inner != nil {
		cv.inner.SetMetrics(m)
	}
}

// SetMaxBuffered implements BufferBounded.
func (cv *chainedVerifier) SetMaxBuffered(n int) {
	if n < 0 {
		return
	}
	cv.maxBuffered = n
	if cv.inner != nil {
		cv.inner.SetMaxBuffered(n)
	}
}

// SetSharedCache implements CacheAware.
func (cv *chainedVerifier) SetSharedCache(c *verifier.SharedCache, streamID uint64) {
	cv.cache = c
	cv.streamID = streamID
	if cv.inner != nil {
		cv.inner.SetSharedCache(c, streamID)
	}
}

// SetBatchVerify implements DeferredVerifier.
func (cv *chainedVerifier) SetBatchVerify(q *crypto.BatchVerifyQueue, sink func([]verifier.Event)) {
	cv.batchQ = q
	cv.sink = sink
	if cv.inner != nil {
		cv.inner.SetBatchVerify(q, sink)
	}
}

// SetSpans implements SpanAware.
func (cv *chainedVerifier) SetSpans(r *obs.SpanRing, streamID uint64) {
	cv.spans = r
	cv.spanStream = streamID
	if cv.inner != nil {
		cv.inner.SetSpans(r, streamID)
	}
}

// Ingest implements Verifier. The first packet binds the verifier to its
// block ID.
func (cv *chainedVerifier) Ingest(p *packet.Packet, at time.Time) ([]verifier.Event, error) {
	if cv.inner == nil {
		if p == nil {
			return nil, fmt.Errorf("scheme: nil packet")
		}
		inner, err := verifier.NewChained(p.BlockID, cv.n, cv.pub)
		if err != nil {
			return nil, err
		}
		if cv.tracer != nil {
			inner.SetTracer(cv.tracer)
		}
		if cv.metrics != nil {
			inner.SetMetrics(cv.metrics)
		}
		inner.SetMaxBuffered(cv.maxBuffered)
		if cv.cache != nil {
			inner.SetSharedCache(cv.cache, cv.streamID)
		}
		if cv.batchQ != nil {
			inner.SetBatchVerify(cv.batchQ, cv.sink)
		}
		if cv.spans != nil {
			inner.SetSpans(cv.spans, cv.spanStream)
		}
		cv.inner = inner
	}
	return cv.inner.Ingest(p, at)
}

// Stats implements Verifier.
func (cv *chainedVerifier) Stats() verifier.Stats {
	if cv.inner == nil {
		return verifier.Stats{}
	}
	return cv.inner.Stats()
}
