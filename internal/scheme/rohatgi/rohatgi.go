// Package rohatgi implements the Gennaro-Rohatgi hash chain, the first
// chained-hash authentication scheme (paper Section 2.2): the signature is
// on the first packet, and each packet carries the hash of the next. The
// scheme has zero receiver delay and one hash per packet of overhead, but a
// single lost packet breaks the chain for everything after it.
package rohatgi

import (
	"fmt"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme"
)

// New builds a Rohatgi chain over blocks of n packets.
func New(n int, signer crypto.Signer) (*scheme.Chained, error) {
	if n < 1 {
		return nil, fmt.Errorf("rohatgi: block size %d must be >= 1", n)
	}
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return scheme.NewChained(scheme.Topology{
		Name:  fmt.Sprintf("rohatgi(n=%d)", n),
		N:     n,
		Root:  1,
		Edges: edges,
	}, signer)
}
