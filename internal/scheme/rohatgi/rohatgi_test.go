package rohatgi

import (
	"math"
	"testing"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/schemetest"
)

func TestConformance(t *testing.T) {
	s, err := New(8, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestValidation(t *testing.T) {
	if _, err := New(0, crypto.NewSignerFromString("s")); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(3, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestGraphShape(t *testing.T) {
	s, err := New(10, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 {
		t.Errorf("edges = %d, want 9", g.NumEdges())
	}
	if g.Root() != 1 {
		t.Errorf("root = %d, want 1 (signature first, zero delay)", g.Root())
	}
	maxDelay, err := g.MaxDeterministicDelay()
	if err != nil {
		t.Fatal(err)
	}
	if maxDelay != 0 {
		t.Errorf("delay = %d, want 0", maxDelay)
	}
	if g.MessageBufferSize() != 0 {
		t.Errorf("message buffer = %d, want 0", g.MessageBufferSize())
	}
	if g.HashBufferSize() != 1 {
		t.Errorf("hash buffer = %d, want 1", g.HashBufferSize())
	}
}

func TestGraphMatchesClosedForm(t *testing.T) {
	// The exact per-packet authentication probability of the runnable
	// construction's graph must equal the analytic closed form. In this
	// scheme send order equals chain order, and the analytic reversed
	// index i corresponds to send index i as well (a single path is
	// symmetric).
	n, p := 10, 0.3
	s, err := New(n, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.Rohatgi(n, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if math.Abs(exact.Q[i]-want.Q[i]) > 1e-12 {
			t.Errorf("Q[%d] graph %v vs analytic %v", i, exact.Q[i], want.Q[i])
		}
	}
}

func TestCorruptionSweep(t *testing.T) {
	s, err := New(8, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{Reliable: []uint32{1}})
}
