// Package augchain implements the Golle-Modadugu augmented chain C_{a,b}
// (paper Section 2.2): a first-level chain of packets each linked to its
// successor and to the packet a positions ahead, with b second-phase
// packets inserted per segment, each linked to two packets. The topology
// matches the two-level recurrence of Equation (10); the signature packet
// is sent last.
package augchain

import (
	"fmt"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme"
)

// Config selects the C_{a,b} parameters for a block of N packets.
type Config struct {
	N int
	A int
	B int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.A < 1 {
		return fmt.Errorf("augchain: a=%d must be >= 1", c.A)
	}
	if c.B < 1 {
		return fmt.Errorf("augchain: b=%d must be >= 1", c.B)
	}
	if c.N < c.B+2 {
		return fmt.Errorf("augchain: n=%d must be >= b+2=%d", c.N, c.B+2)
	}
	return nil
}

// Segments returns the number of (possibly partial) chain segments.
func (c Config) Segments() int { return (c.N-1)/(c.B+1) + 1 }

// reversedIndex maps grid coordinates to the reversed linear index
// (signature packet = 1).
func (c Config) reversedIndex(x, y int) int { return x*(c.B+1) + y + 1 }

func (c Config) exists(x, y int) bool {
	i := c.reversedIndex(x, y)
	return i >= 1 && i <= c.N
}

// New builds the C_{a,b} scheme. Dependence edges follow Equation (10),
// translated from reversed to send-order indexing (send = n+1-reversed).
func New(cfg Config, signer crypto.Signer) (*scheme.Chained, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	send := func(x, y int) int { return cfg.N + 1 - cfg.reversedIndex(x, y) }
	var edges [][2]int
	addEdge := func(fromX, fromY, toX, toY int) {
		edges = append(edges, [2]int{send(fromX, fromY), send(toX, toY)})
	}
	segments := cfg.Segments()
	// Level 1: chain packets.
	for x := 1; x < segments; x++ {
		if !cfg.exists(x, 0) {
			continue
		}
		addEdge(x-1, 0, x, 0)
		prev := x - cfg.A
		if prev < 0 {
			prev = 0 // the signature packet covers the first a chain packets
		}
		if prev != x-1 {
			addEdge(prev, 0, x, 0)
		}
	}
	// Level 2: inserted packets.
	for x := 0; x < segments; x++ {
		for y := 1; y <= cfg.B; y++ {
			if !cfg.exists(x, y) {
				continue
			}
			addEdge(x, 0, x, y)
			if y == cfg.B {
				if cfg.exists(x+1, 0) {
					addEdge(x+1, 0, x, y)
				}
			} else if cfg.exists(x, y+1) {
				addEdge(x, y+1, x, y)
			}
		}
	}
	return scheme.NewChained(scheme.Topology{
		Name:  fmt.Sprintf("augchain(C_{%d,%d}, n=%d)", cfg.A, cfg.B, cfg.N),
		N:     cfg.N,
		Root:  cfg.N, // reversed index 1 is sent last
		Edges: edges,
	}, signer)
}
