package augchain

import (
	"math"
	"testing"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/loss"
	"mcauth/internal/schemetest"
	"mcauth/internal/stats"
)

func TestConformance(t *testing.T) {
	s, err := New(Config{N: 17, A: 2, B: 3}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestConformanceC33(t *testing.T) {
	s, err := New(Config{N: 21, A: 3, B: 3}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.Conformance(t, s, schemetest.FixedClock)
}

func TestValidation(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	bad := []Config{
		{N: 10, A: 0, B: 3},
		{N: 10, A: 3, B: 0},
		{N: 4, A: 3, B: 3},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, signer); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := New(Config{N: 17, A: 2, B: 3}, nil); err == nil {
		t.Error("nil signer should fail")
	}
}

func TestEveryPacketLinkedToTwoOthers(t *testing.T) {
	// Golle-Modadugu's defining property: each packet (beyond the
	// boundary) is linked to two other packets, i.e. has in-degree 2 in
	// the dependence graph.
	cfg := Config{N: 21, A: 3, B: 3}
	s, err := New(cfg, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	two, one := 0, 0
	for v := 1; v <= cfg.N; v++ {
		if v == g.Root() {
			continue
		}
		switch g.InDegree(v) {
		case 2:
			two++
		case 1:
			one++
		default:
			t.Errorf("vertex %d has in-degree %d", v, g.InDegree(v))
		}
	}
	if two < cfg.N*2/3 {
		t.Errorf("only %d of %d packets have two links", two, cfg.N-1)
	}
}

func TestGraphNearSignatureMatchesRecurrence(t *testing.T) {
	// Near the signature packet path correlations are negligible, so
	// the exact graph probabilities must track the Equation (10)
	// recurrence closely there. (Deep into the block the recurrence's
	// independence assumption makes it an upper bound; see the next
	// test.)
	cfg := Config{N: 13, A: 2, B: 2}
	p := 0.3
	s, err := New(cfg, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := analysis.AugChain{N: cfg.N, A: cfg.A, B: cfg.B, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0's inserted packets (rev <= b+1) hang directly off the
	// always-received root and have exact q = 1, which the recurrence's
	// uniform form discounts; start past them.
	for rev := cfg.B + 2; rev <= 7; rev++ {
		send := cfg.N + 1 - rev
		if diff := math.Abs(exact.Q[send] - rec.Q[rev]); diff > 0.06 {
			t.Errorf("reversed %d (send %d): graph %v vs recurrence %v",
				rev, send, exact.Q[send], rec.Q[rev])
		}
	}
}

func TestRecurrenceUpperBoundsMonteCarlo(t *testing.T) {
	// The Equation (10) recurrence assumes independent dependencies and
	// so upper-bounds the true (Monte-Carlo estimated) probabilities of
	// the real construction. Allow for sampling noise.
	cfg := Config{N: 41, A: 3, B: 3}
	p := 0.2
	s, err := New(cfg, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	model, err := loss.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.MonteCarloAuthProb(loss.Pattern(model), 40000, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := analysis.AugChain{N: cfg.N, A: cfg.A, B: cfg.B, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Skip segment 0's inserted packets (rev <= b+1): they hang directly
	// off the always-received signature packet, so their true q is 1
	// while the recurrence's uniform form discounts the root's
	// reception.
	for rev := cfg.B + 2; rev <= cfg.N; rev++ {
		send := cfg.N + 1 - rev
		if mc.Q[send] > rec.Q[rev]+0.02 {
			t.Errorf("reversed %d: MC %v exceeds recurrence %v", rev, mc.Q[send], rec.Q[rev])
		}
	}
}

func TestSurvivesBurstLoss(t *testing.T) {
	// The augmented chain's design goal: tolerate a single burst. With
	// a=3 chain hops spanning segments, losing one whole segment of
	// inserted packets plus a chain packet must not disconnect later
	// chain packets.
	cfg := Config{N: 21, A: 3, B: 3}
	s, err := New(cfg, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	received := make([]bool, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		received[i] = true
	}
	// Burst of b+1 = 4 consecutive packets in the middle (send order).
	for i := 9; i <= 12; i++ {
		received[i] = false
	}
	verifiable, err := g.VerifiableSet(received)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= cfg.N; i++ {
		if !received[i] {
			continue
		}
		if !verifiable[i] {
			t.Errorf("packet %d not verifiable despite burst tolerance", i)
		}
	}
}

func TestSegments(t *testing.T) {
	if got := (Config{N: 17, A: 2, B: 3}).Segments(); got != 5 {
		t.Errorf("Segments = %d, want 5", got)
	}
	if got := (Config{N: 16, A: 2, B: 3}).Segments(); got != 4 {
		t.Errorf("Segments = %d, want 4", got)
	}
}

func TestGraphMatchesAugChainExact(t *testing.T) {
	// Two independent exact computations of the same quantity: exhaustive
	// enumeration over the runnable construction's graph vs the two-level
	// Markov evaluator.
	cfg := Config{N: 13, A: 2, B: 2}
	p := 0.3
	s, err := New(cfg, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := analysis.AugChainExact{N: cfg.N, A: cfg.A, B: cfg.B, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for rev := 1; rev <= cfg.N; rev++ {
		send := cfg.N + 1 - rev
		if diff := math.Abs(exact.Q[send] - markov.Q[rev]); diff > 1e-12 {
			t.Errorf("reversed %d (send %d): graph %v vs markov-exact %v",
				rev, send, exact.Q[send], markov.Q[rev])
		}
	}
}

func TestCorruptionSweep(t *testing.T) {
	s, err := New(Config{N: 17, A: 2, B: 3}, crypto.NewSignerFromString("sender"))
	if err != nil {
		t.Fatal(err)
	}
	schemetest.CorruptionSweep(t, s, schemetest.SweepParams{Reliable: []uint32{17}})
}
