package scheme

import (
	"bytes"
	"strings"
	"testing"

	"mcauth/internal/crypto"
)

func TestTopologySaveLoadRoundTrip(t *testing.T) {
	topo := Topology{
		Name:  "hand-made",
		N:     5,
		Root:  1,
		Edges: [][2]int{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 5}, {2, 5}},
	}
	var buf bytes.Buffer
	if err := SaveTopology(&buf, topo); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != topo.Name || got.N != topo.N || got.Root != topo.Root {
		t.Errorf("round trip changed header: %+v", got)
	}
	if len(got.Edges) != len(topo.Edges) {
		t.Errorf("edges %d, want %d", len(got.Edges), len(topo.Edges))
	}
}

func TestLoadTopologyValidates(t *testing.T) {
	cases := []string{
		`{"n":0,"root":1}`,
		`{"n":3,"root":4}`,
		`{"n":3,"root":1,"edges":[[1,2]]}`,       // vertex 3 unreachable
		`{"n":3,"root":1,"edges":[[1,2],[2,2]]}`, // self loop
		`{"n":3,"root":1,"edges":[[1,2],[2,1]]}`, // edge into root
		`not json`,
	}
	for _, raw := range cases {
		if _, err := LoadTopology(strings.NewReader(raw)); err == nil {
			t.Errorf("topology %q should fail", raw)
		}
	}
}

func TestLoadTopologyDefaultsName(t *testing.T) {
	got, err := LoadTopology(strings.NewReader(`{"n":2,"root":1,"edges":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "custom" {
		t.Errorf("name = %q, want custom", got.Name)
	}
}

func TestTopologyOfAndRebuild(t *testing.T) {
	// Export a scheme's topology and rebuild an equivalent scheme from
	// it: the graphs must match edge for edge.
	signer := crypto.NewSignerFromString("topo")
	orig, err := NewChained(Topology{
		Name:  "orig",
		N:     6,
		Root:  6,
		Edges: [][2]int{{6, 5}, {5, 4}, {4, 3}, {3, 2}, {2, 1}, {6, 4}, {4, 2}},
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyOf(orig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTopology(&buf, topo); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewChained(loaded, signer)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := orig.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := rebuilt.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() || g1.Root() != g2.Root() {
		t.Fatal("rebuilt graph differs")
	}
	for _, e := range g1.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Errorf("rebuilt graph missing edge %v", e)
		}
	}
	// And the rebuilt scheme actually authenticates.
	payloads := make([][]byte, 6)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	if _, err := rebuilt.Authenticate(1, payloads); err != nil {
		t.Fatal(err)
	}
}
