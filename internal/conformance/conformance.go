// Package conformance cross-validates the three independent evaluation
// paths the repo provides for every authentication scheme:
//
//  1. the analytic recurrence / closed form (internal/analysis),
//  2. Monte-Carlo estimation on the dependence graph (internal/depgraph),
//  3. end-to-end measurement over the simulated multicast network
//     (internal/netsim), running the real signer, verifier and wire
//     encoding.
//
// All three estimate the same quantity — the paper's q_min, the worst
// per-packet probability that a received packet is verifiable — so any
// disagreement beyond sampling noise indicates a defect in one of the
// layers: a wrong recurrence, a graph that does not match the wire
// format, or a verifier that accepts or rejects packets the graph says
// it should not.
package conformance

import (
	"fmt"
	"math"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/depgraph"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/schemetest"
	"mcauth/internal/stats"

	acscheme "mcauth/internal/scheme/augchain"
)

// Case binds one scheme instance to its analytic reference and the wire
// conventions the network measurement needs.
type Case struct {
	// Name labels the case in reports and test output.
	Name string
	// Scheme is the instance under test.
	Scheme scheme.Scheme
	// Analytic returns the reference q_min at loss rate p.
	Analytic func(p float64) (float64, error)
	// DataIndices are the wire authentication indices whose measured
	// verification ratio constitutes q_min (the data packets).
	DataIndices []uint32
	// ReliableIndices are wire indices netsim must deliver losslessly,
	// mirroring the paper's P_sign assumption (the Monte-Carlo layer
	// forces the graph root received for the same reason).
	ReliableIndices []uint32
	// Start anchors the simulated clock; schemes with real-time
	// semantics (TESLA) must see their own configured start time.
	Start time.Time
	// SendInterval is the simulated per-packet send spacing.
	SendInterval time.Duration
	// Delay is the network delay model; nil means a constant 1 ms.
	Delay delay.Model
}

// Params tunes the statistical effort of one evaluation.
type Params struct {
	// MCTrials is the Monte-Carlo trial count per loss rate.
	MCTrials int
	// Receivers is the simulated multicast group size.
	Receivers int
	// MCTol bounds |analytic - MonteCarlo|.
	MCTol float64
	// NetsimTol bounds |analytic - measured|; looser than MCTol because
	// the group size is the binomial sample size.
	NetsimTol float64
	// Seed derives every RNG in the evaluation.
	Seed uint64
}

// DefaultParams sizes the evaluation so binomial noise sits well inside
// the tolerances: ±3σ ≈ 0.009 for the Monte-Carlo estimate at 30k trials
// and ≈ 0.039 for 1500 receivers at q = 0.5.
func DefaultParams() Params {
	return Params{
		MCTrials:  30000,
		Receivers: 1500,
		MCTol:     0.02,
		NetsimTol: 0.05,
		Seed:      7,
	}
}

// ShortParams trades precision for runtime (tests under -short).
func ShortParams() Params {
	return Params{
		MCTrials:  8000,
		Receivers: 500,
		MCTol:     0.035,
		NetsimTol: 0.08,
		Seed:      7,
	}
}

// Result is one (case, loss rate) evaluation across the three layers.
type Result struct {
	Case       string
	P          float64
	Analytic   float64
	MonteCarlo float64
	Measured   float64
}

// MCDelta is the analytic-vs-Monte-Carlo disagreement.
func (r Result) MCDelta() float64 { return math.Abs(r.Analytic - r.MonteCarlo) }

// NetsimDelta is the analytic-vs-measured disagreement.
func (r Result) NetsimDelta() float64 { return math.Abs(r.Analytic - r.Measured) }

// Check returns an error if either disagreement exceeds its tolerance.
func (r Result) Check(p Params) error {
	if d := r.MCDelta(); d > p.MCTol {
		return fmt.Errorf("%s at p=%.2f: analytic q_min %.4f vs Monte-Carlo %.4f (Δ=%.4f > %.4f)",
			r.Case, r.P, r.Analytic, r.MonteCarlo, d, p.MCTol)
	}
	if d := r.NetsimDelta(); d > p.NetsimTol {
		return fmt.Errorf("%s at p=%.2f: analytic q_min %.4f vs netsim-measured %.4f (Δ=%.4f > %.4f)",
			r.Case, r.P, r.Analytic, r.Measured, d, p.NetsimTol)
	}
	return nil
}

// dataIndices returns wire indices from..to inclusive.
func dataIndices(from, to int) []uint32 {
	out := make([]uint32, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, uint32(i))
	}
	return out
}

// Suite builds the canonical conformance cases at block size n: every
// hash-chained construction, TESLA, and the two per-packet baselines.
// The augmented chain is aligned to a segment boundary (analysis.AlignN)
// because the exact evaluator requires it; its case therefore runs at a
// slightly larger block.
func Suite(n int) ([]Case, error) {
	if n < 6 {
		return nil, fmt.Errorf("conformance: block size %d too small for the suite", n)
	}
	signer := crypto.NewSignerFromString("conformance")
	start := time.Unix(0, 0)
	var cases []Case

	ro, err := rohatgi.New(n, signer)
	if err != nil {
		return nil, err
	}
	cases = append(cases, Case{
		Name:   "rohatgi",
		Scheme: ro,
		Analytic: func(p float64) (float64, error) {
			res, err := analysis.Rohatgi(n, p)
			if err != nil {
				return 0, err
			}
			return res.QMin, nil
		},
		DataIndices:     dataIndices(1, n),
		ReliableIndices: []uint32{1}, // signature packet sent first
		Start:           start,
	})

	em, err := emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	if err != nil {
		return nil, err
	}
	cases = append(cases, Case{
		Name:   "emss(E21)",
		Scheme: em,
		Analytic: func(p float64) (float64, error) {
			return analysis.MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.QMin()
		},
		DataIndices:     dataIndices(1, n),
		ReliableIndices: []uint32{uint32(n)}, // signature packet sent last
		Start:           start,
	})

	acN := analysis.AlignN(n, 3)
	ac, err := acscheme.New(acscheme.Config{N: acN, A: 3, B: 3}, signer)
	if err != nil {
		return nil, err
	}
	cases = append(cases, Case{
		Name:   "augchain(C33)",
		Scheme: ac,
		Analytic: func(p float64) (float64, error) {
			return analysis.AugChainExact{N: acN, A: 3, B: 3, P: p}.QMin()
		},
		DataIndices:     dataIndices(1, acN),
		ReliableIndices: []uint32{uint32(acN)},
		Start:           start,
	})

	at, err := authtree.New(n, signer)
	if err != nil {
		return nil, err
	}
	cases = append(cases, Case{
		Name:        "authtree",
		Scheme:      at,
		Analytic:    func(float64) (float64, error) { return 1, nil },
		DataIndices: dataIndices(1, n),
		Start:       start,
	})

	se, err := signeach.New(n, signer)
	if err != nil {
		return nil, err
	}
	cases = append(cases, Case{
		Name:        "signeach",
		Scheme:      se,
		Analytic:    func(float64) (float64, error) { return 1, nil },
		DataIndices: dataIndices(1, n),
		Start:       start,
	})

	// TESLA under the ξ = 1 conditioning: a constant 1 ms delivery delay
	// against a 200 ms disclosure lag never violates the safety
	// condition, so measured loss is purely erasure loss and must match
	// Q evaluated at ξ = 1 (and the split-vertex graph, which excludes
	// timing by construction).
	interval := 100 * time.Millisecond
	lag := 2
	tCfg := tesla.Config{
		N:        n,
		Lag:      lag,
		Interval: interval,
		Start:    start,
		Seed:     []byte("conformance"),
	}
	ts, err := tesla.New(tCfg, signer)
	if err != nil {
		return nil, err
	}
	tDisc := tCfg.TDisclose().Seconds()
	teslaData := make([]uint32, n)
	for i := range teslaData {
		teslaData[i] = tesla.DataWireIndex(i + 1)
	}
	cases = append(cases, Case{
		Name:   "tesla",
		Scheme: ts,
		Analytic: func(p float64) (float64, error) {
			c := analysis.TESLA{N: n, P: p, TDisc: tDisc, Mu: tDisc / 100, Sigma: tDisc / 200}
			return c.QMinWithXi(1)
		},
		DataIndices:     teslaData,
		ReliableIndices: []uint32{1}, // bootstrap carries the signature
		Start:           start,
		SendInterval:    interval,
	})

	return cases, nil
}

// Evaluate runs one case at one loss rate through all three layers.
func Evaluate(c Case, p float64, params Params) (Result, error) {
	r := Result{Case: c.Name, P: p}

	analytic, err := c.Analytic(p)
	if err != nil {
		return r, fmt.Errorf("%s: analytic: %w", c.Name, err)
	}
	r.Analytic = analytic

	g, err := c.Scheme.Graph()
	if err != nil {
		return r, fmt.Errorf("%s: graph: %w", c.Name, err)
	}
	mc, err := g.MonteCarloAuthProbInto(
		depgraph.BernoulliPatternInto(p),
		params.MCTrials,
		stats.NewRNG(params.Seed^uint64(1000*p)),
		depgraph.MCOptions{},
	)
	if err != nil {
		return r, fmt.Errorf("%s: monte-carlo: %w", c.Name, err)
	}
	r.MonteCarlo = mc.QMin

	model, err := loss.NewBernoulli(p)
	if err != nil {
		return r, err
	}
	d := c.Delay
	if d == nil {
		d = delay.Constant{D: time.Millisecond}
	}
	interval := c.SendInterval
	if interval == 0 {
		interval = 10 * time.Millisecond
	}
	cfg := netsim.Config{
		Receivers:       params.Receivers,
		Loss:            model,
		Delay:           d,
		SendInterval:    interval,
		Start:           c.Start,
		Seed:            params.Seed + uint64(1000*p),
		ReliableIndices: c.ReliableIndices,
	}
	res, err := netsim.Run(c.Scheme, cfg, 1, schemetest.Payloads(c.Scheme.BlockSize()))
	if err != nil {
		return r, fmt.Errorf("%s: netsim: %w", c.Name, err)
	}
	r.Measured = res.MinAuthRatio(c.DataIndices)
	return r, nil
}
