package conformance

import (
	"strings"
	"testing"
)

func TestBoundMatching(t *testing.T) {
	b := Bound{Case: "emss(E21)", P: 0.1}
	if !b.Matches("emss(E21)", 0.1) {
		t.Error("exact match failed")
	}
	if !b.Matches("emss(E21)", 0.1+1e-12) {
		t.Error("float round-trip match failed")
	}
	if b.Matches("emss(E21)", 0.2) || b.Matches("rohatgi", 0.1) {
		t.Error("mismatched cell matched")
	}
	wild := Bound{Case: "*", P: -1}
	if !wild.Matches("anything", 0.73) {
		t.Error("wildcard must match every cell")
	}
}

func TestBoundCheckTolerancesAndFloor(t *testing.T) {
	params := DefaultParams()
	r := Result{Case: "emss(E21)", P: 0.1, Analytic: 0.80, MonteCarlo: 0.79, Measured: 0.78}

	// Within default tolerances, no floor: passes.
	if err := (Bound{Case: "*", P: -1}).Check(r, params, true, true, true); err != nil {
		t.Errorf("in-tolerance cell flagged: %v", err)
	}
	// Tight per-bound MC tolerance overrides the default.
	if err := (Bound{Case: "*", P: -1, MCTol: 0.001}).Check(r, params, true, true, true); err == nil {
		t.Error("tight MC tolerance not enforced")
	}
	// Netsim tolerance violation.
	if err := (Bound{Case: "*", P: -1, NetsimTol: 0.01}).Check(r, params, true, true, true); err == nil {
		t.Error("tight netsim tolerance not enforced")
	}
	// Floor above the measured value fails even with analytic layers off.
	err := (Bound{Case: "*", P: -1, MinQMin: 0.9}).Check(r, params, false, false, true)
	if err == nil || !strings.Contains(err.Error(), "baseline floor") {
		t.Errorf("floor violation not reported: %v", err)
	}
	// Without a measured value the floor is vacuous.
	if err := (Bound{Case: "*", P: -1, MinQMin: 0.9}).Check(r, params, true, true, false); err != nil {
		t.Errorf("floor applied without measurement: %v", err)
	}
	// Missing analytic layer disables the delta checks.
	bad := Result{Case: "x", P: 0.5, MonteCarlo: 0.2, Measured: 0.2}
	if err := (Bound{Case: "*", P: -1, MCTol: 0.001, NetsimTol: 0.001}).Check(bad, params, false, true, true); err != nil {
		t.Errorf("delta checks ran without analytic reference: %v", err)
	}
}

func TestTableReadWriteRoundTrip(t *testing.T) {
	in := Table{
		{Case: "rohatgi", P: 0.25, MinQMin: 0.5},
		{Case: "*", P: -1},
		{Case: "emss(E21)", P: 0.1, MCTol: 0.05, NetsimTol: 0.1, MinQMin: 0.6},
	}
	var buf strings.Builder
	if err := in.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTable(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	// WriteTable sorts by (case, p): "*" < "emss(E21)" < "rohatgi".
	if out[0].Case != "*" || out[1].Case != "emss(E21)" || out[2].Case != "rohatgi" {
		t.Errorf("table not sorted: %+v", out)
	}
	if out[1].MCTol != 0.05 || out[2].MinQMin != 0.5 {
		t.Errorf("values lost in round-trip: %+v", out)
	}

	if _, err := ReadTable(strings.NewReader(`[{"case":"x","p":0.1,"min_qmin":2}]`)); err == nil {
		t.Error("out-of-range min_qmin accepted")
	}
	if _, err := ReadTable(strings.NewReader(`[{"case":"x","p":0.1,"unknown_knob":1}]`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestTableCheckCollectsAllViolations(t *testing.T) {
	params := DefaultParams()
	table := Table{
		{Case: "*", P: -1, MinQMin: 0.95},
		{Case: "emss(E21)", P: 0.1, NetsimTol: 0.001},
	}
	r := Result{Case: "emss(E21)", P: 0.1, Analytic: 0.9, MonteCarlo: 0.9, Measured: 0.8}
	errs := table.Check(r, params, true, true, true)
	if len(errs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(errs), errs)
	}
	if none := table.Check(Result{Case: "other", P: 0.5, Measured: 0.99}, params, false, false, true); len(none) != 0 {
		t.Errorf("non-matching floor case flagged: %v", none)
	}
}
