package conformance

import (
	"testing"

	"mcauth/internal/depgraph"
	"mcauth/internal/stats"
)

// lossRates spans light, moderate and heavy erasure loss — enough to
// exercise both the near-1 regime (where every layer should saturate)
// and the regime where chained schemes visibly diverge from sign-each.
var lossRates = []float64{0.05, 0.15, 0.30}

// TestAnalyticMonteCarloNetsimAgree is the conformance pass: for every
// scheme and loss rate, the analytic recurrence, the dependence-graph
// Monte-Carlo estimate, and the end-to-end measured verification ratio
// must agree on q_min within statistical tolerance.
func TestAnalyticMonteCarloNetsimAgree(t *testing.T) {
	params := DefaultParams()
	if testing.Short() {
		params = ShortParams()
	}
	cases, err := Suite(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 6 {
		t.Fatalf("suite has %d cases, want 6 (five schemes + sign-each)", len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, p := range lossRates {
				r, err := Evaluate(c, p, params)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Check(params); err != nil {
					t.Error(err)
				}
				t.Logf("p=%.2f analytic=%.4f mc=%.4f measured=%.4f",
					p, r.Analytic, r.MonteCarlo, r.Measured)
			}
		})
	}
}

// TestBaselinesAreLossless pins the q = 1 property of the per-packet
// schemes: any received packet verifies, at every loss rate.
func TestBaselinesAreLossless(t *testing.T) {
	cases, err := Suite(12)
	if err != nil {
		t.Fatal(err)
	}
	params := ShortParams()
	for _, c := range cases {
		if c.Name != "authtree" && c.Name != "signeach" {
			continue
		}
		r, err := Evaluate(c, 0.30, params)
		if err != nil {
			t.Fatal(err)
		}
		if r.MonteCarlo != 1 || r.Measured != 1 {
			t.Errorf("%s: mc=%v measured=%v, want exactly 1", c.Name, r.MonteCarlo, r.Measured)
		}
	}
}

// TestMonteCarloDeterministicAcrossWorkers guards the sharded estimator:
// the conformance numbers must not depend on the worker count.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	cases, err := Suite(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		g, err := c.Scheme.Graph()
		if err != nil {
			t.Fatal(err)
		}
		var qmin [2]float64
		for i, workers := range []int{1, 4} {
			res, err := g.MonteCarloAuthProbInto(
				depgraph.BernoulliPatternInto(0.15), 5000, stats.NewRNG(42),
				depgraph.MCOptions{Workers: workers},
			)
			if err != nil {
				t.Fatal(err)
			}
			qmin[i] = res.QMin
		}
		if qmin[0] != qmin[1] {
			t.Errorf("%s: q_min %v with 1 worker vs %v with 4", c.Name, qmin[0], qmin[1])
		}
	}
}

// TestEvaluateValidation covers the error paths.
func TestEvaluateValidation(t *testing.T) {
	if _, err := Suite(3); err == nil {
		t.Error("undersized suite accepted")
	}
	cases, err := Suite(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(cases[0], 1.5, ShortParams()); err == nil {
		t.Error("impossible loss rate accepted")
	}
}
