// Overlay conformance: the fourth evaluation path. netsim.RunOverlay
// delivers every packet through a multicast tree of relays before the
// receiver's last hop, so its agreement with the flat paths must be
// checked under two regimes with very different contracts:
//
// Tolerance table — what is compared, how tightly, and which layer is the
// source of truth when they disagree:
//
//	comparison                                  tolerance  rationale
//	--------------------------------------------------------------------
//	overlay (relays off, lossless edges)        0 (exact)  same seed, same per-receiver RNG
//	  vs flat netsim, per-receiver reports                 streams; the tree is pure plumbing,
//	                                                       so ANY difference is a defect in
//	                                                       the overlay delivery path
//	analytic vs dependence-graph Monte-Carlo    MCTol      binomial noise at MCTrials
//	analytic vs flat netsim q_min               NetsimTol  binomial noise at Receivers
//	analytic vs overlay q_min (i.i.d. leaf      NetsimTol  equals the flat row bit-for-bit
//	  loss, lossless edges, relays off)                    by the exact row above
//	analytic vs overlay under a correlated      none       the closed form assumes i.i.d.
//	  (shared-fate) tree edge                              per-receiver loss; a lossy shared
//	                                                       edge drops the SAME packets for an
//	                                                       entire subtree, violating the
//	                                                       assumption — here the Monte-Carlo
//	                                                       and netsim layers are the source
//	                                                       of truth, and the lab gates run on
//	                                                       them, not on the analytic bound
//
// The last row is the point of the overlay tier: once tree edges lose
// packets, q_min is no longer a function of the marginal loss rate alone,
// and TestCorrelatedEdgeEscapesAnalyticBound pins a scenario where the
// measured value sits far outside any tolerance of the i.i.d. formula
// evaluated at the same marginal rate.

package conformance

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"mcauth/internal/delay"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/schemetest"
)

// OverlayCellResult extends a flat Result with the overlay measurement.
type OverlayCellResult struct {
	Result
	// OverlayMeasured is q_min measured over the overlay delivery path.
	OverlayMeasured float64
	// Identical reports whether the overlay run's per-receiver reports were
	// bit-for-bit identical to the flat run's — required whenever the tree
	// edges are lossless and relays are off.
	Identical bool
}

// Check applies the tolerance table: the exact row first, then the flat
// statistical rows.
func (r OverlayCellResult) Check(p Params) error {
	if !r.Identical {
		return fmt.Errorf("%s at p=%.2f: overlay run (relays off, lossless edges) is not bit-identical to the flat run",
			r.Case, r.P)
	}
	if r.OverlayMeasured != r.Measured {
		return fmt.Errorf("%s at p=%.2f: overlay q_min %.6f != flat %.6f despite identical reports",
			r.Case, r.P, r.OverlayMeasured, r.Measured)
	}
	return r.Result.Check(p)
}

// overlayNetsimConfig mirrors Evaluate's netsim configuration so the flat
// and overlay runs share every knob.
func overlayNetsimConfig(c Case, p float64, params Params) (netsim.Config, loss.Model, error) {
	model, err := loss.NewBernoulli(p)
	if err != nil {
		return netsim.Config{}, nil, err
	}
	d := c.Delay
	if d == nil {
		d = delay.Constant{D: time.Millisecond}
	}
	interval := c.SendInterval
	if interval == 0 {
		interval = 10 * time.Millisecond
	}
	return netsim.Config{
		Receivers:       params.Receivers,
		Loss:            model,
		Delay:           d,
		SendInterval:    interval,
		Start:           c.Start,
		Seed:            params.Seed + uint64(1000*p),
		ReliableIndices: c.ReliableIndices,
	}, model, nil
}

// EvaluateOverlay runs one case at one i.i.d. loss rate through the
// analytic, Monte-Carlo, flat-netsim and overlay-netsim layers. The
// overlay uses a depth×fanout uniform tree with lossless edges, relays
// off, and the case's Bernoulli model on the last hop — the configuration
// the exact row of the tolerance table governs.
func EvaluateOverlay(c Case, p float64, depth, fanout int, params Params) (OverlayCellResult, error) {
	flat, err := Evaluate(c, p, params)
	r := OverlayCellResult{Result: flat}
	if err != nil {
		return r, err
	}
	cfg, model, err := overlayNetsimConfig(c, p, params)
	if err != nil {
		return r, err
	}
	// Re-run the flat path on this exact config to get the per-receiver
	// reports the bit-identity check needs (Evaluate only returns q_min).
	flatRes, err := netsim.Run(c.Scheme, cfg, 1, schemetest.Payloads(c.Scheme.BlockSize()))
	if err != nil {
		return r, fmt.Errorf("%s: flat netsim: %w", c.Name, err)
	}
	tree, err := loss.NewUniformTree(params.Seed, depth, fanout, nil, model)
	if err != nil {
		return r, err
	}
	over, err := netsim.RunOverlay(c.Scheme, cfg, netsim.OverlayConfig{Tree: tree}, 1, schemetest.Payloads(c.Scheme.BlockSize()))
	if err != nil {
		return r, fmt.Errorf("%s: overlay netsim: %w", c.Name, err)
	}
	r.Identical = reflect.DeepEqual(over.PerReceiver, flatRes.PerReceiver)
	r.OverlayMeasured = over.MinAuthRatio(c.DataIndices)
	return r, nil
}

// CorrelatedCell is one overlay run under a lossy shared tree edge,
// compared against the i.i.d. closed form evaluated at the same marginal
// per-receiver loss rate.
type CorrelatedCell struct {
	Case string
	// MarginalP is the per-receiver marginal loss rate (edge and leaf
	// composed), the rate an i.i.d. observer would measure.
	MarginalP float64
	// AnalyticIID is the closed form at MarginalP — the value the overlay
	// would have to match if loss were independent.
	AnalyticIID float64
	// Measured is the overlay q_min under the correlated edge.
	Measured float64
}

// Escape is how far the measured value sits from the i.i.d. prediction.
func (c CorrelatedCell) Escape() float64 { return math.Abs(c.AnalyticIID - c.Measured) }

// EvaluateCorrelated runs one case over a depth-2 tree whose first
// mid-tree edge loses packets with probability edgeP (shared by the whole
// subtree) while every last hop loses i.i.d. at leafP. There is no
// tolerance for this cell — it exists to measure how far correlated loss
// escapes the analytic bound, and the simulation layer is authoritative.
func EvaluateCorrelated(c Case, edgeP, leafP float64, fanout int, params Params) (CorrelatedCell, error) {
	marginal := 1 - (1-edgeP)*(1-leafP)
	cell := CorrelatedCell{Case: c.Name, MarginalP: marginal}
	analytic, err := c.Analytic(marginal)
	if err != nil {
		return cell, fmt.Errorf("%s: analytic: %w", c.Name, err)
	}
	cell.AnalyticIID = analytic
	cfg, leafModel, err := overlayNetsimConfig(c, leafP, params)
	if err != nil {
		return cell, err
	}
	tree, err := loss.NewUniformTree(params.Seed, 2, fanout, nil, leafModel)
	if err != nil {
		return cell, err
	}
	edgeModel, err := loss.NewBernoulli(edgeP)
	if err != nil {
		return cell, err
	}
	// Edge 1 is the first mid-tree relay: its whole subtree (1/fanout of
	// the receivers) shares one loss pattern.
	if err := tree.SetEdge(1, edgeModel); err != nil {
		return cell, err
	}
	over, err := netsim.RunOverlay(c.Scheme, cfg, netsim.OverlayConfig{Tree: tree}, 1, schemetest.Payloads(c.Scheme.BlockSize()))
	if err != nil {
		return cell, fmt.Errorf("%s: overlay netsim: %w", c.Name, err)
	}
	cell.Measured = over.MinAuthRatio(c.DataIndices)
	return cell, nil
}
