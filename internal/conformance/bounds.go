package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Bound is one declarative acceptance bound on a measured (case, loss
// rate) cell. It generalizes the suite's hard-coded tolerances into data:
// the conformance tests, the lab regression gates (`mclab check`) and any
// committed baseline file all evaluate cells through the same type, so a
// bound tightened in one place tightens everywhere.
//
// Zero-valued tolerance fields inherit the Params defaults at check time;
// MinQMin defaults to 0 (no floor).
type Bound struct {
	// Case selects the cell by case name; "*" (or "") matches any case.
	Case string `json:"case"`
	// P selects the cell by loss rate; negative matches any rate.
	P float64 `json:"p"`
	// MCTol bounds |analytic - MonteCarlo| when both are present.
	MCTol float64 `json:"mc_tol,omitempty"`
	// NetsimTol bounds |analytic - measured| when both are present.
	NetsimTol float64 `json:"netsim_tol,omitempty"`
	// MinQMin is an absolute floor on the measured q_min — the regression
	// gate for "this scheme at this loss must keep authenticating at
	// least this fraction of received packets".
	MinQMin float64 `json:"min_qmin,omitempty"`
}

// pMatchTol absorbs float formatting round-trips when matching bounds to
// cells by loss rate (0.1 written as 0.10000000000000001 still matches).
const pMatchTol = 1e-9

// Matches reports whether the bound applies to the named cell at rate p.
func (b Bound) Matches(caseName string, p float64) bool {
	if b.Case != "*" && b.Case != "" && b.Case != caseName {
		return false
	}
	return b.P < 0 || math.Abs(b.P-p) <= pMatchTol
}

// Check evaluates the bound against one result. hasAnalytic and hasMC
// gate the cross-layer tolerance checks for cells where a layer did not
// run (e.g. bursty loss with no closed form); the MinQMin floor applies
// whenever a measured value is present (hasMeasured).
func (b Bound) Check(r Result, params Params, hasAnalytic, hasMC, hasMeasured bool) error {
	mcTol := b.MCTol
	if mcTol == 0 {
		mcTol = params.MCTol
	}
	netsimTol := b.NetsimTol
	if netsimTol == 0 {
		netsimTol = params.NetsimTol
	}
	if hasAnalytic && hasMC {
		if d := r.MCDelta(); d > mcTol {
			return fmt.Errorf("%s at p=%.2f: analytic q_min %.4f vs Monte-Carlo %.4f (Δ=%.4f > %.4f)",
				r.Case, r.P, r.Analytic, r.MonteCarlo, d, mcTol)
		}
	}
	if hasAnalytic && hasMeasured {
		if d := r.NetsimDelta(); d > netsimTol {
			return fmt.Errorf("%s at p=%.2f: analytic q_min %.4f vs netsim-measured %.4f (Δ=%.4f > %.4f)",
				r.Case, r.P, r.Analytic, r.Measured, d, netsimTol)
		}
	}
	if hasMeasured && b.MinQMin > 0 && r.Measured < b.MinQMin {
		return fmt.Errorf("%s at p=%.2f: measured q_min %.4f below baseline floor %.4f",
			r.Case, r.P, r.Measured, b.MinQMin)
	}
	return nil
}

// Table is an ordered set of bounds. Every matching bound applies, so a
// wildcard tolerance row composes with per-case floors.
type Table []Bound

// For returns every bound applying to the named cell at rate p.
func (t Table) For(caseName string, p float64) []Bound {
	var out []Bound
	for _, b := range t {
		if b.Matches(caseName, p) {
			out = append(out, b)
		}
	}
	return out
}

// Check evaluates every matching bound and returns the violations in
// table order. Cells no bound matches pass vacuously.
func (t Table) Check(r Result, params Params, hasAnalytic, hasMC, hasMeasured bool) []error {
	var errs []error
	for _, b := range t.For(r.Case, r.P) {
		if err := b.Check(r, params, hasAnalytic, hasMC, hasMeasured); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// ReadTable decodes a JSON bound table (the committed-baselines format of
// `mclab check`).
func ReadTable(r io.Reader) (Table, error) {
	var t Table
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("conformance: bound table: %w", err)
	}
	for i, b := range t {
		if b.MCTol < 0 || b.NetsimTol < 0 || b.MinQMin < 0 || b.MinQMin > 1 {
			return nil, fmt.Errorf("conformance: bound table entry %d out of range: %+v", i, b)
		}
	}
	return t, nil
}

// WriteTable encodes the table as indented JSON, sorted by (case, p) so
// regenerated baseline files diff cleanly.
func (t Table) WriteTable(w io.Writer) error {
	sorted := make(Table, len(t))
	copy(sorted, t)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Case != sorted[j].Case {
			return sorted[i].Case < sorted[j].Case
		}
		return sorted[i].P < sorted[j].P
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// DefaultTable returns the suite's canonical cross-layer tolerances as a
// reusable table: one wildcard row inheriting the Params tolerances. Gates
// layer committed per-case floors on top of it.
func DefaultTable() Table {
	return Table{{Case: "*", P: -1}}
}
