package conformance

import (
	"testing"
)

// overlayCases picks the chained schemes for the overlay cells: the
// constructions whose q_min actually depends on the loss process, so the
// exact-parity and correlated-escape properties are non-trivial.
func overlayCases(t *testing.T) []Case {
	t.Helper()
	cases, err := Suite(12)
	if err != nil {
		t.Fatal(err)
	}
	out := cases[:0]
	for _, c := range cases {
		if c.Name == "rohatgi" || c.Name == "emss(E21)" {
			out = append(out, c)
		}
	}
	if len(out) != 2 {
		t.Fatalf("suite is missing the chained overlay cases (got %d)", len(out))
	}
	return out
}

// TestOverlayConformanceCells is the overlay column of the conformance
// matrix: with lossless tree edges and relays off, the overlay run must
// be bit-identical to the flat run (zero tolerance), and therefore agree
// with the analytic and Monte-Carlo layers within the flat tolerances.
func TestOverlayConformanceCells(t *testing.T) {
	params := ShortParams()
	for _, c := range overlayCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, p := range lossRates {
				r, err := EvaluateOverlay(c, p, 2, 2, params)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Check(params); err != nil {
					t.Error(err)
				}
				t.Logf("p=%.2f analytic=%.4f mc=%.4f flat=%.4f overlay=%.4f identical=%v",
					p, r.Analytic, r.MonteCarlo, r.Measured, r.OverlayMeasured, r.Identical)
			}
		})
	}
}

// TestCorrelatedEdgeEscapesAnalyticBound pins the reason the overlay tier
// exists: under a lossy shared tree edge, the measured q_min escapes the
// i.i.d. closed form evaluated at the same marginal loss rate by far more
// than the statistical tolerance. The escape cuts both ways: an edge that
// kills signature wires starves its whole subtree of verification
// material at once (q_min collapses below any i.i.d. prediction — the
// netsim repair-gain scenario pins that case with a deterministic trace),
// while an edge that drops data and its hash carriers together makes
// receipt and verifiability positively correlated, inflating
// per-received-packet q_min far above the formula — the case this seeded
// Bernoulli edge happens to land in. Either way, no function of the
// marginal rate predicts the measurement; the simulation layers are the
// source of truth, and there is nothing to "fix" when they disagree with
// the formula.
func TestCorrelatedEdgeEscapesAnalyticBound(t *testing.T) {
	params := ShortParams()
	for _, c := range overlayCases(t) {
		cell, err := EvaluateCorrelated(c, 0.5, 0.1, 2, params)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: marginal p=%.3f analytic(iid)=%.4f measured=%.4f escape=%.4f",
			cell.Case, cell.MarginalP, cell.AnalyticIID, cell.Measured, cell.Escape())
		if cell.Escape() <= params.NetsimTol {
			t.Errorf("%s: escape %.4f within statistical tolerance %.4f — the scenario does not demonstrate the bound's failure",
				cell.Case, cell.Escape(), params.NetsimTol)
		}
	}
}
