package analysis

import (
	"fmt"

	"mcauth/internal/loss"
)

// MarkovExactBursty computes the exact per-packet authentication
// probability of a positive-offset periodic topology under *bursty*
// (Gilbert-Elliott) loss — the paper's Section 6 future work ("extend the
// derivations to other loss models like the m-state Markov model") solved
// analytically for m = 2: the joint process (channel state, verifiability
// of the trailing max-offset window) is itself a Markov chain, tracked
// exactly.
//
// Indexing caveat: the verifiability recurrence runs in reversed
// (signature-first) order while channel correlation follows send order.
// Every 2-state Markov chain is reversible, so the loss process is
// statistically identical read in either direction and the evaluation is
// exact. The chain is conditioned on the signature packet being received
// (the paper's standing assumption), which tilts the initial channel state
// toward the good state.
type MarkovExactBursty struct {
	N       int
	Offsets []int
	Channel loss.GilbertElliott
}

// Validate checks the parameters.
func (c MarkovExactBursty) Validate() error {
	base := MarkovExact{N: c.N, Offsets: c.Offsets, P: 0}
	if err := base.Validate(); err != nil {
		return err
	}
	if _, err := loss.NewGilbertElliott(
		c.Channel.PGoodToBad, c.Channel.PBadToGood, c.Channel.PGood, c.Channel.PBad,
	); err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	return nil
}

// Q evaluates the exact authentication probabilities under the bursty
// channel.
func (c MarkovExactBursty) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	maxA := 0
	for _, a := range c.Offsets {
		if a > maxA {
			maxA = a
		}
	}
	res := newResult(c.N)
	boundary := maxA + 1
	if boundary > c.N {
		boundary = c.N
	}
	for i := 1; i <= boundary; i++ {
		res.Q[i] = 1
	}
	if c.N <= boundary {
		res.finalize()
		return res, nil
	}

	const nStates = 2 // 0 = good, 1 = bad
	lossProb := [nStates]float64{c.Channel.PGood, c.Channel.PBad}
	trans := [nStates][nStates]float64{
		{1 - c.Channel.PGoodToBad, c.Channel.PGoodToBad},
		{c.Channel.PBadToGood, 1 - c.Channel.PBadToGood},
	}
	windowStates := 1 << maxA
	mask := windowStates - 1
	size := nStates * windowStates
	idx := func(ch, w int) int { return ch*windowStates + w }

	// Initial distribution at the root (reversed index 1): stationary
	// channel conditioned on the root being received.
	dist := make([]float64, size)
	piBad := c.Channel.StationaryBad()
	norm := (1-piBad)*(1-lossProb[0]) + piBad*(1-lossProb[1])
	if norm <= 0 {
		return Result{}, fmt.Errorf("analysis: channel never delivers the signature packet")
	}
	dist[idx(0, 0)] = (1 - piBad) * (1 - lossProb[0]) / norm
	dist[idx(1, 0)] = piBad * (1 - lossProb[1]) / norm

	next := make([]float64, size)
	step := func(collectQ bool, reachable func(w int) bool) float64 {
		for s := range next {
			next[s] = 0
		}
		var num, den float64
		for ch := 0; ch < nStates; ch++ {
			for w := 0; w < windowStates; w++ {
				prob := dist[idx(ch, w)]
				if prob == 0 {
					continue
				}
				reach := reachable(w)
				for chNext := 0; chNext < nStates; chNext++ {
					pTrans := prob * trans[ch][chNext]
					if pTrans == 0 {
						continue
					}
					pRecv := 1 - lossProb[chNext]
					if collectQ {
						den += pTrans * pRecv
						if reach {
							num += pTrans * pRecv
						}
					}
					newBit := 0
					if reach {
						newBit = 1
					}
					// Received and reachable -> verifiable.
					next[idx(chNext, (w<<1|newBit)&mask)] += pTrans * pRecv
					// Lost (or unreachable): bit 0.
					next[idx(chNext, (w<<1)&mask)] += pTrans * (1 - pRecv)
				}
			}
		}
		dist, next = next, dist
		if den == 0 {
			return 0
		}
		return num / den
	}

	// Boundary indices 2..boundary: verifiable iff received (direct root
	// edges), so the "reachable" predicate is constant true and the new
	// window bit equals the reception outcome.
	alwaysReachable := func(int) bool { return true }
	for i := 2; i <= boundary; i++ {
		step(false, alwaysReachable)
	}
	// Beyond the boundary: reachability depends on the window.
	reachableFromWindow := func(w int) bool {
		for _, a := range c.Offsets {
			if w&(1<<(a-1)) != 0 {
				return true
			}
		}
		return false
	}
	for i := boundary + 1; i <= c.N; i++ {
		res.Q[i] = step(true, reachableFromWindow)
	}
	res.finalize()
	return res, nil
}

// QMin returns the exact minimum authentication probability under the
// bursty channel.
func (c MarkovExactBursty) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}
