package analysis

import (
	"math"
	"testing"

	"mcauth/internal/loss"
	"mcauth/internal/stats"
)

// monteCarloReversedE21 estimates per-reversed-index q_i of E_{2,1} by
// simulating the channel in send order (rejecting samples that lose the
// signature packet, i.e. exact conditioning) and running the verifiability
// process in reversed order.
func monteCarloReversedE21(t *testing.T, n int, ch loss.GilbertElliott) []float64 {
	t.Helper()
	rng := stats.NewRNG(99)
	recvCount := make([]int, n+1)
	verCount := make([]int, n+1)
	const wantSamples = 60000
	for accepted := 0; accepted < wantSamples; {
		sent := ch.Sample(rng, n) // send-order reception flags
		if !sent[n] {
			continue // signature packet lost: outside the conditioning
		}
		accepted++
		// reversed index i corresponds to send index n+1-i.
		recv := func(rev int) bool { return sent[n+1-rev] }
		v := make([]bool, n+1)
		v[1] = true
		for i := 2; i <= n; i++ {
			if i <= 3 {
				v[i] = recv(i)
			} else {
				v[i] = recv(i) && (v[i-1] || v[i-2])
			}
		}
		for i := 2; i <= n; i++ {
			if recv(i) {
				recvCount[i]++
				if v[i] {
					verCount[i]++
				}
			}
		}
	}
	q := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		if recvCount[i] > 0 {
			q[i] = float64(verCount[i]) / float64(recvCount[i])
		}
	}
	q[1] = 1
	return q
}

// degenerateChannel behaves exactly like i.i.d. loss at rate p.
func degenerateChannel(p float64) loss.GilbertElliott {
	return loss.GilbertElliott{PGoodToBad: 0.5, PBadToGood: 0.5, PGood: p, PBad: p}
}

func TestBurstyDegenerateMatchesIID(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.5} {
		iid, err := MarkovExact{N: 80, Offsets: []int{1, 2}, P: p}.Q()
		if err != nil {
			t.Fatal(err)
		}
		bursty, err := MarkovExactBursty{
			N: 80, Offsets: []int{1, 2}, Channel: degenerateChannel(p),
		}.Q()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 80; i++ {
			if math.Abs(iid.Q[i]-bursty.Q[i]) > 1e-12 {
				t.Errorf("p=%v Q[%d]: iid %v vs degenerate-bursty %v", p, i, iid.Q[i], bursty.Q[i])
			}
		}
	}
}

func TestBurstyValidation(t *testing.T) {
	bad := []MarkovExactBursty{
		{N: 0, Offsets: []int{1}, Channel: degenerateChannel(0.1)},
		{N: 10, Offsets: nil, Channel: degenerateChannel(0.1)},
		{N: 10, Offsets: []int{-1}, Channel: degenerateChannel(0.1)},
		{N: 10, Offsets: []int{1}, Channel: loss.GilbertElliott{PGoodToBad: 2}},
	}
	for _, c := range bad {
		if _, err := c.Q(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

// geChain builds a Gilbert-Elliott channel with mean burst length bl and
// stationary loss rate.
func geChain(t *testing.T, rate, burstLen float64) loss.GilbertElliott {
	t.Helper()
	pBadToGood := 1 / burstLen
	pGoodToBad := rate * pBadToGood / (1 - rate)
	ge, err := loss.NewGilbertElliott(pGoodToBad, pBadToGood, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ge
}

func TestBurstinessCrushesE21(t *testing.T) {
	// At equal loss rate, lengthening bursts past 1 must slash the exact
	// E_{2,1} q_min (two consecutive losses sever the chain), while
	// isolated single losses (burst length exactly 1 under PBad=1 and
	// immediate recovery) are harmless.
	iidRate := 0.1
	single, err := MarkovExactBursty{
		N: 200, Offsets: []int{1, 2}, Channel: geChain(t, iidRate, 1),
	}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if single < 0.999 {
		t.Errorf("isolated single losses should be harmless: qmin %v", single)
	}
	burst2, err := MarkovExactBursty{
		N: 200, Offsets: []int{1, 2}, Channel: geChain(t, iidRate, 2),
	}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if burst2 > 0.5*single {
		t.Errorf("mean-burst-2 should crush E21: %v vs %v", burst2, single)
	}
}

func TestBurstySpreadOffsetsResist(t *testing.T) {
	// Spreading the hash copies (d > burst length) restores burst
	// tolerance: the two carriers are never both inside one burst.
	ge := geChain(t, 0.1, 2)
	tight, err := MarkovExactBursty{N: 200, Offsets: []int{1, 2}, Channel: ge}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	spread, err := MarkovExactBursty{N: 200, Offsets: []int{1, 8}, Channel: ge}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if spread <= tight {
		t.Errorf("spread offsets (%v) should beat tight ones (%v) under bursts", spread, tight)
	}
}

func TestBurstyMatchesMonteCarloOnGraph(t *testing.T) {
	// Cross-check the analytic evaluator against Monte-Carlo simulation
	// of the same loss process over the EMSS dependence graph.
	// (The pattern samples in send order; the 2-state chain is
	// reversible, so the reversed-order evaluation matches.)
	n := 24
	ge := geChain(t, 0.15, 3)
	exact, err := MarkovExactBursty{N: n, Offsets: []int{1, 2}, Channel: ge}.Q()
	if err != nil {
		t.Fatal(err)
	}
	mc := monteCarloReversedE21(t, n, ge)
	for rev := 2; rev <= n; rev++ {
		if math.Abs(exact.Q[rev]-mc[rev]) > 0.02 {
			t.Errorf("reversed %d: exact %v vs MC %v", rev, exact.Q[rev], mc[rev])
		}
	}
}
