package analysis

import (
	"math"
	"testing"
)

func TestMarkovValidation(t *testing.T) {
	cases := []MarkovExact{
		{N: 10, Offsets: nil, P: 0.1},
		{N: 10, Offsets: []int{0}, P: 0.1},
		{N: 10, Offsets: []int{-2}, P: 0.1},
		{N: 10, Offsets: []int{1, 1}, P: 0.1},
		{N: 10, Offsets: []int{17}, P: 0.1},
		{N: 10, Offsets: []int{1}, P: -1},
	}
	for _, c := range cases {
		if _, err := c.Q(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestMarkovSingleOffsetIsChain(t *testing.T) {
	// With A = {1} the exact process is the Rohatgi chain and the
	// recurrence is exact (a single path has no correlation to ignore).
	n, p := 20, 0.3
	exact, err := MarkovExact{N: n, Offsets: []int{1}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= n; i++ {
		want := math.Pow(1-p, float64(i-2))
		if math.Abs(exact.Q[i]-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, exact.Q[i], want)
		}
	}
}

func TestMarkovMatchesBruteForceE21(t *testing.T) {
	// Brute-force the E_{2,1} verifiability process over all loss
	// patterns for a small block and compare exactly.
	n, p := 14, 0.3
	exact, err := MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: indices 2..n lossy, V(1)=1, V(i)=R(i) for i<=3,
	// V(i)=R(i)&&(V(i-1)||V(i-2)) beyond.
	sumQ := make([]float64, n+1)
	patterns := 1 << (n - 1)
	for mask := 0; mask < patterns; mask++ {
		prob := 1.0
		recvd := make([]bool, n+1)
		recvd[1] = true
		for i := 2; i <= n; i++ {
			if mask&(1<<(i-2)) != 0 {
				recvd[i] = true
				prob *= 1 - p
			} else {
				prob *= p
			}
		}
		v := make([]bool, n+1)
		v[1] = true
		for i := 2; i <= n; i++ {
			if i <= 3 {
				v[i] = recvd[i]
			} else {
				v[i] = recvd[i] && (v[i-1] || v[i-2])
			}
		}
		for i := 2; i <= n; i++ {
			if v[i] {
				sumQ[i] += prob
			}
		}
	}
	for i := 4; i <= n; i++ {
		want := sumQ[i] / (1 - p) // condition on R(i)
		if math.Abs(exact.Q[i]-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, brute force %v", i, exact.Q[i], want)
		}
	}
}

func TestRecurrenceUpperBoundsMarkovExact(t *testing.T) {
	// The verifiability events feeding each packet are positively
	// correlated, so the independence-assuming recurrence (Equation 9)
	// must upper-bound the exact probability everywhere.
	for _, offsets := range [][]int{{1, 2}, {1, 3}, {2, 4}, {1, 2, 3}} {
		for _, p := range []float64{0.1, 0.3, 0.5} {
			rec, err := Periodic{N: 100, Offsets: offsets, P: p}.Q()
			if err != nil {
				t.Fatal(err)
			}
			exact, err := MarkovExact{N: 100, Offsets: offsets, P: p}.Q()
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 100; i++ {
				if exact.Q[i] > rec.Q[i]+1e-9 {
					t.Errorf("offsets %v p=%v: exact Q[%d]=%v exceeds recurrence %v",
						offsets, p, i, exact.Q[i], rec.Q[i])
				}
			}
		}
	}
}

func TestMarkovAbsorptionDecay(t *testing.T) {
	// The exact E_{2,1} process has an absorbing failure state (two
	// consecutive unverifiable packets): q_i must decay toward 0 with
	// depth, unlike the recurrence's positive fixed point.
	deep, err := MarkovExact{N: 2000, Offsets: []int{1, 2}, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if deep > 0.01 {
		t.Errorf("exact QMin(n=2000) = %v, want near 0 (absorption)", deep)
	}
	rec, err := Periodic{N: 2000, Offsets: []int{1, 2}, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if rec < 0.5 {
		t.Errorf("recurrence QMin = %v, expected positive fixed point", rec)
	}
}

func TestMarkovNoLoss(t *testing.T) {
	res, err := MarkovExact{N: 50, Offsets: []int{1, 2}, P: 0}.Q()
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin != 1 {
		t.Errorf("QMin at p=0 = %v, want 1", res.QMin)
	}
}

func TestMarkovSmallBlockAllBoundary(t *testing.T) {
	res, err := MarkovExact{N: 3, Offsets: []int{1, 2, 3, 4}, P: 0.5}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if res.Q[i] != 1 {
			t.Errorf("Q[%d] = %v, want 1 (all within boundary)", i, res.Q[i])
		}
	}
}
