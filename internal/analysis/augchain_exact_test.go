package analysis

import "testing"

func TestAugChainExactValidation(t *testing.T) {
	bad := []AugChainExact{
		{N: 13, A: 0, B: 2, P: 0.1},
		{N: 12, A: 2, B: 2, P: 0.1},  // unaligned: (12-1) % 3 != 0
		{N: 13, A: 2, B: 2, P: 1.5},  // bad p
		{N: 52, A: 17, B: 2, P: 0.1}, // window too wide
	}
	for _, c := range bad {
		if _, err := c.Q(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestAugChainExactNoLoss(t *testing.T) {
	res, err := AugChainExact{N: 31, A: 3, B: 2, P: 0}.Q()
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin != 1 {
		t.Errorf("QMin at p=0 = %v, want 1", res.QMin)
	}
}

func TestAugChainExactRecurrenceUpperBounds(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.5} {
		exact, err := AugChainExact{N: 301, A: 3, B: 2, P: p}.Q()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := AugChain{N: 301, A: 3, B: 2, P: p}.Q()
		if err != nil {
			t.Fatal(err)
		}
		// Skip segment 0's inserted packets: the recurrence discounts
		// the root's reception there (see the augchain scheme tests).
		for i := 4; i <= 301; i++ {
			if exact.Q[i] > rec.Q[i]+1e-9 {
				t.Errorf("p=%v index %d: exact %v exceeds recurrence %v",
					p, i, exact.Q[i], rec.Q[i])
			}
		}
	}
}

func TestAugChainExactDecaysWithDepth(t *testing.T) {
	// Like E_{2,1}, the exact chain has an absorbing failure state, so
	// q_min decays with block size while the recurrence plateaus.
	shallow, err := AugChainExact{N: 91, A: 3, B: 2, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	deep, err := AugChainExact{N: 901, A: 3, B: 2, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if deep >= shallow {
		t.Errorf("exact q_min should decay with n: %v vs %v", deep, shallow)
	}
	rec, err := AugChain{N: 901, A: 3, B: 2, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if rec <= deep {
		t.Errorf("recurrence %v should exceed exact %v at depth", rec, deep)
	}
}
