package analysis

import (
	"fmt"
	"math"

	"mcauth/internal/stats"
)

// TESLA describes the paper's TESLA analysis (Section 3.2, Equations 6-7):
// n packets sent over the lifetime of one key chain, i.i.d. loss with
// probability P, Gaussian end-to-end delay with mean Mu and standard
// deviation Sigma, and key-disclosure delay TDisc. All times share one unit
// (seconds).
//
// The two factors of q_i:
//
//	λ_i          = 1 - P^(n+1-i)  — some later packet discloses the key;
//	ξ_i|λ_i      = Pr{t_i <= TDisc} = Phi((TDisc-Mu)/Sigma) — the packet
//	               arrives before its key is disclosed (condition (2)).
//
// q_min = (1-P) * Phi((TDisc-Mu)/Sigma) (the last packet's λ is 1-P).
type TESLA struct {
	N     int
	P     float64
	TDisc float64
	Mu    float64
	Sigma float64
}

// Validate checks the parameters.
func (c TESLA) Validate() error {
	if err := validateNP(c.N, c.P); err != nil {
		return err
	}
	if c.TDisc < 0 {
		return fmt.Errorf("analysis: TESLA disclosure delay %v must be >= 0", c.TDisc)
	}
	if c.Mu < 0 {
		return fmt.Errorf("analysis: TESLA mean delay %v must be >= 0", c.Mu)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("analysis: TESLA delay sigma %v must be >= 0", c.Sigma)
	}
	return nil
}

// TESLAWithAlpha builds a TESLA config with Mu = alpha * TDisc, the
// parameterization of Figures 3-4.
func TESLAWithAlpha(n int, p, tDisc, alpha, sigma float64) (TESLA, error) {
	if alpha < 0 || alpha > 1 {
		return TESLA{}, fmt.Errorf("analysis: TESLA alpha %v out of [0,1]", alpha)
	}
	c := TESLA{N: n, P: p, TDisc: tDisc, Mu: alpha * tDisc, Sigma: sigma}
	if err := c.Validate(); err != nil {
		return TESLA{}, err
	}
	return c, nil
}

// Xi returns the timing factor Pr{t_i <= TDisc}.
func (c TESLA) Xi() float64 {
	return stats.NormalCDF(c.TDisc, c.Mu, c.Sigma)
}

// Q evaluates q_i = (1 - P^(n+1-i)) * Xi for every packet.
func (c TESLA) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := newResult(c.N)
	xi := c.Xi()
	for i := 1; i <= c.N; i++ {
		lambda := 1 - math.Pow(c.P, float64(c.N+1-i))
		res.Q[i] = lambda * xi
	}
	res.finalize()
	return res, nil
}

// QMin returns q_min = (1-P) * Xi directly from Equation (7).
func (c TESLA) QMin() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return (1 - c.P) * c.Xi(), nil
}

// QWithXi evaluates q_i with an externally supplied timing factor
// ξ = Pr{t_i <= T_disclose}, decoupling the loss part of the analysis from
// the delay distribution: pass the CDF of any delay model (Gaussian,
// empirical, heavy-tailed) evaluated at T_disclose. Mu/Sigma are ignored.
func (c TESLA) QWithXi(xi float64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if xi < 0 || xi > 1 {
		return Result{}, fmt.Errorf("analysis: TESLA xi %v out of [0,1]", xi)
	}
	res := newResult(c.N)
	for i := 1; i <= c.N; i++ {
		lambda := 1 - math.Pow(c.P, float64(c.N+1-i))
		res.Q[i] = lambda * xi
	}
	res.finalize()
	return res, nil
}

// QMinWithXi is the Equation (7) minimum under an external timing factor.
func (c TESLA) QMinWithXi(xi float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if xi < 0 || xi > 1 {
		return 0, fmt.Errorf("analysis: TESLA xi %v out of [0,1]", xi)
	}
	return (1 - c.P) * xi, nil
}
