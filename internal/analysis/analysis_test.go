package analysis

import (
	"math"
	"testing"
)

func TestRohatgiClosedForm(t *testing.T) {
	n, p := 10, 0.2
	res, err := Rohatgi(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[1] != 1 {
		t.Errorf("Q[1] = %v, want 1 (signature packet)", res.Q[1])
	}
	for i := 2; i <= n; i++ {
		want := math.Pow(1-p, float64(i-2))
		if math.Abs(res.Q[i]-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, res.Q[i], want)
		}
	}
	wantMin := math.Pow(1-p, float64(n-2))
	if math.Abs(res.QMin-wantMin) > 1e-12 {
		t.Errorf("QMin = %v, want %v", res.QMin, wantMin)
	}
}

func TestRohatgiCollapsesWithN(t *testing.T) {
	// The paper's headline observation: Rohatgi's robustness is
	// "incredibly low" — q_min decays geometrically in n.
	small, err := Rohatgi(10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Rohatgi(1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if large.QMin >= small.QMin {
		t.Errorf("QMin should collapse with n: %v vs %v", large.QMin, small.QMin)
	}
	if large.QMin > 1e-10 {
		t.Errorf("QMin(n=1000, p=0.1) = %v, should be vanishing", large.QMin)
	}
}

func TestRohatgiValidation(t *testing.T) {
	if _, err := Rohatgi(0, 0.1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Rohatgi(10, -1); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := Rohatgi(10, 1.5); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestAuthTreeAlwaysOne(t *testing.T) {
	res, err := AuthTree(50, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin != 1 {
		t.Errorf("QMin = %v, want 1", res.QMin)
	}
	for i := 1; i <= 50; i++ {
		if res.Q[i] != 1 {
			t.Errorf("Q[%d] = %v, want 1", i, res.Q[i])
		}
	}
}

func TestAuthTreeHashesPerPacket(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{1, 0},
		{2, 1},
		{8, 3},
		{9, 4},
		{1000, 10},
	}
	for _, tt := range tests {
		if got := AuthTreeHashesPerPacket(tt.n); got != tt.want {
			t.Errorf("AuthTreeHashesPerPacket(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestAuthTreeValidation(t *testing.T) {
	if _, err := AuthTree(0, 0.1); err == nil {
		t.Error("n=0 should fail")
	}
}
