package analysis

import (
	"math"
	"testing"
)

func TestAugChainValidation(t *testing.T) {
	cases := []AugChain{
		{N: 100, A: 0, B: 3, P: 0.1},
		{N: 100, A: 3, B: 0, P: 0.1},
		{N: 100, A: 3, B: 3, P: 1.5},
		{N: 3, A: 3, B: 3, P: 0.1}, // n < b+2
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestAugChainIndexing(t *testing.T) {
	c := AugChain{N: 17, A: 2, B: 3, P: 0.1}
	if got := c.index(0, 0); got != 1 {
		t.Errorf("index(0,0) = %d, want 1 (signature packet)", got)
	}
	if got := c.index(1, 0); got != 5 {
		t.Errorf("index(1,0) = %d, want 5", got)
	}
	if got := c.index(1, 2); got != 7 {
		t.Errorf("index(1,2) = %d, want 7", got)
	}
	if !c.exists(4, 0) { // index 17
		t.Error("index 17 should exist")
	}
	if c.exists(4, 1) { // index 18 > 17
		t.Error("index 18 should not exist")
	}
	if got := c.Segments(); got != 5 {
		t.Errorf("Segments = %d, want 5", got)
	}
}

func TestAugChainChainPacketsNearSignature(t *testing.T) {
	c := AugChain{N: 100, A: 3, B: 3, P: 0.5}
	res, err := c.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Chain packets x <= a are directly covered by the signature packet.
	for x := 0; x <= 3; x++ {
		if got := res.Q[c.index(x, 0)]; got != 1 {
			t.Errorf("chain packet x=%d q = %v, want 1", x, got)
		}
	}
	// A later chain packet must be below 1 at p=0.5.
	if got := res.Q[c.index(10, 0)]; got >= 1 {
		t.Errorf("chain packet x=10 q = %v, want < 1", got)
	}
}

func TestAugChainNoLoss(t *testing.T) {
	qmin, err := AugChain{N: 200, A: 3, B: 3, P: 0}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if qmin != 1 {
		t.Errorf("QMin at p=0 = %v, want 1", qmin)
	}
}

func TestAugChainMonotoneInP(t *testing.T) {
	prev := 1.0
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		qmin, err := AugChain{N: 500, A: 3, B: 3, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin > prev+1e-12 {
			t.Errorf("QMin increased with p=%v", p)
		}
		prev = qmin
	}
}

func TestAugChainQMinRisesWithA(t *testing.T) {
	// Paper, Figure 5: q_min drops when a decreases (fixed n).
	p := 0.3
	prev := -1.0
	for _, a := range []int{1, 2, 4, 8} {
		qmin, err := AugChain{N: 1000, A: a, B: 3, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin < prev-1e-9 {
			t.Errorf("QMin fell when a rose to %d", a)
		}
		prev = qmin
	}
}

func TestAugChainQMinRisesWithBFixedN(t *testing.T) {
	// Paper, Figure 5: for fixed block size n, increasing b shortens the
	// first-level chain, so q_min rises.
	p := 0.3
	prev := -1.0
	for _, b := range []int{1, 3, 7, 15} {
		qmin, err := AugChain{N: 1000, A: 3, B: b, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin < prev-1e-9 {
			t.Errorf("QMin fell when b rose to %d (fixed n)", b)
		}
		prev = qmin
	}
}

func TestAugChainInsensitiveToBFixedLevel1(t *testing.T) {
	// Paper, Figure 6: with the first-level length fixed (n grows with
	// b), q_min barely moves once b is larger than a small value.
	p := 0.3
	level1 := 100
	var qmins []float64
	for _, b := range []int{2, 4, 8, 16} {
		n := NForLevel1Length(level1, b)
		qmin, err := AugChain{N: n, A: 3, B: b, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		qmins = append(qmins, qmin)
	}
	for i := 1; i < len(qmins); i++ {
		if math.Abs(qmins[i]-qmins[0]) > 0.02 {
			t.Errorf("QMin varies with b under fixed level-1 length: %v", qmins)
		}
	}
}

func TestNForLevel1Length(t *testing.T) {
	// level1 chain packets at indices 1, b+2, 2(b+1)+1, ...
	if got := NForLevel1Length(5, 3); got != 17 {
		t.Errorf("NForLevel1Length(5,3) = %d, want 17", got)
	}
	c := AugChain{N: NForLevel1Length(5, 3), A: 2, B: 3, P: 0.1}
	if got := c.Segments(); got != 5 {
		t.Errorf("Segments = %d, want 5", got)
	}
}

func TestAugChainSimilarToEMSSE21(t *testing.T) {
	// Paper, Figures 8-9: AC C_{3,3} and EMSS E_{2,1} perform very
	// similarly (both link each packet to two others). Use a block that
	// ends on a chain-packet boundary (n = 250*(b+1)+1) so the last
	// segment is not dangling.
	for _, p := range []float64{0.1, 0.3} {
		ac, err := AugChain{N: 1001, A: 3, B: 3, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		emss, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ac-emss) > 0.1 {
			t.Errorf("p=%v: AC %v vs EMSS %v diverge", p, ac, emss)
		}
	}
}

func TestAugChainRangeProperty(t *testing.T) {
	for _, c := range []AugChain{
		{N: 50, A: 1, B: 1, P: 0.5},
		{N: 51, A: 5, B: 4, P: 0.9},
		{N: 52, A: 2, B: 9, P: 0.2},
	} {
		res, err := c.Q()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= c.N; i++ {
			if res.Q[i] < 0 || res.Q[i] > 1 || math.IsNaN(res.Q[i]) {
				t.Fatalf("config %+v: Q[%d] = %v", c, i, res.Q[i])
			}
		}
	}
}
