package analysis

import (
	"fmt"
	"math"
)

// Periodic describes a hash-chaining topology with a periodic structure
// (Equation 9): in reversed indexing (signature packet = P_1), packet P_i
// relies on the packets {P_{i-a} : a in Offsets}. Offsets may be negative
// (a packet may place its hash in a packet farther from the signature than
// itself), in which case the recurrence becomes a fixed-point system.
type Periodic struct {
	N       int
	Offsets []int
	P       float64
}

// maxFixedPointIters bounds the fixed-point iteration for systems with
// negative offsets; the map is a monotone contraction on [0,1]^N in
// practice, so convergence is fast.
const (
	maxFixedPointIters = 10000
	fixedPointTol      = 1e-12
)

// Validate checks the parameters.
func (c Periodic) Validate() error {
	if err := validateNP(c.N, c.P); err != nil {
		return err
	}
	if len(c.Offsets) == 0 {
		return fmt.Errorf("analysis: periodic topology needs at least one offset")
	}
	seen := make(map[int]bool, len(c.Offsets))
	for _, a := range c.Offsets {
		if a == 0 {
			return fmt.Errorf("analysis: offset 0 is a self-dependence")
		}
		if a <= -c.N || a >= c.N {
			return fmt.Errorf("analysis: offset %d out of (-n, n) for n=%d", a, c.N)
		}
		if seen[a] {
			return fmt.Errorf("analysis: duplicate offset %d", a)
		}
		seen[a] = true
	}
	return nil
}

// maxPositiveOffset returns the largest positive offset, or 0 if none.
func (c Periodic) maxPositiveOffset() int {
	maxA := 0
	for _, a := range c.Offsets {
		if a > maxA {
			maxA = a
		}
	}
	return maxA
}

func (c Periodic) hasNegativeOffset() bool {
	for _, a := range c.Offsets {
		if a < 0 {
			return true
		}
	}
	return false
}

// boundary returns the highest index covered by the initial condition
// q_i = 1. Following the paper's explicit E_{2,1} initial condition
// (q_1 = q_2 = q_3 = 1 with max offset 2), the signature packet directly
// carries the hashes of the first maxPositiveOffset packets after it, so
// indices up to maxPositiveOffset+1 have q = 1.
func (c Periodic) boundary() int {
	b := c.maxPositiveOffset() + 1
	if b > c.N {
		b = c.N
	}
	if b < 1 {
		b = 1
	}
	return b
}

// update computes the right-hand side of Equation (9) for index i given the
// current q vector: q_i = 1 - prod_{a in A} [1 - (1-p) q_{i-a}], skipping
// offsets that fall outside 1..N.
func (c Periodic) update(q []float64, i int) float64 {
	prod := 1.0
	found := false
	for _, a := range c.Offsets {
		j := i - a
		if j < 1 || j > c.N {
			continue
		}
		found = true
		prod *= 1 - (1-c.P)*q[j]
	}
	if !found {
		// No in-range dependency: the packet cannot be authenticated
		// through the periodic structure.
		return 0
	}
	return 1 - prod
}

// Q evaluates the recurrence and returns per-packet authentication
// probabilities. With only positive offsets this is a single forward pass;
// with negative offsets the coupled system is solved by monotone
// fixed-point iteration from the all-ones vector (which converges to the
// greatest fixed point, the physically meaningful solution).
func (c Periodic) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := newResult(c.N)
	boundary := c.boundary()
	for i := 1; i <= boundary; i++ {
		res.Q[i] = 1
	}
	if !c.hasNegativeOffset() {
		for i := boundary + 1; i <= c.N; i++ {
			res.Q[i] = c.update(res.Q, i)
		}
		res.finalize()
		return res, nil
	}
	for i := boundary + 1; i <= c.N; i++ {
		res.Q[i] = 1
	}
	for iter := 0; iter < maxFixedPointIters; iter++ {
		maxDelta := 0.0
		for i := boundary + 1; i <= c.N; i++ {
			next := c.update(res.Q, i)
			if d := math.Abs(next - res.Q[i]); d > maxDelta {
				maxDelta = d
			}
			res.Q[i] = next
		}
		if maxDelta < fixedPointTol {
			res.finalize()
			return res, nil
		}
	}
	return Result{}, fmt.Errorf("analysis: fixed point did not converge in %d iterations", maxFixedPointIters)
}

// QMin is a convenience wrapper returning only the block minimum.
func (c Periodic) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}
