package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodicSingleOffsetEqualsRohatgi(t *testing.T) {
	// A = {1} is exactly the Rohatgi chain; the recurrence must
	// reproduce the closed form (modulo the boundary q_2 = 1, which
	// reflects the signature packet carrying P_2's hash directly).
	n, p := 12, 0.3
	res, err := Periodic{N: n, Offsets: []int{1}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= n; i++ {
		want := math.Pow(1-p, float64(i-2))
		if math.Abs(res.Q[i]-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, res.Q[i], want)
		}
	}
}

func TestPeriodicE21InitialConditions(t *testing.T) {
	res, err := Periodic{N: 10, Offsets: []int{1, 2}, P: 0.4}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: q_1 = q_2 = q_3 = 1 for E_{2,1}.
	for i := 1; i <= 3; i++ {
		if res.Q[i] != 1 {
			t.Errorf("Q[%d] = %v, want 1", i, res.Q[i])
		}
	}
	// q_4 = 1 - [1-(1-p)q_3][1-(1-p)q_2] = 1 - p^2.
	want := 1 - 0.4*0.4
	if math.Abs(res.Q[4]-want) > 1e-12 {
		t.Errorf("Q[4] = %v, want %v", res.Q[4], want)
	}
}

func TestPeriodicNoLoss(t *testing.T) {
	res, err := Periodic{N: 100, Offsets: []int{1, 5}, P: 0}.Q()
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin != 1 {
		t.Errorf("QMin with p=0 = %v, want 1", res.QMin)
	}
}

func TestPeriodicTotalLoss(t *testing.T) {
	res, err := Periodic{N: 10, Offsets: []int{1, 2}, P: 1}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the boundary, nothing survives to carry hashes.
	if res.Q[5] != 0 {
		t.Errorf("Q[5] with p=1 = %v, want 0", res.Q[5])
	}
}

func TestPeriodicValidation(t *testing.T) {
	cases := []Periodic{
		{N: 10, Offsets: nil, P: 0.1},
		{N: 10, Offsets: []int{0}, P: 0.1},
		{N: 10, Offsets: []int{10}, P: 0.1},
		{N: 10, Offsets: []int{-10}, P: 0.1},
		{N: 10, Offsets: []int{1, 1}, P: 0.1},
		{N: 10, Offsets: []int{1}, P: 2},
		{N: 0, Offsets: []int{1}, P: 0.1},
	}
	for _, c := range cases {
		if _, err := c.Q(); err == nil {
			t.Errorf("config %+v should fail validation", c)
		}
	}
}

func TestPeriodicMonotoneInP(t *testing.T) {
	prev := 1.0
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		qmin, err := Periodic{N: 200, Offsets: []int{1, 2}, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin > prev+1e-12 {
			t.Errorf("QMin increased when p rose to %v: %v > %v", p, qmin, prev)
		}
		prev = qmin
	}
}

func TestPeriodicQDecreasesFromSignature(t *testing.T) {
	res, err := Periodic{N: 100, Offsets: []int{1, 2}, P: 0.3}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 100; i++ {
		if res.Q[i] > res.Q[i-1]+1e-12 {
			t.Errorf("Q[%d]=%v > Q[%d]=%v: q must not increase away from the signature", i, res.Q[i], i-1, res.Q[i-1])
		}
	}
}

func TestPeriodicNegativeOffsetAddsRobustness(t *testing.T) {
	// Adding a backward dependence (a packet also stores its hash in a
	// packet farther from the signature) adds paths, so q_min must not
	// decrease.
	base, err := Periodic{N: 50, Offsets: []int{1, 2}, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	withBack, err := Periodic{N: 50, Offsets: []int{1, 2, -3}, P: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if withBack < base-1e-9 {
		t.Errorf("negative offset reduced QMin: %v < %v", withBack, base)
	}
}

func TestPeriodicNegativeOffsetsConverge(t *testing.T) {
	res, err := Periodic{N: 300, Offsets: []int{1, -1}, P: 0.2}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		if res.Q[i] < 0 || res.Q[i] > 1 {
			t.Fatalf("Q[%d] = %v outside [0,1]", i, res.Q[i])
		}
	}
}

// Property: q_i always stays within [0,1] for arbitrary valid offset sets.
func TestPeriodicRangeProperty(t *testing.T) {
	f := func(seed uint8, pRaw uint8) bool {
		p := float64(pRaw) / 255
		offsets := []int{1, int(seed%5) + 2}
		res, err := Periodic{N: 80, Offsets: offsets, P: p}.Q()
		if err != nil {
			return false
		}
		for i := 1; i <= 80; i++ {
			if res.Q[i] < 0 || res.Q[i] > 1 || math.IsNaN(res.Q[i]) {
				return false
			}
		}
		return res.QMin >= 0 && res.QMin <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
