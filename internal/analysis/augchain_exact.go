package analysis

import "fmt"

// AugChainExact computes the *exact* per-packet authentication probability
// of the augmented chain C_{a,b} under i.i.d. loss — the counterpart of
// MarkovExact for the two-level topology, with no independence
// approximation.
//
// Method: the first-level chain is the periodic process
// V(x) = R(x) ∧ (V(x-1) ∨ V(x-a)) evaluated exactly by tracking the joint
// distribution of the trailing a chain-verifiability bits; the DP also
// yields the joint law of (V(x), V(x+1)) for every segment. An inserted
// packet (x, y) is verifiable iff it is received and either its segment's
// chain packet is verifiable, or the whole run of inserted packets
// (x, y+1..b) survives to a verifiable next chain packet:
//
//	q(x,y) = P(V(x)) + P(¬V(x) ∧ V(x+1)) · (1-p)^(b-y)
//
// which is exact because inserted-packet receptions are independent of the
// chain bits under i.i.d. loss.
//
// The block must end on a chain-packet boundary (n ≡ 1 mod b+1, see
// AlignN); unaligned tails would leave dangling inserted packets whose
// exact treatment differs from any real deployment.
type AugChainExact struct {
	N int
	A int
	B int
	P float64
}

// Validate checks the parameters.
func (c AugChainExact) Validate() error {
	base := AugChain{N: c.N, A: c.A, B: c.B, P: c.P}
	if err := base.Validate(); err != nil {
		return err
	}
	if (c.N-1)%(c.B+1) != 0 {
		return fmt.Errorf("analysis: exact augmented chain needs n ≡ 1 mod b+1 (got n=%d, b=%d); use AlignN", c.N, c.B)
	}
	if c.A > maxMarkovWindow {
		return fmt.Errorf("analysis: chain window %d exceeds limit %d", c.A, maxMarkovWindow)
	}
	return nil
}

// Q evaluates the exact probabilities, indexed like AugChain (reversed
// linear order, signature packet = 1).
func (c AugChainExact) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	segments := (c.N-1)/(c.B+1) + 1 // chain packets x = 0..segments-1
	res := newResult(c.N)
	index := func(x, y int) int { return x*(c.B+1) + y + 1 }
	recv := 1 - c.P

	// Chain-level DP over x = 1..segments-1 (x = 0 is the root).
	// State: bit j holds V(x-j) for the a most recent chain packets.
	// Boundary: V(x) = R(x) for x <= a (direct root edges).
	window := c.A
	states := 1 << window
	mask := states - 1
	dist := make([]float64, states)

	// pVCur[x] = P(V(x)); pNotCurAndNext[x] = P(¬V(x) ∧ V(x+1)).
	pVCur := make([]float64, segments)
	pNotCurAndNext := make([]float64, segments)
	pVCur[0] = 1
	res.Q[index(0, 0)] = 1

	boundary := c.A
	if boundary > segments-1 {
		boundary = segments - 1
	}
	// Initialize the window with the boundary chain packets x = 1..a
	// (independent Bernoulli). Track P(V) along the way.
	for s := 0; s < states; s++ {
		prob := 1.0
		for j := 0; j < window; j++ {
			x := boundary - j
			bit := s&(1<<j) != 0
			switch {
			case x >= 1 && bit:
				prob *= recv
			case x >= 1 && !bit:
				prob *= c.P
			case x < 1 && bit:
				// Slot for the root (or before it): pin to 1.
				prob *= 1
			default:
				prob = 0
			}
		}
		dist[s] = prob
	}
	for x := 1; x <= boundary; x++ {
		pVCur[x] = recv
		res.Q[index(x, 0)] = 1
	}

	next := make([]float64, states)
	for x := boundary + 1; x < segments; x++ {
		for s := range next {
			next[s] = 0
		}
		var pv float64           // P(V(x))
		var pNotPrevAndV float64 // P(¬V(x-1) ∧ V(x))
		for s, prob := range dist {
			if prob == 0 {
				continue
			}
			prev1 := s&1 != 0            // V(x-1)
			prevA := s&(1<<(c.A-1)) != 0 // V(x-a)
			reachable := prev1 || prevA
			if reachable {
				pv += prob * recv
				if !prev1 {
					pNotPrevAndV += prob * recv
				}
				next[(s<<1|1)&mask] += prob * recv
				next[(s<<1)&mask] += prob * c.P
			} else {
				next[(s<<1)&mask] += prob
			}
		}
		pVCur[x] = pv
		pNotCurAndNext[x-1] = pNotPrevAndV
		res.Q[index(x, 0)] = pv / recv
		dist, next = next, dist
	}
	// Boundary joints: for x < boundary, V(x+1) = R(x+1) independent of
	// V(x), so P(¬V(x) ∧ V(x+1)) factorizes.
	for x := 0; x < boundary; x++ {
		pNotCurAndNext[x] = (1 - pVCur[x]) * recv
	}
	// The root's successor: P(¬V(0)) = 0, handled by pVCur[0] = 1 above
	// (pNotCurAndNext[0] stays correct: (1-1)*recv = 0 when boundary>0).

	// Inserted packets.
	for x := 0; x < segments-1; x++ {
		for y := 1; y <= c.B; y++ {
			escape := pNotCurAndNext[x]
			for k := 0; k < c.B-y; k++ {
				escape *= recv
			}
			res.Q[index(x, y)] = pVCur[x] + escape
		}
	}
	res.finalize()
	return res, nil
}

// QMin returns the exact minimum authentication probability.
func (c AugChainExact) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}
