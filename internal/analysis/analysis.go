// Package analysis implements the paper's analytic evaluators for the
// authentication probability of the studied schemes: the Rohatgi closed
// form (Section 3 example), the TESLA formula under the Gaussian delay
// model (Equations 6-7), the EMSS recurrence and its generalization to any
// periodic hash-chaining topology (Equations 8-9), and the two-level
// augmented-chain recurrence (Equation 10).
//
// Packet indices follow the paper's Section 4.2 convention: indices are
// reversed so that the signature packet is P_1 and packets sent earlier
// have higher indices. q_i is then computed toward increasing i.
package analysis

import (
	"fmt"
	"math"
)

// Result carries per-packet authentication probabilities under the reversed
// indexing, plus the block minimum.
type Result struct {
	// Q[i] is q_i for i in 1..N; Q[0] is NaN.
	Q []float64
	// QMin is the minimum q_i over the block, the paper's headline
	// metric.
	QMin float64
}

func newResult(n int) Result {
	q := make([]float64, n+1)
	q[0] = math.NaN()
	return Result{Q: q, QMin: 1}
}

func (r *Result) finalize() {
	for i := 1; i < len(r.Q); i++ {
		if r.Q[i] < r.QMin {
			r.QMin = r.Q[i]
		}
	}
}

func validateNP(n int, p float64) error {
	if n < 1 {
		return fmt.Errorf("analysis: block size %d must be >= 1", n)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("analysis: loss probability %v out of [0,1]", p)
	}
	return nil
}

// Rohatgi evaluates the simple hash chain of Gennaro-Rohatgi: a single
// path, so q_i = (1-p)^(i-2) (every packet strictly between P_i and the
// signature packet must survive) and q_min = (1-p)^(n-2).
func Rohatgi(n int, p float64) (Result, error) {
	if err := validateNP(n, p); err != nil {
		return Result{}, err
	}
	res := newResult(n)
	res.Q[1] = 1
	for i := 2; i <= n; i++ {
		res.Q[i] = math.Pow(1-p, float64(i-2))
	}
	res.finalize()
	return res, nil
}

// AuthTree evaluates the Wong-Lam authentication tree: every packet carries
// its full authentication information, so q_i = 1 regardless of loss.
func AuthTree(n int, p float64) (Result, error) {
	if err := validateNP(n, p); err != nil {
		return Result{}, err
	}
	res := newResult(n)
	for i := 1; i <= n; i++ {
		res.Q[i] = 1
	}
	res.finalize()
	return res, nil
}

// AuthTreeHashesPerPacket returns the number of hashes each packet carries
// in a balanced binary authentication tree over n packets: the sibling
// hashes along the root path, ceil(log2 n).
func AuthTreeHashesPerPacket(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
