package analysis

import (
	"fmt"
	"math"
)

// EMSS describes an E_{m,d} scheme: each packet relies on the M previous
// packets (in reversed indexing) at offsets D, 2D, ..., M*D, i.e. each of
// the M dependencies is separated by D-1 packets. E_{2,1} is the scheme of
// the paper's Figure 1 and Equation (8).
type EMSS struct {
	N int
	M int
	D int
	P float64
}

// Validate checks the parameters.
func (c EMSS) Validate() error {
	if err := validateNP(c.N, c.P); err != nil {
		return err
	}
	if c.M < 1 {
		return fmt.Errorf("analysis: EMSS m=%d must be >= 1", c.M)
	}
	if c.D < 1 {
		return fmt.Errorf("analysis: EMSS d=%d must be >= 1", c.D)
	}
	if c.M*c.D >= c.N {
		return fmt.Errorf("analysis: EMSS m*d=%d must be < n=%d", c.M*c.D, c.N)
	}
	return nil
}

// Offsets returns the dependence offsets {D, 2D, ..., M*D}.
func (c EMSS) Offsets() []int {
	offsets := make([]int, c.M)
	for k := 1; k <= c.M; k++ {
		offsets[k-1] = k * c.D
	}
	return offsets
}

// Q evaluates the EMSS recurrence (Equations 8-9).
func (c EMSS) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	periodic := Periodic{N: c.N, Offsets: c.Offsets(), P: c.P}
	return periodic.Q()
}

// QMin returns the minimum authentication probability.
func (c EMSS) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}

// FixedPoint returns the large-n limit q* of the E_{m,1}-style recurrence,
// obtained by solving q = 1 - (1 - (1-p)q)^m numerically. For E_{2,1} it
// has the closed form q* = (1-2p)/(1-p)^2 (clamped to [0,1]), against which
// the numeric solution is tested.
func (c EMSS) FixedPoint() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	g := func(q float64) float64 {
		return 1 - math.Pow(1-(1-c.P)*q, float64(c.M))
	}
	// The map is monotone increasing on [0,1]; iterate from 1 to reach
	// the greatest fixed point.
	q := 1.0
	for i := 0; i < maxFixedPointIters; i++ {
		next := g(q)
		if math.Abs(next-q) < fixedPointTol {
			return next, nil
		}
		q = next
	}
	return q, nil
}

// ClosedFormLowerBoundE21 is the paper's closed-form lower bound for
// E_{2,1}: q_min >= 1 - p/(1-p), clamped to [0,1]. It is only informative
// for p < 1/2.
func ClosedFormLowerBoundE21(p float64) float64 {
	if p >= 1 {
		return 0
	}
	bound := 1 - p/(1-p)
	if bound < 0 {
		return 0
	}
	return bound
}
