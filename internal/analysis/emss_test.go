package analysis

import (
	"math"
	"testing"
)

func TestEMSSOffsets(t *testing.T) {
	c := EMSS{N: 100, M: 3, D: 4, P: 0.1}
	got := c.Offsets()
	want := []int{4, 8, 12}
	if len(got) != len(want) {
		t.Fatalf("Offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Offsets = %v, want %v", got, want)
		}
	}
}

func TestEMSSValidation(t *testing.T) {
	cases := []EMSS{
		{N: 100, M: 0, D: 1, P: 0.1},
		{N: 100, M: 2, D: 0, P: 0.1},
		{N: 10, M: 5, D: 2, P: 0.1}, // m*d >= n
		{N: 100, M: 2, D: 1, P: -1}, // bad p
		{N: 0, M: 1, D: 1, P: 0.1},  // bad n
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestEMSSE21MatchesExplicitRecurrence(t *testing.T) {
	// Hand-roll Equation (8) and compare.
	n, p := 50, 0.3
	res, err := EMSS{N: n, M: 2, D: 1, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, n+1)
	q[1], q[2], q[3] = 1, 1, 1
	for i := 4; i <= n; i++ {
		q[i] = 1 - (1-(1-p)*q[i-1])*(1-(1-p)*q[i-2])
	}
	for i := 1; i <= n; i++ {
		if math.Abs(res.Q[i]-q[i]) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, res.Q[i], q[i])
		}
	}
}

func TestEMSSLevelsOffInM(t *testing.T) {
	// Paper, Figure 7: performance levels off once m exceeds 2-4.
	// (At p = 0.5 the E_{2,1} fixed point is exactly 0, so use p = 0.3
	// where the leveling is visible.)
	p := 0.3
	qmins := make([]float64, 0, 6)
	for m := 1; m <= 6; m++ {
		qmin, err := EMSS{N: 1000, M: m, D: 1, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		qmins = append(qmins, qmin)
	}
	// Monotone in m.
	for i := 1; i < len(qmins); i++ {
		if qmins[i] < qmins[i-1]-1e-9 {
			t.Errorf("QMin decreased with m: %v", qmins)
		}
	}
	// Big jump from m=1 to m=2, small from m=4 to m=6.
	jump12 := qmins[1] - qmins[0]
	jump46 := qmins[5] - qmins[3]
	if jump12 < 10*jump46 {
		t.Errorf("expected leveling off: jump m1->m2 = %v, m4->m6 = %v", jump12, jump46)
	}
}

func TestEMSSInsensitiveToD(t *testing.T) {
	// Paper, Figure 7: q_min is much less sensitive to d than to m as
	// long as the change in d stays below ~20%% of n.
	p := 0.3
	base, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	spread, err := EMSS{N: 1000, M: 2, D: 20, P: p}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spread-base) > 0.05 {
		t.Errorf("d=1 vs d=20 QMin moved too much: %v vs %v", base, spread)
	}
}

func TestEMSSFixedPointClosedFormE21(t *testing.T) {
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4} {
		fp, err := EMSS{N: 1000, M: 2, D: 1, P: p}.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		want := (1 - 2*p) / ((1 - p) * (1 - p))
		if math.Abs(fp-want) > 1e-9 {
			t.Errorf("p=%v: fixed point %v, want %v", p, fp, want)
		}
		// The deep-block q_min approaches the fixed point.
		qmin, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qmin-fp) > 1e-6 {
			t.Errorf("p=%v: QMin %v far from fixed point %v", p, qmin, fp)
		}
	}
}

func TestEMSSClosedFormLowerBound(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.45} {
		bound := ClosedFormLowerBoundE21(p)
		qmin, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin < bound-1e-9 {
			t.Errorf("p=%v: QMin %v below paper bound %v", p, qmin, bound)
		}
	}
	if ClosedFormLowerBoundE21(0.6) != 0 {
		t.Error("bound should clamp to 0 for p > 1/2")
	}
	if ClosedFormLowerBoundE21(1) != 0 {
		t.Error("bound at p=1 should be 0")
	}
}
