package analysis

import (
	"math"
	"testing"

	"mcauth/internal/stats"
)

func TestTESLAXi(t *testing.T) {
	c := TESLA{N: 1000, P: 0.1, TDisc: 1.0, Mu: 0.5, Sigma: 0.25}
	want := stats.NormalCDF(1.0, 0.5, 0.25)
	if got := c.Xi(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Xi = %v, want %v", got, want)
	}
}

func TestTESLAQMinEquation7(t *testing.T) {
	c := TESLA{N: 1000, P: 0.2, TDisc: 1.0, Mu: 0.3, Sigma: 0.1}
	qmin, err := c.QMin()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 * stats.NormalCDF(1.0, 0.3, 0.1)
	if math.Abs(qmin-want) > 1e-12 {
		t.Errorf("QMin = %v, want %v", qmin, want)
	}
}

func TestTESLAQShape(t *testing.T) {
	c := TESLA{N: 100, P: 0.3, TDisc: 2.0, Mu: 0.5, Sigma: 0.2}
	res, err := c.Q()
	if err != nil {
		t.Fatal(err)
	}
	// λ_i shrinks toward the end of the chain (fewer later packets can
	// disclose the key), so q_i is non-increasing in i.
	for i := 2; i <= 100; i++ {
		if res.Q[i] > res.Q[i-1]+1e-12 {
			t.Errorf("Q[%d] = %v > Q[%d] = %v", i, res.Q[i], i-1, res.Q[i-1])
		}
	}
	// The last packet's q equals the closed-form q_min.
	qmin, err := c.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Q[100]-qmin) > 1e-12 {
		t.Errorf("Q[n] = %v, want QMin %v", res.Q[100], qmin)
	}
	if math.Abs(res.QMin-qmin) > 1e-12 {
		t.Errorf("res.QMin = %v, want %v", res.QMin, qmin)
	}
}

func TestTESLARobustToLossWithAmpleDisclosure(t *testing.T) {
	// Paper: with TDisc >> mu, sigma, TESLA degrades only as (1-p).
	c := TESLA{N: 1000, P: 0.5, TDisc: 10, Mu: 0.5, Sigma: 0.1}
	qmin, err := c.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qmin-0.5) > 1e-9 {
		t.Errorf("QMin = %v, want ~0.5 = 1-p", qmin)
	}
}

func TestTESLACollapsesWhenDisclosureTooShort(t *testing.T) {
	// TDisc far below the mean delay: almost every packet arrives after
	// its key has been disclosed and must be dropped.
	c := TESLA{N: 1000, P: 0.1, TDisc: 0.2, Mu: 1.0, Sigma: 0.1}
	qmin, err := c.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if qmin > 1e-6 {
		t.Errorf("QMin = %v, want ~0", qmin)
	}
}

func TestTESLAMonotoneInTDisc(t *testing.T) {
	prev := -1.0
	for _, td := range []float64{0.5, 1, 2, 4} {
		qmin, err := TESLA{N: 1000, P: 0.1, TDisc: td, Mu: 0.8, Sigma: 0.3}.QMin()
		if err != nil {
			t.Fatal(err)
		}
		if qmin < prev-1e-12 {
			t.Errorf("QMin fell as TDisc rose to %v", td)
		}
		prev = qmin
	}
}

func TestTESLAWithAlpha(t *testing.T) {
	c, err := TESLAWithAlpha(1000, 0.1, 1.0, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mu-0.5) > 1e-12 {
		t.Errorf("Mu = %v, want 0.5", c.Mu)
	}
	if _, err := TESLAWithAlpha(1000, 0.1, 1.0, 1.5, 0.2); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := TESLAWithAlpha(1000, 0.1, 1.0, -0.1, 0.2); err == nil {
		t.Error("negative alpha should fail")
	}
}

func TestTESLAValidation(t *testing.T) {
	cases := []TESLA{
		{N: 0, P: 0.1, TDisc: 1},
		{N: 10, P: -0.1, TDisc: 1},
		{N: 10, P: 0.1, TDisc: -1},
		{N: 10, P: 0.1, TDisc: 1, Mu: -1},
		{N: 10, P: 0.1, TDisc: 1, Sigma: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestTESLAQWithXi(t *testing.T) {
	// With xi = Phi((TDisc-Mu)/Sigma) the external-xi path must agree
	// with the built-in Gaussian path exactly.
	c := TESLA{N: 50, P: 0.25, TDisc: 1.0, Mu: 0.4, Sigma: 0.15}
	builtin, err := c.Q()
	if err != nil {
		t.Fatal(err)
	}
	external, err := c.QWithXi(c.Xi())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if math.Abs(builtin.Q[i]-external.Q[i]) > 1e-12 {
			t.Errorf("Q[%d]: %v vs %v", i, builtin.Q[i], external.Q[i])
		}
	}
	qmin, err := c.QMinWithXi(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qmin-0.75*0.5) > 1e-12 {
		t.Errorf("QMinWithXi = %v, want 0.375", qmin)
	}
	if _, err := c.QWithXi(1.5); err == nil {
		t.Error("xi > 1 should fail")
	}
	if _, err := c.QMinWithXi(-0.1); err == nil {
		t.Error("negative xi should fail")
	}
}

func TestTESLABeatsChainedSchemesAtHighLoss(t *testing.T) {
	// Paper, Figure 8: at large p TESLA is significantly better than
	// EMSS/AC given a generous disclosure delay.
	p := 0.5
	tesla, err := TESLA{N: 1000, P: p, TDisc: 5, Mu: 0.5, Sigma: 0.2}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	emss, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if tesla <= emss {
		t.Errorf("at p=0.5 TESLA (%v) should beat EMSS (%v)", tesla, emss)
	}
}

func TestEMSSBeatsTESLAAtLowLoss(t *testing.T) {
	// Paper, Figure 8: EMSS/AC can outperform TESLA at small p (TESLA
	// pays the timing factor xi < 1).
	p := 0.02
	tesla, err := TESLA{N: 1000, P: p, TDisc: 1, Mu: 0.8, Sigma: 0.3}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	emss, err := EMSS{N: 1000, M: 2, D: 1, P: p}.QMin()
	if err != nil {
		t.Fatal(err)
	}
	if emss <= tesla {
		t.Errorf("at p=0.02 EMSS (%v) should beat TESLA with tight TDisc (%v)", emss, tesla)
	}
}
