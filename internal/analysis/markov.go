package analysis

import "fmt"

// MarkovExact computes the *exact* per-packet authentication probability of
// a positive-offset periodic topology under i.i.d. loss, by tracking the
// joint distribution of the verifiability of the last max(Offsets) packets
// as a Markov chain.
//
// The paper's recurrence (Equation 9) multiplies per-path survival terms as
// if they were independent, but the verifiability events V_{i-a} of nearby
// packets are positively correlated (they share upstream paths), so the
// recurrence overestimates q_i — increasingly so far from the signature
// packet. In fact the exact process has an absorbing failure state: for
// E_{2,1}, two consecutive unverifiable packets break the chain for the
// remainder of the block, so the exact q_i decays to zero geometrically
// while the recurrence converges to a positive fixed point. MarkovExact
// quantifies that gap (see EXPERIMENTS.md); the recurrence remains the
// paper's model and is what the figures reproduce.
//
// Boundary semantics match the runnable constructions: the signature packet
// directly carries the hashes of the first max(Offsets) packets after it,
// so V_i = R_i (verifiable iff received) for reversed indices
// i <= max(Offsets)+1, and q_i = 1 there.
type MarkovExact struct {
	N       int
	Offsets []int
	P       float64
}

// maxMarkovWindow caps the state space at 2^16 states.
const maxMarkovWindow = 16

// Validate checks the parameters.
func (c MarkovExact) Validate() error {
	if err := validateNP(c.N, c.P); err != nil {
		return err
	}
	if len(c.Offsets) == 0 {
		return fmt.Errorf("analysis: markov evaluator needs at least one offset")
	}
	seen := make(map[int]bool, len(c.Offsets))
	maxA := 0
	for _, a := range c.Offsets {
		if a < 1 {
			return fmt.Errorf("analysis: markov evaluator requires positive offsets, got %d", a)
		}
		if seen[a] {
			return fmt.Errorf("analysis: duplicate offset %d", a)
		}
		seen[a] = true
		if a > maxA {
			maxA = a
		}
	}
	if maxA > maxMarkovWindow {
		return fmt.Errorf("analysis: markov window %d exceeds limit %d", maxA, maxMarkovWindow)
	}
	return nil
}

// Q evaluates the exact authentication probabilities.
func (c MarkovExact) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	maxA := 0
	for _, a := range c.Offsets {
		if a > maxA {
			maxA = a
		}
	}
	res := newResult(c.N)
	boundary := maxA + 1
	if boundary > c.N {
		boundary = c.N
	}
	for i := 1; i <= boundary; i++ {
		res.Q[i] = 1
	}
	if c.N <= boundary {
		res.finalize()
		return res, nil
	}

	// State: bit j (0-based) holds V_{i-1-j} after processing index i.
	// After the boundary (i = maxA+1), the window covers indices
	// boundary .. boundary-maxA+1 = 2 .. maxA+1, each verifiable iff
	// received: independent Bernoulli(1-p). (Index 1 is the signature
	// packet, outside the window since V_1 = 1 plays no role beyond the
	// boundary given the direct root edges.)
	states := 1 << maxA
	mask := states - 1
	dist := make([]float64, states)
	recv := 1 - c.P
	for s := 0; s < states; s++ {
		prob := 1.0
		for j := 0; j < maxA; j++ {
			if s&(1<<j) != 0 {
				prob *= recv
			} else {
				prob *= c.P
			}
		}
		dist[s] = prob
	}

	next := make([]float64, states)
	for i := boundary + 1; i <= c.N; i++ {
		for s := range next {
			next[s] = 0
		}
		var qi float64
		for s, prob := range dist {
			if prob == 0 {
				continue
			}
			reachable := false
			for _, a := range c.Offsets {
				if s&(1<<(a-1)) != 0 {
					reachable = true
					break
				}
			}
			if reachable {
				qi += prob
				next[(s<<1|1)&mask] += prob * recv
				next[(s<<1)&mask] += prob * c.P
			} else {
				next[(s<<1)&mask] += prob
			}
		}
		res.Q[i] = qi
		dist, next = next, dist
	}
	res.finalize()
	return res, nil
}

// QMin returns the exact minimum authentication probability.
func (c MarkovExact) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}
