package analysis

import "fmt"

// AugChain describes a Golle-Modadugu augmented chain C_{a,b} (the paper's
// Section 2.2 and Equation 10). In reversed indexing the signature packet
// is P_1 and is also the first first-level chain packet. Packets are
// labeled P(x,y): x indexes the chain segment and y in [0,B] the position
// within it, with linear index i = x*(B+1) + y + 1. y = 0 is a first-level
// chain packet; y in [1,B] are the second-phase inserted packets.
//
// Dependencies (Equation 10):
//
//	q(x,0): on q(x-1,0) and q(x-A,0); q(x,0)=1 for x <= A (the signature
//	        packet directly covers the first A chain packets).
//	q(x,y), y<B: on q(x,y+1) and q(x,0).
//	q(x,B):      on q(x+1,0) and q(x,0).
//
// Partial trailing segments degrade gracefully: a missing dependency simply
// drops out of the product.
type AugChain struct {
	N int
	A int
	B int
	P float64
}

// Validate checks the parameters.
func (c AugChain) Validate() error {
	if err := validateNP(c.N, c.P); err != nil {
		return err
	}
	if c.A < 1 {
		return fmt.Errorf("analysis: augmented chain a=%d must be >= 1", c.A)
	}
	if c.B < 1 {
		return fmt.Errorf("analysis: augmented chain b=%d must be >= 1", c.B)
	}
	if c.N < c.B+2 {
		return fmt.Errorf("analysis: augmented chain needs n >= b+2, got n=%d b=%d", c.N, c.B)
	}
	return nil
}

// Segments returns the number of chain segments (complete or partial).
func (c AugChain) Segments() int {
	return (c.N-1)/(c.B+1) + 1
}

// index maps grid coordinates to the reversed linear packet index.
func (c AugChain) index(x, y int) int {
	return x*(c.B+1) + y + 1
}

// exists reports whether grid position (x, y) falls inside the block.
func (c AugChain) exists(x, y int) bool {
	idx := c.index(x, y)
	return idx >= 1 && idx <= c.N
}

// Q evaluates the two-level recurrence.
func (c AugChain) Q() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := newResult(c.N)
	segments := c.Segments()
	// Level 1: the chain packets q(x,0), solved first.
	chain := make([]float64, segments)
	for x := 0; x < segments; x++ {
		if !c.exists(x, 0) {
			// Cannot happen given Segments(), but keep the guard.
			break
		}
		if x <= c.A {
			chain[x] = 1
			continue
		}
		broken := 1.0
		broken *= 1 - (1-c.P)*chain[x-1]
		broken *= 1 - (1-c.P)*chain[x-c.A]
		chain[x] = 1 - broken
	}
	for x := 0; x < segments; x++ {
		if c.exists(x, 0) {
			res.Q[c.index(x, 0)] = chain[x]
		}
	}
	// Level 2: inserted packets, y descending so q(x,y+1) is available.
	for x := 0; x < segments; x++ {
		for y := c.B; y >= 1; y-- {
			if !c.exists(x, y) {
				continue
			}
			broken := 1.0
			if y == c.B {
				if x+1 < segments && c.exists(x+1, 0) {
					broken *= 1 - (1-c.P)*chain[x+1]
				}
			} else if c.exists(x, y+1) {
				broken *= 1 - (1-c.P)*res.Q[c.index(x, y+1)]
			}
			broken *= 1 - (1-c.P)*chain[x]
			res.Q[c.index(x, y)] = 1 - broken
		}
	}
	res.finalize()
	return res, nil
}

// QMin returns the minimum authentication probability.
func (c AugChain) QMin() (float64, error) {
	res, err := c.Q()
	if err != nil {
		return 0, err
	}
	return res.QMin, nil
}

// NForLevel1Length returns the block size n that yields the given number of
// first-level chain packets, used by Figure 6 where the first-level length
// is held constant while b varies.
func NForLevel1Length(level1, b int) int {
	return (level1-1)*(b+1) + 1
}

// AlignN returns the smallest block size >= n that ends on a chain-packet
// boundary for the given b (n ≡ 1 mod b+1). Unaligned blocks leave the
// final (earliest-sent) segment's inserted packets with a single
// dependency, which artificially depresses q_min; real deployments cut
// blocks at chain boundaries.
func AlignN(n, b int) int {
	seg := b + 1
	if n < seg+1 {
		return seg + 1
	}
	if (n-1)%seg == 0 {
		return n
	}
	return ((n-1)/seg+1)*seg + 1
}
