// Package schemetest provides conformance checks shared by the tests of
// every runnable scheme: wire-format sanity, full in-order authentication,
// graph well-formedness, and a tampering sweep asserting that no forged
// payload is ever emitted as authentic.
package schemetest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

// Clock maps a wire index (1-based) to that packet's receiver arrival time.
type Clock func(wireIndex int) time.Time

// FixedClock is a Clock for schemes that ignore time.
func FixedClock(int) time.Time { return time.Unix(0, 0) }

// Payloads generates deterministic distinct payloads for a block.
func Payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%04d", i))
	}
	return out
}

// DeliverAll authenticates a block and feeds every wire packet, in order,
// to a fresh verifier. It returns all authentication events.
func DeliverAll(t *testing.T, s scheme.Scheme, blockID uint64, payloads [][]byte, clock Clock) []verifier.Event {
	t.Helper()
	pkts, err := s.Authenticate(blockID, payloads)
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	var events []verifier.Event
	for w, p := range pkts {
		evs, err := v.Ingest(p, clock(w+1))
		if err != nil {
			t.Fatalf("Ingest wire %d: %v", w+1, err)
		}
		events = append(events, evs...)
	}
	return events
}

// Conformance runs the shared checks against a scheme.
func Conformance(t *testing.T, s scheme.Scheme, clock Clock) {
	t.Helper()
	n := s.BlockSize()
	payloads := Payloads(n)

	t.Run("wire", func(t *testing.T) {
		pkts, err := s.Authenticate(1, payloads)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != s.WireCount() {
			t.Fatalf("got %d wire packets, want %d", len(pkts), s.WireCount())
		}
		seen := make(map[uint32]bool, len(pkts))
		for _, p := range pkts {
			if seen[p.Index] {
				t.Fatalf("duplicate wire index %d", p.Index)
			}
			seen[p.Index] = true
			wire, err := p.Encode()
			if err != nil {
				t.Fatalf("Encode index %d: %v", p.Index, err)
			}
			back, err := packet.Decode(wire)
			if err != nil {
				t.Fatalf("Decode index %d: %v", p.Index, err)
			}
			if back.Digest() != p.Digest() {
				t.Fatalf("round trip changed digest of index %d", p.Index)
			}
		}
	})

	t.Run("authenticate_all", func(t *testing.T) {
		events := DeliverAll(t, s, 2, payloads, clock)
		got := make(map[string]bool, len(events))
		for _, e := range events {
			got[string(e.Payload)] = true
		}
		for i, payload := range payloads {
			if !got[string(payload)] {
				t.Errorf("payload %d never authenticated", i)
			}
		}
	})

	t.Run("graph", func(t *testing.T) {
		g, err := s.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("graph invalid: %v", err)
		}
	})

	t.Run("tamper_sweep", func(t *testing.T) {
		pkts, err := s.Authenticate(3, payloads)
		if err != nil {
			t.Fatal(err)
		}
		for tampered := range pkts {
			if len(pkts[tampered].Payload) == 0 {
				continue
			}
			v, err := s.NewVerifier()
			if err != nil {
				t.Fatal(err)
			}
			evil := *pkts[tampered]
			evil.Payload = append([]byte(nil), evil.Payload...)
			evil.Payload[0] ^= 0xff
			for w, p := range pkts {
				deliver := p
				if w == tampered {
					deliver = &evil
				}
				evs, err := v.Ingest(deliver, clock(w+1))
				if err != nil {
					t.Fatalf("tamper %d ingest %d: %v", tampered, w+1, err)
				}
				for _, e := range evs {
					if bytes.Equal(e.Payload, evil.Payload) {
						t.Fatalf("forged payload of wire %d authenticated", tampered)
					}
				}
			}
		}
	})
}
