package schemetest

import (
	"testing"
	"time"

	"mcauth/internal/delay"
	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/scheme"
)

// SweepParams wires a scheme into the simulated network for
// CorruptionSweep. The zero value works for clock-free schemes; TESLA
// needs Interval and Start matching its disclosure schedule.
type SweepParams struct {
	// Reliable lists the signature/bootstrap wire indices; with the
	// sweep's retransmission enabled they are re-sent, not magically
	// delivered.
	Reliable []uint32
	// Interval is the send spacing (default 10ms).
	Interval time.Duration
	// Start is the first packet's send time (default t=5000s).
	Start time.Time
}

// CorruptionSweep extends the in-process tampering sweep end-to-end: the
// scheme runs through netsim's lossy, reordering channel with corruption,
// truncation and wrong-key forgery faults injected, across several seeds.
// It asserts the two properties every scheme must keep under an active
// adversary: no forged payload ever authenticates, and the genuine stream
// still makes progress.
func CorruptionSweep(t *testing.T, s scheme.Scheme, params SweepParams) {
	t.Helper()
	if params.Interval <= 0 {
		params.Interval = 10 * time.Millisecond
	}
	if params.Start.IsZero() {
		params.Start = time.Unix(5000, 0)
	}
	lossModel, err := loss.NewBernoulli(0.05)
	if err != nil {
		t.Fatal(err)
	}
	corrupting := fault.Config{CorruptRate: 0.05, TruncateRate: 0.03}
	forging := fault.Config{ForgeRate: 0.08}
	cases := []struct {
		name string
		fc   fault.Config
	}{
		{"corruption", corrupting},
		{"forgery", forging},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(11); seed <= 13; seed++ {
				fc := tc.fc
				cfg := netsim.Config{
					Receivers:       6,
					Loss:            lossModel,
					Delay:           delay.Constant{D: 2 * time.Millisecond},
					SendInterval:    params.Interval,
					Start:           params.Start,
					Seed:            seed,
					ReliableIndices: params.Reliable,
					SigRetransmits:  2,
					Faults:          &fc,
					MaxBuffered:     64,
				}
				res, err := netsim.Run(s, cfg, 1, Payloads(s.BlockSize()))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				ft := res.FaultTotals()
				if ft.ForgedAuthenticated != 0 {
					t.Errorf("seed %d: %d forged payloads authenticated end-to-end",
						seed, ft.ForgedAuthenticated)
				}
				if res.TotalAuthenticated() == 0 {
					t.Errorf("seed %d: adversarial channel stopped the genuine stream", seed)
				}
			}
		})
	}
}
