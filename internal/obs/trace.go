package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType names one step of a packet's lifecycle. The set mirrors the
// paper's receiver model: a packet is sent, then per receiver either
// dropped by the channel or delivered (possibly out of order), then inside
// the verifier it is buffered awaiting authentication information,
// authenticated, rejected as tampered, dropped as TESLA-unsafe, or
// discarded on message-buffer overflow.
type EventType string

const (
	EventSent            EventType = "sent"
	EventDropped         EventType = "dropped"
	EventDelivered       EventType = "delivered"
	EventMsgBuffered     EventType = "msg_buffered"
	EventHashBuffered    EventType = "hash_buffered"
	EventAuthenticated   EventType = "authenticated"
	EventRejected        EventType = "rejected"
	EventUnsafe          EventType = "unsafe"
	EventOverflowDropped EventType = "overflow_dropped"
	// Adversarial-channel events (fault injection): the channel mutated a
	// delivery in flight, injected a fabricated packet, or the verifier
	// rejected a known-forged packet. A forged packet *authenticating*
	// has no event — it is an invariant violation surfaced by the run's
	// counters, never a normal lifecycle step.
	EventCorrupted      EventType = "corrupted"
	EventForgedInjected EventType = "forged_injected"
	EventForgedRejected EventType = "forged_rejected"
)

// Event is one JSONL trace record. Zero-valued optional fields are elided
// from the encoding.
type Event struct {
	Type EventType `json:"type"`
	// Receiver attributes the event to one simulated receiver (0-based);
	// -1 marks source-side events (sent).
	Receiver int `json:"recv"`
	// Wire is the 1-based send position of the packet on the wire.
	Wire int `json:"wire,omitempty"`
	// Index is the packet's authentication index (packet.Packet.Index).
	Index uint32 `json:"index,omitempty"`
	// Block is the packet's block ID.
	Block uint64 `json:"block,omitempty"`
	// TimeNS is the event's (simulated or wall) time, nanoseconds since
	// the Unix epoch.
	TimeNS int64 `json:"t_ns,omitempty"`
	// LatencyNS is, for authenticated events, the arrival-to-
	// authentication delay — the paper's receiver delay, measured.
	LatencyNS int64 `json:"latency_ns,omitempty"`
	// Depth is the buffer depth after a buffering transition.
	Depth int `json:"depth,omitempty"`
	// OutOfOrder marks a delivery that overtook a later-sent packet.
	OutOfOrder bool `json:"ooo,omitempty"`
	// Reason qualifies drops: "loss" (channel), "late_join" (receiver
	// not yet subscribed), or — under fault injection — "corrupted" /
	// "truncated" (the mutation left the datagram undecodable).
	Reason string `json:"reason,omitempty"`
}

// Tracer consumes lifecycle events. Implementations must be safe for
// concurrent Emit calls (netsim receivers run in parallel). Instrumented
// code holds a Tracer and checks it against nil before building an Event,
// so a disabled trace costs one predictable branch.
type Tracer interface {
	Emit(e Event)
}

// ReceiverTracer stamps every event with a fixed receiver ID before
// forwarding, so per-receiver components (verifiers) need not know which
// receiver they serve.
type ReceiverTracer struct {
	T        Tracer
	Receiver int
}

// Emit implements Tracer.
func (rt ReceiverTracer) Emit(e Event) {
	e.Receiver = rt.Receiver
	rt.T.Emit(e)
}

// JSONLTracer writes one JSON object per line. Emit is mutex-serialized;
// Close flushes and reports the first write error encountered.
type JSONLTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	n      int64
	err    error
}

// NewJSONLTracer wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Events returns the number of events written so far.
func (t *JSONLTracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes buffered output (closing the underlying writer if it is a
// Closer) and returns the first error hit during the trace's lifetime.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.closer != nil {
		if cerr := t.closer.Close(); t.err == nil {
			t.err = cerr
		}
		t.closer = nil
	}
	return t.err
}

// ReadJSONL decodes a JSONL trace back into events — the read half of the
// round trip, used by tests and analysis tooling.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: trace: %w", err)
	}
	return out, nil
}

// MemTracer buffers events in memory, for tests.
type MemTracer struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (t *MemTracer) Emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (t *MemTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// TimeNS converts a time to the trace encoding, mapping the zero time to 0
// so synthetic simulation clocks near the epoch stay readable.
func TimeNS(at time.Time) int64 {
	if at.IsZero() {
		return 0
	}
	return at.UnixNano()
}

// Instrumented is implemented by components (verifiers, readers) that
// accept observability wiring after construction — needed where factories
// like scheme.NewVerifier cannot thread options through.
type Instrumented interface {
	SetTracer(t Tracer)
	SetMetrics(m *Registry)
}
