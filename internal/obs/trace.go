package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType names one step of a packet's lifecycle. The set mirrors the
// paper's receiver model: a packet is sent, then per receiver either
// dropped by the channel or delivered (possibly out of order), then inside
// the verifier it is buffered awaiting authentication information,
// authenticated, rejected as tampered, dropped as TESLA-unsafe, or
// discarded on message-buffer overflow.
type EventType string

const (
	EventSent            EventType = "sent"
	EventDropped         EventType = "dropped"
	EventDelivered       EventType = "delivered"
	EventMsgBuffered     EventType = "msg_buffered"
	EventHashBuffered    EventType = "hash_buffered"
	EventAuthenticated   EventType = "authenticated"
	EventRejected        EventType = "rejected"
	EventUnsafe          EventType = "unsafe"
	EventOverflowDropped EventType = "overflow_dropped"
	// Adversarial-channel events (fault injection): the channel mutated a
	// delivery in flight, injected a fabricated packet, or the verifier
	// rejected a known-forged packet. A forged packet *authenticating*
	// has no event — it is an invariant violation surfaced by the run's
	// counters, never a normal lifecycle step.
	EventCorrupted      EventType = "corrupted"
	EventForgedInjected EventType = "forged_injected"
	EventForgedRejected EventType = "forged_rejected"
	// EventRunMeta is the first record of a netsim trace: one source-side
	// event carrying the run's identity (scheme name, wire count in Wire,
	// signature wire index in Root) so offline tooling can interpret the
	// trace without re-supplying the run's flags.
	EventRunMeta EventType = "run_meta"
)

// Event is one JSONL trace record. Zero-valued optional fields are elided
// from the encoding.
type Event struct {
	Type EventType `json:"type"`
	// Receiver attributes the event to one simulated receiver (0-based);
	// -1 marks source-side events (sent).
	Receiver int `json:"recv"`
	// Wire is the 1-based send position of the packet on the wire.
	Wire int `json:"wire,omitempty"`
	// Index is the packet's authentication index (packet.Packet.Index).
	Index uint32 `json:"index,omitempty"`
	// Block is the packet's block ID.
	Block uint64 `json:"block,omitempty"`
	// TimeNS is the event's (simulated or wall) time, nanoseconds since
	// the Unix epoch.
	TimeNS int64 `json:"t_ns,omitempty"`
	// LatencyNS is, for authenticated events, the arrival-to-
	// authentication delay — the paper's receiver delay, measured.
	LatencyNS int64 `json:"latency_ns,omitempty"`
	// Depth is the buffer depth after a buffering transition.
	Depth int `json:"depth,omitempty"`
	// OutOfOrder marks a delivery that overtook a later-sent packet.
	OutOfOrder bool `json:"ooo,omitempty"`
	// Reason qualifies events: drops carry "loss" (channel), "late_join"
	// (receiver not yet subscribed), or — under fault injection —
	// "corrupted" / "truncated" (the mutation left the datagram
	// undecodable); deliveries of non-genuine arrivals carry the fault
	// kind; rejections carry what failed ("bad_signature",
	// "digest_mismatch", ...).
	Reason string `json:"reason,omitempty"`
	// Scheme names the scheme on run_meta events.
	Scheme string `json:"scheme,omitempty"`
	// Root is, on run_meta events, the wire index of the signature /
	// bootstrap packet (the packet whose loss severs every packet's
	// authentication path).
	Root uint32 `json:"root,omitempty"`
}

// Tracer consumes lifecycle events. Implementations must be safe for
// concurrent Emit calls (netsim receivers run in parallel). Instrumented
// code holds a Tracer and checks it against nil before building an Event,
// so a disabled trace costs one predictable branch.
type Tracer interface {
	Emit(e Event)
}

// ReceiverTracer stamps every event with a fixed receiver ID before
// forwarding, so per-receiver components (verifiers) need not know which
// receiver they serve.
type ReceiverTracer struct {
	T        Tracer
	Receiver int
}

// Emit implements Tracer.
func (rt ReceiverTracer) Emit(e Event) {
	e.Receiver = rt.Receiver
	rt.T.Emit(e)
}

// JSONLTracer writes one JSON object per line. Emit is mutex-serialized;
// Close flushes and reports the first write error encountered.
type JSONLTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	n      int64
	err    error
}

// NewJSONLTracer wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Events returns the number of events written so far.
func (t *JSONLTracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes buffered output (closing the underlying writer if it is a
// Closer) and returns the first error hit during the trace's lifetime.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.closer != nil {
		if cerr := t.closer.Close(); t.err == nil {
			t.err = cerr
		}
		t.closer = nil
	}
	return t.err
}

// ReadJSONL decodes a JSONL trace back into events — the read half of the
// round trip, used by tests and analysis tooling.
//
// Real trace files get damaged: a crashed run leaves a truncated final
// line, and interleaved stderr (a panic, a shell echo) can land between
// records. Lines that do not decode as events are skipped and counted
// rather than failing the whole read, so the intact majority of a damaged
// trace stays analyzable; callers that care surface the skipped count.
// Only an I/O error (or a line exceeding the 1 MiB scanner limit) is a
// hard error.
func ReadJSONL(r io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		b := sc.Bytes()
		if len(bytesTrimSpace(b)) == 0 {
			continue
		}
		var e Event
		if json.Unmarshal(b, &e) != nil || e.Type == "" {
			skipped++
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, skipped, fmt.Errorf("obs: trace: %w", err)
	}
	return events, skipped, nil
}

// bytesTrimSpace trims ASCII whitespace without allocating (the only
// whitespace a JSONL writer emits).
func bytesTrimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 {
		c := b[len(b)-1]
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			break
		}
		b = b[:len(b)-1]
	}
	return b
}

// MultiTracer fans every event out to each member tracer, so one run can
// feed a JSONL file and an in-memory diagnostics buffer at once.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// MemTracer buffers events in memory, for tests and for in-process
// consumers like the diagnose report built by `mcsim -report`.
type MemTracer struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (t *MemTracer) Emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (t *MemTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// TimeNS converts a time to the trace encoding, mapping the zero time to 0
// so synthetic simulation clocks near the epoch stay readable.
func TimeNS(at time.Time) int64 {
	if at.IsZero() {
		return 0
	}
	return at.UnixNano()
}

// Instrumented is implemented by components (verifiers, readers) that
// accept observability wiring after construction — needed where factories
// like scheme.NewVerifier cannot thread options through.
type Instrumented interface {
	SetTracer(t Tracer)
	SetMetrics(m *Registry)
}
