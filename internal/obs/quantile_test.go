package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHistogramQuantileAccessors pins the instrument-level quantile API the
// lab dashboard and regression gates consume: Quantile/P50/P95/P99 on a
// live *Histogram agree with the underlying HistogramData estimates, and a
// nil instrument reports zeros instead of panicking.
func TestHistogramQuantileAccessors(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	d := h.Data()
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"Quantile(0.5)", h.Quantile(0.5), d.Quantile(0.5)},
		{"P50", h.P50(), d.P50()},
		{"P95", h.P95(), d.P95()},
		{"P99", h.P99(), d.P99()},
	} {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	// Log2 buckets quantize the estimate; demand only bucket-level sanity:
	// monotone in q and inside the observed range.
	if !(d.P50() <= d.P95() && d.P95() <= d.P99()) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", d.P50(), d.P95(), d.P99())
	}
	if d.P50() < 1 || d.P99() > 1000 {
		t.Errorf("quantiles escape observed range: p50=%v p99=%v", d.P50(), d.P99())
	}
	if d.P95() < 500 {
		t.Errorf("p95 = %v, implausibly low for uniform 1..1000", d.P95())
	}

	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.P50() != 0 || nilH.P95() != 0 || nilH.P99() != 0 {
		t.Error("nil histogram quantiles must be 0")
	}
}

// TestSnapshotP95Exposed checks the new p95 summary reaches the exposition
// snapshot alongside the existing quantiles.
func TestSnapshotP95Exposed(t *testing.T) {
	var d HistogramData
	for v := int64(1); v <= 100; v++ {
		d.Observe(v)
	}
	s := SnapshotOf(d)
	if s.P95 != d.Quantile(0.95) {
		t.Errorf("snapshot P95 = %v, want %v", s.P95, d.Quantile(0.95))
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"p95":`) {
		t.Errorf("snapshot JSON missing p95: %s", b)
	}
}

// TestSnapshotMarshalOrdered pins the ordered-marshal contract: instrument
// names appear in sorted order in the JSON bytes regardless of insertion
// order, and two registries with the same contents marshal identically.
func TestSnapshotMarshalOrdered(t *testing.T) {
	build := func(names []string) Snapshot {
		reg := NewRegistry()
		for i, n := range names {
			reg.Counter("c." + n).Add(int64(i + 1))
			reg.Gauge("g." + n).Set(int64(i + 1))
			reg.Histogram("h." + n).Observe(int64(i + 1))
		}
		// Re-apply deterministic values so both insertion orders agree.
		for _, n := range names {
			reg.Gauge("g." + n).Set(7)
		}
		snap := reg.Snapshot()
		for k := range snap.Counters {
			snap.Counters[k] = 7
		}
		for k, h := range snap.Histograms {
			h.Sum, h.Min, h.Max, h.Mean = 1, 1, 1, 1
			h.P50, h.P90, h.P95, h.P99 = 1, 1, 1, 1
			h.Count = 1
			h.Buckets = []Bucket{{Le: 1, Count: 1}}
			snap.Histograms[k] = h
		}
		return snap
	}
	a, err := json.Marshal(build([]string{"zeta", "alpha", "mid"}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build([]string{"mid", "zeta", "alpha"}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ across insertion orders:\n%s\n%s", a, b)
	}
	if za, zb := bytes.Index(a, []byte("c.alpha")), bytes.Index(a, []byte("c.zeta")); za == -1 || zb == -1 || za > zb {
		t.Errorf("counter names not in sorted order: %s", a)
	}
	var back Snapshot
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("ordered marshal must round-trip: %v", err)
	}
	if back.Counters["c.alpha"] != 7 || back.Histograms["h.mid"].Count != 1 {
		t.Errorf("round-trip lost values: %+v", back)
	}
}

// TestTimedSnapshotSeriesRoundTrip writes a JSONL metrics series and reads
// it back, including tolerance for a torn trailing line.
func TestTimedSnapshotSeriesRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.published").Add(3)
	reg.Histogram("server.root_hold_ns").Observe(1500)

	var buf bytes.Buffer
	for i := int64(1); i <= 3; i++ {
		reg.Counter("server.published").Add(1)
		ts := TimedSnapshot{AtUnixNS: i * 1000, Metrics: reg.Snapshot()}
		if err := ts.WriteJSONLine(&buf); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString(`{"at_unix_ns": 4000, "metrics": {"counters": {"tor`) // torn line

	series, skipped, err := ReadSnapshotLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3", len(series))
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (torn line)", skipped)
	}
	if series[0].AtUnixNS != 1000 || series[2].AtUnixNS != 3000 {
		t.Errorf("timestamps lost: %+v", series)
	}
	if got := series[2].Metrics.Counters["server.published"]; got != 6 {
		t.Errorf("final published = %d, want 6", got)
	}
	if series[1].Metrics.Histograms["server.root_hold_ns"].Count != 1 {
		t.Error("histogram snapshot lost in series")
	}
}
