package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	promHelpOrType = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$`)
	promSample     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(\+Inf|[0-9]+)"\})? (-?[0-9]+(\.[0-9]+)?|\+Inf|NaN)$`)
)

// validatePrometheus is a strict checker for the subset of the text
// exposition format WritePrometheus emits: every line is a comment or a
// sample, every sample's metric was TYPE-declared, histogram buckets are
// cumulative and end at +Inf == _count.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	declared := map[string]string{}
	bucketCum := map[string]int64{}
	bucketLast := map[string]int64{}
	counts := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promHelpOrType.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				declared[f[2]] = f[3]
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, le, val := m[1], m[3], m[4]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && declared[b] == "histogram" {
				base = b
			}
		}
		if _, ok := declared[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("non-integer sample value in %q", line)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && declared[base] == "histogram":
			if le == "" {
				t.Fatalf("bucket sample without le label: %q", line)
			}
			if v < bucketCum[base] {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			bucketCum[base] = v
			if le == "+Inf" {
				bucketLast[base] = v
			}
		case strings.HasSuffix(name, "_count") && declared[base] == "histogram":
			counts[base] = v
		}
	}
	for base, count := range counts {
		if bucketLast[base] != count {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", base, bucketLast[base], count)
		}
	}
}

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("netsim.sent").Add(120)
	reg.Counter("verifier.authenticated").Add(88)
	reg.Gauge("stream.active_blocks").Set(3)
	h := reg.Histogram("verifier.time_to_auth_ns")
	for _, v := range []int64{0, 1, 2, 500, 1 << 20, 1 << 40} {
		h.Observe(v)
	}
	reg.Histogram("verifier.empty") // registered but never observed
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validatePrometheus(t, out)
	for _, want := range []string{
		"netsim_sent 120",
		"verifier_authenticated 88",
		"stream_active_blocks 3",
		`verifier_time_to_auth_ns_bucket{le="+Inf"} 6`,
		"verifier_time_to_auth_ns_count 6",
		`verifier_empty_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"netsim.sent":              "netsim_sent",
		"verifier.time_to_auth_ns": "verifier_time_to_auth_ns",
		"0weird":                   "_0weird",
		"a-b c":                    "a_b_c",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func mustMux(e *Exposer) *http.ServeMux {
	mux := http.NewServeMux()
	e.Register(mux)
	return mux
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestExposerServesMetricsAndStatusz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("netsim.sent").Add(42)
	e := NewExposer(reg, time.Hour) // cadence irrelevant: initial snapshot serves
	defer e.Close()
	e.SetStatus(func(w io.Writer) { fmt.Fprintln(w, "scheme: emss(test)") })

	srv := httptest.NewServer(mustMux(e))
	defer srv.Close()

	body := mustGet(t, srv.URL+"/metrics")
	validatePrometheus(t, body)
	if !strings.Contains(body, "netsim_sent 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	reg.Counter("netsim.sent").Add(8)
	e.Refresh()
	if body = mustGet(t, srv.URL+"/metrics"); !strings.Contains(body, "netsim_sent 50") {
		t.Errorf("/metrics not refreshed:\n%s", body)
	}

	status := mustGet(t, srv.URL+"/statusz")
	for _, want := range []string{"scheme: emss(test)", "snapshot age", "netsim.sent"} {
		if !strings.Contains(status, want) {
			t.Errorf("/statusz missing %q:\n%s", want, status)
		}
	}
}
