package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="..."}` series with `_sum` and
// `_count`. Instrument names are sanitized to the Prometheus charset
// (dots become underscores), and all series are emitted in sorted name
// order, so the output is deterministic for a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePrometheusHistogram(w, PrometheusName(n), s.Histograms[n]); err != nil {
			return err
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	// Snapshot buckets are per-bucket counts over the non-empty log2
	// buckets; Prometheus buckets are cumulative.
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		if b.Le >= math.MaxInt64 {
			// The top log2 bucket is unbounded; it renders as +Inf below.
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count)
	return err
}

// PrometheusName maps a registry instrument name onto the Prometheus
// metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*. The registry convention
// `layer.metric_name` becomes `layer_metric_name`.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
