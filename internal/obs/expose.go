package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Bucket is one non-empty histogram bucket in a snapshot: Count values at
// most Le (and above the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exposition form of a histogram: only non-empty
// buckets, plus precomputed summary statistics.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// SnapshotOf condenses histogram data for exposition.
func SnapshotOf(d HistogramData) HistogramSnapshot {
	s := HistogramSnapshot{
		Count: d.Count,
		Sum:   d.Sum,
		Mean:  d.Mean(),
		P50:   d.Quantile(0.50),
		P90:   d.Quantile(0.90),
		P99:   d.Quantile(0.99),
	}
	if d.Count > 0 {
		s.Min = d.MinSeen
		s.Max = d.MaxSeen
	}
	for i, c := range d.Buckets {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpperBound(i), Count: c})
		}
	}
	return s
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all instruments. A nil registry yields an empty (but
// non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gaugs := make(map[string]*Gauge, len(r.gaugs))
	for k, v := range r.gaugs {
		gaugs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range ctrs {
		s.Counters[k] = v.Value()
	}
	for k, v := range gaugs {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = SnapshotOf(v.Data())
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes a human-readable metrics table: counters and gauges as
// name/value lines, histograms as count/mean/p50/p90/p99/max lines. Names
// are sorted, so the output is deterministic.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	write := func(kind string, names []string, emit func(name string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(tw, "--- %s ---\t\n", kind)
		for _, n := range names {
			emit(n)
		}
	}
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	write("counters", names, func(n string) {
		fmt.Fprintf(tw, "%s\t%d\n", n, s.Counters[n])
	})
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	write("gauges", names, func(n string) {
		fmt.Fprintf(tw, "%s\t%d\n", n, s.Gauges[n])
	})
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	write("histograms (count mean p50 p90 p99 max)", names, func(n string) {
		h := s.Histograms[n]
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\n",
			n, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
	})
	return tw.Flush()
}
