package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Bucket is one non-empty histogram bucket in a snapshot: Count values at
// most Le (and above the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exposition form of a histogram: only non-empty
// buckets, plus precomputed summary statistics.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// SnapshotOf condenses histogram data for exposition.
func SnapshotOf(d HistogramData) HistogramSnapshot {
	s := HistogramSnapshot{
		Count: d.Count,
		Sum:   d.Sum,
		Mean:  d.Mean(),
		P50:   d.Quantile(0.50),
		P90:   d.Quantile(0.90),
		P95:   d.Quantile(0.95),
		P99:   d.Quantile(0.99),
	}
	if d.Count > 0 {
		s.Min = d.MinSeen
		s.Max = d.MaxSeen
	}
	for i, c := range d.Buckets {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpperBound(i), Count: c})
		}
	}
	return s
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all instruments. A nil registry yields an empty (but
// non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gaugs := make(map[string]*Gauge, len(r.gaugs))
	for k, v := range r.gaugs {
		gaugs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range ctrs {
		s.Counters[k] = v.Value()
	}
	for k, v := range gaugs {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = SnapshotOf(v.Data())
	}
	return s
}

// MarshalJSON encodes the snapshot with every instrument name in sorted
// order. The ordering is written explicitly rather than left to
// encoding/json's map handling so that snapshot files are byte-comparable
// across runs, Go versions and ingestion tools by contract, not by
// accident: mclab joins snapshots from many runs and diffs them, and the
// dashboard golden tests pin the bytes.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	if err := marshalSorted(&buf, "counters", s.Counters); err != nil {
		return nil, err
	}
	buf.WriteByte(',')
	if err := marshalSorted(&buf, "gauges", s.Gauges); err != nil {
		return nil, err
	}
	buf.WriteByte(',')
	if err := marshalSorted(&buf, "histograms", s.Histograms); err != nil {
		return nil, err
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// marshalSorted writes `"section":{...}` with keys in sorted order.
func marshalSorted[V any](buf *bytes.Buffer, section string, m map[string]V) error {
	fmt.Fprintf(buf, "%q:{", section)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, err := json.Marshal(n)
		if err != nil {
			return err
		}
		v, err := json.Marshal(m[n])
		if err != nil {
			return err
		}
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(v)
	}
	buf.WriteByte('}')
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// TimedSnapshot stamps a snapshot with its capture time, the line format
// of periodic JSONL metrics series (mcserved -metrics-interval) that mclab
// ingests from long daemon runs.
type TimedSnapshot struct {
	AtUnixNS int64    `json:"at_unix_ns"`
	Metrics  Snapshot `json:"metrics"`
}

// WriteJSONLine appends the timed snapshot as one compact JSONL line.
func (t TimedSnapshot) WriteJSONLine(w io.Writer) error {
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSnapshotLines decodes a JSONL metrics series, skipping undecodable
// lines (a daemon killed mid-write leaves a torn last line) and reporting
// how many were skipped.
func ReadSnapshotLines(r io.Reader) (series []TimedSnapshot, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var t TimedSnapshot
		if json.Unmarshal(line, &t) != nil || (t.Metrics.Counters == nil && t.Metrics.Gauges == nil && t.Metrics.Histograms == nil) {
			skipped++
			continue
		}
		series = append(series, t)
	}
	return series, skipped, sc.Err()
}

// WriteText writes a human-readable metrics table: counters and gauges as
// name/value lines, histograms as count/mean/p50/p90/p99/max lines. Names
// are sorted, so the output is deterministic.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	write := func(kind string, names []string, emit func(name string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(tw, "--- %s ---\t\n", kind)
		for _, n := range names {
			emit(n)
		}
	}
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	write("counters", names, func(n string) {
		fmt.Fprintf(tw, "%s\t%d\n", n, s.Counters[n])
	})
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	write("gauges", names, func(n string) {
		fmt.Fprintf(tw, "%s\t%d\n", n, s.Gauges[n])
	})
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	write("histograms (count mean p50 p90 p99 max)", names, func(n string) {
		h := s.Histograms[n]
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\n",
			n, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
	})
	return tw.Flush()
}
