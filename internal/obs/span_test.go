package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// lifecycleSpans is one full block lifecycle with fixed timestamps, the
// fixture both the golden-schema test and the round-trip test use.
func lifecycleSpans() []Span {
	base := int64(1_700_000_000_000_000_000)
	return []Span{
		{Kind: SpanPush, Stream: 3, Block: 17, TimeNS: base},
		{Kind: SpanShardEnqueue, Stream: 3, Block: 17, TimeNS: base + 1_000},
		{Kind: SpanSignAttach, Stream: 3, Block: 17, TimeNS: base + 5_000_000, DurNS: 4_900_000},
		{Kind: SpanMuxWrite, Stream: 3, Block: 17, Index: 1, TimeNS: base + 5_100_000},
		{Kind: SpanDecode, Stream: 3, Block: 17, Index: 1, TimeNS: base + 5_400_000},
		{Kind: SpanDeferredPark, Stream: 3, Block: 17, Index: 9, TimeNS: base + 5_500_000},
		{Kind: SpanSigResolve, Stream: 3, Block: 17, Index: 9, TimeNS: base + 6_000_000},
		{Kind: SpanAuthenticate, Stream: 3, Block: 17, Index: 1, TimeNS: base + 6_100_000, DurNS: 700_000},
		{Kind: SpanReject, Stream: 3, Block: 17, Index: 4, TimeNS: base + 6_200_000, Reason: "digest_mismatch"},
	}
}

// TestSpanGoldenSchema pins the span JSONL encoding byte-for-byte. The
// schema is an interchange format (flight dumps, mcreport, future
// planner), so a drift here must be a deliberate choice, not an accident.
// Regenerate with: go test ./internal/obs -run TestSpanGoldenSchema -update
func TestSpanGoldenSchema(t *testing.T) {
	r := NewSpanRing(16)
	r.SetEnabled(true)
	for _, s := range lifecycleSpans() {
		r.Record(s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spans.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span JSONL schema drifted from %s;\nrerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	in := lifecycleSpans()
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d spans, want %d", len(got), len(in))
	}
	for i := range got {
		want := in[i]
		want.Type = SpanTypeField
		want.Trace = TraceID(want.Stream, want.Block)
		if got[i] != want {
			t.Errorf("span %d = %+v, want %+v", i, got[i], want)
		}
		if got[i].Trace != TraceID(want.Stream, want.Block) {
			t.Errorf("span %d trace = %d, want TraceID(%d,%d)=%d",
				i, got[i].Trace, want.Stream, want.Block, TraceID(want.Stream, want.Block))
		}
	}
}

func TestReadSpansSkipsForeignLines(t *testing.T) {
	mixed := strings.Join([]string{
		`{"type":"flight_meta","reason":"x"}`,
		`{"type":"span","trace":1,"kind":"push","stream":1,"block":2}`,
		`not json at all`,
		`{"type":"authenticated","recv":0}`, // trace event, not a span
		`{"type":"span","trace":1,"kind":"decode","stream":1,"block":2,"index":3}`,
		``,
		`{"type":"span"}`, // span without a kind: damaged
	}, "\n")
	spans, skipped, err := ReadSpans(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
}

func TestTraceIDDeterministicAndScattering(t *testing.T) {
	if TraceID(3, 17) != TraceID(3, 17) {
		t.Fatal("TraceID not deterministic")
	}
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 8; stream++ {
		for block := uint64(0); block < 64; block++ {
			id := TraceID(stream, block)
			if seen[id] {
				t.Fatalf("TraceID collision at stream=%d block=%d", stream, block)
			}
			seen[id] = true
		}
	}
}

func TestSpanRingBoundedEviction(t *testing.T) {
	r := NewSpanRing(4)
	r.SetEnabled(true)
	for b := uint64(0); b < 10; b++ {
		r.Record(Span{Kind: SpanPush, Stream: 1, Block: b})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	for i, s := range snap {
		if want := uint64(6 + i); s.Block != want {
			t.Errorf("snapshot[%d].Block = %d, want %d (oldest-first, newest kept)", i, s.Block, want)
		}
	}
}

func TestSpanRingDisabledRecordsNothing(t *testing.T) {
	r := NewSpanRing(4)
	r.Add(SpanPush, 1, 1, 0, 0, "")
	r.Record(Span{Kind: SpanPush, Stream: 1, Block: 1})
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("disabled ring stored spans: len=%d total=%d", r.Len(), r.Total())
	}
	var nilRing *SpanRing
	nilRing.Record(Span{Kind: SpanPush})
	nilRing.Add(SpanPush, 1, 1, 0, 0, "")
	nilRing.SetEnabled(true)
	if nilRing.Enabled() || nilRing.Len() != 0 || nilRing.Total() != 0 || nilRing.Snapshot() != nil {
		t.Fatal("nil ring must be inert")
	}
	if err := nilRing.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRingConcurrentRecord(t *testing.T) {
	r := NewSpanRing(128)
	r.SetEnabled(true)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(SpanDecode, uint64(w), uint64(i), uint32(i), time.Microsecond, "")
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", r.Total(), workers*per)
	}
	if r.Len() != 128 {
		t.Fatalf("Len = %d, want capacity 128", r.Len())
	}
}
