package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Flight-recorder JSONL record types. Every line a dump writes carries a
// "type" field, so a dump is a valid mixed JSONL stream: ReadSpans picks
// the spans out of it, ReadJSONL skips what it does not know, and
// ReadFlightDump reassembles the whole artifact.
const (
	FlightTypeMeta    = "flight_meta"
	FlightTypeMetrics = "flight_metrics"
	FlightTypeSLO     = "flight_slo"
	FlightTypeFault   = "fault"
)

// FaultEvent is one noteworthy incident in the recorder's timeline: a
// chaos kill/restart, an SLO budget exhaustion, a panic, an operator
// signal.
type FaultEvent struct {
	Type   string `json:"type"` // always "fault" when encoded
	TimeNS int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// FlightMeta is the dump's header line.
type FlightMeta struct {
	Type string `json:"type"` // always "flight_meta"
	// Reason names the dump trigger: "panic", "chaos_kill", "sigusr1",
	// "slo_budget_exhausted", ...
	Reason   string `json:"reason"`
	AtUnixNS int64  `json:"at_unix_ns"`
	// Spans is the buffered span count written; SpanTotal the lifetime
	// recorded count (the difference is what the ring evicted).
	Spans     int   `json:"spans"`
	SpanTotal int64 `json:"span_total"`
	Faults    int   `json:"faults"`
	Snapshots int   `json:"snapshots"`
}

type flightMetricsLine struct {
	Type     string   `json:"type"`
	AtUnixNS int64    `json:"at_unix_ns"`
	Metrics  Snapshot `json:"metrics"`
}

type flightSLOLine struct {
	Type string    `json:"type"`
	SLO  SLOStatus `json:"slo"`
}

// FlightConfig wires a recorder to the telemetry it preserves. Any field
// may be nil; the dump simply omits that section.
type FlightConfig struct {
	// Spans is the live span ring; Dump snapshots it at dump time.
	Spans *SpanRing
	// Registry is snapshotted once per NoteSnapshot and once at Dump.
	Registry *Registry
	// SLO contributes the per-stream budget evaluation at dump time.
	SLO *SLOTracker
	// MaxFaults bounds the fault-event ring (default 256).
	MaxFaults int
	// MaxSnapshots bounds the periodic metric-snapshot ring (default 16).
	MaxSnapshots int
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// FlightRecorder keeps a bounded in-memory record of recent telemetry —
// spans, metric snapshots, fault events — and serializes it to one
// self-contained JSONL post-mortem artifact on demand. It is cheap to
// keep armed for the whole life of a daemon: nothing is written anywhere
// until Dump. All methods are nil-safe and concurrency-safe.
type FlightRecorder struct {
	cfg FlightConfig

	mu     sync.Mutex
	faults []FaultEvent // ring, oldest at faultStart
	fStart int
	fN     int
	snaps  []TimedSnapshot // ring, oldest at sStart
	sStart int
	sN     int
}

// NewFlightRecorder builds a recorder over cfg.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.MaxFaults <= 0 {
		cfg.MaxFaults = 256
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &FlightRecorder{
		cfg:    cfg,
		faults: make([]FaultEvent, 0, cfg.MaxFaults),
		snaps:  make([]TimedSnapshot, 0, cfg.MaxSnapshots),
	}
}

// NoteFault appends one fault event, evicting the oldest when full.
func (fr *FlightRecorder) NoteFault(kind, detail string) {
	if fr == nil {
		return
	}
	e := FaultEvent{Type: FlightTypeFault, TimeNS: fr.cfg.Clock().UnixNano(), Kind: kind, Detail: detail}
	fr.mu.Lock()
	if fr.fN < cap(fr.faults) {
		fr.faults = append(fr.faults, e)
		fr.fN++
	} else {
		fr.faults[fr.fStart] = e
		fr.fStart = (fr.fStart + 1) % cap(fr.faults)
	}
	fr.mu.Unlock()
}

// NoteSnapshot captures the registry now into the snapshot ring, evicting
// the oldest when full. Call it on a periodic cadence so the dump shows
// how metrics evolved up to the incident, not just the terminal state.
func (fr *FlightRecorder) NoteSnapshot() {
	if fr == nil || fr.cfg.Registry == nil {
		return
	}
	t := TimedSnapshot{AtUnixNS: fr.cfg.Clock().UnixNano(), Metrics: fr.cfg.Registry.Snapshot()}
	fr.mu.Lock()
	if fr.sN < cap(fr.snaps) {
		fr.snaps = append(fr.snaps, t)
		fr.sN++
	} else {
		fr.snaps[fr.sStart] = t
		fr.sStart = (fr.sStart + 1) % cap(fr.snaps)
	}
	fr.mu.Unlock()
}

// Faults returns the number of buffered fault events.
func (fr *FlightRecorder) Faults() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.fN
}

func (fr *FlightRecorder) snapshotRings() (faults []FaultEvent, snaps []TimedSnapshot) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	faults = make([]FaultEvent, 0, fr.fN)
	for i := 0; i < fr.fN; i++ {
		faults = append(faults, fr.faults[(fr.fStart+i)%cap(fr.faults)])
	}
	snaps = make([]TimedSnapshot, 0, fr.sN)
	for i := 0; i < fr.sN; i++ {
		snaps = append(snaps, fr.snaps[(fr.sStart+i)%cap(fr.snaps)])
	}
	return faults, snaps
}

// Dump serializes the recorder's state as JSONL: one flight_meta header,
// the metric-snapshot series (plus one terminal snapshot taken now), the
// SLO evaluation, the fault timeline, then every buffered span
// oldest-first. reason is recorded in the header.
func (fr *FlightRecorder) Dump(w io.Writer, reason string) error {
	if fr == nil {
		return nil
	}
	now := fr.cfg.Clock()
	if fr.cfg.Registry != nil {
		fr.NoteSnapshot() // terminal at-incident state
	}
	faults, snaps := fr.snapshotRings()
	spans := fr.cfg.Spans.Snapshot()
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	meta := FlightMeta{
		Type:      FlightTypeMeta,
		Reason:    reason,
		AtUnixNS:  now.UnixNano(),
		Spans:     len(spans),
		SpanTotal: fr.cfg.Spans.Total(),
		Faults:    len(faults),
		Snapshots: len(snaps),
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("obs: flight: %w", err)
	}
	for _, s := range snaps {
		if err := enc.Encode(flightMetricsLine{Type: FlightTypeMetrics, AtUnixNS: s.AtUnixNS, Metrics: s.Metrics}); err != nil {
			return fmt.Errorf("obs: flight: %w", err)
		}
	}
	if fr.cfg.SLO != nil {
		if err := enc.Encode(flightSLOLine{Type: FlightTypeSLO, SLO: fr.cfg.SLO.Status()}); err != nil {
			return fmt.Errorf("obs: flight: %w", err)
		}
	}
	for _, f := range faults {
		f.Type = FlightTypeFault
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("obs: flight: %w", err)
		}
	}
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: flight: %w", err)
		}
	}
	return bw.Flush()
}

// DumpFile writes the dump to path (truncating an earlier dump: the
// freshest post-mortem wins), syncing before close so the artifact
// survives the process dying right after.
func (fr *FlightRecorder) DumpFile(path, reason string) error {
	if fr == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fr.Dump(f, reason); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlightDump is a parsed post-mortem artifact.
type FlightDump struct {
	Meta      FlightMeta
	Snapshots []TimedSnapshot
	SLO       *SLOStatus
	Faults    []FaultEvent
	Spans     []Span
}

// ReadFlightDump parses a dump back. Damaged or foreign lines are skipped
// and counted, like every other JSONL reader here; a stream with no
// flight_meta line fails, since it is then not a flight dump at all.
func ReadFlightDump(r io.Reader) (*FlightDump, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		d       FlightDump
		skipped int
		gotMeta bool
	)
	for sc.Scan() {
		b := sc.Bytes()
		if len(bytesTrimSpace(b)) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(b, &probe) != nil {
			skipped++
			continue
		}
		switch probe.Type {
		case FlightTypeMeta:
			if json.Unmarshal(b, &d.Meta) != nil {
				skipped++
				continue
			}
			gotMeta = true
		case FlightTypeMetrics:
			var l flightMetricsLine
			if json.Unmarshal(b, &l) != nil {
				skipped++
				continue
			}
			d.Snapshots = append(d.Snapshots, TimedSnapshot{AtUnixNS: l.AtUnixNS, Metrics: l.Metrics})
		case FlightTypeSLO:
			var l flightSLOLine
			if json.Unmarshal(b, &l) != nil {
				skipped++
				continue
			}
			s := l.SLO
			d.SLO = &s
		case FlightTypeFault:
			var f FaultEvent
			if json.Unmarshal(b, &f) != nil {
				skipped++
				continue
			}
			d.Faults = append(d.Faults, f)
		case SpanTypeField:
			var s Span
			if json.Unmarshal(b, &s) != nil || s.Kind == "" {
				skipped++
				continue
			}
			d.Spans = append(d.Spans, s)
		default:
			skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("obs: flight: %w", err)
	}
	if !gotMeta {
		return nil, skipped, fmt.Errorf("obs: flight: no flight_meta record (not a flight dump?)")
	}
	return &d, skipped, nil
}
