package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Exposer serves a registry over HTTP for live inspection of a running
// process: /metrics renders the Prometheus text exposition and /statusz a
// human-readable run summary. A background goroutine snapshots the
// registry on a fixed cadence, so handlers serve a consistent recent view
// without taking the registry locks on every scrape, and the process's
// current state is captured even if nothing ever scrapes it.
type Exposer struct {
	reg      *Registry
	interval time.Duration
	status   func(io.Writer)

	mu    sync.RWMutex
	snap  Snapshot
	taken time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DefaultExposeInterval is the default snapshot cadence.
const DefaultExposeInterval = time.Second

// NewExposer starts the periodic snapshot goroutine over reg (which may be
// nil: the exposer then serves empty snapshots). interval <= 0 selects
// DefaultExposeInterval. Call Close to stop the goroutine.
func NewExposer(reg *Registry, interval time.Duration) *Exposer {
	if interval <= 0 {
		interval = DefaultExposeInterval
	}
	e := &Exposer{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	e.Refresh()
	go e.loop()
	return e
}

// SetStatus registers an extra section rendered at the top of /statusz
// (run configuration, progress, ...). Call before serving.
func (e *Exposer) SetStatus(f func(io.Writer)) {
	e.mu.Lock()
	e.status = f
	e.mu.Unlock()
}

// Refresh takes a snapshot now, outside the periodic cadence.
func (e *Exposer) Refresh() {
	snap := e.reg.Snapshot()
	e.mu.Lock()
	e.snap = snap
	e.taken = time.Now()
	e.mu.Unlock()
}

// Latest returns the most recent periodic snapshot and when it was taken.
func (e *Exposer) Latest() (Snapshot, time.Time) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snap, e.taken
}

func (e *Exposer) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.Refresh()
		}
	}
}

// Register installs the /metrics and /statusz handlers on mux.
func (e *Exposer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/statusz", e.serveStatusz)
}

func (e *Exposer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	snap, _ := e.Latest()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func (e *Exposer) serveStatusz(w http.ResponseWriter, _ *http.Request) {
	e.mu.RLock()
	snap, taken, status := e.snap, e.taken, e.status
	e.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if status != nil {
		status(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "snapshot age: %v\n\n", time.Since(taken).Round(time.Millisecond))
	_ = snap.WriteText(w)
}

// Close stops the periodic snapshot goroutine. Registered handlers keep
// working, serving the final snapshot.
func (e *Exposer) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}
