// Package obs is the zero-dependency observability layer of the repo: a
// metrics registry (counters, gauges, log-scale histograms) with text and
// JSON exposition, and a packet-lifecycle event tracer emitting JSONL.
//
// The paper reads four metrics off the dependence graph — authentication
// probability, overhead, receiver delay, buffer size — but a simulator
// that only reports end-of-run aggregates cannot say *why* a packet failed
// to authenticate or where verifier time goes. This package is the
// substrate the rest of the stack (netsim, verifier, transport, crypto,
// the CLIs) hangs its instrumentation on, and the baseline every
// performance PR measures itself against.
//
// Everything here is safe for concurrent use, and everything is optional:
// components accept a nil *Registry / nil Tracer and skip all work, so the
// hot path pays nothing when observability is off.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n may be any non-negative delta; negative deltas are the
// caller's bug but are not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable 64-bit metric (buffer depths, active blocks, ...).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to n if n exceeds the current value (high-water
// tracking from concurrent writers).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named instruments. Lookup is mutex-guarded get-or-create;
// hot paths should look instruments up once and cache the pointer. A nil
// *Registry is valid: every lookup returns nil, and nil instruments drop
// all updates.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}
