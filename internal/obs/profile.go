package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile and/or arranges a heap profile,
// according to which paths are non-empty. Both files are created up front
// so an unwritable path fails before any work is done. The returned stop
// func finalizes whichever profiles were requested; it must be called
// exactly once. With both paths empty it returns a no-op stop.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile unwritable: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	if memPath != "" {
		// Probe writability now; the profile itself is written at stop.
		f, err := os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("mem profile unwritable: %w", err)
		}
		f.Close()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
