package obs

import (
	"net/http"
	"sync/atomic"
)

// Health states, in lifecycle order: a process starts unready, becomes
// ready once it accepts work, and drains when shutdown has begun but
// in-flight work is still finishing.
const (
	HealthStarting int32 = iota
	HealthReady
	HealthDraining
)

// Health is a process-level readiness flag served at /healthz. Load
// balancers and orchestration probe it: 200 while ready, 503 while
// starting or draining — so a draining daemon stops receiving new
// subscribers before its listener actually closes. All methods are safe on
// a nil receiver (a process without health exposition).
type Health struct {
	state atomic.Int32
}

// SetReady marks the process ready to accept work.
func (h *Health) SetReady() {
	if h != nil {
		h.state.Store(HealthReady)
	}
}

// SetDraining marks the process as shutting down: still finishing
// in-flight work, but no longer a target for new work.
func (h *Health) SetDraining() {
	if h != nil {
		h.state.Store(HealthDraining)
	}
}

// State returns the current lifecycle state (HealthStarting for nil).
func (h *Health) State() int32 {
	if h == nil {
		return HealthStarting
	}
	return h.state.Load()
}

// String names the state for /healthz bodies and logs.
func (h *Health) String() string {
	switch h.State() {
	case HealthReady:
		return "ready"
	case HealthDraining:
		return "draining"
	default:
		return "starting"
	}
}

// ServeHTTP answers readiness probes: 200 "ready" or 503 with the state
// name.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.State() == HealthReady {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write([]byte(h.String() + "\n"))
}

// Register installs the /healthz handler on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.Handle("/healthz", h)
}
