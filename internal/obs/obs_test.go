package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	// Bucket 0 is (-inf, 1]; bucket i is (2^(i-1), 2^i].
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1 << 20, 20},
		{1<<20 + 1, 21},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		ub := BucketUpperBound(i)
		if got := bucketFor(ub); got != i {
			t.Errorf("upper bound %d of bucket %d lands in bucket %d", ub, i, got)
		}
		if got := bucketFor(ub + 1); got != i+1 {
			t.Errorf("value %d just above bucket %d lands in bucket %d, want %d",
				ub+1, i, got, i+1)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h HistogramData
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count != 1000 || h.MinSeen != 1 || h.MaxSeen != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count, h.MinSeen, h.MaxSeen)
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Errorf("mean %v, want 500.5", got)
	}
	// Log-scale buckets are coarse: accept the right power-of-two band.
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1000 {
		t.Errorf("p50 %v outside [256,1000]", p50)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 %v, want clamped max 1000", q)
	}
	if q := h.Quantile(0); q < 1 {
		t.Errorf("p0 %v below min", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, sum HistogramData
	for v := int64(0); v < 100; v++ {
		a.Observe(v)
		sum.Observe(v)
	}
	for v := int64(100); v < 200; v += 7 {
		b.Observe(v)
		sum.Observe(v)
	}
	a.Merge(b)
	if a != sum {
		t.Error("merge result differs from direct observation")
	}
	var empty HistogramData
	a.Merge(empty)
	if a != sum {
		t.Error("merging an empty histogram changed the data")
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("test.ops")
			g := reg.Gauge("test.high_water")
			h := reg.Histogram("test.latency")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("test.ops").Value(); got != workers*perWorker {
		t.Errorf("counter %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("test.high_water").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge high-water %d, want %d", got, workers*perWorker-1)
	}
	if got := reg.Histogram("test.latency").Data().Count; got != workers*perWorker {
		t.Errorf("histogram count %d, want %d", got, workers*perWorker)
	}
}

func TestNilRegistryAndInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	g.Add(1)
	h.Observe(5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Data().Count != 0 {
		t.Error("nil instruments must drop updates")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestSnapshotExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("crypto.sign_ops").Add(7)
	reg.Gauge("stream.active_blocks").Set(3)
	h := reg.Histogram("verifier.time_to_auth_ns")
	for _, v := range []int64{10, 100, 1000, 10000} {
		h.Observe(v)
	}
	snap := reg.Snapshot()

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["crypto.sign_ops"] != 7 {
		t.Errorf("JSON round-trip counter = %d", back.Counters["crypto.sign_ops"])
	}
	if back.Histograms["verifier.time_to_auth_ns"].Count != 4 {
		t.Errorf("JSON round-trip histogram count = %d",
			back.Histograms["verifier.time_to_auth_ns"].Count)
	}

	var textBuf bytes.Buffer
	if err := snap.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	for _, want := range []string{"crypto.sign_ops", "stream.active_blocks", "verifier.time_to_auth_ns"} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}
}

func TestJSONLTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	in := []Event{
		{Type: EventSent, Receiver: -1, Wire: 1, Index: 1, TimeNS: 1000},
		{Type: EventDropped, Receiver: 0, Wire: 2, Index: 2, Reason: "loss"},
		{Type: EventDelivered, Receiver: 1, Wire: 3, Index: 3, OutOfOrder: true},
		{Type: EventAuthenticated, Receiver: 1, Wire: 3, Index: 3, Block: 9, LatencyNS: 12345},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	if tr.Events() != int64(len(in)) {
		t.Fatalf("emitted %d, want %d", tr.Events(), len(in))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out, skipped, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines of a clean trace", skipped)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

// TestReadJSONLDamagedTrace feeds ReadJSONL the damage real trace files
// accumulate — interleaved stderr garbage, blank lines, non-event JSON,
// and a final line truncated mid-record — and expects the intact events
// back with a per-line skip count instead of a hard error.
func TestReadJSONLDamagedTrace(t *testing.T) {
	in := strings.Join([]string{
		`{"type":"sent","recv":-1,"wire":1,"index":1}`,
		`panic: runtime error: index out of range`,
		``,
		`{"not":"an event"}`,
		`{"type":"delivered","recv":0,"wire":1,"index":1}`,
		`42`,
		`{"type":"authenticated","recv":0,"wire":1,"ind`, // truncated, no newline
	}, "\n")
	events, skipped, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2: %+v", len(events), events)
	}
	if events[0].Type != EventSent || events[1].Type != EventDelivered {
		t.Errorf("wrong events survived: %+v", events)
	}
	// Skipped: the panic line, the non-event object, the bare number, and
	// the truncated tail. Blank lines are not damage.
	if skipped != 4 {
		t.Errorf("skipped = %d, want 4", skipped)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := &MemTracer{}, &MemTracer{}
	mt := MultiTracer{a, b}
	mt.Emit(Event{Type: EventSent, Index: 1})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("fan-out got %d/%d events, want 1/1", len(a.Events()), len(b.Events()))
	}
}

// TestEmptyHistogramNeverNaN pins the empty-histogram contract: Mean and
// Quantile return 0 (never NaN, which would also poison JSON encoding),
// and the snapshot of an empty histogram is fully zero-valued.
func TestEmptyHistogramNeverNaN(t *testing.T) {
	var h HistogramData
	if m := h.Mean(); m != 0 || math.IsNaN(m) {
		t.Errorf("empty Mean = %v, want 0", m)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if v := h.Quantile(q); v != 0 || math.IsNaN(v) {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
	s := SnapshotOf(h)
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 ||
		s.Mean != 0 || s.P50 != 0 || s.P90 != 0 || s.P99 != 0 || s.Buckets != nil {
		t.Errorf("empty snapshot not zero-valued: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("empty snapshot must marshal: %v", err)
	}
	// Negative-only observations exercise the min/max clamp paths.
	h.Observe(-5)
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); math.IsNaN(v) {
			t.Errorf("negative-only Quantile(%v) is NaN", q)
		}
	}
}

// TestSnapshotExpositionDeterministic renders the same registry twice
// through every exposition and demands byte identity.
func TestSnapshotExpositionDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.ops").Add(2)
	reg.Counter("a.ops").Add(1)
	reg.Gauge("z.depth").Set(9)
	reg.Histogram("m.lat").Observe(100)
	reg.Histogram("empty.hist") // registered, never observed
	snap := reg.Snapshot()
	render := func() (string, string, string) {
		var j, txt, prom bytes.Buffer
		if err := snap.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := snap.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := snap.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return j.String(), txt.String(), prom.String()
	}
	j1, t1, p1 := render()
	j2, t2, p2 := render()
	if j1 != j2 || t1 != t2 || p1 != p2 {
		t.Error("exposition output is not deterministic")
	}
}

func TestReceiverTracerStampsReceiver(t *testing.T) {
	mem := &MemTracer{}
	rt := ReceiverTracer{T: mem, Receiver: 42}
	rt.Emit(Event{Type: EventAuthenticated, Index: 5})
	evs := mem.Events()
	if len(evs) != 1 || evs[0].Receiver != 42 {
		t.Fatalf("events = %+v, want one event with recv 42", evs)
	}
}

type failingWriter struct{ failed bool }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.failed = true
	return 0, bytes.ErrTooLarge
}

func TestJSONLTracerReportsWriteError(t *testing.T) {
	tr := NewJSONLTracer(&failingWriter{})
	// Overflow the 64 KiB buffer so the flush path hits the writer.
	big := Event{Type: EventSent, Reason: strings.Repeat("x", 1<<10)}
	for i := 0; i < 100; i++ {
		tr.Emit(big)
	}
	if err := tr.Close(); err == nil {
		t.Error("Close should surface the write error")
	}
}
