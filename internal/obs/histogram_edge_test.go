package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h HistogramData
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All observations land in one bucket: (2^9, 2^10]. Every quantile
	// must clamp to the observed [min, max], never to the bucket bounds.
	var h HistogramData
	for i := 0; i < 100; i++ {
		h.Observe(700)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 700 {
			t.Errorf("Quantile(%v) = %v, want exactly 700 (min==max clamp)", q, got)
		}
	}

	// Distinct min/max inside the same bucket: estimates stay within them.
	var g HistogramData
	g.Observe(520)
	g.Observe(1000)
	for _, q := range []float64{0, 0.5, 1} {
		got := g.Quantile(q)
		if got < 520 || got > 1000 {
			t.Errorf("Quantile(%v) = %v, outside observed [520,1000]", q, got)
		}
	}

	// Out-of-range q clamps rather than extrapolating.
	if lo, hi := g.Quantile(-5), g.Quantile(5); lo < 520 || hi > 1000 {
		t.Errorf("clamped quantiles escaped range: %v, %v", lo, hi)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var h HistogramData
	h.Observe(12345)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Errorf("Quantile(%v) = %v, want 12345", q, got)
		}
	}
}

func TestMergeSaturatingCounts(t *testing.T) {
	big := HistogramData{
		Count:   math.MaxInt64 - 1,
		Sum:     math.MaxInt64 - 1,
		MinSeen: 1,
		MaxSeen: 2,
	}
	big.Buckets[1] = math.MaxInt64 - 1
	other := HistogramData{Count: 10, Sum: 10, MinSeen: 1, MaxSeen: 2}
	other.Buckets[1] = 10

	big.Merge(other)
	if big.Count != math.MaxInt64 {
		t.Fatalf("Count = %d, want saturated MaxInt64", big.Count)
	}
	if big.Sum != math.MaxInt64 {
		t.Fatalf("Sum = %d, want saturated MaxInt64", big.Sum)
	}
	if big.Buckets[1] != math.MaxInt64 {
		t.Fatalf("Buckets[1] = %d, want saturated MaxInt64", big.Buckets[1])
	}
	// A saturated histogram still yields finite, in-range quantiles.
	if q := big.Quantile(0.99); q < 1 || q > 2 {
		t.Fatalf("saturated Quantile(0.99) = %v, want within [1,2]", q)
	}

	neg := HistogramData{Count: 1, Sum: math.MinInt64 + 1, MinSeen: -5, MaxSeen: -5}
	neg.Buckets[0] = 1
	more := HistogramData{Count: 1, Sum: -10, MinSeen: -10, MaxSeen: -10}
	more.Buckets[0] = 1
	neg.Merge(more)
	if neg.Sum != math.MinInt64 {
		t.Fatalf("negative Sum = %d, want saturated MinInt64", neg.Sum)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1, 2, 3},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64 - 1, 5, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MinInt64 + 1, -5, math.MinInt64},
		{-3, 7, 4},
		{math.MaxInt64, math.MinInt64, -1},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeltaFrom(t *testing.T) {
	var prev HistogramData
	prev.Observe(100)
	prev.Observe(2000)
	cur := prev
	cur.Observe(100)
	cur.Observe(50)
	d := cur.DeltaFrom(prev)
	if d.Count != 2 || d.Sum != 150 {
		t.Fatalf("delta count=%d sum=%d, want 2/150", d.Count, d.Sum)
	}
	if d.Buckets[bucketFor(100)] != 1 || d.Buckets[bucketFor(50)] != 1 {
		t.Fatalf("delta buckets wrong: %+v", d.Buckets)
	}
	if empty := cur.DeltaFrom(cur); empty.Count != 0 {
		t.Fatalf("self-delta = %+v, want empty", empty)
	}
	// A delta never goes negative even if inputs are inconsistent.
	if back := prev.DeltaFrom(cur); back.Count != 0 {
		t.Fatalf("reversed delta = %+v, want empty", back)
	}
}

// TestConcurrentObserveSnapshotDeterminism drives one registry histogram
// from many goroutines with a fixed multiset of values and requires the
// final data — and its serialized snapshot bytes — to match a sequential
// fold of the same values. Observation order may vary; totals may not.
func TestConcurrentObserveSnapshotDeterminism(t *testing.T) {
	vals := make([]int64, 0, 1024)
	for i := 0; i < 1024; i++ {
		vals = append(vals, int64(i*i%5000))
	}
	var want HistogramData
	for _, v := range vals {
		want.Observe(v)
	}

	h := &Histogram{}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vals); i += workers {
				h.Observe(vals[i])
			}
		}(w)
	}
	wg.Wait()
	if got := h.Data(); got != want {
		t.Fatalf("concurrent fold diverged:\ngot  %+v\nwant %+v", got, want)
	}

	a, err := json.Marshal(SnapshotOf(h.Data()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(SnapshotOf(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot bytes diverged:\n%s\n%s", a, b)
	}
}
