package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sloClock is a settable fake clock.
type sloClock struct{ now time.Time }

func (c *sloClock) Now() time.Time          { return c.now }
func (c *sloClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{now: time.Unix(1_700_000_000, 0)} }
func ttaSample(vals ...int64) (h HistogramData) {
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

func newTestTracker(clk *sloClock) *SLOTracker {
	return NewSLOTracker(SLOConfig{
		Window:          time.Minute,
		Slots:           6,
		TimeToAuthP99:   10 * time.Millisecond,
		MinAuthFraction: 0.9,
		MinSample:       20,
		Clock:           clk.Now,
	})
}

func streamStatus(t *testing.T, tr *SLOTracker, id uint64) StreamSLO {
	t.Helper()
	st := tr.Status()
	for _, s := range st.Streams {
		if s.Stream == id {
			return s
		}
	}
	t.Fatalf("stream %d not in status: %+v", id, st)
	return StreamSLO{}
}

func objective(t *testing.T, s StreamSLO, name string) ObjectiveStatus {
	t.Helper()
	for _, o := range s.Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q not in %+v", name, s)
	return ObjectiveStatus{}
}

func TestSLOIdleBelowMinSample(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	tr.Observe(1, SLOSample{Authenticated: 5, TimeToAuth: ttaSample(1000)})
	s := streamStatus(t, tr, 1)
	if s.State != SLOIdle {
		t.Fatalf("state = %q, want idle below MinSample", s.State)
	}
}

func TestSLOHealthyStreamOk(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	fast := make([]int64, 100)
	for i := range fast {
		fast[i] = int64(time.Millisecond)
	}
	tr.Observe(1, SLOSample{Authenticated: 100, TimeToAuth: ttaSample(fast...)})
	s := streamStatus(t, tr, 1)
	if s.State != SLOOk {
		t.Fatalf("state = %q, want ok: %+v", s.State, s)
	}
	if s.AuthFraction != 1 {
		t.Fatalf("auth fraction = %v, want 1", s.AuthFraction)
	}
	if tr.Red() {
		t.Fatal("healthy tracker reports red")
	}
}

// TestSLOAuthFractionRedUnderLoss is the acceptance property: injected
// loss pushes the authenticated fraction below q_min and the budget goes
// red.
func TestSLOAuthFractionRedUnderLoss(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	// 70% authenticated against a 90% objective: fail fraction 0.3 vs
	// allowance 0.1 — burn rate 3.
	tr.Observe(1, SLOSample{Authenticated: 70, Failed: 30, TimeToAuth: ttaSample(1000)})
	s := streamStatus(t, tr, 1)
	o := objective(t, s, "auth_fraction")
	if o.State != SLORed || s.State != SLORed {
		t.Fatalf("want red, got objective=%q stream=%q (%+v)", o.State, s.State, o)
	}
	if o.BurnRate < 2.5 || o.BurnRate > 3.5 {
		t.Fatalf("burn rate = %v, want ~3", o.BurnRate)
	}
	if o.BudgetRemaining >= 0 {
		t.Fatalf("budget remaining = %v, want < 0", o.BudgetRemaining)
	}
	if !tr.Red() {
		t.Fatal("tracker must report red")
	}
	if st := tr.Status(); st.State != SLORed {
		t.Fatalf("document state = %q, want red", st.State)
	}
}

func TestSLOLatencyObjectiveRed(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	// All authentications succeed but 20% are slower than the 10ms p99
	// target: slow fraction 0.2 vs allowance 0.01.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(time.Millisecond)
		if i < 20 {
			vals[i] = int64(100 * time.Millisecond)
		}
	}
	tr.Observe(2, SLOSample{Authenticated: 100, TimeToAuth: ttaSample(vals...)})
	s := streamStatus(t, tr, 2)
	if o := objective(t, s, "auth_fraction"); o.State != SLOOk {
		t.Fatalf("auth_fraction = %q, want ok", o.State)
	}
	o := objective(t, s, "tta_p99")
	if o.State != SLORed {
		t.Fatalf("tta_p99 state = %q, want red (%+v)", o.State, o)
	}
	if s.State != SLORed {
		t.Fatalf("stream state = %q, want red", s.State)
	}
}

func TestSLOWindowExpiryRecovers(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	tr.Observe(1, SLOSample{Authenticated: 10, Failed: 90, TimeToAuth: ttaSample(1000)})
	if !tr.Red() {
		t.Fatal("want red after heavy loss")
	}
	// Slide past the window; the bad slot expires and (with fresh healthy
	// traffic) the stream recovers.
	clk.Advance(2 * time.Minute)
	tr.Observe(1, SLOSample{Authenticated: 50, TimeToAuth: ttaSample(1000)})
	s := streamStatus(t, tr, 1)
	if s.State != SLOOk {
		t.Fatalf("state after window expiry = %q, want ok (%+v)", s.State, s)
	}
	if s.Attempts != 50 {
		t.Fatalf("attempts = %d, want only the fresh 50", s.Attempts)
	}
}

func TestSLOServeHTTPAndExport(t *testing.T) {
	clk := newSLOClock()
	tr := newTestTracker(clk)
	tr.Observe(7, SLOSample{Authenticated: 40, Failed: 60, TimeToAuth: ttaSample(1000)})
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var st SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, rec.Body.String())
	}
	if st.State != SLORed || len(st.Streams) != 1 || st.Streams[0].Stream != 7 {
		t.Fatalf("unexpected /slo document: %+v", st)
	}

	reg := NewRegistry()
	tr.Export(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["slo.red_streams"]; got != 1 {
		t.Fatalf("slo.red_streams = %d, want 1", got)
	}
	if got := snap.Gauges["slo.stream.7.auth_fraction_milli"]; got != 400 {
		t.Fatalf("auth_fraction_milli = %d, want 400", got)
	}
	if got := snap.Gauges["slo.stream.7.auth_fraction_burn_milli"]; got != 6000 {
		t.Fatalf("auth_fraction_burn_milli = %d, want 6000", got)
	}

	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "auth_fraction") || !strings.Contains(sb.String(), "red") {
		t.Fatalf("WriteText missing objective rows:\n%s", sb.String())
	}
}

func TestSLONilTrackerInert(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(1, SLOSample{Authenticated: 1})
	if tr.Red() {
		t.Fatal("nil tracker red")
	}
	if st := tr.Status(); st.State != SLOIdle || len(st.Streams) != 0 {
		t.Fatalf("nil tracker status = %+v", st)
	}
	tr.Export(NewRegistry())
}
