package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"text/tabwriter"
	"time"
)

// SLO states, ordered by severity. A stream is "red" when an objective's
// error budget for the sliding window is exhausted (burn rate >= 1),
// "warn" when more than half the budget is burned, "ok" otherwise, and
// "idle" before MinSample attempts have accumulated (too little data to
// judge either way).
const (
	SLOIdle = "idle"
	SLOOk   = "ok"
	SLOWarn = "warn"
	SLORed  = "red"
)

// SLOConfig declares the per-stream objectives the tracker evaluates.
type SLOConfig struct {
	// Window is the sliding evaluation window (default 60s).
	Window time.Duration
	// Slots is the window's bucket count (default 12): budget accounting
	// expires in Window/Slots granules rather than all at once.
	Slots int
	// TimeToAuthP99 is the latency objective: at most 1% of
	// authentications in the window may take longer than this. Zero
	// disables the objective.
	TimeToAuthP99 time.Duration
	// MinAuthFraction is the authenticated-fraction objective — the
	// paper's q_min as a live target: at least this fraction of packet
	// verification attempts in the window must authenticate. Zero
	// disables the objective; 1 means any failure is over budget.
	MinAuthFraction float64
	// MinSample is the minimum attempts in the window before objectives
	// are judged (default 20); below it the stream reports "idle".
	MinSample int64
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Slots <= 0 {
		c.Slots = 12
	}
	if c.MinSample <= 0 {
		c.MinSample = 20
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// SLOSample is one batch of per-stream verification outcomes: deltas since
// the previous sample, not cumulative totals.
type SLOSample struct {
	// Authenticated counts packets that authenticated.
	Authenticated int64
	// Failed counts packets that did not: rejects, decode errors, and
	// packets still unauthenticated at sampling time (starvation under
	// loss counts against the budget — exactly the paper's
	// non-authenticable fraction).
	Failed int64
	// TimeToAuth holds the arrival-to-authentication latencies of the
	// newly authenticated packets.
	TimeToAuth HistogramData
}

type sloSlot struct {
	epoch  int64 // slot index since the epoch; -1 when empty
	sample SLOSample
}

type sloStream struct {
	slots []sloSlot
}

// SLOTracker evaluates declarative per-stream SLOs over a sliding window
// with error-budget/burn-rate accounting. Feed it outcome deltas with
// Observe; read it via Status, the /slo HTTP handler, Export (gauges on a
// metrics registry), or WriteText (statusz section). All methods are
// nil-safe and concurrency-safe.
type SLOTracker struct {
	cfg     SLOConfig
	slotDur time.Duration

	mu      sync.Mutex
	streams map[uint64]*sloStream
}

// NewSLOTracker builds a tracker for cfg's objectives.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:     cfg,
		slotDur: cfg.Window / time.Duration(cfg.Slots),
		streams: make(map[uint64]*sloStream),
	}
}

// Observe folds one sample delta into the stream's current window slot.
func (t *SLOTracker) Observe(stream uint64, s SLOSample) {
	if t == nil {
		return
	}
	epoch := t.cfg.Clock().UnixNano() / int64(t.slotDur)
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.streams[stream]
	if st == nil {
		st = &sloStream{slots: make([]sloSlot, t.cfg.Slots)}
		for i := range st.slots {
			st.slots[i].epoch = -1
		}
		t.streams[stream] = st
	}
	slot := &st.slots[epoch%int64(t.cfg.Slots)]
	if slot.epoch != epoch {
		slot.epoch = epoch
		slot.sample = SLOSample{}
	}
	slot.sample.Authenticated += s.Authenticated
	slot.sample.Failed += s.Failed
	slot.sample.TimeToAuth.Merge(s.TimeToAuth)
}

// windowSample merges the live slots of one stream.
func (t *SLOTracker) windowSample(st *sloStream, epoch int64) SLOSample {
	var w SLOSample
	oldest := epoch - int64(t.cfg.Slots) + 1
	for i := range st.slots {
		if st.slots[i].epoch < oldest {
			continue
		}
		w.Authenticated += st.slots[i].sample.Authenticated
		w.Failed += st.slots[i].sample.Failed
		w.TimeToAuth.Merge(st.slots[i].sample.TimeToAuth)
	}
	return w
}

// ObjectiveStatus is one objective's evaluation over the current window.
type ObjectiveStatus struct {
	// Name is "auth_fraction" or "tta_p99".
	Name string `json:"name"`
	// Target is the declared objective: the minimum authenticated
	// fraction, or the maximum p99 time-to-auth in nanoseconds.
	Target float64 `json:"target"`
	// Actual is the measured value on the same scale as Target.
	Actual float64 `json:"actual"`
	// BurnRate is budget consumed over budget allowed for the window:
	// >= 1 means the objective is violated.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is 1 - BurnRate, floored at -1 for readability.
	BudgetRemaining float64 `json:"budget_remaining"`
	// State is ok, warn, or red.
	State string `json:"state"`
}

// StreamSLO is one stream's window summary plus objective evaluations.
type StreamSLO struct {
	Stream        uint64            `json:"stream"`
	Attempts      int64             `json:"attempts"`
	Authenticated int64             `json:"authenticated"`
	Failed        int64             `json:"failed"`
	AuthFraction  float64           `json:"auth_fraction"`
	TTAP50NS      float64           `json:"tta_p50_ns"`
	TTAP99NS      float64           `json:"tta_p99_ns"`
	Objectives    []ObjectiveStatus `json:"objectives,omitempty"`
	State         string            `json:"state"`
}

// SLOStatus is the full machine-readable /slo document.
type SLOStatus struct {
	AtUnixNS int64       `json:"at_unix_ns"`
	WindowNS int64       `json:"window_ns"`
	State    string      `json:"state"`
	Streams  []StreamSLO `json:"streams"`
}

// sloAllowedSlowFraction is the latency objective's error budget: the
// fraction of authentications allowed above the p99 target (by definition
// of a p99 objective).
const sloAllowedSlowFraction = 0.01

func burnState(burn float64) string {
	switch {
	case burn >= 1:
		return SLORed
	case burn > 0.5:
		return SLOWarn
	default:
		return SLOOk
	}
}

func worseState(a, b string) string {
	rank := func(s string) int {
		switch s {
		case SLORed:
			return 3
		case SLOWarn:
			return 2
		case SLOOk:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// burnOf turns a bad-event fraction and its allowance into a burn rate.
// A zero allowance means any bad event exhausts the budget immediately.
func burnOf(badFrac, allowed float64) float64 {
	if badFrac <= 0 {
		return 0
	}
	if allowed <= 0 {
		return badFrac * float64(1<<20) // effectively infinite burn, finite JSON
	}
	return badFrac / allowed
}

// countAbove estimates how many observations exceed threshold, linearly
// interpolating within the straddling bucket (mirroring Quantile).
func countAbove(h HistogramData, threshold int64) float64 {
	if h.Count == 0 {
		return 0
	}
	var above float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketUpperBound(i - 1)
		}
		hi := BucketUpperBound(i)
		switch {
		case lo >= threshold:
			above += float64(c)
		case hi <= threshold:
			// entirely below
		default:
			above += float64(c) * float64(hi-threshold) / float64(hi-lo)
		}
	}
	return above
}

// evaluate computes one stream's status from its window sample.
func (t *SLOTracker) evaluate(stream uint64, w SLOSample) StreamSLO {
	s := StreamSLO{
		Stream:        stream,
		Attempts:      w.Authenticated + w.Failed,
		Authenticated: w.Authenticated,
		Failed:        w.Failed,
		TTAP50NS:      w.TimeToAuth.P50(),
		TTAP99NS:      w.TimeToAuth.P99(),
		State:         SLOIdle,
	}
	if s.Attempts > 0 {
		s.AuthFraction = float64(w.Authenticated) / float64(s.Attempts)
	}
	if s.Attempts < t.cfg.MinSample {
		return s
	}
	s.State = SLOOk
	if q := t.cfg.MinAuthFraction; q > 0 {
		failFrac := 0.0
		if s.Attempts > 0 {
			failFrac = float64(w.Failed) / float64(s.Attempts)
		}
		burn := burnOf(failFrac, 1-q)
		o := ObjectiveStatus{
			Name:            "auth_fraction",
			Target:          q,
			Actual:          s.AuthFraction,
			BurnRate:        burn,
			BudgetRemaining: maxf(1-burn, -1),
			State:           burnState(burn),
		}
		s.Objectives = append(s.Objectives, o)
		s.State = worseState(s.State, o.State)
	}
	if p99 := t.cfg.TimeToAuthP99; p99 > 0 && w.TimeToAuth.Count > 0 {
		slowFrac := countAbove(w.TimeToAuth, p99.Nanoseconds()) / float64(w.TimeToAuth.Count)
		burn := burnOf(slowFrac, sloAllowedSlowFraction)
		o := ObjectiveStatus{
			Name:            "tta_p99",
			Target:          float64(p99.Nanoseconds()),
			Actual:          s.TTAP99NS,
			BurnRate:        burn,
			BudgetRemaining: maxf(1-burn, -1),
			State:           burnState(burn),
		}
		s.Objectives = append(s.Objectives, o)
		s.State = worseState(s.State, o.State)
	}
	return s
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Status evaluates every stream over the current window. Streams are
// sorted by ID; the document state is the worst stream state.
func (t *SLOTracker) Status() SLOStatus {
	out := SLOStatus{State: SLOIdle}
	if t == nil {
		return out
	}
	now := t.cfg.Clock()
	out.AtUnixNS = now.UnixNano()
	out.WindowNS = int64(t.cfg.Window)
	epoch := now.UnixNano() / int64(t.slotDur)
	t.mu.Lock()
	ids := make([]uint64, 0, len(t.streams))
	for id := range t.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := t.windowSample(t.streams[id], epoch)
		s := t.evaluate(id, w)
		out.Streams = append(out.Streams, s)
		out.State = worseState(out.State, s.State)
	}
	t.mu.Unlock()
	return out
}

// Red reports whether any stream's budget is currently exhausted — the
// flight-recorder trigger condition.
func (t *SLOTracker) Red() bool {
	return t != nil && t.Status().State == SLORed
}

// ServeHTTP renders Status as JSON: the machine-readable /slo endpoint the
// adaptive planner polls.
func (t *SLOTracker) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.Status())
}

// Register installs the /slo handler on mux.
func (t *SLOTracker) Register(mux *http.ServeMux) {
	mux.Handle("/slo", t)
}

// Export mirrors the current evaluation into registry gauges
// (slo.stream.<id>.*), so SLO state rides the existing /metrics
// exposition and JSONL snapshot series. Burn rates and fractions are
// scaled to parts-per-thousand (the registry is integer-valued).
func (t *SLOTracker) Export(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	st := t.Status()
	red := int64(0)
	for _, s := range st.Streams {
		prefix := fmt.Sprintf("slo.stream.%d.", s.Stream)
		reg.Gauge(prefix + "attempts").Set(s.Attempts)
		reg.Gauge(prefix + "auth_fraction_milli").Set(int64(s.AuthFraction * 1000))
		reg.Gauge(prefix + "tta_p99_ns").Set(int64(s.TTAP99NS))
		for _, o := range s.Objectives {
			reg.Gauge(prefix + o.Name + "_burn_milli").Set(int64(o.BurnRate * 1000))
		}
		if s.State == SLORed {
			red++
		}
	}
	reg.Gauge("slo.red_streams").Set(red)
}

// WriteText renders Status as a human-readable table (statusz section).
func (t *SLOTracker) WriteText(w io.Writer) error {
	st := t.Status()
	fmt.Fprintf(w, "--- slo (window %v, state %s) ---\n", time.Duration(st.WindowNS), st.State)
	if len(st.Streams) == 0 {
		_, err := fmt.Fprintln(w, "no streams observed")
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stream\tattempts\tauth%\tp99(ms)\tobjective\tburn\tbudget\tstate")
	for _, s := range st.Streams {
		if len(s.Objectives) == 0 {
			fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.2f\t-\t-\t-\t%s\n",
				s.Stream, s.Attempts, s.AuthFraction*100, s.TTAP99NS/1e6, s.State)
			continue
		}
		for i, o := range s.Objectives {
			lead := fmt.Sprintf("%d\t%d\t%.1f\t%.2f", s.Stream, s.Attempts, s.AuthFraction*100, s.TTAP99NS/1e6)
			if i > 0 {
				lead = "\t\t\t"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%s\n", lead, o.Name, o.BurnRate, o.BudgetRemaining, o.State)
		}
	}
	return tw.Flush()
}
