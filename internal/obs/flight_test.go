package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	clk := newSLOClock()
	reg := NewRegistry()
	reg.Counter("verify.cache_hits").Add(42)
	ring := NewSpanRing(16)
	ring.SetEnabled(true)
	for _, s := range lifecycleSpans() {
		ring.Record(s)
	}
	slo := newTestTracker(clk)
	slo.Observe(3, SLOSample{Authenticated: 10, Failed: 90, TimeToAuth: ttaSample(1000)})

	fr := NewFlightRecorder(FlightConfig{
		Spans:    ring,
		Registry: reg,
		SLO:      slo,
		Clock:    clk.Now,
	})
	fr.NoteSnapshot()
	clk.Advance(time.Second)
	fr.NoteFault("kill", "cycle 1")
	fr.NoteFault("restart", "cycle 1")
	if fr.Faults() != 2 {
		t.Fatalf("Faults = %d, want 2", fr.Faults())
	}

	var buf bytes.Buffer
	if err := fr.Dump(&buf, "chaos_kill"); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	d, skipped, err := ReadFlightDump(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if d.Meta.Reason != "chaos_kill" {
		t.Fatalf("reason = %q", d.Meta.Reason)
	}
	if d.Meta.Spans != len(lifecycleSpans()) || len(d.Spans) != d.Meta.Spans {
		t.Fatalf("spans: meta %d, parsed %d, want %d", d.Meta.Spans, len(d.Spans), len(lifecycleSpans()))
	}
	// One explicit NoteSnapshot plus the terminal snapshot Dump takes.
	if len(d.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(d.Snapshots))
	}
	if got := d.Snapshots[1].Metrics.Counters["verify.cache_hits"]; got != 42 {
		t.Fatalf("terminal snapshot cache_hits = %d, want 42", got)
	}
	if len(d.Faults) != 2 || d.Faults[0].Kind != "kill" || d.Faults[1].Kind != "restart" {
		t.Fatalf("faults = %+v", d.Faults)
	}
	if d.SLO == nil || d.SLO.State != SLORed {
		t.Fatalf("slo section = %+v, want red", d.SLO)
	}

	// The same dump is also a readable span stream for generic tooling.
	spans, _, err := ReadSpans(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(lifecycleSpans()) {
		t.Fatalf("ReadSpans over dump = %d spans, want %d", len(spans), len(lifecycleSpans()))
	}
}

func TestFlightRecorderFaultRingBounded(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{MaxFaults: 3, Clock: newSLOClock().Now})
	for i := 0; i < 10; i++ {
		fr.NoteFault("kill", strings.Repeat("x", i))
	}
	if fr.Faults() != 3 {
		t.Fatalf("Faults = %d, want bounded at 3", fr.Faults())
	}
	faults, _ := fr.snapshotRings()
	if faults[0].Detail != strings.Repeat("x", 7) {
		t.Fatalf("oldest kept fault = %+v, want the 8th", faults[0])
	}
}

func TestReadFlightDumpToleratesDamage(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Clock: newSLOClock().Now})
	fr.NoteFault("panic", "boom")
	var buf bytes.Buffer
	if err := fr.Dump(&buf, "panic"); err != nil {
		t.Fatal(err)
	}
	damaged := "garbage line\n" + buf.String() + `{"type":"fault","t_ns":` // torn tail
	d, skipped, err := ReadFlightDump(strings.NewReader(damaged))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if len(d.Faults) != 1 || d.Faults[0].Kind != "panic" {
		t.Fatalf("faults = %+v", d.Faults)
	}
}

func TestReadFlightDumpRejectsNonDump(t *testing.T) {
	if _, _, err := ReadFlightDump(strings.NewReader(`{"type":"span","kind":"push"}`)); err == nil {
		t.Fatal("want error for a stream with no flight_meta")
	}
}

func TestFlightRecorderNilInert(t *testing.T) {
	var fr *FlightRecorder
	fr.NoteFault("kill", "")
	fr.NoteSnapshot()
	if fr.Faults() != 0 {
		t.Fatal("nil recorder holds faults")
	}
	if err := fr.Dump(&bytes.Buffer{}, "x"); err != nil {
		t.Fatal(err)
	}
	if err := fr.DumpFile("", "x"); err != nil {
		t.Fatal(err)
	}
}
