package obs

import (
	"math"
	"sync"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram. Buckets are
// log-scale powers of two: bucket 0 counts values <= 1 (including zero and
// negatives), bucket i counts values in (2^(i-1), 2^i]. Sixty-four buckets
// cover the whole int64 range, so nanosecond latencies and buffer depths
// share one shape with no configuration.
const NumBuckets = 64

// BucketUpperBound returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the last bucket).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	// Index of the highest set bit of v-1, i.e. ceil(log2(v)).
	b := 0
	for x := uint64(v - 1); x > 0; x >>= 1 {
		b++
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// HistogramData is the plain-value form of a histogram: copyable,
// comparable, mergeable, embeddable in stats structs (verifier.Stats,
// stream.Totals). It is NOT safe for concurrent use; Histogram wraps it
// with a mutex for registry instruments.
type HistogramData struct {
	Count   int64
	Sum     int64
	MinSeen int64 // valid only when Count > 0
	MaxSeen int64
	Buckets [NumBuckets]int64
}

// Observe records one value.
func (h *HistogramData) Observe(v int64) {
	if h.Count == 0 || v < h.MinSeen {
		h.MinSeen = v
	}
	if h.Count == 0 || v > h.MaxSeen {
		h.MaxSeen = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketFor(v)]++
}

// Merge folds another histogram's observations into h. Counts and sums
// saturate at the int64 limits instead of wrapping: merging is used to
// aggregate across long-lived streams and replayed series, where a
// wrapped negative count would poison every downstream quantile.
func (h *HistogramData) Merge(o HistogramData) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinSeen < h.MinSeen {
		h.MinSeen = o.MinSeen
	}
	if h.Count == 0 || o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
	h.Count = satAdd(h.Count, o.Count)
	h.Sum = satAdd(h.Sum, o.Sum)
	for i := range h.Buckets {
		h.Buckets[i] = satAdd(h.Buckets[i], o.Buckets[i])
	}
}

// satAdd adds two int64s, clamping at the representable limits.
func satAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// DeltaFrom returns the observations h gained since prev, assuming prev is
// an earlier copy of the same accumulating histogram (bucket counts are
// monotone between the two). Min/Max of the delta are not recoverable from
// bucket counts, so the current extrema are kept as a conservative
// envelope; quantiles of the delta stay clamped to a valid range.
func (h HistogramData) DeltaFrom(prev HistogramData) HistogramData {
	d := HistogramData{
		Count:   h.Count - prev.Count,
		Sum:     h.Sum - prev.Sum,
		MinSeen: h.MinSeen,
		MaxSeen: h.MaxSeen,
	}
	if d.Count <= 0 {
		return HistogramData{}
	}
	for i := range d.Buckets {
		if v := h.Buckets[i] - prev.Buckets[i]; v > 0 {
			d.Buckets[i] = v
		}
	}
	return d
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h HistogramData) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket
// counts. Within a bucket the estimate interpolates linearly between the
// bucket bounds; exact for bucket 0 and clamped to the observed min/max.
func (h HistogramData) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketUpperBound(i - 1))
			}
			hi := float64(BucketUpperBound(i))
			frac := (rank - float64(cum)) / float64(c)
			est := lo + frac*(hi-lo)
			if est < float64(h.MinSeen) {
				est = float64(h.MinSeen)
			}
			if est > float64(h.MaxSeen) {
				est = float64(h.MaxSeen)
			}
			return est
		}
		cum += c
	}
	return float64(h.MaxSeen)
}

// P50 returns the estimated median. It is the quantile triple the
// dashboard and regression gates consume, precomputed here so callers do
// not hard-code quantile constants.
func (h HistogramData) P50() float64 { return h.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (h HistogramData) P95() float64 { return h.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (h HistogramData) P99() float64 { return h.Quantile(0.99) }

// Histogram is a concurrency-safe registry instrument over HistogramData.
type Histogram struct {
	mu   sync.Mutex
	data HistogramData
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.data.Observe(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Nanoseconds())
}

// Quantile estimates the q-th quantile of the accumulated observations
// under the instrument's lock. Shorthand for h.Data().Quantile(q); a nil
// histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Data().Quantile(q)
}

// P50 returns the estimated median of the accumulated observations.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Data returns a copy of the accumulated histogram.
func (h *Histogram) Data() HistogramData {
	if h == nil {
		return HistogramData{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.data
}

// MergeData folds a plain HistogramData into the instrument.
func (h *Histogram) MergeData(o HistogramData) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.data.Merge(o)
	h.mu.Unlock()
}
