package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind names one step of the serving-tier block lifecycle, in causal
// order: the sender emits a block (push), a server shard queues it
// (shard_enqueue), the batch signer attaches the block root's signature
// (sign_attach), each packet is framed onto the wire (mux_write), decoded
// on the receiver (decode), possibly parked awaiting a deferred batched
// signature check (deferred_park) and later resolved (sig_resolve), and
// finally authenticated or rejected. The reject reason uses the same
// taxonomy as trace events ("bad_signature", "digest_mismatch", ...), so
// spans join against diagnose culprit attribution.
type SpanKind string

const (
	SpanPush         SpanKind = "push"
	SpanShardEnqueue SpanKind = "shard_enqueue"
	SpanSignAttach   SpanKind = "sign_attach"
	SpanMuxWrite     SpanKind = "mux_write"
	SpanDecode       SpanKind = "decode"
	SpanDeferredPark SpanKind = "deferred_park"
	SpanSigResolve   SpanKind = "sig_resolve"
	SpanAuthenticate SpanKind = "authenticate"
	SpanReject       SpanKind = "reject"
)

// SpanTypeField is the value of the "type" JSON field on every span line.
// It keeps span JSONL readable by the PR 1 trace reader (ReadJSONL skips
// lines whose type it does not know, counting them as skipped) while
// letting span-aware tooling pick span lines out of a mixed stream.
const SpanTypeField = "span"

// Span is one JSONL span record. Sender- and receiver-side spans of the
// same block share a trace ID (TraceID is a pure function of stream and
// block), so the two processes link causally with no wire changes.
type Span struct {
	// Type is always "span" on encoded records.
	Type string `json:"type"`
	// Trace is the causal trace ID: TraceID(Stream, Block).
	Trace uint64 `json:"trace"`
	// Kind is the lifecycle step.
	Kind SpanKind `json:"kind"`
	// Stream is the mux stream ID (0 for single-stream pipelines).
	Stream uint64 `json:"stream"`
	// Block is the block ID the span belongs to.
	Block uint64 `json:"block"`
	// Index is the packet's authentication index, for packet-granular
	// kinds (mux_write, decode, deferred_park, sig_resolve, authenticate,
	// reject). Block-granular kinds leave it 0.
	Index uint32 `json:"index,omitempty"`
	// TimeNS is the span's wall (or simulated) time, nanoseconds since
	// the Unix epoch.
	TimeNS int64 `json:"t_ns,omitempty"`
	// DurNS is an optional duration: batch-sign root hold for
	// sign_attach, arrival-to-authentication latency for authenticate.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Reason qualifies reject spans with what failed.
	Reason string `json:"reason,omitempty"`
}

// TraceID derives the causal trace ID for a block deterministically from
// (stream, block) — a splitmix64 finalizer over the pair, so sender and
// receiver sides compute the same ID independently and distinct blocks
// scatter across the ID space.
func TraceID(stream, block uint64) uint64 {
	x := stream*0x9e3779b97f4a7c15 + block
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SpanRing is a bounded in-memory span buffer: the newest Capacity spans
// are kept, older ones are overwritten. Recording is mutex-serialized, but
// a disabled ring costs exactly one atomic load per Record call — the
// check happens before any locking — so instrumented hot paths can keep
// their span calls compiled in unconditionally. All methods are nil-safe;
// a nil *SpanRing is the fully-disabled tracer.
type SpanRing struct {
	on    atomic.Bool
	mu    sync.Mutex
	buf   []Span
	start int   // index of the oldest span when full
	n     int   // live spans in buf
	total int64 // spans recorded over the ring's lifetime
}

// DefaultSpanCapacity bounds rings constructed with a non-positive
// capacity.
const DefaultSpanCapacity = 4096

// NewSpanRing returns a ring holding up to capacity spans (the default
// when capacity is not positive). The ring starts disabled.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRing{buf: make([]Span, 0, capacity)}
}

// SetEnabled switches recording on or off. Off is the zero state.
func (r *SpanRing) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.on.Store(on)
}

// Enabled reports whether Record currently stores spans. Hot paths call
// this before assembling a Span so the disabled cost is one atomic load.
func (r *SpanRing) Enabled() bool {
	return r != nil && r.on.Load()
}

// Record stores one span, evicting the oldest when full. The span's Type
// and Trace fields are stamped here so callers only fill the lifecycle
// fields. A disabled or nil ring drops the span.
func (r *SpanRing) Record(s Span) {
	if !r.Enabled() {
		return
	}
	s.Type = SpanTypeField
	s.Trace = TraceID(s.Stream, s.Block)
	r.mu.Lock()
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, s)
		r.n++
	} else {
		r.buf[r.start] = s
		r.start++
		if r.start == cap(r.buf) {
			r.start = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// Add records a span stamped with the current wall time. Convenience for
// call sites without a flow-supplied timestamp.
func (r *SpanRing) Add(kind SpanKind, stream, block uint64, index uint32, dur time.Duration, reason string) {
	if !r.Enabled() {
		return
	}
	r.Record(Span{
		Kind:   kind,
		Stream: stream,
		Block:  block,
		Index:  index,
		TimeNS: time.Now().UnixNano(),
		DurNS:  dur.Nanoseconds(),
		Reason: reason,
	})
}

// Len returns the number of buffered spans.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns the number of spans recorded over the ring's lifetime,
// including those already evicted.
func (r *SpanRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the buffered spans oldest-first.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%cap(r.buf)])
	}
	return out
}

// WriteJSONL writes the buffered spans oldest-first, one JSON object per
// line — the same shape ReadSpans and the flight recorder consume.
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	return WriteSpansJSONL(w, r.Snapshot())
}

// WriteSpansJSONL encodes spans one JSON object per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if s.Type == "" {
			s.Type = SpanTypeField
		}
		if s.Trace == 0 {
			s.Trace = TraceID(s.Stream, s.Block)
		}
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: span: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSpans decodes span JSONL back into spans. Lines that are not span
// records — damage, interleaved stderr, or other record types sharing the
// stream (trace events, flight-recorder headers) — are skipped and
// counted, mirroring ReadJSONL's tolerance. Only an I/O error (or an
// over-long line) is a hard error.
func ReadSpans(r io.Reader) (spans []Span, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		b := sc.Bytes()
		if len(bytesTrimSpace(b)) == 0 {
			continue
		}
		var s Span
		if json.Unmarshal(b, &s) != nil || s.Type != SpanTypeField || s.Kind == "" {
			skipped++
			continue
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return spans, skipped, fmt.Errorf("obs: span: %w", err)
	}
	return spans, skipped, nil
}
