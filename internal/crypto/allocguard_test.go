package crypto

import "testing"

// The serving fast path leans on the ...Into/scratch APIs staying
// allocation-free at steady state. These guards pin that property so a
// refactor that quietly reintroduces per-call garbage fails CI rather
// than showing up as a latency regression weeks later.
//
// The race detector instruments allocations and makes AllocsPerRun
// meaningless, so every guard skips under -race.

func requireAllocFree(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
}

func TestMACScratchAllocFree(t *testing.T) {
	requireAllocFree(t)
	var s MACScratch
	key := []byte("alloc-guard-key")
	data := make([]byte, 1200)
	mac := s.Sum(key, data)
	// First Sum may grow the internal buffer; steady state must not.
	if n := testing.AllocsPerRun(100, func() {
		if !s.Verify(key, data, mac[:]) {
			t.Fatal("verify failed")
		}
	}); n > 0 {
		t.Errorf("MACScratch.Verify: %.1f allocs/op, want 0", n)
	}
}

func TestHashScratchAllocFree(t *testing.T) {
	requireAllocFree(t)
	var s HashScratch
	part := make([]byte, 512)
	s.Write(part)
	s.Sum()
	if n := testing.AllocsPerRun(100, func() {
		s.Write(part)
		s.Write(part)
		s.Sum()
	}); n > 0 {
		t.Errorf("HashScratch: %.1f allocs/op, want 0", n)
	}
}

func TestKeychainIntoAllocFree(t *testing.T) {
	requireAllocFree(t)
	kc, err := NewKeyChain([]byte("alloc-guard-seed"), 64)
	if err != nil {
		t.Fatal(err)
	}
	k64, err := kc.Key(64)
	if err != nil {
		t.Fatal(err)
	}
	var s MACScratch
	out := make([]byte, KeySize)
	if n := testing.AllocsPerRun(100, func() {
		if err := RecoverEarlierKeyInto(&s, out, k64, 64, 1); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("RecoverEarlierKeyInto: %.1f allocs/op, want 0", n)
	}
	mk := make([]byte, MACSize)
	if n := testing.AllocsPerRun(100, func() {
		DeriveMACKeyInto(&s, mk, out)
	}); n > 0 {
		t.Errorf("DeriveMACKeyInto: %.1f allocs/op, want 0", n)
	}
}

// TestSigCacheSteadyStateAllocs bounds the signature-cache hit path: a
// repeat verification of an already-cached signature must not allocate.
func TestSigCacheSteadyStateAllocs(t *testing.T) {
	requireAllocFree(t)
	signer, err := NewSigner([]byte("alloc-guard-signature-seed-32by!"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("steady-state message")
	sig := signer.Sign(msg)
	pub := signer.Public()
	c, err := NewSigCache(64)
	if err != nil {
		t.Fatal(err)
	}
	var vs VerifyScratch
	if !VerifyAnyCached(c, &vs, pub, msg, sig) {
		t.Fatal("first verify failed")
	}
	if n := testing.AllocsPerRun(100, func() {
		if !VerifyAnyCached(c, &vs, pub, msg, sig) {
			t.Fatal("cached verify failed")
		}
	}); n > 0 {
		t.Errorf("VerifyAnyCached hit: %.1f allocs/op, want 0", n)
	}
}
