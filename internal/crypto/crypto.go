// Package crypto wraps the cryptographic primitives used by the multicast
// authentication schemes: a collision-resistant hash (SHA-256), a MAC
// (HMAC-SHA256), a digital signature (Ed25519), and the one-way key chain
// that TESLA commits to in its bootstrap packet.
//
// The paper's analysis depends on the primitives only through their output
// sizes (l_hash and l_sign in Equation (3)); the sizes here are those of the
// concrete algorithms, while the analytic overhead formulas accept arbitrary
// sizes so that the paper-era values (16-byte MD5 hashes, 128-byte RSA
// signatures) can also be reproduced.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"
)

// Sizes of the concrete primitives, in bytes.
const (
	HashSize      = sha256.Size
	MACSize       = sha256.Size
	SignatureSize = ed25519.SignatureSize
	KeySize       = 16 // symmetric MAC key size used by TESLA key chains
)

// Digest is a SHA-256 hash value.
type Digest [HashSize]byte

// HashBytes hashes data with SHA-256.
func HashBytes(data []byte) Digest {
	if in := instr.Load(); in != nil {
		start := time.Now()
		d := sha256.Sum256(data)
		in.record(in.hashOps, in.hashNS, start)
		return d
	}
	return sha256.Sum256(data)
}

// HashConcat hashes the concatenation of the given byte slices. It is used
// to bind a packet's payload together with the hashes it carries, which is
// the "hash concatenation" linking step of chained-hash schemes.
func HashConcat(parts ...[]byte) Digest {
	var start time.Time
	in := instr.Load()
	if in != nil {
		start = time.Now()
	}
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	if in != nil {
		in.record(in.hashOps, in.hashNS, start)
	}
	return d
}

// MAC computes HMAC-SHA256 of data under key.
func MAC(key, data []byte) []byte {
	var start time.Time
	in := instr.Load()
	if in != nil {
		start = time.Now()
	}
	m := hmac.New(sha256.New, key)
	m.Write(data)
	sum := m.Sum(nil)
	if in != nil {
		in.record(in.macOps, in.macNS, start)
	}
	return sum
}

// VerifyMAC reports whether mac is a valid HMAC-SHA256 of data under key,
// in constant time.
func VerifyMAC(key, data, mac []byte) bool {
	return hmac.Equal(MAC(key, data), mac)
}

// Signer produces digital signatures. The sender holds a Signer; receivers
// hold the corresponding Verifier.
type Signer interface {
	// Sign signs data and returns the signature bytes.
	Sign(data []byte) []byte
	// Public returns the verification key corresponding to this signer.
	Public() Verifier
}

// Verifier checks digital signatures.
type Verifier interface {
	// Verify reports whether sig is a valid signature of data.
	Verify(data, sig []byte) bool
	// Bytes returns a serializable encoding of the public key.
	Bytes() []byte
}

type ed25519Signer struct {
	priv ed25519.PrivateKey
}

type ed25519Verifier struct {
	pub ed25519.PublicKey
}

var (
	_ Signer   = (*ed25519Signer)(nil)
	_ Verifier = (*ed25519Verifier)(nil)
)

// NewSigner deterministically derives an Ed25519 signer from a 32-byte seed.
// Deterministic derivation keeps simulations reproducible; production users
// would pass a seed from crypto/rand.
func NewSigner(seed []byte) (Signer, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("crypto: signer seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &ed25519Signer{priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// NewSignerFromString derives a signer from an arbitrary-length string by
// hashing it down to a seed. Convenient for examples and tests.
func NewSignerFromString(s string) Signer {
	seed := sha256.Sum256([]byte(s))
	signer, err := NewSigner(seed[:])
	if err != nil {
		// Unreachable: the seed is always SeedSize bytes.
		panic(err)
	}
	return signer
}

func (s *ed25519Signer) Sign(data []byte) []byte {
	if in := instr.Load(); in != nil {
		start := time.Now()
		sig := ed25519.Sign(s.priv, data)
		in.record(in.signOps, in.signNS, start)
		return sig
	}
	return ed25519.Sign(s.priv, data)
}

func (s *ed25519Signer) Public() Verifier {
	pub, ok := s.priv.Public().(ed25519.PublicKey)
	if !ok {
		panic("crypto: ed25519 private key with non-ed25519 public key")
	}
	return &ed25519Verifier{pub: pub}
}

func (v *ed25519Verifier) Verify(data, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	if in := instr.Load(); in != nil {
		start := time.Now()
		ok := ed25519.Verify(v.pub, data, sig)
		in.record(in.verifyOps, in.verifyNS, start)
		return ok
	}
	return ed25519.Verify(v.pub, data, sig)
}

func (v *ed25519Verifier) Bytes() []byte {
	out := make([]byte, len(v.pub))
	copy(out, v.pub)
	return out
}

// ParseVerifier reconstructs a Verifier from bytes produced by
// Verifier.Bytes.
func ParseVerifier(b []byte) (Verifier, error) {
	if len(b) != ed25519.PublicKeySize {
		return nil, errors.New("crypto: malformed public key")
	}
	pub := make(ed25519.PublicKey, len(b))
	copy(pub, b)
	return &ed25519Verifier{pub: pub}, nil
}
