//go:build race

package crypto

const raceEnabled = true
