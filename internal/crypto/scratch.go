package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"time"
)

// sha256BlockSize is the HMAC block size for SHA-256 (RFC 2104 B).
const sha256BlockSize = 64

// MACScratch computes HMAC-SHA256 without the per-call allocations of
// hmac.New: the ipad/opad staging area is a single flat buffer reused
// across calls, and the digest is produced by direct sha256.Sum256 calls
// (which the compiler keeps on the stack). Output is byte-identical to
// MAC. A MACScratch is not safe for concurrent use; hot paths hold one
// per goroutine (typically one per verifier).
type MACScratch struct {
	buf []byte
}

// Sum computes HMAC-SHA256(key, data). It allocates only when the
// internal buffer must grow to fit data, so steady-state calls with
// bounded data sizes are allocation-free.
func (s *MACScratch) Sum(key, data []byte) [MACSize]byte {
	var start time.Time
	in := instr.Load()
	if in != nil {
		start = time.Now()
	}
	// K0 per RFC 2104: keys longer than the block size are hashed down,
	// shorter keys zero-padded.
	var k0 [sha256BlockSize]byte
	if len(key) > sha256BlockSize {
		kd := sha256.Sum256(key)
		copy(k0[:], kd[:])
	} else {
		copy(k0[:], key)
	}
	need := sha256BlockSize + len(data)
	if cap(s.buf) < need {
		s.buf = make([]byte, 0, need)
	}
	buf := s.buf[:sha256BlockSize]
	for i := range k0 {
		buf[i] = k0[i] ^ 0x36
	}
	buf = append(buf, data...)
	inner := sha256.Sum256(buf)
	buf = buf[:sha256BlockSize]
	for i := range k0 {
		buf[i] = k0[i] ^ 0x5c
	}
	buf = append(buf, inner[:]...)
	out := sha256.Sum256(buf[:sha256BlockSize+sha256.Size])
	s.buf = buf[:0]
	if in != nil {
		in.record(in.macOps, in.macNS, start)
	}
	return out
}

// Verify reports whether mac is a valid HMAC-SHA256 of data under key, in
// constant time, without allocating.
func (s *MACScratch) Verify(key, data, mac []byte) bool {
	sum := s.Sum(key, data)
	return hmac.Equal(sum[:], mac)
}

// HashScratch hashes a concatenation of parts with a single flat buffer
// and one direct sha256.Sum256 call, avoiding the hash.Hash interface
// allocations of HashConcat. Not safe for concurrent use.
type HashScratch struct {
	buf []byte
}

// Reset discards any accumulated bytes but keeps the buffer capacity.
func (s *HashScratch) Reset() { s.buf = s.buf[:0] }

// Write appends p to the pending concatenation.
func (s *HashScratch) Write(p []byte) { s.buf = append(s.buf, p...) }

// Sum hashes the accumulated concatenation and resets the scratch for the
// next use. Output is identical to HashConcat over the same writes.
func (s *HashScratch) Sum() Digest {
	var start time.Time
	in := instr.Load()
	if in != nil {
		start = time.Now()
	}
	d := sha256.Sum256(s.buf)
	s.buf = s.buf[:0]
	if in != nil {
		in.record(in.hashOps, in.hashNS, start)
	}
	return d
}
