// Batched signature verification: the receive-side mirror of BatchSigner.
// Callers enqueue pending (pub, content, sig) checks and receive a
// deferred verdict callback when the queue resolves. Resolution dedups the
// queue by underlying signature check — every packet of a Wong–Lam tree
// block repeats one root signature, and every blob of a batch-signature
// flush shares one inner signature — so one amortized pass performs each
// distinct Ed25519 verification once. A failed deduped check falls back to
// verifying its members individually, so a forged signature is isolated
// without poisoning verdicts that happen to share its group.
package crypto

import (
	"errors"
	"fmt"
	"sync"

	"mcauth/internal/obs"
)

// pendingVerify is one enqueued signature check awaiting resolution.
type pendingVerify struct {
	pub     Verifier
	content []byte
	sig     []byte
	done    func(ok bool)
}

// VerifyTotals snapshots a BatchVerifyQueue's lifetime counters.
type VerifyTotals struct {
	// Enqueued is how many checks were submitted.
	Enqueued int64
	// Resolves counts Resolve passes that settled at least one check.
	Resolves int64
	// Checks is how many underlying public-key verifications ran
	// (including fallback re-verifies). Enqueued/Checks is the
	// amortization ratio.
	Checks int64
	// CacheHits counts checks settled from the SigCache with no
	// public-key operation at all.
	CacheHits int64
	// Fallbacks counts per-item re-verifications run because a deduped
	// group's representative check failed.
	Fallbacks int64
	// Accepted and Rejected count the verdicts delivered.
	Accepted int64
	Rejected int64
}

// AmortizationRatio returns Enqueued / Checks (0 before the first
// resolve). Above 1 means dedup and caching are paying for themselves.
func (t VerifyTotals) AmortizationRatio() float64 {
	if t.Checks == 0 {
		return 0
	}
	return float64(t.Enqueued) / float64(t.Checks)
}

// BatchVerifyQueue accumulates pending signature checks across packets
// and streams and resolves them in amortized passes. It is safe for
// concurrent use; verdict callbacks run outside the internal lock, in
// enqueue order, and may re-enter the queue. Callers own the resolve
// policy (threshold and deadline), exactly like BatchSigner's flush
// policy; the queue auto-resolves when maxPending checks accumulate so a
// missing deadline can only bound latency, not correctness.
type BatchVerifyQueue struct {
	mu      sync.Mutex
	max     int
	cache   *SigCache
	scratch VerifyScratch
	pending []pendingVerify
	totals  VerifyTotals

	// m mirrors totals into a registry (nil when unset); exported is the
	// watermark of totals already pushed, so each export adds deltas.
	m        *queueMetrics
	exported VerifyTotals
}

// queueMetrics holds the registry instruments SetMetrics exports into.
type queueMetrics struct {
	enqueued  *obs.Counter
	resolves  *obs.Counter
	checks    *obs.Counter
	cacheHits *obs.Counter
	fallbacks *obs.Counter
	accepted  *obs.Counter
	rejected  *obs.Counter
	pending   *obs.Gauge
}

// NewBatchVerifyQueue creates a queue that auto-resolves at maxPending
// accumulated checks (maxPending >= 1; 1 degenerates to immediate
// per-check verification). cache may be nil; sharing one SigCache between
// the queue and synchronous verifiers lets each settle checks the other
// already paid for.
func NewBatchVerifyQueue(maxPending int, cache *SigCache) (*BatchVerifyQueue, error) {
	if maxPending < 1 {
		return nil, fmt.Errorf("crypto: max pending %d must be >= 1", maxPending)
	}
	return &BatchVerifyQueue{max: maxPending, cache: cache}, nil
}

// MaxPending returns the auto-resolve threshold.
func (q *BatchVerifyQueue) MaxPending() int { return q.max }

// SetMetrics exports the queue's lifetime totals into reg (nil disables):
// counters verify.deferred_enqueued / _resolves / _checks / _cache_hits /
// _fallbacks / _accepted / _rejected mirror VerifyTotals, and gauge
// verify.pending_signature tracks how many checks sit parked awaiting a
// resolve pass.
func (q *BatchVerifyQueue) SetMetrics(reg *obs.Registry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if reg == nil {
		q.m = nil
		return
	}
	q.m = &queueMetrics{
		enqueued:  reg.Counter("verify.deferred_enqueued"),
		resolves:  reg.Counter("verify.deferred_resolves"),
		checks:    reg.Counter("verify.deferred_checks"),
		cacheHits: reg.Counter("verify.deferred_cache_hits"),
		fallbacks: reg.Counter("verify.deferred_fallbacks"),
		accepted:  reg.Counter("verify.deferred_accepted"),
		rejected:  reg.Counter("verify.deferred_rejected"),
		pending:   reg.Gauge("verify.pending_signature"),
	}
	q.exportLocked()
}

// exportLocked pushes the totals accrued since the last export into the
// registry instruments. Caller holds q.mu.
func (q *BatchVerifyQueue) exportLocked() {
	if q.m == nil {
		return
	}
	cur, prev := q.totals, q.exported
	q.m.enqueued.Add(cur.Enqueued - prev.Enqueued)
	q.m.resolves.Add(cur.Resolves - prev.Resolves)
	q.m.checks.Add(cur.Checks - prev.Checks)
	q.m.cacheHits.Add(cur.CacheHits - prev.CacheHits)
	q.m.fallbacks.Add(cur.Fallbacks - prev.Fallbacks)
	q.m.accepted.Add(cur.Accepted - prev.Accepted)
	q.m.rejected.Add(cur.Rejected - prev.Rejected)
	q.m.pending.Set(int64(len(q.pending)))
	q.exported = cur
}

// Cache returns the queue's shared signature cache (nil when caching is
// off), so synchronous verify paths can share it.
func (q *BatchVerifyQueue) Cache() *SigCache { return q.cache }

// Enqueue submits one signature check; done is invoked with the verdict
// when the queue resolves. content and sig are retained until then and
// must not be mutated. When the queue reaches the auto-resolve threshold
// it resolves before Enqueue returns (so done may run synchronously).
// Returns the number of checks still pending after the call.
func (q *BatchVerifyQueue) Enqueue(pub Verifier, content, sig []byte, done func(ok bool)) (int, error) {
	if done == nil {
		return 0, errors.New("crypto: nil verdict callback")
	}
	q.mu.Lock()
	q.totals.Enqueued++
	q.pending = append(q.pending, pendingVerify{pub: pub, content: content, sig: sig, done: done})
	if len(q.pending) < q.max {
		n := len(q.pending)
		q.exportLocked()
		q.mu.Unlock()
		return n, nil
	}
	items, verdicts := q.resolveLocked()
	q.exportLocked()
	q.mu.Unlock()
	deliverVerdicts(items, verdicts)
	return 0, nil
}

// Resolve settles every pending check now and returns how many verdicts
// were delivered. A no-op when nothing is pending.
func (q *BatchVerifyQueue) Resolve() int {
	q.mu.Lock()
	items, verdicts := q.resolveLocked()
	q.exportLocked()
	q.mu.Unlock()
	deliverVerdicts(items, verdicts)
	return len(items)
}

// Pending returns the number of checks awaiting resolution.
func (q *BatchVerifyQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Totals snapshots the lifetime counters.
func (q *BatchVerifyQueue) Totals() VerifyTotals {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.totals
}

// verifyGroup is one distinct underlying signature check and the pending
// items that reduce to it.
type verifyGroup struct {
	pub     Verifier
	msg     []byte // the actually-signed message (root message for blobs)
	sig     []byte // the plain / inner signature
	members []int  // indices into the pending slice
}

// resolveLocked settles the pending queue: malformed checks fail fast,
// well-formed ones are grouped by underlying (pub, message, signature)
// check, each group is verified once (through the cache when present),
// and a failed group re-verifies its members individually. Verdict
// callbacks are returned for the caller to run after unlocking.
func (q *BatchVerifyQueue) resolveLocked() ([]pendingVerify, []bool) {
	if len(q.pending) == 0 {
		return nil, nil
	}
	items := q.pending
	q.pending = nil
	verdicts := make([]bool, len(items))
	groups := make(map[sigKey]*verifyGroup)
	order := make([]sigKey, 0, len(items))
	for i, it := range items {
		msg, sig, ok := q.reduceCheck(it)
		if !ok {
			continue // verdict stays false
		}
		k := makeSigKey(it.pub, msg, sig)
		g, exists := groups[k]
		if !exists {
			// msg may point into q.scratch; copy so later reductions
			// cannot clobber it before the group is verified.
			g = &verifyGroup{pub: it.pub, msg: append([]byte(nil), msg...), sig: sig}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, i)
	}
	for _, k := range order {
		g := groups[k]
		if q.cache != nil && q.cache.seen(k) {
			q.totals.CacheHits += int64(len(g.members))
			for _, i := range g.members {
				verdicts[i] = true
			}
			continue
		}
		q.totals.Checks++
		if g.pub != nil && g.pub.Verify(g.msg, g.sig) {
			if q.cache != nil {
				q.cache.store(k)
			}
			for _, i := range g.members {
				verdicts[i] = true
			}
			continue
		}
		// The deduped check failed: isolate the bad signature by
		// re-verifying each member on its own, so a digest collision or
		// a single forged blob can never reject an honest sibling.
		for _, i := range g.members {
			q.totals.Checks++
			q.totals.Fallbacks++
			it := items[i]
			verdicts[i] = VerifyAnyCached(q.cache, &q.scratch, it.pub, it.content, it.sig)
		}
	}
	q.totals.Resolves++
	for _, ok := range verdicts {
		if ok {
			q.totals.Accepted++
		} else {
			q.totals.Rejected++
		}
	}
	return items, verdicts
}

// reduceCheck maps one pending item to its underlying plain signature
// check: (content, sig) for plain signatures, (root message, inner sig)
// for batch blobs. Malformed items report ok=false. The returned msg may
// alias q.scratch and is only valid until the next reduceCheck call.
func (q *BatchVerifyQueue) reduceCheck(it pendingVerify) (msg, sig []byte, ok bool) {
	if it.pub == nil || len(it.sig) == 0 {
		return nil, nil, false
	}
	if len(it.sig) == SignatureSize {
		return it.content, it.sig, true
	}
	count, index, inner, path, ok := splitBatchBlob(it.sig)
	if !ok {
		return nil, nil, false
	}
	leaf := batchLeafScratch(&q.scratch.hs, it.content)
	root, ok := batchRootFromPathScratch(&q.scratch.hs, leaf, index, count, path)
	if !ok {
		return nil, nil, false
	}
	q.scratch.msg = append(q.scratch.msg[:0], batchRootLabel...)
	q.scratch.msg = append(q.scratch.msg, root[:]...)
	return q.scratch.msg, inner, true
}

func deliverVerdicts(items []pendingVerify, verdicts []bool) {
	for i, it := range items {
		it.done(verdicts[i])
	}
}
