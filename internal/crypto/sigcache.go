package crypto

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// sigKey identifies one underlying signature check: which public key,
// which signed message (by digest — collision resistance of SHA-256 makes
// the digest stand in for the message), and which signature bytes. Batch
// blobs reduce to their inner (root-message, inner-signature) check, so
// every blob from the same flush shares one key.
type sigKey struct {
	pub Digest
	msg Digest
	sig [SignatureSize]byte
}

// makeSigKey builds the cache key for a plain signature check. Public
// keys are used verbatim when they are already digest-sized (Ed25519) and
// hashed down otherwise, so distinct keys can never alias.
func makeSigKey(pub Verifier, msg, sig []byte) sigKey {
	var k sigKey
	pb := verifierKeyBytes(pub)
	if len(pb) == HashSize {
		copy(k.pub[:], pb)
	} else {
		k.pub = HashBytes(pb)
	}
	k.msg = HashBytes(msg)
	copy(k.sig[:], sig)
	return k
}

// verifierKeyBytes returns a verifier's public-key bytes without copying
// for the package's own types (Bytes() allocates a defensive copy, which
// would put an allocation on every cached verify).
func verifierKeyBytes(pub Verifier) []byte {
	switch v := pub.(type) {
	case *ed25519Verifier:
		return v.pub
	case *batchVerifier:
		return verifierKeyBytes(v.inner)
	default:
		return pub.Bytes()
	}
}

// SigCacheStats snapshots a SigCache's lifetime counters.
type SigCacheStats struct {
	Hits   int64
	Misses int64
	// Evicted counts entries dropped by generation rotation.
	Evicted int64
}

// SigCache remembers signature checks that have already succeeded, so the
// same underlying Ed25519 verification is never repeated: every packet of
// a Wong–Lam tree block carries the same root signature, and every blob
// of a batch-signature flush shares one inner signature, so one real
// verify amortizes across the whole group. Only successes are stored —
// a forged signature can never become a cache hit — and the key binds
// public key, message digest, and signature bytes, so a hit is exactly as
// strong as the original check (up to SHA-256 collisions).
//
// The cache is bounded with two-generation rotation (at most 2*max
// entries): inserts and promoted hits go to the current generation; when
// it fills, it becomes the previous generation and the old previous is
// dropped. Rotation is O(1) per insert, unlike scan-based LRU. Safe for
// concurrent use.
type SigCache struct {
	mu        sync.Mutex
	max       int
	cur, prev map[sigKey]struct{}
	stats     SigCacheStats
}

// NewSigCache creates a cache holding at most 2*max verified checks.
func NewSigCache(max int) (*SigCache, error) {
	if max < 1 {
		return nil, fmt.Errorf("crypto: sig cache size %d must be >= 1", max)
	}
	return &SigCache{max: max, cur: make(map[sigKey]struct{})}, nil
}

// seen reports whether the check previously succeeded, promoting hits
// from the previous generation so hot entries survive rotation.
func (c *SigCache) seen(k sigKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cur[k]; ok {
		c.stats.Hits++
		return true
	}
	if _, ok := c.prev[k]; ok {
		c.stats.Hits++
		c.storeLocked(k)
		return true
	}
	c.stats.Misses++
	return false
}

// store records a successful check.
func (c *SigCache) store(k sigKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(k)
}

func (c *SigCache) storeLocked(k sigKey) {
	if len(c.cur) >= c.max {
		c.stats.Evicted += int64(len(c.prev))
		c.prev = c.cur
		c.cur = make(map[sigKey]struct{}, c.max)
	}
	c.cur[k] = struct{}{}
}

// Len returns the number of cached checks.
func (c *SigCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}

// Stats snapshots the lifetime counters.
func (c *SigCache) Stats() SigCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// VerifyScratch holds the reusable buffers one caller needs to verify
// plain signatures and batch blobs without allocating. Not safe for
// concurrent use; hot paths hold one per verifier.
type VerifyScratch struct {
	hs  HashScratch
	msg []byte // batch root-message staging
}

// batchLeafScratch is batchLeaf without the HashConcat allocations.
func batchLeafScratch(hs *HashScratch, content []byte) Digest {
	hs.Reset()
	hs.Write(batchLeafLabel)
	hs.Write(content)
	return hs.Sum()
}

// batchRootFromPathScratch is batchRootFromPath with node hashing done in
// the caller's scratch. Identical results.
func batchRootFromPathScratch(hs *HashScratch, leaf Digest, index, count uint32, path []byte) (Digest, bool) {
	if count == 0 || index >= count || count > MaxBatch {
		return Digest{}, false
	}
	node := leaf
	idx, width := index, count
	off := 0
	for width > 1 {
		sibling := idx ^ 1
		if sibling < width {
			if off+HashSize > len(path) {
				return Digest{}, false
			}
			hs.Reset()
			hs.Write(batchNodeLabel)
			if idx&1 == 0 {
				hs.Write(node[:])
				hs.Write(path[off : off+HashSize])
			} else {
				hs.Write(path[off : off+HashSize])
				hs.Write(node[:])
			}
			node = hs.Sum()
			off += HashSize
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if off != len(path) {
		return Digest{}, false
	}
	return node, true
}

// splitBatchBlob parses a batch signature blob into its inner signature
// and the Merkle context needed to recompute the signed root message.
func splitBatchBlob(blob []byte) (count, index uint32, sig, path []byte, ok bool) {
	if len(blob) < batchHeaderSize || blob[0] != batchSigTag {
		return 0, 0, nil, nil, false
	}
	count = binary.BigEndian.Uint32(blob[1:5])
	index = binary.BigEndian.Uint32(blob[5:9])
	sig = blob[9 : 9+SignatureSize]
	path = blob[batchHeaderSize:]
	if len(path)%HashSize != 0 {
		return 0, 0, nil, nil, false
	}
	return count, index, sig, path, true
}

// VerifyAnyCached checks sig — a plain Ed25519 signature or a batch
// signature blob — of content under pub, consulting cache to skip checks
// that already succeeded. Batch blobs always pay the (cheap) Merkle path
// walk; only the underlying public-key operation is cached. cache may be
// nil (no caching) and scratch may be nil (allocates staging per call).
// Results match Verifier.Verify / VerifyBatchBlob exactly.
func VerifyAnyCached(cache *SigCache, scratch *VerifyScratch, pub Verifier, content, sig []byte) bool {
	if pub == nil {
		return false
	}
	if len(sig) == SignatureSize {
		return verifyCachedPlain(cache, pub, content, sig)
	}
	if scratch == nil {
		scratch = &VerifyScratch{}
	}
	count, index, inner, path, ok := splitBatchBlob(sig)
	if !ok {
		return false
	}
	leaf := batchLeafScratch(&scratch.hs, content)
	root, ok := batchRootFromPathScratch(&scratch.hs, leaf, index, count, path)
	if !ok {
		return false
	}
	scratch.msg = append(scratch.msg[:0], batchRootLabel...)
	scratch.msg = append(scratch.msg, root[:]...)
	return verifyCachedPlain(cache, pub, scratch.msg, inner)
}

// verifyCachedPlain runs one plain signature check through the cache.
func verifyCachedPlain(cache *SigCache, pub Verifier, msg, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	if cache == nil {
		return pub.Verify(msg, sig)
	}
	k := makeSigKey(pub, msg, sig)
	if cache.seen(k) {
		return true
	}
	if !pub.Verify(msg, sig) {
		return false
	}
	cache.store(k)
	return true
}
