package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"mcauth/internal/obs"
)

func TestHashBytesDeterministic(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	if a != b {
		t.Error("same input must hash identically")
	}
	c := HashBytes([]byte("hellp"))
	if a == c {
		t.Error("different inputs collided")
	}
}

func TestHashConcatBoundary(t *testing.T) {
	// HashConcat must equal hashing the raw concatenation; two different
	// splits of the same bytes agree (we bind structure at the packet
	// encoding layer, not here).
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a != b {
		t.Error("HashConcat must hash the concatenation")
	}
	if a != HashBytes([]byte("abc")) {
		t.Error("HashConcat disagrees with HashBytes")
	}
}

func TestMACRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef")
	msg := []byte("stream packet 42")
	mac := MAC(key, msg)
	if !VerifyMAC(key, msg, mac) {
		t.Error("valid MAC rejected")
	}
	if VerifyMAC(key, []byte("stream packet 43"), mac) {
		t.Error("MAC accepted for different message")
	}
	if VerifyMAC([]byte("0123456789abcdeg"), msg, mac) {
		t.Error("MAC accepted under different key")
	}
	mac[0] ^= 1
	if VerifyMAC(key, msg, mac) {
		t.Error("tampered MAC accepted")
	}
}

func TestSignerRoundTrip(t *testing.T) {
	s := NewSignerFromString("sender")
	msg := []byte("block signature")
	sig := s.Sign(msg)
	if len(sig) != SignatureSize {
		t.Fatalf("signature size %d, want %d", len(sig), SignatureSize)
	}
	v := s.Public()
	if !v.Verify(msg, sig) {
		t.Error("valid signature rejected")
	}
	if v.Verify([]byte("other"), sig) {
		t.Error("signature accepted for different message")
	}
	sig[3] ^= 0xff
	if v.Verify(msg, sig) {
		t.Error("tampered signature accepted")
	}
}

func TestSignerRejectsBadSeed(t *testing.T) {
	if _, err := NewSigner([]byte("short")); err == nil {
		t.Error("short seed should be rejected")
	}
}

func TestVerifierSerializeRoundTrip(t *testing.T) {
	s := NewSignerFromString("sender")
	msg := []byte("hello")
	sig := s.Sign(msg)
	parsed, err := ParseVerifier(s.Public().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Verify(msg, sig) {
		t.Error("parsed verifier rejected valid signature")
	}
	if _, err := ParseVerifier([]byte{1, 2, 3}); err == nil {
		t.Error("malformed public key should be rejected")
	}
}

func TestVerifierRejectsWrongLengthSig(t *testing.T) {
	s := NewSignerFromString("sender")
	if s.Public().Verify([]byte("m"), []byte("too short")) {
		t.Error("short signature accepted")
	}
}

func TestDifferentSignersDistinct(t *testing.T) {
	a := NewSignerFromString("a")
	b := NewSignerFromString("b")
	msg := []byte("m")
	if b.Public().Verify(msg, a.Sign(msg)) {
		t.Error("signature verified under the wrong public key")
	}
}

func TestKeyChainConstruction(t *testing.T) {
	kc, err := NewKeyChain([]byte("seed"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if kc.Len() != 10 {
		t.Fatalf("Len = %d, want 10", kc.Len())
	}
	commit := kc.Commitment()
	for i := 1; i <= 10; i++ {
		k, err := kc.Key(i)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyAgainstCommitment(commit, k, i) {
			t.Errorf("key %d failed commitment verification", i)
		}
	}
}

func TestKeyChainErrors(t *testing.T) {
	if _, err := NewKeyChain([]byte("seed"), 0); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := NewKeyChain(nil, 5); err == nil {
		t.Error("empty seed should fail")
	}
	kc, err := NewKeyChain([]byte("seed"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kc.Key(0); err == nil {
		t.Error("Key(0) should fail (commitment is not a usable key)")
	}
	if _, err := kc.Key(6); err == nil {
		t.Error("Key beyond chain should fail")
	}
}

func TestKeyChainRecovery(t *testing.T) {
	kc, err := NewKeyChain([]byte("seed"), 20)
	if err != nil {
		t.Fatal(err)
	}
	k15, err := kc.Key(15)
	if err != nil {
		t.Fatal(err)
	}
	// A lost K_7 is recoverable from K_15.
	k7, err := RecoverEarlierKey(k15, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kc.Key(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k7, want) {
		t.Error("recovered key differs from chain key")
	}
	if _, err := RecoverEarlierKey(k15, 15, 15); err == nil {
		t.Error("recovering same index should fail")
	}
	if _, err := RecoverEarlierKey(k15, 15, -1); err == nil {
		t.Error("negative target should fail")
	}
}

func TestKeyChainForgeryRejected(t *testing.T) {
	kc, err := NewKeyChain([]byte("seed"), 5)
	if err != nil {
		t.Fatal(err)
	}
	commit := kc.Commitment()
	fake := make([]byte, KeySize)
	if VerifyAgainstCommitment(commit, fake, 3) {
		t.Error("arbitrary bytes verified against commitment")
	}
	k3, err := kc.Key(3)
	if err != nil {
		t.Fatal(err)
	}
	// A genuine key claimed at the wrong index must fail.
	if VerifyAgainstCommitment(commit, k3, 2) {
		t.Error("key accepted at wrong index")
	}
	if VerifyAgainstCommitment(commit, k3, 0) {
		t.Error("index 0 must never verify")
	}
}

func TestDeriveMACKeyDomainSeparation(t *testing.T) {
	kc, err := NewKeyChain([]byte("seed"), 3)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := kc.Key(1)
	if err != nil {
		t.Fatal(err)
	}
	mk := DeriveMACKey(k1)
	if bytes.Equal(mk, k1) {
		t.Error("MAC key must differ from chain key")
	}
	if bytes.Equal(mk, prfStep(k1)) {
		t.Error("MAC key must differ from next chain element")
	}
}

func TestKeyChainDeterministic(t *testing.T) {
	a, err := NewKeyChain([]byte("s"), 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyChain([]byte("s"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Commitment(), b.Commitment()) {
		t.Error("same seed must give same chain")
	}
}

// Property: for random seeds and indices, every chain key verifies against
// the commitment and recovery is consistent.
func TestKeyChainProperty(t *testing.T) {
	f := func(seed []byte, ln uint8) bool {
		if len(seed) == 0 {
			seed = []byte{0}
		}
		length := int(ln%30) + 2
		kc, err := NewKeyChain(seed, length)
		if err != nil {
			return false
		}
		last, err := kc.Key(length)
		if err != nil {
			return false
		}
		first, err := RecoverEarlierKey(last, length, 1)
		if err != nil {
			return false
		}
		want, err := kc.Key(1)
		if err != nil {
			return false
		}
		return bytes.Equal(first, want) &&
			VerifyAgainstCommitment(kc.Commitment(), last, length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntervalKeyID(t *testing.T) {
	a := IntervalKeyID(7)
	b := IntervalKeyID(8)
	if bytes.Equal(a, b) {
		t.Error("distinct indices must encode distinctly")
	}
	if len(a) != 8 {
		t.Errorf("encoded ID length %d, want 8", len(a))
	}
}

func TestInstrumentationCountsOps(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Uninstrument()

	HashBytes([]byte("data"))
	HashConcat([]byte("a"), []byte("b"))
	mac := MAC([]byte("key"), []byte("data"))
	VerifyMAC([]byte("key"), []byte("data"), mac)
	signer := NewSignerFromString("instr")
	sig := signer.Sign([]byte("msg"))
	signer.Public().Verify([]byte("msg"), sig)

	snap := reg.Snapshot()
	if got := snap.Counters["crypto.hash_ops"]; got != 2 {
		t.Errorf("hash_ops = %d, want 2", got)
	}
	// VerifyMAC recomputes the MAC, so two MAC ops total.
	if got := snap.Counters["crypto.mac_ops"]; got != 2 {
		t.Errorf("mac_ops = %d, want 2", got)
	}
	if got := snap.Counters["crypto.sign_ops"]; got != 1 {
		t.Errorf("sign_ops = %d, want 1", got)
	}
	if got := snap.Counters["crypto.verify_ops"]; got != 1 {
		t.Errorf("verify_ops = %d, want 1", got)
	}
	if snap.Counters["crypto.sign_ns"] <= 0 {
		t.Error("sign wall time not recorded")
	}

	Uninstrument()
	HashBytes([]byte("more"))
	if got := reg.Snapshot().Counters["crypto.hash_ops"]; got != 2 {
		t.Errorf("hash_ops after Uninstrument = %d, want 2", got)
	}
}
