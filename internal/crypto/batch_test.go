package crypto

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func batchContents(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("block-root-%04d", i))
	}
	return out
}

func TestBatchSignVerifyAllSizes(t *testing.T) {
	signer := NewSignerFromString("batch")
	pub := NewBatchVerifier(signer.Public())
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64} {
		contents := batchContents(n)
		blobs, err := BatchSign(signer, contents)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, blob := range blobs {
			if len(blob) == SignatureSize {
				t.Fatalf("n=%d: blob %d is indistinguishable from a plain signature", n, i)
			}
			if !pub.Verify(contents[i], blob) {
				t.Errorf("n=%d: blob %d does not verify", n, i)
			}
			// A blob only authenticates its own leaf.
			other := contents[(i+1)%n]
			if n > 1 && pub.Verify(other, blob) {
				t.Errorf("n=%d: blob %d verifies the wrong content", n, i)
			}
		}
	}
}

func TestBatchVerifierStillAcceptsPlainSignatures(t *testing.T) {
	signer := NewSignerFromString("plain")
	pub := NewBatchVerifier(signer.Public())
	msg := []byte("ordinary message")
	sig := signer.Sign(msg)
	if !pub.Verify(msg, sig) {
		t.Fatal("plain signature rejected by batch verifier")
	}
	if pub.Verify([]byte("other"), sig) {
		t.Fatal("plain signature verified wrong message")
	}
}

func TestBatchCapableSignerRoundTrip(t *testing.T) {
	signer := BatchCapable(NewSignerFromString("capable"))
	if BatchCapable(signer) != signer {
		t.Fatal("double wrap should be a no-op")
	}
	msg := []byte("content")
	if !signer.Public().Verify(msg, signer.Sign(msg)) {
		t.Fatal("plain path broken")
	}
	blobs, err := BatchSign(signer, [][]byte{msg, []byte("second")})
	if err != nil {
		t.Fatal(err)
	}
	if !signer.Public().Verify(msg, blobs[0]) {
		t.Fatal("batch path broken")
	}
	if !bytes.Equal(signer.Public().Bytes(), NewSignerFromString("capable").Public().Bytes()) {
		t.Fatal("wrapping changed the public key encoding")
	}
}

func TestBatchBlobTamperRejected(t *testing.T) {
	signer := NewSignerFromString("tamper")
	pub := NewBatchVerifier(signer.Public())
	contents := batchContents(5)
	blobs, err := BatchSign(signer, contents)
	if err != nil {
		t.Fatal(err)
	}
	blob := blobs[2]
	for bit := 0; bit < len(blob)*8; bit += 7 {
		evil := append([]byte(nil), blob...)
		evil[bit/8] ^= 1 << (bit % 8)
		if pub.Verify(contents[2], evil) {
			t.Fatalf("accepted blob with bit %d flipped", bit)
		}
	}
	// Truncations and extensions must fail too.
	for _, cut := range []int{1, SignatureSize, len(blob) - 1} {
		if pub.Verify(contents[2], blob[:cut]) {
			t.Fatalf("accepted truncation to %d bytes", cut)
		}
	}
	if pub.Verify(contents[2], append(append([]byte(nil), blob...), 0)) {
		t.Fatal("accepted extended blob")
	}
}

func TestBatchSignValidation(t *testing.T) {
	signer := NewSignerFromString("v")
	if _, err := BatchSign(nil, batchContents(1)); err == nil {
		t.Error("nil signer accepted")
	}
	if _, err := BatchSign(signer, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := BatchSign(signer, batchContents(MaxBatch+1)); err == nil {
		t.Error("oversized batch accepted")
	}
}

func TestBatchSignerAutoFlushAndTotals(t *testing.T) {
	signer := NewSignerFromString("auto")
	b, err := NewBatchSigner(signer, 4)
	if err != nil {
		t.Fatal(err)
	}
	contents := batchContents(10)
	sigs := make([][]byte, len(contents))
	for i, c := range contents {
		i := i
		pending, err := b.Enqueue(c, func(sig []byte) { sigs[i] = sig })
		if err != nil {
			t.Fatal(err)
		}
		wantPending := (i + 1) % 4
		if pending != wantPending {
			t.Fatalf("after enqueue %d: pending %d, want %d", i, pending, wantPending)
		}
	}
	// 8 of 10 signed by two auto-flushes; flush the tail.
	signed, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if signed != 2 {
		t.Fatalf("final flush signed %d, want 2", signed)
	}
	if again, _ := b.Flush(); again != 0 {
		t.Fatalf("idle flush signed %d", again)
	}
	pub := b.Public()
	for i, sig := range sigs {
		if sig == nil {
			t.Fatalf("content %d never signed", i)
		}
		if !pub.Verify(contents[i], sig) {
			t.Fatalf("content %d does not verify", i)
		}
	}
	tot := b.Totals()
	if tot.Signatures != 3 || tot.SignedRoots != 10 || tot.Flushes != 3 {
		t.Fatalf("totals %+v, want 3 signatures over 10 roots in 3 flushes", tot)
	}
	if ratio := tot.AmortizationRatio(); ratio <= 1 {
		t.Fatalf("amortization ratio %v, want > 1", ratio)
	}
}

func TestBatchSignerConcurrentEnqueue(t *testing.T) {
	signer := NewSignerFromString("conc")
	b, err := NewBatchSigner(signer, 7)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var (
		mu    sync.Mutex
		got   int
		wg    sync.WaitGroup
		pub   = b.Public()
		check = func(content, sig []byte) {
			if !pub.Verify(content, sig) {
				t.Error("concurrent signature does not verify")
			}
			mu.Lock()
			got++
			mu.Unlock()
		}
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				content := []byte(fmt.Sprintf("g%d-i%d", g, i))
				if _, err := b.Enqueue(content, func(sig []byte) { check(content, sig) }); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != goroutines*perG {
		t.Fatalf("delivered %d signatures, want %d", got, goroutines*perG)
	}
	tot := b.Totals()
	if tot.SignedRoots != goroutines*perG {
		t.Fatalf("signed roots %d, want %d", tot.SignedRoots, goroutines*perG)
	}
	if tot.Signatures >= tot.SignedRoots {
		t.Fatalf("no amortization: %d signatures for %d roots", tot.Signatures, tot.SignedRoots)
	}
}

func TestNewBatchSignerValidation(t *testing.T) {
	signer := NewSignerFromString("nv")
	if _, err := NewBatchSigner(nil, 4); err == nil {
		t.Error("nil signer accepted")
	}
	for _, k := range []int{0, -1, MaxBatch + 1} {
		if _, err := NewBatchSigner(signer, k); err == nil {
			t.Errorf("max batch %d accepted", k)
		}
	}
	b, err := NewBatchSigner(signer, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Enqueue([]byte("x"), nil); err == nil {
		t.Error("nil deliver accepted")
	}
}
