package crypto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KeyChain is the TESLA one-way key chain: keys K_n, K_{n-1}, ..., K_0 where
// K_{i-1} = F(K_i) for a pseudo-random function F. The sender draws keys in
// the forward direction K_1, K_2, ..., so a receiver holding the commitment
// K_0 can authenticate any later-disclosed key by iterating F, and a lost
// key K_i can be recovered from any subsequent key K_j (j > i) by applying
// F (j - i) times. Security rests on F being one-way.
//
// F is instantiated as HMAC-SHA256 keyed by the chain element over a fixed
// domain-separation label, truncated to KeySize bytes. A second PRF F'
// (different label) derives the per-interval MAC key from the chain element,
// as in the TESLA specification, so that disclosing a chain element never
// discloses a MAC key directly.
type KeyChain struct {
	keys [][]byte // keys[i] = K_i; keys[0] is the commitment
}

var (
	labelChain = []byte("tesla-chain-v1")
	labelMAC   = []byte("tesla-mackey-v1")
)

// prfStep computes K_{i-1} from K_i.
func prfStep(key []byte) []byte {
	return MAC(key, labelChain)[:KeySize]
}

// DeriveMACKey computes the per-interval MAC key K'_i from chain element
// K_i.
func DeriveMACKey(chainKey []byte) []byte {
	return MAC(chainKey, labelMAC)[:KeySize]
}

// NewKeyChain builds a chain of length+1 elements (K_0 .. K_length) from a
// secret seed (which becomes K_length, the last element generated... i.e.
// the anchor of the reverse iteration). length must be positive.
func NewKeyChain(seed []byte, length int) (*KeyChain, error) {
	if length <= 0 {
		return nil, fmt.Errorf("crypto: key chain length must be positive, got %d", length)
	}
	if len(seed) == 0 {
		return nil, errors.New("crypto: key chain seed must be non-empty")
	}
	keys := make([][]byte, length+1)
	anchor := MAC(seed, labelChain)[:KeySize]
	keys[length] = anchor
	for i := length; i > 0; i-- {
		keys[i-1] = prfStep(keys[i])
	}
	return &KeyChain{keys: keys}, nil
}

// Len returns the number of usable (non-commitment) keys K_1 .. K_n.
func (kc *KeyChain) Len() int { return len(kc.keys) - 1 }

// Commitment returns K_0, the value the sender signs into the bootstrap
// packet.
func (kc *KeyChain) Commitment() []byte {
	return clone(kc.keys[0])
}

// Key returns chain element K_i for 1 <= i <= Len().
func (kc *KeyChain) Key(i int) ([]byte, error) {
	if i < 1 || i > kc.Len() {
		return nil, fmt.Errorf("crypto: key index %d out of [1,%d]", i, kc.Len())
	}
	return clone(kc.keys[i]), nil
}

// VerifyAgainstCommitment reports whether key is the genuine chain element
// K_i relative to commitment K_0, by iterating the PRF i times.
func VerifyAgainstCommitment(commitment, key []byte, i int) bool {
	if i < 1 {
		return false
	}
	cur := clone(key)
	for step := 0; step < i; step++ {
		cur = prfStep(cur)
	}
	return bytesEqual(cur, commitment)
}

// RecoverEarlierKey derives K_target from a later element K_from
// (target < from). It returns an error if target >= from.
func RecoverEarlierKey(fromKey []byte, from, target int) ([]byte, error) {
	if target >= from {
		return nil, fmt.Errorf("crypto: cannot recover key %d from earlier key %d", target, from)
	}
	if target < 0 {
		return nil, fmt.Errorf("crypto: negative key index %d", target)
	}
	cur := clone(fromKey)
	for i := from; i > target; i-- {
		cur = prfStep(cur)
	}
	return cur, nil
}

// prfStepInto computes K_{i-1} from K_i into out (KeySize bytes) using
// scratch, allocating nothing in steady state. out and key may alias: the
// key is consumed before out is written.
func prfStepInto(s *MACScratch, out, key []byte) {
	sum := s.Sum(key, labelChain)
	copy(out[:KeySize], sum[:KeySize])
}

// DeriveMACKeyInto derives the per-interval MAC key K'_i from chain
// element K_i into out (KeySize bytes) using scratch. Identical output to
// DeriveMACKey.
func DeriveMACKeyInto(s *MACScratch, out, chainKey []byte) {
	sum := s.Sum(chainKey, labelMAC)
	copy(out[:KeySize], sum[:KeySize])
}

// RecoverEarlierKeyInto derives K_target from a later element K_from into
// out (KeySize bytes) using scratch, with identical results to
// RecoverEarlierKey but no per-step allocations. out and fromKey may
// alias.
func RecoverEarlierKeyInto(s *MACScratch, out, fromKey []byte, from, target int) error {
	if target >= from {
		return fmt.Errorf("crypto: cannot recover key %d from earlier key %d", target, from)
	}
	if target < 0 {
		return fmt.Errorf("crypto: negative key index %d", target)
	}
	var cur [KeySize]byte
	copy(cur[:], fromKey)
	for i := from; i > target; i-- {
		prfStepInto(s, cur[:], cur[:])
	}
	copy(out[:KeySize], cur[:])
	return nil
}

// IntervalKeyID encodes a key index for inclusion in wire packets.
func IntervalKeyID(i int) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	return buf[:]
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
