package crypto

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mcauth/internal/obs"
)

// TestMACScratchMatchesHMAC cross-checks the flat-buffer HMAC against the
// stdlib implementation across the RFC 2104 key-length regimes.
func TestMACScratchMatchesHMAC(t *testing.T) {
	var s MACScratch
	keyLens := []int{0, 1, 16, 32, 63, 64, 65, 128, 200}
	dataLens := []int{0, 1, 55, 64, 100, 1000}
	for _, kl := range keyLens {
		for _, dl := range dataLens {
			key := bytes.Repeat([]byte{byte(kl + 1)}, kl)
			data := bytes.Repeat([]byte{byte(dl + 7)}, dl)
			want := MAC(key, data)
			got := s.Sum(key, data)
			if !bytes.Equal(got[:], want) {
				t.Fatalf("MACScratch.Sum(key %d, data %d) diverges from MAC", kl, dl)
			}
			if !s.Verify(key, data, want) {
				t.Fatalf("MACScratch.Verify rejects genuine MAC (key %d, data %d)", kl, dl)
			}
			want[0] ^= 1
			if s.Verify(key, data, want) {
				t.Fatalf("MACScratch.Verify accepts corrupted MAC (key %d, data %d)", kl, dl)
			}
		}
	}
}

// TestHashScratchMatchesHashConcat checks the flat-buffer concatenation
// hash against HashConcat.
func TestHashScratchMatchesHashConcat(t *testing.T) {
	var s HashScratch
	parts := [][]byte{[]byte("alpha"), {}, []byte("beta"), bytes.Repeat([]byte{9}, 500)}
	want := HashConcat(parts...)
	for _, p := range parts {
		s.Write(p)
	}
	if got := s.Sum(); got != want {
		t.Fatalf("HashScratch.Sum diverges from HashConcat")
	}
	// Sum resets: a second round must match a fresh concatenation.
	s.Write([]byte("gamma"))
	if got, want := s.Sum(), HashConcat([]byte("gamma")); got != want {
		t.Fatalf("HashScratch did not reset after Sum")
	}
}

// TestKeychainIntoMatchesLegacy checks the Into key-chain derivations
// against the allocating originals.
func TestKeychainIntoMatchesLegacy(t *testing.T) {
	kc, err := NewKeyChain([]byte("into-seed"), 40)
	if err != nil {
		t.Fatal(err)
	}
	var s MACScratch
	k30, _ := kc.Key(30)
	for target := 0; target < 30; target += 7 {
		want, err := RecoverEarlierKey(k30, 30, target)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, KeySize)
		if err := RecoverEarlierKeyInto(&s, got, k30, 30, target); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("RecoverEarlierKeyInto(30 -> %d) diverges", target)
		}
	}
	// Aliased in-place recovery.
	aliased := append([]byte(nil), k30...)
	if err := RecoverEarlierKeyInto(&s, aliased, aliased, 30, 5); err != nil {
		t.Fatal(err)
	}
	want, _ := RecoverEarlierKey(k30, 30, 5)
	if !bytes.Equal(aliased, want) {
		t.Fatalf("aliased RecoverEarlierKeyInto diverges")
	}
	if err := RecoverEarlierKeyInto(&s, aliased, k30, 30, 30); err == nil {
		t.Fatalf("RecoverEarlierKeyInto accepted target >= from")
	}
	mk := make([]byte, KeySize)
	DeriveMACKeyInto(&s, mk, k30)
	if !bytes.Equal(mk, DeriveMACKey(k30)) {
		t.Fatalf("DeriveMACKeyInto diverges from DeriveMACKey")
	}
}

// TestVerifyAnyCachedPlainAndBlob checks cached verification against the
// uncached paths for both signature forms, and that hits skip the
// public-key operation.
func TestVerifyAnyCachedPlainAndBlob(t *testing.T) {
	signer := NewSignerFromString("vac")
	pub := signer.Public()
	cache, err := NewSigCache(64)
	if err != nil {
		t.Fatal(err)
	}
	var scratch VerifyScratch

	msg := []byte("plain message")
	sig := signer.Sign(msg)
	for round := 0; round < 3; round++ {
		if !VerifyAnyCached(cache, &scratch, pub, msg, sig) {
			t.Fatalf("round %d: genuine plain signature rejected", round)
		}
	}
	st := cache.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("plain sig cache stats = %+v, want 2 hits / 1 miss", st)
	}

	contents := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	blobs, err := BatchSign(signer, contents)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range contents {
		if !VerifyAnyCached(cache, &scratch, pub, c, blobs[i]) {
			t.Fatalf("blob %d rejected", i)
		}
		if !VerifyBatchBlob(pub, c, blobs[i]) {
			t.Fatalf("blob %d rejected by legacy path", i)
		}
	}
	// All five blobs share one inner signature: one miss, four hits.
	st = cache.Stats()
	if st.Misses != 2 {
		t.Fatalf("after blob batch: misses = %d, want 2 (one per distinct check)", st.Misses)
	}

	// Cross-content forgery: a valid blob must not authenticate other
	// content, cached or not.
	if VerifyAnyCached(cache, &scratch, pub, []byte("z"), blobs[0]) {
		t.Fatalf("blob accepted for wrong content")
	}
	// Corrupted inner signature never caches.
	bad := append([]byte(nil), blobs[1]...)
	bad[9] ^= 1
	for round := 0; round < 2; round++ {
		if VerifyAnyCached(cache, &scratch, pub, contents[1], bad) {
			t.Fatalf("round %d: corrupted blob accepted", round)
		}
	}
	// Wrong-key plain signature never caches.
	otherPub := NewSignerFromString("vac-other").Public()
	for round := 0; round < 2; round++ {
		if VerifyAnyCached(cache, &scratch, otherPub, msg, sig) {
			t.Fatalf("round %d: signature accepted under wrong key", round)
		}
	}
	// Nil cache and nil scratch still verify correctly.
	if !VerifyAnyCached(nil, nil, pub, msg, sig) {
		t.Fatalf("nil-cache verify rejected genuine signature")
	}
}

// TestSigCacheRotation checks the two-generation bound: the cache never
// exceeds 2*max entries and old entries are evicted, not hit.
func TestSigCacheRotation(t *testing.T) {
	cache, err := NewSigCache(8)
	if err != nil {
		t.Fatal(err)
	}
	var k sigKey
	for i := 0; i < 100; i++ {
		k.msg[0], k.msg[1] = byte(i), byte(i>>8)
		cache.store(k)
		if n := cache.Len(); n > 16 {
			t.Fatalf("after %d inserts cache holds %d > 2*max entries", i+1, n)
		}
	}
	if cache.Stats().Evicted == 0 {
		t.Fatalf("100 inserts into a 8-entry cache evicted nothing")
	}
	// The newest entry is present; the oldest was rotated out.
	k.msg[0], k.msg[1] = 99, 0
	if !cache.seen(k) {
		t.Fatalf("newest entry missing")
	}
	k.msg[0], k.msg[1] = 0, 0
	if cache.seen(k) {
		t.Fatalf("oldest entry survived 100 inserts")
	}
}

// TestBatchVerifyQueueDedup checks that identical underlying checks are
// verified once and verdicts are delivered in enqueue order.
func TestBatchVerifyQueueDedup(t *testing.T) {
	signer := NewSignerFromString("bvq")
	pub := signer.Public()
	cache, _ := NewSigCache(64)
	q, err := NewBatchVerifyQueue(100, cache)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("shared root message")
	sig := signer.Sign(msg)
	var got []bool
	for i := 0; i < 10; i++ {
		if _, err := q.Enqueue(pub, msg, sig, func(ok bool) { got = append(got, ok) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := q.Resolve(); n != 10 {
		t.Fatalf("Resolve settled %d checks, want 10", n)
	}
	if len(got) != 10 {
		t.Fatalf("got %d verdicts, want 10", len(got))
	}
	for i, ok := range got {
		if !ok {
			t.Fatalf("verdict %d is reject, want accept", i)
		}
	}
	tot := q.Totals()
	if tot.Checks != 1 {
		t.Fatalf("10 identical checks ran %d public-key ops, want 1", tot.Checks)
	}
	if r := tot.AmortizationRatio(); r != 10 {
		t.Fatalf("amortization ratio = %g, want 10", r)
	}

	// A second round of the same check settles entirely from the cache.
	q.Enqueue(pub, msg, sig, func(bool) {})
	q.Resolve()
	if tot := q.Totals(); tot.Checks != 1 || tot.CacheHits != 1 {
		t.Fatalf("cached re-check totals = %+v, want no new checks and 1 cache hit", tot)
	}
}

// TestBatchVerifyQueueFallback checks that a failed group re-verifies
// per item, isolating the bad signature without poisoning good ones.
func TestBatchVerifyQueueFallback(t *testing.T) {
	signer := NewSignerFromString("bvq-fb")
	pub := signer.Public()
	q, err := NewBatchVerifyQueue(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := []byte("good message")
	goodSig := signer.Sign(good)
	badSig := append([]byte(nil), goodSig...)
	badSig[3] ^= 1

	verdicts := make(map[string]bool)
	q.Enqueue(pub, good, goodSig, func(ok bool) { verdicts["good1"] = ok })
	q.Enqueue(pub, good, badSig, func(ok bool) { verdicts["bad"] = ok })
	q.Enqueue(pub, good, goodSig, func(ok bool) { verdicts["good2"] = ok })
	q.Resolve()
	if !verdicts["good1"] || !verdicts["good2"] {
		t.Fatalf("good signatures rejected: %+v", verdicts)
	}
	if verdicts["bad"] {
		t.Fatalf("forged signature accepted")
	}
	tot := q.Totals()
	if tot.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (the forged group's lone member)", tot.Fallbacks)
	}
	if tot.Accepted != 2 || tot.Rejected != 1 {
		t.Fatalf("totals = %+v, want 2 accepted / 1 rejected", tot)
	}
}

// TestBatchVerifyQueueAutoResolve checks the threshold-triggered resolve
// and that blob checks reduce to their shared inner signature.
func TestBatchVerifyQueueAutoResolve(t *testing.T) {
	signer := NewSignerFromString("bvq-auto")
	pub := signer.Public()
	contents := make([][]byte, 8)
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("content-%d", i))
	}
	blobs, err := BatchSign(signer, contents)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewBatchVerifyQueue(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	settled := 0
	for i := range contents {
		pending, err := q.Enqueue(pub, contents[i], blobs[i], func(ok bool) {
			if !ok {
				t.Errorf("blob verdict reject")
			}
			settled++
		})
		if err != nil {
			t.Fatal(err)
		}
		if i < 7 && pending != i+1 {
			t.Fatalf("pending = %d after %d enqueues", pending, i+1)
		}
	}
	if settled != 8 {
		t.Fatalf("auto-resolve settled %d, want 8", settled)
	}
	if tot := q.Totals(); tot.Checks != 1 {
		t.Fatalf("8 blobs of one batch ran %d public-key ops, want 1", tot.Checks)
	}
}

// TestSigCacheConcurrent hammers one cache from many goroutines under the
// race detector.
func TestSigCacheConcurrent(t *testing.T) {
	cache, _ := NewSigCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var k sigKey
			for i := 0; i < 200; i++ {
				k.msg[0], k.msg[1] = byte(i), byte(g)
				if i%2 == 0 {
					cache.store(k)
				} else {
					cache.seen(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.Len() > 64 {
		t.Fatalf("cache exceeded bound: %d", cache.Len())
	}
}

// TestBatchVerifyQueueSetMetrics checks that lifetime totals and the
// pending depth are mirrored into registry instruments.
func TestBatchVerifyQueueSetMetrics(t *testing.T) {
	signer := NewSignerFromString("bvq-metrics")
	pub := signer.Public()
	q, err := NewBatchVerifyQueue(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	q.SetMetrics(reg)

	msg := []byte("metrics message")
	sig := signer.Sign(msg)
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue(pub, msg, sig, func(bool) {}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Gauge("verify.pending_signature").Value(); got != 3 {
		t.Fatalf("pending_signature = %d before resolve, want 3", got)
	}
	if got := reg.Counter("verify.deferred_enqueued").Value(); got != 3 {
		t.Fatalf("deferred_enqueued = %d, want 3", got)
	}
	q.Resolve()
	if got := reg.Gauge("verify.pending_signature").Value(); got != 0 {
		t.Fatalf("pending_signature = %d after resolve, want 0", got)
	}
	if got := reg.Counter("verify.deferred_accepted").Value(); got != 3 {
		t.Fatalf("deferred_accepted = %d, want 3", got)
	}
	if got := reg.Counter("verify.deferred_checks").Value(); got != 1 {
		t.Fatalf("deferred_checks = %d, want 1 (deduped group)", got)
	}
	if got := reg.Counter("verify.deferred_resolves").Value(); got != 1 {
		t.Fatalf("deferred_resolves = %d, want 1", got)
	}

	// Late attachment catches up on totals accrued before SetMetrics.
	q2, _ := NewBatchVerifyQueue(100, nil)
	q2.Enqueue(pub, msg, sig, func(bool) {})
	q2.Resolve()
	reg2 := obs.NewRegistry()
	q2.SetMetrics(reg2)
	if got := reg2.Counter("verify.deferred_enqueued").Value(); got != 1 {
		t.Fatalf("late-attach deferred_enqueued = %d, want 1", got)
	}

	// Detaching stops exports without disturbing the queue.
	q.SetMetrics(nil)
	if _, err := q.Enqueue(pub, msg, sig, func(bool) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("verify.deferred_enqueued").Value(); got != 3 {
		t.Fatalf("detached registry advanced to %d, want 3", got)
	}
}
