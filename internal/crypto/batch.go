// Batch signatures: one digital signature amortized over up to K block
// roots (the MABS idea — Merkle-tree batch signing). The signer collects
// pending messages, builds a Merkle tree over their digests, signs the tree
// root once, and hands every message a self-contained signature blob
// (signature + leaf index + authentication path). Verification recomputes
// the Merkle root from the message and its path and checks the one
// signature, so receivers need only the ordinary public key.
//
// The blob format is distinguishable from a plain Ed25519 signature by
// length (a plain signature is exactly SignatureSize bytes; a batch blob
// never is), so a batch-aware Verifier transparently accepts both — a
// sender can switch batching on or off without a key rollover.
package crypto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MaxBatch bounds how many messages one signature may cover. The limit
// keeps the authentication path (32 bytes per tree level) comfortably
// inside packet.MaxBlobSize.
const MaxBatch = 1024

// Domain-separation labels: leaves and interior nodes hash under distinct
// prefixes (second-preimage hardening), and the signed message is bound to
// the batch context so a batch root can never be confused with ordinary
// signed content.
var (
	batchLeafLabel = []byte{0x00}
	batchNodeLabel = []byte{0x01}
	batchRootLabel = []byte("mcauth/batch-sig/v1")
)

// batchSigTag leads every batch signature blob.
const batchSigTag = 0xB5

// batch blob layout: tag(1) | leafCount(4) | leafIndex(4) | sig(64) |
// path(depth * HashSize).
const batchHeaderSize = 1 + 4 + 4 + SignatureSize

func batchLeaf(content []byte) Digest {
	return HashConcat(batchLeafLabel, content)
}

func batchNode(left, right Digest) Digest {
	return HashConcat(batchNodeLabel, left[:], right[:])
}

func batchRootMessage(root Digest) []byte {
	msg := make([]byte, 0, len(batchRootLabel)+HashSize)
	msg = append(msg, batchRootLabel...)
	return append(msg, root[:]...)
}

// batchRootFromPath folds a leaf back up to the Merkle root. Odd nodes are
// promoted unchanged (no duplication), so the walk consumes a path element
// only at levels where the node has a sibling; it reports how many path
// elements a valid proof must contain, and fails if the supplied path has
// the wrong length.
func batchRootFromPath(leaf Digest, index, count uint32, path []byte) (Digest, bool) {
	if count == 0 || index >= count || count > MaxBatch {
		return Digest{}, false
	}
	node := leaf
	idx, width := index, count
	off := 0
	for width > 1 {
		sibling := idx ^ 1
		if sibling < width {
			if off+HashSize > len(path) {
				return Digest{}, false
			}
			var sib Digest
			copy(sib[:], path[off:off+HashSize])
			off += HashSize
			if idx&1 == 0 {
				node = batchNode(node, sib)
			} else {
				node = batchNode(sib, node)
			}
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if off != len(path) {
		return Digest{}, false
	}
	return node, true
}

// BatchSign signs all contents with one underlying signature and returns
// one self-contained signature blob per content, in input order. A batch
// of one still produces a (73-byte) batch blob; callers who want plain
// signatures for singletons should sign directly.
func BatchSign(signer Signer, contents [][]byte) ([][]byte, error) {
	if signer == nil {
		return nil, errors.New("crypto: nil signer")
	}
	if len(contents) == 0 {
		return nil, errors.New("crypto: empty batch")
	}
	if len(contents) > MaxBatch {
		return nil, fmt.Errorf("crypto: batch %d exceeds %d", len(contents), MaxBatch)
	}
	// Build every tree level; levels[0] holds the leaves.
	levels := [][]Digest{make([]Digest, len(contents))}
	for i, c := range contents {
		levels[0][i] = batchLeaf(c)
	}
	for len(levels[len(levels)-1]) > 1 {
		prev := levels[len(levels)-1]
		next := make([]Digest, 0, (len(prev)+1)/2)
		for i := 0; i < len(prev); i += 2 {
			if i+1 < len(prev) {
				next = append(next, batchNode(prev[i], prev[i+1]))
			} else {
				next = append(next, prev[i]) // odd node promoted
			}
		}
		levels = append(levels, next)
	}
	root := levels[len(levels)-1][0]
	sig := signer.Sign(batchRootMessage(root))
	if len(sig) != SignatureSize {
		return nil, fmt.Errorf("crypto: inner signature is %d bytes, want %d", len(sig), SignatureSize)
	}

	count := uint32(len(contents))
	blobs := make([][]byte, len(contents))
	for i := range contents {
		blob := make([]byte, 0, batchHeaderSize+len(levels)*HashSize)
		blob = append(blob, batchSigTag)
		blob = binary.BigEndian.AppendUint32(blob, count)
		blob = binary.BigEndian.AppendUint32(blob, uint32(i))
		blob = append(blob, sig...)
		idx := uint32(i)
		width := count
		for _, level := range levels[:len(levels)-1] {
			sibling := idx ^ 1
			if sibling < width {
				blob = append(blob, level[sibling][:]...)
			}
			idx /= 2
			width = (width + 1) / 2
		}
		blobs[i] = blob
	}
	return blobs, nil
}

// VerifyBatchBlob checks one batch signature blob against content under
// pub. It rejects plain signatures (use Verifier.Verify for those).
func VerifyBatchBlob(pub Verifier, content, blob []byte) bool {
	if pub == nil || len(blob) < batchHeaderSize || blob[0] != batchSigTag {
		return false
	}
	count := binary.BigEndian.Uint32(blob[1:5])
	index := binary.BigEndian.Uint32(blob[5:9])
	sig := blob[9 : 9+SignatureSize]
	path := blob[batchHeaderSize:]
	if len(path)%HashSize != 0 {
		return false
	}
	root, ok := batchRootFromPath(batchLeaf(content), index, count, path)
	if !ok {
		return false
	}
	return pub.Verify(batchRootMessage(root), sig)
}

// batchVerifier accepts both plain signatures and batch blobs under one
// public key.
type batchVerifier struct {
	inner Verifier
}

// NewBatchVerifier wraps a Verifier so it also accepts batch signature
// blobs produced by BatchSign / BatchSigner under the same key. Plain
// signatures (exactly SignatureSize bytes) still verify directly.
func NewBatchVerifier(inner Verifier) Verifier {
	if bv, ok := inner.(*batchVerifier); ok {
		return bv
	}
	return &batchVerifier{inner: inner}
}

func (v *batchVerifier) Verify(data, sig []byte) bool {
	if len(sig) == SignatureSize {
		return v.inner.Verify(data, sig)
	}
	return VerifyBatchBlob(v.inner, data, sig)
}

func (v *batchVerifier) Bytes() []byte { return v.inner.Bytes() }

// batchCapableSigner delegates signing but hands out batch-aware public
// keys, so schemes built from it verify both plain and batched signatures.
type batchCapableSigner struct {
	inner Signer
}

// BatchCapable wraps a Signer so that Public() returns a batch-aware
// Verifier. Construct schemes with the wrapped signer when their blocks
// may be signed through a BatchSigner.
func BatchCapable(s Signer) Signer {
	if bc, ok := s.(*batchCapableSigner); ok {
		return bc
	}
	return &batchCapableSigner{inner: s}
}

func (s *batchCapableSigner) Sign(data []byte) []byte { return s.inner.Sign(data) }

func (s *batchCapableSigner) Public() Verifier { return NewBatchVerifier(s.inner.Public()) }

// pendingItem is one enqueued message awaiting the batch signature.
type pendingItem struct {
	content []byte
	deliver func(sig []byte)
}

// BatchTotals snapshots a BatchSigner's lifetime counters.
type BatchTotals struct {
	// Signatures is how many underlying signature operations ran.
	Signatures int64
	// SignedRoots is how many messages those signatures covered. The
	// amortization ratio is SignedRoots / Signatures.
	SignedRoots int64
	// Flushes counts Flush calls that signed at least one message.
	Flushes int64
}

// AmortizationRatio returns SignedRoots / Signatures (0 before the first
// flush). A ratio above 1 means batching is paying for itself.
func (t BatchTotals) AmortizationRatio() float64 {
	if t.Signatures == 0 {
		return 0
	}
	return float64(t.SignedRoots) / float64(t.Signatures)
}

// BatchSigner accumulates messages and signs them MaxBatch-at-a-time (or
// whenever Flush is called — callers own the flush-deadline policy, since
// only they know how much latency a pending message may absorb). It is
// safe for concurrent use; deliver callbacks run outside the internal lock
// and may re-enter the signer.
type BatchSigner struct {
	mu      sync.Mutex
	inner   Signer
	max     int
	pending []pendingItem
	totals  BatchTotals
}

// NewBatchSigner creates a signer that flushes automatically at maxBatch
// pending messages (1 <= maxBatch <= MaxBatch). maxBatch of 1 degenerates
// to one signature per message.
func NewBatchSigner(inner Signer, maxBatch int) (*BatchSigner, error) {
	if inner == nil {
		return nil, errors.New("crypto: nil signer")
	}
	if maxBatch < 1 || maxBatch > MaxBatch {
		return nil, fmt.Errorf("crypto: max batch %d out of [1,%d]", maxBatch, MaxBatch)
	}
	return &BatchSigner{inner: inner, max: maxBatch}, nil
}

// MaxBatchSize returns the configured auto-flush threshold.
func (b *BatchSigner) MaxBatchSize() int { return b.max }

// Public returns a batch-aware verification key.
func (b *BatchSigner) Public() Verifier { return NewBatchVerifier(b.inner.Public()) }

// Enqueue adds content to the pending batch; deliver is invoked with the
// signature blob when the batch is signed. The content slice is retained
// until then and must not be mutated by the caller. When the batch reaches
// the auto-flush threshold it is signed before Enqueue returns. Returns
// the number of messages still pending after the call.
func (b *BatchSigner) Enqueue(content []byte, deliver func(sig []byte)) (int, error) {
	if deliver == nil {
		return 0, errors.New("crypto: nil deliver callback")
	}
	b.mu.Lock()
	b.pending = append(b.pending, pendingItem{content: content, deliver: deliver})
	if len(b.pending) < b.max {
		n := len(b.pending)
		b.mu.Unlock()
		return n, nil
	}
	items, err := b.flushLocked()
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	deliverAll(items)
	return 0, nil
}

// Flush signs every pending message now and returns how many were signed.
// A no-op (and nil error) when nothing is pending.
func (b *BatchSigner) Flush() (int, error) {
	b.mu.Lock()
	items, err := b.flushLocked()
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	deliverAll(items)
	return len(items), nil
}

// Pending returns the number of messages awaiting a signature.
func (b *BatchSigner) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Totals snapshots the lifetime counters.
func (b *BatchSigner) Totals() BatchTotals {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totals
}

// flushLocked signs the pending batch and returns the items with their
// signatures attached (stashed in content's place via closure pairing);
// callbacks must be run by the caller after releasing the lock, so a
// deliver callback that re-enters the signer cannot deadlock.
func (b *BatchSigner) flushLocked() ([]signedItem, error) {
	if len(b.pending) == 0 {
		return nil, nil
	}
	contents := make([][]byte, len(b.pending))
	for i, it := range b.pending {
		contents[i] = it.content
	}
	blobs, err := BatchSign(b.inner, contents)
	if err != nil {
		return nil, err
	}
	out := make([]signedItem, len(b.pending))
	for i, it := range b.pending {
		out[i] = signedItem{deliver: it.deliver, sig: blobs[i]}
	}
	b.totals.Signatures++
	b.totals.SignedRoots += int64(len(b.pending))
	b.totals.Flushes++
	b.pending = b.pending[:0]
	return out, nil
}

type signedItem struct {
	deliver func(sig []byte)
	sig     []byte
}

func deliverAll(items []signedItem) {
	for _, it := range items {
		it.deliver(it.sig)
	}
}
