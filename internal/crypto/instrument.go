package crypto

import (
	"sync/atomic"
	"time"

	"mcauth/internal/obs"
)

// instruments caches the crypto.* registry counters. Publication goes
// through an atomic pointer so the primitives pay exactly one atomic load
// and a predictable branch when instrumentation is off — the Wong–Lam
// parallel-implementation study (ElKabbany & Aslan) locates scheme
// bottlenecks from precisely these per-primitive op counts and wall
// times, so they must be cheap enough to leave compiled in.
type instruments struct {
	hashOps   *obs.Counter
	hashNS    *obs.Counter
	macOps    *obs.Counter
	macNS     *obs.Counter
	signOps   *obs.Counter
	signNS    *obs.Counter
	verifyOps *obs.Counter
	verifyNS  *obs.Counter
}

var instr atomic.Pointer[instruments]

// Instrument starts recording op counts (crypto.*_ops) and cumulative
// wall time (crypto.*_ns) for hash, MAC, sign, and verify operations into
// reg. Passing nil stops recording, like Uninstrument.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&instruments{
		hashOps:   reg.Counter("crypto.hash_ops"),
		hashNS:    reg.Counter("crypto.hash_ns"),
		macOps:    reg.Counter("crypto.mac_ops"),
		macNS:     reg.Counter("crypto.mac_ns"),
		signOps:   reg.Counter("crypto.sign_ops"),
		signNS:    reg.Counter("crypto.sign_ns"),
		verifyOps: reg.Counter("crypto.verify_ops"),
		verifyNS:  reg.Counter("crypto.verify_ns"),
	})
}

// Uninstrument stops recording; subsequent operations pay only the
// disabled-path branch.
func Uninstrument() { instr.Store(nil) }

func (in *instruments) record(ops, ns *obs.Counter, start time.Time) {
	ops.Inc()
	ns.Add(time.Since(start).Nanoseconds())
}
