//go:build !race

package crypto

const raceEnabled = false
