package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 8, 200} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	fn := func(i, v int) (string, error) { return fmt.Sprintf("%d:%d", i, v*3), nil }
	base, err := Map(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(workers, items, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, got[i], base[i])
			}
		}
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	items := make([]int, 64)
	for _, workers := range []int{1, 4, 64} {
		_, err := Map(workers, items, func(i, _ int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if got, want := err.Error(), "item 3 failed"; got != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, got, want)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(8, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err = Map(8, []int{41}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	items := make([]int, 333)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	if err := ForEach(5, items, func(_, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(333 * 332 / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(3, make([]int, 10), func(i, _ int) error {
		if i == 6 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(0, 100); got != DefaultWorkers() {
		t.Fatalf("Clamp(0, 100) = %d, want %d", got, DefaultWorkers())
	}
	if got := Clamp(16, 4); got != 4 {
		t.Fatalf("Clamp(16, 4) = %d, want 4", got)
	}
	if got := Clamp(-3, 0); got != 1 {
		t.Fatalf("Clamp(-3, 0) = %d, want 1", got)
	}
}
