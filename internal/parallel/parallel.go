// Package parallel provides the deterministic fan-out engine used by the
// evaluation layers: a bounded worker pool mapping a function over a slice
// with ordered result collection. The paper's whole evaluation is
// embarrassingly parallel — parameter sweeps over loss rate and scheme
// knobs, Monte-Carlo shards over the dependence graph, independent
// simulated receivers — and every one of those call sites shares the same
// contract: results land in input order, so output bytes are identical
// regardless of how many workers ran, and the lowest-index error wins, so
// failures are as reproducible as successes.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp resolves a workers knob: <= 0 selects DefaultWorkers, and the pool
// is never wider than the number of items.
func Clamp(workers, items int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map applies fn to every element of items on a pool of at most workers
// goroutines (workers <= 0 selects DefaultWorkers) and returns the results
// in input order. fn receives the element's index and value; it must be
// safe to call concurrently with itself.
//
// Determinism contract: because results are collected by index, the
// returned slice is identical for any worker count, provided fn(i, item)
// itself is deterministic. If multiple calls fail, the error of the
// lowest index is returned — again independent of scheduling — and
// remaining items may be skipped.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	workers = Clamp(workers, len(items))
	if workers == 1 {
		// Fast path: no goroutines, no synchronization.
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIndex = -1
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIndex == -1 || i < errIndex {
			errIndex, firstErr = i, err
		}
		mu.Unlock()
	}
	failedBefore := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return errIndex != -1 && errIndex < i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				// Items after a known failure cannot change the outcome
				// (the lowest-index error wins); skip their work.
				if failedBefore(i) {
					continue
				}
				r, err := fn(i, items[i])
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// ForEach is Map for side-effecting work: it applies fn to every element on
// the bounded pool and returns the lowest-index error, if any. fn typically
// writes to a caller-owned slot at its index, which keeps the aggregate
// result deterministic for any worker count.
func ForEach[T any](workers int, items []T, fn func(i int, item T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
