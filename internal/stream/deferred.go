package stream

import (
	"fmt"
	"time"

	"mcauth/internal/packet"
	"mcauth/internal/scheme"
)

// DeferredBlock is one emitted block whose root signature may still be
// pending. Immediate packets are safe to send right away; Held packets
// carry the (not yet attached) signature and must be withheld until
// Root.Attach runs. When the scheme cannot defer signing, Root is nil,
// Held is empty, and the fully signed block sits in Immediate.
type DeferredBlock struct {
	BlockID   uint64
	Immediate []*packet.Packet
	Held      []*packet.Packet
	Root      *scheme.PendingRoot
}

// SetFlushAfter arms the partial-block flush deadline: once a block has
// had messages pending for longer than d (per PushAt / PushDeferredAt
// timestamps), Due reports true and the owner should Flush. Zero disables
// the deadline. The Sender does not own a clock — callers drive flushing,
// since only they know the serving loop's cadence.
func (snd *Sender) SetFlushAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	snd.flushAfter = d
}

// FlushAfter returns the configured partial-block flush deadline.
func (snd *Sender) FlushAfter() time.Duration { return snd.flushAfter }

// Due reports whether a partial block has been pending since before
// now minus the flush deadline. Always false with no pending messages,
// no deadline, or no timestamped pushes.
func (snd *Sender) Due(now time.Time) bool {
	if len(snd.pending) == 0 || snd.flushAfter == 0 || snd.oldestPending.IsZero() {
		return false
	}
	return now.Sub(snd.oldestPending) >= snd.flushAfter
}

// PushAt is Push with an arrival timestamp, feeding the flush-deadline
// tracking: the first message of each block starts the deadline clock.
func (snd *Sender) PushAt(payload []byte, at time.Time) ([]*packet.Packet, error) {
	snd.notePending(at)
	return snd.Push(payload)
}

// PushDeferredAt appends one message; when it completes a block, the
// block is authenticated with the root signature deferred (see
// DeferredBlock). Returns nil while the block is still filling.
func (snd *Sender) PushDeferredAt(payload []byte, at time.Time) (*DeferredBlock, error) {
	snd.notePending(at)
	snd.pending = append(snd.pending, payload)
	if len(snd.pending) < snd.s.BlockSize() {
		return nil, nil
	}
	return snd.emitDeferred()
}

// FlushDeferred pads a partial block and emits it with the root signature
// deferred; (nil, nil) when nothing is pending.
func (snd *Sender) FlushDeferred() (*DeferredBlock, error) {
	if len(snd.pending) == 0 {
		return nil, nil
	}
	for len(snd.pending) < snd.s.BlockSize() {
		snd.pending = append(snd.pending, nil)
	}
	return snd.emitDeferred()
}

// notePending starts the deadline clock when the block's first message
// arrives.
func (snd *Sender) notePending(at time.Time) {
	if len(snd.pending) == 0 {
		snd.oldestPending = at
	}
}

// emitDeferred authenticates the pending block, deferring the root
// signature when the scheme supports it and falling back to synchronous
// signing otherwise.
func (snd *Sender) emitDeferred() (*DeferredBlock, error) {
	blockID := snd.blockID
	da, ok := snd.s.(scheme.DeferredAuthenticator)
	if !ok {
		pkts, err := snd.emit()
		if err != nil {
			return nil, err
		}
		return &DeferredBlock{BlockID: blockID, Immediate: pkts}, nil
	}
	pkts, root, err := da.AuthenticateDeferred(blockID, snd.pending)
	if err != nil {
		return nil, fmt.Errorf("stream: block %d: %w", blockID, err)
	}
	snd.spanPush(blockID)
	snd.blockID++
	snd.pending = nil
	snd.oldestPending = time.Time{}
	held := make(map[int]bool, len(root.HeldWire))
	for _, i := range root.HeldWire {
		if i < 0 || i >= len(pkts) {
			return nil, fmt.Errorf("stream: block %d: held wire position %d out of range", blockID, i)
		}
		held[i] = true
	}
	db := &DeferredBlock{BlockID: blockID, Root: root}
	for i, p := range pkts {
		if held[i] {
			db.Held = append(db.Held, p)
		} else {
			db.Immediate = append(db.Immediate, p)
		}
	}
	return db, nil
}
