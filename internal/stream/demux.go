package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/verifier"
)

// StreamAuthenticated is one verified message delivered by a Demux,
// tagged with the stream it belongs to.
type StreamAuthenticated struct {
	StreamID uint64
	Authenticated
}

// DemuxTotals aggregates a Demux's lifetime counters.
type DemuxTotals struct {
	ActiveStreams  int
	EvictedStreams int
	// RejectedStreams counts packets dropped because the per-stream
	// receiver factory refused the stream ID (unknown stream).
	RejectedStreams int
}

// Demux routes wire packets from many multiplexed streams (identified by
// the transport mux framing's 64-bit stream ID) to per-stream Receivers,
// mirroring what Receiver does for blocks within one stream. Stream state
// is created on demand by the factory and bounded: when more than
// maxStreams are live, the least recently active stream is evicted — a
// subscriber tracking many senders cannot be ballooned by stream-ID
// floods.
type Demux struct {
	newReceiver func(streamID uint64) (*Receiver, error)
	maxStreams  int
	receivers   map[uint64]*Receiver
	lastActive  map[uint64]int64 // tick of most recent packet, for eviction
	tick        int64
	totals      DemuxTotals
	// Receiver fast path, applied to every receiver the factory creates
	// from now on (see SetVerifyFastPath).
	cache  *verifier.SharedCache
	batchQ *crypto.BatchVerifyQueue
	// spans, when attached, is handed to every new receiver keyed by its
	// stream ID (see Receiver.SetSpans).
	spans *obs.SpanRing
}

// NewDemux creates a demultiplexer keeping at most maxStreams live
// streams. The factory builds the verifier stack for a stream the first
// time one of its packets arrives; returning an error rejects the stream
// (counted, not fatal), which is how a subscriber restricts itself to an
// allow-list of stream IDs.
func NewDemux(newReceiver func(streamID uint64) (*Receiver, error), maxStreams int) (*Demux, error) {
	if newReceiver == nil {
		return nil, errors.New("stream: nil receiver factory")
	}
	if maxStreams < 1 {
		return nil, fmt.Errorf("stream: maxStreams %d must be >= 1", maxStreams)
	}
	return &Demux{
		newReceiver: newReceiver,
		maxStreams:  maxStreams,
		receivers:   make(map[uint64]*Receiver),
		lastActive:  make(map[uint64]int64),
	}, nil
}

// SetVerifyFastPath attaches the receiver fast path to every stream
// receiver created from now on: cache (when non-nil) shares proven-
// authentic packet digests across all of the demux's streams, keyed by
// the transport stream ID, and q (when non-nil) defers signature checks
// to a shared batch-verify queue. Deferred verdicts that resolve while a
// different stream's packet is being ingested are collected via
// DrainDeferred. Either argument may be nil to enable only the other.
func (d *Demux) SetVerifyFastPath(cache *verifier.SharedCache, q *crypto.BatchVerifyQueue) {
	d.cache = cache
	d.batchQ = q
}

// SetSpans attaches a causal span ring to every stream receiver created
// from now on, keyed by its transport stream ID (see Receiver.SetSpans).
func (d *Demux) SetSpans(r *obs.SpanRing) {
	d.spans = r
}

// DrainDeferred collects messages authenticated by deferred batch-verify
// verdicts across all live streams (see Receiver.DrainDeferred); call it
// after resolving the batch-verify queue directly.
func (d *Demux) DrainDeferred() []StreamAuthenticated {
	var out []StreamAuthenticated
	for id, r := range d.receivers {
		for _, a := range r.DrainDeferred() {
			out = append(out, StreamAuthenticated{StreamID: id, Authenticated: a})
		}
	}
	return out
}

// Ingest routes one decoded packet to its stream's receiver, returning
// any messages it newly authenticated.
func (d *Demux) Ingest(streamID uint64, p *packet.Packet, at time.Time) ([]StreamAuthenticated, error) {
	r, err := d.receiver(streamID)
	if err != nil || r == nil {
		return nil, err
	}
	auths, err := r.Ingest(p, at)
	if err != nil {
		return nil, err
	}
	out := make([]StreamAuthenticated, len(auths))
	for i, a := range auths {
		out[i] = StreamAuthenticated{StreamID: streamID, Authenticated: a}
	}
	return out, nil
}

// IngestWire decodes one wire datagram and routes it.
func (d *Demux) IngestWire(streamID uint64, wire []byte, at time.Time) ([]StreamAuthenticated, error) {
	r, err := d.receiver(streamID)
	if err != nil || r == nil {
		return nil, err
	}
	auths, err := r.IngestWire(wire, at)
	if err != nil {
		return nil, err
	}
	out := make([]StreamAuthenticated, len(auths))
	for i, a := range auths {
		out[i] = StreamAuthenticated{StreamID: streamID, Authenticated: a}
	}
	return out, nil
}

// receiver returns the stream's receiver, creating (and bounding) state
// on first contact. A nil receiver with nil error means the stream was
// rejected by the factory.
func (d *Demux) receiver(streamID uint64) (*Receiver, error) {
	d.tick++
	if r, ok := d.receivers[streamID]; ok {
		d.lastActive[streamID] = d.tick
		return r, nil
	}
	r, err := d.newReceiver(streamID)
	if err != nil {
		d.totals.RejectedStreams++
		return nil, nil
	}
	if r == nil {
		return nil, fmt.Errorf("stream: factory returned nil receiver for stream %d", streamID)
	}
	if d.cache != nil {
		r.SetSharedVerifyCache(d.cache, streamID)
	}
	if d.batchQ != nil {
		r.SetBatchVerify(d.batchQ)
	}
	if d.spans != nil {
		r.SetSpans(d.spans, streamID)
	}
	d.receivers[streamID] = r
	d.lastActive[streamID] = d.tick
	for len(d.receivers) > d.maxStreams {
		d.evictColdest()
	}
	return r, nil
}

func (d *Demux) evictColdest() {
	var (
		coldest  uint64
		coldTick int64
		havePick bool
	)
	for id, t := range d.lastActive {
		if !havePick || t < coldTick {
			coldest, coldTick, havePick = id, t, true
		}
	}
	delete(d.receivers, coldest)
	delete(d.lastActive, coldest)
	d.totals.EvictedStreams++
}

// Receiver exposes a live stream's receiver (nil when unknown/evicted),
// for per-stream stats.
func (d *Demux) Receiver(streamID uint64) *Receiver { return d.receivers[streamID] }

// Close drops a stream's receiver state (an explicit leave, as opposed to
// LRU eviction), reporting whether the stream was live. A later packet for
// the stream re-joins it through the factory like any newcomer.
func (d *Demux) Close(streamID uint64) bool {
	if _, ok := d.receivers[streamID]; !ok {
		return false
	}
	delete(d.receivers, streamID)
	delete(d.lastActive, streamID)
	return true
}

// ResumePoints reports, per live stream, the block ID replay should
// resume from after a reconnect (see Receiver.ResumeFrom) — 0 for streams
// that have authenticated nothing yet, meaning "replay everything
// retained". The map is freshly allocated; callers may keep it.
func (d *Demux) ResumePoints() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(d.receivers))
	for id, r := range d.receivers {
		from, ok := r.ResumeFrom()
		if !ok {
			from = 0
		}
		out[id] = from
	}
	return out
}

// StreamIDs lists the live streams in ascending order.
func (d *Demux) StreamIDs() []uint64 {
	out := make([]uint64, 0, len(d.receivers))
	for id := range d.receivers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Totals returns the demux-level counters; per-stream counters live on
// the individual Receivers.
func (d *Demux) Totals() DemuxTotals {
	t := d.totals
	t.ActiveStreams = len(d.receivers)
	return t
}
