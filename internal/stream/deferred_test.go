package stream

import (
	"fmt"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/scheme/signeach"
)

func TestPushDeferredSplitsHeldPackets(t *testing.T) {
	s := emssScheme(t, 4) // chained: implements DeferredAuthenticator
	snd, err := NewSender(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var db *DeferredBlock
	for i := 0; i < 4; i++ {
		got, err := snd.PushDeferredAt([]byte(fmt.Sprintf("m%d", i)), time.Unix(int64(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && got != nil {
			t.Fatalf("block emitted after %d pushes", i+1)
		}
		db = got
	}
	if db == nil {
		t.Fatal("full block not emitted")
	}
	if db.Root == nil {
		t.Fatal("chained scheme should defer its root")
	}
	if len(db.Held) == 0 || len(db.Immediate)+len(db.Held) != s.WireCount() {
		t.Fatalf("split %d immediate + %d held, want %d total with held root",
			len(db.Immediate), len(db.Held), s.WireCount())
	}
	for _, p := range db.Held {
		if len(p.Signature) != 0 {
			t.Fatal("held packet already signed")
		}
	}
	if snd.NextBlockID() != 1 {
		t.Fatalf("block ID %d, want 1", snd.NextBlockID())
	}

	// Attach, then verify the whole wire set round-trips.
	signer := crypto.NewSignerFromString("stream")
	db.Root.Attach(signer.Sign(db.Root.Content))
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	auths := 0
	for _, p := range append(append([]*packet.Packet{}, db.Immediate...), db.Held...) {
		got, err := rcv.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		auths += len(got)
	}
	if auths != 4 {
		t.Fatalf("authenticated %d of 4", auths)
	}
}

func TestPushDeferredFallbackForSynchronousSchemes(t *testing.T) {
	s, err := signeach.New(3, crypto.NewSignerFromString("stream"))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var db *DeferredBlock
	for i := 0; i < 3; i++ {
		if db, err = snd.PushDeferredAt([]byte("m"), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if db == nil {
		t.Fatal("block not emitted")
	}
	if db.Root != nil || len(db.Held) != 0 {
		t.Fatal("sign-each cannot defer; block must come back fully signed")
	}
	if len(db.Immediate) != s.WireCount() {
		t.Fatalf("immediate %d, want %d", len(db.Immediate), s.WireCount())
	}
	for _, p := range db.Immediate {
		if len(p.Signature) == 0 {
			t.Fatal("fallback packet unsigned")
		}
	}
}

func TestFlushDeferredPads(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db, err := snd.FlushDeferred(); err != nil || db != nil {
		t.Fatalf("idle flush = %v, %v", db, err)
	}
	if _, err := snd.PushDeferredAt([]byte("only"), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	db, err := snd.FlushDeferred()
	if err != nil {
		t.Fatal(err)
	}
	if db == nil || len(db.Immediate)+len(db.Held) != s.WireCount() {
		t.Fatalf("padded flush incomplete: %+v", db)
	}
	if snd.Pending() != 0 {
		t.Fatalf("pending %d after flush", snd.Pending())
	}
}

func TestFlushDeadlineDue(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)
	// No deadline configured: never due.
	if _, err := snd.PushAt([]byte("m"), t0); err != nil {
		t.Fatal(err)
	}
	if snd.Due(t0.Add(time.Hour)) {
		t.Fatal("due without a configured deadline")
	}
	snd.SetFlushAfter(50 * time.Millisecond)
	if snd.FlushAfter() != 50*time.Millisecond {
		t.Fatal("FlushAfter not recorded")
	}
	if snd.Due(t0.Add(20 * time.Millisecond)) {
		t.Fatal("due before the deadline")
	}
	if !snd.Due(t0.Add(60 * time.Millisecond)) {
		t.Fatal("not due after the deadline")
	}
	// The deadline clock tracks the block's FIRST message.
	if _, err := snd.PushAt([]byte("m2"), t0.Add(55*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !snd.Due(t0.Add(60 * time.Millisecond)) {
		t.Fatal("second push must not reset the deadline clock")
	}
	// Emitting the block resets it.
	if _, err := snd.Flush(); err != nil {
		t.Fatal(err)
	}
	if snd.Due(t0.Add(time.Hour)) {
		t.Fatal("due with nothing pending")
	}
	// Negative deadlines are clamped off.
	snd.SetFlushAfter(-time.Second)
	if _, err := snd.PushAt([]byte("m"), t0); err != nil {
		t.Fatal(err)
	}
	if snd.Due(t0.Add(time.Hour)) {
		t.Fatal("negative deadline should disable Due")
	}
}
