package stream

import (
	"fmt"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/verifier"
)

func fastPathQueue(t *testing.T, batch int) *crypto.BatchVerifyQueue {
	t.Helper()
	sig, err := crypto.NewSigCache(64)
	if err != nil {
		t.Fatal(err)
	}
	q, err := crypto.NewBatchVerifyQueue(batch, sig)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func authtreeBlock(t *testing.T, s *authtree.Tree, blockID uint64, n int) []*packet.Packet {
	t.Helper()
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "blk%d-msg-%02d", blockID, i)
	}
	pkts, err := s.Authenticate(blockID, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// TestDeferredLateSignature: with a batch queue attached, ingest parks
// packets pending-signature instead of verifying inline; nothing is
// authenticated until Resolve runs, and afterwards DrainDeferred hands
// back every payload with the totals reconciled.
func TestDeferredLateSignature(t *testing.T) {
	const n = 6
	s, err := signeach.New(n, crypto.NewSignerFromString("late-signature"))
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := fastPathQueue(t, 64) // batch larger than the block: nothing auto-resolves
	rcv.SetBatchVerify(q)

	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "deferred-%02d", i)
	}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		events, err := rcv.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Fatalf("packet %d verified inline; want parked pending signature", p.Index)
		}
	}
	tot := rcv.Totals()
	if tot.Authenticated != 0 || tot.PendingSignature != n {
		t.Fatalf("before resolve: Authenticated=%d PendingSignature=%d, want 0/%d",
			tot.Authenticated, tot.PendingSignature, n)
	}
	if got := rcv.DrainDeferred(); len(got) != 0 {
		t.Fatalf("drained %d verdicts before resolve", len(got))
	}

	q.Resolve()
	auths := rcv.DrainDeferred()
	if len(auths) != n {
		t.Fatalf("drained %d authenticated payloads after resolve, want %d", len(auths), n)
	}
	seen := make(map[string]bool)
	for _, a := range auths {
		seen[string(a.Payload)] = true
	}
	for i := range payloads {
		if !seen[string(payloads[i])] {
			t.Errorf("payload %d missing from deferred verdicts", i)
		}
	}
	tot = rcv.Totals()
	if tot.Authenticated != n || tot.PendingSignature != 0 || tot.Rejected != 0 {
		t.Errorf("after resolve: totals %+v, want %d authenticated, 0 pending, 0 rejected", tot, n)
	}
}

// TestDeferredFailedBatchFallsBack: authtree packets of one block share
// the root signature, so the whole block resolves as one batched check.
// When the packet that carried the group's signature bytes is corrupted,
// the batch verdict fails and every parked packet must be re-checked
// individually — the genuine ones recover, only the corrupt one is
// rejected. A forged packet must never ride a failed batch to
// acceptance, and genuine packets must never be collateral damage.
func TestDeferredFailedBatchFallsBack(t *testing.T) {
	const n = 8
	s, err := authtree.New(n, crypto.NewSignerFromString("failed-batch"))
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := fastPathQueue(t, 256)
	rcv.SetBatchVerify(q)

	pkts := authtreeBlock(t, s, 1, n)
	// Corrupt the first-ingested packet's signature: it is the one whose
	// bytes the queued group check uses, so the group verdict fails.
	pkts[0].Signature = append([]byte(nil), pkts[0].Signature...)
	pkts[0].Signature[5] ^= 0x40
	for _, p := range pkts {
		if _, err := rcv.Ingest(p, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	q.Resolve()
	auths := rcv.DrainDeferred()
	if len(auths) != n-1 {
		t.Fatalf("fallback recovered %d packets, want %d", len(auths), n-1)
	}
	for _, a := range auths {
		if a.Index == pkts[0].Index {
			t.Fatalf("packet with corrupted signature was authenticated")
		}
	}
	tot := rcv.Totals()
	if tot.Authenticated != n-1 || tot.Rejected != 1 || tot.PendingSignature != 0 {
		t.Errorf("totals %+v, want %d authenticated / 1 rejected / 0 pending", tot, n-1)
	}
}

// TestSharedCacheAcrossReceivers: the Demux fan-out shape — a second
// subscriber ingesting the same wire packets skips re-proving digests
// the first subscriber already verified, and the hits surface in its
// totals. A tampered twin of a cached packet still fails.
func TestSharedCacheAcrossReceivers(t *testing.T) {
	const n = 8
	s, err := authtree.New(n, crypto.NewSignerFromString("shared-cache"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := verifier.NewSharedCache(256)
	if err != nil {
		t.Fatal(err)
	}
	pkts := authtreeBlock(t, s, 1, n)

	ingestAll := func(rcv *Receiver, pkts []*packet.Packet) int {
		t.Helper()
		authed := 0
		for _, p := range pkts {
			events, err := rcv.Ingest(p, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			authed += len(events)
		}
		return authed
	}

	first, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	first.SetSharedVerifyCache(cache, 7)
	if got := ingestAll(first, pkts); got != n {
		t.Fatalf("first subscriber authenticated %d, want %d", got, n)
	}
	if first.Totals().CacheHits != 0 {
		t.Errorf("first subscriber hit the cache it was populating: %+v", first.Totals())
	}

	second, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	second.SetSharedVerifyCache(cache, 7)
	if got := ingestAll(second, pkts); got != n {
		t.Fatalf("second subscriber authenticated %d, want %d", got, n)
	}
	if hits := second.Totals().CacheHits; hits == 0 {
		t.Errorf("second subscriber never hit the shared cache")
	}

	// A tampered twin misses the cache and is rejected, not accepted.
	forged := *pkts[1]
	forged.Payload = append([]byte(nil), forged.Payload...)
	forged.Payload[0] ^= 0x01
	third, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	third.SetSharedVerifyCache(cache, 7)
	if _, err := third.Ingest(pkts[0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	events, err := third.Ingest(&forged, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("tampered packet authenticated via shared cache")
	}
	if third.Totals().Rejected == 0 {
		t.Error("tampered packet not counted rejected")
	}
}
