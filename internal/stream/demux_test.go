package stream

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mcauth/internal/packet"
)

// demuxFixture wires a demux whose every stream runs the 4-packet EMSS
// scheme, plus a sender factory sharing the key.
func demuxFixture(t *testing.T, maxStreams int) *Demux {
	t.Helper()
	dmx, err := NewDemux(func(id uint64) (*Receiver, error) {
		return NewReceiver(emssScheme(t, 4), 8)
	}, maxStreams)
	if err != nil {
		t.Fatal(err)
	}
	return dmx
}

// blockFor emits one authenticated block for a fresh sender.
func blockFor(t *testing.T, blockID uint64) []*packet.Packet {
	t.Helper()
	snd, err := NewSender(emssScheme(t, 4), blockID)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*packet.Packet
	for i := 0; i < 4; i++ {
		out, err := snd.Push([]byte(fmt.Sprintf("b%d-m%d", blockID, i)))
		if err != nil {
			t.Fatal(err)
		}
		pkts = out
	}
	return pkts
}

func TestDemuxRoutesInterleavedStreams(t *testing.T) {
	dmx := demuxFixture(t, 8)
	blocks := map[uint64][]*packet.Packet{
		10: blockFor(t, 0),
		20: blockFor(t, 0),
		30: blockFor(t, 0),
	}
	counts := map[uint64]int{}
	for i := 0; i < 4; i++ { // interleave round-robin
		for id, pkts := range blocks {
			auths, err := dmx.Ingest(id, pkts[i], time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range auths {
				if a.StreamID != id {
					t.Fatalf("auth tagged stream %d, want %d", a.StreamID, id)
				}
				counts[id]++
			}
		}
	}
	for id := range blocks {
		if counts[id] != 4 {
			t.Errorf("stream %d authenticated %d of 4", id, counts[id])
		}
	}
	if ids := dmx.StreamIDs(); len(ids) != 3 || ids[0] != 10 || ids[2] != 30 {
		t.Errorf("StreamIDs = %v", ids)
	}
	if dmx.Receiver(10) == nil || dmx.Receiver(99) != nil {
		t.Error("Receiver lookup wrong")
	}
	if tot := dmx.Totals(); tot.ActiveStreams != 3 || tot.EvictedStreams != 0 {
		t.Errorf("totals %+v", tot)
	}
}

func TestDemuxIngestWire(t *testing.T) {
	dmx := demuxFixture(t, 2)
	auths := 0
	for _, p := range blockFor(t, 0) {
		wire, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := dmx.IngestWire(5, wire, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		auths += len(got)
	}
	if auths != 4 {
		t.Fatalf("authenticated %d of 4 via wire path", auths)
	}
}

func TestDemuxEvictsColdestStream(t *testing.T) {
	dmx := demuxFixture(t, 2)
	pkts := blockFor(t, 0)
	for id := uint64(1); id <= 3; id++ {
		if _, err := dmx.Ingest(id, pkts[0], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if tot := dmx.Totals(); tot.ActiveStreams != 2 || tot.EvictedStreams != 1 {
		t.Fatalf("totals %+v, want 2 active / 1 evicted", tot)
	}
	// Stream 1 was coldest and must be gone; 2 and 3 remain.
	if dmx.Receiver(1) != nil {
		t.Error("coldest stream not evicted")
	}
	if dmx.Receiver(2) == nil || dmx.Receiver(3) == nil {
		t.Error("warm streams evicted")
	}
	// Touching 2 makes 3 the coldest for the next eviction.
	if _, err := dmx.Ingest(2, pkts[1], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dmx.Ingest(4, pkts[0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if dmx.Receiver(3) != nil {
		t.Error("LRU order not honored")
	}
	if dmx.Receiver(2) == nil {
		t.Error("recently touched stream evicted")
	}
}

func TestDemuxRejectedStreams(t *testing.T) {
	dmx, err := NewDemux(func(id uint64) (*Receiver, error) {
		if id >= 100 {
			return nil, errors.New("not on the allow-list")
		}
		return NewReceiver(emssScheme(t, 4), 8)
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pkts := blockFor(t, 0)
	if auths, err := dmx.Ingest(500, pkts[0], time.Time{}); err != nil || auths != nil {
		t.Fatalf("rejected stream: %v, %v", auths, err)
	}
	if _, err := dmx.IngestWire(501, []byte("junk"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if tot := dmx.Totals(); tot.RejectedStreams != 2 {
		t.Fatalf("rejected %d, want 2", tot.RejectedStreams)
	}
}

func TestDemuxValidation(t *testing.T) {
	if _, err := NewDemux(nil, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := NewDemux(func(uint64) (*Receiver, error) { return nil, nil }, 0); err == nil {
		t.Error("zero maxStreams accepted")
	}
	dmx, err := NewDemux(func(uint64) (*Receiver, error) { return nil, nil }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dmx.Ingest(1, blockFor(t, 0)[0], time.Time{}); err == nil {
		t.Error("nil receiver from factory accepted")
	}
}

// churnBlocks emits n consecutive blocks from one long-lived sender, so
// later blocks genuinely depend on a receiver's ability to join
// mid-stream (each block carries its own signature packet under EMSS).
func churnBlocks(t *testing.T, n int) [][]*packet.Packet {
	t.Helper()
	snd, err := NewSender(emssScheme(t, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([][]*packet.Packet, 0, n)
	for b := 0; b < n; b++ {
		var pkts []*packet.Packet
		for i := 0; i < 4; i++ {
			out, err := snd.Push([]byte(fmt.Sprintf("b%d-m%d", b, i)))
			if err != nil {
				t.Fatal(err)
			}
			pkts = out
		}
		blocks = append(blocks, pkts)
	}
	return blocks
}

// feed ingests one block's packets for a stream and returns how many
// messages authenticated.
func feed(t *testing.T, dmx *Demux, id uint64, pkts []*packet.Packet) int {
	t.Helper()
	auths := 0
	for _, p := range pkts {
		out, err := dmx.Ingest(id, p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		auths += len(out)
	}
	return auths
}

// TestDemuxChurn exercises subscriber churn against a bounded demux: a
// late joiner entering mid-stream, an evicted stream re-joining after its
// state was dropped, and an explicit leave/re-join via Close. Every
// (re)joined stream must authenticate the blocks it sees after joining.
func TestDemuxChurn(t *testing.T) {
	dmx := demuxFixture(t, 2)
	blocks := churnBlocks(t, 4)

	// Stream 1 joins at the start and follows the whole stream.
	if got := feed(t, dmx, 1, blocks[0]); got != 4 {
		t.Fatalf("stream 1 block 0: authenticated %d of 4", got)
	}
	// Late join: stream 2's first packet is from block 2 — blocks 0 and 1
	// were never seen. It must still authenticate from there on.
	if got := feed(t, dmx, 2, blocks[2]); got != 4 {
		t.Fatalf("late joiner: authenticated %d of 4 on its first block", got)
	}

	// Churn past the cap: stream 3 joins, evicting the coldest (stream 1).
	if got := feed(t, dmx, 3, blocks[3]); got != 4 {
		t.Fatalf("stream 3: authenticated %d of 4", got)
	}
	if dmx.Receiver(1) != nil {
		t.Fatal("stream 1 should have been evicted")
	}
	if tot := dmx.Totals(); tot.EvictedStreams != 1 {
		t.Fatalf("evictions = %d, want 1", tot.EvictedStreams)
	}

	// Re-join after evict: stream 1 comes back with fresh state (its
	// receiver was dropped) and picks the stream up at block 3.
	if got := feed(t, dmx, 1, blocks[3]); got != 4 {
		t.Fatalf("re-joined stream 1: authenticated %d of 4", got)
	}

	// Explicit leave: Close drops the state immediately; the same ID can
	// rejoin through the factory afterwards.
	if !dmx.Close(1) {
		t.Fatal("Close(1) found no stream")
	}
	if dmx.Close(1) {
		t.Fatal("second Close(1) claimed to drop state again")
	}
	if dmx.Receiver(1) != nil {
		t.Fatal("closed stream still live")
	}
	if got := feed(t, dmx, 1, blocks[2]); got != 4 {
		t.Fatalf("stream 1 after Close: authenticated %d of 4", got)
	}
}

// TestDemuxResumePoints checks the resume cursors a reconnecting
// subscriber sends in its hello: 0 for streams that never authenticated
// (ask for everything), else the highest block that produced at least one
// authenticated message (re-requested, since it may be partial).
func TestDemuxResumePoints(t *testing.T) {
	dmx := demuxFixture(t, 4)
	blocks := churnBlocks(t, 3)

	// Stream 1 authenticates through block 2; stream 2 only block 0;
	// stream 3 sees a single packet and authenticates nothing.
	feed(t, dmx, 1, blocks[0])
	feed(t, dmx, 1, blocks[2])
	feed(t, dmx, 2, blocks[0])
	if _, err := dmx.Ingest(3, blocks[1][0], time.Time{}); err != nil {
		t.Fatal(err)
	}

	r := dmx.Receiver(1)
	if from, ok := r.ResumeFrom(); !ok || from != 2 {
		t.Fatalf("stream 1 ResumeFrom = (%d, %v), want (2, true)", from, ok)
	}
	if from, ok := dmx.Receiver(3).ResumeFrom(); ok || from != 0 {
		t.Fatalf("unauthenticated ResumeFrom = (%d, %v), want (0, false)", from, ok)
	}

	pts := dmx.ResumePoints()
	want := map[uint64]uint64{1: 2, 2: 0, 3: 0}
	if len(pts) != len(want) {
		t.Fatalf("ResumePoints = %v, want %v", pts, want)
	}
	for id, from := range want {
		if pts[id] != from {
			t.Errorf("ResumePoints[%d] = %d, want %d", id, pts[id], from)
		}
	}
}
