package stream

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mcauth/internal/packet"
)

// demuxFixture wires a demux whose every stream runs the 4-packet EMSS
// scheme, plus a sender factory sharing the key.
func demuxFixture(t *testing.T, maxStreams int) *Demux {
	t.Helper()
	dmx, err := NewDemux(func(id uint64) (*Receiver, error) {
		return NewReceiver(emssScheme(t, 4), 8)
	}, maxStreams)
	if err != nil {
		t.Fatal(err)
	}
	return dmx
}

// blockFor emits one authenticated block for a fresh sender.
func blockFor(t *testing.T, blockID uint64) []*packet.Packet {
	t.Helper()
	snd, err := NewSender(emssScheme(t, 4), blockID)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*packet.Packet
	for i := 0; i < 4; i++ {
		out, err := snd.Push([]byte(fmt.Sprintf("b%d-m%d", blockID, i)))
		if err != nil {
			t.Fatal(err)
		}
		pkts = out
	}
	return pkts
}

func TestDemuxRoutesInterleavedStreams(t *testing.T) {
	dmx := demuxFixture(t, 8)
	blocks := map[uint64][]*packet.Packet{
		10: blockFor(t, 0),
		20: blockFor(t, 0),
		30: blockFor(t, 0),
	}
	counts := map[uint64]int{}
	for i := 0; i < 4; i++ { // interleave round-robin
		for id, pkts := range blocks {
			auths, err := dmx.Ingest(id, pkts[i], time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range auths {
				if a.StreamID != id {
					t.Fatalf("auth tagged stream %d, want %d", a.StreamID, id)
				}
				counts[id]++
			}
		}
	}
	for id := range blocks {
		if counts[id] != 4 {
			t.Errorf("stream %d authenticated %d of 4", id, counts[id])
		}
	}
	if ids := dmx.StreamIDs(); len(ids) != 3 || ids[0] != 10 || ids[2] != 30 {
		t.Errorf("StreamIDs = %v", ids)
	}
	if dmx.Receiver(10) == nil || dmx.Receiver(99) != nil {
		t.Error("Receiver lookup wrong")
	}
	if tot := dmx.Totals(); tot.ActiveStreams != 3 || tot.EvictedStreams != 0 {
		t.Errorf("totals %+v", tot)
	}
}

func TestDemuxIngestWire(t *testing.T) {
	dmx := demuxFixture(t, 2)
	auths := 0
	for _, p := range blockFor(t, 0) {
		wire, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := dmx.IngestWire(5, wire, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		auths += len(got)
	}
	if auths != 4 {
		t.Fatalf("authenticated %d of 4 via wire path", auths)
	}
}

func TestDemuxEvictsColdestStream(t *testing.T) {
	dmx := demuxFixture(t, 2)
	pkts := blockFor(t, 0)
	for id := uint64(1); id <= 3; id++ {
		if _, err := dmx.Ingest(id, pkts[0], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if tot := dmx.Totals(); tot.ActiveStreams != 2 || tot.EvictedStreams != 1 {
		t.Fatalf("totals %+v, want 2 active / 1 evicted", tot)
	}
	// Stream 1 was coldest and must be gone; 2 and 3 remain.
	if dmx.Receiver(1) != nil {
		t.Error("coldest stream not evicted")
	}
	if dmx.Receiver(2) == nil || dmx.Receiver(3) == nil {
		t.Error("warm streams evicted")
	}
	// Touching 2 makes 3 the coldest for the next eviction.
	if _, err := dmx.Ingest(2, pkts[1], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dmx.Ingest(4, pkts[0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if dmx.Receiver(3) != nil {
		t.Error("LRU order not honored")
	}
	if dmx.Receiver(2) == nil {
		t.Error("recently touched stream evicted")
	}
}

func TestDemuxRejectedStreams(t *testing.T) {
	dmx, err := NewDemux(func(id uint64) (*Receiver, error) {
		if id >= 100 {
			return nil, errors.New("not on the allow-list")
		}
		return NewReceiver(emssScheme(t, 4), 8)
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pkts := blockFor(t, 0)
	if auths, err := dmx.Ingest(500, pkts[0], time.Time{}); err != nil || auths != nil {
		t.Fatalf("rejected stream: %v, %v", auths, err)
	}
	if _, err := dmx.IngestWire(501, []byte("junk"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if tot := dmx.Totals(); tot.RejectedStreams != 2 {
		t.Fatalf("rejected %d, want 2", tot.RejectedStreams)
	}
}

func TestDemuxValidation(t *testing.T) {
	if _, err := NewDemux(nil, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := NewDemux(func(uint64) (*Receiver, error) { return nil, nil }, 0); err == nil {
		t.Error("zero maxStreams accepted")
	}
	dmx, err := NewDemux(func(uint64) (*Receiver, error) { return nil, nil }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dmx.Ingest(1, blockFor(t, 0)[0], time.Time{}); err == nil {
		t.Error("nil receiver from factory accepted")
	}
}
