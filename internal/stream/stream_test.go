package stream

import (
	"fmt"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stats"
)

func emssScheme(t *testing.T, n int) scheme.Scheme {
	t.Helper()
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("stream"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSenderBlocksOnBoundary(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pkts, err := snd.Push([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if pkts != nil {
			t.Fatalf("block emitted after %d pushes", i+1)
		}
	}
	if snd.Pending() != 3 {
		t.Errorf("Pending = %d, want 3", snd.Pending())
	}
	pkts, err := snd.Push([]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 4 {
		t.Fatalf("emitted %d packets, want 4", len(pkts))
	}
	if pkts[0].BlockID != 10 {
		t.Errorf("block ID %d, want 10", pkts[0].BlockID)
	}
	if snd.NextBlockID() != 11 {
		t.Errorf("NextBlockID = %d, want 11", snd.NextBlockID())
	}
}

func TestSenderFlushPads(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snd.Push([]byte("only")); err != nil {
		t.Fatal(err)
	}
	pkts, err := snd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 4 {
		t.Fatalf("flushed %d packets, want 4 (padded)", len(pkts))
	}
	// Flushing again is a no-op.
	pkts, err = snd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if pkts != nil {
		t.Error("second flush should emit nothing")
	}
}

func TestSenderValidation(t *testing.T) {
	if _, err := NewSender(nil, 0); err == nil {
		t.Error("nil scheme should fail")
	}
	if _, err := NewReceiver(nil, 4); err == nil {
		t.Error("nil scheme should fail")
	}
	if _, err := NewReceiver(emssScheme(t, 4), 0); err == nil {
		t.Error("maxBlocks 0 should fail")
	}
}

func TestMultiBlockRoundTrip(t *testing.T) {
	s := emssScheme(t, 5)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wirePackets []*packet.Packet
	const messages = 20 // 4 blocks
	for i := 0; i < messages; i++ {
		pkts, err := snd.Push(fmt.Appendf(nil, "msg-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		wirePackets = append(wirePackets, pkts...)
	}
	got := make(map[string]bool)
	for _, p := range wirePackets {
		wire, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		events, err := rcv.IngestWire(wire, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			got[string(e.Payload)] = true
		}
	}
	for i := 0; i < messages; i++ {
		if !got[fmt.Sprintf("msg-%02d", i)] {
			t.Errorf("message %d never authenticated", i)
		}
	}
	totals := rcv.Totals()
	if totals.Authenticated != messages {
		t.Errorf("Authenticated = %d, want %d", totals.Authenticated, messages)
	}
	if totals.DecodeErrors != 0 || totals.Rejected != 0 {
		t.Errorf("unexpected errors in totals %+v", totals)
	}
}

func TestInterleavedBlocks(t *testing.T) {
	// Packets of two blocks arrive interleaved; both must verify fully.
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var blockA, blockB []*packet.Packet
	for i := 0; i < 4; i++ {
		pkts, err := snd.Push([]byte{0xA0, byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		blockA = append(blockA, pkts...)
	}
	for i := 0; i < 4; i++ {
		pkts, err := snd.Push([]byte{0xB0, byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		blockB = append(blockB, pkts...)
	}
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	authenticated := 0
	for i := 0; i < 4; i++ {
		for _, p := range []*packet.Packet{blockA[i], blockB[i]} {
			events, err := rcv.Ingest(p, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			authenticated += len(events)
		}
	}
	if authenticated != 8 {
		t.Errorf("authenticated %d, want 8", authenticated)
	}
	if rcv.Totals().ActiveBlocks != 2 {
		t.Errorf("ActiveBlocks = %d, want 2", rcv.Totals().ActiveBlocks)
	}
}

func TestEvictionBoundsState(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Send the first packet only of 5 different blocks: state for at
	// most 2 may remain.
	for b := 0; b < 5; b++ {
		var first *packet.Packet
		for i := 0; i < 4; i++ {
			pkts, err := snd.Push([]byte{byte(b), byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			if pkts != nil {
				first = pkts[0]
			}
		}
		if _, err := rcv.Ingest(first, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	totals := rcv.Totals()
	if totals.ActiveBlocks > 2 {
		t.Errorf("ActiveBlocks = %d, want <= 2", totals.ActiveBlocks)
	}
	if totals.EvictedBlocks != 3 {
		t.Errorf("EvictedBlocks = %d, want 3", totals.EvictedBlocks)
	}
}

func TestEvictedBlockPacketsDropped(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][]*packet.Packet
	for b := 0; b < 3; b++ {
		var blk []*packet.Packet
		for i := 0; i < 4; i++ {
			pkts, err := snd.Push([]byte{byte(b), byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			blk = append(blk, pkts...)
		}
		blocks = append(blocks, blk)
	}
	rcv, err := NewReceiver(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Touch blocks 1, 2, 3 in order: 1 then 2 evicts nothing (cap 1
	// evicts 1 when 2 arrives), etc.
	if _, err := rcv.Ingest(blocks[0][0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.Ingest(blocks[1][0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Block 1 is now evicted; delivering the rest of it yields nothing.
	for _, p := range blocks[0][1:] {
		events, err := rcv.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Fatal("evicted block produced events")
		}
	}
}

func TestCloseBlock(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	var blk []*packet.Packet
	for i := 0; i < 4; i++ {
		pkts, err := snd.Push([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		blk = append(blk, pkts...)
	}
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.Ingest(blk[0], time.Time{}); err != nil {
		t.Fatal(err)
	}
	rcv.CloseBlock(7)
	rcv.CloseBlock(999) // unknown: no-op
	events, err := rcv.Ingest(blk[1], time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Error("closed block produced events")
	}
	if rcv.Totals().ActiveBlocks != 0 {
		t.Errorf("ActiveBlocks = %d, want 0", rcv.Totals().ActiveBlocks)
	}
}

func TestDecodeErrorsCounted(t *testing.T) {
	rcv, err := NewReceiver(emssScheme(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	events, err := rcv.IngestWire([]byte{1, 2, 3}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Error("garbage produced events")
	}
	if rcv.Totals().DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d, want 1", rcv.Totals().DecodeErrors)
	}
	if _, err := rcv.Ingest(nil, time.Time{}); err == nil {
		t.Error("nil packet should error")
	}
}

func TestTamperedCounted(t *testing.T) {
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var blk []*packet.Packet
	for i := 0; i < 4; i++ {
		pkts, err := snd.Push([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		blk = append(blk, pkts...)
	}
	rcv, err := NewReceiver(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the signature packet and P3 (which carries H(P1)) first,
	// so the tampered copy of P1 is rejected on arrival rather than
	// buffered.
	if _, err := rcv.Ingest(blk[3], time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.Ingest(blk[2], time.Time{}); err != nil {
		t.Fatal(err)
	}
	evil := *blk[0]
	evil.Payload = []byte("evil")
	if _, err := rcv.Ingest(&evil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if rcv.Totals().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", rcv.Totals().Rejected)
	}
}

func TestTESLAMultiBlockStreaming(t *testing.T) {
	cfg := tesla.Config{
		N:        6,
		Lag:      2,
		Interval: 10 * time.Millisecond,
		Start:    time.Unix(100, 0),
		Seed:     []byte("stream"),
	}
	s, err := tesla.New(cfg, crypto.NewSignerFromString("stream"))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	authenticated := 0
	clock := cfg.Start
	for b := 0; b < 3; b++ {
		var pkts []*packet.Packet
		for i := 0; i < 6; i++ {
			out, err := snd.Push(fmt.Appendf(nil, "blk%d-msg%d", b, i))
			if err != nil {
				t.Fatal(err)
			}
			pkts = append(pkts, out...)
		}
		for _, p := range pkts {
			clock = clock.Add(cfg.Interval)
			events, err := rcv.Ingest(p, clock)
			if err != nil {
				t.Fatal(err)
			}
			authenticated += len(events)
		}
		// Each block uses a fresh chain; arrival clock continues but
		// blocks are self-contained, so restart the schedule base.
		clock = cfg.Start
	}
	if authenticated != 18 {
		t.Errorf("authenticated %d, want 18", authenticated)
	}
}

func TestStreamRandomizedDeliveryProperty(t *testing.T) {
	// Shuffle all packets of 3 blocks together; with no loss everything
	// authenticates regardless of order.
	s := emssScheme(t, 6)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var all []*packet.Packet
	for i := 0; i < 18; i++ {
		pkts, err := snd.Push([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, pkts...)
	}
	rng := stats.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]*packet.Packet(nil), all...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		rcv, err := NewReceiver(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, p := range shuffled {
			events, err := rcv.Ingest(p, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			count += len(events)
		}
		if count != 18 {
			t.Fatalf("trial %d: authenticated %d, want 18", trial, count)
		}
	}
}

func TestClosedTombstonesBounded(t *testing.T) {
	// Streaming thousands of blocks through a small receiver must not
	// accumulate unbounded eviction tombstones.
	s := emssScheme(t, 4)
	snd, err := NewSender(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 500; b++ {
		var first *packet.Packet
		for i := 0; i < 4; i++ {
			pkts, err := snd.Push([]byte{byte(b), byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			if pkts != nil {
				first = pkts[0]
			}
		}
		if _, err := rcv.Ingest(first, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(rcv.closed); got > closedTombstonesPerBlock*2 {
		t.Errorf("tombstone set grew to %d entries", got)
	}
	if rcv.Totals().EvictedBlocks != 498 {
		t.Errorf("EvictedBlocks = %d, want 498", rcv.Totals().EvictedBlocks)
	}
}

func TestInvalidPacketToleratedNotFatal(t *testing.T) {
	// A forged datagram with an out-of-range index must be counted, not
	// kill the stream: later genuine packets still authenticate.
	s := emssScheme(t, 4)
	rcv, err := NewReceiver(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	evil := &packet.Packet{BlockID: 1, Index: 9999, Payload: []byte("forged")}
	if _, err := rcv.Ingest(evil, time.Unix(0, 0)); err != nil {
		t.Fatalf("adversarial packet must not error the stream: %v", err)
	}
	var authed int
	for _, p := range pkts {
		evs, err := rcv.Ingest(p, time.Unix(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		authed += len(evs)
	}
	if authed != 4 {
		t.Errorf("authenticated %d after adversarial packet, want 4", authed)
	}
	if got := rcv.Totals().InvalidPackets; got != 1 {
		t.Errorf("InvalidPackets = %d, want 1", got)
	}
}

func TestStarvedReportsSignaturelessBlocks(t *testing.T) {
	s := emssScheme(t, 4)
	rcv, err := NewReceiver(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(7, [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	// Deliver everything except the signature packet (EMSS: the last).
	for _, p := range pkts[:len(pkts)-1] {
		if _, err := rcv.Ingest(p, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	starved := rcv.Starved()
	if len(starved) != 1 || starved[0] != 7 {
		t.Fatalf("Starved = %v, want [7]", starved)
	}
	// The signature packet unblocks the block; it leaves the starved set.
	if _, err := rcv.Ingest(pkts[len(pkts)-1], time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if got := rcv.Starved(); len(got) != 0 {
		t.Fatalf("Starved after signature = %v, want empty", got)
	}
}

func TestMaxBufferedPerBlockBoundsFlood(t *testing.T) {
	// Distinct unverifiable packets for one block must stop accumulating
	// at the per-block cap.
	s := emssScheme(t, 64)
	rcv, err := NewReceiver(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	rcv.SetMaxBufferedPerBlock(8)
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	// Flood with every packet except the signature: all buffer.
	for _, p := range pkts[:len(pkts)-1] {
		if _, err := rcv.Ingest(p, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	st := rcv.verifiers[1].Stats()
	if st.MsgBufferHighWater > 8 {
		t.Errorf("per-block high water %d exceeds cap 8", st.MsgBufferHighWater)
	}
	if st.DroppedOverflow == 0 {
		t.Error("flood should have triggered overflow drops")
	}
}
