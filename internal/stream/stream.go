// Package stream provides the long-lived multicast session layer on top of
// per-block schemes: the paper's setting is a stream "whose lifetime could
// be very long, during which recipients join and leave frequently", so
// packets are authenticated block by block. The Sender chops an unbounded
// message sequence into blocks and authenticates each; the Receiver
// demultiplexes interleaved wire packets into per-block verifiers, lets
// late joiners synchronize at the next block boundary, and bounds its
// buffering (the paper notes receiver buffering is a denial-of-service
// surface) by evicting the oldest incomplete blocks.
package stream

import (
	"errors"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/verifier"
)

// Sender accumulates messages and emits authenticated wire packets one
// block at a time.
type Sender struct {
	s       scheme.Scheme
	blockID uint64
	pending [][]byte
	// Flush-deadline state (see SetFlushAfter / Due in deferred.go):
	// oldestPending timestamps the first message of the filling block.
	flushAfter    time.Duration
	oldestPending time.Time
	// Causal span tracing (see SetSpans): each emitted block records a
	// "push" span, the root of its end-to-end trace.
	spans      *obs.SpanRing
	spanStream uint64
}

// NewSender creates a sender starting at the given block ID.
func NewSender(s scheme.Scheme, startBlock uint64) (*Sender, error) {
	if s == nil {
		return nil, errors.New("stream: nil scheme")
	}
	return &Sender{s: s, blockID: startBlock}, nil
}

// SetSpans attaches a causal span ring: every block this sender emits
// records a "push" span keyed by (streamID, block ID), the root of the
// block's end-to-end trace (shard enqueue, sign attach, mux write, and the
// receiver-side spans all derive the same trace ID). nil detaches.
func (snd *Sender) SetSpans(r *obs.SpanRing, streamID uint64) {
	snd.spans = r
	snd.spanStream = streamID
}

// spanPush records the block-emitted span.
func (snd *Sender) spanPush(blockID uint64) {
	if !snd.spans.Enabled() {
		return
	}
	snd.spans.Record(obs.Span{
		Kind:   obs.SpanPush,
		Stream: snd.spanStream,
		Block:  blockID,
		TimeNS: time.Now().UnixNano(),
	})
}

// Push appends one message. When the message completes a block, the
// block's wire packets are returned (nil otherwise).
func (snd *Sender) Push(payload []byte) ([]*packet.Packet, error) {
	snd.pending = append(snd.pending, payload)
	if len(snd.pending) < snd.s.BlockSize() {
		return nil, nil
	}
	return snd.emit()
}

// Pending returns the number of messages waiting for a block to fill.
func (snd *Sender) Pending() int { return len(snd.pending) }

// NextBlockID returns the ID the next emitted block will carry.
func (snd *Sender) NextBlockID() uint64 { return snd.blockID }

// Flush pads a partial block with empty payloads and emits it; it returns
// (nil, nil) when nothing is pending. Receivers see the padding as
// authenticated empty messages and can discard them.
func (snd *Sender) Flush() ([]*packet.Packet, error) {
	if len(snd.pending) == 0 {
		return nil, nil
	}
	for len(snd.pending) < snd.s.BlockSize() {
		snd.pending = append(snd.pending, nil)
	}
	return snd.emit()
}

func (snd *Sender) emit() ([]*packet.Packet, error) {
	pkts, err := snd.s.Authenticate(snd.blockID, snd.pending)
	if err != nil {
		return nil, fmt.Errorf("stream: block %d: %w", snd.blockID, err)
	}
	snd.spanPush(snd.blockID)
	snd.blockID++
	snd.pending = nil
	snd.oldestPending = time.Time{}
	return pkts, nil
}

// Authenticated is one verified message delivered by a Receiver.
type Authenticated struct {
	BlockID uint64
	Index   uint32
	Payload []byte
}

// Totals aggregates a Receiver's lifetime counters.
type Totals struct {
	WireBytes     int
	Packets       int
	DecodeErrors  int
	Authenticated int
	Rejected      int
	Unsafe        int
	Duplicates    int
	// InvalidPackets counts well-formed datagrams the block verifier
	// refused outright (out-of-range index, block mismatch) — adversarial
	// input, tolerated and counted rather than treated as fatal.
	InvalidPackets int
	EvictedBlocks  int
	ActiveBlocks   int
	// CacheHits counts packets authenticated straight from the shared
	// verification cache (see SetSharedVerifyCache) without re-proving.
	CacheHits int
	// PendingSignature is the number of packets currently parked awaiting
	// a deferred batch-verify verdict (a gauge, not a counter).
	PendingSignature int
	// TimeToAuth merges the per-block verifiers' arrival-to-
	// authentication histograms — the measured receiver delay of a
	// transport-driven run, in nanoseconds.
	TimeToAuth obs.HistogramData
}

// Receiver demultiplexes interleaved wire packets into per-block
// verifiers.
type Receiver struct {
	s         scheme.Scheme
	maxBlocks int
	verifiers map[uint64]scheme.Verifier
	order     []uint64 // insertion order, for eviction
	// closed remembers recently evicted/closed blocks so their late
	// packets are dropped instead of resurrecting verification state.
	// It is itself bounded (closedOrder) so an unbounded stream does
	// not leak one tombstone per block.
	closed      map[uint64]bool
	closedOrder []uint64
	// maxBufferedPerBlock, when > 0, is applied to every new block
	// verifier that supports scheme.BufferBounded, so one flooded block
	// cannot grow memory without bound.
	maxBufferedPerBlock int
	totals              Totals
	// Receiver fast path (see SetSharedVerifyCache / SetBatchVerify):
	// cache and batchQ are applied to every new block verifier that
	// supports the corresponding scheme interface.
	cache       *verifier.SharedCache
	cacheStream uint64
	batchQ      *crypto.BatchVerifyQueue
	// spans, when attached, records a "decode" span per routed packet and
	// is handed to every new scheme.SpanAware block verifier, which
	// records the park/resolve/authenticate/reject tail of the trace.
	spans      *obs.SpanRing
	spanStream uint64
	// lastStats snapshots each live verifier's counters at the last fold
	// into totals. Deferred verdicts mutate verifier stats outside Ingest
	// (and possibly in a different block than the packet being ingested),
	// so totals are synced by delta against these snapshots rather than a
	// before/after pair around one Ingest call.
	lastStats map[uint64]verifier.Stats
	// deferredOut accumulates messages authenticated by deferred batch
	// verdicts; Ingest drains it into its return value, and DrainDeferred
	// collects verdicts delivered by an explicit queue Resolve.
	deferredOut []Authenticated
	// maxAuthed / hasAuthed track the highest block that has authenticated
	// at least one message — the receiver's resume cursor (see ResumeFrom).
	maxAuthed uint64
	hasAuthed bool
}

// closedTombstonesPerBlock sizes the tombstone set relative to the live
// window: late packets older than several windows are indistinguishable
// from a brand-new block and will simply allocate (and then starve) a
// fresh verifier.
const closedTombstonesPerBlock = 8

// NewReceiver creates a receiver that keeps at most maxBlocks blocks'
// verification state live at once.
func NewReceiver(s scheme.Scheme, maxBlocks int) (*Receiver, error) {
	if s == nil {
		return nil, errors.New("stream: nil scheme")
	}
	if maxBlocks < 1 {
		return nil, fmt.Errorf("stream: maxBlocks %d must be >= 1", maxBlocks)
	}
	return &Receiver{
		s:         s,
		maxBlocks: maxBlocks,
		verifiers: make(map[uint64]scheme.Verifier),
		closed:    make(map[uint64]bool),
		lastStats: make(map[uint64]verifier.Stats),
	}, nil
}

// SetSharedVerifyCache attaches a cross-subscriber verification cache: every
// block verifier created from now on that implements scheme.CacheAware
// authenticates cache-hit packets without re-proving them. streamID must
// identify this receiver's stream (and therefore its signing key) within
// the cache; receivers of different streams sharing one cache must use
// distinct IDs.
func (r *Receiver) SetSharedVerifyCache(c *verifier.SharedCache, streamID uint64) {
	r.cache = c
	r.cacheStream = streamID
}

// SetBatchVerify defers signature checks of every scheme.DeferredVerifier
// block verifier created from now on to q. Packets whose signature is
// pending park inside their block verifier; verdicts resolve when q fills
// (auto-resolve during some later Ingest) or when the caller invokes
// q.Resolve directly — after which DrainDeferred returns the newly
// authenticated messages. The queue must only be resolved on the goroutine
// that calls Ingest.
func (r *Receiver) SetBatchVerify(q *crypto.BatchVerifyQueue) {
	r.batchQ = q
}

// SetSpans attaches a causal span ring: each routed packet records a
// "decode" span, and block verifiers created from now on that implement
// scheme.SpanAware record the verification tail of the block's trace.
// streamID keys the spans to this receiver's stream, matching the
// sender-side spans of the same blocks.
func (r *Receiver) SetSpans(ring *obs.SpanRing, streamID uint64) {
	r.spans = ring
	r.spanStream = streamID
}

// DrainDeferred returns (and clears) messages authenticated by deferred
// batch-verify verdicts since the last Ingest or DrainDeferred call. Call
// it after resolving the batch-verify queue directly.
func (r *Receiver) DrainDeferred() []Authenticated {
	out := r.deferredOut
	r.deferredOut = nil
	if r.batchQ != nil {
		r.syncAllStats()
	}
	return out
}

// noteDeferred is the sink handed to deferred block verifiers: it records
// messages authenticated after their Ingest already returned.
func (r *Receiver) noteDeferred(blockID uint64, events []verifier.Event) {
	for _, e := range events {
		r.totals.Authenticated++
		r.deferredOut = append(r.deferredOut, Authenticated{BlockID: blockID, Index: e.Index, Payload: e.Payload})
	}
	if len(events) > 0 && (!r.hasAuthed || blockID > r.maxAuthed) {
		r.maxAuthed = blockID
		r.hasAuthed = true
	}
}

// IngestWire decodes one wire datagram and routes it to its block's
// verifier, returning any messages it newly authenticated. Malformed
// datagrams are counted, not fatal.
func (r *Receiver) IngestWire(wire []byte, at time.Time) ([]Authenticated, error) {
	r.totals.WireBytes += len(wire)
	p, err := packet.Decode(wire)
	if err != nil {
		r.totals.DecodeErrors++
		return nil, nil
	}
	return r.Ingest(p, at)
}

// SetMaxBufferedPerBlock caps the pending-packet buffer of every block
// verifier created from now on (via scheme.BufferBounded); zero or negative
// restores the default (unbounded). Together with the block-count bound
// this caps the receiver's total buffering at maxBlocks * n packets under
// any flood.
func (r *Receiver) SetMaxBufferedPerBlock(n int) {
	if n < 0 {
		n = 0
	}
	r.maxBufferedPerBlock = n
}

// Ingest routes an already-decoded packet. Adversarial input — packets the
// block verifier refuses outright — is counted in Totals.InvalidPackets and
// tolerated: a forged datagram must never be able to stop the stream.
func (r *Receiver) Ingest(p *packet.Packet, at time.Time) ([]Authenticated, error) {
	if p == nil {
		return nil, errors.New("stream: nil packet")
	}
	r.totals.Packets++
	if r.spans.Enabled() {
		r.spans.Record(obs.Span{
			Kind:   obs.SpanDecode,
			Stream: r.spanStream,
			Block:  p.BlockID,
			Index:  p.Index,
			TimeNS: obs.TimeNS(at),
		})
	}
	if r.closed[p.BlockID] {
		// The block's state was evicted; late packets are dropped.
		return nil, nil
	}
	v, ok := r.verifiers[p.BlockID]
	if !ok {
		newV, err := r.s.NewVerifier()
		if err != nil {
			return nil, fmt.Errorf("stream: block %d: %w", p.BlockID, err)
		}
		v = newV
		if bb, ok := v.(scheme.BufferBounded); ok && r.maxBufferedPerBlock > 0 {
			bb.SetMaxBuffered(r.maxBufferedPerBlock)
		}
		if ca, ok := v.(scheme.CacheAware); ok && r.cache != nil {
			ca.SetSharedCache(r.cache, r.cacheStream)
		}
		if dv, ok := v.(scheme.DeferredVerifier); ok && r.batchQ != nil {
			blockID := p.BlockID
			dv.SetBatchVerify(r.batchQ, func(events []verifier.Event) {
				r.noteDeferred(blockID, events)
			})
		}
		if sa, ok := v.(scheme.SpanAware); ok && r.spans != nil {
			sa.SetSpans(r.spans, r.spanStream)
		}
		r.verifiers[p.BlockID] = v
		r.order = append(r.order, p.BlockID)
		r.evictIfNeeded()
	}
	var resolvesBefore int64
	if r.batchQ != nil {
		resolvesBefore = r.batchQ.Totals().Resolves
	}
	events, err := v.Ingest(p, at)
	if err != nil {
		r.totals.InvalidPackets++
		return nil, nil
	}
	if r.batchQ != nil && r.batchQ.Totals().Resolves != resolvesBefore {
		// An auto-resolve fired during this Ingest; verdicts may have
		// mutated stats of other blocks' verifiers too.
		r.syncAllStats()
	} else {
		r.syncStats(p.BlockID, v)
	}
	out := make([]Authenticated, 0, len(events))
	for _, e := range events {
		r.totals.Authenticated++
		out = append(out, Authenticated{BlockID: p.BlockID, Index: e.Index, Payload: e.Payload})
	}
	if len(out) > 0 && (!r.hasAuthed || p.BlockID > r.maxAuthed) {
		r.maxAuthed = p.BlockID
		r.hasAuthed = true
	}
	// Deferred verdicts resolved during this Ingest ride out with it.
	if len(r.deferredOut) > 0 {
		out = append(out, r.deferredOut...)
		r.deferredOut = nil
	}
	return out, nil
}

// syncStats folds one live verifier's counter growth since the last fold
// into the lifetime totals.
func (r *Receiver) syncStats(blockID uint64, v scheme.Verifier) {
	last := r.lastStats[blockID]
	st := v.Stats()
	r.totals.Rejected += st.Rejected - last.Rejected
	r.totals.Unsafe += st.Unsafe - last.Unsafe
	r.totals.Duplicates += st.Duplicates - last.Duplicates
	r.totals.CacheHits += st.CacheHits - last.CacheHits
	r.lastStats[blockID] = st
}

func (r *Receiver) syncAllStats() {
	for id, v := range r.verifiers {
		r.syncStats(id, v)
	}
}

// ResumeFrom returns the block ID a reconnecting receiver should request
// replay from: the highest block that has authenticated anything. That
// block is itself re-requested — it may be only partially delivered, and
// replaying what did arrive costs only duplicates the verifiers already
// count and discard, so the cursor rounds down rather than ever skipping
// a possibly-incomplete block. ok is false while nothing has
// authenticated yet (request everything).
func (r *Receiver) ResumeFrom() (uint64, bool) {
	if !r.hasAuthed {
		return 0, false
	}
	return r.maxAuthed, true
}

func (r *Receiver) evictIfNeeded() {
	for len(r.verifiers) > r.maxBlocks {
		oldest := r.order[0]
		r.order = r.order[1:]
		r.retireVerifier(oldest)
		r.markClosed(oldest)
		r.totals.EvictedBlocks++
	}
}

// retireVerifier folds a departing block verifier's latency histogram
// into the lifetime totals before dropping its state.
func (r *Receiver) retireVerifier(blockID uint64) {
	if v, ok := r.verifiers[blockID]; ok {
		r.syncStats(blockID, v)
		r.totals.TimeToAuth.Merge(v.Stats().TimeToAuth)
	}
	delete(r.verifiers, blockID)
	delete(r.lastStats, blockID)
}

func (r *Receiver) markClosed(blockID uint64) {
	if r.closed[blockID] {
		return
	}
	r.closed[blockID] = true
	r.closedOrder = append(r.closedOrder, blockID)
	for len(r.closedOrder) > closedTombstonesPerBlock*r.maxBlocks {
		delete(r.closed, r.closedOrder[0])
		r.closedOrder = r.closedOrder[1:]
	}
}

// CloseBlock releases a block's verification state early (e.g. once the
// application has all it needs); later packets for it are dropped.
func (r *Receiver) CloseBlock(blockID uint64) {
	if _, ok := r.verifiers[blockID]; !ok {
		return
	}
	r.retireVerifier(blockID)
	for i, id := range r.order {
		if id == blockID {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.markClosed(blockID)
}

// Starved returns the IDs of live blocks that have ingested packets but
// authenticated none — the signature/bootstrap packet is missing, so every
// received packet sits in the buffer unverifiable. These are the blocks a
// NACK-capable transport should re-request authentication material for.
func (r *Receiver) Starved() []uint64 {
	var out []uint64
	for _, id := range r.order {
		v, ok := r.verifiers[id]
		if !ok {
			continue
		}
		st := v.Stats()
		if st.Received > 0 && st.Authenticated == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Totals returns the receiver's lifetime counters. The latency histogram
// covers retired blocks plus the live verifiers' state at call time.
func (r *Receiver) Totals() Totals {
	r.syncAllStats()
	t := r.totals
	t.ActiveBlocks = len(r.verifiers)
	for _, v := range r.verifiers {
		st := v.Stats()
		t.PendingSignature += st.PendingSignature
		t.TimeToAuth.Merge(st.TimeToAuth)
	}
	return t
}
