// Connection-level chaos: where fault.Injector mutates datagram *bytes*,
// ConnFaults breaks the *transport* a serving tier rides on — TCP
// connections that reset mid-frame, writes that land partially before the
// peer vanishes, and readers that stall long enough to back the sender's
// queues up. These are the process-level failures the resilient serving
// tier (checkpointing, session resume, priority shedding) exists to
// absorb, so the chaos harness injects them at the net.Conn boundary.
//
// Randomness again comes from an explicit *stats.RNG; unlike Injector, a
// ConnFaults instance is shared across connections (accept loops wrap
// every conn), so the RNG sits behind a mutex and the counters are atomic.

package fault

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mcauth/internal/stats"
)

// ConnFaultConfig parameterizes connection-level failure injection. All
// rates are per-operation probabilities in [0,1]; a zero config injects
// nothing.
type ConnFaultConfig struct {
	// Seed feeds the shared RNG.
	Seed uint64
	// ResetRate is the probability a Write aborts the connection: a random
	// prefix of the buffer is written, then the conn closes — the peer
	// sees a mid-frame reset.
	ResetRate float64
	// PartialWriteRate is the probability a Write reports success for only
	// a strict prefix (a torn frame without a close), which a framed
	// reader downstream must survive as a decode error, never a crash.
	PartialWriteRate float64
	// ReadStallRate is the probability a Read sleeps StallDelay first — a
	// consumer that stops draining, backing pressure up into the server.
	ReadStallRate float64
	// StallDelay is the read stall length (default 50ms).
	StallDelay time.Duration
}

// Validate checks the configuration.
func (c ConnFaultConfig) Validate() error {
	rates := map[string]float64{
		"reset":         c.ResetRate,
		"partial write": c.PartialWriteRate,
		"read stall":    c.ReadStallRate,
	}
	for name, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v out of [0,1]", name, r)
		}
	}
	if c.StallDelay < 0 {
		return fmt.Errorf("fault: negative stall delay %v", c.StallDelay)
	}
	return nil
}

// Enabled reports whether the configuration injects anything.
func (c ConnFaultConfig) Enabled() bool {
	return c.ResetRate > 0 || c.PartialWriteRate > 0 || c.ReadStallRate > 0
}

const defaultConnStallDelay = 50 * time.Millisecond

// ConnFaults wraps net.Conns with seeded failure injection. One instance
// serves many connections (safe for concurrent use); its counters report
// what was injected so harnesses can assert the chaos actually happened.
type ConnFaults struct {
	cfg ConnFaultConfig

	mu  sync.Mutex
	rng *stats.RNG

	resets        atomic.Int64
	partialWrites atomic.Int64
	stalls        atomic.Int64
}

// NewConnFaults builds the injector.
func NewConnFaults(cfg ConnFaultConfig) (*ConnFaults, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StallDelay == 0 {
		cfg.StallDelay = defaultConnStallDelay
	}
	return &ConnFaults{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Resets returns how many connection resets were injected.
func (cf *ConnFaults) Resets() int64 { return cf.resets.Load() }

// PartialWrites returns how many torn writes were injected.
func (cf *ConnFaults) PartialWrites() int64 { return cf.partialWrites.Load() }

// Stalls returns how many read stalls were injected.
func (cf *ConnFaults) Stalls() int64 { return cf.stalls.Load() }

// bernoulli draws from the shared RNG under the lock.
func (cf *ConnFaults) bernoulli(rate float64) bool {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.rng.Bernoulli(rate)
}

// intn draws from the shared RNG under the lock.
func (cf *ConnFaults) intn(n int) int {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.rng.Intn(n)
}

// Wrap returns conn with fault injection applied to Read and Write. A nil
// ConnFaults (or one with nothing enabled) returns conn unchanged.
func (cf *ConnFaults) Wrap(conn net.Conn) net.Conn {
	if cf == nil || !cf.cfg.Enabled() {
		return conn
	}
	return &faultyConn{Conn: conn, cf: cf}
}

// faultyConn is one wrapped connection.
type faultyConn struct {
	net.Conn
	cf *ConnFaults
}

// Read may stall before delegating — a consumer that stopped draining.
func (fc *faultyConn) Read(b []byte) (int, error) {
	if fc.cf.cfg.ReadStallRate > 0 && fc.cf.bernoulli(fc.cf.cfg.ReadStallRate) {
		fc.cf.stalls.Add(1)
		time.Sleep(fc.cf.cfg.StallDelay)
	}
	return fc.Conn.Read(b)
}

// Write may tear the buffer (strict-prefix success) or reset the
// connection after a partial transmit.
func (fc *faultyConn) Write(b []byte) (int, error) {
	if fc.cf.cfg.ResetRate > 0 && fc.cf.bernoulli(fc.cf.cfg.ResetRate) {
		fc.cf.resets.Add(1)
		n := 0
		if len(b) > 0 {
			if n = fc.cf.intn(len(b)); n > 0 {
				n, _ = fc.Conn.Write(b[:n])
			}
		}
		fc.Conn.Close()
		return n, fmt.Errorf("fault: injected connection reset: %w", net.ErrClosed)
	}
	if fc.cf.cfg.PartialWriteRate > 0 && len(b) > 1 && fc.cf.bernoulli(fc.cf.cfg.PartialWriteRate) {
		fc.cf.partialWrites.Add(1)
		n, err := fc.Conn.Write(b[:1+fc.cf.intn(len(b)-1)])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("fault: injected partial write (%d of %d bytes)", n, len(b))
	}
	return fc.Conn.Write(b)
}
