package fault

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestConnFaultConfigValidate(t *testing.T) {
	for _, cfg := range []ConnFaultConfig{
		{ResetRate: -0.1},
		{ResetRate: 1.5},
		{PartialWriteRate: 2},
		{ReadStallRate: -1},
		{StallDelay: -time.Second},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := NewConnFaults(cfg); err == nil {
			t.Errorf("NewConnFaults accepted %+v", cfg)
		}
	}
	if (ConnFaultConfig{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(ConnFaultConfig{ResetRate: 0.1}).Enabled() {
		t.Error("reset-only config reports disabled")
	}
}

func TestConnFaultsWrapPassthroughWhenDisabled(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	var nilCF *ConnFaults
	if got := nilCF.Wrap(c1); got != c1 {
		t.Error("nil ConnFaults wrapped the conn")
	}
	cf, err := NewConnFaults(ConnFaultConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := cf.Wrap(c1); got != c1 {
		t.Error("disabled ConnFaults wrapped the conn")
	}
}

// TestConnFaultsInjectsResetsAndTears drives enough writes through a
// wrapped pipe that both write-side faults fire, and checks every injected
// failure is visible to the caller: a counted error with either a strict
// prefix delivered (torn) or a closed conn (reset).
func TestConnFaultsInjectsResetsAndTears(t *testing.T) {
	cf, err := NewConnFaults(ConnFaultConfig{Seed: 7, ResetRate: 0.2, PartialWriteRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	var clean, torn int
	for i := 0; i < 200; i++ {
		c1, c2 := net.Pipe()
		w := cf.Wrap(c1)
		if w == c1 {
			t.Fatal("enabled ConnFaults did not wrap")
		}
		// Drain the peer so pipe writes complete.
		drained := make(chan int, 1)
		go func() {
			total := 0
			tmp := make([]byte, len(buf))
			for {
				n, err := c2.Read(tmp)
				total += n
				if err != nil {
					drained <- total
					return
				}
			}
		}()
		n, werr := w.Write(buf)
		c1.Close()
		got := <-drained
		c2.Close()
		switch {
		case werr == nil:
			clean++
			if n != len(buf) || got != len(buf) {
				t.Fatalf("clean write delivered %d/%d bytes", got, len(buf))
			}
		case errors.Is(werr, net.ErrClosed):
			// Injected reset: whatever prefix was reported is what landed.
			if n >= len(buf) && got >= len(buf) {
				t.Fatalf("reset delivered the whole buffer (%d bytes)", got)
			}
		default:
			torn++
			if n <= 0 || n >= len(buf) || got != n {
				t.Fatalf("torn write reported %d bytes, peer saw %d (buffer %d)", n, got, len(buf))
			}
		}
	}
	if cf.Resets() == 0 || cf.PartialWrites() == 0 {
		t.Fatalf("after 200 writes at rate 0.2: %d resets, %d torn — injection never fired",
			cf.Resets(), cf.PartialWrites())
	}
	if int64(torn) != cf.PartialWrites() {
		t.Errorf("torn-write counter %d != observed torn errors %d", cf.PartialWrites(), torn)
	}
	if clean == 0 {
		t.Error("every write faulted at rate 0.2 — RNG looks broken")
	}
}

func TestConnFaultsReadStall(t *testing.T) {
	const delay = 30 * time.Millisecond
	cf, err := NewConnFaults(ConnFaultConfig{Seed: 3, ReadStallRate: 1, StallDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c2.Close()
	w := cf.Wrap(c1)
	defer w.Close()
	go c2.Write([]byte("hello"))

	start := time.Now()
	buf := make([]byte, 8)
	n, err := w.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("stalled read failed: n=%d err=%v", n, err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("read returned after %v, want >= %v stall", elapsed, delay)
	}
	if cf.Stalls() == 0 {
		t.Error("stall counter never incremented")
	}
}

// TestConnFaultsDeterministic checks that two injectors with the same seed
// make the same fault decisions — the property that lets a chaos run be
// replayed.
func TestConnFaultsDeterministic(t *testing.T) {
	decisions := func(seed uint64) []bool {
		cf, err := NewConnFaults(ConnFaultConfig{Seed: seed, ResetRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = cf.bernoulli(cf.cfg.ResetRate)
		}
		return out
	}
	a, b := decisions(11), decisions(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between same-seed injectors", i)
		}
	}
}
