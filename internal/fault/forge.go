package fault

import (
	"bytes"
	"fmt"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/stats"
)

// forgedPayloadPrefix marks attacker-fabricated payloads so harnesses can
// detect the catastrophic failure — a forged payload emitted as authentic —
// without guessing. A real attacker would not label their forgery, but the
// label changes nothing for the verifier: the payload differs from the
// genuine one, which is all that matters cryptographically.
var forgedPayloadPrefix = []byte("FORGED\x00")

// ForgedPayload builds a marked adversarial payload derived from seed.
func ForgedPayload(seed uint64) []byte {
	return fmt.Appendf(append([]byte(nil), forgedPayloadPrefix...), "%016x", seed)
}

// IsForgedPayload reports whether a payload was fabricated by this package's
// forgers. Chaos harnesses assert that no such payload ever authenticates.
func IsForgedPayload(p []byte) bool {
	return bytes.HasPrefix(p, forgedPayloadPrefix)
}

// Forger fabricates adversarial packets that plausibly belong to the
// stream: same block, in-range index, well-formed encoding — everything an
// eavesdropping attacker can copy — but with attacker-chosen content.
type Forger interface {
	// Forge returns a forged packet modeled on the template (a genuine
	// packet the attacker observed), or nil if no forgery applies.
	Forge(rng *stats.RNG, template *packet.Packet) *packet.Packet
}

// WrongKeyForger is the strongest realistic injection attacker: it copies a
// genuine packet's framing (block, index, key index, hash-ref targets),
// substitutes its own payload, and where the original carried a signature
// re-signs the forged content — under the attacker's key. Carried hash
// digests are recomputed over attacker-chosen bytes, i.e. spoofed
// references: structurally valid, cryptographically worthless.
type WrongKeyForger struct {
	signer crypto.Signer
	serial uint64
}

var _ Forger = (*WrongKeyForger)(nil)

// NewWrongKeyForger derives the attacker's signing key from id.
func NewWrongKeyForger(id string) *WrongKeyForger {
	return &WrongKeyForger{signer: crypto.NewSignerFromString("attacker:" + id)}
}

// Forge implements Forger.
func (f *WrongKeyForger) Forge(rng *stats.RNG, template *packet.Packet) *packet.Packet {
	if template == nil {
		return nil
	}
	f.serial++
	forged := &packet.Packet{
		BlockID:           template.BlockID,
		Index:             template.Index,
		KeyIndex:          template.KeyIndex,
		Payload:           ForgedPayload(f.serial ^ rng.Uint64()),
		DisclosedKeyIndex: template.DisclosedKeyIndex,
	}
	// Spoofed hash references: same edge targets, digests of attacker
	// bytes. A verifier that trusted these would cascade forgeries.
	for _, h := range template.Hashes {
		forged.Hashes = append(forged.Hashes, packet.HashRef{
			TargetIndex: h.TargetIndex,
			Digest:      crypto.HashBytes(ForgedPayload(rng.Uint64())),
		})
	}
	if len(template.Signature) > 0 {
		forged.Signature = f.signer.Sign(forged.ContentBytes())
	}
	if len(template.MAC) > 0 {
		// The attacker does not hold the interval key; a MAC under a
		// made-up key is the best available.
		forged.MAC = crypto.MAC(ForgedPayload(rng.Uint64())[:16], forged.ContentBytes())
	}
	if len(template.DisclosedKey) > 0 {
		forged.DisclosedKey = ForgedPayload(rng.Uint64())[:len(template.DisclosedKey)]
	}
	return forged
}

// Preset names a ready-made single-fault mix for chaos sweeps.
var presetNames = []string{"corruption", "forgery", "duplication", "truncation", "reorder"}

// PresetNames lists the available Preset mixes in sweep order.
func PresetNames() []string {
	return append([]string(nil), presetNames...)
}

// Preset returns the named single-fault configuration at the given
// injection rate. The five presets cover the chaos matrix: corruption,
// forgery, duplication, truncation, and burst reorder.
func Preset(name string, rate float64) (Config, error) {
	if rate < 0 || rate > 1 {
		return Config{}, fmt.Errorf("fault: preset rate %v out of [0,1]", rate)
	}
	switch name {
	case "corruption":
		return Config{CorruptRate: rate}, nil
	case "forgery":
		return Config{ForgeRate: rate}, nil
	case "duplication":
		return Config{DuplicateRate: rate}, nil
	case "truncation":
		return Config{TruncateRate: rate}, nil
	case "reorder":
		return Config{ReorderRate: rate}, nil
	default:
		return Config{}, fmt.Errorf("fault: unknown preset %q", name)
	}
}
