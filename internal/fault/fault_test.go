package fault

import (
	"bytes"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/packet"
	"mcauth/internal/stats"
)

func testPacket() *packet.Packet {
	p := &packet.Packet{
		BlockID: 3,
		Index:   5,
		Payload: []byte("genuine payload"),
		Hashes: []packet.HashRef{
			{TargetIndex: 2, Digest: crypto.HashBytes([]byte("two"))},
		},
	}
	p.Signature = crypto.NewSignerFromString("sender").Sign(p.ContentBytes())
	return p
}

func encode(t *testing.T, p *packet.Packet) []byte {
	t.Helper()
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CorruptRate: -0.1},
		{TruncateRate: 1.5},
		{ForgeRate: 2},
		{ReorderSpike: -time.Second},
		{StallLength: -1},
		{StallDelay: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
		if _, err := NewInjector(cfg, stats.NewRNG(1)); err == nil {
			t.Errorf("case %d should fail NewInjector", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should validate: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config must report disabled")
	}
	if !(Config{CorruptRate: 0.1}).Enabled() {
		t.Error("non-zero rate must report enabled")
	}
	if _, err := NewInjector(Config{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestZeroConfigPassesThrough(t *testing.T) {
	in, err := NewInjector(Config{}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	wire := encode(t, p)
	for i := 0; i < 100; i++ {
		out := in.Apply(wire, p)
		if len(out) != 1 || out[0].Kind != KindPass || out[0].Delay != 0 {
			t.Fatalf("zero config mutated delivery: %+v", out)
		}
		if !bytes.Equal(out[0].Wire, wire) {
			t.Fatal("zero config changed wire bytes")
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := Config{CorruptRate: 0.3, DuplicateRate: 0.3, ForgeRate: 0.3, TruncateRate: 0.1}
	p := testPacket()
	wire := encode(t, p)
	run := func(seed uint64) []Delivery {
		in, err := NewInjector(cfg, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		var all []Delivery
		for i := 0; i < 200; i++ {
			all = append(all, in.Apply(wire, p)...)
		}
		return all
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !bytes.Equal(a[i].Wire, b[i].Wire) || a[i].Delay != b[i].Delay {
			t.Fatalf("delivery %d differs across same-seed runs", i)
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Kind != c[i].Kind {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestCorruptionMutatesButPreservesLength(t *testing.T) {
	in, err := NewInjector(Config{CorruptRate: 1}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	wire := encode(t, p)
	out := in.Apply(wire, p)
	if len(out) != 1 || out[0].Kind != KindCorrupted {
		t.Fatalf("want one corrupted delivery, got %+v", out)
	}
	if bytes.Equal(out[0].Wire, wire) {
		t.Error("corruption left wire unchanged")
	}
	if len(out[0].Wire) != len(wire) {
		t.Error("corruption changed length")
	}
	if !bytes.Equal(wire, encode(t, p)) {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestTruncationShortens(t *testing.T) {
	in, err := NewInjector(Config{TruncateRate: 1}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	wire := encode(t, p)
	for i := 0; i < 50; i++ {
		out := in.Apply(wire, p)
		if out[0].Kind != KindTruncated {
			t.Fatalf("want truncated, got %v", out[0].Kind)
		}
		if len(out[0].Wire) >= len(wire) || len(out[0].Wire) < 1 {
			t.Fatalf("truncated length %d out of [1,%d)", len(out[0].Wire), len(wire))
		}
	}
}

func TestDuplicationDelivesTwice(t *testing.T) {
	in, err := NewInjector(Config{DuplicateRate: 1}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	wire := encode(t, p)
	out := in.Apply(wire, p)
	if len(out) != 2 {
		t.Fatalf("want 2 deliveries, got %d", len(out))
	}
	if out[0].Kind != KindPass || out[1].Kind != KindDuplicate {
		t.Fatalf("kinds %v/%v", out[0].Kind, out[1].Kind)
	}
	if !bytes.Equal(out[0].Wire, out[1].Wire) {
		t.Error("duplicate differs from original")
	}
	if out[1].Delay <= out[0].Delay {
		t.Error("duplicate should arrive after the original")
	}
}

func TestForgedPacketNeverVerifies(t *testing.T) {
	in, err := NewInjector(Config{ForgeRate: 1}, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	signer := crypto.NewSignerFromString("sender")
	p := testPacket()
	wire := encode(t, p)
	out := in.Apply(wire, p)
	if len(out) != 2 || out[1].Kind != KindForged {
		t.Fatalf("want pass+forged, got %+v", out)
	}
	forged, err := packet.Decode(out[1].Wire)
	if err != nil {
		t.Fatalf("forged packet must be well-formed: %v", err)
	}
	if !IsForgedPayload(forged.Payload) {
		t.Error("forged payload not marked")
	}
	if IsForgedPayload(p.Payload) {
		t.Error("genuine payload misdetected as forged")
	}
	if forged.BlockID != p.BlockID || forged.Index != p.Index {
		t.Error("forgery should mimic the template's framing")
	}
	if signer.Public().Verify(forged.ContentBytes(), forged.Signature) {
		t.Fatal("wrong-key forgery verified under the genuine key")
	}
}

func TestReorderSpikeAddsDelay(t *testing.T) {
	in, err := NewInjector(Config{ReorderRate: 1, ReorderSpike: 30 * time.Millisecond}, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	out := in.Apply(encode(t, p), p)
	if out[0].Delay != 30*time.Millisecond {
		t.Errorf("delay %v, want 30ms", out[0].Delay)
	}
}

func TestStallCoversWindow(t *testing.T) {
	in, err := NewInjector(Config{StallRate: 1, StallLength: 3, StallDelay: 100 * time.Millisecond}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	p := testPacket()
	wire := encode(t, p)
	for i := 0; i < 6; i++ {
		out := in.Apply(wire, p)
		if out[0].Delay < 100*time.Millisecond {
			t.Errorf("packet %d: delay %v, want >= 100ms (stall restarts at rate 1)", i, out[0].Delay)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 0.05)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if !cfg.Enabled() {
			t.Errorf("preset %s disabled at rate 0.05", name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("nosuch", 0.1); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, err := Preset("corruption", 2); err == nil {
		t.Error("out-of-range rate should fail")
	}
}
