// Package fault is a seeded, composable fault-injection layer that mutates
// the wire between sender and verifier. The paper's analysis assumes a
// benign lossy channel (Bernoulli loss, Section 4.1); a deployed multicast
// authenticator also faces an *active* adversary who corrupts, truncates,
// duplicates, replays, delays and outright forges packets. An Injector
// models that adversary: every encoded packet passes through it and comes
// out as zero or more deliveries, each possibly mutated, duplicated,
// delayed, or accompanied by a forged packet.
//
// All randomness comes from an explicit *stats.RNG, so an adversarial run
// is exactly as reproducible as a benign one. The injector operates on
// encoded wire bytes — the same representation a real attacker touches —
// which means a bit-flip can land anywhere: payload, carried hashes,
// indices, or the length fields of the encoding itself.
package fault

import (
	"fmt"
	"time"

	"mcauth/internal/packet"
	"mcauth/internal/stats"
)

// Config parameterizes the adversarial channel. All rates are per-packet
// probabilities in [0,1]; a zero Config injects nothing.
type Config struct {
	// CorruptRate is the probability a delivery has 1-3 random bits
	// flipped somewhere in its encoding.
	CorruptRate float64
	// TruncateRate is the probability a delivery is cut to a strict
	// prefix of its encoding.
	TruncateRate float64
	// DuplicateRate is the probability the packet is delivered twice
	// (the second copy slightly later).
	DuplicateRate float64
	// ForgeRate is the probability a forged packet is injected alongside
	// the genuine one. Forged packets are built by Forger (or
	// NewWrongKeyForger's default when nil): plausible packets signed by
	// a wrong key or carrying spoofed hash references.
	ForgeRate float64
	// ReorderRate is the probability a delivery is hit by a delay spike
	// of ReorderSpike, making it overtake or be overtaken by its
	// neighbors.
	ReorderRate float64
	// ReorderSpike is the extra delay of a reorder hit (default 50ms).
	ReorderSpike time.Duration
	// StallRate is the probability a sender stall *starts* at a packet;
	// the stall delays that packet and the following StallLength-1
	// packets by StallDelay (a sender pause or route flap).
	StallRate float64
	// StallLength is the number of consecutive packets a stall covers
	// (default 8).
	StallLength int
	// StallDelay is the extra delay a stalled packet suffers (default
	// 200ms).
	StallDelay time.Duration
	// Forger fabricates injected packets when ForgeRate > 0. Nil selects
	// a default wrong-key forger.
	Forger Forger
}

// Validate checks the configuration.
func (c Config) Validate() error {
	rates := map[string]float64{
		"corrupt":   c.CorruptRate,
		"truncate":  c.TruncateRate,
		"duplicate": c.DuplicateRate,
		"forge":     c.ForgeRate,
		"reorder":   c.ReorderRate,
		"stall":     c.StallRate,
	}
	for name, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v out of [0,1]", name, r)
		}
	}
	if c.ReorderSpike < 0 {
		return fmt.Errorf("fault: negative reorder spike %v", c.ReorderSpike)
	}
	if c.StallLength < 0 {
		return fmt.Errorf("fault: negative stall length %d", c.StallLength)
	}
	if c.StallDelay < 0 {
		return fmt.Errorf("fault: negative stall delay %v", c.StallDelay)
	}
	return nil
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.CorruptRate > 0 || c.TruncateRate > 0 || c.DuplicateRate > 0 ||
		c.ForgeRate > 0 || c.ReorderRate > 0 || c.StallRate > 0
}

// Defaults for optional knobs.
const (
	defaultReorderSpike = 50 * time.Millisecond
	defaultStallLength  = 8
	defaultStallDelay   = 200 * time.Millisecond
)

// Kind classifies what the channel did to produce one delivery.
type Kind int

const (
	// KindPass is the genuine packet, unmodified (it may still carry a
	// delay from a reorder spike or stall).
	KindPass Kind = iota
	// KindCorrupted is the genuine packet with flipped bits.
	KindCorrupted
	// KindTruncated is a strict prefix of the genuine encoding.
	KindTruncated
	// KindDuplicate is an extra, identical copy of the genuine packet.
	KindDuplicate
	// KindForged is an attacker-fabricated packet.
	KindForged
)

// String names the kind for traces and reports.
func (k Kind) String() string {
	switch k {
	case KindPass:
		return "pass"
	case KindCorrupted:
		return "corrupted"
	case KindTruncated:
		return "truncated"
	case KindDuplicate:
		return "duplicate"
	case KindForged:
		return "forged"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Delivery is one datagram the adversarial channel hands onward.
type Delivery struct {
	// Wire is the (possibly mutated) encoding reaching the receiver.
	Wire []byte
	// Kind records what happened.
	Kind Kind
	// Delay is extra latency on top of the channel's own delay model.
	Delay time.Duration
}

// Injector applies one Config to a packet sequence. It is stateful (stall
// windows span packets) and not safe for concurrent use; derive one
// injector per receiver from split RNGs.
type Injector struct {
	cfg       Config
	rng       *stats.RNG
	forger    Forger
	stallLeft int
}

// NewInjector builds an injector drawing randomness from rng.
func NewInjector(cfg Config, rng *stats.RNG) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	if cfg.ReorderSpike == 0 {
		cfg.ReorderSpike = defaultReorderSpike
	}
	if cfg.StallLength == 0 {
		cfg.StallLength = defaultStallLength
	}
	if cfg.StallDelay == 0 {
		cfg.StallDelay = defaultStallDelay
	}
	forger := cfg.Forger
	if forger == nil && cfg.ForgeRate > 0 {
		forger = NewWrongKeyForger("fault-injector-default")
	}
	return &Injector{cfg: cfg, rng: rng, forger: forger}, nil
}

// Apply passes one encoded packet through the adversarial channel and
// returns the deliveries that reach the receiver, in injection order. The
// original packet (possibly mutated) is always among them — dropping is the
// loss model's job, not the adversary's; an undecodable mutation is
// equivalent to a drop at the receiver. p is the decoded packet the wire
// bytes came from, used as the forger's template; it may be nil when
// forgery is disabled.
func (in *Injector) Apply(wire []byte, p *packet.Packet) []Delivery {
	var stallDelay time.Duration
	if in.stallLeft > 0 {
		in.stallLeft--
		stallDelay = in.cfg.StallDelay
	} else if in.rng.Bernoulli(in.cfg.StallRate) {
		in.stallLeft = in.cfg.StallLength - 1
		stallDelay = in.cfg.StallDelay
	}
	genuine := Delivery{Wire: wire, Kind: KindPass, Delay: stallDelay}
	if in.rng.Bernoulli(in.cfg.ReorderRate) {
		genuine.Delay += in.cfg.ReorderSpike
	}
	// Corruption and truncation are mutually exclusive per delivery;
	// truncation wins the coin toss order arbitrarily but deterministically.
	if in.rng.Bernoulli(in.cfg.TruncateRate) && len(wire) > 1 {
		genuine.Wire = append([]byte(nil), wire[:1+in.rng.Intn(len(wire)-1)]...)
		genuine.Kind = KindTruncated
	} else if in.rng.Bernoulli(in.cfg.CorruptRate) && len(wire) > 0 {
		genuine.Wire = in.flipBits(wire)
		genuine.Kind = KindCorrupted
	}
	out := []Delivery{genuine}
	if in.rng.Bernoulli(in.cfg.DuplicateRate) {
		out = append(out, Delivery{
			Wire:  genuine.Wire,
			Kind:  KindDuplicate,
			Delay: genuine.Delay + time.Millisecond,
		})
	}
	if in.forger != nil && in.rng.Bernoulli(in.cfg.ForgeRate) && p != nil {
		if forged := in.forger.Forge(in.rng, p); forged != nil {
			if fw, err := forged.Encode(); err == nil {
				out = append(out, Delivery{Wire: fw, Kind: KindForged, Delay: stallDelay})
			}
		}
	}
	return out
}

// flipBits returns a copy of wire with 1-3 random bits flipped.
func (in *Injector) flipBits(wire []byte) []byte {
	mutated := append([]byte(nil), wire...)
	flips := 1 + in.rng.Intn(3)
	for i := 0; i < flips; i++ {
		pos := in.rng.Intn(len(mutated))
		mutated[pos] ^= 1 << uint(in.rng.Intn(8))
	}
	return mutated
}
