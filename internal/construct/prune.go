package construct

import (
	"fmt"

	"mcauth/internal/depgraph"
)

// Prune removes redundant edges from a graph while keeping every vertex's
// approximate authentication probability at or above the target — the
// "minimize the total number of edges subject to a q_min constraint"
// objective of Section 5, applied as a post-pass to any construction
// (including hand-designed or probabilistic graphs, which tend to
// over-provision).
//
// The pass is greedy: edges are repeatedly scanned in deterministic order
// and an edge is dropped whenever the graph still meets the constraint
// without it; the scan repeats until a fixed point. Reachability from the
// root is preserved (a removal that disconnects a vertex drives its q to 0
// and is rejected by the constraint check, for any target > 0).
func Prune(g *depgraph.Graph, c Constraint) (Plan, int, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, 0, err
	}
	if g == nil {
		return Plan{}, 0, fmt.Errorf("construct: nil graph")
	}
	if g.N() != c.N {
		return Plan{}, 0, fmt.Errorf("construct: graph has %d vertices, constraint says %d", g.N(), c.N)
	}
	work := g.Clone()
	meets := func() (bool, error) {
		q, err := ApproxQ(work, c.P)
		if err != nil {
			return false, err
		}
		return minQ(q, work.Root()) >= c.TargetQMin, nil
	}
	ok, err := meets()
	if err != nil {
		return Plan{}, 0, err
	}
	if !ok {
		// Nothing to prune from an infeasible starting point; report
		// it honestly.
		plan, err := newPlan(work, c.P, c.TargetQMin)
		return plan, 0, err
	}
	removed := 0
	for {
		removedThisPass := 0
		for _, e := range work.Edges() {
			if err := work.RemoveEdge(e[0], e[1]); err != nil {
				return Plan{}, 0, err
			}
			ok, err := meets()
			if err != nil {
				return Plan{}, 0, err
			}
			if ok {
				removed++
				removedThisPass++
				continue
			}
			// The edge is load-bearing: restore it.
			if err := work.AddEdge(e[0], e[1]); err != nil {
				return Plan{}, 0, err
			}
		}
		if removedThisPass == 0 {
			break
		}
	}
	plan, err := newPlan(work, c.P, c.TargetQMin)
	if err != nil {
		return Plan{}, 0, err
	}
	return plan, removed, nil
}
