package construct

import (
	"fmt"

	"mcauth/internal/depgraph"
)

// Online is a streaming construction for the common case Section 5 raises:
// "the number of packets in a block over a fixed period of time is normally
// not fixed and online constructions are necessary". The sender appends
// packets one at a time; each new packet carries the hashes of the packets
// sent d, 2d, ..., m*d positions earlier (all already known), and the block
// is cut at an arbitrary point by signing the final packet, which also
// absorbs the hashes of any packets whose future carriers never got sent.
//
// Finalize's graph is identical to the offline E_{m,d} topology for the
// same n — the uniform policy is exactly what makes online construction
// possible.
type Online struct {
	m, d int
	n    int
}

// NewOnline creates a streaming builder with policy parameters m and d.
func NewOnline(m, d int) (*Online, error) {
	if m < 1 {
		return nil, fmt.Errorf("construct: online m=%d must be >= 1", m)
	}
	if d < 1 {
		return nil, fmt.Errorf("construct: online d=%d must be >= 1", d)
	}
	return &Online{m: m, d: d}, nil
}

// Append registers the next packet and returns its (1-based) send index
// together with the indices of the earlier packets whose hashes it must
// carry.
func (o *Online) Append() (index int, carries []int) {
	o.n++
	for k := 1; k <= o.m; k++ {
		if target := o.n - k*o.d; target >= 1 {
			carries = append(carries, target)
		}
	}
	return o.n, carries
}

// Len returns the number of packets appended so far.
func (o *Online) Len() int { return o.n }

// Finalize cuts the block: the last appended packet becomes the signature
// packet, additionally absorbing the hashes of every packet whose carriers
// fall beyond the block. It returns the block's dependence-graph. At least
// two packets must have been appended.
func (o *Online) Finalize() (*depgraph.Graph, error) {
	if o.n < 2 {
		return nil, fmt.Errorf("construct: online block has %d packets, need >= 2", o.n)
	}
	g, err := depgraph.New(o.n, o.n)
	if err != nil {
		return nil, err
	}
	for v := 1; v < o.n; v++ {
		for k := 1; k <= o.m; k++ {
			carrier := v + k*o.d
			if carrier > o.n {
				carrier = o.n // the signature packet absorbs it
			}
			if carrier != v && !g.HasEdge(carrier, v) {
				if err := g.AddEdge(carrier, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
