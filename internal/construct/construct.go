// Package construct implements Section 5 of the paper: using
// dependence-graphs as a *design* tool. The objective is a graph with the
// minimum number of edges in which every vertex is reachable from P_sign
// with enough path redundancy to meet a target minimum authentication
// probability under a given loss rate.
//
// Three of the paper's suggested approaches are implemented:
//
//   - Greedy: start from a spanning chain and repeatedly reinforce the
//     currently weakest vertex with one more edge until the target holds.
//   - Policy search (the paper's dynamic-programming framing): search the
//     space of uniform periodic policies (m hashes per packet at spacing d)
//     for the cheapest policy meeting the constraint — a "simple policy
//     suitable for online constructions".
//   - Probabilistic: connect each vertex to earlier vertices independently
//     with probability rho, binary-searching the cheapest rho.
//
// Graphs are scored with the paper's own evaluation model: the
// independence-approximation recurrence generalized to arbitrary DAGs
// (ApproxQ), exactly Equation (9) applied vertex by vertex in topological
// order.
package construct

import (
	"fmt"
	"math"

	"mcauth/internal/depgraph"
	"mcauth/internal/stats"
)

// Constraint is the design requirement.
type Constraint struct {
	// N is the block size; the root is vertex 1 (signature-first gives
	// zero receiver delay, the regime Section 5 discusses; reverse the
	// send order for signature-last).
	N int
	// P is the design loss rate.
	P float64
	// TargetQMin is the required minimum authentication probability
	// under the approximate evaluation model.
	TargetQMin float64
	// MaxOutDegree caps the hashes any single packet may carry (0 means
	// unlimited). Without a cap the optimum degenerates to a star on
	// the signature packet, which just reinvents per-packet signatures'
	// bandwidth profile.
	MaxOutDegree int
}

// Validate checks the constraint.
func (c Constraint) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("construct: block size %d must be >= 2", c.N)
	}
	if c.P < 0 || c.P >= 1 {
		return fmt.Errorf("construct: loss rate %v out of [0,1)", c.P)
	}
	if c.TargetQMin <= 0 || c.TargetQMin > 1 {
		return fmt.Errorf("construct: target q_min %v out of (0,1]", c.TargetQMin)
	}
	if c.MaxOutDegree < 0 {
		return fmt.Errorf("construct: max out-degree %d must be >= 0", c.MaxOutDegree)
	}
	return nil
}

// allowsEdgeFrom reports whether u may carry one more hash.
func (c Constraint) allowsEdgeFrom(g *depgraph.Graph, u int) bool {
	return c.MaxOutDegree == 0 || g.OutDegree(u) < c.MaxOutDegree
}

// ApproxQ evaluates the paper's independence-approximation recurrence on an
// arbitrary rooted DAG: q(root) = 1 and, in topological order,
//
//	q(v) = 1 - Π_{u in in(v)} [1 - r(u) q(u)]
//
// where r(u) = 1-p is the provider's reception probability, except
// r(root) = 1 since P_sign is assumed always received — this reproduces
// the paper's boundary conditions (q = 1 for packets covered directly by
// the signature packet). Unreachable vertices get q = 0. This is the
// generalization of Equation (9) used to score candidate constructions.
func ApproxQ(g *depgraph.Graph, p float64) ([]float64, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("construct: loss rate %v out of [0,1]", p)
	}
	order, err := g.TopoFromRoot()
	if err != nil {
		return nil, err
	}
	q := make([]float64, g.N()+1)
	q[0] = math.NaN()
	q[g.Root()] = 1
	for _, v := range order {
		if v == g.Root() {
			continue
		}
		broken := 1.0
		for _, u := range g.InNeighbors(v) {
			r := 1 - p
			if u == g.Root() {
				r = 1
			}
			broken *= 1 - r*q[u]
		}
		q[v] = 1 - broken
	}
	return q, nil
}

// minQ returns the minimum over non-root vertices.
func minQ(q []float64, root int) float64 {
	qmin := 1.0
	for v := 1; v < len(q); v++ {
		if v == root {
			continue
		}
		if q[v] < qmin {
			qmin = q[v]
		}
	}
	return qmin
}

// Plan is the outcome of a construction.
type Plan struct {
	Graph *depgraph.Graph
	// QMin is the achieved minimum probability under ApproxQ.
	QMin float64
	// EdgesPerPacket is the overhead |E|/n the plan costs.
	EdgesPerPacket float64
	// Met reports whether the target was achieved.
	Met bool
}

func newPlan(g *depgraph.Graph, p float64, target float64) (Plan, error) {
	q, err := ApproxQ(g, p)
	if err != nil {
		return Plan{}, err
	}
	qmin := minQ(q, g.Root())
	return Plan{
		Graph:          g,
		QMin:           qmin,
		EdgesPerPacket: float64(g.NumEdges()) / float64(g.N()),
		Met:            qmin >= target,
	}, nil
}

// Greedy builds a graph by a forward sweep — the paper's "start with a
// tree and add edges in each subsequent level until the constraints are
// satisfied": each vertex in send order is given edges from its strongest
// (highest-q, nearest) available predecessors until its own q meets the
// target, so every later vertex can draw on already-strong providers. Only
// forward edges (lower to higher index) are placed, preserving the
// zero-receiver-delay property Section 5 calls out.
func Greedy(c Constraint) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	g, err := depgraph.New(c.N, 1)
	if err != nil {
		return Plan{}, err
	}
	q := make([]float64, c.N+1)
	q[1] = 1
	reception := func(u int) float64 {
		if u == g.Root() {
			return 1 // P_sign is assumed always received
		}
		return 1 - c.P
	}
	for v := 2; v <= c.N; v++ {
		broken := 1.0
		for {
			if 1-broken >= c.TargetQMin && g.InDegree(v) > 0 {
				break
			}
			best := 0
			bestScore := -1.0
			for u := v - 1; u >= 1; u-- {
				if g.HasEdge(u, v) || !c.allowsEdgeFrom(g, u) {
					continue
				}
				if q[u] > bestScore {
					best, bestScore = u, q[u]
				}
			}
			if best == 0 {
				break // saturated; leave v below target
			}
			if err := g.AddEdge(best, v); err != nil {
				return Plan{}, err
			}
			broken *= 1 - reception(best)*q[best]
			if g.InDegree(v) >= v-1 {
				break // every predecessor is already a parent
			}
		}
		// Ensure reachability even when saturated: fall back to the
		// chain edge.
		if g.InDegree(v) == 0 {
			if err := g.AddEdge(v-1, v); err != nil {
				return Plan{}, err
			}
			broken *= 1 - reception(v-1)*q[v-1]
		}
		q[v] = 1 - broken
	}
	return newPlan(g, c.P, c.TargetQMin)
}

// PolicySearch finds the cheapest uniform periodic policy (m edges per
// packet at spacing d) meeting the constraint, mirroring the paper's
// dynamic-programming formulation whose optimum over this policy class is
// a simple online rule. It tries m = 1.. up to maxM and d = 1..maxD and
// returns the first (fewest-edges) policy that meets the target, realized
// as a concrete graph.
func PolicySearch(c Constraint, maxM, maxD int) (Plan, int, int, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, 0, 0, err
	}
	if maxM < 1 || maxD < 1 {
		return Plan{}, 0, 0, fmt.Errorf("construct: maxM=%d, maxD=%d must be >= 1", maxM, maxD)
	}
	for m := 1; m <= maxM; m++ {
		for d := 1; d <= maxD; d++ {
			if m*d >= c.N {
				continue
			}
			g, err := policyGraph(c.N, m, d)
			if err != nil {
				return Plan{}, 0, 0, err
			}
			plan, err := newPlan(g, c.P, c.TargetQMin)
			if err != nil {
				return Plan{}, 0, 0, err
			}
			if plan.Met {
				return plan, m, d, nil
			}
		}
	}
	return Plan{}, 0, 0, fmt.Errorf("construct: no policy with m <= %d, d <= %d meets q_min >= %v at p=%v",
		maxM, maxD, c.TargetQMin, c.P)
}

// policyGraph realizes the uniform policy as a signature-first graph:
// vertex v is covered by vertices v-d, v-2d, ..., v-md (clamped to the
// root).
func policyGraph(n, m, d int) (*depgraph.Graph, error) {
	g, err := depgraph.New(n, 1)
	if err != nil {
		return nil, err
	}
	for v := 2; v <= n; v++ {
		for k := 1; k <= m; k++ {
			u := v - k*d
			if u < 1 {
				u = 1
			}
			if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Probabilistic connects each vertex v to every earlier vertex with
// probability rho and binary-searches the smallest rho whose realized graph
// meets the constraint. Vertices left unreachable by the random draw are
// patched with a direct chain edge (the paper notes such vertices are
// "negligibly small" in number; patching keeps Definition 1's reachability
// requirement).
func Probabilistic(c Constraint, rng *stats.RNG) (Plan, float64, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, 0, err
	}
	if rng == nil {
		return Plan{}, 0, fmt.Errorf("construct: nil rng")
	}
	lo, hi := 0.0, 1.0
	var (
		bestPlan Plan
		bestRho  float64
		found    bool
	)
	for iter := 0; iter < 20; iter++ {
		rho := (lo + hi) / 2
		g, err := randomGraph(c.N, rho, rng)
		if err != nil {
			return Plan{}, 0, err
		}
		plan, err := newPlan(g, c.P, c.TargetQMin)
		if err != nil {
			return Plan{}, 0, err
		}
		if plan.Met {
			bestPlan, bestRho, found = plan, rho, true
			hi = rho
		} else {
			lo = rho
		}
	}
	if !found {
		g, err := randomGraph(c.N, 1, rng)
		if err != nil {
			return Plan{}, 0, err
		}
		plan, err := newPlan(g, c.P, c.TargetQMin)
		if err != nil {
			return Plan{}, 0, err
		}
		return plan, 1, nil
	}
	return bestPlan, bestRho, nil
}

func randomGraph(n int, rho float64, rng *stats.RNG) (*depgraph.Graph, error) {
	g, err := depgraph.New(n, 1)
	if err != nil {
		return nil, err
	}
	for v := 2; v <= n; v++ {
		for u := 1; u < v; u++ {
			if rng.Bernoulli(rho) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	// Patch unreachable vertices with a chain edge so Definition 1's
	// reachability property holds.
	for _, v := range g.Unreachable() {
		if !g.HasEdge(v-1, v) {
			if err := g.AddEdge(v-1, v); err != nil {
				return nil, err
			}
		}
	}
	// Patching may still leave chains of unreachable vertices; repeat
	// until closed (at most n rounds, usually zero).
	for len(g.Unreachable()) > 0 {
		fixed := false
		for _, v := range g.Unreachable() {
			if v > 1 && !g.HasEdge(v-1, v) {
				if err := g.AddEdge(v-1, v); err != nil {
					return nil, err
				}
				fixed = true
			}
		}
		if !fixed {
			break
		}
	}
	return g, nil
}
