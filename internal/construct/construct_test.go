package construct

import (
	"math"
	"testing"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/stats"
)

func TestConstraintValidation(t *testing.T) {
	bad := []Constraint{
		{N: 1, P: 0.1, TargetQMin: 0.9},
		{N: 10, P: -0.1, TargetQMin: 0.9},
		{N: 10, P: 1.0, TargetQMin: 0.9},
		{N: 10, P: 0.1, TargetQMin: 0},
		{N: 10, P: 0.1, TargetQMin: 1.1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("constraint %+v should fail", c)
		}
	}
}

func TestApproxQMatchesPeriodicRecurrence(t *testing.T) {
	// On the E_{m,d}-shaped graph, ApproxQ must reproduce the Equation
	// (9) recurrence (they are the same computation).
	n, p := 40, 0.3
	g, err := policyGraph(n, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ApproxQ(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := analysis.Periodic{N: n, Offsets: []int{1, 2}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	// policyGraph is signature-first: vertex v corresponds to reversed
	// index v directly.
	for v := 2; v <= n; v++ {
		if math.Abs(q[v]-rec.Q[v]) > 1e-12 {
			t.Errorf("vertex %d: ApproxQ %v vs recurrence %v", v, q[v], rec.Q[v])
		}
	}
}

func TestApproxQChainExact(t *testing.T) {
	g, err := policyGraph(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ApproxQ(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Single path: the approximation is exact, (1-p)^(v-2).
	for v := 2; v <= 12; v++ {
		want := math.Pow(0.8, float64(v-2))
		if math.Abs(q[v]-want) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v", v, q[v], want)
		}
	}
}

func TestApproxQUnreachable(t *testing.T) {
	g, err := depgraph.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	q, err := ApproxQ(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if q[3] != 0 {
		t.Errorf("unreachable q = %v, want 0", q[3])
	}
}

func TestGreedyMeetsTarget(t *testing.T) {
	c := Constraint{N: 50, P: 0.2, TargetQMin: 0.9}
	plan, err := Greedy(c)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("greedy failed to meet target: qmin = %v", plan.QMin)
	}
	if err := plan.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero-delay property: all edges forward.
	for _, e := range plan.Graph.Edges() {
		if e[0] >= e[1] {
			t.Fatalf("backward edge %v violates zero-delay constraint", e)
		}
	}
	maxDelay, err := plan.Graph.MaxDeterministicDelay()
	if err != nil {
		t.Fatal(err)
	}
	if maxDelay != 0 {
		t.Errorf("greedy graph delay = %d, want 0", maxDelay)
	}
}

func TestGreedyCheaperForLooserTargets(t *testing.T) {
	strict, err := Greedy(Constraint{N: 60, P: 0.3, TargetQMin: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Greedy(Constraint{N: 60, P: 0.3, TargetQMin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if loose.EdgesPerPacket > strict.EdgesPerPacket {
		t.Errorf("looser target cost more edges: %v > %v",
			loose.EdgesPerPacket, strict.EdgesPerPacket)
	}
}

func TestGreedyTrivialTarget(t *testing.T) {
	// p = 0: the spanning chain alone suffices.
	plan, err := Greedy(Constraint{N: 20, P: 0, TargetQMin: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Error("p=0 target not met")
	}
	if plan.Graph.NumEdges() != 19 {
		t.Errorf("edges = %d, want bare chain 19", plan.Graph.NumEdges())
	}
}

func TestPolicySearchFindsMinimalM(t *testing.T) {
	c := Constraint{N: 200, P: 0.1, TargetQMin: 0.9}
	plan, m, d, err := PolicySearch(c, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("policy (m=%d,d=%d) did not meet target: %v", m, d, plan.QMin)
	}
	// At p=0.1, E_{2,1} has fixed point (1-2p)/(1-p)^2 ≈ 0.988 >= 0.9,
	// while m=1 collapses. The minimal m must be 2.
	if m != 2 {
		t.Errorf("m = %d, want 2", m)
	}
}

func TestPolicySearchImpossible(t *testing.T) {
	c := Constraint{N: 100, P: 0.6, TargetQMin: 0.999}
	if _, _, _, err := PolicySearch(c, 2, 2); err == nil {
		t.Error("impossible constraint should fail")
	}
	if _, _, _, err := PolicySearch(c, 0, 1); err == nil {
		t.Error("maxM=0 should fail")
	}
}

func TestProbabilisticMeetsTarget(t *testing.T) {
	c := Constraint{N: 40, P: 0.2, TargetQMin: 0.85}
	plan, rho, err := Probabilistic(c, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("probabilistic (rho=%v) missed target: %v", rho, plan.QMin)
	}
	if rho <= 0 || rho > 1 {
		t.Errorf("rho = %v out of (0,1]", rho)
	}
	if err := plan.Graph.Validate(); err != nil {
		t.Errorf("patched random graph invalid: %v", err)
	}
}

func TestProbabilisticValidation(t *testing.T) {
	if _, _, err := Probabilistic(Constraint{N: 10, P: 0.1, TargetQMin: 0.9}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestOnlineMatchesOfflineEMSS(t *testing.T) {
	// Streaming construction cut at n must equal the offline E_{m,d}
	// topology.
	o, err := NewOnline(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 15
	for i := 0; i < n; i++ {
		o.Append()
	}
	got, err := o.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("x"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.NumEdges() || got.Root() != want.Root() {
		t.Fatalf("online graph differs: %d edges root %d vs %d edges root %d",
			got.NumEdges(), got.Root(), want.NumEdges(), want.Root())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e[0], e[1]) {
			t.Errorf("online graph missing edge %v", e)
		}
	}
}

func TestOnlineAppendCarries(t *testing.T) {
	o, err := NewOnline(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		o.Append()
	}
	idx, carries := o.Append() // 7th packet
	if idx != 7 {
		t.Fatalf("index = %d, want 7", idx)
	}
	if len(carries) != 2 || carries[0] != 4 || carries[1] != 1 {
		t.Errorf("carries = %v, want [4 1]", carries)
	}
	if o.Len() != 7 {
		t.Errorf("Len = %d, want 7", o.Len())
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnline(0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewOnline(1, 0); err == nil {
		t.Error("d=0 should fail")
	}
	o, err := NewOnline(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	o.Append()
	if _, err := o.Finalize(); err == nil {
		t.Error("finalize with one packet should fail")
	}
}

func TestGreedyRespectsOutDegreeCap(t *testing.T) {
	c := Constraint{N: 60, P: 0.2, TargetQMin: 0.9, MaxOutDegree: 3}
	plan, err := Greedy(c)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("capped greedy missed target: qmin=%v", plan.QMin)
	}
	for v := 1; v <= 60; v++ {
		if d := plan.Graph.OutDegree(v); d > 3 {
			t.Errorf("vertex %d out-degree %d exceeds cap", v, d)
		}
	}
	if err := (Constraint{N: 10, P: 0.1, TargetQMin: 0.5, MaxOutDegree: -1}).Validate(); err == nil {
		t.Error("negative cap should fail validation")
	}
}

func TestGreedyCapForcesSpread(t *testing.T) {
	// With a cap, the root cannot absorb every reinforcement; edges must
	// spread across interior vertices.
	c := Constraint{N: 60, P: 0.2, TargetQMin: 0.9, MaxOutDegree: 2}
	plan, err := Greedy(c)
	if err != nil {
		t.Fatal(err)
	}
	interiorSources := 0
	for _, e := range plan.Graph.Edges() {
		if e[0] != plan.Graph.Root() && e[1] != e[0]+1 {
			interiorSources++
		}
	}
	if plan.Met && interiorSources == 0 {
		t.Error("capped greedy should route reinforcement through interior vertices")
	}
}

func TestGreedyBeatsChainRobustness(t *testing.T) {
	// The greedy plan must dominate the bare chain it started from.
	c := Constraint{N: 30, P: 0.3, TargetQMin: 0.8}
	plan, err := Greedy(c)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := policyGraph(30, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	chainQ, err := ApproxQ(chain, c.P)
	if err != nil {
		t.Fatal(err)
	}
	if plan.QMin <= minQ(chainQ, 1) {
		t.Errorf("greedy qmin %v not better than chain %v", plan.QMin, minQ(chainQ, 1))
	}
}

func TestProbabilisticExtremeTarget(t *testing.T) {
	// TargetQMin = 1 is only reachable when every vertex hangs directly
	// off the root; whether a lucky near-1 draw or the rho = 1 fallback
	// wins, the result must meet the target.
	c := Constraint{N: 20, P: 0.5, TargetQMin: 1.0}
	plan, rho, err := Probabilistic(c, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Errorf("plan unmet: qmin %v (rho %v)", plan.QMin, rho)
	}
}

func TestRandomGraphExtremes(t *testing.T) {
	rng := stats.NewRNG(21)
	// rho = 1: the complete forward DAG, trivially valid.
	full, err := randomGraph(10, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumEdges() != 45 { // 10*9/2
		t.Errorf("complete DAG edges = %d, want 45", full.NumEdges())
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	// rho = 0: nothing drawn; the reachability patch must synthesize the
	// chain.
	sparse, err := randomGraph(10, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.Validate(); err != nil {
		t.Errorf("patched empty draw invalid: %v", err)
	}
	if sparse.NumEdges() != 9 {
		t.Errorf("patched edges = %d, want chain 9", sparse.NumEdges())
	}
}

func TestProbabilisticLowTargetSparseGraphPatched(t *testing.T) {
	// A tiny target drives rho toward 0; the sparse draws leave
	// unreachable vertices that the chain-patch must repair, keeping
	// Definition 1's reachability property.
	c := Constraint{N: 30, P: 0.1, TargetQMin: 0.05}
	plan, rho, err := Probabilistic(c, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Errorf("plan unmet at trivial target: qmin %v", plan.QMin)
	}
	if rho > 0.2 {
		t.Errorf("rho = %v, expected sparse", rho)
	}
	if err := plan.Graph.Validate(); err != nil {
		t.Errorf("patched graph invalid: %v", err)
	}
}

// Property: ApproxQ (the paper's independence model) upper-bounds the
// exact authentication probability on arbitrary forward DAGs — the
// break events of shared paths are positively correlated (FKG), so
// treating them as independent can only overestimate survival.
func TestApproxQUpperBoundsExactProperty(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(6)
		g, err := depgraph.New(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		for v := 2; v <= n; v++ {
			// Ensure reachability, then sprinkle extra edges.
			g.MustAddEdge(v-1, v)
			for u := 1; u < v-1; u++ {
				if rng.Bernoulli(0.25) {
					g.MustAddEdge(u, v)
				}
			}
		}
		p := 0.1 + 0.5*rng.Float64()
		approx, err := ApproxQ(g, p)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := g.ExactAuthProb(p)
		if err != nil {
			t.Fatal(err)
		}
		for v := 2; v <= n; v++ {
			if exact.Q[v] > approx[v]+1e-9 {
				t.Fatalf("trial %d vertex %d: exact %v exceeds approx %v (n=%d p=%v)",
					trial, v, exact.Q[v], approx[v], n, p)
			}
		}
	}
}
