package construct

import (
	"testing"

	"mcauth/internal/depgraph"
	"mcauth/internal/stats"
)

func TestRemoveEdge(t *testing.T) {
	g, err := depgraph.New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	if err := g.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 3) || g.NumEdges() != 1 {
		t.Error("edge not removed")
	}
	if err := g.RemoveEdge(1, 3); err == nil {
		t.Error("removing missing edge should fail")
	}
	// Removal must not disturb other adjacency.
	if !g.HasEdge(1, 2) {
		t.Error("unrelated edge disturbed")
	}
}

func TestPruneShrinksOverProvisionedGraph(t *testing.T) {
	c := Constraint{N: 40, P: 0.2, TargetQMin: 0.85}
	plan, rho, err := Probabilistic(c, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("probabilistic plan (rho=%v) infeasible", rho)
	}
	before := plan.Graph.NumEdges()
	pruned, removed, err := Prune(plan.Graph, c)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Met {
		t.Fatalf("pruning broke the constraint: qmin %v", pruned.QMin)
	}
	if removed == 0 || pruned.Graph.NumEdges() >= before {
		t.Errorf("pruning removed %d edges (before %d, after %d)",
			removed, before, pruned.Graph.NumEdges())
	}
	if err := pruned.Graph.Validate(); err != nil {
		t.Errorf("pruned graph invalid: %v", err)
	}
	// The original graph is untouched.
	if plan.Graph.NumEdges() != before {
		t.Error("Prune mutated its input")
	}
}

func TestPruneIsFixedPointForTightGraphs(t *testing.T) {
	// A minimal chain at a loose target still needs every edge for
	// reachability: nothing is removable.
	c := Constraint{N: 10, P: 0, TargetQMin: 0.5}
	g, err := policyGraph(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pruned, removed, err := Prune(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("removed %d edges from a minimal chain", removed)
	}
	if pruned.Graph.NumEdges() != 9 {
		t.Errorf("edges = %d, want 9", pruned.Graph.NumEdges())
	}
}

func TestPruneInfeasibleStart(t *testing.T) {
	// A bare chain at p=0.3 cannot meet 0.9; Prune reports it unmet and
	// removes nothing.
	c := Constraint{N: 20, P: 0.3, TargetQMin: 0.9}
	g, err := policyGraph(20, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, removed, err := Prune(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Met || removed != 0 {
		t.Errorf("infeasible start: met=%v removed=%d", plan.Met, removed)
	}
}

func TestPruneValidation(t *testing.T) {
	c := Constraint{N: 10, P: 0.1, TargetQMin: 0.9}
	if _, _, err := Prune(nil, c); err == nil {
		t.Error("nil graph should fail")
	}
	g, err := policyGraph(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Prune(g, c); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, _, err := Prune(g, Constraint{N: 5, P: -1, TargetQMin: 0.5}); err == nil {
		t.Error("invalid constraint should fail")
	}
}

func TestPrunePolicyGraphDropsClampDuplicates(t *testing.T) {
	// An m=3 policy at a target m=2 satisfies: pruning should strip
	// roughly a third of the edges.
	c := Constraint{N: 60, P: 0.1, TargetQMin: 0.9}
	g, err := policyGraph(60, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumEdges()
	pruned, removed, err := Prune(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Met {
		t.Fatalf("pruned plan unmet: %v", pruned.QMin)
	}
	if removed < before/5 {
		t.Errorf("only %d of %d edges pruned; expected substantial savings", removed, before)
	}
}
