// Package delay provides end-to-end network delay models. The paper models
// Internet end-to-end delay as Gaussian N(mu, sigma^2) by a central-limit
// argument over many routers (Section 4.1); that model drives TESLA's
// condition (2) (a packet must arrive before its key is disclosed).
package delay

import (
	"fmt"
	"time"

	"mcauth/internal/stats"
)

// Model samples per-packet end-to-end delays and exposes the probability
// that a delay does not exceed a deadline (the Pr{t_i <= T_disclose} of the
// TESLA analysis).
type Model interface {
	// Sample draws one end-to-end delay.
	Sample(rng *stats.RNG) time.Duration
	// CDF returns Pr{delay <= d}.
	CDF(d time.Duration) float64
	// Name identifies the model in reports.
	Name() string
}

// Constant is a fixed-delay model (a perfect network with known latency).
type Constant struct {
	D time.Duration
}

var _ Model = Constant{}

// Sample implements Model.
func (c Constant) Sample(_ *stats.RNG) time.Duration { return c.D }

// CDF implements Model.
func (c Constant) CDF(d time.Duration) float64 {
	if d >= c.D {
		return 1
	}
	return 0
}

// Name implements Model.
func (c Constant) Name() string { return fmt.Sprintf("constant(%v)", c.D) }

// Gaussian is the paper's N(mu, sigma^2) end-to-end delay, truncated below
// at zero when sampling (a delay cannot be negative; the truncation is
// negligible for the mu >> sigma regimes of the figures).
type Gaussian struct {
	Mu    time.Duration
	Sigma time.Duration
}

var _ Model = Gaussian{}

// NewGaussian validates the parameters.
func NewGaussian(mu, sigma time.Duration) (Gaussian, error) {
	if mu < 0 {
		return Gaussian{}, fmt.Errorf("delay: negative mean %v", mu)
	}
	if sigma < 0 {
		return Gaussian{}, fmt.Errorf("delay: negative sigma %v", sigma)
	}
	return Gaussian{Mu: mu, Sigma: sigma}, nil
}

// Sample implements Model.
func (g Gaussian) Sample(rng *stats.RNG) time.Duration {
	d := rng.Normal(float64(g.Mu), float64(g.Sigma))
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// CDF implements Model (Equation 5).
func (g Gaussian) CDF(d time.Duration) float64 {
	return stats.NormalCDF(float64(d), float64(g.Mu), float64(g.Sigma))
}

// Name implements Model.
func (g Gaussian) Name() string { return fmt.Sprintf("gaussian(mu=%v, sigma=%v)", g.Mu, g.Sigma) }

// Empirical samples uniformly from a recorded set of delays.
type Empirical struct {
	samples []time.Duration
}

var _ Model = (*Empirical)(nil)

// NewEmpirical builds a model from recorded delays.
func NewEmpirical(samples []time.Duration) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("delay: empty sample set")
	}
	return &Empirical{samples: append([]time.Duration(nil), samples...)}, nil
}

// Sample implements Model.
func (e *Empirical) Sample(rng *stats.RNG) time.Duration {
	return e.samples[rng.Intn(len(e.samples))]
}

// CDF implements Model.
func (e *Empirical) CDF(d time.Duration) float64 {
	count := 0
	for _, s := range e.samples {
		if s <= d {
			count++
		}
	}
	return float64(count) / float64(len(e.samples))
}

// Name implements Model.
func (e *Empirical) Name() string { return fmt.Sprintf("empirical(n=%d)", len(e.samples)) }
