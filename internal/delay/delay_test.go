package delay

import (
	"math"
	"testing"
	"time"

	"mcauth/internal/stats"
)

func TestConstant(t *testing.T) {
	c := Constant{D: 100 * time.Millisecond}
	if got := c.Sample(nil); got != 100*time.Millisecond {
		t.Errorf("Sample = %v", got)
	}
	if c.CDF(99*time.Millisecond) != 0 {
		t.Error("CDF below D should be 0")
	}
	if c.CDF(100*time.Millisecond) != 1 {
		t.Error("CDF at D should be 1")
	}
}

func TestGaussianValidation(t *testing.T) {
	if _, err := NewGaussian(-time.Second, time.Second); err == nil {
		t.Error("negative mu should fail")
	}
	if _, err := NewGaussian(time.Second, -time.Second); err == nil {
		t.Error("negative sigma should fail")
	}
}

func TestGaussianCDF(t *testing.T) {
	g, err := NewGaussian(500*time.Millisecond, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CDF(500 * time.Millisecond); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(mu) = %v, want 0.5", got)
	}
	// One sigma above the mean.
	if got := g.CDF(600 * time.Millisecond); math.Abs(got-0.8413447) > 1e-6 {
		t.Errorf("CDF(mu+sigma) = %v, want ~0.8413", got)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	g, err := NewGaussian(time.Second, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(21)
	xs := make([]float64, 50000)
	for i := range xs {
		d := g.Sample(rng)
		if d < 0 {
			t.Fatal("negative delay sampled")
		}
		xs[i] = float64(d)
	}
	s, err := stats.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-float64(time.Second)) > float64(3*time.Millisecond) {
		t.Errorf("mean %v, want ~1s", time.Duration(s.Mean))
	}
	if math.Abs(s.StdDev-float64(50*time.Millisecond)) > float64(2*time.Millisecond) {
		t.Errorf("stddev %v, want ~50ms", time.Duration(s.StdDev))
	}
}

func TestGaussianTruncation(t *testing.T) {
	// Mean 0 with large sigma: roughly half the raw samples would be
	// negative; all must be clamped to zero.
	g, err := NewGaussian(0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(22)
	zeros := 0
	for i := 0; i < 1000; i++ {
		d := g.Sample(rng)
		if d < 0 {
			t.Fatal("negative delay")
		}
		if d == 0 {
			zeros++
		}
	}
	if zeros < 300 {
		t.Errorf("expected many truncated samples, got %d/1000", zeros)
	}
}

func TestEmpirical(t *testing.T) {
	samples := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CDF(2 * time.Millisecond); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF = %v, want 0.5", got)
	}
	rng := stats.NewRNG(23)
	for i := 0; i < 100; i++ {
		d := e.Sample(rng)
		if d < time.Millisecond || d > 4*time.Millisecond {
			t.Fatalf("sample %v outside recorded range", d)
		}
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty samples should fail")
	}
}

func TestNames(t *testing.T) {
	g, err := NewGaussian(time.Second, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEmpirical([]time.Duration{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{Constant{D: time.Second}, g, e} {
		if m.Name() == "" {
			t.Error("empty model name")
		}
	}
}
