package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mcauth/internal/crypto"
)

// randomPacket draws a structurally valid packet with every optional
// field independently present or absent.
func randomPacket(rng *rand.Rand) *Packet {
	blob := func(max int) []byte {
		if rng.Intn(2) == 0 {
			return nil
		}
		b := make([]byte, 1+rng.Intn(max))
		rng.Read(b)
		return b
	}
	p := &Packet{
		BlockID:           rng.Uint64(),
		Index:             rng.Uint32(),
		KeyIndex:          rng.Uint32(),
		Payload:           blob(256),
		Signature:         blob(128),
		MAC:               blob(64),
		DisclosedKey:      blob(32),
		DisclosedKeyIndex: rng.Uint32(),
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		p.Hashes = append(p.Hashes, HashRef{
			TargetIndex: rng.Uint32(),
			Digest:      crypto.HashBytes([]byte{byte(i), byte(rng.Intn(256))}),
		})
	}
	return p
}

// TestEncodeDeterministicAndSized: for random packets, Encode is
// byte-stable across calls and EncodedSize predicts the exact length.
func TestEncodeDeterministicAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		p := randomPacket(rng)
		a, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("Encode not deterministic")
		}
		if p.EncodedSize() != len(a) {
			t.Fatalf("EncodedSize %d, wire length %d", p.EncodedSize(), len(a))
		}
	}
}

// TestDecodeDoesNotAliasWire: scribbling over the wire buffer after
// Decode must not change the decoded packet (the transport layer reuses
// its read buffer across frames).
func TestDecodeDoesNotAliasWire(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := randomPacket(rng)
		wire, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wire {
			wire[j] ^= 0xFF
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatal("decoded packet changed when the wire buffer was overwritten")
		}
	}
}

// TestAppendEncodeStreamingReuse encodes many packets back-to-back into
// one growing buffer — the mux writer's pattern — and decodes each
// segment back out intact.
func TestAppendEncodeStreamingReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var (
		buf    []byte
		pkts   []*Packet
		bounds []int
	)
	for i := 0; i < 50; i++ {
		p := randomPacket(rng)
		var err error
		if buf, err = p.AppendEncode(buf); err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
		bounds = append(bounds, len(buf))
	}
	start := 0
	for i, end := range bounds {
		got, err := Decode(buf[start:end])
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, pkts[i]) {
			t.Fatalf("segment %d: round trip mismatch", i)
		}
		start = end
	}
}
