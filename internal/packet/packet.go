// Package packet defines the wire format shared by all runnable
// authentication schemes: a stream packet carrying a payload, the hashes of
// other packets (the dependence edges of the scheme's graph), and — on the
// signature packet or TESLA packets — a signature, MAC and disclosed key.
//
// The "authenticated content" of a packet is the deterministic encoding of
// (BlockID, Index, KeyIndex, Payload, Hashes). Chained-hash schemes store
// the SHA-256 digest of that content in other packets; the block signature
// and the TESLA MAC are computed over it. The digest therefore binds the
// carried hashes transitively: verifying one packet makes the hashes it
// carries trustworthy.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mcauth/internal/crypto"
)

// Limits guarding the decoder against malformed input.
const (
	MaxPayloadSize = 1 << 20 // 1 MiB
	MaxHashes      = 1 << 12
	MaxBlobSize    = 1 << 10 // signature / MAC / key fields
)

// HashRef is a carried hash: the digest of the packet at TargetIndex within
// the same block. In dependence-graph terms, a packet with index i carrying
// HashRef{j, H(P_j)} realizes the edge P_i -> P_j.
type HashRef struct {
	TargetIndex uint32
	Digest      crypto.Digest
}

// Packet is one wire packet of an authenticated stream block.
type Packet struct {
	BlockID  uint64
	Index    uint32 // 1-based position within the block, in send order
	KeyIndex uint32 // TESLA: interval of the MAC key protecting this packet
	Payload  []byte
	Hashes   []HashRef // sorted by TargetIndex for determinism

	// Signature over ContentBytes, present on the signature packet.
	Signature []byte
	// MAC over ContentBytes under the interval key (TESLA).
	MAC []byte
	// DisclosedKey is the chain key for interval DisclosedKeyIndex
	// (TESLA), self-authenticating against the signed commitment.
	DisclosedKey      []byte
	DisclosedKeyIndex uint32
}

// contentSize is the encoded length of the authenticated portion.
func (p *Packet) contentSize() int {
	return 8 + 4 + 4 + 4 + len(p.Payload) + 4 + len(p.Hashes)*(4+crypto.HashSize)
}

// ContentBytes returns the deterministic encoding of the authenticated
// portion of the packet: everything except the signature, MAC and disclosed
// key (which authenticate the content, or are authenticated separately).
func (p *Packet) ContentBytes() []byte {
	return p.appendContent(make([]byte, 0, p.contentSize()))
}

// AppendContent appends the authenticated-content encoding to buf (which
// may be nil) and returns the extended slice — the zero-allocation
// counterpart of ContentBytes for verify hot paths that reuse one buffer
// across packets.
func (p *Packet) AppendContent(buf []byte) []byte {
	return p.appendContent(buf)
}

// appendContent appends the authenticated-content encoding to buf.
func (p *Packet) appendContent(buf []byte) []byte {
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], p.BlockID)
	buf = append(buf, scratch[:8]...)
	binary.BigEndian.PutUint32(scratch[:4], p.Index)
	buf = append(buf, scratch[:4]...)
	binary.BigEndian.PutUint32(scratch[:4], p.KeyIndex)
	buf = append(buf, scratch[:4]...)
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(p.Payload)))
	buf = append(buf, scratch[:4]...)
	buf = append(buf, p.Payload...)
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(p.Hashes)))
	buf = append(buf, scratch[:4]...)
	for _, h := range p.Hashes {
		binary.BigEndian.PutUint32(scratch[:4], h.TargetIndex)
		buf = append(buf, scratch[:4]...)
		buf = append(buf, h.Digest[:]...)
	}
	return buf
}

// Digest returns the SHA-256 digest of the authenticated content; this is
// the value other packets carry to realize dependence edges.
func (p *Packet) Digest() crypto.Digest {
	return crypto.HashBytes(p.ContentBytes())
}

// HashFor returns the carried digest for target index, if present.
func (p *Packet) HashFor(target uint32) (crypto.Digest, bool) {
	for _, h := range p.Hashes {
		if h.TargetIndex == target {
			return h.Digest, true
		}
	}
	return crypto.Digest{}, false
}

// OverheadBytes returns the authentication overhead this packet carries on
// the wire: everything except the payload and fixed header.
func (p *Packet) OverheadBytes() int {
	return len(p.Hashes)*(4+crypto.HashSize) + len(p.Signature) + len(p.MAC) + len(p.DisclosedKey)
}

// EncodedSize returns the exact wire length Encode produces.
func (p *Packet) EncodedSize() int {
	return p.contentSize() + 3*4 + len(p.Signature) + len(p.MAC) + len(p.DisclosedKey) + 4
}

// Encode serializes the packet.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(make([]byte, 0, p.EncodedSize()))
}

// AppendEncode serializes the packet onto buf (growing it as needed) and
// returns the extended slice, so callers on the wire hot path can reuse
// one buffer across packets instead of allocating per Encode. buf may be
// nil. On error buf is returned unextended.
func (p *Packet) AppendEncode(buf []byte) ([]byte, error) {
	if len(p.Payload) > MaxPayloadSize {
		return buf, fmt.Errorf("packet: payload %d exceeds %d bytes", len(p.Payload), MaxPayloadSize)
	}
	if len(p.Hashes) > MaxHashes {
		return buf, fmt.Errorf("packet: %d hashes exceed %d", len(p.Hashes), MaxHashes)
	}
	for _, blob := range [][]byte{p.Signature, p.MAC, p.DisclosedKey} {
		if len(blob) > MaxBlobSize {
			return buf, fmt.Errorf("packet: auth field %d exceeds %d bytes", len(blob), MaxBlobSize)
		}
	}
	buf = p.appendContent(buf)
	buf = appendBlob(buf, p.Signature)
	buf = appendBlob(buf, p.MAC)
	buf = appendBlob(buf, p.DisclosedKey)
	var scratch [4]byte
	binary.BigEndian.PutUint32(scratch[:], p.DisclosedKeyIndex)
	buf = append(buf, scratch[:]...)
	return buf, nil
}

func appendBlob(buf, blob []byte) []byte {
	var scratch [4]byte
	binary.BigEndian.PutUint32(scratch[:], uint32(len(blob)))
	buf = append(buf, scratch[:]...)
	return append(buf, blob...)
}

// ErrTruncated indicates the wire bytes end before the structure is
// complete.
var ErrTruncated = errors.New("packet: truncated")

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrTruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) blob(limit int) ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > limit {
		return nil, fmt.Errorf("packet: field length %d exceeds limit %d", n, limit)
	}
	if n == 0 {
		return nil, nil
	}
	raw, err := d.bytes(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), raw...), nil
}

// blobInto decodes a length-prefixed field into dst's capacity, growing
// only when the field outgrows it. Empty fields return dst truncated to
// zero length (nil stays nil), so callers must test emptiness with len.
func (d *decoder) blobInto(dst []byte, limit int) ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return dst, err
	}
	if int(n) > limit {
		return dst, fmt.Errorf("packet: field length %d exceeds limit %d", n, limit)
	}
	raw, err := d.bytes(int(n))
	if err != nil {
		return dst, err
	}
	return append(dst[:0], raw...), nil
}

// DecodeInto parses wire bytes produced by Encode into p, reusing the
// capacity of p's existing Payload/Hashes/Signature/MAC/DisclosedKey
// slices — the zero-allocation counterpart of Decode for hot loops that
// consume each packet before decoding the next. The caller must not
// retain references into the previous decode. Results match Decode except
// that absent fields are zero-length rather than necessarily nil.
func DecodeInto(p *Packet, wire []byte) error {
	d := &decoder{buf: wire}
	var err error
	if p.BlockID, err = d.u64(); err != nil {
		return err
	}
	if p.Index, err = d.u32(); err != nil {
		return err
	}
	if p.KeyIndex, err = d.u32(); err != nil {
		return err
	}
	if p.Payload, err = d.blobInto(p.Payload, MaxPayloadSize); err != nil {
		return err
	}
	nHashes, err := d.u32()
	if err != nil {
		return err
	}
	if nHashes > MaxHashes {
		return fmt.Errorf("packet: %d hashes exceed %d", nHashes, MaxHashes)
	}
	if cap(p.Hashes) >= int(nHashes) {
		p.Hashes = p.Hashes[:nHashes]
	} else {
		p.Hashes = make([]HashRef, nHashes)
	}
	for i := range p.Hashes {
		if p.Hashes[i].TargetIndex, err = d.u32(); err != nil {
			return err
		}
		raw, err := d.bytes(crypto.HashSize)
		if err != nil {
			return err
		}
		copy(p.Hashes[i].Digest[:], raw)
	}
	if p.Signature, err = d.blobInto(p.Signature, MaxBlobSize); err != nil {
		return err
	}
	if p.MAC, err = d.blobInto(p.MAC, MaxBlobSize); err != nil {
		return err
	}
	if p.DisclosedKey, err = d.blobInto(p.DisclosedKey, MaxBlobSize); err != nil {
		return err
	}
	if p.DisclosedKeyIndex, err = d.u32(); err != nil {
		return err
	}
	if d.off != len(wire) {
		return fmt.Errorf("packet: %d trailing bytes", len(wire)-d.off)
	}
	return nil
}

// Decode parses wire bytes produced by Encode.
func Decode(wire []byte) (*Packet, error) {
	d := &decoder{buf: wire}
	var (
		p   Packet
		err error
	)
	if p.BlockID, err = d.u64(); err != nil {
		return nil, err
	}
	if p.Index, err = d.u32(); err != nil {
		return nil, err
	}
	if p.KeyIndex, err = d.u32(); err != nil {
		return nil, err
	}
	if p.Payload, err = d.blob(MaxPayloadSize); err != nil {
		return nil, err
	}
	nHashes, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nHashes > MaxHashes {
		return nil, fmt.Errorf("packet: %d hashes exceed %d", nHashes, MaxHashes)
	}
	if nHashes > 0 {
		p.Hashes = make([]HashRef, nHashes)
	}
	for i := range p.Hashes {
		if p.Hashes[i].TargetIndex, err = d.u32(); err != nil {
			return nil, err
		}
		raw, err := d.bytes(crypto.HashSize)
		if err != nil {
			return nil, err
		}
		copy(p.Hashes[i].Digest[:], raw)
	}
	if p.Signature, err = d.blob(MaxBlobSize); err != nil {
		return nil, err
	}
	if p.MAC, err = d.blob(MaxBlobSize); err != nil {
		return nil, err
	}
	if p.DisclosedKey, err = d.blob(MaxBlobSize); err != nil {
		return nil, err
	}
	if p.DisclosedKeyIndex, err = d.u32(); err != nil {
		return nil, err
	}
	if d.off != len(wire) {
		return nil, fmt.Errorf("packet: %d trailing bytes", len(wire)-d.off)
	}
	return &p, nil
}
