package packet

import (
	"testing"

	"mcauth/internal/crypto"
)

// FuzzDecode exercises the wire decoder with adversarial bytes: it must
// never panic, and any successfully decoded packet must re-encode to an
// equivalent structure (decode/encode/decode stability).
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of representative packets.
	seeds := []*Packet{
		{BlockID: 1, Index: 1},
		{BlockID: 7, Index: 3, Payload: []byte("payload")},
		{
			BlockID: 2, Index: 9, KeyIndex: 4,
			Payload:           []byte("p"),
			Hashes:            []HashRef{{TargetIndex: 2, Digest: crypto.HashBytes([]byte("x"))}},
			Signature:         []byte("sig"),
			MAC:               []byte("mac"),
			DisclosedKey:      []byte("key"),
			DisclosedKeyIndex: 3,
		},
	}
	for _, p := range seeds {
		wire, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, wire []byte) {
		p, err := Decode(wire)
		if err != nil {
			return // malformed input must simply be rejected
		}
		reWire, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		p2, err := Decode(reWire)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if p.Digest() != p2.Digest() {
			t.Fatal("decode/encode/decode changed the authenticated content")
		}
		if p.DisclosedKeyIndex != p2.DisclosedKeyIndex ||
			string(p.Signature) != string(p2.Signature) ||
			string(p.MAC) != string(p2.MAC) ||
			string(p.DisclosedKey) != string(p2.DisclosedKey) {
			t.Fatal("decode/encode/decode changed authentication fields")
		}
	})
}
