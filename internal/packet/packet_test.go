package packet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"mcauth/internal/crypto"
)

func samplePacket() *Packet {
	return &Packet{
		BlockID:  7,
		Index:    3,
		KeyIndex: 2,
		Payload:  []byte("quote: ACME 132.5"),
		Hashes: []HashRef{
			{TargetIndex: 1, Digest: crypto.HashBytes([]byte("a"))},
			{TargetIndex: 2, Digest: crypto.HashBytes([]byte("b"))},
		},
		Signature:         []byte("sig-bytes"),
		MAC:               []byte("mac-bytes"),
		DisclosedKey:      []byte("key-bytes"),
		DisclosedKeyIndex: 9,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestEncodeDecodeMinimalPacket(t *testing.T) {
	p := &Packet{BlockID: 1, Index: 1}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestDigestCoversContent(t *testing.T) {
	p := samplePacket()
	d1 := p.Digest()
	p2 := samplePacket()
	p2.Payload[0] ^= 1
	if d1 == p2.Digest() {
		t.Error("payload change did not change digest")
	}
	p3 := samplePacket()
	p3.Hashes[0].Digest[0] ^= 1
	if d1 == p3.Digest() {
		t.Error("carried-hash change did not change digest")
	}
	p4 := samplePacket()
	p4.Index = 4
	if d1 == p4.Digest() {
		t.Error("index change did not change digest")
	}
	p5 := samplePacket()
	p5.KeyIndex = 5
	if d1 == p5.Digest() {
		t.Error("key index change did not change digest")
	}
}

func TestDigestExcludesAuthFields(t *testing.T) {
	// The signature/MAC/key authenticate the content; they must not be
	// part of it (otherwise signing would be circular).
	p := samplePacket()
	d1 := p.Digest()
	p.Signature = []byte("other")
	p.MAC = nil
	p.DisclosedKey = []byte("x")
	p.DisclosedKeyIndex = 1
	if d1 != p.Digest() {
		t.Error("digest depends on authentication fields")
	}
}

func TestHashFor(t *testing.T) {
	p := samplePacket()
	if _, ok := p.HashFor(1); !ok {
		t.Error("HashFor(1) missing")
	}
	if _, ok := p.HashFor(99); ok {
		t.Error("HashFor(99) should be absent")
	}
}

func TestOverheadBytes(t *testing.T) {
	p := samplePacket()
	want := 2*(4+crypto.HashSize) + len("sig-bytes") + len("mac-bytes") + len("key-bytes")
	if got := p.OverheadBytes(); got != want {
		t.Errorf("OverheadBytes = %d, want %d", got, want)
	}
}

func TestEncodeLimits(t *testing.T) {
	p := &Packet{Index: 1, Payload: make([]byte, MaxPayloadSize+1)}
	if _, err := p.Encode(); err == nil {
		t.Error("oversized payload should fail")
	}
	p = &Packet{Index: 1, Hashes: make([]HashRef, MaxHashes+1)}
	if _, err := p.Encode(); err == nil {
		t.Error("too many hashes should fail")
	}
	p = &Packet{Index: 1, Signature: make([]byte, MaxBlobSize+1)}
	if _, err := p.Encode(); err == nil {
		t.Error("oversized signature should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePacket()
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut += 7 {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix should fail", cut)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	p := samplePacket()
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(wire, 0x00)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestDecodeHugeLengthRejected(t *testing.T) {
	// A length field claiming more than the limit must be rejected
	// before allocation.
	var wire []byte
	wire = append(wire, make([]byte, 8)...) // BlockID
	wire = append(wire, make([]byte, 4)...) // Index
	wire = append(wire, make([]byte, 4)...) // KeyIndex
	wire = append(wire, 0xff, 0xff, 0xff, 0xff)
	if _, err := Decode(wire); err == nil {
		t.Error("huge payload length should fail")
	}
}

func TestContentBytesDeterministic(t *testing.T) {
	p := samplePacket()
	if !bytes.Equal(p.ContentBytes(), p.ContentBytes()) {
		t.Error("ContentBytes not deterministic")
	}
}

// Property: encode/decode round-trips arbitrary packets.
func TestRoundTripProperty(t *testing.T) {
	f := func(blockID uint64, index, keyIdx uint32, payload []byte, nHashes uint8, sig, mac, key []byte) bool {
		if len(payload) > MaxPayloadSize {
			payload = payload[:MaxPayloadSize]
		}
		trim := func(b []byte) []byte {
			if len(b) > MaxBlobSize {
				return b[:MaxBlobSize]
			}
			if len(b) == 0 {
				return nil
			}
			return b
		}
		p := &Packet{
			BlockID:      blockID,
			Index:        index,
			KeyIndex:     keyIdx,
			Payload:      payload,
			Signature:    trim(sig),
			MAC:          trim(mac),
			DisclosedKey: trim(key),
		}
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		for i := uint8(0); i < nHashes%8; i++ {
			p.Hashes = append(p.Hashes, HashRef{
				TargetIndex: uint32(i),
				Digest:      crypto.HashBytes([]byte{i}),
			})
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: distinct content always yields distinct digests (collision
// resistance smoke test via structured inputs).
func TestDigestDistinguishesIndices(t *testing.T) {
	seen := make(map[crypto.Digest]bool)
	for i := uint32(1); i <= 100; i++ {
		p := &Packet{BlockID: 1, Index: i, Payload: []byte("same")}
		d := p.Digest()
		if seen[d] {
			t.Fatalf("digest collision at index %d", i)
		}
		seen[d] = true
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	pkts := []*Packet{samplePacket(), {BlockID: 1, Index: 1}}
	for _, p := range pkts {
		want, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if got := p.EncodedSize(); got != len(want) {
			t.Errorf("EncodedSize %d, encoded length %d", got, len(want))
		}
		// Nil buffer.
		got, err := p.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("AppendEncode(nil) differs from Encode")
		}
		// Appending after an existing prefix preserves it.
		prefix := []byte("prefix")
		got, err = p.AppendEncode(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Error("AppendEncode did not append after the existing prefix")
		}
	}
}

func TestAppendEncodeErrorLeavesBufUnextended(t *testing.T) {
	p := samplePacket()
	p.Signature = make([]byte, MaxBlobSize+1)
	buf := []byte("prefix")
	got, err := p.AppendEncode(buf)
	if err == nil {
		t.Fatal("oversize signature should fail")
	}
	if !bytes.Equal(got, buf) {
		t.Errorf("buf extended on error: %q", got)
	}
}
