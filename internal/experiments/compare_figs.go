package experiments

import (
	"fmt"
	"io"

	"mcauth/internal/analysis"
	"mcauth/internal/parallel"
)

// TESLA comparison parameters for Figures 8-9: a disclosure delay chosen
// "sufficiently large" relative to the network (T_disc = 1 s, mu = 0.5 s,
// sigma = 0.2 s), per the paper's discussion.
const (
	cmpTDisc = 1.0
	cmpMu    = 0.5
	cmpSigma = 0.2
)

// SchemeQMin evaluates one comparison scheme's analytic q_min.
func SchemeQMin(name string, n int, p float64) (float64, error) {
	switch name {
	case "rohatgi":
		res, err := analysis.Rohatgi(n, p)
		if err != nil {
			return 0, err
		}
		return res.QMin, nil
	case "authtree":
		res, err := analysis.AuthTree(n, p)
		if err != nil {
			return 0, err
		}
		return res.QMin, nil
	case "emss(E21)":
		return analysis.EMSS{N: n, M: 2, D: 1, P: p}.QMin()
	case "ac(C33)":
		// Align the block to a chain boundary (see analysis.AlignN).
		return analysis.AugChain{N: analysis.AlignN(n, 3), A: 3, B: 3, P: p}.QMin()
	case "tesla":
		return analysis.TESLA{N: n, P: p, TDisc: cmpTDisc, Mu: cmpMu, Sigma: cmpSigma}.QMin()
	default:
		return 0, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// ComparisonSchemes lists the Figure 8 contenders.
func ComparisonSchemes() []string {
	return []string{"rohatgi", "authtree", "emss(E21)", "ac(C33)", "tesla"}
}

// Fig8Row is one point of the scheme comparison.
type Fig8Row struct {
	Scheme string
	P      float64
	N      int
	QMin   float64
}

// fig8Point is one (scheme, p, n) cell of a comparison sweep; the points
// are enumerated up front and evaluated on the worker pool.
type fig8Point struct {
	scheme string
	p      float64
	n      int
}

func fig8Sweep(points []fig8Point) ([]Fig8Row, error) {
	return parallel.Map(Workers, points, func(_ int, pt fig8Point) (Fig8Row, error) {
		qmin, err := SchemeQMin(pt.scheme, pt.n, pt.p)
		if err != nil {
			return Fig8Row{}, err
		}
		return Fig8Row{Scheme: pt.scheme, P: pt.p, N: pt.n, QMin: qmin}, nil
	})
}

// Fig8aSeries sweeps loss rate at n = 1000.
func Fig8aSeries() ([]Fig8Row, error) {
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	var points []fig8Point
	for _, name := range ComparisonSchemes() {
		for _, p := range ps {
			points = append(points, fig8Point{scheme: name, p: p, n: 1000})
		}
	}
	return fig8Sweep(points)
}

// Fig8bSeries sweeps block size at p = 0.1.
func Fig8bSeries() ([]Fig8Row, error) {
	ns := []int{100, 200, 500, 1000, 2000}
	var points []fig8Point
	for _, name := range ComparisonSchemes() {
		for _, n := range ns {
			points = append(points, fig8Point{scheme: name, p: 0.1, n: n})
		}
	}
	return fig8Sweep(points)
}

func fig8Experiment() Experiment {
	e := Experiment{
		ID:    "fig8",
		Title: "q_min comparison: Rohatgi / AuthTree / EMSS E_{2,1} / AC C_{3,3} / TESLA vs (a) p, (b) n",
		Expectation: "Rohatgi collapses; AuthTree pinned at 1; EMSS ≈ AC; TESLA wins at high p " +
			"(given ample T_disc) but pays its timing factor at low p",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "(a) q_min vs loss rate p at n=1000"); err != nil {
			return err
		}
		rowsA, err := Fig8aSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "p", "q_min")
		for _, r := range rowsA {
			t.row(r.Scheme, f3(r.P), f3(r.QMin))
		}
		if err := t.flush(); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "\n(b) q_min vs block size n at p=0.1"); err != nil {
			return err
		}
		rowsB, err := Fig8bSeries()
		if err != nil {
			return err
		}
		t = newTable(w, "scheme", "n", "q_min")
		for _, r := range rowsB {
			t.row(r.Scheme, itoa(r.N), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}

// Fig9Series takes a closer look at EMSS/AC/TESLA across n at p = 0.1 and
// p = 0.5.
func Fig9Series() ([]Fig8Row, error) {
	ns := []int{200, 500, 1000, 2000, 5000}
	schemes := []string{"emss(E21)", "ac(C33)", "tesla"}
	var points []fig8Point
	for _, p := range []float64{0.1, 0.5} {
		for _, name := range schemes {
			for _, n := range ns {
				points = append(points, fig8Point{scheme: name, p: p, n: n})
			}
		}
	}
	return fig8Sweep(points)
}

func fig9Experiment() Experiment {
	e := Experiment{
		ID:    "fig9",
		Title: "Close-up: EMSS E_{2,1} / AC C_{3,3} / TESLA q_min vs n at p=0.1 and p=0.5",
		Expectation: "EMSS and AC track each other closely and vary little with n; " +
			"TESLA is flat in n and dominates at p=0.5",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig9Series()
		if err != nil {
			return err
		}
		t := newTable(w, "p", "scheme", "n", "q_min")
		for _, r := range rows {
			t.row(f3(r.P), r.Scheme, itoa(r.N), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}
