package experiments

import (
	"io"
	"math"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/construct"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/depgraph"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/parallel"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/schemetest"
	"mcauth/internal/stats"
)

// ValidateRow compares a scheme's analytic q_min against the verification
// ratio measured end-to-end over the simulated multicast network.
type ValidateRow struct {
	Scheme   string
	P        float64
	Analytic float64
	Measured float64
}

// validateReceivers trades precision for runtime; 1500 receivers puts the
// binomial noise near ±0.02 for mid-range q.
const validateReceivers = 1500

// ValidateSeries runs the measured-vs-analytic comparison. The analytic
// reference is the exact Markov evaluator where available (EMSS), the
// closed form for Rohatgi.
func ValidateSeries() ([]ValidateRow, error) {
	signer := crypto.NewSignerFromString("validate")
	n := 12
	var rows []ValidateRow
	for _, p := range []float64{0.1, 0.3} {
		model, err := loss.NewBernoulli(p)
		if err != nil {
			return nil, err
		}
		cfg := netsim.Config{
			Receivers:    validateReceivers,
			Loss:         model,
			Delay:        delay.Constant{D: time.Millisecond},
			SendInterval: 10 * time.Millisecond,
			Start:        time.Unix(0, 0),
			Seed:         uint64(1000 * p),
			Tracer:       Tracer,
			Metrics:      Metrics,
		}

		ro, err := rohatgi.New(n, signer)
		if err != nil {
			return nil, err
		}
		cfg.ReliableIndices = []uint32{1}
		measured, err := measureQMin(ro, cfg, dataIndices(1, n))
		if err != nil {
			return nil, err
		}
		roAna, err := analysis.Rohatgi(n, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidateRow{Scheme: "rohatgi", P: p, Analytic: roAna.QMin, Measured: measured})

		em, err := emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
		if err != nil {
			return nil, err
		}
		cfg.ReliableIndices = []uint32{uint32(n)}
		measured, err = measureQMin(em, cfg, dataIndices(1, n))
		if err != nil {
			return nil, err
		}
		emAna, err := analysis.MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.QMin()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidateRow{Scheme: "emss(E21,exact)", P: p, Analytic: emAna, Measured: measured})
	}
	return rows, nil
}

func dataIndices(from, to int) []uint32 {
	out := make([]uint32, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, uint32(i))
	}
	return out
}

func measureQMin(s scheme.Scheme, cfg netsim.Config, indices []uint32) (float64, error) {
	res, err := netsim.Run(s, cfg, 1, schemetest.Payloads(s.BlockSize()))
	if err != nil {
		return 0, err
	}
	return res.MinAuthRatio(indices), nil
}

func validateExperiment() Experiment {
	e := Experiment{
		ID:          "validate",
		Title:       "End-to-end validation: measured verification ratio over netsim vs exact analytics",
		Expectation: "measured q_min within sampling noise (~±0.03) of the exact analytic value",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := ValidateSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "p", "analytic q_min", "measured q_min")
		for _, r := range rows {
			t.row(r.Scheme, f3(r.P), f3(r.Analytic), f3(r.Measured))
		}
		return t.flush()
	}
	return e
}

// BurstRow compares schemes under bursty (Gilbert-Elliott) loss at a fixed
// stationary loss rate — the m-state Markov extension the paper names as
// future work.
type BurstRow struct {
	Scheme    string
	BurstLen  float64 // mean burst length in packets
	QMinMC    float64 // Monte-Carlo q_min on the dependence graph
	QMinExact float64 // exact Markov-modulated evaluation (NaN if N/A)
	Bernoulli float64 // same scheme under i.i.d. loss at the same rate
}

// burstRate is the stationary loss rate shared by all burst settings.
const (
	burstRate   = 0.1
	burstN      = 60
	burstTrials = 20000
)

// BurstSeries evaluates EMSS/AC/Rohatgi under increasing burstiness.
func BurstSeries() ([]BurstRow, error) {
	signer := crypto.NewSignerFromString("burst")
	em, err := emss.New(emss.Config{N: burstN, M: 2, D: 1}, signer)
	if err != nil {
		return nil, err
	}
	ac, err := augchain.New(augchain.Config{N: burstN, A: 3, B: 3}, signer)
	if err != nil {
		return nil, err
	}
	ro, err := rohatgi.New(burstN, signer)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name    string
		s       scheme.Scheme
		offsets []int // periodic offsets for the exact evaluator; nil if N/A
	}{
		{"rohatgi", ro, []int{1}},
		{"emss(E21)", em, []int{1, 2}},
		{"ac(C33)", ac, nil},
	}
	burstLens := []float64{1, 2, 5, 10}
	var rows []BurstRow
	for _, sc := range schemes {
		g, err := sc.s.Graph()
		if err != nil {
			return nil, err
		}
		bern, err := loss.NewBernoulli(burstRate)
		if err != nil {
			return nil, err
		}
		mcOpts := depgraph.MCOptions{Workers: Workers}
		base, err := g.MonteCarloAuthProbInto(loss.PatternInto(bern), burstTrials, stats.NewRNG(100), mcOpts)
		if err != nil {
			return nil, err
		}
		for _, bl := range burstLens {
			// Mean burst length bl => PBadToGood = 1/bl; choose
			// PGoodToBad for stationary loss = burstRate with
			// PBad = 1, PGood = 0: pi_bad = rate.
			pBadToGood := 1 / bl
			pGoodToBad := burstRate * pBadToGood / (1 - burstRate)
			ge, err := loss.NewGilbertElliott(pGoodToBad, pBadToGood, 0, 1)
			if err != nil {
				return nil, err
			}
			mc, err := g.MonteCarloAuthProbInto(loss.PatternInto(ge), burstTrials, stats.NewRNG(uint64(bl*17)), mcOpts)
			if err != nil {
				return nil, err
			}
			exact := math.NaN()
			if sc.offsets != nil {
				exact, err = analysis.MarkovExactBursty{
					N: burstN, Offsets: sc.offsets, Channel: ge,
				}.QMin()
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, BurstRow{
				Scheme:    sc.name,
				BurstLen:  bl,
				QMinMC:    mc.QMin,
				QMinExact: exact,
				Bernoulli: base.QMin,
			})
		}
	}
	return rows, nil
}

func burstExperiment() Experiment {
	e := Experiment{
		ID:          "burst",
		Title:       "Extension (paper future work): q_min under 2-state Markov (Gilbert-Elliott) bursty loss at fixed rate 0.1",
		Expectation: "chained schemes degrade as bursts lengthen past their hash-spread; Rohatgi is poor throughout",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := BurstSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "mean burst", "q_min (bursty MC)", "q_min (bursty exact)", "q_min (iid, same rate)")
		for _, r := range rows {
			exact := "n/a"
			if !math.IsNaN(r.QMinExact) {
				exact = f3(r.QMinExact)
			}
			t.row(r.Scheme, f1(r.BurstLen), f3(r.QMinMC), exact, f3(r.Bernoulli))
		}
		return t.flush()
	}
	return e
}

// ConstructRow reports the edge cost of meeting a design target with each
// Section 5 builder.
type ConstructRow struct {
	Target   float64
	Builder  string
	EdgesPkt float64
	QMin     float64
	Met      bool
}

// ConstructSeries sweeps design targets at n = 100, p = 0.2.
func ConstructSeries() ([]ConstructRow, error) {
	var rows []ConstructRow
	for _, target := range []float64{0.5, 0.8, 0.9, 0.99} {
		c := construct.Constraint{N: 100, P: 0.2, TargetQMin: target, MaxOutDegree: 6}
		greedy, err := construct.Greedy(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConstructRow{
			Target: target, Builder: "greedy",
			EdgesPkt: greedy.EdgesPerPacket, QMin: greedy.QMin, Met: greedy.Met,
		})
		policy, m, d, err := construct.PolicySearch(c, 8, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConstructRow{
			Target: target, Builder: "policy(m=" + itoa(m) + ",d=" + itoa(d) + ")",
			EdgesPkt: policy.EdgesPerPacket, QMin: policy.QMin, Met: policy.Met,
		})
		prob, rho, err := construct.Probabilistic(c, stats.NewRNG(uint64(target*1000)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConstructRow{
			Target: target, Builder: "probabilistic(rho=" + f3(rho) + ")",
			EdgesPkt: prob.EdgesPerPacket, QMin: prob.QMin, Met: prob.Met,
		})
		pruned, _, err := construct.Prune(prob.Graph, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConstructRow{
			Target: target, Builder: "probabilistic+prune",
			EdgesPkt: pruned.EdgesPerPacket, QMin: pruned.QMin, Met: pruned.Met,
		})
	}
	return rows, nil
}

func constructExperiment() Experiment {
	e := Experiment{
		ID:          "construct",
		Title:       "Section 5 design toolkit: edges/packet required to meet a q_min target (n=100, p=0.2)",
		Expectation: "cost grows with the target; the uniform policy is near the greedy cost; random placement is wasteful",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := ConstructSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "target q_min", "builder", "edges/pkt", "achieved q_min", "met")
		for _, r := range rows {
			met := "yes"
			if !r.Met {
				met = "NO"
			}
			t.row(f3(r.Target), r.Builder, f3(r.EdgesPkt), f3(r.QMin), met)
		}
		return t.flush()
	}
	return e
}

// MarkovGapRow quantifies the gap between the paper's independence
// recurrence and the exact Markov evaluation for E_{2,1}.
type MarkovGapRow struct {
	Scheme     string
	P          float64
	N          int
	Recurrence float64
	Exact      float64
}

// MarkovGapSeries sweeps block size for p in {0.1, 0.3}, for both EMSS
// E_{2,1} and the augmented chain C_{3,2} (blocks aligned to chain
// boundaries). Each (p, n) grid point — two rows — is evaluated on the
// worker pool.
func MarkovGapSeries() ([]MarkovGapRow, error) {
	type gapPoint struct {
		p float64
		n int
	}
	var points []gapPoint
	for _, p := range []float64{0.1, 0.3} {
		for _, n := range []int{50, 100, 200, 500, 1000} {
			points = append(points, gapPoint{p: p, n: n})
		}
	}
	pairs, err := parallel.Map(Workers, points, func(_ int, pt gapPoint) ([2]MarkovGapRow, error) {
		rec, err := analysis.EMSS{N: pt.n, M: 2, D: 1, P: pt.p}.QMin()
		if err != nil {
			return [2]MarkovGapRow{}, err
		}
		exact, err := analysis.MarkovExact{N: pt.n, Offsets: []int{1, 2}, P: pt.p}.QMin()
		if err != nil {
			return [2]MarkovGapRow{}, err
		}

		an := analysis.AlignN(pt.n, 2)
		acRec, err := analysis.AugChain{N: an, A: 3, B: 2, P: pt.p}.QMin()
		if err != nil {
			return [2]MarkovGapRow{}, err
		}
		acExact, err := analysis.AugChainExact{N: an, A: 3, B: 2, P: pt.p}.QMin()
		if err != nil {
			return [2]MarkovGapRow{}, err
		}
		return [2]MarkovGapRow{
			{Scheme: "emss(E21)", P: pt.p, N: pt.n, Recurrence: rec, Exact: exact},
			{Scheme: "ac(C32)", P: pt.p, N: an, Recurrence: acRec, Exact: acExact},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]MarkovGapRow, 0, 2*len(pairs))
	for _, pair := range pairs {
		rows = append(rows, pair[0], pair[1])
	}
	return rows, nil
}

func markovGapExperiment() Experiment {
	e := Experiment{
		ID:    "markovgap",
		Title: "Extension: the paper's Equation (8) recurrence vs exact Markov evaluation (EMSS E_{2,1})",
		Expectation: "the recurrence upper-bounds the exact q_min and the gap widens with n: " +
			"the exact process has an absorbing failure state (two consecutive losses)",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := MarkovGapSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "p", "n", "q_min (recurrence)", "q_min (exact)")
		for _, r := range rows {
			t.row(r.Scheme, f3(r.P), itoa(r.N), f3(r.Recurrence), f3(r.Exact))
		}
		return t.flush()
	}
	return e
}
