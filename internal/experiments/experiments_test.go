package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Expectation == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely defined", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Get("fig8"); !ok {
		t.Error("Get(fig8) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs() length mismatch")
	}
}

func TestAllExperimentsRender(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && (e.ID == "validate" || e.ID == "burst" || e.ID == "sigloss") {
				t.Skip("short mode")
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Error("output missing banner")
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := Fig3Series()
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[[2]float64]float64, len(rows))
	for _, r := range rows {
		byKey[[2]float64{r.Sigma, r.Alpha}] = r.QMin
	}
	// q_min decreases in alpha at fixed sigma...
	if byKey[[2]float64{0.2, 0.9}] > byKey[[2]float64{0.2, 0.1}] {
		t.Error("q_min should fall as mean delay rises")
	}
	// ...and decreases in sigma at fixed large alpha.
	if byKey[[2]float64{0.5, 0.8}] > byKey[[2]float64{0.05, 0.8}] {
		t.Error("q_min should fall as jitter rises")
	}
}

func TestFig4Shape(t *testing.T) {
	rows, err := Fig4Series()
	if err != nil {
		t.Fatal(err)
	}
	// With generous T_disc/sigma = 16 and small mu, q_min ≈ 1-p.
	for _, r := range rows {
		if r.Mu == 0.2 && r.Ratio == 16 {
			if math.Abs(r.QMin-(1-r.P)) > 0.01 {
				t.Errorf("p=%v: q_min %v, want ~%v", r.P, r.QMin, 1-r.P)
			}
		}
		// T_disc = sigma = 0.1 < mu: collapse.
		if r.Mu == 0.8 && r.Ratio == 1 && r.QMin > 0.01 {
			t.Errorf("q_min %v with T_disc far below mu, want ~0", r.QMin)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5Series()
	if err != nil {
		t.Fatal(err)
	}
	get := func(p float64, a, b int) float64 {
		for _, r := range rows {
			if r.P == p && r.A == a && r.B == b {
				return r.QMin
			}
		}
		t.Fatalf("missing row p=%v a=%d b=%d", p, a, b)
		return 0
	}
	// q_min rises with a and with b at fixed n.
	if get(0.3, 8, 3) < get(0.3, 1, 3) {
		t.Error("q_min should rise with a")
	}
	if get(0.3, 3, 8) < get(0.3, 3, 1) {
		t.Error("q_min should rise with b at fixed n")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6Series()
	if err != nil {
		t.Fatal(err)
	}
	// At fixed first-level length, q_min varies little with b.
	var p3 []float64
	for _, r := range rows {
		if r.P == 0.3 {
			p3 = append(p3, r.QMin)
		}
	}
	for _, q := range p3 {
		if math.Abs(q-p3[0]) > 0.03 {
			t.Errorf("fig6 q_min spread too wide: %v", p3)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7Series()
	if err != nil {
		t.Fatal(err)
	}
	get := func(p float64, m, d int) float64 {
		for _, r := range rows {
			if r.P == p && r.M == m && r.D == d {
				return r.QMin
			}
		}
		t.Fatalf("missing row p=%v m=%d d=%d", p, m, d)
		return 0
	}
	// Leveling off in m at p=0.3: the m=2→4 gain dwarfs the m=4→6 gain.
	gain24 := get(0.3, 4, 1) - get(0.3, 2, 1)
	gain46 := get(0.3, 6, 1) - get(0.3, 4, 1)
	if gain46 > gain24+1e-9 {
		t.Errorf("no leveling off: gain24=%v gain46=%v", gain24, gain46)
	}
	// Insensitive to moderate d.
	if math.Abs(get(0.3, 2, 10)-get(0.3, 2, 1)) > 0.05 {
		t.Error("q_min too sensitive to d")
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8aSeries()
	if err != nil {
		t.Fatal(err)
	}
	get := func(scheme string, p float64) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.P == p {
				return r.QMin
			}
		}
		t.Fatalf("missing %s p=%v", scheme, p)
		return 0
	}
	// AuthTree pinned at 1; Rohatgi collapsed; TESLA >> EMSS at p=0.5;
	// EMSS ≈ AC.
	if get("authtree", 0.5) != 1 {
		t.Error("authtree q_min must be 1")
	}
	if get("rohatgi", 0.1) > 1e-6 {
		t.Error("rohatgi should collapse at n=1000")
	}
	if get("tesla", 0.5) < 2*get("emss(E21)", 0.5) {
		t.Errorf("tesla %v should dominate emss %v at p=0.5",
			get("tesla", 0.5), get("emss(E21)", 0.5))
	}
	if math.Abs(get("emss(E21)", 0.3)-get("ac(C33)", 0.3)) > 0.15 {
		t.Error("EMSS and AC should be close")
	}
	// EMSS beats TESLA at small p (TESLA pays its timing factor).
	if get("emss(E21)", 0.05) <= get("tesla", 0.05) {
		t.Error("EMSS should edge out TESLA at p=0.05")
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9Series()
	if err != nil {
		t.Fatal(err)
	}
	// TESLA flat in n.
	var teslaVals []float64
	for _, r := range rows {
		if r.Scheme == "tesla" && r.P == 0.1 {
			teslaVals = append(teslaVals, r.QMin)
		}
	}
	for _, v := range teslaVals {
		if math.Abs(v-teslaVals[0]) > 1e-9 {
			t.Error("TESLA q_min should not depend on n")
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10Series()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig10Row, len(rows))
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	if r := byName["rohatgi"]; r.DelaySlots != 0 || r.HashesPerPkt > 1 {
		t.Errorf("rohatgi row %+v", r)
	}
	if r := byName["authtree"]; r.HashesPerPkt != 7 { // log2(128)
		t.Errorf("authtree hashes/pkt = %v, want 7", r.HashesPerPkt)
	}
	// With paper-era primitive sizes (128-byte RSA vs 16-byte hashes),
	// sign-each costs far more than the chained schemes — the paper's
	// headline motivation. (With modern Ed25519 the gap inverts in
	// bytes, though not in signing CPU; see the benchmark harness.)
	if byName["signeach"].PaperEraBytes <= 3*byName["emss(E21)"].PaperEraBytes {
		t.Errorf("paper-era: signeach %v should dwarf EMSS %v",
			byName["signeach"].PaperEraBytes, byName["emss(E21)"].PaperEraBytes)
	}
	if byName["signeach"].OverheadBytes <= byName["rohatgi"].OverheadBytes {
		t.Error("signeach should cost more than a one-hash chain even with modern sizes")
	}
	if byName["emss(E21)"].DelaySlots == 0 {
		t.Error("signature-last EMSS must have positive delay")
	}
	if byName["tesla"].QMin <= 0 {
		t.Error("tesla q_min missing")
	}
}

func TestValidateSeriesAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := ValidateSeries()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Analytic-r.Measured) > 0.04 {
			t.Errorf("%s p=%v: analytic %v vs measured %v",
				r.Scheme, r.P, r.Analytic, r.Measured)
		}
	}
}

func TestBurstSeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := BurstSeries()
	if err != nil {
		t.Fatal(err)
	}
	// At fixed loss rate, lengthening bursts must hurt E_{2,1}: a burst
	// of >= 2 kills both carriers of a hash.
	var emss1, emss10 float64
	for _, r := range rows {
		if r.Scheme == "emss(E21)" {
			switch r.BurstLen {
			case 1:
				emss1 = r.QMinMC
			case 10:
				emss10 = r.QMinMC
			}
		}
	}
	if emss10 >= emss1 {
		t.Errorf("EMSS should degrade with burstiness: burst1=%v burst10=%v", emss1, emss10)
	}
}

func TestBoundsSeriesShape(t *testing.T) {
	rows, err := BoundsSeries()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Exact < r.Lower-1e-9 || r.Exact > r.Upper+1e-9 {
			t.Errorf("packet %d: exact %v outside [%v, %v]", r.Packet, r.Exact, r.Lower, r.Upper)
		}
	}
	// The bracket widens away from the signature.
	first, last := rows[2], rows[len(rows)-1]
	if last.Upper-last.Lower <= first.Upper-first.Lower {
		t.Errorf("bracket should widen: near %v vs far %v",
			first.Upper-first.Lower, last.Upper-last.Lower)
	}
}

func TestLateJoinSeriesShape(t *testing.T) {
	rows, err := LateJoinSeries()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64, len(rows))
	for _, r := range rows {
		byName[r.Scheme] = r.VerifiedOfDelivered
	}
	if byName["rohatgi (sig first)"] != 0 {
		t.Errorf("signature-first joiners verified %v, want 0", byName["rohatgi (sig first)"])
	}
	for _, name := range []string{"emss (sig last)", "authtree (per-packet)", "signeach (per-packet)"} {
		if byName[name] != 1 {
			t.Errorf("%s joiners verified %v, want 1", name, byName[name])
		}
	}
}

func TestSigLossSeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := SigLossSeries()
	if err != nil {
		t.Fatal(err)
	}
	get := func(p float64, copies int) SigLossRow {
		for _, r := range rows {
			if r.P == p && r.Copies == copies {
				return r
			}
		}
		t.Fatalf("missing row p=%v copies=%d", p, copies)
		return SigLossRow{}
	}
	for _, p := range []float64{0.1, 0.3} {
		one, three := get(p, 1), get(p, 3)
		// A single unprotected signature copy costs roughly p of the
		// assumed q_min.
		if one.Measured > one.Assumed*(1-p/2) {
			t.Errorf("p=%v: single copy too good: %v vs assumed %v", p, one.Measured, one.Assumed)
		}
		// Replication must recover most of the gap.
		if three.Measured < one.Measured {
			t.Errorf("p=%v: replication made things worse: %v < %v", p, three.Measured, one.Measured)
		}
		if three.Assumed-three.Measured > (one.Assumed-one.Measured)/2 {
			t.Errorf("p=%v: three copies left gap %v vs one-copy gap %v",
				p, three.Assumed-three.Measured, one.Assumed-one.Measured)
		}
	}
}

func TestConstructSeriesShape(t *testing.T) {
	rows, err := ConstructSeries()
	if err != nil {
		t.Fatal(err)
	}
	// Every builder must meet every target in this range.
	for _, r := range rows {
		if !r.Met {
			t.Errorf("builder %s missed target %v (qmin %v)", r.Builder, r.Target, r.QMin)
		}
	}
	// Greedy cost grows with the target.
	var greedy []ConstructRow
	for _, r := range rows {
		if strings.HasPrefix(r.Builder, "greedy") {
			greedy = append(greedy, r)
		}
	}
	for i := 1; i < len(greedy); i++ {
		if greedy[i].EdgesPkt < greedy[i-1].EdgesPkt-1e-9 {
			t.Errorf("greedy cost fell as target rose: %+v", greedy)
		}
	}
}

func TestMarkovGapSeriesShape(t *testing.T) {
	rows, err := MarkovGapSeries()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Exact > r.Recurrence+1e-9 {
			t.Errorf("exact %v exceeds recurrence %v at n=%d p=%v",
				r.Exact, r.Recurrence, r.N, r.P)
		}
	}
	// Gap must widen with n at p=0.3.
	var gap50, gap1000 float64
	for _, r := range rows {
		if r.Scheme != "emss(E21)" {
			continue
		}
		if r.P == 0.3 && r.N == 50 {
			gap50 = r.Recurrence - r.Exact
		}
		if r.P == 0.3 && r.N == 1000 {
			gap1000 = r.Recurrence - r.Exact
		}
	}
	if gap1000 <= gap50 {
		t.Errorf("gap should widen with n: %v vs %v", gap50, gap1000)
	}
}

// TestWorkersDeterminism pins the engine contract: rendered experiment
// output is byte-identical regardless of the Workers setting.
func TestWorkersDeterminism(t *testing.T) {
	defer func(old int) { Workers = old }(Workers)
	render := func(id string, workers int) []byte {
		t.Helper()
		Workers = workers
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s with %d workers: %v", id, workers, err)
		}
		return buf.Bytes()
	}
	for _, id := range []string{"fig8", "markovgap"} {
		base := render(id, 1)
		for _, workers := range []int{2, 8} {
			if got := render(id, workers); !bytes.Equal(got, base) {
				t.Errorf("%s: output with %d workers differs from sequential run", id, workers)
			}
		}
	}
}
