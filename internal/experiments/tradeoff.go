package experiments

import (
	"io"

	"mcauth/internal/analysis"
)

// TradeoffRow is one point in the overhead <-> robustness design space of
// Section 3.1: adding edges (hashes per packet) buys authentication
// probability.
type TradeoffRow struct {
	Scheme   string
	EdgesPkt float64
	QMin     float64
	// DelaySlots is the receiver-delay dimension of the tradeoff (the
	// maximum dependence span in packet slots).
	DelaySlots int
}

// TradeoffSeries sweeps the EMSS edge budget and spacing at p = 0.3,
// n = 1000, mapping the paper's three-way tradeoff between overhead,
// robustness and receiver delay.
func TradeoffSeries() ([]TradeoffRow, error) {
	var rows []TradeoffRow
	// Edge-budget axis: m at d = 1 (delay = block length for
	// signature-last schemes; the span shown is the hash spread).
	for m := 1; m <= 6; m++ {
		qmin, err := analysis.EMSS{N: 1000, M: m, D: 1, P: 0.3}.QMin()
		if err != nil {
			return nil, err
		}
		rows = append(rows, TradeoffRow{
			Scheme:     "emss(E_{" + itoa(m) + ",1})",
			EdgesPkt:   float64(m),
			QMin:       qmin,
			DelaySlots: m, // hash spread m*d
		})
	}
	// Delay axis: spacing d at m = 2 — buffering grows with d while the
	// edge budget is constant.
	for _, d := range []int{1, 5, 20, 100, 300} {
		qmin, err := analysis.EMSS{N: 1000, M: 2, D: d, P: 0.3}.QMin()
		if err != nil {
			return nil, err
		}
		rows = append(rows, TradeoffRow{
			Scheme:     "emss(E_{2," + itoa(d) + "})",
			EdgesPkt:   2,
			QMin:       qmin,
			DelaySlots: 2 * d,
		})
	}
	return rows, nil
}

func tradeoffExperiment() Experiment {
	e := Experiment{
		ID:    "tradeoff",
		Title: "Section 3.1 design tradeoff: overhead (edges/pkt) and buffering (hash spread) vs q_min",
		Expectation: "q_min rises steeply then saturates in the edge budget; " +
			"widening the spread at fixed budget costs buffering but barely moves q_min (under the paper's model)",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := TradeoffSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "edges/pkt", "hash spread (slots)", "q_min@p=0.3")
		for _, r := range rows {
			t.row(r.Scheme, f3(r.EdgesPkt), itoa(r.DelaySlots), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}
