package experiments

import (
	"io"

	"mcauth/internal/analysis"
	"mcauth/internal/parallel"
)

// Figure 3 parameters: n = 1000, T_disclose = 1 s (per the paper), loss
// p = 0.1 (the paper leaves p implicit; the surface shape is p-independent
// up to the (1-p) factor).
const (
	fig3N     = 1000
	fig3TDisc = 1.0
	fig3P     = 0.1
)

// Fig3Row is one point of the TESLA delay surface.
type Fig3Row struct {
	Sigma float64 // delay std-dev, seconds
	Alpha float64 // mu = alpha * TDisc
	QMin  float64
}

// Fig3Series computes q_min against network delay mean and jitter,
// evaluating the sweep points on the worker pool.
func Fig3Series() ([]Fig3Row, error) {
	sigmas := []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	alphas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	points := make([]Fig3Row, 0, len(sigmas)*len(alphas))
	for _, sigma := range sigmas {
		for _, alpha := range alphas {
			points = append(points, Fig3Row{Sigma: sigma, Alpha: alpha})
		}
	}
	return parallel.Map(Workers, points, func(_ int, pt Fig3Row) (Fig3Row, error) {
		cfg, err := analysis.TESLAWithAlpha(fig3N, fig3P, fig3TDisc, pt.Alpha, pt.Sigma)
		if err != nil {
			return Fig3Row{}, err
		}
		qmin, err := cfg.QMin()
		if err != nil {
			return Fig3Row{}, err
		}
		pt.QMin = qmin
		return pt, nil
	})
}

func fig3Experiment() Experiment {
	e := Experiment{
		ID:    "fig3",
		Title: "TESLA q_min vs end-to-end delay mean (mu = alpha*T_disc) and jitter sigma",
		Expectation: "q_min drops as either mu or sigma increases; " +
			"near-(1-p) plateau while T_disc comfortably exceeds mu",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig3Series()
		if err != nil {
			return err
		}
		t := newTable(w, "sigma(s)", "alpha", "q_min")
		for _, r := range rows {
			t.row(f3(r.Sigma), f3(r.Alpha), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}

// Fig4Row is one point of the disclosure-delay sweep.
type Fig4Row struct {
	Mu    float64 // mean delay, seconds
	P     float64 // loss rate
	Ratio float64 // TDisc / sigma
	QMin  float64
}

// fig4Sigma fixes the jitter scale; the paper plots against the
// normalized T_disclose/sigma.
const fig4Sigma = 0.1

// Fig4Series computes q_min against normalized disclosure delay and
// loss, evaluating the sweep points on the worker pool.
func Fig4Series() ([]Fig4Row, error) {
	mus := []float64{0.2, 0.5, 0.8}
	ps := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}
	ratios := []float64{1, 2, 4, 8, 16}
	points := make([]Fig4Row, 0, len(mus)*len(ps)*len(ratios))
	for _, mu := range mus {
		for _, p := range ps {
			for _, ratio := range ratios {
				points = append(points, Fig4Row{Mu: mu, P: p, Ratio: ratio})
			}
		}
	}
	return parallel.Map(Workers, points, func(_ int, pt Fig4Row) (Fig4Row, error) {
		cfg := analysis.TESLA{
			N:     fig3N,
			P:     pt.P,
			TDisc: pt.Ratio * fig4Sigma,
			Mu:    pt.Mu,
			Sigma: fig4Sigma,
		}
		qmin, err := cfg.QMin()
		if err != nil {
			return Fig4Row{}, err
		}
		pt.QMin = qmin
		return pt, nil
	})
}

func fig4Experiment() Experiment {
	e := Experiment{
		ID:    "fig4",
		Title: "TESLA q_min vs normalized disclosure delay T_disc/sigma and loss p, per mean delay mu",
		Expectation: "robust to loss (degrades only as 1-p) once T_disc/sigma is large " +
			"relative to mu; collapses when T_disc falls below mu",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig4Series()
		if err != nil {
			return err
		}
		t := newTable(w, "mu(s)", "p", "T_disc/sigma", "q_min")
		for _, r := range rows {
			t.row(f3(r.Mu), f3(r.P), f1(r.Ratio), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}
