package experiments

import (
	"io"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
)

// LateJoinRow reports how well a scheme serves receivers that join
// mid-block — the paper's long-lived sessions where "recipients join and
// leave frequently".
type LateJoinRow struct {
	Scheme string
	// VerifiedOfDelivered is the fraction of post-join delivered packets
	// late joiners managed to authenticate.
	VerifiedOfDelivered float64
}

// LateJoinSeries runs every receiver as a late joiner over a lossless
// network, isolating the synchronization effect.
func LateJoinSeries() ([]LateJoinRow, error) {
	signer := crypto.NewSignerFromString("latejoin")
	const n = 32
	ro, err := rohatgi.New(n, signer)
	if err != nil {
		return nil, err
	}
	em, err := emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	if err != nil {
		return nil, err
	}
	at, err := authtree.New(n, signer)
	if err != nil {
		return nil, err
	}
	se, err := signeach.New(n, signer)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name string
		s    scheme.Scheme
	}{
		{"rohatgi (sig first)", ro},
		{"emss (sig last)", em},
		{"authtree (per-packet)", at},
		{"signeach (per-packet)", se},
	}
	lossless, err := loss.NewBernoulli(0)
	if err != nil {
		return nil, err
	}
	rows := make([]LateJoinRow, 0, len(schemes))
	for _, sc := range schemes {
		cfg := netsim.Config{
			Receivers:    200,
			LateJoiners:  200,
			Loss:         lossless,
			Delay:        delay.Constant{D: time.Millisecond},
			SendInterval: 10 * time.Millisecond,
			Start:        time.Unix(0, 0),
			Seed:         31,
			Tracer:       Tracer,
			Metrics:      Metrics,
		}
		res, err := netsim.Run(sc.s, cfg, 1, payloadsFor(sc.s))
		if err != nil {
			return nil, err
		}
		var delivered, verified int
		for _, rep := range res.PerReceiver {
			delivered += rep.Delivered
			verified += rep.Stats.Authenticated
		}
		ratio := 0.0
		if delivered > 0 {
			ratio = float64(verified) / float64(delivered)
		}
		rows = append(rows, LateJoinRow{Scheme: sc.name, VerifiedOfDelivered: ratio})
	}
	return rows, nil
}

func payloadsFor(s scheme.Scheme) [][]byte {
	out := make([][]byte, s.BlockSize())
	for i := range out {
		out[i] = []byte{byte(i)}
	}
	return out
}

func lateJoinExperiment() Experiment {
	e := Experiment{
		ID:    "latejoin",
		Title: "Extension: mid-block joiners (paper's join/leave churn), lossless network",
		Expectation: "per-packet schemes serve joiners immediately; signature-last chains sync at block end; " +
			"a signature-first chain leaves joiners unable to verify anything until the next block",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := LateJoinSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "verified / delivered (late joiners)")
		for _, r := range rows {
			t.row(r.Scheme, f3(r.VerifiedOfDelivered))
		}
		return t.flush()
	}
	return e
}
