// Package experiments regenerates every figure of the paper's evaluation
// (Figures 3-10) plus this repository's extension experiments. Each
// experiment prints the figure's data series as an aligned text table; the
// underlying series functions are exported for tests and for the benchmark
// harness.
//
// Absolute values depend on parameters the paper leaves implicit (noted
// per experiment); the claims being reproduced are the qualitative shapes
// — who wins, where the curves flatten, what the tradeoffs cost.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"mcauth/internal/obs"
	"mcauth/internal/parallel"
)

// Workers bounds the worker pool used for sweep-point evaluation and
// RunAll; <= 0 (the default) selects parallel.DefaultWorkers. Because
// every fan-out collects results in input order, the rendered output is
// byte-identical for any setting. Set it before running experiments (the
// mcfig/mcsim -workers flag does); it is not synchronized with running
// experiments.
var Workers int

// Tracer, when non-nil, is threaded into every netsim run an experiment
// performs, so `mcfig -trace` captures the full packet lifecycle of a
// figure regeneration. Like Workers, set it before running experiments;
// it is not synchronized with running experiments. Emission order across
// sweep points is non-deterministic — downstream consumers must treat
// the stream as an unordered bag of events (obs tracers and the diagnose
// package already do).
var Tracer obs.Tracer

// Metrics, when non-nil, is threaded into every netsim run an experiment
// performs, so `mcfig -metrics` aggregates netsim.* counters across a
// whole figure sweep. Same caveats as Tracer.
var Metrics *obs.Registry

// Experiment is one reproducible figure or extension study.
type Experiment struct {
	// ID is the handle used by cmd/mcfig (e.g. "fig8").
	ID string
	// Title summarizes what is being reproduced.
	Title string
	// Expectation states the paper's claim (the shape to look for).
	Expectation string
	// Run computes the series and renders them to w.
	Run func(w io.Writer) error
}

// All returns every registered experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		fig3Experiment(),
		fig4Experiment(),
		fig5Experiment(),
		fig6Experiment(),
		fig7Experiment(),
		fig8Experiment(),
		fig9Experiment(),
		fig10Experiment(),
		validateExperiment(),
		boundsExperiment(),
		burstExperiment(),
		lateJoinExperiment(),
		sigLossExperiment(),
		constructExperiment(),
		tradeoffExperiment(),
		markovGapExperiment(),
	}
}

// RunAll renders every experiment in presentation order, separated by
// blank lines. Independent experiments run concurrently on the worker
// pool, each into its own buffer, so the concatenated output is
// byte-identical to a sequential run.
func RunAll(w io.Writer) error {
	bufs, err := parallel.Map(Workers, All(), func(_ int, e Experiment) ([]byte, error) {
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		buf.WriteString("\n")
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// table renders rows with a header through a tabwriter.
type table struct {
	w  *tabwriter.Writer
	ec errCollector
}

type errCollector struct{ err error }

func (e *errCollector) note(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	t.row(header...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			_, err := io.WriteString(t.w, "\t")
			t.ec.note(err)
		}
		_, err := io.WriteString(t.w, c)
		t.ec.note(err)
	}
	_, err := io.WriteString(t.w, "\n")
	t.ec.note(err)
}

func (t *table) flush() error {
	t.ec.note(t.w.Flush())
	return t.ec.err
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

func itoa(v int) string { return strconv.Itoa(v) }

func banner(w io.Writer, e Experiment) error {
	_, err := fmt.Fprintf(w, "== %s: %s ==\nExpected shape: %s\n\n", e.ID, e.Title, e.Expectation)
	return err
}
