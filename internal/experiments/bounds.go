package experiments

import (
	"io"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme/emss"
)

// BoundsRow is one packet's Equation (1) bracket around its exact
// authentication probability.
type BoundsRow struct {
	Packet int // reversed index (1 = signature packet)
	Lower  float64
	Exact  float64
	Upper  float64
	Paths  int // vertex-disjoint paths from the signature packet
}

// BoundsSeries evaluates Equation (1) on EMSS E_{2,1} with n = 18 at
// p = 0.3: the lower bound assumes maximally overlapping paths (only the
// shortest matters), the upper bound assumes disjoint paths.
func BoundsSeries() ([]BoundsRow, error) {
	const (
		n = 18
		p = 0.3
	)
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("bounds"))
	if err != nil {
		return nil, err
	}
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		return nil, err
	}
	rows := make([]BoundsRow, 0, n-1)
	for rev := 2; rev <= n; rev++ {
		send := n + 1 - rev
		b, err := g.AuthProbBounds(send, p, 100000)
		if err != nil {
			return nil, err
		}
		disjoint, err := g.VertexDisjointPaths(send)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BoundsRow{
			Packet: rev,
			Lower:  b.Lower,
			Exact:  exact.Q[send],
			Upper:  b.Upper,
			Paths:  disjoint,
		})
	}
	return rows, nil
}

func boundsExperiment() Experiment {
	e := Experiment{
		ID:    "bounds",
		Title: "Equation (1): best/worst-case topology bounds vs exact q_i (EMSS E_{2,1}, n=18, p=0.3)",
		Expectation: "lower <= exact <= upper everywhere; the bracket widens with distance from the " +
			"signature packet as path overlap grows",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := BoundsSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "packet (rev)", "Eq(1) lower", "exact q_i", "Eq(1) upper", "disjoint paths")
		for _, r := range rows {
			t.row(itoa(r.Packet), f3(r.Lower), f3(r.Exact), f3(r.Upper), itoa(r.Paths))
		}
		return t.flush()
	}
	return e
}
