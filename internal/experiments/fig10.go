package experiments

import (
	"fmt"
	"io"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/schemetest"
)

// Figure 10 parameters: one block of fig10N packets; overheads measured
// from the actual wire packets this library produces (Ed25519 + SHA-256).
const fig10N = 128

// Fig10Row summarizes one scheme's overhead and delay.
type Fig10Row struct {
	Scheme        string
	HashesPerPkt  float64 // average carried hashes per wire packet
	OverheadBytes float64 // measured wire authentication overhead per packet
	// PaperEraBytes recomputes the overhead with 2003-era primitive
	// sizes (16-byte hashes/MACs/keys, 128-byte RSA signatures) via
	// Equation (3); with modern Ed25519 a signature is cheaper than two
	// SHA-256 refs, which inverts the paper's sign-each comparison.
	PaperEraBytes float64
	DelaySlots    int     // worst-case deterministic receiver delay, in packet slots
	HashBuffer    int     // receiver hash-buffer size, packets
	MsgBuffer     int     // receiver message-buffer size, packets
	QMin          float64 // analytic q_min at p = 0.1
}

// fig10Schemes builds the contenders over one block.
func fig10Schemes() (map[string]scheme.Scheme, error) {
	signer := crypto.NewSignerFromString("fig10")
	out := make(map[string]scheme.Scheme, 6)
	r, err := rohatgi.New(fig10N, signer)
	if err != nil {
		return nil, err
	}
	out["rohatgi"] = r
	em, err := emss.New(emss.Config{N: fig10N, M: 2, D: 1}, signer)
	if err != nil {
		return nil, err
	}
	out["emss(E21)"] = em
	ac, err := augchain.New(augchain.Config{N: fig10N, A: 3, B: 3}, signer)
	if err != nil {
		return nil, err
	}
	out["ac(C33)"] = ac
	at, err := authtree.New(fig10N, signer)
	if err != nil {
		return nil, err
	}
	out["authtree"] = at
	se, err := signeach.New(fig10N, signer)
	if err != nil {
		return nil, err
	}
	out["signeach"] = se
	ts, err := tesla.New(tesla.Config{
		N:        fig10N,
		Lag:      4,
		Interval: 100 * time.Millisecond,
		Start:    time.Unix(0, 0),
		Seed:     []byte("fig10"),
	}, signer)
	if err != nil {
		return nil, err
	}
	out["tesla"] = ts
	return out, nil
}

// Fig10Series measures overhead and delay for every scheme.
func Fig10Series() ([]Fig10Row, error) {
	schemes, err := fig10Schemes()
	if err != nil {
		return nil, err
	}
	order := []string{"rohatgi", "emss(E21)", "ac(C33)", "authtree", "signeach", "tesla"}
	rows := make([]Fig10Row, 0, len(order))
	for _, name := range order {
		s := schemes[name]
		pkts, err := s.Authenticate(1, schemetest.Payloads(s.BlockSize()))
		if err != nil {
			return nil, err
		}
		var hashes, overhead, sigs, macs, keys int
		for _, p := range pkts {
			hashes += len(p.Hashes)
			overhead += p.OverheadBytes()
			if len(p.Signature) > 0 {
				sigs++
			}
			if len(p.MAC) > 0 {
				macs++
			}
			if len(p.DisclosedKey) > 0 {
				keys++
			}
		}
		paperEra := float64(16*(hashes+macs+keys)+128*sigs) / float64(len(pkts))
		row := Fig10Row{
			Scheme:        name,
			HashesPerPkt:  float64(hashes) / float64(len(pkts)),
			OverheadBytes: float64(overhead) / float64(len(pkts)),
			PaperEraBytes: paperEra,
		}
		switch name {
		case "tesla":
			// The split-vertex TESLA graph does not carry slot
			// semantics; the receiver delay is the disclosure lag.
			row.DelaySlots = 4
			row.MsgBuffer = 4
			row.QMin, err = analysis.TESLA{
				N: fig10N, P: 0.1, TDisc: cmpTDisc, Mu: cmpMu, Sigma: cmpSigma,
			}.QMin()
			if err != nil {
				return nil, err
			}
		default:
			g, err := s.Graph()
			if err != nil {
				return nil, err
			}
			row.DelaySlots, err = g.MaxDeterministicDelay()
			if err != nil {
				return nil, err
			}
			row.HashBuffer = g.HashBufferSize()
			row.MsgBuffer = g.MessageBufferSize()
			analyticName := name
			if name == "signeach" {
				analyticName = "authtree" // both have q = 1
			}
			row.QMin, err = SchemeQMin(analyticName, fig10N, 0.1)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig10Experiment() Experiment {
	e := Experiment{
		ID:    "fig10",
		Title: "Overhead and receiver delay for all schemes (measured from wire packets, n=128)",
		Expectation: "hash-chained schemes cost ~1-2 hashes/packet with delayed verification; " +
			"authtree/signeach pay log(n) hashes or a signature per packet for zero delay; " +
			"TESLA costs one MAC+key per packet plus the disclosure delay",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig10Series()
		if err != nil {
			return err
		}
		t := newTable(w, "scheme", "hashes/pkt", "overhead(B/pkt)", "2003-era(B/pkt)", "delay(slots)", "hashbuf", "msgbuf", "q_min@p=0.1")
		for _, r := range rows {
			t.row(r.Scheme, f3(r.HashesPerPkt), f1(r.OverheadBytes), f1(r.PaperEraBytes),
				itoa(r.DelaySlots), itoa(r.HashBuffer), itoa(r.MsgBuffer), f3(r.QMin))
		}
		if err := t.flush(); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, "\n(q_min for authtree/signeach is 1 by construction; delay for tesla is the disclosure lag)")
		return err
	}
	return e
}
