package experiments

import (
	"io"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/scheme/emss"
)

// SigLossRow measures what the paper's "P_sign always arrives" assumption
// costs when the signature packet is NOT protected, and how quickly
// replication (the paper's own remedy) restores it.
type SigLossRow struct {
	P        float64
	Copies   int
	Measured float64 // min verification ratio over data packets, sig lossy
	Assumed  float64 // exact analytic q_min under the always-arrives assumption
}

// SigLossSeries runs EMSS E_{2,1} end-to-end without any reliable-delivery
// crutch, sweeping signature-packet replication.
func SigLossSeries() ([]SigLossRow, error) {
	signer := crypto.NewSignerFromString("sigloss")
	const n = 12
	var rows []SigLossRow
	for _, p := range []float64{0.1, 0.3} {
		assumed, err := analysis.MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.QMin()
		if err != nil {
			return nil, err
		}
		model, err := loss.NewBernoulli(p)
		if err != nil {
			return nil, err
		}
		for _, copies := range []int{1, 2, 3} {
			s, err := emss.New(emss.Config{N: n, M: 2, D: 1, SigCopies: copies}, signer)
			if err != nil {
				return nil, err
			}
			res, err := netsim.Run(s, netsim.Config{
				Receivers:    2000,
				Loss:         model,
				Delay:        delay.Constant{D: time.Millisecond},
				SendInterval: 10 * time.Millisecond,
				Start:        time.Unix(0, 0),
				Seed:         uint64(copies)*100 + uint64(p*10),
				Tracer:       Tracer,
				Metrics:      Metrics,
			}, 1, schemePayloads(n))
			if err != nil {
				return nil, err
			}
			rows = append(rows, SigLossRow{
				P:        p,
				Copies:   copies,
				Measured: res.MinAuthRatio(dataIndices(1, n)),
				Assumed:  assumed,
			})
		}
	}
	return rows, nil
}

func schemePayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{byte(i)}
	}
	return out
}

func sigLossExperiment() Experiment {
	e := Experiment{
		ID:    "sigloss",
		Title: "Extension: cost of the 'P_sign always arrives' assumption, and replication as the paper's remedy",
		Expectation: "one signature copy loses ~p of all blocks outright; two or three copies " +
			"(residual loss p^2, p^3) recover the assumption's q_min",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := SigLossSeries()
		if err != nil {
			return err
		}
		t := newTable(w, "p", "sig copies", "measured q_min (sig lossy)", "q_min (assumed reliable)")
		for _, r := range rows {
			t.row(f3(r.P), itoa(r.Copies), f3(r.Measured), f3(r.Assumed))
		}
		return t.flush()
	}
	return e
}
