package experiments

import (
	"io"

	"mcauth/internal/analysis"
	"mcauth/internal/parallel"
)

// Fig5Row is one point of the augmented-chain parameter sweep.
type Fig5Row struct {
	P    float64
	A    int
	B    int
	QMin float64
}

// Fig5Series computes C_{a,b} q_min over (a, b) at fixed n = 1000,
// evaluating the sweep points on the worker pool.
func Fig5Series() ([]Fig5Row, error) {
	as := []int{1, 2, 3, 5, 8}
	bs := []int{1, 2, 3, 5, 8}
	ps := []float64{0.1, 0.3, 0.5}
	points := make([]Fig5Row, 0, len(as)*len(bs)*len(ps))
	for _, p := range ps {
		for _, a := range as {
			for _, b := range bs {
				points = append(points, Fig5Row{P: p, A: a, B: b})
			}
		}
	}
	return parallel.Map(Workers, points, func(_ int, pt Fig5Row) (Fig5Row, error) {
		qmin, err := analysis.AugChain{N: analysis.AlignN(1000, pt.B), A: pt.A, B: pt.B, P: pt.P}.QMin()
		if err != nil {
			return Fig5Row{}, err
		}
		pt.QMin = qmin
		return pt, nil
	})
}

func fig5Experiment() Experiment {
	e := Experiment{
		ID:          "fig5",
		Title:       "Augmented chain C_{a,b} q_min vs a and b at fixed block size n=1000",
		Expectation: "q_min drops when either a or b decreases (fixed n)",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig5Series()
		if err != nil {
			return err
		}
		t := newTable(w, "p", "a", "b", "q_min")
		for _, r := range rows {
			t.row(f3(r.P), itoa(r.A), itoa(r.B), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}

// Fig6Row is one point of the fixed-first-level sweep.
type Fig6Row struct {
	P    float64
	B    int
	N    int
	QMin float64
}

// fig6Level1 fixes the number of first-level chain packets while b (and
// hence n) varies.
const fig6Level1 = 200

// Fig6Series computes C_{3,b} q_min with the first-level length held
// constant, evaluating the sweep points on the worker pool.
func Fig6Series() ([]Fig6Row, error) {
	bs := []int{1, 2, 4, 8, 16}
	ps := []float64{0.1, 0.3, 0.5}
	points := make([]Fig6Row, 0, len(bs)*len(ps))
	for _, p := range ps {
		for _, b := range bs {
			points = append(points, Fig6Row{P: p, B: b, N: analysis.NForLevel1Length(fig6Level1, b)})
		}
	}
	return parallel.Map(Workers, points, func(_ int, pt Fig6Row) (Fig6Row, error) {
		qmin, err := analysis.AugChain{N: pt.N, A: 3, B: pt.B, P: pt.P}.QMin()
		if err != nil {
			return Fig6Row{}, err
		}
		pt.QMin = qmin
		return pt, nil
	})
}

func fig6Experiment() Experiment {
	e := Experiment{
		ID:          "fig6",
		Title:       "Augmented chain q_min vs b with the first-level chain length fixed (n grows with b)",
		Expectation: "q_min is nearly insensitive to b: new packets can be inserted without degrading the scheme",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig6Series()
		if err != nil {
			return err
		}
		t := newTable(w, "p", "b", "n", "q_min")
		for _, r := range rows {
			t.row(f3(r.P), itoa(r.B), itoa(r.N), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}

// Fig7Row is one point of the EMSS parameter sweep.
type Fig7Row struct {
	P    float64
	M    int
	D    int
	QMin float64
}

// Fig7Series computes E_{m,d} q_min over (m, d) at n = 1000, evaluating
// the sweep points on the worker pool.
func Fig7Series() ([]Fig7Row, error) {
	ms := []int{1, 2, 3, 4, 5, 6}
	ds := []int{1, 5, 10, 50, 100, 200}
	ps := []float64{0.1, 0.3, 0.5}
	var points []Fig7Row
	for _, p := range ps {
		for _, m := range ms {
			for _, d := range ds {
				if m*d >= 1000 {
					continue
				}
				points = append(points, Fig7Row{P: p, M: m, D: d})
			}
		}
	}
	return parallel.Map(Workers, points, func(_ int, pt Fig7Row) (Fig7Row, error) {
		qmin, err := analysis.EMSS{N: 1000, M: pt.M, D: pt.D, P: pt.P}.QMin()
		if err != nil {
			return Fig7Row{}, err
		}
		pt.QMin = qmin
		return pt, nil
	})
}

func fig7Experiment() Experiment {
	e := Experiment{
		ID:    "fig7",
		Title: "EMSS E_{m,d} q_min vs m (hash copies) and d (spacing) at n=1000",
		Expectation: "q_min levels off once m exceeds 2-4; much less sensitive to d " +
			"until d approaches ~20% of n",
	}
	e.Run = func(w io.Writer) error {
		if err := banner(w, e); err != nil {
			return err
		}
		rows, err := Fig7Series()
		if err != nil {
			return err
		}
		t := newTable(w, "p", "m", "d", "q_min")
		for _, r := range rows {
			t.row(f3(r.P), itoa(r.M), itoa(r.D), f3(r.QMin))
		}
		return t.flush()
	}
	return e
}
