package depgraph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mcauth/internal/stats"
)

// chainGraph builds the Rohatgi topology: root P_1, edges i -> i+1.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// emssGraph builds an E_{2,1}-style topology in reversed indexing: root P_1
// (the signature packet), each P_i depends on P_{i-1} and P_{i-2}, i.e.
// edges (i-1) -> i and (i-2) -> i.
func emssGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= n; i++ {
		if err := g.AddEdge(i-1, i); err != nil {
			t.Fatal(err)
		}
		if i >= 3 {
			if err := g.AddEdge(i-2, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n, root int
		wantErr bool
	}{
		{"ok", 5, 1, false},
		{"root last", 5, 5, false},
		{"single", 1, 1, false},
		{"zero size", 0, 1, true},
		{"root too small", 5, 0, true},
		{"root too large", 5, 6, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.root)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d,%d) err = %v, wantErr %v", tt.n, tt.root, err, tt.wantErr)
			}
		})
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		from, to int
	}{
		{"duplicate", 1, 2},
		{"self loop", 3, 3},
		{"into root", 2, 1},
		{"from out of range", 0, 2},
		{"to out of range", 2, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.from, tt.to); err == nil {
				t.Errorf("AddEdge(%d,%d) should fail", tt.from, tt.to)
			}
		})
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d after rejected inserts, want 1", g.NumEdges())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := emssGraph(t, 5)
	if got := g.OutDegree(1); got != 2 { // 1->2, 1->3
		t.Errorf("OutDegree(1) = %d, want 2", got)
	}
	if got := g.InDegree(5); got != 2 { // 3->5, 4->5
		t.Errorf("InDegree(5) = %d, want 2", got)
	}
	if got := g.OutNeighbors(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("OutNeighbors(1) = %v", got)
	}
	if got := g.InNeighbors(5); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("InNeighbors(5) = %v", got)
	}
	// Mutating the returned slice must not affect the graph.
	nbrs := g.OutNeighbors(1)
	nbrs[0] = 99
	if g.OutNeighbors(1)[0] != 2 {
		t.Error("OutNeighbors exposed internal state")
	}
}

func TestLabel(t *testing.T) {
	g := emssGraph(t, 5)
	l, err := g.Label(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l != -2 {
		t.Errorf("Label(1,3) = %d, want -2", l)
	}
	if _, err := g.Label(3, 1); err == nil {
		t.Error("Label of missing edge should fail")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	for _, g := range []*Graph{chainGraph(t, 10), emssGraph(t, 10)} {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate() = %v for well-formed graph", err)
		}
	}
}

func TestValidateDetectsUnreachable(t *testing.T) {
	g, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	err = g.Validate()
	if !errors.Is(err, ErrNotRooted) {
		t.Errorf("Validate() = %v, want ErrNotRooted", err)
	}
	un := g.Unreachable()
	if len(un) != 2 || un[0] != 3 || un[1] != 4 {
		t.Errorf("Unreachable() = %v, want [3 4]", un)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); !errors.Is(err, ErrCyclic) {
		t.Errorf("Validate() = %v, want ErrCyclic", err)
	}
	if _, err := g.TopoFromRoot(); !errors.Is(err, ErrCyclic) {
		t.Errorf("TopoFromRoot() = %v, want ErrCyclic", err)
	}
}

func TestTopoFromRootOrdering(t *testing.T) {
	g := emssGraph(t, 8)
	order, err := g.TopoFromRoot()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("topo order covers %d vertices, want 8", len(order))
	}
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := emssGraph(t, 6)
	a := g.Edges()
	b := g.Edges()
	if len(a) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, want %d", len(a), g.NumEdges())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Edges() order is not deterministic")
		}
	}
}

func TestClone(t *testing.T) {
	g := emssGraph(t, 6)
	c := g.Clone()
	if c.N() != g.N() || c.Root() != g.Root() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone differs structurally")
	}
	if err := c.AddEdge(1, 6); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 6) {
		t.Error("mutating clone affected original")
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	g, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge on invalid edge should panic")
		}
	}()
	g.MustAddEdge(2, 2)
}

func TestWriteDOT(t *testing.T) {
	g := chainGraph(t, 3)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "rohatgi"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "doublecircle", "P1 -> P2", "P2 -> P3", `label="-1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "dependence_graph") {
		t.Error("empty name should default")
	}
}

// Property: random DAGs built with only forward edges (i < j) always
// validate as acyclic, and topological order includes exactly the
// root-reachable set.
func TestForwardEdgeGraphsAcyclicProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%20) + 2
		rng := stats.NewRNG(seed)
		g, err := New(n, 1)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Bernoulli(0.3) {
					if err := g.AddEdge(i, j); err != nil {
						return false
					}
				}
			}
		}
		if err := g.checkAcyclic(); err != nil {
			return false
		}
		order, err := g.TopoFromRoot()
		if err != nil {
			return false
		}
		return len(order) == n-len(g.Unreachable())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
