package depgraph

import (
	"fmt"
	"math"
)

// ShortestPathLengths returns, for each vertex, the number of *interior*
// vertices on the shortest path from the root (excluding both the root and
// the target), or -1 for unreachable vertices. This is the min|θ_1(i)| of
// Equation (1): the fewest packets whose survival suffices to authenticate
// P_i, given that P_sign and P_i themselves are present.
func (g *Graph) ShortestPathLengths() []int {
	dist := make([]int, g.n+1)
	for i := range dist {
		dist[i] = -1
	}
	dist[g.root] = 0
	queue := []int{g.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.out[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	// dist counts edges; interior vertices on the path = edges - 1.
	for v := 1; v <= g.n; v++ {
		if v == g.root {
			dist[v] = 0
			continue
		}
		if dist[v] > 0 {
			dist[v]--
		}
	}
	return dist
}

// PathEnumeration is the result of enumerating root->target paths.
type PathEnumeration struct {
	// Paths lists each path as its sequence of vertices from root to
	// target inclusive.
	Paths [][]int
	// Complete is true when every path was enumerated (the limit was not
	// hit); only then are the Equation (1) bounds derived from this
	// enumeration sound.
	Complete bool
}

// EnumeratePaths lists up to limit distinct simple paths from the root to
// target by depth-first search. Dependence graphs are DAGs, so every path
// is simple; the limit guards against the exponential path counts of
// highly redundant topologies.
func (g *Graph) EnumeratePaths(target, limit int) (PathEnumeration, error) {
	if target < 1 || target > g.n {
		return PathEnumeration{}, fmt.Errorf("depgraph: target %d out of [1,%d]", target, g.n)
	}
	if limit <= 0 {
		return PathEnumeration{}, fmt.Errorf("depgraph: path limit %d must be positive", limit)
	}
	if err := g.checkAcyclic(); err != nil {
		return PathEnumeration{}, err
	}
	// Prune vertices that cannot reach the target.
	canReach := make([]bool, g.n+1)
	canReach[target] = true
	queue := []int{target}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.in[v] {
			if !canReach[u] {
				canReach[u] = true
				queue = append(queue, u)
			}
		}
	}
	enum := PathEnumeration{Complete: true}
	if !canReach[g.root] {
		return enum, nil
	}
	var path []int
	var dfs func(v int)
	dfs = func(v int) {
		if len(enum.Paths) >= limit {
			enum.Complete = false
			return
		}
		path = append(path, v)
		defer func() { path = path[:len(path)-1] }()
		if v == target {
			enum.Paths = append(enum.Paths, append([]int(nil), path...))
			return
		}
		for _, w := range g.out[v] {
			if canReach[w] {
				dfs(w)
			}
		}
	}
	dfs(g.root)
	return enum, nil
}

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths from the root to target (by Menger's theorem, the
// minimum number of interior packets whose loss disconnects P_i from
// P_sign). It measures the "degree of diversity" the paper identifies as
// driving loss tolerance. It returns 0 when target is unreachable and a
// very large count is capped by in-degree anyway.
func (g *Graph) VertexDisjointPaths(target int) (int, error) {
	if target < 1 || target > g.n {
		return 0, fmt.Errorf("depgraph: target %d out of [1,%d]", target, g.n)
	}
	if target == g.root {
		return 0, nil
	}
	// Max-flow with unit vertex capacities via vertex splitting:
	// node v becomes v_in (2v) and v_out (2v+1) joined by a capacity-1
	// arc; each edge (u,w) becomes u_out -> w_in with capacity 1. Root
	// and target have unbounded vertex capacity.
	nodes := 2 * (g.n + 1)
	capacity := make(map[[2]int]int)
	adj := make([][]int, nodes)
	addArc := func(a, b, c int) {
		if _, ok := capacity[[2]int{a, b}]; !ok {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		capacity[[2]int{a, b}] += c
	}
	const inf = 1 << 30
	for v := 1; v <= g.n; v++ {
		c := 1
		if v == g.root || v == target {
			c = inf
		}
		addArc(2*v, 2*v+1, c)
		for _, w := range g.out[v] {
			addArc(2*v+1, 2*w, 1)
		}
	}
	source, sink := 2*g.root, 2*target+1
	flow := 0
	for {
		// BFS for an augmenting path.
		parent := make([]int, nodes)
		for i := range parent {
			parent[i] = -1
		}
		parent[source] = source
		queue := []int{source}
		for len(queue) > 0 && parent[sink] == -1 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if parent[w] == -1 && capacity[[2]int{v, w}] > 0 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		if parent[sink] == -1 {
			break
		}
		// Unit capacities: each augmenting path carries 1.
		for v := sink; v != source; v = parent[v] {
			u := parent[v]
			capacity[[2]int{u, v}]--
			capacity[[2]int{v, u}]++
		}
		flow++
		if flow > g.n {
			return 0, fmt.Errorf("depgraph: max-flow exceeded vertex count; internal error")
		}
	}
	return flow, nil
}

// LambdaBounds holds the Equation (1) bounds on λ_i = Pr{some path from
// P_sign to P_i survives}.
type LambdaBounds struct {
	Lower float64 // worst-case topology: paths maximally overlapping
	Upper float64 // best-case topology: paths disjoint (independent)
	Exact bool    // true when derived from a complete path enumeration
}

// AuthProbBounds evaluates Equation (1) for target under i.i.d. loss with
// probability p, using path enumeration capped at pathLimit. With a
// complete enumeration:
//
//	1 - Pr{S(θ_1)}  <=  λ_i  <=  1 - Π_x Pr{S(θ_x)}
//
// where Pr{S(θ)} = 1 - (1-p)^|θ| is the probability that the path with
// interior-vertex set θ is broken, and θ_1 is the shortest path. When the
// enumeration is truncated the upper bound is computed from the enumerated
// subset and flagged as inexact.
func (g *Graph) AuthProbBounds(target int, p float64, pathLimit int) (LambdaBounds, error) {
	if p < 0 || p > 1 {
		return LambdaBounds{}, fmt.Errorf("depgraph: loss probability %v out of [0,1]", p)
	}
	enum, err := g.EnumeratePaths(target, pathLimit)
	if err != nil {
		return LambdaBounds{}, err
	}
	if len(enum.Paths) == 0 {
		return LambdaBounds{Lower: 0, Upper: 0, Exact: enum.Complete}, nil
	}
	shortest := math.MaxInt
	prodBroken := 1.0
	for _, path := range enum.Paths {
		interior := len(path) - 2
		if interior < 0 {
			interior = 0
		}
		if interior < shortest {
			shortest = interior
		}
		pathAlive := math.Pow(1-p, float64(interior))
		prodBroken *= 1 - pathAlive
	}
	return LambdaBounds{
		Lower: math.Pow(1-p, float64(shortest)),
		Upper: 1 - prodBroken,
		Exact: enum.Complete,
	}, nil
}
