package depgraph

import (
	"fmt"
	"math"

	"mcauth/internal/parallel"
	"mcauth/internal/stats"
)

// ReceivePattern samples which packets of a block of size n arrive at a
// receiver. The returned slice is indexed 1..n (index 0 unused); true means
// received. Implementations live in internal/loss; BernoulliPattern below
// covers the paper's i.i.d. model.
type ReceivePattern func(rng *stats.RNG, n int) []bool

// ReceivePatternInto is the scratch-reuse form of ReceivePattern: it fills
// received[1..len(received)-1] in place instead of allocating a fresh slice
// per trial. It is the form the Monte-Carlo hot loop consumes; a pattern
// that draws the same RNG values as its allocating counterpart produces
// bit-identical estimates through either entry point.
type ReceivePatternInto func(rng *stats.RNG, received []bool) error

// Into adapts an allocating pattern to the scratch interface. The adapter
// still allocates one slice per call; hot paths should prefer a native
// Into pattern (BernoulliPatternInto, loss.PatternInto).
func (p ReceivePattern) Into() ReceivePatternInto {
	return func(rng *stats.RNG, received []bool) error {
		n := len(received) - 1
		sampled := p(rng, n)
		if len(sampled) != n+1 {
			return fmt.Errorf("depgraph: pattern returned %d flags, want %d", len(sampled), n+1)
		}
		copy(received, sampled)
		return nil
	}
}

// BernoulliPatternInto fills the pattern where each packet is lost
// independently with probability p (the paper's Section 4.1 network model)
// without allocating.
func BernoulliPatternInto(p float64) ReceivePatternInto {
	return func(rng *stats.RNG, received []bool) error {
		for i := 1; i < len(received); i++ {
			received[i] = !rng.Bernoulli(p)
		}
		return nil
	}
}

// BernoulliPattern is the allocating form of BernoulliPatternInto; both
// draw the same RNG stream.
func BernoulliPattern(p float64) ReceivePattern {
	into := BernoulliPatternInto(p)
	return func(rng *stats.RNG, n int) []bool {
		recv := make([]bool, n+1)
		_ = into(rng, recv) // never fails
		return recv
	}
}

// HeterogeneousPatternInto fills a pattern with per-packet loss
// probabilities probs (index 0 unused) without allocating.
func HeterogeneousPatternInto(probs []float64) ReceivePatternInto {
	return func(rng *stats.RNG, received []bool) error {
		for i := 1; i < len(received) && i < len(probs); i++ {
			received[i] = !rng.Bernoulli(probs[i])
		}
		return nil
	}
}

// HeterogeneousPattern is the allocating form of HeterogeneousPatternInto;
// both draw the same RNG stream.
func HeterogeneousPattern(probs []float64) ReceivePattern {
	into := HeterogeneousPatternInto(probs)
	return func(rng *stats.RNG, n int) []bool {
		recv := make([]bool, n+1)
		_ = into(rng, recv) // never fails
		return recv
	}
}

// VerifiableSet computes, for a given loss pattern, exactly which received
// packets are verifiable: P_i is verifiable iff it is received and there is
// a path from P_sign to P_i whose vertices are all received (condition (1)
// of the paper, with condition (2) holding identically for hash-chained
// schemes). The root is treated as received regardless of the pattern,
// matching the paper's standing assumption that P_sign always arrives.
//
// received must have length n+1 (index 0 ignored).
func (g *Graph) VerifiableSet(received []bool) ([]bool, error) {
	verifiable := make([]bool, g.n+1)
	if _, err := g.VerifiableSetInto(received, verifiable, nil); err != nil {
		return nil, err
	}
	return verifiable, nil
}

// VerifiableSetInto is the scratch-reuse form of VerifiableSet: it writes
// the result into verifiable (length n+1, overwritten) and uses queue as
// BFS scratch, returning the possibly-grown queue for the next call. A
// Monte-Carlo trial loop that reuses both performs zero allocations per
// trial once the scratch has reached steady-state capacity.
func (g *Graph) VerifiableSetInto(received, verifiable []bool, queue []int) ([]int, error) {
	if len(received) != g.n+1 {
		return queue, fmt.Errorf("depgraph: received slice length %d, want %d", len(received), g.n+1)
	}
	if len(verifiable) != g.n+1 {
		return queue, fmt.Errorf("depgraph: verifiable slice length %d, want %d", len(verifiable), g.n+1)
	}
	clear(verifiable)
	verifiable[g.root] = true
	queue = append(queue[:0], g.root)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.out[v] {
			if verifiable[w] || !received[w] {
				continue
			}
			verifiable[w] = true
			queue = append(queue, w)
		}
	}
	return queue, nil
}

// AuthResult reports estimated (or exact) per-packet authentication
// probabilities q_i = Pr{P_i verifiable | P_i received} and the block
// minimum q_min over non-root packets.
type AuthResult struct {
	Q    []float64 // Q[i] for packets 1..n; Q[0] unused (set to NaN)
	QMin float64
	// ReceivedCounts and VerifiedCounts are populated by Monte-Carlo
	// estimation (zero for exact computation) so callers can build
	// confidence intervals.
	ReceivedCounts []int
	VerifiedCounts []int
}

// MCOptions tunes the Monte-Carlo execution plan.
//
// The trial budget is split into fixed shards of ShardSize trials; each
// shard draws an independent RNG stream derived from the caller's
// generator by Split, in shard order. Because the shard plan depends only
// on (trials, ShardSize) — never on Workers — and per-packet counts are
// additive, the merged AuthResult is bit-identical for a given seed and
// shard plan regardless of how many workers ran the shards.
type MCOptions struct {
	// Workers bounds the worker pool; <= 0 selects
	// parallel.DefaultWorkers (GOMAXPROCS).
	Workers int
	// ShardSize is the number of trials per shard; <= 0 selects
	// DefaultMCShardSize. Changing it changes the sample streams (and so
	// the estimate), exactly like changing the seed would.
	ShardSize int
}

// DefaultMCShardSize is the default trials-per-shard: small enough that
// typical trial budgets (10^3..10^5) spread across every core, large
// enough that per-shard scratch setup is amortized to noise.
const DefaultMCShardSize = 512

// MonteCarloAuthProb estimates q_i for every packet by sampling trials loss
// patterns from pattern and propagating verifiability through the graph.
// Trials run on the shared worker pool (see MCOptions); the result is
// deterministic for a given rng state and trial count.
func (g *Graph) MonteCarloAuthProb(pattern ReceivePattern, trials int, rng *stats.RNG) (AuthResult, error) {
	if pattern == nil {
		return AuthResult{}, fmt.Errorf("depgraph: nil receive pattern")
	}
	return g.MonteCarloAuthProbInto(pattern.Into(), trials, rng, MCOptions{})
}

// mcShard is one unit of the deterministic execution plan: an independent
// RNG stream and a trial count.
type mcShard struct {
	rng    *stats.RNG
	trials int
}

// mcCounts are one shard's per-packet tallies.
type mcCounts struct {
	recv []int
	ver  []int
}

// MonteCarloAuthProbInto is MonteCarloAuthProb with a scratch-reuse
// pattern: each worker keeps one received/verifiable/queue scratch set for
// its whole shard, so a native Into pattern makes the trial loop
// allocation-free.
func (g *Graph) MonteCarloAuthProbInto(pattern ReceivePatternInto, trials int, rng *stats.RNG, opts MCOptions) (AuthResult, error) {
	if trials <= 0 {
		return AuthResult{}, fmt.Errorf("depgraph: trials %d must be positive", trials)
	}
	if pattern == nil {
		return AuthResult{}, fmt.Errorf("depgraph: nil receive pattern")
	}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultMCShardSize
	}
	// Build the shard plan up front: all use of the caller's rng happens
	// here, sequentially, so the caller's generator advances identically
	// for any worker count.
	shards := make([]mcShard, 0, (trials+shardSize-1)/shardSize)
	for remaining := trials; remaining > 0; remaining -= shardSize {
		shards = append(shards, mcShard{rng: rng.Split(), trials: min(shardSize, remaining)})
	}
	counts, err := parallel.Map(opts.Workers, shards, func(_ int, sh mcShard) (mcCounts, error) {
		c := mcCounts{recv: make([]int, g.n+1), ver: make([]int, g.n+1)}
		received := make([]bool, g.n+1)
		verifiable := make([]bool, g.n+1)
		queue := make([]int, 0, g.n)
		for t := 0; t < sh.trials; t++ {
			if err := pattern(sh.rng, received); err != nil {
				return mcCounts{}, err
			}
			received[g.root] = true
			queue, _ = g.VerifiableSetInto(received, verifiable, queue)
			for i := 1; i <= g.n; i++ {
				if received[i] {
					c.recv[i]++
					if verifiable[i] {
						c.ver[i]++
					}
				}
			}
		}
		return c, nil
	})
	if err != nil {
		return AuthResult{}, err
	}
	// Merge in shard order. Integer addition is commutative, so any order
	// gives the same counts; fixed order keeps the code auditable.
	recvCount := make([]int, g.n+1)
	verCount := make([]int, g.n+1)
	for _, c := range counts {
		for i := 1; i <= g.n; i++ {
			recvCount[i] += c.recv[i]
			verCount[i] += c.ver[i]
		}
	}
	res := AuthResult{
		Q:              make([]float64, g.n+1),
		QMin:           1,
		ReceivedCounts: recvCount,
		VerifiedCounts: verCount,
	}
	res.Q[0] = math.NaN()
	for i := 1; i <= g.n; i++ {
		if recvCount[i] == 0 {
			// Never received in any trial; no conditional estimate.
			res.Q[i] = math.NaN()
			continue
		}
		res.Q[i] = float64(verCount[i]) / float64(recvCount[i])
		if res.Q[i] < res.QMin {
			res.QMin = res.Q[i]
		}
	}
	return res, nil
}

// Spread summarizes the distribution of per-packet authentication
// probabilities. The paper points out that q_i "may vary widely from
// packet to packet" depending on where hashes are placed, and that designs
// should minimize this variance by giving far-from-signature packets more
// paths; Spread makes that design criterion measurable.
func (r AuthResult) Spread() (stats.Summary, error) {
	var qs []float64
	for i := 1; i < len(r.Q); i++ {
		if !math.IsNaN(r.Q[i]) {
			qs = append(qs, r.Q[i])
		}
	}
	return stats.Summarize(qs)
}

// maxExactN bounds the block size for exact enumeration: 2^(n-1) patterns.
const maxExactN = 22

// ExactAuthProb computes q_i exactly for small blocks under i.i.d. loss
// with probability p, by enumerating all loss patterns of the non-root
// packets. It is the ground truth the analytic recurrences and the
// Monte-Carlo estimator are tested against. n must be <= 22.
func (g *Graph) ExactAuthProb(p float64) (AuthResult, error) {
	probs := make([]float64, g.n+1)
	for i := range probs {
		probs[i] = p
	}
	return g.ExactAuthProbVector(probs)
}

// ExactAuthProbVector computes q_i exactly under *heterogeneous* loss:
// packet i is lost independently with probability probs[i] (index 0
// unused). This models position-dependent loss — e.g. congestion building
// over a block, or priority-dropped packets. n must be <= 22.
func (g *Graph) ExactAuthProbVector(probs []float64) (AuthResult, error) {
	if g.n > maxExactN {
		return AuthResult{}, fmt.Errorf("depgraph: exact enumeration limited to n <= %d, got %d", maxExactN, g.n)
	}
	if len(probs) != g.n+1 {
		return AuthResult{}, fmt.Errorf("depgraph: %d loss probabilities, want %d", len(probs), g.n+1)
	}
	for i := 1; i <= g.n; i++ {
		if probs[i] < 0 || probs[i] > 1 {
			return AuthResult{}, fmt.Errorf("depgraph: loss probability[%d] = %v out of [0,1]", i, probs[i])
		}
	}
	// Vertices other than the root, in fixed order, indexed by bit.
	others := make([]int, 0, g.n-1)
	for v := 1; v <= g.n; v++ {
		if v != g.root {
			others = append(others, v)
		}
	}
	probReceived := make([]float64, g.n+1)   // sum of pattern probs where i received
	probVerifiable := make([]float64, g.n+1) // ... and verifiable
	received := make([]bool, g.n+1)
	verifiable := make([]bool, g.n+1)
	queue := make([]int, 0, g.n)
	var err error
	patterns := 1 << len(others)
	for mask := 0; mask < patterns; mask++ {
		prob := 1.0
		for b, v := range others {
			if mask&(1<<b) != 0 {
				received[v] = true
				prob *= 1 - probs[v]
			} else {
				received[v] = false
				prob *= probs[v]
			}
		}
		received[g.root] = true
		queue, err = g.VerifiableSetInto(received, verifiable, queue)
		if err != nil {
			return AuthResult{}, err
		}
		for i := 1; i <= g.n; i++ {
			if received[i] {
				probReceived[i] += prob
				if verifiable[i] {
					probVerifiable[i] += prob
				}
			}
		}
	}
	res := AuthResult{Q: make([]float64, g.n+1), QMin: 1}
	res.Q[0] = math.NaN()
	for i := 1; i <= g.n; i++ {
		if probReceived[i] == 0 {
			// p == 1 and i is not the root: conditioning event has
			// probability zero; by convention report q_i = 0 (the
			// packet can never be verified).
			res.Q[i] = 0
		} else {
			res.Q[i] = probVerifiable[i] / probReceived[i]
		}
		if res.Q[i] < res.QMin {
			res.QMin = res.Q[i]
		}
	}
	return res, nil
}
