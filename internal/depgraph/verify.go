package depgraph

import (
	"fmt"
	"math"

	"mcauth/internal/stats"
)

// ReceivePattern samples which packets of a block of size n arrive at a
// receiver. The returned slice is indexed 1..n (index 0 unused); true means
// received. Implementations live in internal/loss; BernoulliPattern below
// covers the paper's i.i.d. model.
type ReceivePattern func(rng *stats.RNG, n int) []bool

// BernoulliPattern returns a ReceivePattern where each packet is lost
// independently with probability p (the paper's Section 4.1 network model).
func BernoulliPattern(p float64) ReceivePattern {
	return func(rng *stats.RNG, n int) []bool {
		recv := make([]bool, n+1)
		for i := 1; i <= n; i++ {
			recv[i] = !rng.Bernoulli(p)
		}
		return recv
	}
}

// HeterogeneousPattern returns a ReceivePattern with per-packet loss
// probabilities probs (index 0 unused, length n+1 at sample time).
func HeterogeneousPattern(probs []float64) ReceivePattern {
	return func(rng *stats.RNG, n int) []bool {
		recv := make([]bool, n+1)
		for i := 1; i <= n && i < len(probs); i++ {
			recv[i] = !rng.Bernoulli(probs[i])
		}
		return recv
	}
}

// VerifiableSet computes, for a given loss pattern, exactly which received
// packets are verifiable: P_i is verifiable iff it is received and there is
// a path from P_sign to P_i whose vertices are all received (condition (1)
// of the paper, with condition (2) holding identically for hash-chained
// schemes). The root is treated as received regardless of the pattern,
// matching the paper's standing assumption that P_sign always arrives.
//
// received must have length n+1 (index 0 ignored).
func (g *Graph) VerifiableSet(received []bool) ([]bool, error) {
	if len(received) != g.n+1 {
		return nil, fmt.Errorf("depgraph: received slice length %d, want %d", len(received), g.n+1)
	}
	verifiable := make([]bool, g.n+1)
	verifiable[g.root] = true
	queue := []int{g.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.out[v] {
			if verifiable[w] || !received[w] {
				continue
			}
			verifiable[w] = true
			queue = append(queue, w)
		}
	}
	return verifiable, nil
}

// AuthResult reports estimated (or exact) per-packet authentication
// probabilities q_i = Pr{P_i verifiable | P_i received} and the block
// minimum q_min over non-root packets.
type AuthResult struct {
	Q    []float64 // Q[i] for packets 1..n; Q[0] unused (set to NaN)
	QMin float64
	// ReceivedCounts and VerifiedCounts are populated by Monte-Carlo
	// estimation (zero for exact computation) so callers can build
	// confidence intervals.
	ReceivedCounts []int
	VerifiedCounts []int
}

// MonteCarloAuthProb estimates q_i for every packet by sampling trials loss
// patterns from pattern and propagating verifiability through the graph.
func (g *Graph) MonteCarloAuthProb(pattern ReceivePattern, trials int, rng *stats.RNG) (AuthResult, error) {
	if trials <= 0 {
		return AuthResult{}, fmt.Errorf("depgraph: trials %d must be positive", trials)
	}
	if pattern == nil {
		return AuthResult{}, fmt.Errorf("depgraph: nil receive pattern")
	}
	recvCount := make([]int, g.n+1)
	verCount := make([]int, g.n+1)
	for t := 0; t < trials; t++ {
		received := pattern(rng, g.n)
		if len(received) != g.n+1 {
			return AuthResult{}, fmt.Errorf("depgraph: pattern returned %d flags, want %d", len(received), g.n+1)
		}
		received[g.root] = true
		verifiable, err := g.VerifiableSet(received)
		if err != nil {
			return AuthResult{}, err
		}
		for i := 1; i <= g.n; i++ {
			if received[i] {
				recvCount[i]++
				if verifiable[i] {
					verCount[i]++
				}
			}
		}
	}
	res := AuthResult{
		Q:              make([]float64, g.n+1),
		QMin:           1,
		ReceivedCounts: recvCount,
		VerifiedCounts: verCount,
	}
	res.Q[0] = math.NaN()
	for i := 1; i <= g.n; i++ {
		if recvCount[i] == 0 {
			// Never received in any trial; no conditional estimate.
			res.Q[i] = math.NaN()
			continue
		}
		res.Q[i] = float64(verCount[i]) / float64(recvCount[i])
		if res.Q[i] < res.QMin {
			res.QMin = res.Q[i]
		}
	}
	return res, nil
}

// Spread summarizes the distribution of per-packet authentication
// probabilities. The paper points out that q_i "may vary widely from
// packet to packet" depending on where hashes are placed, and that designs
// should minimize this variance by giving far-from-signature packets more
// paths; Spread makes that design criterion measurable.
func (r AuthResult) Spread() (stats.Summary, error) {
	var qs []float64
	for i := 1; i < len(r.Q); i++ {
		if !math.IsNaN(r.Q[i]) {
			qs = append(qs, r.Q[i])
		}
	}
	return stats.Summarize(qs)
}

// maxExactN bounds the block size for exact enumeration: 2^(n-1) patterns.
const maxExactN = 22

// ExactAuthProb computes q_i exactly for small blocks under i.i.d. loss
// with probability p, by enumerating all loss patterns of the non-root
// packets. It is the ground truth the analytic recurrences and the
// Monte-Carlo estimator are tested against. n must be <= 22.
func (g *Graph) ExactAuthProb(p float64) (AuthResult, error) {
	probs := make([]float64, g.n+1)
	for i := range probs {
		probs[i] = p
	}
	return g.ExactAuthProbVector(probs)
}

// ExactAuthProbVector computes q_i exactly under *heterogeneous* loss:
// packet i is lost independently with probability probs[i] (index 0
// unused). This models position-dependent loss — e.g. congestion building
// over a block, or priority-dropped packets. n must be <= 22.
func (g *Graph) ExactAuthProbVector(probs []float64) (AuthResult, error) {
	if g.n > maxExactN {
		return AuthResult{}, fmt.Errorf("depgraph: exact enumeration limited to n <= %d, got %d", maxExactN, g.n)
	}
	if len(probs) != g.n+1 {
		return AuthResult{}, fmt.Errorf("depgraph: %d loss probabilities, want %d", len(probs), g.n+1)
	}
	for i := 1; i <= g.n; i++ {
		if probs[i] < 0 || probs[i] > 1 {
			return AuthResult{}, fmt.Errorf("depgraph: loss probability[%d] = %v out of [0,1]", i, probs[i])
		}
	}
	// Vertices other than the root, in fixed order, indexed by bit.
	others := make([]int, 0, g.n-1)
	for v := 1; v <= g.n; v++ {
		if v != g.root {
			others = append(others, v)
		}
	}
	probReceived := make([]float64, g.n+1)   // sum of pattern probs where i received
	probVerifiable := make([]float64, g.n+1) // ... and verifiable
	received := make([]bool, g.n+1)
	patterns := 1 << len(others)
	for mask := 0; mask < patterns; mask++ {
		prob := 1.0
		for b, v := range others {
			if mask&(1<<b) != 0 {
				received[v] = true
				prob *= 1 - probs[v]
			} else {
				received[v] = false
				prob *= probs[v]
			}
		}
		received[g.root] = true
		verifiable, err := g.VerifiableSet(received)
		if err != nil {
			return AuthResult{}, err
		}
		for i := 1; i <= g.n; i++ {
			if received[i] {
				probReceived[i] += prob
				if verifiable[i] {
					probVerifiable[i] += prob
				}
			}
		}
	}
	res := AuthResult{Q: make([]float64, g.n+1), QMin: 1}
	res.Q[0] = math.NaN()
	for i := 1; i <= g.n; i++ {
		if probReceived[i] == 0 {
			// p == 1 and i is not the root: conditioning event has
			// probability zero; by convention report q_i = 0 (the
			// packet can never be verified).
			res.Q[i] = 0
		} else {
			res.Q[i] = probVerifiable[i] / probReceived[i]
		}
		if res.Q[i] < res.QMin {
			res.QMin = res.Q[i]
		}
	}
	return res, nil
}
