package depgraph

import (
	"math"
	"testing"
	"testing/quick"

	"mcauth/internal/stats"
)

func TestVerifiableSetChain(t *testing.T) {
	g := chainGraph(t, 5)
	received := []bool{false, true, true, false, true, true}
	verifiable, err := g.VerifiableSet(received)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false, false, false}
	for i := 1; i <= 5; i++ {
		if verifiable[i] != want[i] {
			t.Errorf("verifiable[%d] = %v, want %v (chain broken at 3)", i, verifiable[i], want[i])
		}
	}
}

func TestVerifiableSetRedundantPath(t *testing.T) {
	g := emssGraph(t, 5)
	// Losing P_2 does not break P_3..P_5 thanks to the skip edges.
	received := []bool{false, true, false, true, true, true}
	verifiable, err := g.VerifiableSet(received)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3, 4, 5} {
		if !verifiable[i] {
			t.Errorf("verifiable[%d] = false, want true", i)
		}
	}
	if verifiable[2] {
		t.Error("lost packet reported verifiable")
	}
}

func TestVerifiableSetRootForcedReceived(t *testing.T) {
	g := chainGraph(t, 3)
	received := []bool{false, false, true, true}
	verifiable, err := g.VerifiableSet(received)
	if err != nil {
		t.Fatal(err)
	}
	// Root is always treated as received (paper assumption).
	if !verifiable[1] || !verifiable[2] || !verifiable[3] {
		t.Errorf("verifiable = %v, want all true", verifiable[1:])
	}
}

func TestVerifiableSetLengthCheck(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := g.VerifiableSet([]bool{true, true}); err == nil {
		t.Error("wrong-length received slice should fail")
	}
}

func TestExactAuthProbChainMatchesClosedForm(t *testing.T) {
	// Rohatgi closed form: q_i = (1-p)^(i-2) for i >= 2, q_min = (1-p)^(n-2).
	n := 8
	g := chainGraph(t, n)
	for _, p := range []float64{0.1, 0.3, 0.5} {
		res, err := g.ExactAuthProb(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 2; i <= n; i++ {
			want := math.Pow(1-p, float64(i-2))
			if math.Abs(res.Q[i]-want) > 1e-12 {
				t.Errorf("p=%v: Q[%d] = %v, want %v", p, i, res.Q[i], want)
			}
		}
		wantMin := math.Pow(1-p, float64(n-2))
		if math.Abs(res.QMin-wantMin) > 1e-12 {
			t.Errorf("p=%v: QMin = %v, want %v", p, res.QMin, wantMin)
		}
	}
}

func TestExactAuthProbEdgeCases(t *testing.T) {
	g := chainGraph(t, 5)
	res, err := g.ExactAuthProb(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QMin != 1 {
		t.Errorf("p=0: QMin = %v, want 1", res.QMin)
	}
	res, err = g.ExactAuthProb(1)
	if err != nil {
		t.Fatal(err)
	}
	// With total loss the conditioning event "P_i received" has
	// probability zero for every non-root packet; the documented
	// convention reports q_i = 0.
	for i := 2; i <= 5; i++ {
		if res.Q[i] != 0 {
			t.Errorf("p=1: Q[%d] = %v, want 0 by convention", i, res.Q[i])
		}
	}
	if res.Q[1] != 1 {
		t.Errorf("p=1: root Q = %v, want 1", res.Q[1])
	}
}

func TestExactAuthProbValidation(t *testing.T) {
	g := chainGraph(t, 5)
	if _, err := g.ExactAuthProb(-0.1); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := g.ExactAuthProb(1.1); err == nil {
		t.Error("p > 1 should fail")
	}
	big := chainGraph(t, 30)
	if _, err := big.ExactAuthProb(0.1); err == nil {
		t.Error("n > exact limit should fail")
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	g := emssGraph(t, 12)
	p := 0.3
	exact, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4242)
	mc, err := g.MonteCarloAuthProb(BernoulliPattern(p), 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= g.N(); i++ {
		iv, err := stats.WilsonInterval(mc.VerifiedCounts[i], mc.ReceivedCounts[i], 0.9999)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact.Q[i]) {
			t.Errorf("vertex %d: exact %v outside MC interval %+v (mc %v)", i, exact.Q[i], iv, mc.Q[i])
		}
	}
	if math.Abs(mc.QMin-exact.QMin) > 0.02 {
		t.Errorf("QMin mc %v vs exact %v", mc.QMin, exact.QMin)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := chainGraph(t, 4)
	rng := stats.NewRNG(1)
	if _, err := g.MonteCarloAuthProb(BernoulliPattern(0.1), 0, rng); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := g.MonteCarloAuthProb(nil, 10, rng); err == nil {
		t.Error("nil pattern should fail")
	}
	bad := func(rng *stats.RNG, n int) []bool { return []bool{true} }
	if _, err := g.MonteCarloAuthProb(bad, 10, rng); err == nil {
		t.Error("wrong-length pattern should fail")
	}
}

func TestBernoulliPatternRates(t *testing.T) {
	rng := stats.NewRNG(5)
	pattern := BernoulliPattern(0.25)
	lost := 0
	const trials, n = 2000, 50
	for i := 0; i < trials; i++ {
		recv := pattern(rng, n)
		for j := 1; j <= n; j++ {
			if !recv[j] {
				lost++
			}
		}
	}
	rate := float64(lost) / float64(trials*n)
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("loss rate %v, want ~0.25", rate)
	}
}

// Property: verifiability is monotone — receiving strictly more packets
// never makes a previously verifiable packet unverifiable.
func TestVerifiabilityMonotoneProperty(t *testing.T) {
	g := emssGraph(t, 10)
	f := func(maskA, extra uint16) bool {
		recvA := make([]bool, 11)
		recvB := make([]bool, 11)
		for i := 1; i <= 10; i++ {
			recvA[i] = maskA&(1<<(i-1)) != 0
			recvB[i] = recvA[i] || extra&(1<<(i-1)) != 0
		}
		va, err := g.VerifiableSet(recvA)
		if err != nil {
			return false
		}
		vb, err := g.VerifiableSet(recvB)
		if err != nil {
			return false
		}
		for i := 1; i <= 10; i++ {
			if va[i] && !vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a verifiable packet is always received (except the root, which
// is assumed received) and the root is always verifiable.
func TestVerifiableSubsetOfReceivedProperty(t *testing.T) {
	g := emssGraph(t, 10)
	f := func(mask uint16) bool {
		recv := make([]bool, 11)
		for i := 1; i <= 10; i++ {
			recv[i] = mask&(1<<(i-1)) != 0
		}
		recv[g.Root()] = true
		v, err := g.VerifiableSet(recv)
		if err != nil {
			return false
		}
		if !v[g.Root()] {
			return false
		}
		for i := 1; i <= 10; i++ {
			if v[i] && !recv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
