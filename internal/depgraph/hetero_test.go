package depgraph

import (
	"math"
	"testing"

	"mcauth/internal/stats"
)

func TestExactVectorUniformMatchesScalar(t *testing.T) {
	g := emssGraph(t, 10)
	p := 0.3
	scalar, err := g.ExactAuthProb(p)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, 11)
	for i := range probs {
		probs[i] = p
	}
	vector, err := g.ExactAuthProbVector(probs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if math.Abs(scalar.Q[i]-vector.Q[i]) > 1e-12 {
			t.Errorf("Q[%d]: scalar %v vs vector %v", i, scalar.Q[i], vector.Q[i])
		}
	}
}

func TestExactVectorChainClosedForm(t *testing.T) {
	// Chain with heterogeneous losses: q_i = prod of (1-p_j) over the
	// interior packets j = 2..i-1.
	g := chainGraph(t, 6)
	probs := []float64{0, 0, 0.1, 0.2, 0.3, 0.4, 0.5}
	res, err := g.ExactAuthProbVector(probs)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0
	for i := 2; i <= 6; i++ {
		if math.Abs(res.Q[i]-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, res.Q[i], want)
		}
		want *= 1 - probs[i]
	}
}

func TestExactVectorLossyMiddlePacketDominates(t *testing.T) {
	// Making a single cut vertex lossy must depress everything behind
	// it.
	g := chainGraph(t, 6)
	probs := []float64{0, 0, 0, 0.9, 0, 0, 0}
	res, err := g.ExactAuthProbVector(probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[2] != 1 || res.Q[3] != 1 {
		t.Error("packets before the lossy cut should be unaffected")
	}
	for i := 4; i <= 6; i++ {
		if math.Abs(res.Q[i]-0.1) > 1e-12 {
			t.Errorf("Q[%d] = %v, want 0.1", i, res.Q[i])
		}
	}
}

func TestExactVectorValidation(t *testing.T) {
	g := chainGraph(t, 4)
	if _, err := g.ExactAuthProbVector([]float64{0, 0.1}); err == nil {
		t.Error("wrong length should fail")
	}
	if _, err := g.ExactAuthProbVector([]float64{0, 0.1, 1.5, 0.1, 0.1}); err == nil {
		t.Error("out-of-range probability should fail")
	}
}

func TestSpread(t *testing.T) {
	// A chain's q_i varies widely; a star's does not. The paper's
	// variance criterion must rank them accordingly.
	chain := chainGraph(t, 12)
	chainRes, err := chain.ExactAuthProb(0.3)
	if err != nil {
		t.Fatal(err)
	}
	chainSpread, err := chainRes.Spread()
	if err != nil {
		t.Fatal(err)
	}
	star, err := New(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 12; i++ {
		star.MustAddEdge(1, i)
	}
	starRes, err := star.ExactAuthProb(0.3)
	if err != nil {
		t.Fatal(err)
	}
	starSpread, err := starRes.Spread()
	if err != nil {
		t.Fatal(err)
	}
	if starSpread.Var != 0 {
		t.Errorf("star variance = %v, want 0", starSpread.Var)
	}
	if chainSpread.Var <= starSpread.Var {
		t.Errorf("chain variance %v should exceed star variance %v",
			chainSpread.Var, starSpread.Var)
	}
	if chainSpread.Min != chainRes.QMin {
		t.Errorf("Spread min %v != QMin %v", chainSpread.Min, chainRes.QMin)
	}
}

func TestHeterogeneousPatternMatchesExact(t *testing.T) {
	g := emssGraph(t, 10)
	probs := []float64{0, 0, 0.1, 0.2, 0.5, 0.1, 0.4, 0.3, 0.2, 0.1, 0.6}
	exact, err := g.ExactAuthProbVector(probs)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.MonteCarloAuthProb(HeterogeneousPattern(probs), 60000, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		iv, err := stats.WilsonInterval(mc.VerifiedCounts[i], mc.ReceivedCounts[i], 0.9999)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact.Q[i]) {
			t.Errorf("vertex %d: exact %v outside MC interval %+v", i, exact.Q[i], iv)
		}
	}
}
