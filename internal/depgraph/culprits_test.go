package depgraph

import (
	"math/rand"
	"slices"
	"testing"
)

// chain builds root=1 -> 2 -> ... -> n with optional extra edges.
func chain(t *testing.T, n int, extra [][2]int) *Graph {
	t.Helper()
	g, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	for _, e := range extra {
		g.MustAddEdge(e[0], e[1])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func recvPattern(n int, lost ...int) []bool {
	r := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		r[i] = true
	}
	for _, i := range lost {
		r[i] = false
	}
	return r
}

func TestFrontierCutHandCases(t *testing.T) {
	cases := []struct {
		name   string
		g      *Graph
		lost   []int
		target int
		want   []int
	}{
		{
			name:   "single gap in a chain",
			g:      chain(t, 5, nil),
			lost:   []int{3},
			target: 5,
			want:   []int{3},
		},
		{
			name: "two gaps, only the frontier one blamed",
			g:    chain(t, 6, nil),
			lost: []int{3, 5},
			// 5's predecessor 4 is not verifiable, so only 3 is on the
			// frontier: re-delivering 3 is the unique next step.
			target: 6,
			want:   []int{3},
		},
		{
			name: "redundant paths: both frontier losses blamed",
			g:    chain(t, 5, [][2]int{{1, 4}}),
			lost: []int{2, 4},
			// target 5 is fed via 1->2->3->4->5 and 1->4->5; both paths
			// are cut at their first lost vertex (2 and 4), and both
			// vertices have verifiable in-neighbors (1).
			target: 5,
			want:   []int{2, 4},
		},
		{
			name: "surviving alternate path: no culprits",
			g:    chain(t, 5, [][2]int{{1, 4}}),
			lost: []int{2},
			// 4 and 5 stay verifiable through the 1->4 edge.
			target: 5,
			want:   nil,
		},
		{
			name:   "lost target with verifiable predecessor blames itself",
			g:      chain(t, 4, nil),
			lost:   []int{3},
			target: 3,
			want:   []int{3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.g.FrontierCut(recvPattern(tc.g.N(), tc.lost...), tc.target)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, tc.want) {
				t.Errorf("FrontierCut = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFrontierCutRejectsBadInput(t *testing.T) {
	g := chain(t, 4, nil)
	if _, err := g.FrontierCut(make([]bool, 3), 2); err == nil {
		t.Error("short received slice accepted")
	}
	if _, err := g.FrontierCut(recvPattern(4), 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := g.FrontierCut(recvPattern(4), 5); err == nil {
		t.Error("target n+1 accepted")
	}
}

// randomDAG builds a validated dependence-graph over n packets: a random
// spanning chain from the root plus extra forward edges in a random
// topological order.
func randomDAG(t *testing.T, rng *rand.Rand, n int) *Graph {
	t.Helper()
	perm := rng.Perm(n) // perm[k]+1 is the k-th vertex in topo order
	g, err := New(n, perm[0]+1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < n; k++ {
		g.MustAddEdge(perm[rng.Intn(k)]+1, perm[k]+1)
	}
	for extra := 0; extra < 2*n; extra++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i >= j {
			continue
		}
		from, to := perm[i]+1, perm[j]+1
		if !g.HasEdge(from, to) {
			g.MustAddEdge(from, to)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// reaches reports whether a path from -> to exists in the full graph,
// optionally treating the vertices in banned as deleted.
func reaches(g *Graph, from, to int, banned []int) bool {
	blocked := make([]bool, g.N()+1)
	for _, b := range banned {
		blocked[b] = true
	}
	if blocked[from] || blocked[to] {
		return false
	}
	seen := make([]bool, g.N()+1)
	seen[from] = true
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == to {
			return true
		}
		for _, w := range g.OutNeighbors(v) {
			if !seen[w] && !blocked[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// TestFrontierCutProperties checks the two certificate properties on
// random graphs and loss patterns: the culprit set is a root->target cut,
// and re-delivering it makes every culprit verifiable.
func TestFrontierCutProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(24)
		g := randomDAG(t, rng, n)
		received := make([]bool, n+1)
		for i := 1; i <= n; i++ {
			received[i] = rng.Float64() > 0.35
		}
		received[g.Root()] = true
		f, err := g.NewCulpritFinder(received)
		if err != nil {
			t.Fatal(err)
		}
		for target := 1; target <= n; target++ {
			culprits, err := f.Culprits(target)
			if err != nil {
				t.Fatal(err)
			}
			if f.Verifiable(target) {
				if culprits != nil {
					t.Fatalf("trial %d: verifiable target %d got culprits %v", trial, target, culprits)
				}
				continue
			}
			// Non-verifiable in a validated graph: some loss is to blame.
			if len(culprits) == 0 {
				t.Fatalf("trial %d: unverifiable target %d has no culprits", trial, target)
			}
			if !slices.IsSorted(culprits) {
				t.Fatalf("trial %d: culprits %v not sorted", trial, culprits)
			}
			withCulprits := append([]bool(nil), received...)
			for _, u := range culprits {
				if received[u] {
					t.Fatalf("trial %d: culprit %d was received", trial, u)
				}
				if u != target && !reaches(g, u, target, nil) {
					t.Fatalf("trial %d: culprit %d cannot reach target %d", trial, u, target)
				}
				withCulprits[u] = true
			}
			// Cut property: deleting the culprits disconnects the target
			// from the root in the *full* graph.
			if target != g.Root() && !slices.Contains(culprits, target) &&
				reaches(g, g.Root(), target, culprits) {
				t.Fatalf("trial %d: culprits %v do not cut root->%d", trial, culprits, target)
			}
			// Progress property: re-delivering the culprits makes each of
			// them verifiable.
			verifiable, err := g.VerifiableSet(withCulprits)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range culprits {
				if !verifiable[u] {
					t.Fatalf("trial %d: culprit %d not verifiable after re-delivery", trial, u)
				}
			}
		}
	}
}
