package depgraph

import (
	"math"
	"reflect"
	"testing"

	"mcauth/internal/stats"
)

// mcTestGraph builds an EMSS-like chain over n packets rooted at n: each
// packet carries hashes to offsets 1 and 2 toward the root.
func mcTestGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i+1, i)
		if i+2 <= n {
			g.MustAddEdge(i+2, i)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// sameAuthResult is bit-exact equality over AuthResult, except that NaN
// compares equal to NaN (Q[0] is NaN by construction, and DeepEqual would
// reject it).
func sameAuthResult(a, b AuthResult) bool {
	if a.QMin != b.QMin ||
		!reflect.DeepEqual(a.ReceivedCounts, b.ReceivedCounts) ||
		!reflect.DeepEqual(a.VerifiedCounts, b.VerifiedCounts) ||
		len(a.Q) != len(b.Q) {
		return false
	}
	for i := range a.Q {
		if math.IsNaN(a.Q[i]) && math.IsNaN(b.Q[i]) {
			continue
		}
		if a.Q[i] != b.Q[i] {
			return false
		}
	}
	return true
}

// TestMonteCarloParallelDeterminism is the shard-plan determinism contract:
// for a fixed seed and trial count, the merged AuthResult is bit-identical
// at workers = 1, 2 and 8 — counts, Q values and QMin alike.
func TestMonteCarloParallelDeterminism(t *testing.T) {
	g := mcTestGraph(t, 64)
	for _, seed := range []uint64{1, 7, 12345} {
		for _, trials := range []int{100, 1000, 1537} {
			baseline, err := g.MonteCarloAuthProbInto(
				BernoulliPatternInto(0.25), trials, stats.NewRNG(seed), MCOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := g.MonteCarloAuthProbInto(
					BernoulliPatternInto(0.25), trials, stats.NewRNG(seed), MCOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !sameAuthResult(got, baseline) {
					t.Fatalf("seed %d trials %d: workers=%d result differs from workers=1",
						seed, trials, workers)
				}
			}
		}
	}
}

// TestMonteCarloLegacyWrapperMatchesInto checks the wrapper contract: the
// allocating API draws the same RNG stream as the Into API, so both
// produce bit-identical results from the same seed.
func TestMonteCarloLegacyWrapperMatchesInto(t *testing.T) {
	g := mcTestGraph(t, 40)
	legacy, err := g.MonteCarloAuthProb(BernoulliPattern(0.3), 2000, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	into, err := g.MonteCarloAuthProbInto(BernoulliPatternInto(0.3), 2000, stats.NewRNG(42), MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAuthResult(legacy, into) {
		t.Fatal("MonteCarloAuthProb and MonteCarloAuthProbInto disagree for the same seed")
	}
}

// TestMonteCarloCallerRNGAdvancesIdentically checks that the caller's
// generator is advanced only by the sequential shard-plan derivation, so a
// caller drawing from it afterwards is unaffected by the worker count.
func TestMonteCarloCallerRNGAdvancesIdentically(t *testing.T) {
	g := mcTestGraph(t, 16)
	after := make([]uint64, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		rng := stats.NewRNG(9)
		if _, err := g.MonteCarloAuthProbInto(
			BernoulliPatternInto(0.2), 3000, rng, MCOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		after = append(after, rng.Uint64())
	}
	if after[0] != after[1] || after[0] != after[2] {
		t.Fatalf("caller RNG state depends on worker count: %v", after)
	}
}

func TestMonteCarloShardSizeIsPartOfThePlan(t *testing.T) {
	g := mcTestGraph(t, 32)
	a, err := g.MonteCarloAuthProbInto(BernoulliPatternInto(0.2), 4096, stats.NewRNG(5), MCOptions{ShardSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.MonteCarloAuthProbInto(BernoulliPatternInto(0.2), 4096, stats.NewRNG(5), MCOptions{ShardSize: 256, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAuthResult(a, b) {
		t.Fatal("same shard size, different workers: results differ")
	}
	// Total trials always land where they should regardless of plan.
	total := 0
	for i := 1; i <= g.N(); i++ {
		if a.ReceivedCounts[i] > total {
			total = a.ReceivedCounts[i]
		}
	}
	if total > 4096 {
		t.Fatalf("received count %d exceeds trial budget", total)
	}
}

func TestVerifiableSetIntoMatchesVerifiableSet(t *testing.T) {
	g := mcTestGraph(t, 24)
	rng := stats.NewRNG(3)
	pattern := BernoulliPattern(0.4)
	verifiable := make([]bool, g.N()+1)
	var queue []int
	for trial := 0; trial < 50; trial++ {
		received := pattern(rng, g.N())
		received[g.Root()] = true
		want, err := g.VerifiableSet(received)
		if err != nil {
			t.Fatal(err)
		}
		queue, err = g.VerifiableSetInto(received, verifiable, queue)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(verifiable, want) {
			t.Fatalf("trial %d: Into result differs", trial)
		}
	}
	// Length validation.
	if _, err := g.VerifiableSetInto(make([]bool, 3), verifiable, nil); err == nil {
		t.Fatal("expected error for short received slice")
	}
	if _, err := g.VerifiableSetInto(make([]bool, g.N()+1), make([]bool, 2), nil); err == nil {
		t.Fatal("expected error for short verifiable slice")
	}
}

func TestMonteCarloIntoValidation(t *testing.T) {
	g := mcTestGraph(t, 8)
	rng := stats.NewRNG(1)
	if _, err := g.MonteCarloAuthProbInto(BernoulliPatternInto(0.1), 0, rng, MCOptions{}); err == nil {
		t.Fatal("expected error for zero trials")
	}
	if _, err := g.MonteCarloAuthProbInto(nil, 10, rng, MCOptions{}); err == nil {
		t.Fatal("expected error for nil pattern")
	}
	// A legacy pattern returning the wrong length fails through the adapter.
	bad := ReceivePattern(func(_ *stats.RNG, n int) []bool { return make([]bool, 1) })
	if _, err := g.MonteCarloAuthProb(bad, 10, rng); err == nil {
		t.Fatal("expected error for bad pattern length")
	}
	// Estimates stay sane: q values in [0,1] where defined.
	res, err := g.MonteCarloAuthProbInto(BernoulliPatternInto(0.2), 500, rng, MCOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= g.N(); i++ {
		if !math.IsNaN(res.Q[i]) && (res.Q[i] < 0 || res.Q[i] > 1) {
			t.Fatalf("q[%d] = %v out of [0,1]", i, res.Q[i])
		}
	}
}
