package depgraph

import "fmt"

// Culprit attribution: when a received packet fails to authenticate, the
// question "which losses did it?" has a natural graph answer. Let V be the
// verifiable set of the loss pattern (VerifiableSet). The *frontier cut*
// toward a target packet t is the set of lost vertices u such that
//
//	(a) u has an in-neighbor in V (authentication information for u
//	    actually arrived — u is exactly one hop past the verified
//	    frontier), and
//	(b) u lies on some path from the root to t (u can still matter to t).
//
// The frontier cut is a certificate in two senses, both exercised by the
// unit tests:
//
//   - Cut: every root → t path in the full graph passes through a culprit,
//     so deleting the culprits disconnects t from the root. (Walk any
//     root → t path from the root; the first vertex outside V must be
//     lost — a received vertex whose predecessor is verifiable is itself
//     verifiable — and its predecessor is in V, so it satisfies (a), and
//     the path's remainder witnesses (b).)
//
//   - Progress: re-delivering the culprits makes each of them verifiable
//     immediately (their in-neighbor in V supplies the hash), pushing the
//     verified frontier strictly toward t.
//
// It is minimal in the frontier sense — no verifiable or irrelevant vertex
// is ever blamed — though not necessarily a minimum-cardinality cut, which
// would be both more expensive and less actionable (the frontier is what a
// recovery protocol would actually retransmit first).

// CulpritFinder answers culprit queries for one loss pattern, computing
// the verifiable set once and reusing scratch across targets, so
// diagnosing every unauthenticated packet of a receiver costs one BFS for
// the pattern plus one reverse BFS per target.
type CulpritFinder struct {
	g          *Graph
	received   []bool
	verifiable []bool
	reach      []bool // scratch: vertices reaching the current target
	queue      []int
}

// NewCulpritFinder computes the verifiable set for received (length n+1,
// index 0 unused; the root is treated as received, matching
// VerifiableSet). The received slice is copied, so the caller may reuse it.
func (g *Graph) NewCulpritFinder(received []bool) (*CulpritFinder, error) {
	if len(received) != g.n+1 {
		return nil, fmt.Errorf("depgraph: received slice length %d, want %d", len(received), g.n+1)
	}
	f := &CulpritFinder{
		g:          g,
		received:   append([]bool(nil), received...),
		verifiable: make([]bool, g.n+1),
		reach:      make([]bool, g.n+1),
		queue:      make([]int, 0, g.n),
	}
	f.received[g.root] = true
	var err error
	f.queue, err = g.VerifiableSetInto(f.received, f.verifiable, f.queue)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Verifiable reports whether packet i is verifiable under the pattern.
func (f *CulpritFinder) Verifiable(i int) bool {
	return i >= 1 && i <= f.g.n && f.verifiable[i]
}

// Culprits returns the frontier cut toward target, ascending. It returns
// nil (no culprits) when the target is already verifiable, and an error
// for an out-of-range target.
func (f *CulpritFinder) Culprits(target int) ([]int, error) {
	if target < 1 || target > f.g.n {
		return nil, fmt.Errorf("depgraph: culprit target %d out of [1,%d]", target, f.g.n)
	}
	if f.verifiable[target] {
		return nil, nil
	}
	// Reverse BFS: which vertices lie on some path ending at target?
	clear(f.reach)
	f.reach[target] = true
	f.queue = append(f.queue[:0], target)
	for head := 0; head < len(f.queue); head++ {
		for _, u := range f.g.in[f.queue[head]] {
			if !f.reach[u] {
				f.reach[u] = true
				f.queue = append(f.queue, u)
			}
		}
	}
	var culprits []int
	for u := 1; u <= f.g.n; u++ {
		if f.received[u] || !f.reach[u] {
			continue
		}
		for _, w := range f.g.in[u] {
			if f.verifiable[w] {
				culprits = append(culprits, u)
				break
			}
		}
	}
	return culprits, nil
}

// FrontierCut is the one-shot form of CulpritFinder for a single target:
// the lost predecessors whose re-delivery would advance target's
// authentication, per the frontier-cut definition above.
func (g *Graph) FrontierCut(received []bool, target int) ([]int, error) {
	f, err := g.NewCulpritFinder(received)
	if err != nil {
		return nil, err
	}
	return f.Culprits(target)
}
