package depgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. The root (signature)
// vertex is drawn as a double circle; edge labels are the sequence-number
// differences of Definition 1.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "dependence_graph"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	fmt.Fprintf(&b, "  P%d [shape=doublecircle, label=\"P%d (sign)\"];\n", g.root, g.root)
	for v := 1; v <= g.n; v++ {
		if v != g.root {
			fmt.Fprintf(&b, "  P%d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  P%d -> P%d [label=\"%d\"];\n", e[0], e[1], e[0]-e[1])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
