package depgraph

import (
	"math"
	"testing"
)

func TestShortestPathLengthsChain(t *testing.T) {
	g := chainGraph(t, 6)
	dist := g.ShortestPathLengths()
	// Interior vertices between root P_1 and P_i: i-2 for i >= 2.
	for i := 2; i <= 6; i++ {
		if dist[i] != i-2 {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i-2)
		}
	}
	if dist[1] != 0 {
		t.Errorf("dist[root] = %d, want 0", dist[1])
	}
}

func TestShortestPathLengthsSkipEdges(t *testing.T) {
	g := emssGraph(t, 7)
	dist := g.ShortestPathLengths()
	// With skip-2 edges, shortest path to P_7 uses 1->3->5->7: two
	// interior vertices.
	if dist[7] != 2 {
		t.Errorf("dist[7] = %d, want 2", dist[7])
	}
}

func TestShortestPathLengthsUnreachable(t *testing.T) {
	g, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	dist := g.ShortestPathLengths()
	if dist[3] != -1 {
		t.Errorf("dist[3] = %d, want -1", dist[3])
	}
}

func TestEnumeratePathsCounts(t *testing.T) {
	g := emssGraph(t, 5)
	enum, err := g.EnumeratePaths(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !enum.Complete {
		t.Fatal("enumeration should be complete")
	}
	// Paths from 1 to 5 with steps +1/+2 over 4 positions: Fibonacci-like
	// count = 5 ({1111},{112},{121},{211},{22} compositions of 4).
	if len(enum.Paths) != 5 {
		t.Errorf("path count = %d, want 5", len(enum.Paths))
	}
	for _, path := range enum.Paths {
		if path[0] != 1 || path[len(path)-1] != 5 {
			t.Errorf("path %v has wrong endpoints", path)
		}
		for k := 1; k < len(path); k++ {
			if !g.HasEdge(path[k-1], path[k]) {
				t.Errorf("path %v uses missing edge %d->%d", path, path[k-1], path[k])
			}
		}
	}
}

func TestEnumeratePathsLimit(t *testing.T) {
	g := emssGraph(t, 15)
	enum, err := g.EnumeratePaths(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Complete {
		t.Error("truncated enumeration must not report Complete")
	}
	if len(enum.Paths) != 3 {
		t.Errorf("returned %d paths, want 3 (the limit)", len(enum.Paths))
	}
}

func TestEnumeratePathsValidation(t *testing.T) {
	g := chainGraph(t, 4)
	if _, err := g.EnumeratePaths(0, 10); err == nil {
		t.Error("target 0 should fail")
	}
	if _, err := g.EnumeratePaths(2, 0); err == nil {
		t.Error("limit 0 should fail")
	}
}

func TestEnumeratePathsUnreachableTarget(t *testing.T) {
	g, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	enum, err := g.EnumeratePaths(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(enum.Paths) != 0 || !enum.Complete {
		t.Errorf("unreachable target: %+v", enum)
	}
}

func TestVertexDisjointPathsChain(t *testing.T) {
	g := chainGraph(t, 6)
	k, err := g.VertexDisjointPaths(6)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("chain disjoint paths = %d, want 1", k)
	}
}

func TestVertexDisjointPathsEMSS(t *testing.T) {
	g := emssGraph(t, 7)
	k, err := g.VertexDisjointPaths(7)
	if err != nil {
		t.Fatal(err)
	}
	// P_7 has in-edges from P_5 and P_6; 1->2->...->6->7 and 1->3->5->7
	// are internally disjoint.
	if k != 2 {
		t.Errorf("disjoint paths = %d, want 2", k)
	}
}

func TestVertexDisjointPathsDirectEdge(t *testing.T) {
	g, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 4)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(3, 4)
	k, err := g.VertexDisjointPaths(4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("disjoint paths = %d, want 3 (direct + via 2 + via 3)", k)
	}
}

func TestVertexDisjointPathsEdgeCases(t *testing.T) {
	g := chainGraph(t, 4)
	if _, err := g.VertexDisjointPaths(9); err == nil {
		t.Error("out-of-range target should fail")
	}
	k, err := g.VertexDisjointPaths(g.Root())
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("root target = %d, want 0", k)
	}
	// Unreachable target.
	h, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.MustAddEdge(1, 2)
	k, err = h.VertexDisjointPaths(3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("unreachable target = %d, want 0", k)
	}
}

func TestAuthProbBoundsBracketExact(t *testing.T) {
	g := emssGraph(t, 12)
	for _, p := range []float64{0.1, 0.3, 0.5} {
		exact, err := g.ExactAuthProb(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 2; i <= g.N(); i++ {
			b, err := g.AuthProbBounds(i, p, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Exact {
				t.Fatalf("enumeration should be complete for n=12")
			}
			if exact.Q[i] < b.Lower-1e-9 || exact.Q[i] > b.Upper+1e-9 {
				t.Errorf("p=%v vertex %d: exact %v outside bounds [%v, %v]",
					p, i, exact.Q[i], b.Lower, b.Upper)
			}
		}
	}
}

func TestAuthProbBoundsChainTight(t *testing.T) {
	// A chain has exactly one path, so both bounds coincide with the
	// closed form.
	g := chainGraph(t, 8)
	p := 0.2
	for i := 2; i <= 8; i++ {
		b, err := g.AuthProbBounds(i, p, 100)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(1-p, float64(i-2))
		if math.Abs(b.Lower-want) > 1e-12 || math.Abs(b.Upper-want) > 1e-12 {
			t.Errorf("vertex %d bounds [%v,%v], want both %v", i, b.Lower, b.Upper, want)
		}
	}
}

func TestAuthProbBoundsValidation(t *testing.T) {
	g := chainGraph(t, 4)
	if _, err := g.AuthProbBounds(2, -0.5, 10); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := g.AuthProbBounds(2, 2, 10); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestAuthProbBoundsUnreachable(t *testing.T) {
	g, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	b, err := g.AuthProbBounds(3, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != 0 || b.Upper != 0 {
		t.Errorf("unreachable bounds = %+v, want zeros", b)
	}
}
