// Package depgraph implements the paper's central abstraction: the
// dependence-graph of a multicast authentication scheme (Definition 1).
//
// A dependence-graph G = (V, E, L) is an acyclic labeled directed graph
// whose vertices are the packets P_1..P_n of a block (indexed in send
// order), with a distinguished root vertex P_sign where the digital
// signature applies. An edge (P_i, P_j) means P_i ↪ P_j: if P_i can be
// authenticated by a receiver then P_j can also be authenticated using the
// information carried by P_i (in hash-chained schemes, P_i carries the hash
// of P_j). The label on edge (P_i, P_j) is the sequence-number difference
// i - j. Every vertex must be reachable from the root, otherwise the packet
// cannot be authenticated even without loss.
//
// From this structure the package derives the paper's metrics:
// authentication probability (exact, Monte-Carlo and bounded forms),
// communication overhead (Equations 2-3), deterministic receiver delay
// (Equation 4) and receiver buffer sizes.
package depgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Common validation errors.
var (
	ErrNotRooted = errors.New("depgraph: some vertex is unreachable from the root")
	ErrCyclic    = errors.New("depgraph: graph contains a cycle")
)

// Graph is a dependence-graph over packets 1..n. The zero value is not
// usable; construct with New.
type Graph struct {
	n    int
	root int
	out  [][]int // out[i] lists j with edge i -> j, sorted
	in   [][]int // in[j] lists i with edge i -> j, sorted
	set  map[int64]struct{}
	m    int // number of edges
}

// New creates an empty dependence-graph over packets 1..n with the given
// root vertex (the packet the signature applies to, usually 1 or n).
func New(n, root int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("depgraph: block size %d must be >= 1", n)
	}
	if root < 1 || root > n {
		return nil, fmt.Errorf("depgraph: root %d out of [1,%d]", root, n)
	}
	return &Graph{
		n:    n,
		root: root,
		out:  make([][]int, n+1),
		in:   make([][]int, n+1),
		set:  make(map[int64]struct{}),
	}, nil
}

// N returns the number of packets in the block.
func (g *Graph) N() int { return g.n }

// Root returns the index of P_sign.
func (g *Graph) Root() int { return g.root }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

func edgeKey(from, to int) int64 {
	return int64(from)<<32 | int64(uint32(to))
}

// AddEdge inserts the dependence edge from -> to (packet `from` carries the
// authentication information for packet `to`). It rejects out-of-range
// endpoints, self-loops, duplicate edges, and edges into the root (nothing
// authenticates P_sign except the signature itself).
func (g *Graph) AddEdge(from, to int) error {
	if from < 1 || from > g.n {
		return fmt.Errorf("depgraph: edge source %d out of [1,%d]", from, g.n)
	}
	if to < 1 || to > g.n {
		return fmt.Errorf("depgraph: edge target %d out of [1,%d]", to, g.n)
	}
	if from == to {
		return fmt.Errorf("depgraph: self-loop on vertex %d", from)
	}
	if to == g.root {
		return fmt.Errorf("depgraph: edge into root %d (the root is authenticated by the signature)", g.root)
	}
	key := edgeKey(from, to)
	if _, dup := g.set[key]; dup {
		return fmt.Errorf("depgraph: duplicate edge %d -> %d", from, to)
	}
	g.set[key] = struct{}{}
	g.out[from] = insertSorted(g.out[from], to)
	g.in[to] = insertSorted(g.in[to], from)
	g.m++
	return nil
}

// MustAddEdge is AddEdge for construction code paths where the edge is known
// valid by construction; it panics on error. Scheme builders validate their
// parameters up front and then use this.
func (g *Graph) MustAddEdge(from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from -> to; it fails if the edge does not
// exist. Used by the Section 5 optimizers to prune redundant edges.
func (g *Graph) RemoveEdge(from, to int) error {
	key := edgeKey(from, to)
	if _, ok := g.set[key]; !ok {
		return fmt.Errorf("depgraph: no edge %d -> %d", from, to)
	}
	delete(g.set, key)
	g.out[from] = removeSorted(g.out[from], to)
	g.in[to] = removeSorted(g.in[to], from)
	g.m--
	return nil
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	return append(s[:i], s[i+1:]...)
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to int) bool {
	_, ok := g.set[edgeKey(from, to)]
	return ok
}

// Label returns the label i - j of edge (P_i, P_j). It returns an error if
// the edge does not exist.
func (g *Graph) Label(from, to int) (int, error) {
	if !g.HasEdge(from, to) {
		return 0, fmt.Errorf("depgraph: no edge %d -> %d", from, to)
	}
	return from - to, nil
}

// OutDegree returns the out-degree of P_i: the number of hashes (or keys)
// the packet carries (Equation 2).
func (g *Graph) OutDegree(i int) int { return len(g.out[i]) }

// InDegree returns the in-degree of P_i: how many packets carry
// authentication information for it.
func (g *Graph) InDegree(i int) int { return len(g.in[i]) }

// OutNeighbors returns a copy of the targets of edges out of i, ascending.
func (g *Graph) OutNeighbors(i int) []int {
	return append([]int(nil), g.out[i]...)
}

// InNeighbors returns a copy of the sources of edges into i, ascending.
func (g *Graph) InNeighbors(i int) []int {
	return append([]int(nil), g.in[i]...)
}

// Edges returns all edges as [2]int{from, to} pairs in deterministic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for from := 1; from <= g.n; from++ {
		for _, to := range g.out[from] {
			edges = append(edges, [2]int{from, to})
		}
	}
	return edges
}

// Validate checks the two structural requirements of Definition 1: the
// graph is acyclic, and every vertex is reachable from the root.
func (g *Graph) Validate() error {
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	reach := g.reachableFromRoot()
	for v := 1; v <= g.n; v++ {
		if !reach[v] {
			return fmt.Errorf("%w: vertex %d", ErrNotRooted, v)
		}
	}
	return nil
}

func (g *Graph) checkAcyclic() error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, g.n+1)
	// Iterative DFS to avoid stack growth on deep chains.
	type frame struct {
		v    int
		next int
	}
	for start := 1; start <= g.n; start++ {
		if state[start] != unvisited {
			continue
		}
		stack := []frame{{v: start}}
		state[start] = inStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.out[f.v]) {
				w := g.out[f.v][f.next]
				f.next++
				switch state[w] {
				case inStack:
					return fmt.Errorf("%w: back edge %d -> %d", ErrCyclic, f.v, w)
				case unvisited:
					state[w] = inStack
					stack = append(stack, frame{v: w})
				}
				continue
			}
			state[f.v] = done
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func (g *Graph) reachableFromRoot() []bool {
	reach := make([]bool, g.n+1)
	reach[g.root] = true
	queue := []int{g.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.out[v] {
			if !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	return reach
}

// Unreachable returns the vertices that cannot be authenticated even
// without loss (no path from the root). Probabilistic constructions
// (Section 5) may produce a few such vertices.
func (g *Graph) Unreachable() []int {
	reach := g.reachableFromRoot()
	var out []int
	for v := 1; v <= g.n; v++ {
		if !reach[v] {
			out = append(out, v)
		}
	}
	return out
}

// TopoFromRoot returns the reachable vertices in a topological order
// starting at the root (every edge goes from an earlier to a later position
// in the returned slice). It fails if the graph is cyclic.
func (g *Graph) TopoFromRoot() ([]int, error) {
	if err := g.checkAcyclic(); err != nil {
		return nil, err
	}
	reach := g.reachableFromRoot()
	indeg := make([]int, g.n+1)
	for v := 1; v <= g.n; v++ {
		if !reach[v] {
			continue
		}
		for _, w := range g.out[v] {
			indeg[w]++
		}
	}
	var queue []int
	queue = append(queue, g.root)
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:    g.n,
		root: g.root,
		out:  make([][]int, g.n+1),
		in:   make([][]int, g.n+1),
		set:  make(map[int64]struct{}, len(g.set)),
		m:    g.m,
	}
	for i := 1; i <= g.n; i++ {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	for k := range g.set {
		c.set[k] = struct{}{}
	}
	return c
}
