package depgraph

import "fmt"

// SizeSpec carries the primitive sizes entering the overhead formula
// (Equation 3): d = (l_sign + l_hash * |E|) / n bytes per packet on
// average. SigCopies models retransmitting P_sign 1/p_s times so that it is
// received with high probability (the paper's standing assumption that the
// signature packet always arrives).
type SizeSpec struct {
	HashSize  int // l_hash, bytes
	SigSize   int // l_sign, bytes
	SigCopies int // how many times the signature is sent (>= 1)
}

// DefaultSizes returns the sizes of the concrete primitives used by the
// runnable schemes in this repository (SHA-256, Ed25519).
func DefaultSizes() SizeSpec {
	return SizeSpec{HashSize: 32, SigSize: 64, SigCopies: 1}
}

// PaperEraSizes returns sizes typical of the paper's 2003 setting
// (16-byte MD5-style hashes, 128-byte RSA-1024 signatures), useful for
// reproducing Figure 10's absolute overhead numbers.
func PaperEraSizes() SizeSpec {
	return SizeSpec{HashSize: 16, SigSize: 128, SigCopies: 1}
}

func (s SizeSpec) validate() error {
	if s.HashSize <= 0 || s.SigSize <= 0 {
		return fmt.Errorf("depgraph: sizes must be positive, got hash=%d sig=%d", s.HashSize, s.SigSize)
	}
	if s.SigCopies < 1 {
		return fmt.Errorf("depgraph: SigCopies %d must be >= 1", s.SigCopies)
	}
	return nil
}

// AvgHashesPerPacket returns m = |E| / n (Equation 2): the average number
// of hashes each packet carries, since the hashes carried by P_i equal its
// out-degree.
func (g *Graph) AvgHashesPerPacket() float64 {
	return float64(g.m) / float64(g.n)
}

// OverheadBytesPerPacket returns d = (SigCopies*l_sign + l_hash*|E|) / n
// (Equation 3): the average per-packet authentication overhead in bytes.
func (g *Graph) OverheadBytesPerPacket(spec SizeSpec) (float64, error) {
	if err := spec.validate(); err != nil {
		return 0, err
	}
	total := spec.SigCopies*spec.SigSize + spec.HashSize*g.m
	return float64(total) / float64(g.n), nil
}

// MaxHashesPerPacket returns the largest out-degree: the worst-case number
// of hashes any single packet carries.
func (g *Graph) MaxHashesPerPacket() int {
	maxDeg := 0
	for i := 1; i <= g.n; i++ {
		if d := len(g.out[i]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// HashBufferSize returns the number of hash slots a receiver must hold: the
// maximum positive "forward distance" j - i over edges (P_i, P_j) with
// i < j, i.e. how long a trusted hash received with P_i must be retained
// before P_j arrives. (With the paper's labels l_ij = i - j this is
// max(-l_ij, 0).)
func (g *Graph) HashBufferSize() int {
	maxSpan := 0
	for from := 1; from <= g.n; from++ {
		for _, to := range g.out[from] {
			if span := to - from; span > maxSpan {
				maxSpan = span
			}
		}
	}
	return maxSpan
}

// MessageBufferSize returns the number of packet slots a receiver must hold
// for messages awaiting later authentication information: the maximum
// positive label l_ij = i - j over edges (P_i, P_j) with i > j, matching
// the paper's max over edges of max(l_ij, 0).
func (g *Graph) MessageBufferSize() int {
	maxSpan := 0
	for from := 1; from <= g.n; from++ {
		for _, to := range g.out[from] {
			if span := from - to; span > maxSpan {
				maxSpan = span
			}
		}
	}
	return maxSpan
}

// DeterministicDelays returns, for each reachable packet, its worst-case
// deterministic receiver delay in packet-transmission slots, assuming
// in-order delivery at one packet per slot and no losses. A packet P_j is
// verifiable at the earliest time it has both arrived (slot j) and some
// in-edge provider P_i is itself verifiable and arrived; the delay is that
// time minus slot j. The root is verifiable on arrival (it carries the
// signature).
//
// This generalizes Equation (4): for signature-last schemes it yields
// (n - i) for packets that depend on the final signature packet, and 0 for
// zero-delay constructions where all edges point forward in send order.
//
// Unreachable vertices get delay -1.
func (g *Graph) DeterministicDelays() ([]int, error) {
	order, err := g.TopoFromRoot()
	if err != nil {
		return nil, err
	}
	const unreachable = -1
	// verifyAt[v] = earliest slot at which v is verifiable.
	verifyAt := make([]int, g.n+1)
	for i := range verifyAt {
		verifyAt[i] = unreachable
	}
	verifyAt[g.root] = g.root
	for _, v := range order {
		if v == g.root {
			continue
		}
		best := -1
		for _, u := range g.in[v] {
			if verifyAt[u] == unreachable {
				continue
			}
			// v needs u verifiable AND u's information present,
			// which happens at slot max(verifyAt[u], u); and v
			// itself must have arrived (slot v).
			t := verifyAt[u]
			if u > t {
				t = u
			}
			if v > t {
				t = v
			}
			if best == -1 || t < best {
				best = t
			}
		}
		verifyAt[v] = best
	}
	delays := make([]int, g.n+1)
	for v := 1; v <= g.n; v++ {
		if verifyAt[v] == unreachable {
			delays[v] = unreachable
			continue
		}
		delays[v] = verifyAt[v] - v
	}
	delays[0] = 0
	return delays, nil
}

// MaxDeterministicDelay returns the largest per-packet deterministic delay
// (the t_d(worst) of Equation 4) over reachable packets.
func (g *Graph) MaxDeterministicDelay() (int, error) {
	delays, err := g.DeterministicDelays()
	if err != nil {
		return 0, err
	}
	maxDelay := 0
	for v := 1; v <= g.n; v++ {
		if delays[v] > maxDelay {
			maxDelay = delays[v]
		}
	}
	return maxDelay, nil
}

// Metrics bundles the static (loss-independent) metrics of a graph for
// reporting.
type Metrics struct {
	N                int
	Edges            int
	AvgHashesPerPkt  float64
	MaxHashesPerPkt  int
	OverheadBytes    float64
	HashBufferPkts   int
	MsgBufferPkts    int
	MaxDelaySlots    int
	UnreachableCount int
}

// ComputeMetrics evaluates all static metrics in one pass.
func (g *Graph) ComputeMetrics(spec SizeSpec) (Metrics, error) {
	overhead, err := g.OverheadBytesPerPacket(spec)
	if err != nil {
		return Metrics{}, err
	}
	maxDelay, err := g.MaxDeterministicDelay()
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		N:                g.n,
		Edges:            g.m,
		AvgHashesPerPkt:  g.AvgHashesPerPacket(),
		MaxHashesPerPkt:  g.MaxHashesPerPacket(),
		OverheadBytes:    overhead,
		HashBufferPkts:   g.HashBufferSize(),
		MsgBufferPkts:    g.MessageBufferSize(),
		MaxDelaySlots:    maxDelay,
		UnreachableCount: len(g.Unreachable()),
	}, nil
}
