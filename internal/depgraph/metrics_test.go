package depgraph

import (
	"math"
	"testing"
)

func TestAvgHashesPerPacketChain(t *testing.T) {
	g := chainGraph(t, 10)
	// Rohatgi: n-1 edges over n packets.
	want := 9.0 / 10.0
	if got := g.AvgHashesPerPacket(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgHashesPerPacket = %v, want %v", got, want)
	}
}

func TestOverheadBytesPerPacket(t *testing.T) {
	g := chainGraph(t, 10)
	spec := SizeSpec{HashSize: 16, SigSize: 128, SigCopies: 1}
	got, err := g.OverheadBytesPerPacket(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := (128.0 + 16.0*9) / 10 // Equation (3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead = %v, want %v", got, want)
	}
}

func TestOverheadSigCopies(t *testing.T) {
	g := chainGraph(t, 10)
	spec := SizeSpec{HashSize: 16, SigSize: 128, SigCopies: 3}
	got, err := g.OverheadBytesPerPacket(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := (3*128.0 + 16.0*9) / 10
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead = %v, want %v", got, want)
	}
}

func TestOverheadValidation(t *testing.T) {
	g := chainGraph(t, 3)
	bad := []SizeSpec{
		{HashSize: 0, SigSize: 64, SigCopies: 1},
		{HashSize: 32, SigSize: 0, SigCopies: 1},
		{HashSize: 32, SigSize: 64, SigCopies: 0},
	}
	for _, spec := range bad {
		if _, err := g.OverheadBytesPerPacket(spec); err == nil {
			t.Errorf("spec %+v should be rejected", spec)
		}
	}
}

func TestMaxHashesPerPacket(t *testing.T) {
	g := emssGraph(t, 6)
	if got := g.MaxHashesPerPacket(); got != 2 {
		t.Errorf("MaxHashesPerPacket = %d, want 2", got)
	}
}

func TestBufferSizesForwardChain(t *testing.T) {
	// Rohatgi: all edges between consecutive packets in send order,
	// pointing forward: hash buffer of 1, no message buffer.
	g := chainGraph(t, 10)
	if got := g.HashBufferSize(); got != 1 {
		t.Errorf("HashBufferSize = %d, want 1", got)
	}
	if got := g.MessageBufferSize(); got != 0 {
		t.Errorf("MessageBufferSize = %d, want 0", got)
	}
}

func TestBufferSizesSignatureLast(t *testing.T) {
	// Signature-last EMSS-like layout in send order: packet i puts its
	// hash in i+1 and i+2 (so edges point backward: i+1 -> i, i+2 -> i),
	// root is P_n.
	n := 10
	g, err := New(n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i+1, i)
	}
	for i := 1; i < n-1; i++ {
		g.MustAddEdge(i+2, i)
	}
	// Edge labels are positive (from > to): messages await later packets.
	if got := g.MessageBufferSize(); got != 2 {
		t.Errorf("MessageBufferSize = %d, want 2", got)
	}
	if got := g.HashBufferSize(); got != 0 {
		t.Errorf("HashBufferSize = %d, want 0", got)
	}
}

func TestDeterministicDelaysZeroDelayChain(t *testing.T) {
	// Rohatgi has zero receiver delay: each packet verifiable on arrival.
	g := chainGraph(t, 8)
	delays, err := g.DeterministicDelays()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 8; v++ {
		if delays[v] != 0 {
			t.Errorf("delay[%d] = %d, want 0", v, delays[v])
		}
	}
}

func TestDeterministicDelaysSignatureLast(t *testing.T) {
	// Signature-last chain: P_i verifiable only once P_n arrives, so
	// delay(P_i) = n - i, matching Equation (4).
	n := 6
	g, err := New(n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := n; i > 1; i-- {
		g.MustAddEdge(i, i-1)
	}
	delays, err := g.DeterministicDelays()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= n; v++ {
		if want := n - v; delays[v] != want {
			t.Errorf("delay[%d] = %d, want %d", v, delays[v], want)
		}
	}
	maxDelay, err := g.MaxDeterministicDelay()
	if err != nil {
		t.Fatal(err)
	}
	if maxDelay != n-1 {
		t.Errorf("MaxDeterministicDelay = %d, want %d", maxDelay, n-1)
	}
}

func TestDeterministicDelaysUnreachable(t *testing.T) {
	g, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	delays, err := g.DeterministicDelays()
	if err != nil {
		t.Fatal(err)
	}
	if delays[3] != -1 {
		t.Errorf("unreachable vertex delay = %d, want -1", delays[3])
	}
}

func TestDeterministicDelaysPicksBestPath(t *testing.T) {
	// Root P_1; P_3 is authenticated either via a forward edge from P_2
	// (available at slot 3) or directly from P_5 (slot 5). The earlier
	// alternative must win: delay 0.
	g, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(1, 5)
	g.MustAddEdge(5, 3)
	g.MustAddEdge(1, 4)
	delays, err := g.DeterministicDelays()
	if err != nil {
		t.Fatal(err)
	}
	if delays[3] != 0 {
		t.Errorf("delay[3] = %d, want 0 (best of two paths)", delays[3])
	}
}

func TestComputeMetrics(t *testing.T) {
	g := emssGraph(t, 10)
	m, err := g.ComputeMetrics(DefaultSizes())
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 10 || m.Edges != g.NumEdges() {
		t.Errorf("metrics %+v inconsistent with graph", m)
	}
	if m.UnreachableCount != 0 {
		t.Errorf("UnreachableCount = %d, want 0", m.UnreachableCount)
	}
	if m.MaxHashesPerPkt != 2 {
		t.Errorf("MaxHashesPerPkt = %d, want 2", m.MaxHashesPerPkt)
	}
}

func TestComputeMetricsRejectsBadSpec(t *testing.T) {
	g := emssGraph(t, 4)
	if _, err := g.ComputeMetrics(SizeSpec{}); err == nil {
		t.Error("zero SizeSpec should be rejected")
	}
}

func TestPaperAndDefaultSizes(t *testing.T) {
	if s := DefaultSizes(); s.HashSize != 32 || s.SigSize != 64 {
		t.Errorf("DefaultSizes = %+v", s)
	}
	if s := PaperEraSizes(); s.HashSize != 16 || s.SigSize != 128 {
		t.Errorf("PaperEraSizes = %+v", s)
	}
}
