package lab

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"mcauth/internal/obs"
)

// DashboardInput joins everything the renderer draws from: lab runs in
// chronological order, their wall-clock server snapshots (keyed run ID →
// cell ID), and the BENCH_<sha>.json history.
type DashboardInput struct {
	Runs          []*RunResult
	ServerMetrics map[string]map[string]obs.Snapshot
	Bench         []*BenchFile
}

func fq(v float64) string { return fmt.Sprintf("%.4f", v) }

func fns(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func optQ(has bool, v float64) string {
	if !has {
		return "—"
	}
	return fq(v)
}

// RenderMarkdown writes the dashboard. Output is a pure function of the
// input (no clocks), so two renders over the same artifacts are
// byte-identical — the property the golden test and the worker-count
// identity check pin.
func RenderMarkdown(w io.Writer, in DashboardInput) error {
	var b strings.Builder
	b.WriteString("# mcauth lab dashboard\n\n")
	fmt.Fprintf(&b, "%d lab run(s), %d bench snapshot(s).\n", len(in.Runs), len(in.Bench))

	if len(in.Runs) > 0 {
		b.WriteString("\n## Runs\n\n")
		b.WriteString("| run | cells | trials | paths |\n|---|---:|---:|---|\n")
		for _, run := range in.Runs {
			fmt.Fprintf(&b, "| %s | %d | %d | %s |\n",
				run.RunID(), len(run.Cells), run.Config.Trials, strings.Join(run.Config.Paths, ", "))
		}
	}

	for _, run := range in.Runs {
		fmt.Fprintf(&b, "\n## q_min vs overhead — %s\n\n", run.RunID())
		b.WriteString("q_min is the worst per-packet authentication probability over the block " +
			"(the paper's central quantity); overhead is hashes per packet over the dependence " +
			"graph (Equation 2) and measured wire bytes per payload.\n\n")
		b.WriteString("| cell | hashes/pkt | bytes/pkt | analytic | monte-carlo | measured |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		for _, c := range run.Cells {
			fmt.Fprintf(&b, "| %s | %.2f | %.1f | %s | %s | %s |\n",
				c.ID, c.OverheadHashesPerPacket, c.OverheadBytesPerPacket,
				optQ(c.HasAnalytic, c.Analytic),
				optQ(c.HasMonteCarlo, c.MonteCarlo),
				optQ(c.HasMeasured, c.Measured))
		}

		if anyMeasured(run) {
			fmt.Fprintf(&b, "\n### Time to authentication — %s\n\n", run.RunID())
			b.WriteString("Simulated-clock latency from packet arrival to successful " +
				"authentication, aggregated over all receivers.\n\n")
			b.WriteString("| cell | auth'd | p50 | p95 | p99 | max |\n|---|---:|---:|---:|---:|---:|\n")
			for _, c := range run.Cells {
				if !c.HasMeasured {
					continue
				}
				s := c.TimeToAuthNS
				// Per-packet schemes (authtree, signeach) verify at ingest
				// and record no latency samples.
				p50, p95, p99, max := "—", "—", "—", "—"
				if s.Count > 0 {
					p50, p95, p99, max = fns(s.P50), fns(s.P95), fns(s.P99), fns(float64(s.Max))
				}
				fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s |\n",
					c.ID, c.Authenticated, p50, p95, p99, max)
			}
		}

		if run.Config.SLO != nil {
			fmt.Fprintf(&b, "\n### SLO objectives — %s\n\n", run.RunID())
			b.WriteString("Per-cell service objectives from the sweep config; `mclab check` " +
				"fails the run on any missed objective.\n\n")
			b.WriteString("| cell | objective | target | actual | state |\n|---|---|---:|---:|---|\n")
			evaluated := false
			for _, c := range run.Cells {
				for _, ob := range run.Config.SLO.EvaluateCell(c) {
					evaluated = true
					target, actual := fq(ob.Target), fq(ob.Actual)
					if ob.Name == "tta_p99" {
						target, actual = fns(ob.Target), fns(ob.Actual)
					}
					state := "ok"
					if !ob.Met {
						state = "**missed**"
					}
					fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", c.ID, ob.Name, target, actual, state)
				}
			}
			if !evaluated {
				b.WriteString("| — | — | — | — | no cell produced a gated quantity |\n")
			}
		}

		if anyOverlay(run) {
			fmt.Fprintf(&b, "\n### Overlay fan-out — %s\n\n", run.RunID())
			b.WriteString("Downstream authenticated fraction through the relay tree, relays " +
				"passive vs serving signature repairs. Under the correlated lossy edge the " +
				"analytic i.i.d. bound does not apply; the gain column is what " +
				"`require_overlay_gain` gates.\n\n")
			b.WriteString("| cell | tree | edge loss | auth (off) | auth (on) | gain | upstream repairs | receiver repairs |\n")
			b.WriteString("|---|---|---|---:|---:|---:|---:|---:|\n")
			for _, c := range run.Cells {
				if c.Overlay == nil {
					continue
				}
				o := c.Overlay
				fmt.Fprintf(&b, "| %s | d=%d f=%d | %d edge(s) @ %.2f | %s | %s | %+.4f | %d | %d |\n",
					c.ID, o.Depth, o.Fanout, o.LossyEdges, o.EdgeP,
					fq(o.AuthOff), fq(o.AuthOn), o.Gain, o.UpstreamRepaired, o.ReceiverRepairs)
			}
		}

		if anyServer(run) {
			fmt.Fprintf(&b, "\n### Serving tier — %s\n\n", run.RunID())
			b.WriteString("Batch-signing counts are deterministic; root-hold latency is " +
				"wall-clock (from server_metrics.json) and varies run to run.\n\n")
			b.WriteString("| cell | published | verified | signatures | roots | amortization | hold p50 | hold p95 | hold p99 |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
			sm := in.ServerMetrics[run.RunID()]
			for _, c := range run.Cells {
				if c.Server == nil {
					continue
				}
				s := c.Server
				hold := "— | — | —"
				if h, ok := sm[c.ID].Histograms["server.root_hold_ns"]; ok && h.Count > 0 {
					hold = fmt.Sprintf("%s | %s | %s", fns(h.P50), fns(h.P95), fns(h.P99))
				}
				fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %.1f | %s |\n",
					c.ID, s.Published, s.Verified, s.Signatures, s.SignedRoots, s.Amortization, hold)
			}
		}
	}

	if len(in.Bench) > 0 {
		b.WriteString("\n## Benchmark trajectory\n\n")
		b.WriteString("One row per snapshot per benchmark, oldest first; Δns is against the " +
			"best (lowest) ns/op anywhere in the history.\n\n")
		series := SeriesByName(in.Bench)
		for _, name := range SortedNames(series) {
			points := series[name]
			best := math.Inf(1)
			for _, pt := range points {
				if pt.Benchmark.NsPerOp != nil && *pt.Benchmark.NsPerOp < best {
					best = *pt.Benchmark.NsPerOp
				}
			}
			fmt.Fprintf(&b, "### %s\n\n", name)
			b.WriteString("| commit | ns/op | Δns vs best | B/op | allocs/op |\n|---|---:|---:|---:|---:|\n")
			for _, pt := range points {
				ns, delta := "—", "—"
				if v := pt.Benchmark.NsPerOp; v != nil {
					ns = fmt.Sprintf("%.1f", *v)
					if !math.IsInf(best, 1) && best > 0 {
						delta = fmt.Sprintf("%+.1f%%", 100*(*v/best-1))
					}
				}
				bop, aop := "—", "—"
				if v := pt.Benchmark.BytesPerOp; v != nil {
					bop = fmt.Sprintf("%.0f", *v)
				}
				if v := pt.Benchmark.AllocsPerOp; v != nil {
					aop = fmt.Sprintf("%.0f", *v)
				}
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", pt.File.ShortCommit(), ns, delta, bop, aop)
			}
			b.WriteString("\n")
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func anyMeasured(run *RunResult) bool {
	for _, c := range run.Cells {
		if c.HasMeasured {
			return true
		}
	}
	return false
}

func anyOverlay(run *RunResult) bool {
	for _, c := range run.Cells {
		if c.Overlay != nil {
			return true
		}
	}
	return false
}

func anyServer(run *RunResult) bool {
	for _, c := range run.Cells {
		if c.Server != nil {
			return true
		}
	}
	return false
}

// RenderHTML wraps the markdown dashboard in a self-contained HTML page
// via the minimal converter below (headings, tables, paragraphs — exactly
// the constructs RenderMarkdown emits; no external renderer is vendored).
func RenderHTML(w io.Writer, md string) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>mcauth lab dashboard</title>\n<style>\n")
	b.WriteString("body{font-family:sans-serif;max-width:72rem;margin:2rem auto;padding:0 1rem;color:#222}\n")
	b.WriteString("table{border-collapse:collapse;margin:1rem 0}\n")
	b.WriteString("th,td{border:1px solid #ccc;padding:0.3rem 0.6rem;font-size:0.9rem}\n")
	b.WriteString("th{background:#f3f3f3;text-align:left}\ntd{font-variant-numeric:tabular-nums}\n")
	b.WriteString("h1,h2,h3{margin-top:1.6rem}\n</style></head><body>\n")
	b.WriteString(markdownToHTML(md))
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// markdownToHTML converts the dashboard's markdown subset: #/##/###
// headings, GFM tables (alignment row ignored), and paragraphs. Cell text
// is HTML-escaped.
func markdownToHTML(md string) string {
	var b strings.Builder
	lines := strings.Split(md, "\n")
	inTable := false
	para := func(text string) {
		if text != "" {
			b.WriteString("<p>" + html.EscapeString(text) + "</p>\n")
		}
	}
	var pending []string
	flush := func() {
		para(strings.Join(pending, " "))
		pending = pending[:0]
	}
	closeTable := func() {
		if inTable {
			b.WriteString("</table>\n")
			inTable = false
		}
	}
	for i := 0; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " ")
		switch {
		case strings.HasPrefix(line, "|"):
			flush()
			cells := splitRow(line)
			if isAlignRow(cells) {
				continue
			}
			tag := "td"
			if !inTable {
				b.WriteString("<table>\n")
				inTable = true
				tag = "th"
			}
			b.WriteString("<tr>")
			for _, c := range cells {
				b.WriteString("<" + tag + ">" + html.EscapeString(c) + "</" + tag + ">")
			}
			b.WriteString("</tr>\n")
		case strings.HasPrefix(line, "#"):
			flush()
			closeTable()
			level := 0
			for level < len(line) && line[level] == '#' {
				level++
			}
			if level > 6 {
				level = 6
			}
			text := strings.TrimSpace(line[level:])
			fmt.Fprintf(&b, "<h%d>%s</h%d>\n", level, html.EscapeString(text), level)
		case line == "":
			flush()
			closeTable()
		default:
			closeTable()
			pending = append(pending, line)
		}
	}
	flush()
	closeTable()
	return b.String()
}

func splitRow(line string) []string {
	trimmed := strings.Trim(line, "|")
	parts := strings.Split(trimmed, "|")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

func isAlignRow(cells []string) bool {
	if len(cells) == 0 {
		return false
	}
	for _, c := range cells {
		if c == "" {
			return false
		}
		for _, r := range c {
			if r != '-' && r != ':' {
				return false
			}
		}
	}
	return true
}
