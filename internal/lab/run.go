package lab

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/depgraph"
	"mcauth/internal/diagnose"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/obs"
	"mcauth/internal/parallel"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/schemetest"
	"mcauth/internal/server"
	"mcauth/internal/stats"
	"mcauth/internal/stream"
)

// QSummary condenses a histogram into the quantile triple the dashboard
// and gates consume. Computed from additive bucket counts, so it is
// deterministic for any worker count.
type QSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
}

func summarize(h obs.HistogramData) QSummary {
	s := QSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
	}
	if h.Count > 0 {
		s.Max = h.MaxSeen
	}
	return s
}

// ServerResult is the deterministic summary of one cell's serving-tier
// path. Wall-clock quantities (root-hold latencies) are written to the
// run's server_metrics.json instead, which is outside the byte-identity
// contract.
type ServerResult struct {
	Streams      int     `json:"streams"`
	Blocks       int     `json:"blocks"`
	Batch        int     `json:"batch"`
	Published    int64   `json:"published"`
	Verified     int64   `json:"verified"`
	Signatures   int64   `json:"signatures"`
	SignedRoots  int64   `json:"signed_roots"`
	Amortization float64 `json:"amortization"`
	// Churned records that the cell ran the subscriber-churn flow: the
	// late subscriber was caught up via ResumeFrom and ResumeCatchup
	// packets were replayed to it. Zero-valued (and omitted) for plain
	// cells, so existing goldens are unchanged.
	Churned       bool  `json:"churned,omitempty"`
	ResumeCatchup int64 `json:"resume_catchup,omitempty"`
}

// OverlayCellResult is the deterministic summary of one cell's relay
// fan-out path: the same netsim configuration pushed through
// netsim.RunOverlay twice on the same seeded tree — relays off and relays
// on — so the gain column isolates what relay-served signature repairs
// buy under the configured correlated edge loss.
type OverlayCellResult struct {
	Depth      int     `json:"depth"`
	Fanout     int     `json:"fanout"`
	EdgeP      float64 `json:"edge_p"`
	LossyEdges int     `json:"lossy_edges"`
	// AuthOff and AuthOn are the downstream authenticated fractions
	// (authenticated packets over receivers × wire positions) with relays
	// passive and with relays serving repairs.
	AuthOff float64 `json:"auth_off"`
	AuthOn  float64 `json:"auth_on"`
	// Gain is AuthOn - AuthOff, the quantity require_overlay_gain gates.
	Gain float64 `json:"gain"`
	// UpstreamRepaired counts signature wires relays recovered from their
	// parents; ReceiverRepairs counts last-hop repairs served to
	// receivers (both from the relays-on run). Zero upstream repairs
	// under a lossy edge means the seeded edge never dropped a signature
	// wire and the scenario is vacuous — the gate rejects that too.
	UpstreamRepaired int `json:"upstream_repaired"`
	ReceiverRepairs  int `json:"receiver_repairs"`
	// Flagged lists relays the withholding audit flagged (none expected:
	// the lab scenario has no adversary).
	Flagged []int `json:"flagged,omitempty"`
	// Repairable reports whether the scenario can show a repair gain at
	// all: the scheme has a signature class to repair and the tree has a
	// lossy edge to lose it on. The gain gate skips non-repairable cells.
	Repairable bool `json:"repairable"`
}

// CellResult is one cell's outcome across the evaluation layers. Absent
// layers (path not requested, or no closed form for the loss model) keep
// their Has* flag false; the value fields then hold zero, never NaN.
type CellResult struct {
	ID        string  `json:"id"`
	SchemeID  string  `json:"scheme_id"`
	Scheme    string  `json:"scheme"`
	LossModel string  `json:"loss_model"`
	Loss      string  `json:"loss"`
	P         float64 `json:"p"`
	N         int     `json:"n"`
	Receivers int     `json:"receivers"`
	Seed      uint64  `json:"seed"`

	HasAnalytic   bool    `json:"has_analytic"`
	Analytic      float64 `json:"analytic,omitempty"`
	HasMonteCarlo bool    `json:"has_montecarlo"`
	MonteCarlo    float64 `json:"montecarlo,omitempty"`
	HasMeasured   bool    `json:"has_measured"`
	Measured      float64 `json:"measured,omitempty"`

	// OverheadHashesPerPacket is Equation 2's average over the dependence
	// graph; OverheadBytesPerPacket is the measured wire-byte overhead
	// (encoded size minus payload bytes, per payload).
	OverheadHashesPerPacket float64 `json:"overhead_hashes_per_packet,omitempty"`
	OverheadBytesPerPacket  float64 `json:"overhead_bytes_per_packet,omitempty"`

	Sent          int `json:"sent,omitempty"`
	Delivered     int `json:"delivered,omitempty"`
	Lost          int `json:"lost,omitempty"`
	Authenticated int `json:"authenticated,omitempty"`

	// TimeToAuthNS summarizes simulated arrival-to-authentication latency
	// (netsim path only).
	TimeToAuthNS QSummary `json:"time_to_auth_ns"`

	// Causes is the diagnose root-cause tally (netsim path only).
	Causes map[string]int `json:"causes,omitempty"`

	Server  *ServerResult      `json:"server,omitempty"`
	Overlay *OverlayCellResult `json:"overlay,omitempty"`
}

// RunResult is everything one sweep writes to its result directory.
type RunResult struct {
	Name   string       `json:"name"`
	Stamp  string       `json:"stamp"`
	Config Config       `json:"config"`
	Cells  []CellResult `json:"cells"`
}

// RunID is the result-directory basename.
func (r *RunResult) RunID() string { return r.Name + "-" + r.Stamp }

// cellCase binds a built scheme instance to its per-scheme evaluation
// conventions (mirrors conformance.Case, parameterized by the sweep).
type cellCase struct {
	scheme          scheme.Scheme
	analytic        func(p float64) (float64, error) // nil: no closed form
	dataIndices     []uint32
	reliableIndices []uint32
	sendInterval    time.Duration
	delay           delay.Model
}

func dataIndices(from, to int) []uint32 {
	out := make([]uint32, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, uint32(i))
	}
	return out
}

// buildCase constructs the cell's scheme and evaluation conventions. The
// analytic path only has closed forms for i.i.d. loss; gilbert cells run
// Monte-Carlo and netsim only.
func buildCase(c Cell, signer crypto.Signer) (cellCase, error) {
	bernoulli := c.Loss.Model == "bernoulli"
	start := time.Unix(0, 0)
	cc := cellCase{
		sendInterval: 10 * time.Millisecond,
		delay:        delay.Constant{D: time.Millisecond},
	}
	n := c.N
	switch c.Scheme.ID {
	case "rohatgi":
		s, err := rohatgi.New(n, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.dataIndices = dataIndices(1, n)
		cc.reliableIndices = []uint32{1}
		if bernoulli {
			cc.analytic = func(p float64) (float64, error) {
				res, err := analysis.Rohatgi(n, p)
				if err != nil {
					return 0, err
				}
				return res.QMin, nil
			}
		}
	case "emss":
		s, err := emss.New(emss.Config{N: n, M: c.Scheme.M, D: c.Scheme.D}, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.dataIndices = dataIndices(1, n)
		cc.reliableIndices = []uint32{uint32(n)}
		if bernoulli {
			offsets := analysis.EMSS{N: n, M: c.Scheme.M, D: c.Scheme.D}.Offsets()
			cc.analytic = func(p float64) (float64, error) {
				exact := analysis.MarkovExact{N: n, Offsets: offsets, P: p}
				if exact.Validate() == nil {
					return exact.QMin()
				}
				return analysis.EMSS{N: n, M: c.Scheme.M, D: c.Scheme.D, P: p}.QMin()
			}
		}
	case "augchain":
		// The exact evaluator needs segment alignment; the sweep's block
		// size is aligned up, and the cell records the aligned n.
		acN := analysis.AlignN(n, c.Scheme.B)
		s, err := augchain.New(augchain.Config{N: acN, A: c.Scheme.A, B: c.Scheme.B}, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.dataIndices = dataIndices(1, acN)
		cc.reliableIndices = []uint32{uint32(acN)}
		if bernoulli {
			a, b := c.Scheme.A, c.Scheme.B
			cc.analytic = func(p float64) (float64, error) {
				return analysis.AugChainExact{N: acN, A: a, B: b, P: p}.QMin()
			}
		}
	case "authtree":
		s, err := authtree.New(n, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.dataIndices = dataIndices(1, n)
		cc.reliableIndices = []uint32{1}
		cc.analytic = func(float64) (float64, error) { return 1, nil }
	case "signeach":
		s, err := signeach.New(n, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.dataIndices = dataIndices(1, n)
		cc.analytic = func(float64) (float64, error) { return 1, nil }
	case "tesla":
		// Conformance's ξ = 1 conditioning: constant 1 ms delivery against
		// the configured disclosure lag never violates safety, so measured
		// loss is erasure-only and comparable to QMinWithXi(1).
		interval := 100 * time.Millisecond
		tCfg := tesla.Config{
			N:        n,
			Lag:      c.Scheme.Lag,
			Interval: interval,
			Start:    start,
			Seed:     []byte("mclab"),
		}
		s, err := tesla.New(tCfg, signer)
		if err != nil {
			return cellCase{}, err
		}
		cc.scheme = s
		cc.sendInterval = interval
		cc.dataIndices = make([]uint32, n)
		for i := range cc.dataIndices {
			cc.dataIndices[i] = tesla.DataWireIndex(i + 1)
		}
		cc.reliableIndices = []uint32{1}
		if bernoulli {
			tDisc := tCfg.TDisclose().Seconds()
			cc.analytic = func(p float64) (float64, error) {
				a := analysis.TESLA{N: n, P: p, TDisc: tDisc, Mu: tDisc / 100, Sigma: tDisc / 200}
				return a.QMinWithXi(1)
			}
		}
	default:
		return cellCase{}, fmt.Errorf("lab: unknown scheme %q", c.Scheme.ID)
	}
	return cc, nil
}

func buildLoss(l LossConfig) (loss.Model, error) {
	switch l.Model {
	case "bernoulli":
		return loss.NewBernoulli(l.P)
	case "gilbert":
		pBadToGood := 1 / l.Burst
		pGoodToBad := l.P * pBadToGood / (1 - l.P)
		return loss.NewGilbertElliott(pGoodToBad, pBadToGood, 0, 1)
	default:
		return nil, fmt.Errorf("lab: unknown loss model %q", l.Model)
	}
}

// cellSeed derives the i-th cell's seed from the config seed. Indexed, not
// drawn from a shared stream, so cells are independent of scheduling.
func cellSeed(seed uint64, i int) uint64 {
	return seed + uint64(i+1)*0x9E3779B97F4A7C15
}

// cellArtifacts is everything one cell contributes to the run directory.
type cellArtifacts struct {
	result        CellResult
	metrics       obs.Snapshot
	report        *diagnose.Report
	serverMetrics *obs.Snapshot
}

// Run executes the sweep with the given outer worker count and writes the
// result directory under outDir. The stamp names the run (pass a fixed
// stamp for reproducible directory names; an empty stamp uses UTC now).
// Every written artifact is byte-identical for any workers value except
// server_metrics.json, which records wall-clock serving latencies.
func Run(cfg Config, workers int, outDir, stamp string) (*RunResult, string, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, "", err
	}
	if stamp == "" {
		stamp = time.Now().UTC().Format("20060102T150405Z")
	}
	cells := cfg.Cells()
	arts, err := parallel.Map(workers, cells, func(i int, c Cell) (cellArtifacts, error) {
		return runCell(cfg, c, cellSeed(cfg.Seed, i))
	})
	if err != nil {
		return nil, "", err
	}

	run := &RunResult{Name: cfg.Name, Stamp: stamp, Config: cfg}
	for _, a := range arts {
		run.Cells = append(run.Cells, a.result)
	}
	dir := filepath.Join(outDir, run.RunID())
	if err := writeRunDir(dir, run, arts); err != nil {
		return nil, "", err
	}
	return run, dir, nil
}

func runCell(cfg Config, c Cell, seed uint64) (cellArtifacts, error) {
	signer := crypto.NewSignerFromString("mclab")
	cc, err := buildCase(c, signer)
	if err != nil {
		return cellArtifacts{}, fmt.Errorf("%s: %w", c.ID(), err)
	}
	lossModel, err := buildLoss(c.Loss)
	if err != nil {
		return cellArtifacts{}, fmt.Errorf("%s: %w", c.ID(), err)
	}
	res := CellResult{
		ID:        c.ID(),
		SchemeID:  c.Scheme.ID,
		Scheme:    cc.scheme.Name(),
		LossModel: c.Loss.Model,
		Loss:      lossModel.Name(),
		P:         c.Loss.P,
		N:         cc.scheme.BlockSize(),
		Receivers: c.Receivers,
		Seed:      seed,
	}

	// Overhead: graph hashes/packet (Equation 2) and measured wire bytes
	// per payload beyond the payload itself.
	g, err := cc.scheme.Graph()
	if err != nil {
		return cellArtifacts{}, fmt.Errorf("%s: graph: %w", c.ID(), err)
	}
	res.OverheadHashesPerPacket = g.AvgHashesPerPacket()
	payloads := schemetest.Payloads(cc.scheme.BlockSize())
	pkts, err := cc.scheme.Authenticate(1, payloads)
	if err != nil {
		return cellArtifacts{}, fmt.Errorf("%s: authenticate: %w", c.ID(), err)
	}
	wireBytes, payloadBytes := 0, 0
	for _, p := range pkts {
		wireBytes += p.EncodedSize()
	}
	for _, p := range payloads {
		payloadBytes += len(p)
	}
	res.OverheadBytesPerPacket = float64(wireBytes-payloadBytes) / float64(len(payloads))

	if cfg.HasPath(PathAnalytic) && cc.analytic != nil {
		q, err := cc.analytic(c.Loss.P)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: analytic: %w", c.ID(), err)
		}
		if !math.IsNaN(q) {
			res.HasAnalytic, res.Analytic = true, q
		}
	}

	if cfg.HasPath(PathMonteCarlo) {
		// Inner MC workers stay at 1: the sweep parallelizes across cells,
		// and the estimate is identical for any worker split anyway.
		mc, err := g.MonteCarloAuthProbInto(
			loss.PatternInto(lossModel),
			cfg.Trials,
			stats.NewRNG(seed^0x6d636c6162), // "mclab"
			depgraph.MCOptions{Workers: 1},
		)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: monte-carlo: %w", c.ID(), err)
		}
		res.HasMonteCarlo, res.MonteCarlo = true, mc.QMin
	}

	arts := cellArtifacts{}
	if cfg.HasPath(PathNetsim) {
		reg := obs.NewRegistry()
		mem := &obs.MemTracer{}
		simCfg := netsim.Config{
			Receivers:       c.Receivers,
			Loss:            lossModel,
			Delay:           cc.delay,
			SendInterval:    cc.sendInterval,
			Start:           time.Unix(0, 0),
			Seed:            seed,
			ReliableIndices: cc.reliableIndices,
			Workers:         1,
			Tracer:          mem,
			Metrics:         reg,
		}
		sim, err := netsim.Run(cc.scheme, simCfg, 1, payloads)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: netsim: %w", c.ID(), err)
		}
		res.HasMeasured = true
		res.Measured = sim.MinAuthRatio(cc.dataIndices)
		var timeToAuth obs.HistogramData
		for i := range sim.PerReceiver {
			rep := &sim.PerReceiver[i]
			res.Delivered += rep.Delivered
			res.Lost += rep.Lost
			res.Authenticated += rep.Stats.Authenticated
			timeToAuth.Merge(rep.Stats.TimeToAuth)
		}
		res.Sent = sim.WireCount * c.Receivers
		res.TimeToAuthNS = summarize(timeToAuth)

		opts := diagnose.Options{DataIndices: cc.dataIndices}
		if len(cc.reliableIndices) > 0 {
			opts.RootIndex = cc.reliableIndices[0]
		}
		if vm, ok := cc.scheme.(scheme.VertexMapper); ok {
			opts.Graph = g
			opts.VertexOf = vm.VertexOf
		}
		rep, err := diagnose.BuildReport(mem.Events(), 0, opts)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: diagnose: %w", c.ID(), err)
		}
		arts.report = rep
		if len(rep.Causes) > 0 {
			res.Causes = make(map[string]int, len(rep.Causes))
			for cause, n := range rep.Causes {
				res.Causes[string(cause)] = n
			}
		}
		arts.metrics = reg.Snapshot()
	}

	if cfg.HasPath(PathOverlay) {
		or, err := runOverlayCell(cfg, c, cc, seed, lossModel)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: overlay: %w", c.ID(), err)
		}
		res.Overlay = or
	}

	if cfg.HasPath(PathServer) && c.Scheme.ID != "tesla" {
		sr, snap, err := runServerCell(cfg, c, cc)
		if err != nil {
			return cellArtifacts{}, fmt.Errorf("%s: server: %w", c.ID(), err)
		}
		res.Server = sr
		arts.serverMetrics = snap
	}

	arts.result = res
	return arts, nil
}

// overlayTree builds the cell's seeded relay tree: lossless edges, the
// cell's loss model on the last hop, and Bernoulli(EdgeP) on the first
// LossyEdges mid-tree edges. Called once per overlay run — edge patterns
// are a pure function of the tree seed, so the relays-off and relays-on
// runs see identical loss.
func overlayTree(ov *OverlayConfig, seed uint64, leaf loss.Model) (*loss.TreeModel, error) {
	tree, err := loss.NewUniformTree(seed^0x6f7665726c6179, ov.Depth, ov.Fanout, nil, leaf)
	if err != nil {
		return nil, err
	}
	if ov.EdgeP > 0 {
		for e := 1; e <= ov.LossyEdges; e++ {
			edge, err := loss.NewBernoulli(ov.EdgeP)
			if err != nil {
				return nil, err
			}
			if err := tree.SetEdge(e, edge); err != nil {
				return nil, err
			}
		}
	}
	return tree, nil
}

// runOverlayCell runs the cell's netsim configuration through the relay
// tree twice — relays off, then relays on — and summarizes the repair
// gain. Both runs share the seed, tree and receiver RNG schedule, so the
// only difference is whether relays serve signature repairs.
func runOverlayCell(cfg Config, c Cell, cc cellCase, seed uint64, lossModel loss.Model) (*OverlayCellResult, error) {
	ov := cfg.Overlay
	simCfg := netsim.Config{
		Receivers:       c.Receivers,
		Delay:           cc.delay,
		SendInterval:    cc.sendInterval,
		Start:           time.Unix(0, 0),
		Seed:            seed ^ 0x66616e6f7574, // decorrelate from the flat netsim path
		ReliableIndices: cc.reliableIndices,
		Workers:         1,
	}
	out := &OverlayCellResult{
		Depth:      ov.Depth,
		Fanout:     ov.Fanout,
		EdgeP:      ov.EdgeP,
		LossyEdges: ov.LossyEdges,
		Repairable: len(cc.reliableIndices) > 0 && ov.LossyEdges > 0 && ov.EdgeP > 0,
	}
	payloads := schemetest.Payloads(cc.scheme.BlockSize())
	authFraction := func(relays bool) (*netsim.OverlayResult, float64, error) {
		tree, err := overlayTree(ov, seed, lossModel)
		if err != nil {
			return nil, 0, err
		}
		ocfg := netsim.OverlayConfig{
			Tree:      tree,
			Relays:    relays,
			RepairRTT: time.Duration(ov.RepairRTTMS) * time.Millisecond,
		}
		res, err := netsim.RunOverlay(cc.scheme, simCfg, ocfg, 1, payloads)
		if err != nil {
			return nil, 0, err
		}
		return res, float64(res.TotalAuthenticated()) / float64(c.Receivers*res.WireCount), nil
	}
	_, off, err := authFraction(false)
	if err != nil {
		return nil, err
	}
	on, onFrac, err := authFraction(true)
	if err != nil {
		return nil, err
	}
	out.AuthOff, out.AuthOn, out.Gain = off, onFrac, onFrac-off
	for _, rep := range on.Relays {
		out.UpstreamRepaired += rep.UpstreamRepaired
	}
	out.ReceiverRepairs = on.TotalRepaired()
	out.Flagged = on.Flagged
	return out, nil
}

// runServerCell pushes the cell's scheme through the batch-signing serving
// tier with a loopback verifier: cfg.Server.Streams streams × Blocks
// blocks, one subscriber demuxing and verifying everything. Counts are
// deterministic (the flush timer is effectively disabled, so signature
// count is driven by batch arithmetic); latency histograms are wall-clock
// and returned separately.
//
// With Server.Churn set, the verifying subscriber is a late joiner: an
// initial subscriber watches the first half of the blocks and leaves, then
// the verifier joins and is caught up from the server's repair retention
// via ResumeFrom before following the second half live. It must still
// verify every published message — the session-resume guarantee.
func runServerCell(cfg Config, c Cell, cc cellCase) (*ServerResult, *obs.Snapshot, error) {
	reg := obs.NewRegistry()
	key := "mclab-server"
	scfg := server.Config{
		Signer:             crypto.NewSignerFromString(key),
		BatchSize:          cfg.Server.Batch,
		FlushInterval:      time.Hour, // flush on Close, keeping counts deterministic
		MaxSubscriberQueue: 1 << 16,
		Metrics:            reg,
	}
	if cfg.Server.Churn {
		// Retain every block so the late joiner can be caught up from 0.
		scfg.RepairBlocks = cfg.Server.Blocks + 2
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	mk := func(signer crypto.Signer) (scheme.Scheme, error) {
		sc := c.Scheme
		cell := Cell{Scheme: sc, Loss: c.Loss, N: c.N, Receivers: c.Receivers}
		built, err := buildCase(cell, signer)
		if err != nil {
			return nil, err
		}
		return built.scheme, nil
	}
	for id := uint64(1); id <= uint64(cfg.Server.Streams); id++ {
		if err := srv.OpenStream(id, mk); err != nil {
			srv.Close()
			return nil, nil, err
		}
	}

	blockSize := cc.scheme.BlockSize()
	var published int64
	publishBlocks := func(from, to int) error {
		for id := uint64(1); id <= uint64(cfg.Server.Streams); id++ {
			for i := from * blockSize; i < to*blockSize; i++ {
				if err := srv.Publish(id, []byte(fmt.Sprintf("cell %s stream-%d msg-%d", c.ID(), id, i))); err != nil {
					return err
				}
				published++
			}
		}
		return nil
	}

	// firstLive is the block the verifying subscriber starts watching live;
	// churn publishes everything before it to an earlier subscriber that
	// then leaves.
	firstLive := 0
	if cfg.Server.Churn {
		firstLive = cfg.Server.Blocks / 2
		sub1, err := srv.Subscribe()
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		drained := make(chan struct{})
		go func() {
			for range sub1.C() {
			}
			close(drained)
		}()
		if err := publishBlocks(0, firstLive); err != nil {
			srv.Close()
			return nil, nil, err
		}
		// Barrier: every stream has emitted its first-half blocks, so the
		// repair store holds them before the handover.
		deadline := time.Now().Add(10 * time.Second)
		for id := uint64(1); id <= uint64(cfg.Server.Streams); id++ {
			for srv.Stream(id).Blocks() < int64(firstLive) {
				if time.Now().After(deadline) {
					srv.Close()
					return nil, nil, fmt.Errorf("lab: churn barrier: stream %d stuck at %d of %d blocks",
						id, srv.Stream(id).Blocks(), firstLive)
				}
				time.Sleep(time.Millisecond)
			}
		}
		srv.Unsubscribe(sub1)
		<-drained
	}

	sub, err := srv.Subscribe()
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	dmx, err := stream.NewDemux(func(uint64) (*stream.Receiver, error) {
		s, err := mk(crypto.BatchCapable(crypto.NewSignerFromString(key)))
		if err != nil {
			return nil, err
		}
		return stream.NewReceiver(s, cfg.Server.Blocks+2)
	}, cfg.Server.Streams)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}

	var churned bool
	var resumeCatchup, preVerified int64
	if cfg.Server.Churn {
		// Catch the late subscriber up before consuming live deliveries.
		// Subscribe-then-replay means anything signed after the snapshot
		// arrives live and anything before is replayed; overlap costs only
		// duplicates the block verifiers already count and discard.
		churned = true
		for id := uint64(1); id <= uint64(cfg.Server.Streams); id++ {
			for _, p := range srv.ResumeFrom(id, 0) {
				auths, err := dmx.Ingest(id, p, time.Now())
				if err != nil {
					srv.Close()
					return nil, nil, err
				}
				for _, a := range auths {
					if len(a.Payload) > 0 {
						preVerified++
					}
				}
			}
		}
		resumeCatchup = reg.Counter("server.resume_catchup_packets").Value()
		if resumeCatchup == 0 {
			srv.Close()
			return nil, nil, fmt.Errorf("lab: churn resume replayed nothing")
		}
	}

	type counts struct {
		verified int64
		err      error
	}
	done := make(chan counts, 1)
	go func() {
		var verified int64
		for d := range sub.C() {
			auths, err := dmx.Ingest(d.StreamID, d.Packet, time.Now())
			if err != nil {
				done <- counts{err: err}
				return
			}
			for _, a := range auths {
				if len(a.Payload) > 0 {
					verified++
				}
			}
		}
		done <- counts{verified: verified}
	}()

	if err := publishBlocks(firstLive, cfg.Server.Blocks); err != nil {
		srv.Close()
		return nil, nil, err
	}
	if err := srv.Close(); err != nil {
		return nil, nil, err
	}
	got := <-done
	if got.err != nil {
		return nil, nil, got.err
	}
	if drops := sub.Drops(); drops > 0 {
		return nil, nil, fmt.Errorf("lab: server cell dropped %d deliveries (queue too small)", drops)
	}
	verified := got.verified + preVerified
	if verified != published {
		return nil, nil, fmt.Errorf("lab: server cell verified %d of %d published messages", verified, published)
	}
	tot := srv.BatchTotals()
	snap := reg.Snapshot()
	return &ServerResult{
		Streams:       cfg.Server.Streams,
		Blocks:        cfg.Server.Blocks,
		Batch:         cfg.Server.Batch,
		Published:     published,
		Verified:      verified,
		Signatures:    tot.Signatures,
		SignedRoots:   tot.SignedRoots,
		Amortization:  tot.AmortizationRatio(),
		Churned:       churned,
		ResumeCatchup: resumeCatchup,
	}, &snap, nil
}

// writeRunDir lays out the timestamped result directory:
//
//	<dir>/config.json          — normalized config echo
//	<dir>/cells.json           — RunResult (name, stamp, config, cells)
//	<dir>/metrics.json         — per-cell obs snapshots (netsim path)
//	<dir>/reports/cell-XXX.json — per-cell diagnose reports
//	<dir>/server_metrics.json  — per-cell server snapshots (wall-clock;
//	                             excluded from byte-identity)
func writeRunDir(dir string, run *RunResult, arts []cellArtifacts) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSONFile(filepath.Join(dir, "config.json"), run.Config); err != nil {
		return err
	}
	if err := writeJSONFile(filepath.Join(dir, "cells.json"), run); err != nil {
		return err
	}
	metrics := make(map[string]obs.Snapshot)
	serverMetrics := make(map[string]obs.Snapshot)
	wroteReports := false
	for i, a := range arts {
		if a.report != nil {
			if !wroteReports {
				if err := os.MkdirAll(filepath.Join(dir, "reports"), 0o755); err != nil {
					return err
				}
				wroteReports = true
			}
			f, err := os.Create(filepath.Join(dir, "reports", fmt.Sprintf("cell-%03d.json", i)))
			if err != nil {
				return err
			}
			if err := a.report.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			metrics[a.result.ID] = a.metrics
		}
		if a.serverMetrics != nil {
			serverMetrics[a.result.ID] = *a.serverMetrics
		}
	}
	if len(metrics) > 0 {
		if err := writeJSONFile(filepath.Join(dir, "metrics.json"), metrics); err != nil {
			return err
		}
	}
	if len(serverMetrics) > 0 {
		if err := writeJSONFile(filepath.Join(dir, "server_metrics.json"), serverMetrics); err != nil {
			return err
		}
	}
	return nil
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRun reads a result directory written by Run.
func LoadRun(dir string) (*RunResult, error) {
	f, err := os.Open(filepath.Join(dir, "cells.json"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var run RunResult
	dec := json.NewDecoder(f)
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("lab: %s: %w", dir, err)
	}
	return &run, nil
}

// LoadRuns loads every result directory under outDir (any directory with
// a cells.json), sorted by directory name — stamps sort chronologically.
func LoadRuns(outDir string) ([]*RunResult, error) {
	entries, err := os.ReadDir(outDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var runs []*RunResult
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(outDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "cells.json")); err != nil {
			continue
		}
		run, err := LoadRun(dir)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// LoadServerMetrics reads a run directory's server snapshot map, if any.
func LoadServerMetrics(dir string) (map[string]obs.Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(dir, "server_metrics.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make(map[string]obs.Snapshot)
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("lab: %s: %w", dir, err)
	}
	return out, nil
}
