// Package lab is the experiment-orchestration layer (ROADMAP item 5): it
// takes a declarative scenario config (schemes × loss models × block sizes
// × scales), executes every cell of the sweep through the repo's existing
// evaluation paths — the analytic closed forms (internal/analysis),
// Monte-Carlo on the dependence graph (internal/depgraph), the end-to-end
// network simulation (internal/netsim) and the batch-signing serving tier
// (internal/server) — and collects each run into a timestamped result
// directory: config echo, per-cell q_min across layers, obs metrics
// snapshots, and internal/diagnose root-cause reports.
//
// On top of collected runs, the dashboard renderer joins every historical
// BENCH_<sha>.json perf snapshot with every lab run into one
// markdown+HTML dashboard, and the gate evaluator (mclab check) turns
// committed baselines — conformance bound tables plus bench-delta
// thresholds — into a non-zero exit status, so each future PR's effect on
// the paper's central quantities (authentication probability vs overhead)
// and on the perf trajectory is a visible, gated data point instead of a
// buried JSON file.
//
// Cells execute on internal/parallel with a deterministic per-cell seed
// schedule, so every artifact a run writes is byte-identical at any
// -workers setting — the same contract the Monte-Carlo and netsim layers
// already honor, extended to whole sweeps (two-level parallelism: cells
// across workers, receivers/shards within a cell).
package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Config is the declarative sweep description. The cell set is the cross
// product Schemes × Loss × BlockSizes × Receivers; each cell runs every
// requested path.
type Config struct {
	// Name labels the run; the result directory is <Name>-<stamp>.
	Name string `json:"name"`
	// Seed derives every cell's RNG schedule.
	Seed uint64 `json:"seed"`
	// Trials is the Monte-Carlo trial count per cell (default 4000).
	Trials int `json:"trials,omitempty"`
	// Receivers lists the simulated multicast group sizes to sweep
	// (default [200]).
	Receivers []int `json:"receivers,omitempty"`
	// BlockSizes lists the block sizes to sweep (default [16]). The
	// augmented chain aligns each up to its segment boundary.
	BlockSizes []int `json:"block_sizes,omitempty"`
	// Schemes lists the constructions under test.
	Schemes []SchemeConfig `json:"schemes"`
	// Loss lists the loss channels.
	Loss []LossConfig `json:"loss"`
	// Paths selects the evaluation layers: "analytic", "montecarlo",
	// "netsim", "server". Default: analytic, montecarlo, netsim.
	Paths []string `json:"paths,omitempty"`
	// Server tunes the serving-tier path (ignored unless "server" is in
	// Paths).
	Server ServerConfig `json:"server,omitempty"`
	// Overlay tunes the relay fan-out path (ignored unless "overlay" is
	// in Paths). Nil with the overlay path selected gets the defaults.
	Overlay *OverlayConfig `json:"overlay,omitempty"`
	// SLO, when set, declares per-cell service objectives the sweep must
	// meet: a floor on the measured authenticated fraction (the paper's
	// q_min, netsim path) and a ceiling on the simulated time-to-auth p99.
	// Objectives are rendered in the dashboard and enforced by
	// `mclab check`. Nil means no objectives (existing configs and their
	// artifacts are unchanged).
	SLO *SLOObjectives `json:"slo,omitempty"`
}

// SLOObjectives are the sweep-level service objectives. Zero-valued
// fields are unset: each objective only gates when its target is set and
// the cell ran the layer that produces the quantity.
type SLOObjectives struct {
	// MinAuthFraction is the floor on each cell's measured q_min
	// (netsim-path authenticated fraction), in (0, 1].
	MinAuthFraction float64 `json:"min_auth_fraction,omitempty"`
	// TTAP99NS is the ceiling on each cell's simulated
	// arrival-to-authentication p99, in nanoseconds.
	TTAP99NS int64 `json:"tta_p99_ns,omitempty"`
}

// SchemeConfig selects one construction and its knobs.
type SchemeConfig struct {
	// ID is one of rohatgi|emss|augchain|authtree|signeach|tesla.
	ID string `json:"id"`
	// M, D are the EMSS E_{m,d} offsets (default 2, 1).
	M int `json:"m,omitempty"`
	D int `json:"d,omitempty"`
	// A, B are the augmented-chain C_{a,b} parameters (default 2, 2).
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// Lag is the TESLA disclosure lag in intervals (default 2).
	Lag int `json:"lag,omitempty"`
}

// LossConfig selects one loss channel.
type LossConfig struct {
	// Model is "bernoulli" or "gilbert".
	Model string `json:"model"`
	// P is the long-run loss rate.
	P float64 `json:"p"`
	// Burst is the mean burst length for "gilbert" (default 4).
	Burst float64 `json:"burst,omitempty"`
}

// ServerConfig tunes the serving-tier cell path. Wall-clock quantities the
// server produces (root-hold times) are recorded in server_metrics.json,
// which is excluded from the byte-identity contract; everything in
// cells.json stays deterministic.
type ServerConfig struct {
	// Streams is the number of concurrent streams (default 8).
	Streams int `json:"streams,omitempty"`
	// Blocks is the number of blocks published per stream (default 4).
	Blocks int `json:"blocks,omitempty"`
	// Batch is the signature batch size in block roots (default 16).
	Batch int `json:"batch,omitempty"`
	// Churn exercises subscriber churn with session resume: the initial
	// subscriber leaves mid-run, a late subscriber joins and is caught up
	// from the server's repair retention via ResumeFrom, and the cell
	// asserts the late subscriber still verifies every published message.
	// Requires Blocks >= 2. For a deterministic resume_catchup count pick
	// Batch > Streams*Blocks/2, so no batch signs before the handover.
	Churn bool `json:"churn,omitempty"`
}

// OverlayConfig tunes the relay fan-out path: each cell re-runs its
// netsim configuration through netsim.RunOverlay on a uniform multicast
// tree, twice — relays off (passive forwarding) and relays on (NACK
// signature repairs served from relay retention) — and records the
// downstream authenticated fraction of both. The cell's loss model is the
// per-receiver last hop; tree edges are lossless except the first
// LossyEdges mid-tree edges, which drop packets i.i.d. at EdgeP, shared
// by their whole subtree. That shared-fate loss is exactly what the
// analytic closed forms cannot express (they assume i.i.d. per-receiver
// loss), so overlay cells are gated on the measured repair gain —
// relays-on minus relays-off — not on agreement with the formula.
type OverlayConfig struct {
	// Depth and Fanout shape the uniform relay tree (defaults 2 and 4:
	// a 3-level source → mid → leaf topology with 16 leaf relays).
	Depth  int `json:"depth,omitempty"`
	Fanout int `json:"fanout,omitempty"`
	// EdgeP is the i.i.d. drop rate on each lossy mid-tree edge.
	EdgeP float64 `json:"edge_p,omitempty"`
	// LossyEdges is how many tree edges lose packets at EdgeP — edges
	// 1..LossyEdges, i.e. the edges feeding the first mid-tree relays,
	// each severing a clean 1/Fanout subtree (default 1 when EdgeP > 0).
	LossyEdges int `json:"lossy_edges,omitempty"`
	// RepairRTTMS is the NACK repair round trip in milliseconds
	// (default 40).
	RepairRTTMS int `json:"repair_rtt_ms,omitempty"`
}

// Path names.
const (
	PathAnalytic   = "analytic"
	PathMonteCarlo = "montecarlo"
	PathNetsim     = "netsim"
	PathServer     = "server"
	PathOverlay    = "overlay"
)

var knownSchemes = map[string]bool{
	"rohatgi": true, "emss": true, "augchain": true,
	"authtree": true, "signeach": true, "tesla": true,
}

// Normalize applies defaults in place and validates the config.
func (c *Config) Normalize() error {
	if c.Name == "" {
		return fmt.Errorf("lab: config needs a name")
	}
	if strings.ContainsAny(c.Name, "/\\ ") {
		return fmt.Errorf("lab: name %q must be a path-safe token", c.Name)
	}
	if c.Trials == 0 {
		c.Trials = 4000
	}
	if c.Trials < 1 {
		return fmt.Errorf("lab: trials %d must be >= 1", c.Trials)
	}
	if len(c.Receivers) == 0 {
		c.Receivers = []int{200}
	}
	for _, r := range c.Receivers {
		if r < 1 {
			return fmt.Errorf("lab: receivers %d must be >= 1", r)
		}
	}
	if len(c.BlockSizes) == 0 {
		c.BlockSizes = []int{16}
	}
	for _, n := range c.BlockSizes {
		if n < 2 {
			return fmt.Errorf("lab: block size %d must be >= 2", n)
		}
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("lab: config needs at least one scheme")
	}
	for i := range c.Schemes {
		s := &c.Schemes[i]
		if !knownSchemes[s.ID] {
			return fmt.Errorf("lab: unknown scheme %q", s.ID)
		}
		if s.M == 0 {
			s.M = 2
		}
		if s.D == 0 {
			s.D = 1
		}
		if s.A == 0 {
			s.A = 2
		}
		if s.B == 0 {
			s.B = 2
		}
		if s.Lag == 0 {
			s.Lag = 2
		}
	}
	if len(c.Loss) == 0 {
		return fmt.Errorf("lab: config needs at least one loss model")
	}
	for i := range c.Loss {
		l := &c.Loss[i]
		switch l.Model {
		case "bernoulli":
		case "gilbert":
			if l.Burst == 0 {
				l.Burst = 4
			}
			if l.Burst <= 1 {
				return fmt.Errorf("lab: gilbert burst %g must be > 1", l.Burst)
			}
		default:
			return fmt.Errorf("lab: unknown loss model %q", l.Model)
		}
		if l.P < 0 || l.P >= 1 {
			return fmt.Errorf("lab: loss rate %g out of [0,1)", l.P)
		}
	}
	if len(c.Paths) == 0 {
		c.Paths = []string{PathAnalytic, PathMonteCarlo, PathNetsim}
	}
	for _, p := range c.Paths {
		switch p {
		case PathAnalytic, PathMonteCarlo, PathNetsim, PathServer, PathOverlay:
		default:
			return fmt.Errorf("lab: unknown path %q", p)
		}
	}
	if c.HasPath(PathOverlay) {
		if c.Overlay == nil {
			c.Overlay = &OverlayConfig{}
		}
		o := c.Overlay
		if o.Depth == 0 {
			o.Depth = 2
		}
		if o.Fanout == 0 {
			o.Fanout = 4
		}
		if o.LossyEdges == 0 && o.EdgeP > 0 {
			o.LossyEdges = 1
		}
		if o.RepairRTTMS == 0 {
			o.RepairRTTMS = 40
		}
		if o.Depth < 1 || o.Fanout < 1 {
			return fmt.Errorf("lab: overlay depth %d / fanout %d must be >= 1", o.Depth, o.Fanout)
		}
		if o.EdgeP < 0 || o.EdgeP >= 1 {
			return fmt.Errorf("lab: overlay edge_p %g out of [0,1)", o.EdgeP)
		}
		if o.LossyEdges < 0 || o.LossyEdges > o.Fanout {
			return fmt.Errorf("lab: overlay lossy_edges %d out of [0,%d] (only the first-level edges can be lossy)", o.LossyEdges, o.Fanout)
		}
		if o.LossyEdges > 0 && o.Depth < 2 {
			return fmt.Errorf("lab: overlay lossy_edges needs depth >= 2 (a depth-1 tree has no mid-tree edge)")
		}
		if o.RepairRTTMS < 0 {
			return fmt.Errorf("lab: overlay repair_rtt_ms %d must be >= 0", o.RepairRTTMS)
		}
	}
	if c.Server.Streams == 0 {
		c.Server.Streams = 8
	}
	if c.Server.Blocks == 0 {
		c.Server.Blocks = 4
	}
	if c.Server.Batch == 0 {
		c.Server.Batch = 16
	}
	if c.Server.Streams < 1 || c.Server.Blocks < 1 || c.Server.Batch < 1 {
		return fmt.Errorf("lab: server knobs must be >= 1: %+v", c.Server)
	}
	if c.Server.Churn && c.Server.Blocks < 2 {
		return fmt.Errorf("lab: server churn needs blocks >= 2 (got %d): the handover happens at the halfway block", c.Server.Blocks)
	}
	if s := c.SLO; s != nil {
		if s.MinAuthFraction < 0 || s.MinAuthFraction > 1 {
			return fmt.Errorf("lab: slo min_auth_fraction %g out of [0,1]", s.MinAuthFraction)
		}
		if s.TTAP99NS < 0 {
			return fmt.Errorf("lab: slo tta_p99_ns %d must be >= 0", s.TTAP99NS)
		}
		if s.MinAuthFraction == 0 && s.TTAP99NS == 0 {
			return fmt.Errorf("lab: slo block set but no objective given (set min_auth_fraction and/or tta_p99_ns)")
		}
	}
	return nil
}

// HasPath reports whether the normalized config runs the named path.
func (c *Config) HasPath(name string) bool {
	for _, p := range c.Paths {
		if p == name {
			return true
		}
	}
	return false
}

// ReadConfig loads and normalizes a scenario config. Only JSON is parsed;
// a YAML extension gets a targeted error (the toolchain is
// dependency-free, so YAML sweeps must be converted to JSON first).
func ReadConfig(path string) (Config, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".yaml", ".yml":
		return Config{}, fmt.Errorf("lab: %s: YAML configs need an external converter (no YAML parser is vendored); use JSON", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return DecodeConfig(f)
}

// DecodeConfig parses and normalizes a JSON scenario config.
func DecodeConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("lab: config: %w", err)
	}
	if err := c.Normalize(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Cell is one point of the sweep's cross product.
type Cell struct {
	Scheme    SchemeConfig
	Loss      LossConfig
	N         int
	Receivers int
}

// ID labels the cell in results and dashboard rows ("/"-separated: "|"
// would break markdown table cells).
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s(p=%g)/n=%d/r=%d", c.Scheme.ID, c.Loss.Model, c.Loss.P, c.N, c.Receivers)
}

// Cells enumerates the sweep in deterministic order: scheme-major, then
// loss, block size, scale — the iteration order every run artifact and
// the dashboard inherit.
func (c *Config) Cells() []Cell {
	var out []Cell
	for _, s := range c.Schemes {
		for _, l := range c.Loss {
			for _, n := range c.BlockSizes {
				for _, r := range c.Receivers {
					out = append(out, Cell{Scheme: s, Loss: l, N: n, Receivers: r})
				}
			}
		}
	}
	return out
}
