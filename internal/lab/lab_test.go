package lab

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcauth/internal/conformance"
)

func smokeConfig() Config {
	return Config{
		Name:       "smoke",
		Seed:       7,
		Trials:     400,
		Receivers:  []int{40},
		BlockSizes: []int{8},
		Schemes:    []SchemeConfig{{ID: "rohatgi"}, {ID: "emss"}},
		Loss:       []LossConfig{{Model: "bernoulli", P: 0.2}, {Model: "gilbert", P: 0.25}},
	}
}

func TestConfigNormalizeAndCells(t *testing.T) {
	c := Config{Name: "x", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "gilbert", P: 0.1}}}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Trials != 4000 || c.Receivers[0] != 200 || c.BlockSizes[0] != 16 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Schemes[0].M != 2 || c.Schemes[0].D != 1 || c.Loss[0].Burst != 4 {
		t.Errorf("scheme/loss defaults not applied: %+v", c)
	}
	if c.HasPath(PathServer) || !c.HasPath(PathNetsim) {
		t.Errorf("default paths wrong: %v", c.Paths)
	}

	smoke := smokeConfig()
	cells := smoke.Cells()
	if len(cells) != 4 {
		t.Fatalf("cell count = %d, want 4", len(cells))
	}
	// Scheme-major enumeration, the artifact and dashboard row order.
	if cells[0].Scheme.ID != "rohatgi" || cells[1].Scheme.ID != "rohatgi" || cells[2].Scheme.ID != "emss" {
		t.Errorf("cells not scheme-major: %+v", cells)
	}
	if id := cells[1].ID(); id != "rohatgi/gilbert(p=0.25)/n=8/r=40" {
		t.Errorf("cell ID = %q", id)
	}

	for _, bad := range []Config{
		{Name: "", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "bernoulli"}}},
		{Name: "a b", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "bernoulli"}}},
		{Name: "x", Schemes: []SchemeConfig{{ID: "nope"}}, Loss: []LossConfig{{Model: "bernoulli"}}},
		{Name: "x", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "bernoulli", P: 1.5}}},
		{Name: "x", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "waves"}}},
		{Name: "x", Schemes: []SchemeConfig{{ID: "emss"}}, Loss: []LossConfig{{Model: "bernoulli"}}, Paths: []string{"quantum"}},
	} {
		bad := bad
		if err := bad.Normalize(); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}

	if _, err := ReadConfig("sweep.yaml"); err == nil || !strings.Contains(err.Error(), "YAML") {
		t.Errorf("YAML config must get a targeted error, got %v", err)
	}
	if _, err := DecodeConfig(strings.NewReader(`{"name":"x","unknown":1}`)); err == nil {
		t.Error("unknown config field accepted")
	}
}

// TestRunByteIdenticalAcrossWorkers is the sweep-level determinism
// contract: every artifact a run writes is byte-identical at -workers 1
// and 4 (server_metrics.json, wall-clock by design, is absent here since
// the config has no server path).
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := smokeConfig()
	base := t.TempDir()
	var dirs [2]string
	for i, workers := range []int{1, 4} {
		out := filepath.Join(base, fmt.Sprintf("w%d", workers))
		_, dir, err := Run(cfg, workers, out, "20260101T000000Z")
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = dir
	}
	compareTrees(t, dirs[0], dirs[1], 4) // config, cells, metrics, ≥1 report
}

func compareTrees(t *testing.T, a, b string, min int) {
	t.Helper()
	seen := 0
	err := filepath.Walk(a, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(a, path)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(filepath.Join(b, rel))
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			t.Errorf("%s differs across worker counts", rel)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen < min {
		t.Errorf("only %d artifacts compared, expected at least %d", seen, min)
	}
}

// TestRunLayersAgree sanity-checks the smoke sweep's physics: where an
// analytic value exists, Monte-Carlo and netsim agree to within the
// scaled binomial tolerance, and q_min values live in (0, 1].
func TestRunLayersAgree(t *testing.T) {
	cfg := smokeConfig()
	run, dir, err := Run(cfg, 2, t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(run.Cells))
	}
	params := cellParams(cfg.Trials, cfg.Receivers[0])
	for _, c := range run.Cells {
		if !c.HasMonteCarlo || !c.HasMeasured {
			t.Fatalf("%s: missing MC or measured layer: %+v", c.ID, c)
		}
		if c.MonteCarlo <= 0 || c.MonteCarlo > 1 || c.Measured <= 0 || c.Measured > 1 {
			t.Errorf("%s: q_min out of (0,1]: mc=%v measured=%v", c.ID, c.MonteCarlo, c.Measured)
		}
		if c.LossModel == "gilbert" {
			if c.HasAnalytic {
				t.Errorf("%s: bursty loss has no closed form but analytic is set", c.ID)
			}
			continue
		}
		if !c.HasAnalytic {
			t.Errorf("%s: bernoulli cell missing analytic layer", c.ID)
			continue
		}
		if d := math.Abs(c.Analytic - c.MonteCarlo); d > params.MCTol {
			t.Errorf("%s: analytic %v vs MC %v (Δ=%v > %v)", c.ID, c.Analytic, c.MonteCarlo, d, params.MCTol)
		}
		if d := math.Abs(c.Analytic - c.Measured); d > params.NetsimTol {
			t.Errorf("%s: analytic %v vs measured %v (Δ=%v > %v)", c.ID, c.Analytic, c.Measured, d, params.NetsimTol)
		}
		// Rohatgi's signature leads the block, so packets authenticate at
		// arrival (all-zero latency is correct); EMSS's signature trails,
		// so early packets must wait for it.
		if c.TimeToAuthNS.Count == 0 {
			t.Errorf("%s: empty time-to-auth summary: %+v", c.ID, c.TimeToAuthNS)
		}
		if c.SchemeID == "emss" && c.TimeToAuthNS.P95 <= 0 {
			t.Errorf("%s: EMSS time-to-auth p95 = %v, want > 0 (early packets wait for the trailing signature)",
				c.ID, c.TimeToAuthNS.P95)
		}
		if c.OverheadHashesPerPacket <= 0 || c.OverheadBytesPerPacket <= 0 {
			t.Errorf("%s: overhead not recorded: %+v", c.ID, c)
		}
	}

	// The run directory round-trips.
	back, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "smoke" || len(back.Cells) != 4 {
		t.Errorf("LoadRun mismatch: %+v", back)
	}
	runs, err := LoadRuns(filepath.Dir(dir))
	if err != nil || len(runs) != 1 {
		t.Errorf("LoadRuns: %v, %d runs", err, len(runs))
	}
}

// TestRunServerPath drives one cell through the batch-signing serving
// tier and checks the deterministic counters plus the wall-clock metrics
// side file.
func TestRunServerPath(t *testing.T) {
	cfg := Config{
		Name:       "srv",
		Seed:       3,
		Trials:     50,
		Receivers:  []int{4},
		BlockSizes: []int{4},
		Schemes:    []SchemeConfig{{ID: "emss"}},
		Loss:       []LossConfig{{Model: "bernoulli", P: 0.1}},
		Paths:      []string{PathServer},
		Server:     ServerConfig{Streams: 3, Blocks: 2, Batch: 4},
	}
	run, dir, err := Run(cfg, 2, t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	s := run.Cells[0].Server
	if s == nil {
		t.Fatal("server result missing")
	}
	if s.Published != int64(3*2*4) || s.Verified != s.Published {
		t.Errorf("published/verified = %d/%d, want 24/24", s.Published, s.Verified)
	}
	// 3 streams × 2 blocks = 6 roots in batches of 4 → 2 signatures.
	if s.SignedRoots != 6 || s.Signatures != 2 {
		t.Errorf("roots/signatures = %d/%d, want 6/2", s.SignedRoots, s.Signatures)
	}
	sm, err := LoadServerMetrics(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h := sm[run.Cells[0].ID].Histograms["server.root_hold_ns"]; h.Count == 0 {
		t.Errorf("root-hold histogram missing from server_metrics.json: %+v", sm)
	}
}

// TestOverlayConfigNormalize pins the overlay knob defaults and the
// rejection of inconsistent tree shapes.
func TestOverlayConfigNormalize(t *testing.T) {
	base := func() Config {
		return Config{
			Name:    "ov",
			Schemes: []SchemeConfig{{ID: "emss"}},
			Loss:    []LossConfig{{Model: "bernoulli", P: 0.1}},
			Paths:   []string{PathOverlay},
		}
	}
	c := base()
	c.Overlay = &OverlayConfig{EdgeP: 0.4}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	o := c.Overlay
	if o.Depth != 2 || o.Fanout != 4 || o.LossyEdges != 1 || o.RepairRTTMS != 40 {
		t.Errorf("overlay defaults not applied: %+v", o)
	}
	// Nil overlay block with the path selected gets full defaults.
	c2 := base()
	if err := c2.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c2.Overlay == nil || c2.Overlay.Depth != 2 || c2.Overlay.LossyEdges != 0 {
		t.Errorf("nil overlay block not defaulted: %+v", c2.Overlay)
	}

	for name, ov := range map[string]*OverlayConfig{
		"edge_p out of range":        {EdgeP: 1.0},
		"negative rtt":               {RepairRTTMS: -1},
		"lossy edges beyond fanout":  {EdgeP: 0.5, Fanout: 2, LossyEdges: 3},
		"lossy edge on depth-1 tree": {EdgeP: 0.5, Depth: 1},
		"negative fanout":            {Fanout: -2},
	} {
		bad := base()
		bad.Overlay = ov
		if err := bad.Normalize(); err == nil {
			t.Errorf("%s: invalid overlay config accepted: %+v", name, ov)
		}
	}
}

// TestRunOverlayPath drives one cell through the relay fan-out path. The
// seed matches examples/lab/overlay.json's first cell, whose seeded lossy
// edge deterministically drops a signature wire — so the relays-on run
// must show upstream repairs and a strictly positive gain. Artifacts stay
// byte-identical across worker counts.
func TestRunOverlayPath(t *testing.T) {
	cfg := Config{
		Name:       "ovrun",
		Seed:       3,
		Trials:     50,
		Receivers:  []int{48},
		BlockSizes: []int{12},
		Schemes:    []SchemeConfig{{ID: "emss"}},
		Loss:       []LossConfig{{Model: "bernoulli", P: 0.1}},
		Paths:      []string{PathOverlay},
		Overlay:    &OverlayConfig{Depth: 2, Fanout: 4, EdgeP: 0.5, LossyEdges: 2},
	}
	base := t.TempDir()
	var dirs [2]string
	var run *RunResult
	for i, workers := range []int{1, 4} {
		r, dir, err := Run(cfg, workers, filepath.Join(base, fmt.Sprintf("w%d", workers)), "20260101T000000Z")
		if err != nil {
			t.Fatal(err)
		}
		run, dirs[i] = r, dir
	}
	compareTrees(t, dirs[0], dirs[1], 2) // config.json + cells.json: no netsim path, so no metrics/reports

	o := run.Cells[0].Overlay
	if o == nil {
		t.Fatal("overlay result missing")
	}
	if !o.Repairable {
		t.Fatalf("lossy-edge emss cell not marked repairable: %+v", o)
	}
	if o.AuthOff <= 0 || o.AuthOff > 1 || o.AuthOn <= 0 || o.AuthOn > 1 {
		t.Errorf("auth fractions out of (0,1]: %+v", o)
	}
	if o.AuthOn < o.AuthOff {
		t.Errorf("relays-on lowered authentication: on=%v off=%v (repairs only add material)", o.AuthOn, o.AuthOff)
	}
	if o.UpstreamRepaired == 0 {
		t.Error("seeded lossy edge produced no upstream repairs; the scenario went vacuous")
	}
	if o.Gain <= 0 {
		t.Errorf("gain %v not positive despite upstream repairs", o.Gain)
	}
	if len(o.Flagged) != 0 {
		t.Errorf("withholding audit flagged honest relays: %v", o.Flagged)
	}

	// The dashboard renders the overlay section for this run.
	var md strings.Builder
	if err := RenderMarkdown(&md, DashboardInput{Runs: []*RunResult{run}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### Overlay fan-out") {
		t.Error("dashboard missing overlay section")
	}
}

// TestOverlayGate pins the require_overlay_gain semantics on synthetic
// runs: a gain below the floor fails, a vacuous zero-repair scenario
// fails, non-repairable cells pass, and a sweep that asks for the overlay
// path but produces no repairable cell fails at run level.
func TestOverlayGate(t *testing.T) {
	mkRun := func(o *OverlayCellResult, overlayPath bool) *RunResult {
		cfg := Config{Name: "g", Paths: []string{PathNetsim}}
		if overlayPath {
			cfg.Paths = append(cfg.Paths, PathOverlay)
		}
		return &RunResult{
			Name: "g", Stamp: "s", Config: cfg,
			Cells: []CellResult{{ID: "cell", Overlay: o}},
		}
	}
	b := Baselines{RequireOverlayGain: 0.05}
	healthy := &OverlayCellResult{Repairable: true, Gain: 0.08, UpstreamRepaired: 2, AuthOff: 0.4, AuthOn: 0.48}
	if errs := b.CheckRun(mkRun(healthy, true)); len(errs) != 0 {
		t.Errorf("healthy overlay cell gated: %v", errs)
	}
	low := &OverlayCellResult{Repairable: true, Gain: 0.01, UpstreamRepaired: 2}
	if errs := b.CheckRun(mkRun(low, true)); len(errs) != 1 || !strings.Contains(errs[0].Error(), "below required floor") {
		t.Errorf("below-floor gain not gated: %v", errs)
	}
	vacuous := &OverlayCellResult{Repairable: true, Gain: 0.5, UpstreamRepaired: 0}
	if errs := b.CheckRun(mkRun(vacuous, true)); len(errs) != 1 || !strings.Contains(errs[0].Error(), "vacuous") {
		t.Errorf("vacuous scenario not gated: %v", errs)
	}
	inert := &OverlayCellResult{Repairable: false, Gain: 0}
	if errs := b.CheckRun(mkRun(inert, false)); len(errs) != 0 {
		t.Errorf("non-repairable cell gated: %v", errs)
	}
	// Overlay path requested, gate armed, but nothing repairable: the run
	// itself fails rather than passing on vacuous cells.
	if errs := b.CheckRun(mkRun(inert, true)); len(errs) != 1 || !strings.Contains(errs[0].Error(), "no cell produced a repairable overlay result") {
		t.Errorf("repairable-coverage check missing: %v", errs)
	}
	// The gate disarms at zero.
	if errs := (Baselines{}).CheckRun(mkRun(low, true)); len(errs) != 0 {
		t.Errorf("disarmed gate fired: %v", errs)
	}

	// File validation rejects an out-of-range floor.
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"require_overlay_gain":-0.1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaselines(path); err == nil {
		t.Error("negative require_overlay_gain accepted")
	}
}

// TestGatesInjectedViolation pins the acceptance criterion: a committed
// q_min floor above what a lossy cell can deliver must fail the check.
func TestGatesInjectedViolation(t *testing.T) {
	cfg := smokeConfig()
	run, _, err := Run(cfg, 2, t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	ok := DefaultBaselines()
	if errs := ok.CheckRun(run); len(errs) != 0 {
		t.Fatalf("healthy run fails default gates: %v", errs)
	}
	// Inject an impossible floor on the rohatgi cells: at p=0.2 a hash
	// chain cannot authenticate 99.9% of packets.
	bad := DefaultBaselines()
	bad.Bounds = append(bad.Bounds, conformance.Bound{Case: "rohatgi", P: 0.2, MinQMin: 0.999})
	errs := bad.CheckRun(run)
	if len(errs) == 0 {
		t.Fatal("injected q_min floor violation not detected")
	}
	for _, err := range errs {
		if !strings.Contains(err.Error(), "baseline floor") {
			t.Errorf("unexpected violation kind: %v", err)
		}
	}

	// Round-trip the baselines file format.
	dir := t.TempDir()
	path := filepath.Join(dir, "baselines.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.WriteBaselines(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadBaselines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.CheckRun(run)) != len(errs) {
		t.Error("baselines round-trip changed gate outcome")
	}
	if _, err := ReadBaselines(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baselines file accepted")
	}
}

// TestBenchGate exercises the bench-delta gate on synthetic history: a
// regression beyond the threshold fails, one within passes, and the best
// baseline is taken across all older snapshots, not just the previous one.
func TestBenchGate(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	mk := func(commit string, at int64, ns, allocs float64) *BenchFile {
		return &BenchFile{
			Commit:          commit,
			GeneratedAtUnix: at,
			Benchmarks:      []Benchmark{{Name: "BenchmarkMC", NsPerOp: f(ns), AllocsPerOp: f(allocs)}},
			File:            "BENCH_" + commit + ".json",
		}
	}
	b := Baselines{BenchThreshold: 0.10}
	// Best ns/op is the middle snapshot; latest regresses 50% over it.
	history := []*BenchFile{mk("aaaaaaa1", 1, 120, 10), mk("bbbbbbb2", 2, 100, 10), mk("ccccccc3", 3, 150, 10)}
	errs := b.CheckBench(history)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "regresses") {
		t.Fatalf("50%% ns/op regression not gated: %v", errs)
	}
	// Within threshold: passes.
	if errs := b.CheckBench([]*BenchFile{mk("a1", 1, 100, 10), mk("b2", 2, 105, 11)}); len(errs) != 0 {
		t.Errorf("in-threshold delta gated: %v", errs)
	}
	// Alloc regression beyond threshold + slack.
	if errs := b.CheckBench([]*BenchFile{mk("a1", 1, 100, 10), mk("b2", 2, 100, 20)}); len(errs) != 1 {
		t.Errorf("alloc regression not gated: %v", errs)
	}
	// Zero threshold or single file disables the gate.
	if errs := (Baselines{}).CheckBench(history); len(errs) != 0 {
		t.Errorf("disabled gate fired: %v", errs)
	}
	if errs := b.CheckBench(history[:1]); len(errs) != 0 {
		t.Errorf("single-file history gated: %v", errs)
	}
}

// TestBenchGateDirtyFilter: dirty-tree snapshots neither set baselines
// nor get gated; only clean commits compare against each other.
func TestBenchGateDirtyFilter(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	mk := func(commit string, at int64, ns float64) *BenchFile {
		return &BenchFile{
			Commit:          commit,
			GeneratedAtUnix: at,
			Benchmarks:      []Benchmark{{Name: "BenchmarkMC", NsPerOp: f(ns), AllocsPerOp: f(10)}},
			File:            "BENCH_" + commit + ".json",
		}
	}
	b := Baselines{BenchThreshold: 0.10}
	// A dirty snapshot with an absurdly fast number must not become the
	// baseline the clean latest is judged against.
	if errs := b.CheckBench([]*BenchFile{mk("aaaaaaa1", 1, 100), mk("bbbbbbb2-dirty", 2, 1), mk("ccccccc3", 3, 105)}); len(errs) != 0 {
		t.Errorf("dirty snapshot served as baseline: %v", errs)
	}
	// A dirty latest is not gated at all (its regression is not
	// attributable), but the newest clean snapshot before it still is.
	if errs := b.CheckBench([]*BenchFile{mk("aaaaaaa1", 1, 100), mk("ccccccc3", 3, 150), mk("bbbbbbb2-dirty", 4, 999)}); len(errs) != 1 {
		t.Errorf("clean regression hidden behind dirty latest: %v", errs)
	}
	// Legacy files tag only the filename.
	legacy := mk("bbbbbbb2", 2, 1)
	legacy.File = "BENCH_bbbbbb2-dirty.json"
	if errs := b.CheckBench([]*BenchFile{mk("aaaaaaa1", 1, 100), legacy, mk("ccccccc3", 3, 105)}); len(errs) != 0 {
		t.Errorf("filename-tagged dirty snapshot served as baseline: %v", errs)
	}
}

// TestBenchGateAllocCeilings: absolute allocs/op ceilings hold on the
// latest clean snapshot even with no prior history, and match names
// carrying a GOMAXPROCS suffix.
func TestBenchGateAllocCeilings(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	b := Baselines{BenchAllocCeilings: map[string]float64{"BenchmarkVerify/tesla": 80}}
	mk := func(name string, allocs float64) *BenchFile {
		return &BenchFile{
			Commit:     "aaaaaaa1",
			Benchmarks: []Benchmark{{Name: name, AllocsPerOp: f(allocs)}},
			File:       "BENCH_aaaaaaa1.json",
		}
	}
	if errs := b.CheckBench([]*BenchFile{mk("BenchmarkVerify/tesla", 35)}); len(errs) != 0 {
		t.Errorf("under-ceiling snapshot gated: %v", errs)
	}
	if errs := b.CheckBench([]*BenchFile{mk("BenchmarkVerify/tesla", 500)}); len(errs) != 1 {
		t.Errorf("over-ceiling snapshot not gated: %v", errs)
	}
	if errs := b.CheckBench([]*BenchFile{mk("BenchmarkVerify/tesla-4", 500)}); len(errs) != 1 {
		t.Errorf("GOMAXPROCS-suffixed name not matched: %v", errs)
	}
	dirty := mk("BenchmarkVerify/tesla", 500)
	dirty.Commit = "aaaaaaa1-dirty"
	if errs := b.CheckBench([]*BenchFile{dirty}); len(errs) != 0 {
		t.Errorf("ceiling applied to dirty snapshot: %v", errs)
	}
}

// TestBenchHistoryOrdering checks generated_at_unix ordering with
// filename tie-breaks for pre-field files.
func TestBenchHistoryOrdering(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_new.json", `{"commit":"new","generated_at_unix":200,"benchmarks":[]}`)
	write("BENCH_old.json", `{"commit":"old","generated_at_unix":100,"benchmarks":[]}`)
	write("BENCH_legacy.json", `{"commit":"legacy","benchmarks":[]}`) // no field → oldest
	write("ignored.json", `{}`)
	history, err := LoadBenchHistory(dir, filepath.Join(dir, "does-not-exist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 3 {
		t.Fatalf("history length = %d, want 3", len(history))
	}
	if history[0].Commit != "legacy" || history[1].Commit != "old" || history[2].Commit != "new" {
		t.Errorf("history misordered: %s %s %s", history[0].Commit, history[1].Commit, history[2].Commit)
	}
}

func TestDashboardRender(t *testing.T) {
	cfg := smokeConfig()
	run, _, err := Run(cfg, 2, t.TempDir(), "20260101T000000Z")
	if err != nil {
		t.Fatal(err)
	}
	f := func(v float64) *float64 { return &v }
	bench := []*BenchFile{{
		Commit:     "0123456789abcdef",
		Benchmarks: []Benchmark{{Name: "BenchmarkMC", NsPerOp: f(1234.5), AllocsPerOp: f(3)}},
	}}
	in := DashboardInput{Runs: []*RunResult{run}, Bench: bench}
	var a, b strings.Builder
	if err := RenderMarkdown(&a, in); err != nil {
		t.Fatal(err)
	}
	if err := RenderMarkdown(&b, in); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("dashboard render not deterministic")
	}
	md := a.String()
	for _, want := range []string{
		"# mcauth lab dashboard",
		"## q_min vs overhead — smoke-20260101T000000Z",
		"rohatgi/bernoulli(p=0.2)/n=8/r=40",
		"### Time to authentication",
		"## Benchmark trajectory",
		"### BenchmarkMC",
		"| 0123456",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	var html strings.Builder
	if err := RenderHTML(&html, md); err != nil {
		t.Fatal(err)
	}
	h := html.String()
	for _, want := range []string{
		"<h1>mcauth lab dashboard</h1>",
		"<table>",
		"<th>cell</th>",
		"<td>rohatgi/bernoulli(p=0.2)/n=8/r=40</td>",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(h, "|---") {
		t.Error("alignment row leaked into HTML")
	}
}
