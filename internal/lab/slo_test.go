package lab

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sloRun(slo *SLOObjectives) *RunResult {
	return &RunResult{
		Name:  "slo",
		Stamp: "20260808-000000",
		Config: Config{
			Name: "slo", Trials: 100,
			Schemes: []SchemeConfig{{ID: "emss"}},
			Loss:    []LossConfig{{Model: "bernoulli", P: 0.2}},
			SLO:     slo,
		},
		Cells: []CellResult{
			{
				ID: "emss/bernoulli(p=0.2)/n=16/r=8", SchemeID: "emss",
				HasMeasured: true, Measured: 0.95,
				TimeToAuthNS: QSummary{Count: 100, P99: 40e6},
			},
			{
				ID: "emss/bernoulli(p=0.4)/n=16/r=8", SchemeID: "emss",
				HasMeasured: true, Measured: 0.60,
				TimeToAuthNS: QSummary{Count: 100, P99: 250e6},
			},
			// Per-packet schemes record no latency; analytic-only cells
			// carry no measured q_min. Neither quantity gates.
			{ID: "signeach/bernoulli(p=0.2)/n=16/r=8", SchemeID: "signeach"},
		},
	}
}

func TestSLOObjectivesGate(t *testing.T) {
	run := sloRun(&SLOObjectives{MinAuthFraction: 0.9, TTAP99NS: 100e6})
	errs := CheckSLO(run)
	if len(errs) != 2 {
		t.Fatalf("want 2 missed objectives (cell 2 auth_fraction + tta_p99), got %d: %v", len(errs), errs)
	}
	for _, err := range errs {
		if !strings.Contains(err.Error(), "p=0.4") {
			t.Errorf("violation should name the failing cell: %v", err)
		}
	}
	// The run-level gate reports the same misses.
	gateErrs := DefaultBaselines().CheckRun(run)
	if len(gateErrs) < 2 {
		t.Errorf("CheckRun should enforce the config's SLO block, got %v", gateErrs)
	}
}

func TestSLOObjectivesVacuous(t *testing.T) {
	// No SLO block: nothing gates.
	if errs := CheckSLO(sloRun(nil)); len(errs) != 0 {
		t.Fatalf("nil SLO must pass vacuously, got %v", errs)
	}
	// Objectives set but met exactly at the boundary.
	run := sloRun(&SLOObjectives{MinAuthFraction: 0.60, TTAP99NS: 250e6})
	if errs := CheckSLO(run); len(errs) != 0 {
		t.Fatalf("boundary values meet the objective, got %v", errs)
	}
	// A cell without the gated quantity never fails the objective.
	only := sloRun(&SLOObjectives{MinAuthFraction: 0.9, TTAP99NS: 1})
	only.Cells = only.Cells[2:]
	if errs := CheckSLO(only); len(errs) != 0 {
		t.Fatalf("cells without measured/latency data must pass vacuously, got %v", errs)
	}
}

func TestSLOConfigNormalize(t *testing.T) {
	base := Config{
		Name:    "x",
		Schemes: []SchemeConfig{{ID: "emss"}},
		Loss:    []LossConfig{{Model: "bernoulli", P: 0.2}},
	}
	for _, tc := range []struct {
		name string
		slo  *SLOObjectives
		ok   bool
	}{
		{"nil", nil, true},
		{"auth only", &SLOObjectives{MinAuthFraction: 0.9}, true},
		{"tta only", &SLOObjectives{TTAP99NS: 1e6}, true},
		{"empty block", &SLOObjectives{}, false},
		{"fraction above 1", &SLOObjectives{MinAuthFraction: 1.5}, false},
		{"negative tta", &SLOObjectives{TTAP99NS: -1}, false},
	} {
		c := base
		c.SLO = tc.slo
		err := c.Normalize()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Normalize accepted an invalid SLO block", tc.name)
		}
	}

	// Configs without an SLO block must serialize without the key, so
	// existing config echoes and goldens stay byte-identical.
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("slo")) {
		t.Errorf("nil SLO must be omitted from config JSON: %s", raw)
	}
}

func TestSLODashboardSection(t *testing.T) {
	run := sloRun(&SLOObjectives{MinAuthFraction: 0.9, TTAP99NS: 100e6})
	var md bytes.Buffer
	if err := RenderMarkdown(&md, DashboardInput{Runs: []*RunResult{run}}); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{
		"### SLO objectives — slo-20260808-000000",
		"| emss/bernoulli(p=0.2)/n=16/r=8 | auth_fraction | 0.9000 | 0.9500 | ok |",
		"| emss/bernoulli(p=0.4)/n=16/r=8 | auth_fraction | 0.9000 | 0.6000 | **missed** |",
		"| emss/bernoulli(p=0.4)/n=16/r=8 | tta_p99 | 100.00ms | 250.00ms | **missed** |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q\n--- markdown ---\n%s", want, out)
		}
	}

	// A run without objectives renders no SLO section at all, keeping
	// pre-SLO dashboards byte-identical.
	var plain bytes.Buffer
	if err := RenderMarkdown(&plain, DashboardInput{Runs: []*RunResult{sloRun(nil)}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "SLO objectives") {
		t.Error("runs without an SLO block must not render the SLO section")
	}
}
